module capscale

go 1.22
