package capscale

import (
	"testing"

	"capscale/internal/cluster"
	"capscale/internal/hw"
	"capscale/internal/matrix"
	"capscale/internal/obs"
	"capscale/internal/strassen"
	"capscale/internal/workload"
)

// BenchmarkExecuteMatrix measures the experiment driver itself on the
// smoke matrix (12 cells through build, simulate, measure):
//
//   - sequential: one worker, memoization off — the baseline sweep.
//   - parallel: GOMAXPROCS workers, memoization off — the concurrent
//     driver, bit-identical results in the same order.
//   - memoized: cache on — what repeat consumers (the table benches,
//     the CLIs) pay after the first sweep.
//   - observed: sequential again but with span tracing enabled — the
//     price of watching a run. The sequential case doubles as the
//     guard that the disabled observability hooks cost nothing.
//
// This is the perf-trajectory benchmark `make bench-driver` records in
// BENCH_driver.json.
func BenchmarkExecuteMatrix(b *testing.B) {
	base := workload.SmokeConfig()
	b.Run("sequential", func(b *testing.B) {
		cfg := base
		cfg.NoCache = true
		cfg.Parallelism = 1
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			_ = workload.Execute(cfg)
		}
	})
	b.Run("parallel", func(b *testing.B) {
		cfg := base
		cfg.NoCache = true
		cfg.Parallelism = 0 // GOMAXPROCS
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			_ = workload.Execute(cfg)
		}
	})
	b.Run("memoized", func(b *testing.B) {
		cfg := base
		workload.ResetRunCache()
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			_ = workload.Execute(cfg)
		}
	})
	b.Run("observed", func(b *testing.B) {
		cfg := base
		cfg.NoCache = true
		cfg.Parallelism = 1
		obs.Enable()
		defer obs.Disable()
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			_ = workload.Execute(cfg)
		}
	})
}

// BenchmarkExecuteDistributed measures one distributed cell end to
// end — rank-program simulation through the MPI layer, cluster power
// timeline merge, and the polled five-plane monitor — for the two
// comm-gate algorithms on a 16-node GigE cluster. Joins
// BenchmarkExecuteMatrix in BENCH_driver.json via `make bench-driver`.
func BenchmarkExecuteDistributed(b *testing.B) {
	spec, err := cluster.ParseSpec("16x1GbE")
	if err != nil {
		b.Fatal(err)
	}
	for _, alg := range []workload.Algorithm{workload.AlgSUMMA, workload.AlgDistCAPS} {
		b.Run(alg.String(), func(b *testing.B) {
			cfg := workload.SmokeConfig()
			cfg.NoCache = true
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				run := workload.ExecuteOneCluster(cfg, alg, 256, spec)
				if run.Failed() {
					b.Fatal(run.Err)
				}
			}
		})
	}
}

// BenchmarkBuildTree isolates the shape-only build win: the dense
// variant is the seed path (three n×n operands allocated and zeroed
// just to describe the multiply), the shape variant is what
// workload.BuildTree does now.
func BenchmarkBuildTree(b *testing.B) {
	m := hw.HaswellE31225()
	const n = 2048
	b.Run("dense", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			a, bb, c := matrix.New(n, n), matrix.New(n, n), matrix.New(n, n)
			_ = strassen.Build(m, c, a, bb, 4, strassen.Options{})
		}
	})
	b.Run("shape", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			_ = workload.BuildTree(m, workload.AlgStrassen, n, 4)
		}
	})
}
