// Package model fits an ICE-style energy-complexity model (Tran & Ha's
// work/span/memory-access decomposition, the D2.3-style platform
// coefficients) from measured workload cells and predicts the rest of
// the sweep with per-prediction uncertainty.
//
// The split of responsibilities follows the paper's measurement stack:
// per-algorithm-family accountants (families.go, dist.go) produce the
// analytic complexity terms — work by kernel class, span, DRAM/L3
// traffic and, for the distributed families, wire volume and message
// counts from the internal/dmm rank programs — while this file owns
// the least-squares fit of the platform coefficients (ε_op, ε_mem,
// π_static, per-byte wire energy) and the residual-variance prediction
// intervals the sweep planner steers by.
package model

import (
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"math"
	"sort"

	"capscale/internal/hw"
	"capscale/internal/stats"
)

// Version is the model-family version folded into Tag(): bump it when
// the feature vectors or accountants change shape, so checkpointed
// predictions from older models are invalidated on resume.
const Version = 1

// Family groups algorithms that share one set of fitted time
// coefficients — their leaves have the same cost structure, so one
// (work, memory, span) weighting transfers across sizes and threads.
type Family int

const (
	// FamilyClassic is blocked classic matrix multiplication (OpenBLAS).
	FamilyClassic Family = iota
	// FamilyStrassen covers the Strassen and Strassen-Winograd trees.
	FamilyStrassen
	// FamilyCAPS is communication-avoiding parallel Strassen.
	FamilyCAPS
	// FamilyDistributed pools the SUMMA/2.5D/DStrassen/dCAPS rank
	// programs: per-cell terms differ, the platform weighting is shared.
	FamilyDistributed
	// FamilySparse covers the bandwidth-bound SpMV and CG workloads.
	FamilySparse

	// NumFamilies bounds the enum for array indexing.
	NumFamilies
)

var familyNames = [NumFamilies]string{"classic", "strassen", "caps", "distributed", "sparse"}

func (f Family) String() string {
	if f < 0 || f >= NumFamilies {
		return fmt.Sprintf("Family(%d)", int(f))
	}
	return familyNames[f]
}

// Terms are the analytic complexity terms of one sweep cell, produced
// by the family accountants without building (or running) the cell.
type Terms struct {
	Family Family
	// Workers is the concurrency the cell runs at: threads for node
	// families, ranks for the distributed one.
	Workers int
	// CompSeconds is the exact single-core compute time Σ_kind
	// flops_kind/(eff_kind · per-core peak) — the simulator's
	// utilization integral, so it is also the exact dynamic-energy
	// driver.
	CompSeconds float64
	// Flops is raw operation count (reporting only; CompSeconds is the
	// fitted feature because kernel efficiency differs per class).
	Flops float64
	// DRAMBytes and L3Bytes are total traffic by level. For distributed
	// cells they are per-rank totals.
	DRAMBytes float64
	L3Bytes   float64
	// Leaves counts scheduled leaves (each pays the dispatch overhead).
	Leaves float64
	// SpanSeconds is the uncontended critical path.
	SpanSeconds float64
	// BusySeconds is the uncontended aggregate busy time Σ leaf
	// durations — the idle/active split driver for core static power.
	BusySeconds float64

	// Distributed extras; zero for node families.
	Cores       int     // cores per node
	WireBytes   float64 // total bytes offered to the fabric
	Messages    float64 // total message count
	CommSeconds float64 // per-rank wire + per-message overhead estimate
}

// Obs is one measured training observation: the cell's analytic terms
// plus what the simulator/monitor stack actually reported.
type Obs struct {
	Key     string // cell key, for hashing and worst-row reporting
	Terms   Terms
	Seconds float64
	PKGJ    float64
	PP0J    float64
	DRAMJ   float64
	NICJ    float64
	SwitchJ float64
}

// Prediction is a model answer for one unmeasured cell.
type Prediction struct {
	Seconds float64
	PKGJ    float64
	PP0J    float64
	DRAMJ   float64
	NICJ    float64
	SwitchJ float64
	// RelCI is the ±2σ prediction interval on the cell's total energy,
	// relative to the prediction — the planner measures cells whose
	// RelCI exceeds its confidence knob.
	RelCI float64
}

// EnergyJ returns the total energy the sweep reports for the cell
// (PP0 is nested inside PKG and not added again).
func (p Prediction) EnergyJ() float64 { return p.PKGJ + p.DRAMJ + p.NICJ + p.SwitchJ }

// timeFeatureCount is the per-family time model width: perfectly
// parallel work, aggregate-bandwidth memory time, span.
const timeFeatureCount = 3

// timeFeatures maps terms to the family time model
// T ≈ θ_w·(work/p) + θ_m·(bytes/aggregate bandwidth) + θ_s·span.
func timeFeatures(m *hw.Machine, t Terms) []float64 {
	if t.Family == FamilyDistributed {
		cores := t.Cores
		if cores < 1 {
			cores = 1
		}
		agg := float64(cores) * m.StreamBandwidth(cores)
		return []float64{
			t.CompSeconds / float64(cores),
			t.DRAMBytes / agg,
			t.CommSeconds,
		}
	}
	p := t.Workers
	if p < 1 {
		p = 1
	}
	agg := float64(p) * m.StreamBandwidth(p)
	return []float64{
		(t.CompSeconds + t.Leaves*m.TaskOverhead) / float64(p),
		t.DRAMBytes/agg + t.L3Bytes/m.L3Bandwidth,
		t.SpanSeconds,
	}
}

// Node-plane energy features, given the cell's (predicted or measured)
// duration. The coefficients recover the platform power parameters:
// PKG ≈ π_static·T + π_core·(p·T) + ε_op·CompSeconds + ε_busy·Busy
// + ε_l3·L3GB; DRAM ≈ π_dram·T + ε_mem·DRAMGB.
func nodePKGFeatures(t Terms, T float64) []float64 {
	return []float64{T, float64(t.Workers) * T, t.CompSeconds, t.BusySeconds, t.L3Bytes / 1e9}
}

func nodePP0Features(t Terms, T float64) []float64 {
	return []float64{float64(t.Workers) * T, t.CompSeconds, t.BusySeconds}
}

func nodeDRAMFeatures(t Terms, T float64) []float64 {
	return []float64{T, t.DRAMBytes / 1e9}
}

// Distributed-plane features: node planes sum over ranks, the NIC pays
// idle plus per-byte wire energy, the switch is pure standing draw.
func distPKGFeatures(t Terms, T float64) []float64 {
	p := float64(t.Workers)
	return []float64{p * T, p * t.CompSeconds, t.Messages}
}

func distPP0Features(t Terms, T float64) []float64 { return distPKGFeatures(t, T) }

func distDRAMFeatures(t Terms, T float64) []float64 {
	p := float64(t.Workers)
	return []float64{p * T, p * t.DRAMBytes / 1e9}
}

func distNICFeatures(t Terms, T float64) []float64 {
	return []float64{float64(t.Workers) * T, t.WireBytes / 1e9}
}

func distSwitchFeatures(t Terms, T float64) []float64 { return []float64{T} }

// Model is a fitted energy-complexity model for one machine.
type Model struct {
	machine *hw.Machine

	time [NumFamilies]*stats.LSFit // per-family; nil when unfittable

	// Node energy planes are pooled across the node families (the
	// platform coefficients are properties of the machine, not the
	// algorithm); distributed planes are fitted separately since their
	// observations sum different hardware (ranks × node + fabric).
	nodePKG, nodePP0, nodeDRAM        *stats.LSFit
	distPKG, distPP0, distDRAM        *stats.LSFit
	distNIC, distSwitch               *stats.LSFit
	trainHash                         uint64
	trainN                            int
	obs                               []Obs
	famN                              [NumFamilies]int
	famEnergyMaxRel, famEnergyMeanRel [NumFamilies]float64
	famTimeMaxRel                     [NumFamilies]float64
	worst                             []WorstRow
	relResidual                       float64 // pooled relative energy residual (uncertainty floor)
}

// Fit fits the model from measured observations. Families with too few
// observations for their time fit are left unfittable — Predict
// returns an error for them and the planner falls back to measuring.
// Fit itself errors only when nothing at all can be fitted.
func Fit(m *hw.Machine, obs []Obs) (*Model, error) {
	if m == nil {
		return nil, fmt.Errorf("model: nil machine")
	}
	if len(obs) == 0 {
		return nil, fmt.Errorf("model: no observations")
	}
	mo := &Model{machine: m, trainN: len(obs), obs: append([]Obs(nil), obs...)}
	mo.trainHash = hashObs(m.Name, mo.obs)

	byFam := make(map[Family][]Obs)
	for _, o := range obs {
		if o.Terms.Family < 0 || o.Terms.Family >= NumFamilies {
			return nil, fmt.Errorf("model: observation %q has invalid family %d", o.Key, o.Terms.Family)
		}
		byFam[o.Terms.Family] = append(byFam[o.Terms.Family], o)
		mo.famN[o.Terms.Family]++
	}

	fitted := false
	for fam, fobs := range byFam {
		if len(fobs) < timeFeatureCount {
			continue
		}
		// Scaled by each cell's span (a per-cell size proxy known
		// before measuring), so the residual variance is relative:
		// a 5% miss on a tiny cell and a 5% miss on a huge one carry
		// the same weight, and small-cell prediction intervals are not
		// inflated by the big cells' absolute scatter.
		X := make([][]float64, len(fobs))
		y := make([]float64, len(fobs))
		for i, o := range fobs {
			X[i] = scaleRow(timeFeatures(m, o.Terms), timeScale(o.Terms))
			y[i] = o.Seconds / timeScale(o.Terms)
		}
		fit, err := stats.LeastSquares(X, y)
		if err != nil {
			continue
		}
		mo.time[fam] = fit
		fitted = true
	}
	if !fitted {
		return nil, fmt.Errorf("model: no family has enough observations for a time fit (need ≥ %d)", timeFeatureCount)
	}

	var node, dist []Obs
	for _, o := range obs {
		if o.Terms.Family == FamilyDistributed {
			dist = append(dist, o)
		} else {
			node = append(node, o)
		}
	}
	// Plane fits are weighted by 1/seconds — i.e. fitted in power
	// space. Energy residuals are heteroscedastic (big cells miss by
	// millijoules, small cells by microjoules); fitting watts keeps the
	// residual variance relative, so small cells get honest prediction
	// intervals instead of inheriting the big cells' absolute scatter.
	fitPlane := func(obs []Obs, feats func(Terms, float64) []float64, y func(Obs) float64) *stats.LSFit {
		if len(obs) == 0 {
			return nil
		}
		var X [][]float64
		var Y []float64
		for _, o := range obs {
			if o.Seconds <= 0 {
				continue
			}
			X = append(X, scaleRow(feats(o.Terms, o.Seconds), o.Seconds))
			Y = append(Y, y(o)/o.Seconds)
		}
		fit, err := stats.LeastSquares(X, Y)
		if err != nil {
			return nil
		}
		return fit
	}
	mo.nodePKG = fitPlane(node, nodePKGFeatures, func(o Obs) float64 { return o.PKGJ })
	mo.nodePP0 = fitPlane(node, nodePP0Features, func(o Obs) float64 { return o.PP0J })
	mo.nodeDRAM = fitPlane(node, nodeDRAMFeatures, func(o Obs) float64 { return o.DRAMJ })
	mo.distPKG = fitPlane(dist, distPKGFeatures, func(o Obs) float64 { return o.PKGJ })
	mo.distPP0 = fitPlane(dist, distPP0Features, func(o Obs) float64 { return o.PP0J })
	mo.distDRAM = fitPlane(dist, distDRAMFeatures, func(o Obs) float64 { return o.DRAMJ })
	mo.distNIC = fitPlane(dist, distNICFeatures, func(o Obs) float64 { return o.NICJ })
	mo.distSwitch = fitPlane(dist, distSwitchFeatures, func(o Obs) float64 { return o.SwitchJ })

	mo.summarize()
	return mo, nil
}

// summarize computes the in-sample diagnostics the report table shows
// and the pooled relative residual used as an uncertainty floor.
func (mo *Model) summarize() {
	var relSq, relN float64
	for _, o := range mo.obs {
		pred, err := mo.Predict(o.Terms)
		if err != nil {
			continue
		}
		measured := o.PKGJ + o.DRAMJ + o.NICJ + o.SwitchJ
		rel := stats.RelErr(pred.EnergyJ(), measured)
		fam := o.Terms.Family
		mo.famEnergyMeanRel[fam] += rel
		if rel > mo.famEnergyMaxRel[fam] {
			mo.famEnergyMaxRel[fam] = rel
		}
		if tr := stats.RelErr(pred.Seconds, o.Seconds); tr > mo.famTimeMaxRel[fam] {
			mo.famTimeMaxRel[fam] = tr
		}
		mo.worst = append(mo.worst, WorstRow{Key: o.Key, MeasuredJ: measured, PredictedJ: pred.EnergyJ(), RelErr: rel})
		if !math.IsInf(rel, 0) && !math.IsNaN(rel) {
			relSq += rel * rel
			relN++
		}
	}
	for f := Family(0); f < NumFamilies; f++ {
		if mo.famN[f] > 0 {
			mo.famEnergyMeanRel[f] /= float64(mo.famN[f])
		}
	}
	sort.Slice(mo.worst, func(i, j int) bool { return mo.worst[i].RelErr > mo.worst[j].RelErr })
	if relN > 0 {
		mo.relResidual = math.Sqrt(relSq / relN)
	}
}

// CanPredict reports whether the family's time model was fittable.
func (mo *Model) CanPredict(f Family) bool {
	return f >= 0 && f < NumFamilies && mo.time[f] != nil
}

// Predict evaluates the model for one cell. It errors when the cell's
// family (or its energy segment) had too few training observations.
func (mo *Model) Predict(t Terms) (Prediction, error) {
	if !mo.CanPredict(t.Family) {
		return Prediction{}, fmt.Errorf("model: family %v has no time fit", t.Family)
	}
	tf := mo.time[t.Family]
	tx := timeFeatures(mo.machine, t)
	T := tf.Predict(tx)
	// A linear fit can undershoot outside its hull; time can physically
	// never beat the span.
	if T < t.SpanSeconds {
		T = t.SpanSeconds
	}
	if T <= 0 {
		return Prediction{}, fmt.Errorf("model: non-positive time prediction for family %v", t.Family)
	}
	// The time fit lives in span-relative space (see Fit); convert the
	// variance at the scaled point back to seconds².
	ts := timeScale(t)
	varT := tf.PredVar(scaleRow(tx, ts)) * ts * ts

	var pred Prediction
	pred.Seconds = T
	var varE, dEdT float64
	eval := func(fit *stats.LSFit, x []float64, name string) (float64, error) {
		if fit == nil {
			return 0, fmt.Errorf("model: no %s energy fit for family %v", name, t.Family)
		}
		v := fit.Predict(x)
		if v < 0 {
			v = 0
		}
		// The plane fits live in power space (rows scaled by seconds,
		// see Fit); the watt-variance at the scaled point converts back
		// to energy variance by T².
		varE += fit.PredVar(scaleRow(x, T)) * T * T
		return v, nil
	}
	var err error
	if t.Family == FamilyDistributed {
		p := float64(t.Workers)
		if pred.PKGJ, err = eval(mo.distPKG, distPKGFeatures(t, T), "pkg"); err != nil {
			return Prediction{}, err
		}
		if pred.PP0J, err = eval(mo.distPP0, distPP0Features(t, T), "pp0"); err != nil {
			return Prediction{}, err
		}
		if pred.DRAMJ, err = eval(mo.distDRAM, distDRAMFeatures(t, T), "dram"); err != nil {
			return Prediction{}, err
		}
		if pred.NICJ, err = eval(mo.distNIC, distNICFeatures(t, T), "nic"); err != nil {
			return Prediction{}, err
		}
		if pred.SwitchJ, err = eval(mo.distSwitch, distSwitchFeatures(t, T), "switch"); err != nil {
			return Prediction{}, err
		}
		dEdT = p*mo.distPKG.Coef[0] + p*mo.distDRAM.Coef[0] + p*mo.distNIC.Coef[0] + mo.distSwitch.Coef[0]
	} else {
		if pred.PKGJ, err = eval(mo.nodePKG, nodePKGFeatures(t, T), "pkg"); err != nil {
			return Prediction{}, err
		}
		if pred.PP0J, err = eval(mo.nodePP0, nodePP0Features(t, T), "pp0"); err != nil {
			return Prediction{}, err
		}
		if pred.DRAMJ, err = eval(mo.nodeDRAM, nodeDRAMFeatures(t, T), "dram"); err != nil {
			return Prediction{}, err
		}
		dEdT = mo.nodePKG.Coef[0] + float64(t.Workers)*mo.nodePKG.Coef[1] + mo.nodeDRAM.Coef[0]
	}
	// PP0 is the core subset of PKG; predictions must respect the
	// nesting the RAPL planes guarantee.
	if pred.PP0J > pred.PKGJ {
		pred.PP0J = pred.PKGJ
	}

	total := pred.EnergyJ()
	if total > 0 {
		variance := varE + dEdT*dEdT*varT
		rel := 2 * math.Sqrt(variance) / total
		// Exactly-determined fits report zero residual variance; the
		// pooled in-sample relative residual keeps the planner honest.
		if rel < mo.relResidual {
			rel = mo.relResidual
		}
		pred.RelCI = rel
	}
	return pred, nil
}

// Tag identifies this fitted model instance: the package version plus
// the training-set hash. Checkpointed predictions carry the tag of the
// model that produced them and are dropped when a refit changes it.
func (mo *Model) Tag() string { return fmt.Sprintf("v%d:%016x", Version, mo.trainHash) }

// TrainingSize returns the number of observations the fit used.
func (mo *Model) TrainingSize() int { return mo.trainN }

// Machine returns the machine the model was fitted for.
func (mo *Model) Machine() *hw.Machine { return mo.machine }

// Coefficient is one named, fitted platform parameter.
type Coefficient struct {
	Name  string
	Value float64
	Unit  string
}

// Coefficients lists the fitted platform parameters in a stable order.
func (mo *Model) Coefficients() []Coefficient {
	var out []Coefficient
	add := func(fit *stats.LSFit, names, units []string) {
		if fit == nil {
			return
		}
		for i, n := range names {
			out = append(out, Coefficient{Name: n, Value: fit.Coef[i], Unit: units[i]})
		}
	}
	add(mo.nodePKG, []string{"pkg.pi_static", "pkg.pi_core", "pkg.eps_op", "pkg.eps_busy", "pkg.eps_l3"},
		[]string{"W", "W/core", "J/comp-s", "J/busy-s", "J/GB"})
	add(mo.nodeDRAM, []string{"dram.pi_static", "dram.eps_mem"}, []string{"W", "J/GB"})
	add(mo.nodePP0, []string{"pp0.pi_core", "pp0.eps_op", "pp0.eps_busy"}, []string{"W/core", "J/comp-s", "J/busy-s"})
	add(mo.distNIC, []string{"nic.pi_static", "nic.eps_wire"}, []string{"W/node", "J/GB"})
	add(mo.distSwitch, []string{"switch.pi_static"}, []string{"W"})
	for f := Family(0); f < NumFamilies; f++ {
		if fit := mo.time[f]; fit != nil {
			out = append(out,
				Coefficient{Name: f.String() + ".theta_work", Value: fit.Coef[0], Unit: "s/s"},
				Coefficient{Name: f.String() + ".theta_mem", Value: fit.Coef[1], Unit: "s/s"},
				Coefficient{Name: f.String() + ".theta_span", Value: fit.Coef[2], Unit: "s/s"})
		}
	}
	return out
}

// FamilyStat is the per-family fit quality summary for the report.
type FamilyStat struct {
	Family        Family
	N             int
	Fitted        bool
	TimeR2        float64
	TimeMaxRel    float64
	EnergyMaxRel  float64
	EnergyMeanRel float64
}

// FamilyStats summarizes in-sample fit quality per family, skipping
// families with no observations.
func (mo *Model) FamilyStats() []FamilyStat {
	var out []FamilyStat
	for f := Family(0); f < NumFamilies; f++ {
		if mo.famN[f] == 0 {
			continue
		}
		st := FamilyStat{Family: f, N: mo.famN[f], Fitted: mo.time[f] != nil,
			TimeMaxRel: mo.famTimeMaxRel[f], EnergyMaxRel: mo.famEnergyMaxRel[f], EnergyMeanRel: mo.famEnergyMeanRel[f]}
		if st.Fitted {
			st.TimeR2 = mo.time[f].R2
		}
		out = append(out, st)
	}
	return out
}

// WorstRow is one measured-vs-predicted training row.
type WorstRow struct {
	Key        string
	MeasuredJ  float64
	PredictedJ float64
	RelErr     float64
}

// WorstRows returns the k training observations the model explains
// worst, most-wrong first.
func (mo *Model) WorstRows(k int) []WorstRow {
	if k > len(mo.worst) {
		k = len(mo.worst)
	}
	return append([]WorstRow(nil), mo.worst[:k]...)
}

// hashObs folds the training set — keys and measured values — into the
// fingerprint that invalidates checkpointed predictions on refit.
func hashObs(machine string, obs []Obs) uint64 {
	sorted := append([]Obs(nil), obs...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Key < sorted[j].Key })
	h := fnv.New64a()
	var buf [8]byte
	w := func(v float64) {
		binary.LittleEndian.PutUint64(buf[:], math.Float64bits(v))
		h.Write(buf[:])
	}
	fmt.Fprintf(h, "v%d|%s|", Version, machine)
	for _, o := range sorted {
		h.Write([]byte(o.Key))
		h.Write([]byte{0})
		w(o.Seconds)
		w(o.PKGJ)
		w(o.PP0J)
		w(o.DRAMJ)
		w(o.NICJ)
		w(o.SwitchJ)
	}
	return h.Sum64()
}

// timeScale is the weighted-least-squares row scale for the time fits:
// the cell's uncontended span, a size proxy known without measuring.
func timeScale(t Terms) float64 {
	if t.SpanSeconds > 0 {
		return t.SpanSeconds
	}
	return 1
}

// scaleRow divides a feature row by s (the weighted-least-squares row
// scaling the plane fits use).
func scaleRow(x []float64, s float64) []float64 {
	out := make([]float64, len(x))
	for i, v := range x {
		out[i] = v / s
	}
	return out
}
