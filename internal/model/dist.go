// Distributed-family accountants: closed-form work and wire-volume
// terms mirroring the internal/dmm rank programs (SUMMA, 2.5D,
// distributed classic Strassen, distributed CAPS). Totals are pinned
// against real mpi runs in the package tests; like the node
// accountants they exist so predicting a cell never has to run one.
package model

import (
	"fmt"
	"math"

	"capscale/internal/cluster"
	"capscale/internal/hw"
	"capscale/internal/kernel"
	"capscale/internal/strassen"
	"capscale/internal/task"
)

// DistKind names one distributed algorithm within FamilyDistributed.
type DistKind int

const (
	DistSUMMA DistKind = iota
	Dist25D
	DistDStrassen
	DistCAPS
)

// dStrassenLocalCutoff mirrors dmm's localCutoff: the dimension below
// which the distributed-Strassen DFS stops communicating.
const dStrassenLocalCutoff = 512

// distAcc accumulates per-rank compute phases plus cluster-wide wire
// traffic.
type distAcc struct {
	m *hw.Machine
	t Terms
}

// compute charges one mpi.ComputeWork-equivalent phase on every rank:
// per-rank flops/DRAM at the given kernel class, using all node cores
// (Cores=0 in the rank programs).
func (d *distAcc) compute(kind task.Kind, flopsPerRank, dramPerRank float64) {
	cores := d.m.Cores
	perCore := &task.Work{Kind: kind, Flops: flopsPerRank / float64(cores), DRAMBytes: dramPerRank / float64(cores)}
	lc := d.m.CostLeaf(perCore, d.m.Shared(cores), 0, false)
	// CompSeconds stays the single-core compute integral so the energy
	// features see the exact dynamic-power driver.
	d.t.CompSeconds += float64(cores) * lc.Utilization * lc.Duration
	d.t.Flops += flopsPerRank
	d.t.DRAMBytes += dramPerRank
	d.t.BusySeconds += float64(d.t.Workers) * lc.Duration
	d.t.SpanSeconds += lc.Duration
	d.t.Leaves++
}

// wire charges fabric traffic: totals for the cluster, per-rank counts
// for the critical-path estimate.
func (d *distAcc) wire(fab cluster.Interconnect, totalBytes, totalMsgs float64) {
	d.t.WireBytes += totalBytes
	d.t.Messages += totalMsgs
	p := float64(d.t.Workers)
	perRankMsgs := totalMsgs / p
	perRankBytes := totalBytes / p
	d.t.CommSeconds += perRankMsgs*(2*fab.PerMessageOverheadSec+fab.LatencySec) + perRankBytes/fab.Bandwidth
}

// Distributed returns the analytic terms for one distributed cell:
// algorithm kind, problem size, rank count and (for 2.5D) the
// replication factor, on the given node machine and fabric.
func Distributed(m *hw.Machine, fab cluster.Interconnect, kind DistKind, n, ranks, repl int) (Terms, error) {
	d := &distAcc{m: m, t: Terms{Family: FamilyDistributed, Workers: ranks, Cores: m.Cores}}
	switch kind {
	case DistSUMMA:
		if err := d.summa(fab, n, ranks); err != nil {
			return Terms{}, err
		}
	case Dist25D:
		if err := d.twoPointFive(fab, n, ranks, repl); err != nil {
			return Terms{}, err
		}
	case DistDStrassen:
		d.dStrassen(fab, n, ranks)
	case DistCAPS:
		if err := d.dCAPS(fab, n, ranks); err != nil {
			return Terms{}, err
		}
	default:
		return Terms{}, fmt.Errorf("model: unknown distributed kind %d", kind)
	}
	return d.t, nil
}

func (d *distAcc) summa(fab cluster.Interconnect, n, ranks int) error {
	q := int(math.Round(math.Sqrt(float64(ranks))))
	if q*q != ranks || n%q != 0 {
		return fmt.Errorf("model: SUMMA needs a square rank count dividing n, got p=%d n=%d", ranks, n)
	}
	bn := n / q
	blockBytes := kernel.Bytes(bn, bn)
	for k := 0; k < q; k++ {
		d.compute(task.KindGEMM, kernel.MulFlops(bn, bn, bn), 3*blockBytes)
	}
	// Per round, the A owner in each row and the B owner in each column
	// broadcast to q−1 peers: 2·q·(q−1) messages per round, q rounds.
	msgs := 2 * float64(q) * float64(q) * float64(q-1)
	d.wire(fab, msgs*blockBytes, msgs)
	return nil
}

func (d *distAcc) twoPointFive(fab cluster.Interconnect, n, ranks, c int) error {
	if c < 1 || ranks%c != 0 {
		return fmt.Errorf("model: 2.5D replication %d does not divide %d ranks", c, ranks)
	}
	q := int(math.Round(math.Sqrt(float64(ranks / c))))
	if q*q*c != ranks || q%c != 0 || n%q != 0 {
		return fmt.Errorf("model: 2.5D needs c·q² ranks with c|q and q|n, got p=%d c=%d n=%d", ranks, c, n)
	}
	bn := n / q
	blockBytes := kernel.Bytes(bn, bn)
	rounds := q / c
	for k := 0; k < rounds; k++ {
		d.compute(task.KindGEMM, kernel.MulFlops(bn, bn, bn), 3*blockBytes)
	}
	// SUMMA-phase traffic within each layer.
	msgs := 2 * float64(rounds) * float64(q) * float64(q-1) * float64(c)
	bytes := msgs * blockBytes
	if c > 1 {
		// Replication fan-out (A and B blocks per replica pair) and the
		// reduction of partial C blocks back onto layer 0.
		repl := float64(c-1) * float64(q) * float64(q)
		msgs += 2 * repl
		bytes += repl * 3 * blockBytes
		// Layer-0 ranks add the c−1 received partial C blocks; charge
		// the cluster-average share per rank (CompSeconds is invariant
		// to how many cores run it, see compute()).
		d.compute(task.KindAdd, repl*float64(bn)*float64(bn)/float64(ranks), repl*3*blockBytes/float64(ranks))
	}
	d.wire(fab, bytes, msgs)
	return nil
}

func (d *distAcc) dStrassen(fab cluster.Interconnect, n, ranks int) {
	p := float64(ranks)
	cutover := strassen.DefaultCutover
	// Communicating DFS levels: nodes of size curN while curN exceeds
	// both the cutover and the node-local cutoff and still halves.
	visits := 1.0
	curN := n
	var totalBytes, totalMsgs, addFlops float64
	for curN > cutover && curN > dStrassenLocalCutoff && curN%2 == 0 {
		half := float64(curN / 2)
		addFlops += visits * 18 * half * half / p
		if ranks > 1 {
			// Alltoall of 7·2·Bytes(half)²/p per rank split across p
			// peers: p·(p−1) messages per visited node.
			level := 14 * kernel.Bytes(curN/2, curN/2) / p
			totalBytes += visits * (p - 1) * level
			totalMsgs += visits * p * (p - 1)
		}
		visits *= 7
		curN /= 2
	}
	if addFlops > 0 {
		d.compute(task.KindAdd, addFlops, 3*8*addFlops)
	}
	// Node-local remainder: `visits` subproblems of dimension curN,
	// each work-shared across all ranks.
	mulFlops := visits * strassen.MulFlopsTotal(curN, cutover) / p
	localAdd := visits * strassen.AddFlopsTotal(curN, cutover, false) / p
	d.compute(task.KindBaseMul, mulFlops, visits*3*kernel.Bytes(curN, curN)/p)
	if localAdd > 0 {
		d.compute(task.KindAdd, localAdd, 3*8*localAdd)
	}
	if totalMsgs > 0 {
		d.wire(fab, totalBytes, totalMsgs)
	}
}

func (d *distAcc) dCAPS(fab cluster.Interconnect, n, ranks int) error {
	levels := 0
	for v := ranks; v > 1; v /= 7 {
		if v%7 != 0 {
			return fmt.Errorf("model: dCAPS needs 7^k ranks, got %d", ranks)
		}
		levels++
	}
	p := float64(ranks)
	cutover := strassen.DefaultCutover
	curN := n
	var totalBytes, totalMsgs float64
	group := p
	for l := 0; l < levels; l++ {
		half := float64(curN / 2)
		// 10 operand additions and 8 recombination additions,
		// work-shared over the level's group.
		d.compute(task.KindAdd, 10*half*half/group, 3*8*10*half*half/group)
		d.compute(task.KindAdd, 8*half*half/group, 3*8*8*half*half/group)
		// 6 down-exchanges of 2·Bytes(half)²/group and 6 up-exchanges
		// of half that, per rank.
		share := kernel.Bytes(curN/2, curN/2) / group
		totalBytes += p * 6 * 3 * share
		totalMsgs += p * 12
		group /= 7
		curN /= 2
	}
	// Local sequential Strassen on the owned subproblem.
	d.compute(task.KindBaseMul, strassen.MulFlopsTotal(curN, cutover), 3*kernel.Bytes(curN, curN))
	if add := strassen.AddFlopsTotal(curN, cutover, false); add > 0 {
		d.compute(task.KindAdd, add, 3*8*add)
	}
	if totalMsgs > 0 {
		d.wire(fab, totalBytes, totalMsgs)
	}
	return nil
}
