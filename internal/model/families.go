// Phantom accountants: closed-form complexity terms for the node
// algorithm families. Each mirrors its builder's leaf emission exactly
// (same blocking, same traffic classification, same structure for the
// span recursion) without allocating a task tree — prediction stays
// microseconds per cell where a tree build alone costs tens of
// milliseconds at paper sizes. The mirrors are pinned against the real
// builders in the package tests.
package model

import (
	"capscale/internal/blas"
	"capscale/internal/hw"
	"capscale/internal/kernel"
	"capscale/internal/strassen"
	"capscale/internal/task"
)

// acc accumulates leaf-class costs at uncontended bandwidth, the same
// baseline CriticalPath and SerialTime use.
type acc struct {
	m *hw.Machine
	c hw.Contention
	t Terms
}

func newAcc(m *hw.Machine, f Family, workers int) *acc {
	return &acc{m: m, c: m.Uncontended(), t: Terms{Family: f, Workers: workers}}
}

// leaf charges `count` identical leaves and returns the uncontended
// duration of one.
func (a *acc) leaf(w task.Work, count float64) float64 {
	lc := a.m.CostLeaf(&w, a.c, 0, false)
	a.t.CompSeconds += count * lc.Utilization * lc.Duration
	a.t.Flops += count * w.Flops
	a.t.DRAMBytes += count * w.DRAMBytes
	a.t.L3Bytes += count * w.L3Bytes
	a.t.Leaves += count
	a.t.BusySeconds += count * lc.Duration
	return lc.Duration
}

// FromTree derives the terms of an already-built task tree — used for
// the sparse workloads (their builders are cheap, O(n+nnz)) and to
// validate the phantom accountants against the real dense trees.
func FromTree(m *hw.Machine, f Family, root *task.Node, workers int) Terms {
	a := newAcc(m, f, workers)
	root.Walk(func(n *task.Node) {
		if n.IsLeaf() {
			a.leaf(*n.Work(), 1)
		}
	})
	a.t.SpanSeconds = m.CriticalPath(root)
	return a.t
}

// Classic mirrors blas.Build: Goto blocking from blas.PlanFor, a packed
// B panel per K step (worker-split copy chunks) followed by the
// M-partitioned GEMM chains.
func Classic(m *hw.Machine, n, workers int) Terms {
	a := newAcc(m, FamilyClassic, workers)
	plan := blas.PlanFor(m, n, n, n)
	span := 0.0
	N, K, M := n, n, n
	for jc := 0; jc < N; jc += plan.NC {
		ncCur := min(plan.NC, N-jc)
		for kc := 0; kc < K; kc += plan.KC {
			kcCur := min(plan.KC, K-kc)

			// Pack stage: row chunks of the KC×NC panel across workers.
			chunks := workers
			if chunks > kcCur {
				chunks = kcCur
			}
			packSpan := 0.0
			for t := 0; t < chunks; t++ {
				rows := kcCur*(t+1)/chunks - kcCur*t/chunks
				if rows == 0 {
					continue
				}
				d := a.leaf(task.Work{
					Kind:      task.KindCopy,
					DRAMBytes: kernel.Bytes(rows, ncCur),
					L3Bytes:   kernel.Bytes(rows, ncCur),
				}, 1)
				if d > packSpan {
					packSpan = d
				}
			}
			span += packSpan

			// Compute stage: ic blocks dealt round-robin into per-worker
			// pinned chains; the stage's span is the longest chain.
			var chainDur []float64
			for t := 0; t < workers; t++ {
				chainDur = append(chainDur, 0)
			}
			bi := 0
			for ic := 0; ic < M; ic += plan.MC {
				mcCur := min(plan.MC, M-ic)
				d := a.leaf(task.Work{
					Kind:      task.KindGEMM,
					Flops:     kernel.MulFlops(mcCur, ncCur, kcCur),
					DRAMBytes: kernel.Bytes(mcCur, kcCur) + 2*kernel.Bytes(mcCur, ncCur),
					L3Bytes:   kernel.Bytes(kcCur, ncCur),
				}, 1)
				chainDur[bi%workers] += d
				bi++
			}
			computeSpan := 0.0
			for _, d := range chainDur {
				if d > computeSpan {
					computeSpan = d
				}
			}
			span += computeSpan
		}
	}
	a.t.SpanSeconds = span
	return a.t
}

// subSummary is the memoized per-subtree accounting of the recursive
// accountants: totals plus the subtree span.
type subSummary struct {
	comp, flops, dram, l3, leaves, busy, span float64
}

func (s *subSummary) addLeafInto(a *acc, w task.Work, count float64) float64 {
	lc := a.m.CostLeaf(&w, a.c, 0, false)
	s.comp += count * lc.Utilization * lc.Duration
	s.flops += count * w.Flops
	s.dram += count * w.DRAMBytes
	s.l3 += count * w.L3Bytes
	s.leaves += count
	s.busy += count * lc.Duration
	return lc.Duration
}

func (s *subSummary) addChild(c subSummary, count float64) {
	s.comp += count * c.comp
	s.flops += count * c.flops
	s.dram += count * c.dram
	s.l3 += count * c.l3
	s.leaves += count * c.leaves
	s.busy += count * c.busy
}

func (s subSummary) intoTerms(t *Terms) {
	t.CompSeconds = s.comp
	t.Flops = s.flops
	t.DRAMBytes = s.dram
	t.L3Bytes = s.l3
	t.Leaves = s.leaves
	t.BusySeconds = s.busy
	t.SpanSeconds = s.span
}

// classifiedWork builds an Add/Copy/BaseMul work item with its traffic
// routed to DRAM or L3 the way the builders'
// LevelFor(whole-traffic, workers) test decides.
func classifiedWork(m *hw.Machine, kind task.Kind, flops, wholeTraffic, frac float64, workers int) task.Work {
	w := task.Work{Kind: kind, Flops: flops * frac}
	if m.LevelFor(wholeTraffic, workers) == hw.LevelDRAM {
		w.DRAMBytes = wholeTraffic * frac
	} else {
		w.L3Bytes = wholeTraffic * frac
	}
	return w
}

// Strassen mirrors strassen.Build with the workload's default options
// (cutover 64, unlimited task depth): 10+4 add leaves per classic
// level or 8+6 for Winograd, seven recursive products, a dense
// base-case leaf, plus the pad-in/pad-out stage for awkward sizes. All
// seven children of a node are identical, so the recursion memoizes on
// dimension.
func Strassen(m *hw.Machine, n, workers int, winograd bool) Terms {
	a := newAcc(m, FamilyStrassen, workers)
	sa := &strassenAcc{a: a, winograd: winograd, memo: map[int]subSummary{}}
	cutover := strassen.DefaultCutover
	padded := strassen.PaddedSize(n, cutover)
	s := sa.mul(padded)
	if padded != n {
		// paddedMul: Par(pad A, pad B) → recursion → unpad C; the pad
		// copies always charge DRAM.
		pad := subSummary{}
		d := pad.addLeafInto(a, task.Work{Kind: task.KindCopy, DRAMBytes: 2 * kernel.Bytes(n, n)}, 3)
		pad.addChild(s, 1)
		pad.span = d + s.span + d
		s = pad
	}
	s.intoTerms(&a.t)
	return a.t
}

type strassenAcc struct {
	a        *acc
	winograd bool
	memo     map[int]subSummary
}

func (sa *strassenAcc) mul(n int) subSummary {
	if s, ok := sa.memo[n]; ok {
		return s
	}
	var s subSummary
	m, workers := sa.a.m, sa.a.t.Workers
	if n <= strassen.DefaultCutover || n%2 != 0 {
		d := s.addLeafInto(sa.a, classifiedWork(m, task.KindBaseMul, kernel.MulFlops(n, n, n), kernel.MulTraffic(n, n, n), 1, workers), 1)
		s.span = d
		sa.memo[n] = s
		return s
	}
	half := n / 2
	child := sa.mul(half)
	addDur := func(addOps, srcs int, count float64) float64 {
		traffic := float64(srcs+1) * kernel.Bytes(half, half)
		return s.addLeafInto(sa.a, classifiedWork(m, task.KindAdd, float64(addOps)*float64(half)*float64(half), traffic, 1, workers), count)
	}
	if sa.winograd {
		// Pre: 8 identical 2-source adds in two chains of three plus
		// two singles — the chains bound the group's span.
		d := addDur(1, 2, 8)
		preSpan := 3 * d
		// Post: three sequential pairs — (v1,c11), (v2,c12), (c21,c22).
		d1 := addDur(1, 2, 1) // v1
		d2 := addDur(1, 2, 1) // c11
		g1 := maxf(d1, d2)
		d3 := addDur(1, 2, 1) // v2
		d4 := addDur(2, 3, 1) // c12
		g2 := maxf(d3, d4)
		d5 := addDur(1, 2, 1) // c21
		d6 := addDur(1, 2, 1) // c22
		g3 := maxf(d5, d6)
		s.addChild(child, 7)
		s.span = preSpan + child.span + g1 + g2 + g3
	} else {
		// Pre: 10 identical 2-source adds, all parallel.
		preSpan := addDur(1, 2, 10)
		// Post: C11(3 ops, 4 srcs), C12(1,2), C21(1,2), C22(3,4).
		p1 := addDur(3, 4, 2) // c11 and c22
		p2 := addDur(1, 2, 2) // c12 and c21
		s.addChild(child, 7)
		s.span = preSpan + child.span + maxf(p1, p2)
	}
	sa.memo[n] = s
	return s
}

// CAPS mirrors caps.Build with default options (cutover 64, cutoff
// depth 4): BFS levels with per-index owner masks (staged copies,
// work-shared adds, gather copies), DFS below the cutoff with a single
// owner, and the dense base case. The BFS region is at most
// 1+7+49+343+2401 nodes; the single-owner DFS region memoizes on
// dimension.
func CAPS(m *hw.Machine, n, workers int) Terms {
	a := newAcc(m, FamilyCAPS, workers)
	cutover := strassen.DefaultCutover
	padded := strassen.PaddedSize(n, cutover)
	maxDepth := 0
	for v := padded; v > cutover && v%2 == 0; v /= 2 {
		maxDepth++
	}
	bfsLevels := 4 // caps.DefaultCutoffDepth
	if bfsLevels > maxDepth {
		bfsLevels = maxDepth
	}
	leavesAtCutoff := 1
	for i := 0; i < bfsLevels; i++ {
		leavesAtCutoff *= 7
	}
	ca := &capsAcc{a: a, bfsLevels: bfsLevels, leavesAtCutoff: leavesAtCutoff, dfsMemo: map[int]subSummary{}}
	s := ca.mul(padded, 0, 0)
	if padded != n {
		pad := subSummary{}
		d := pad.addLeafInto(a, task.Work{Kind: task.KindCopy, DRAMBytes: 2 * kernel.Bytes(n, n)}, 3)
		pad.addChild(s, 1)
		pad.span = d + s.span + d
		s = pad
	}
	s.intoTerms(&a.t)
	return a.t
}

type capsAcc struct {
	a              *acc
	bfsLevels      int
	leavesAtCutoff int
	dfsMemo        map[int]subSummary
}

// owners mirrors caps.ownerMask + ownersOf: the worker count owning the
// subtree at (depth, idx).
func (ca *capsAcc) owners(depth, idx int) int {
	if ca.bfsLevels == 0 {
		return ca.a.t.Workers
	}
	var lo, hi int
	if depth >= ca.bfsLevels {
		for d := depth; d > ca.bfsLevels; d-- {
			idx /= 7
		}
		lo, hi = idx, idx
	} else {
		span := ca.leavesAtCutoff
		for i := 0; i < depth; i++ {
			span /= 7
		}
		lo = idx * span
		hi = lo + span - 1
	}
	workers := ca.a.t.Workers
	wLo := lo * workers / ca.leavesAtCutoff
	wHi := hi * workers / ca.leavesAtCutoff
	return wHi - wLo + 1
}

func (ca *capsAcc) mul(n, depth, idx int) subSummary {
	if n <= strassen.DefaultCutover || n%2 != 0 {
		return ca.baseMul(n, ca.owners(depth, idx))
	}
	if depth < ca.bfsLevels {
		return ca.bfsNode(n, depth, idx)
	}
	return ca.dfsNode(n, depth, idx)
}

// baseMul mirrors caps.baseMul: a single leaf for one owner, row-chunked
// work sharing otherwise, with per-chunk traffic classification.
func (ca *capsAcc) baseMul(n, owners int) subSummary {
	var s subSummary
	m, workers := ca.a.m, ca.a.t.Workers
	if owners > n {
		owners = n
	}
	mk := func(rows int, count float64) float64 {
		traffic := 3*kernel.Bytes(rows, n) + kernel.Bytes(n, n)
		return s.addLeafInto(ca.a, classifiedWork(m, task.KindBaseMul, kernel.MulFlops(rows, n, n), traffic, 1, workers), count)
	}
	if owners <= 1 {
		s.span = mk(n, 1)
		return s
	}
	for t := 0; t < owners; t++ {
		rows := n*(t+1)/owners - n*t/owners
		if rows == 0 {
			continue
		}
		if d := mk(rows, 1); d > s.span {
			s.span = d
		}
	}
	return s
}

// addLeaf mirrors caps.addLeaf: whole-traffic classification, split
// into `owners` equal chunks; returns the chunk duration (the leaf's
// contribution to a parallel group's span).
func (ca *capsAcc) addLeaf(s *subSummary, half, addOps, srcs, owners int) float64 {
	m, workers := ca.a.m, ca.a.t.Workers
	traffic := float64(srcs+1) * kernel.Bytes(half, half)
	flops := float64(addOps) * float64(half) * float64(half)
	if owners <= 1 {
		return s.addLeafInto(ca.a, classifiedWork(m, task.KindAdd, flops, traffic, 1, workers), 1)
	}
	frac := 1 / float64(owners)
	return s.addLeafInto(ca.a, classifiedWork(m, task.KindAdd, flops, traffic, frac, workers), float64(owners))
}

// copyLeaf mirrors caps.copyLeaf: one staging copy, never chunked.
func (ca *capsAcc) copyLeaf(s *subSummary, half int) float64 {
	m, workers := ca.a.m, ca.a.t.Workers
	return s.addLeafInto(ca.a, classifiedWork(m, task.KindCopy, 0, 2*kernel.Bytes(half, half), 1, workers), 1)
}

// loneFactor reports, per subproblem k, whether the left/right factor
// is a bare quadrant (Q3,Q4 left; Q2,Q5 right in caps.buildSubproblems).
func loneFactor(k int) (left, right bool) {
	return k == 2 || k == 3, k == 1 || k == 4
}

func (ca *capsAcc) bfsNode(n, depth, idx int) subSummary {
	var s subSummary
	half := n / 2
	prepSpan, recSpan, gatherSpan := 0.0, 0.0, 0.0
	for k := 0; k < 7; k++ {
		childOwners := ca.owners(depth+1, idx*7+k)
		lone, rone := loneFactor(k)
		for _, isLone := range []bool{lone, rone} {
			var d float64
			if isLone {
				d = ca.copyLeaf(&s, half) // staged bare quadrant
			} else {
				d = ca.addLeaf(&s, half, 1, 2, childOwners)
			}
			if d > prepSpan {
				prepSpan = d
			}
		}
		child := ca.mul(half, depth+1, idx*7+k)
		s.addChild(child, 1)
		if child.span > recSpan {
			recSpan = child.span
		}
		if d := ca.copyLeaf(&s, half); d > gatherSpan {
			gatherSpan = d
		}
	}
	s.span = prepSpan + recSpan + gatherSpan + ca.recombine(&s, half, ca.owners(depth, idx))
	return s
}

// recombine mirrors caps.recombine, returning the group's span.
func (ca *capsAcc) recombine(s *subSummary, half, owners int) float64 {
	d1 := ca.addLeaf(s, half, 3, 4, owners) // c11
	d2 := ca.addLeaf(s, half, 1, 2, owners) // c12
	d3 := ca.addLeaf(s, half, 1, 2, owners) // c21
	d4 := ca.addLeaf(s, half, 3, 4, owners) // c22
	return maxf(maxf(d1, d2), maxf(d3, d4))
}

func (ca *capsAcc) dfsNode(n, depth, idx int) subSummary {
	owners := ca.owners(depth, idx)
	// Below the BFS cutoff every subtree has one owner, so the summary
	// depends only on the dimension.
	if owners == 1 {
		if s, ok := ca.dfsMemo[n]; ok {
			return s
		}
	}
	var s subSummary
	half := n / 2
	for k := 0; k < 7; k++ {
		lone, rone := loneFactor(k)
		preSpan := 0.0
		for _, isLone := range []bool{lone, rone} {
			if isLone {
				continue // DFS uses bare quadrants in place
			}
			if d := ca.addLeaf(&s, half, 1, 2, owners); d > preSpan {
				preSpan = d
			}
		}
		child := ca.mul(half, depth+1, idx*7+k)
		s.addChild(child, 1)
		s.span += preSpan + child.span
	}
	s.span += ca.recombine(&s, half, owners)
	if owners == 1 {
		ca.dfsMemo[n] = s
	}
	return s
}

func maxf(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
