package model_test

import (
	"fmt"
	"math"
	"testing"

	"capscale/internal/blas"
	"capscale/internal/caps"
	"capscale/internal/cluster"
	"capscale/internal/dmm"
	"capscale/internal/hw"
	"capscale/internal/matrix"
	"capscale/internal/model"
	"capscale/internal/mpi"
	"capscale/internal/strassen"
	"capscale/internal/task"
)

// buildTree mirrors workload.BuildTree's default options for the dense
// families (the accountants assume exactly these).
func buildTree(m *hw.Machine, fam model.Family, n, threads int, winograd bool) *task.Node {
	a, b, c := matrix.Shape(n, n), matrix.Shape(n, n), matrix.Shape(n, n)
	switch fam {
	case model.FamilyClassic:
		return blas.Build(m, c, a, b, blas.Options{Workers: threads})
	case model.FamilyStrassen:
		return strassen.Build(m, c, a, b, threads, strassen.Options{Winograd: winograd})
	case model.FamilyCAPS:
		return caps.Build(m, c, a, b, threads, caps.Options{})
	}
	panic("unreachable")
}

func relDiff(a, b float64) float64 {
	if a == b {
		return 0
	}
	return math.Abs(a-b) / math.Max(math.Abs(a), math.Abs(b))
}

func checkTerms(t *testing.T, got, want model.Terms) {
	t.Helper()
	cmp := []struct {
		name      string
		got, want float64
	}{
		{"CompSeconds", got.CompSeconds, want.CompSeconds},
		{"Flops", got.Flops, want.Flops},
		{"DRAMBytes", got.DRAMBytes, want.DRAMBytes},
		{"L3Bytes", got.L3Bytes, want.L3Bytes},
		{"Leaves", got.Leaves, want.Leaves},
		{"BusySeconds", got.BusySeconds, want.BusySeconds},
		{"SpanSeconds", got.SpanSeconds, want.SpanSeconds},
	}
	for _, c := range cmp {
		if relDiff(c.got, c.want) > 1e-9 {
			t.Errorf("%s: accountant %v vs tree %v (rel %.2e)", c.name, c.got, c.want, relDiff(c.got, c.want))
		}
	}
}

// The phantom accountants must reproduce the real builders' totals and
// critical path exactly — they are the model's feature source, and any
// drift silently becomes prediction bias.
func TestAccountantsMatchTrees(t *testing.T) {
	m := hw.HaswellE31225()
	sizes := []int{48, 64, 96, 128, 200, 256, 384}
	threads := []int{1, 2, 3, 4}
	if testing.Short() {
		sizes = []int{64, 128, 200}
		threads = []int{1, 4}
	}
	for _, n := range sizes {
		for _, p := range threads {
			n, p := n, p
			t.Run(fmt.Sprintf("classic/%d/%d", n, p), func(t *testing.T) {
				root := buildTree(m, model.FamilyClassic, n, p, false)
				checkTerms(t, model.Classic(m, n, p), model.FromTree(m, model.FamilyClassic, root, p))
			})
			t.Run(fmt.Sprintf("strassen/%d/%d", n, p), func(t *testing.T) {
				root := buildTree(m, model.FamilyStrassen, n, p, false)
				checkTerms(t, model.Strassen(m, n, p, false), model.FromTree(m, model.FamilyStrassen, root, p))
			})
			t.Run(fmt.Sprintf("winograd/%d/%d", n, p), func(t *testing.T) {
				a, b, c := matrix.Shape(n, n), matrix.Shape(n, n), matrix.Shape(n, n)
				root := strassen.Build(m, c, a, b, p, strassen.Options{Winograd: true})
				checkTerms(t, model.Strassen(m, n, p, true), model.FromTree(m, model.FamilyStrassen, root, p))
			})
			t.Run(fmt.Sprintf("caps/%d/%d", n, p), func(t *testing.T) {
				root := buildTree(m, model.FamilyCAPS, n, p, false)
				checkTerms(t, model.CAPS(m, n, p), model.FromTree(m, model.FamilyCAPS, root, p))
			})
		}
	}
}

// distCase runs one rank program for real and returns the mpi result.
func distCase(t *testing.T, m *hw.Machine, spec string, ranks int, prog func(*mpi.Rank)) *mpi.Result {
	t.Helper()
	sp, err := cluster.ParseSpec(spec)
	if err != nil {
		t.Fatalf("spec %q: %v", spec, err)
	}
	fab, err := sp.Comms.Fabric()
	if err != nil {
		t.Fatalf("fabric: %v", err)
	}
	cl, err := cluster.New(m, sp.Nodes, fab)
	if err != nil {
		t.Fatalf("cluster: %v", err)
	}
	return mpi.Run(cl, ranks, prog)
}

func fabricOf(t *testing.T, spec string) cluster.Interconnect {
	t.Helper()
	sp, err := cluster.ParseSpec(spec)
	if err != nil {
		t.Fatalf("spec %q: %v", spec, err)
	}
	fab, err := sp.Comms.Fabric()
	if err != nil {
		t.Fatalf("fabric: %v", err)
	}
	return fab
}

// The distributed accountants' closed-form wire terms must match what
// the rank programs actually offer to the simulated fabric.
func TestDistributedTermsMatchMPI(t *testing.T) {
	m := hw.HaswellE31225()
	cases := []struct {
		name  string
		kind  model.DistKind
		spec  string
		n     int
		ranks int
		repl  int
		prog  func(*mpi.Rank)
	}{
		{"summa/512/16", model.DistSUMMA, "16x1GbE", 512, 16, 1, dmm.SUMMA(512)},
		{"summa/768/9", model.DistSUMMA, "9x1GbE", 768, 9, 1, dmm.SUMMA(768)},
		{"25d/512/8c2", model.Dist25D, "8x1GbE", 512, 8, 2, dmm.TwoPointFiveD(512, 2)},
		{"25d/768/9c1", model.Dist25D, "9x1GbE", 768, 9, 1, dmm.TwoPointFiveD(768, 1)},
		{"dstrassen/1024/4", model.DistDStrassen, "4x1GbE", 1024, 4, 1, dmm.Strassen(1024, 0)},
		{"dstrassen/2048/8", model.DistDStrassen, "8x1GbE", 2048, 8, 1, dmm.Strassen(2048, 0)},
		{"dcaps/512/7", model.DistCAPS, "7x1GbE", 512, 7, 1, dmm.CAPS(512, 0)},
		{"dcaps/1024/49", model.DistCAPS, "49x1GbE", 1024, 49, 1, dmm.CAPS(1024, 0)},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			terms, err := model.Distributed(m, fabricOf(t, tc.spec), tc.kind, tc.n, tc.ranks, tc.repl)
			if err != nil {
				t.Fatalf("Distributed: %v", err)
			}
			res := distCase(t, m, tc.spec, tc.ranks, tc.prog)
			if relDiff(terms.WireBytes, res.BytesSent) > 1e-9 {
				t.Errorf("WireBytes: accountant %v vs mpi %v", terms.WireBytes, res.BytesSent)
			}
			if int(terms.Messages+0.5) != res.Messages {
				t.Errorf("Messages: accountant %v vs mpi %d", terms.Messages, res.Messages)
			}
			if terms.Workers != tc.ranks || terms.Family != model.FamilyDistributed {
				t.Errorf("terms coordinates wrong: %+v", terms)
			}
			// CommSeconds is an estimate, not pinned — but it must be
			// positive whenever traffic flowed, and the compute integral
			// must be positive always.
			if res.BytesSent > 0 && terms.CommSeconds <= 0 {
				t.Errorf("CommSeconds %v with %v wire bytes", terms.CommSeconds, res.BytesSent)
			}
			if terms.CompSeconds <= 0 {
				t.Errorf("CompSeconds %v", terms.CompSeconds)
			}
		})
	}
}

// mkObs synthesizes a measured observation from known ground-truth
// platform coefficients, so the fit must recover them (and predictions
// on held-out cells must land on the synthetic truth).
func synthObs(m *hw.Machine, terms model.Terms, key string) model.Obs {
	p := float64(terms.Workers)
	cores := float64(terms.Cores)
	var T float64
	if terms.Family == model.FamilyDistributed {
		T = terms.CompSeconds/cores + terms.CommSeconds
	} else {
		T = (terms.CompSeconds+terms.Leaves*m.TaskOverhead)/p + 0.8*terms.SpanSeconds
	}
	o := model.Obs{Key: key, Terms: terms, Seconds: T}
	if terms.Family == model.FamilyDistributed {
		o.PKGJ = p*T*20 + p*terms.CompSeconds*9 + terms.Messages*1e-7
		o.PP0J = p*T*12 + p*terms.CompSeconds*8
		o.DRAMJ = p*T*3 + p*terms.DRAMBytes/1e9*0.6
		o.NICJ = p*T*2.5 + terms.WireBytes/1e9*0.8
		o.SwitchJ = T * 30
	} else {
		o.PKGJ = 15*T + 4*p*T + 9*terms.CompSeconds + 1.5*terms.BusySeconds + 0.02*terms.L3Bytes/1e9
		o.PP0J = 4*p*T + 9*terms.CompSeconds + 1.5*terms.BusySeconds
		o.DRAMJ = 3*T + 0.6*terms.DRAMBytes/1e9
	}
	return o
}

// Fitting on synthetic observations generated from an exact linear
// model must predict held-out cells essentially exactly, with a tight
// confidence interval; refitting on a different training set must
// change the model tag.
func TestFitPredictRoundTrip(t *testing.T) {
	m := hw.HaswellE31225()
	fab := fabricOf(t, "16x1GbE")

	var train, held []model.Obs
	for _, n := range []int{64, 128, 256, 384} {
		for _, p := range []int{1, 2, 4} {
			for fam, terms := range map[string]model.Terms{
				"classic":  model.Classic(m, n, p),
				"strassen": model.Strassen(m, n, p, false),
				"caps":     model.CAPS(m, n, p),
			} {
				o := synthObs(m, terms, fmt.Sprintf("%s/%d/%d", fam, n, p))
				if n == 256 && p == 2 {
					held = append(held, o)
				} else {
					train = append(train, o)
				}
			}
		}
	}
	for i, n := range []int{512, 1024, 1536, 2048} {
		terms, err := model.Distributed(m, fab, model.DistSUMMA, n, 16, 1)
		if err != nil {
			t.Fatalf("summa terms: %v", err)
		}
		o := synthObs(m, terms, fmt.Sprintf("summa/%d", n))
		if i == 2 {
			held = append(held, o)
		} else {
			train = append(train, o)
		}
	}

	mo, err := model.Fit(m, train)
	if err != nil {
		t.Fatalf("Fit: %v", err)
	}
	for _, o := range held {
		pred, err := mo.Predict(o.Terms)
		if err != nil {
			t.Fatalf("Predict(%s): %v", o.Key, err)
		}
		wantE := o.PKGJ + o.DRAMJ + o.NICJ + o.SwitchJ
		if re := relDiff(pred.Seconds, o.Seconds); re > 1e-6 {
			t.Errorf("%s: time rel err %.2e (pred %v want %v)", o.Key, re, pred.Seconds, o.Seconds)
		}
		if re := relDiff(pred.EnergyJ(), wantE); re > 1e-6 {
			t.Errorf("%s: energy rel err %.2e (pred %v want %v)", o.Key, re, pred.EnergyJ(), wantE)
		}
		if pred.RelCI > 0.01 {
			t.Errorf("%s: RelCI %v on an exact synthetic fit", o.Key, pred.RelCI)
		}
	}

	if mo.CanPredict(model.FamilySparse) {
		t.Error("sparse family predictable with zero sparse observations")
	}
	if _, err := mo.Predict(model.Terms{Family: model.FamilySparse, Workers: 2}); err == nil {
		t.Error("Predict on an unfitted family should error")
	}

	// Diagnostics present and sane.
	if len(mo.Coefficients()) == 0 {
		t.Error("no coefficients reported")
	}
	stats := mo.FamilyStats()
	if len(stats) != 4 {
		t.Errorf("FamilyStats: got %d families, want 4", len(stats))
	}
	for _, st := range stats {
		if !st.Fitted {
			t.Errorf("family %v not fitted", st.Family)
		}
		if st.EnergyMaxRel > 1e-6 {
			t.Errorf("family %v in-sample max rel %v on exact synthetic data", st.Family, st.EnergyMaxRel)
		}
	}
	if rows := mo.WorstRows(3); len(rows) != 3 {
		t.Errorf("WorstRows(3): got %d", len(rows))
	}

	// Tag must change when the training set does.
	mo2, err := model.Fit(m, train[:len(train)-1])
	if err != nil {
		t.Fatalf("refit: %v", err)
	}
	if mo.Tag() == mo2.Tag() {
		t.Errorf("tag unchanged across different training sets: %s", mo.Tag())
	}
	if mo.TrainingSize() != len(train) {
		t.Errorf("TrainingSize %d want %d", mo.TrainingSize(), len(train))
	}
}

// Too few observations in every family must fail loudly, not fit junk.
func TestFitNeedsObservations(t *testing.T) {
	m := hw.HaswellE31225()
	if _, err := model.Fit(m, nil); err == nil {
		t.Error("Fit on empty observations should error")
	}
	one := []model.Obs{synthObs(m, model.Classic(m, 64, 1), "classic/64/1")}
	if _, err := model.Fit(m, one); err == nil {
		t.Error("Fit on one observation should error")
	}
}
