package sparse

import (
	"fmt"

	"capscale/internal/hw"
	"capscale/internal/sim"
	"capscale/internal/task"
)

// Format selects a storage scheme for the SpMV study.
type Format int

const (
	// FormatCSR is compressed sparse row.
	FormatCSR Format = iota
	// FormatCOO is coordinate storage with scatter accumulation.
	FormatCOO
	// FormatELL is ELLPACK with padding to the widest row.
	FormatELL
)

var formatNames = [...]string{"CSR", "COO", "ELL"}

func (f Format) String() string {
	if f < 0 || int(f) >= len(formatNames) {
		return fmt.Sprintf("Format(%d)", int(f))
	}
	return formatNames[f]
}

// Formats lists the storage schemes under study.
func Formats() []Format { return []Format{FormatCSR, FormatCOO, FormatELL} }

// Options configures SpMV tree construction.
type Options struct {
	// Workers is the thread count rows are partitioned over.
	Workers int
	// Iterations repeats y = A·x, as an iterative solver's inner loop
	// does; power averages over a realistic duration.
	Iterations int
	// WithMath attaches real kernels (x and y buffers are allocated
	// internally; Y returns the result).
	WithMath bool
}

// SpMV holds a built SpMV task tree and, when math is attached, its
// vectors.
type SpMV struct {
	Root *task.Node
	X, Y []float64
}

// BuildSpMV constructs the row-partitioned parallel SpMV tree for the
// matrix in the given storage format. Traffic accounting per format:
//
//   - CSR streams nnz·(8+4) bytes of values+indices plus row pointers;
//   - COO streams nnz·(8+4+4) and pays read+write scatter accumulation
//     on y instead of one streaming write;
//   - ELL streams width·rows·(8+4) including padding, and its
//     vectorized kernel spends multiply slots on the padding too.
//
// All formats gather x irregularly: that traffic lands in L3 or DRAM
// depending on whether x fits the workers' cache share.
func BuildSpMV(m *hw.Machine, a *CSR, format Format, opt Options) *SpMV {
	if opt.Workers < 1 {
		panic(fmt.Sprintf("sparse: workers %d", opt.Workers))
	}
	iters := opt.Iterations
	if iters < 1 {
		iters = 1
	}

	out := &SpMV{}
	var coo *COO
	var ell *ELL
	switch format {
	case FormatCOO:
		coo = a.ToCOO()
	case FormatELL:
		ell = a.ToELL()
	case FormatCSR:
	default:
		panic(fmt.Sprintf("sparse: unknown format %v", format))
	}
	if opt.WithMath {
		out.X = make([]float64, a.ColsN)
		for i := range out.X {
			out.X[i] = 1 / float64(i+1)
		}
		out.Y = make([]float64, a.RowsN)
	}

	// Row chunks balanced by nnz, one chain per worker.
	bounds := nnzBalancedBounds(a, opt.Workers)
	var regions task.Regions
	yRegion := make([]task.RegionID, opt.Workers)
	for i := range yRegion {
		yRegion[i] = regions.New()
	}
	xLevel := m.LevelFor(8*float64(a.ColsN), opt.Workers)

	iterNodes := make([]*task.Node, 0, iters)
	for it := 0; it < iters; it++ {
		chains := make([]*task.Node, 0, opt.Workers)
		for w := 0; w < opt.Workers; w++ {
			lo, hi := bounds[w], bounds[w+1]
			if lo == hi {
				continue
			}
			leafWork := chunkWork(m, a, ell, format, lo, hi, xLevel, yRegion[w])
			leafWork.Label = fmt.Sprintf("spmv %v it%d rows[%d,%d)", format, it, lo, hi)
			if opt.WithMath {
				leafWork.Run = chunkRun(a, coo, ell, format, out, lo, hi)
			}
			chains = append(chains, task.Leaf(leafWork).WithAffinityMask(task.SingleWorker(w)))
		}
		iterNodes = append(iterNodes, task.Par(chains...))
	}
	out.Root = task.Seq(iterNodes...)
	return out
}

// nnzBalancedBounds splits rows into `workers` chunks of roughly equal
// non-zero counts (the partition a tuned SpMV uses for skewed rows).
func nnzBalancedBounds(a *CSR, workers int) []int {
	bounds := make([]int, workers+1)
	total := a.NNZ()
	r := 0
	for w := 1; w < workers; w++ {
		targetCum := total * w / workers
		for r < a.RowsN && int(a.RowPtr[r+1]) < targetCum {
			r++
		}
		bounds[w] = r
	}
	bounds[workers] = a.RowsN
	return bounds
}

func chunkWork(m *hw.Machine, a *CSR, ell *ELL, format Format, lo, hi int, xLevel hw.TrafficLevel, yReg task.RegionID) task.Work {
	rows := float64(hi - lo)
	nnz := float64(a.RowPtr[hi] - a.RowPtr[lo])

	w := task.Work{
		Kind:        task.KindAdd, // bandwidth-bound kernel class
		Writes:      []task.RegionID{yReg},
		RegionBytes: 8 * rows,
	}
	var stream, yBytes, flops, xBytes float64
	switch format {
	case FormatCSR:
		stream = nnz*(8+4) + 4*rows
		yBytes = 8 * rows
		flops = 2 * nnz
	case FormatCOO:
		stream = nnz * (8 + 4 + 4)
		yBytes = 2 * 8 * nnz // read-modify-write accumulation per entry
		flops = 2 * nnz
	case FormatELL:
		width := float64(ell.Width)
		stream = width * rows * (8 + 4)
		yBytes = 8 * rows
		flops = 2 * width * rows // vectorized kernel computes padding
	}
	xBytes = 8 * nnz
	w.Flops = flops
	w.DRAMBytes = stream + yBytes
	if xLevel == hw.LevelDRAM {
		w.DRAMBytes += xBytes
	} else {
		w.L3Bytes = xBytes
	}
	return w
}

func chunkRun(a *CSR, coo *COO, ell *ELL, format Format, out *SpMV, lo, hi int) func() {
	switch format {
	case FormatCSR:
		return func() { a.MulVecRows(out.Y, out.X, lo, hi) }
	case FormatCOO:
		return func() {
			// Row-major sorted COO: entries of rows [lo,hi) form one
			// contiguous range.
			for i := lo; i < hi; i++ {
				out.Y[i] = 0
			}
			for k := range coo.V {
				r := int(coo.I[k])
				if r >= lo && r < hi {
					out.Y[r] += coo.V[k] * out.X[coo.J[k]]
				}
			}
		}
	default: // FormatELL
		return func() {
			for r := lo; r < hi; r++ {
				base := r * ell.Width
				sum := 0.0
				for k := 0; k < ell.Width; k++ {
					if c := ell.Col[base+k]; c >= 0 {
						sum += ell.V[base+k] * out.X[c]
					}
				}
				out.Y[r] = sum
			}
		}
	}
}

// StudyPoint is one cell of the storage-format energy study.
type StudyPoint struct {
	Format  Format
	Threads int
	Seconds float64
	Watts   float64
	EP      float64 // Eq. 1: watts / seconds
	BytesMB float64 // total traffic charged
}

// EnergyStudy runs every storage format across the thread counts on
// the simulated machine and returns the Eq. 1 figures — the sparse
// analogue of the paper's dense comparison.
func EnergyStudy(m *hw.Machine, a *COO, threads []int, iterations int) []StudyPoint {
	csr := a.ToCSR()
	var out []StudyPoint
	for _, f := range Formats() {
		for _, p := range threads {
			spmv := BuildSpMV(m, csr, f, Options{Workers: p, Iterations: iterations})
			res := sim.Run(m, spmv.Root, sim.Config{Workers: p})
			stats := task.Collect(spmv.Root)
			out = append(out, StudyPoint{
				Format:  f,
				Threads: p,
				Seconds: res.Makespan,
				Watts:   res.AvgPowerTotal(),
				EP:      res.AvgPowerTotal() / res.Makespan,
				BytesMB: (stats.DRAMBytes + stats.L3Bytes) / 1e6,
			})
		}
	}
	return out
}

// bytesPerNNZ is exported for analysis: the storage traffic each
// format moves per non-zero (CSR 12, COO 16 plus y scatter, ELL
// 12/(1−waste) effective).
func BytesPerNNZ(f Format, a *CSR) float64 {
	switch f {
	case FormatCSR:
		return 12 + 4*float64(a.RowsN)/float64(a.NNZ())
	case FormatCOO:
		return 16
	case FormatELL:
		ell := a.ToELL()
		return 12 * float64(ell.RowsN*ell.Width) / float64(a.NNZ())
	default:
		panic(fmt.Sprintf("sparse: unknown format %v", f))
	}
}
