package sparse

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"capscale/internal/matrix"
)

func denseMulVec(d *matrix.Dense, x []float64) []float64 {
	y := make([]float64, d.Rows())
	for i := 0; i < d.Rows(); i++ {
		sum := 0.0
		row := d.Row(i)
		for j, v := range row {
			sum += v * x[j]
		}
		y[i] = sum
	}
	return y
}

func vecAlmostEqual(a, b []float64, tol float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if math.Abs(a[i]-b[i]) > tol*math.Max(1, math.Abs(b[i])) {
			return false
		}
	}
	return true
}

func TestNewCOOValidation(t *testing.T) {
	if _, err := NewCOO(0, 3, nil, nil, nil); err == nil {
		t.Fatal("zero rows accepted")
	}
	if _, err := NewCOO(2, 2, []int32{0}, []int32{0, 1}, []float64{1}); err == nil {
		t.Fatal("mismatched triples accepted")
	}
	if _, err := NewCOO(2, 2, []int32{5}, []int32{0}, []float64{1}); err == nil {
		t.Fatal("out-of-range entry accepted")
	}
	if _, err := NewCOO(2, 2, []int32{0, 0}, []int32{1, 1}, []float64{1, 2}); err == nil {
		t.Fatal("duplicate entry accepted")
	}
}

func TestNewCOOSortsTriples(t *testing.T) {
	a, err := NewCOO(3, 3, []int32{2, 0, 1}, []int32{0, 2, 1}, []float64{3, 1, 2})
	if err != nil {
		t.Fatal(err)
	}
	if a.I[0] != 0 || a.I[1] != 1 || a.I[2] != 2 {
		t.Fatalf("not row-sorted: %v", a.I)
	}
	if a.V[0] != 1 || a.V[1] != 2 || a.V[2] != 3 {
		t.Fatalf("values not carried: %v", a.V)
	}
}

func TestFromDenseToDenseRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	d := matrix.New(8, 6)
	for i := 0; i < 8; i++ {
		for j := 0; j < 6; j++ {
			if rng.Float64() < 0.3 {
				d.Set(i, j, rng.Float64())
			}
		}
	}
	back := FromDense(d).ToDense()
	if !matrix.Equal(d, back) {
		t.Fatal("dense round trip failed")
	}
}

func TestConversionsPreserveStructure(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	coo := RandomUniform(rng, 32, 0.1)
	csr := coo.ToCSR()
	if csr.NNZ() != coo.NNZ() {
		t.Fatalf("CSR nnz %d vs COO %d", csr.NNZ(), coo.NNZ())
	}
	back := csr.ToCOO()
	if !matrix.Equal(coo.ToDense(), back.ToDense()) {
		t.Fatal("COO→CSR→COO changed the matrix")
	}
	ell := csr.ToELL()
	if ell.NNZ() != coo.NNZ() {
		t.Fatalf("ELL nnz %d vs COO %d", ell.NNZ(), coo.NNZ())
	}
}

func TestELLWidthAndPadding(t *testing.T) {
	// Rows with 1, 3, 2 entries → width 3, waste = 1 - 6/9.
	a, err := NewCOO(3, 4,
		[]int32{0, 1, 1, 1, 2, 2},
		[]int32{0, 0, 1, 2, 1, 3},
		[]float64{1, 2, 3, 4, 5, 6})
	if err != nil {
		t.Fatal(err)
	}
	ell := a.ToCSR().ToELL()
	if ell.Width != 3 {
		t.Fatalf("width %d", ell.Width)
	}
	if w := ell.PaddingWaste(); math.Abs(w-(1-6.0/9.0)) > 1e-12 {
		t.Fatalf("waste %v", w)
	}
}

func TestMulVecAllFormatsMatchDense(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for _, gen := range []func() *COO{
		func() *COO { return RandomUniform(rng, 50, 0.08) },
		func() *COO { return Banded(rng, 50, 2) },
		func() *COO { return PowerLaw(rng, 50, 4, 2.0) },
	} {
		coo := gen()
		d := coo.ToDense()
		x := make([]float64, coo.ColsN)
		for i := range x {
			x[i] = rng.Float64()
		}
		want := denseMulVec(d, x)

		y := make([]float64, coo.RowsN)
		coo.MulVec(y, x)
		if !vecAlmostEqual(y, want, 1e-12) {
			t.Fatal("COO MulVec wrong")
		}
		csr := coo.ToCSR()
		csr.MulVec(y, x)
		if !vecAlmostEqual(y, want, 1e-12) {
			t.Fatal("CSR MulVec wrong")
		}
		csr.ToELL().MulVec(y, x)
		if !vecAlmostEqual(y, want, 1e-12) {
			t.Fatal("ELL MulVec wrong")
		}
	}
}

func TestMulVecRowsPartial(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	csr := RandomUniform(rng, 40, 0.1).ToCSR()
	x := make([]float64, 40)
	for i := range x {
		x[i] = rng.Float64()
	}
	full := make([]float64, 40)
	csr.MulVec(full, x)
	part := make([]float64, 40)
	csr.MulVecRows(part, x, 10, 30)
	for i := 10; i < 30; i++ {
		if part[i] != full[i] {
			t.Fatalf("row %d differs", i)
		}
	}
}

func TestMulVecShapePanics(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	coo := RandomUniform(rng, 8, 0.2)
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	coo.MulVec(make([]float64, 3), make([]float64, 8))
}

func TestGenerators(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	uni := RandomUniform(rng, 100, 0.05)
	if nnz := uni.NNZ(); nnz < 400 || nnz > 600 {
		t.Fatalf("uniform nnz %d for target 500", nnz)
	}
	band := Banded(rng, 100, 1)
	if band.NNZ() != 3*100-2 {
		t.Fatalf("tridiagonal nnz %d", band.NNZ())
	}
	pl := PowerLaw(rng, 200, 6, 2.0)
	csr := pl.ToCSR()
	maxRow := 0
	for r := 0; r < 200; r++ {
		if l := csr.RowNNZ(r); l > maxRow {
			maxRow = l
		}
	}
	avg := float64(pl.NNZ()) / 200
	if float64(maxRow) < 3*avg {
		t.Fatalf("power law not skewed: max row %d vs avg %.1f", maxRow, avg)
	}
}

func TestGeneratorsDeterministic(t *testing.T) {
	a := RandomUniform(rand.New(rand.NewSource(7)), 64, 0.1)
	b := RandomUniform(rand.New(rand.NewSource(7)), 64, 0.1)
	if !matrix.Equal(a.ToDense(), b.ToDense()) {
		t.Fatal("same seed differs")
	}
}

func TestPropertySpMVLinearity(t *testing.T) {
	// A(x + z) == Ax + Az for every format.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 4 + rng.Intn(30)
		coo := RandomUniform(rng, n, 0.15)
		csr := coo.ToCSR()
		ell := csr.ToELL()
		x := make([]float64, n)
		z := make([]float64, n)
		xz := make([]float64, n)
		for i := range x {
			x[i], z[i] = rng.Float64(), rng.Float64()
			xz[i] = x[i] + z[i]
		}
		for _, mv := range []func(y, x []float64){coo.MulVec, csr.MulVec, ell.MulVec} {
			ax, az, axz := make([]float64, n), make([]float64, n), make([]float64, n)
			mv(ax, x)
			mv(az, z)
			mv(axz, xz)
			for i := range ax {
				if math.Abs(axz[i]-(ax[i]+az[i])) > 1e-10 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyConversionRoundTrips(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(40)
		coo := RandomUniform(rng, n, 0.1)
		d1 := coo.ToDense()
		d2 := coo.ToCSR().ToCOO().ToDense()
		d3 := FromDense(coo.ToCSR().ToELL().mustDense()).ToDense()
		return matrix.Equal(d1, d2) && matrix.Equal(d1, d3)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// mustDense materializes an ELL matrix densely for round-trip checks.
func (a *ELL) mustDense() *matrix.Dense {
	d := matrix.New(a.RowsN, a.ColsN)
	for r := 0; r < a.RowsN; r++ {
		for k := 0; k < a.Width; k++ {
			if c := a.Col[r*a.Width+k]; c >= 0 {
				d.Set(r, int(c), a.V[r*a.Width+k])
			}
		}
	}
	return d
}
