// Package sparse implements the paper's second future-work thread:
// "quantify the energy performance scaling of ... sparse matrix
// (vector) multiplication techniques [and] the energy performance
// scaling properties of the various sparse matrix storage techniques."
//
// It provides COO, CSR and ELLPACK storage with real sparse
// matrix-vector kernels, deterministic matrix generators, and task-tree
// builders whose traffic accounting reflects each format's memory
// behaviour (index overhead, ELL padding waste, COO scatter
// accumulation, irregular gathers on x), so the same simulator and
// energy model that reproduce the paper's dense study extend to SpMV.
package sparse

import (
	"fmt"
	"sort"

	"capscale/internal/matrix"
)

// COO is coordinate storage: parallel (row, col, value) triples,
// sorted row-major by construction.
type COO struct {
	RowsN, ColsN int
	I, J         []int32
	V            []float64
}

// CSR is compressed sparse row storage.
type CSR struct {
	RowsN, ColsN int
	RowPtr       []int32 // len RowsN+1
	Col          []int32
	V            []float64
}

// ELL is ELLPACK storage: every row padded to the matrix's maximum row
// length. Padding slots have Col = -1 and V = 0.
type ELL struct {
	RowsN, ColsN, Width int
	Col                 []int32 // RowsN × Width, row-major
	V                   []float64
}

// NNZ returns stored non-zeros (COO/CSR) or real non-zeros (ELL,
// excluding padding).
func (a *COO) NNZ() int { return len(a.V) }

// NNZ returns the number of stored non-zeros.
func (a *CSR) NNZ() int { return len(a.V) }

// NNZ returns the number of real (non-padding) entries.
func (a *ELL) NNZ() int {
	n := 0
	for _, c := range a.Col {
		if c >= 0 {
			n++
		}
	}
	return n
}

// PaddingWaste returns the fraction of ELL slots that are padding.
func (a *ELL) PaddingWaste() float64 {
	total := a.RowsN * a.Width
	if total == 0 {
		return 0
	}
	return 1 - float64(a.NNZ())/float64(total)
}

// NewCOO builds a COO matrix from triples, validating and sorting them
// row-major (column within row). Duplicate coordinates are an error.
func NewCOO(rows, cols int, i, j []int32, v []float64) (*COO, error) {
	if rows <= 0 || cols <= 0 {
		return nil, fmt.Errorf("sparse: dimensions %dx%d", rows, cols)
	}
	if len(i) != len(j) || len(i) != len(v) {
		return nil, fmt.Errorf("sparse: triple lengths %d/%d/%d", len(i), len(j), len(v))
	}
	type trip struct {
		i, j int32
		v    float64
	}
	ts := make([]trip, len(i))
	for k := range i {
		if i[k] < 0 || int(i[k]) >= rows || j[k] < 0 || int(j[k]) >= cols {
			return nil, fmt.Errorf("sparse: entry (%d,%d) out of %dx%d", i[k], j[k], rows, cols)
		}
		ts[k] = trip{i[k], j[k], v[k]}
	}
	sort.Slice(ts, func(a, b int) bool {
		if ts[a].i != ts[b].i {
			return ts[a].i < ts[b].i
		}
		return ts[a].j < ts[b].j
	})
	out := &COO{RowsN: rows, ColsN: cols,
		I: make([]int32, len(ts)), J: make([]int32, len(ts)), V: make([]float64, len(ts))}
	for k, t := range ts {
		if k > 0 && t.i == ts[k-1].i && t.j == ts[k-1].j {
			return nil, fmt.Errorf("sparse: duplicate entry (%d,%d)", t.i, t.j)
		}
		out.I[k], out.J[k], out.V[k] = t.i, t.j, t.v
	}
	return out, nil
}

// FromDense extracts the non-zero structure of a dense matrix.
func FromDense(d *matrix.Dense) *COO {
	var i, j []int32
	var v []float64
	for r := 0; r < d.Rows(); r++ {
		row := d.Row(r)
		for c, val := range row {
			if val != 0 {
				i = append(i, int32(r))
				j = append(j, int32(c))
				v = append(v, val)
			}
		}
	}
	out, err := NewCOO(d.Rows(), d.Cols(), i, j, v)
	if err != nil {
		panic("sparse: FromDense produced invalid COO: " + err.Error())
	}
	return out
}

// ToDense materializes the matrix densely (for testing).
func (a *COO) ToDense() *matrix.Dense {
	d := matrix.New(a.RowsN, a.ColsN)
	for k := range a.V {
		d.Set(int(a.I[k]), int(a.J[k]), a.V[k])
	}
	return d
}

// ToCSR converts to compressed sparse row storage.
func (a *COO) ToCSR() *CSR {
	out := &CSR{
		RowsN: a.RowsN, ColsN: a.ColsN,
		RowPtr: make([]int32, a.RowsN+1),
		Col:    make([]int32, len(a.V)),
		V:      make([]float64, len(a.V)),
	}
	for _, r := range a.I {
		out.RowPtr[r+1]++
	}
	for r := 0; r < a.RowsN; r++ {
		out.RowPtr[r+1] += out.RowPtr[r]
	}
	copy(out.Col, a.J)
	copy(out.V, a.V)
	return out
}

// ToCOO converts back to coordinate storage.
func (a *CSR) ToCOO() *COO {
	out := &COO{RowsN: a.RowsN, ColsN: a.ColsN,
		I: make([]int32, len(a.V)), J: make([]int32, len(a.V)), V: make([]float64, len(a.V))}
	for r := 0; r < a.RowsN; r++ {
		for k := a.RowPtr[r]; k < a.RowPtr[r+1]; k++ {
			out.I[k] = int32(r)
		}
	}
	copy(out.J, a.Col)
	copy(out.V, a.V)
	return out
}

// ToELL converts to ELLPACK; rows shorter than the widest are padded.
func (a *CSR) ToELL() *ELL {
	width := 0
	for r := 0; r < a.RowsN; r++ {
		if w := int(a.RowPtr[r+1] - a.RowPtr[r]); w > width {
			width = w
		}
	}
	out := &ELL{RowsN: a.RowsN, ColsN: a.ColsN, Width: width,
		Col: make([]int32, a.RowsN*width), V: make([]float64, a.RowsN*width)}
	for k := range out.Col {
		out.Col[k] = -1
	}
	for r := 0; r < a.RowsN; r++ {
		base := r * width
		for k := a.RowPtr[r]; k < a.RowPtr[r+1]; k++ {
			off := int(k - a.RowPtr[r])
			out.Col[base+off] = a.Col[k]
			out.V[base+off] = a.V[k]
		}
	}
	return out
}

// RowNNZ returns the stored length of row r.
func (a *CSR) RowNNZ(r int) int { return int(a.RowPtr[r+1] - a.RowPtr[r]) }

// MulVec computes y = A·x from COO storage (y is overwritten).
func (a *COO) MulVec(y, x []float64) {
	checkVecs(a.RowsN, a.ColsN, y, x)
	for i := range y {
		y[i] = 0
	}
	for k := range a.V {
		y[a.I[k]] += a.V[k] * x[a.J[k]]
	}
}

// MulVec computes y = A·x from CSR storage (y is overwritten).
func (a *CSR) MulVec(y, x []float64) {
	checkVecs(a.RowsN, a.ColsN, y, x)
	for r := 0; r < a.RowsN; r++ {
		sum := 0.0
		for k := a.RowPtr[r]; k < a.RowPtr[r+1]; k++ {
			sum += a.V[k] * x[a.Col[k]]
		}
		y[r] = sum
	}
}

// MulVecRows computes y[lo:hi] = A[lo:hi]·x — the row-partitioned
// kernel the parallel task tree uses.
func (a *CSR) MulVecRows(y, x []float64, lo, hi int) {
	if lo < 0 || hi > a.RowsN || lo > hi {
		panic(fmt.Sprintf("sparse: row range [%d,%d) of %d", lo, hi, a.RowsN))
	}
	for r := lo; r < hi; r++ {
		sum := 0.0
		for k := a.RowPtr[r]; k < a.RowPtr[r+1]; k++ {
			sum += a.V[k] * x[a.Col[k]]
		}
		y[r] = sum
	}
}

// MulVec computes y = A·x from ELL storage (y is overwritten).
// Padding slots multiply by zero, exactly as a vectorized ELL kernel
// does.
func (a *ELL) MulVec(y, x []float64) {
	checkVecs(a.RowsN, a.ColsN, y, x)
	for r := 0; r < a.RowsN; r++ {
		base := r * a.Width
		sum := 0.0
		for k := 0; k < a.Width; k++ {
			c := a.Col[base+k]
			if c >= 0 {
				sum += a.V[base+k] * x[c]
			}
		}
		y[r] = sum
	}
}

func checkVecs(rows, cols int, y, x []float64) {
	if len(y) != rows || len(x) != cols {
		panic(fmt.Sprintf("sparse: vector lengths y=%d x=%d for %dx%d", len(y), len(x), rows, cols))
	}
}
