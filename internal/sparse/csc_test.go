package sparse

import (
	"math/rand"
	"testing"
	"testing/quick"

	"capscale/internal/matrix"
)

func TestCSCRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	coo := RandomUniform(rng, 24, 0.15)
	csc := coo.ToCSC()
	if csc.NNZ() != coo.NNZ() {
		t.Fatalf("nnz %d vs %d", csc.NNZ(), coo.NNZ())
	}
	if !matrix.Equal(coo.ToDense(), csc.ToCOO().ToDense()) {
		t.Fatal("COO→CSC→COO changed the matrix")
	}
}

func TestCSCMulVecMatchesCSR(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	coo := PowerLaw(rng, 60, 5, 2.0)
	csr := coo.ToCSR()
	csc := coo.ToCSC()
	x := make([]float64, 60)
	for i := range x {
		x[i] = rng.Float64()
	}
	y1 := make([]float64, 60)
	csr.MulVec(y1, x)
	y2 := make([]float64, 60)
	csc.MulVec(y2, x)
	if !vecAlmostEqual(y1, y2, 1e-12) {
		t.Fatal("CSC scatter SpMV differs from CSR")
	}
}

func TestCSCMulVecT(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	coo := RandomUniform(rng, 30, 0.1)
	csc := coo.ToCSC()
	x := make([]float64, 30)
	for i := range x {
		x[i] = rng.Float64()
	}
	got := make([]float64, 30)
	csc.MulVecT(got, x)
	// Reference: transpose densely.
	d := coo.ToDense()
	dt := matrix.New(30, 30)
	matrix.TransposeTo(dt, d)
	want := denseMulVec(dt, x)
	if !vecAlmostEqual(got, want, 1e-12) {
		t.Fatal("MulVecT wrong")
	}
}

func TestCSCMulVecTShapePanics(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	csc := RandomUniform(rng, 8, 0.2).ToCSC()
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	csc.MulVecT(make([]float64, 3), make([]float64, 8))
}

func TestPropertyCSCTransposeIdentity(t *testing.T) {
	// ⟨Ax, z⟩ == ⟨x, Aᵀz⟩ for all x, z.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 4 + rng.Intn(30)
		csc := RandomUniform(rng, n, 0.15).ToCSC()
		x := make([]float64, n)
		z := make([]float64, n)
		for i := range x {
			x[i], z[i] = rng.Float64(), rng.Float64()
		}
		ax := make([]float64, n)
		csc.MulVec(ax, x)
		atz := make([]float64, n)
		csc.MulVecT(atz, z)
		lhs, rhs := 0.0, 0.0
		for i := range x {
			lhs += ax[i] * z[i]
			rhs += x[i] * atz[i]
		}
		return lhs-rhs < 1e-9 && rhs-lhs < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
