package sparse

import (
	"testing"

	"capscale/internal/matrix"
)

// FuzzNewCOO drives the COO constructor with arbitrary triples: it
// must either reject cleanly or produce a matrix whose conversions all
// round-trip. Run with `go test -fuzz=FuzzNewCOO ./internal/sparse`;
// the seed corpus runs under plain `go test`.
func FuzzNewCOO(f *testing.F) {
	f.Add(4, 4, []byte{0, 0, 1, 1, 2, 2})
	f.Add(2, 3, []byte{0, 2, 1, 0})
	f.Add(1, 1, []byte{0, 0})
	f.Add(3, 3, []byte{})
	f.Fuzz(func(t *testing.T, rows, cols int, pairs []byte) {
		if rows <= 0 || cols <= 0 || rows > 64 || cols > 64 {
			return
		}
		n := len(pairs) / 2
		is := make([]int32, n)
		js := make([]int32, n)
		vs := make([]float64, n)
		for k := 0; k < n; k++ {
			is[k] = int32(pairs[2*k])
			js[k] = int32(pairs[2*k+1])
			vs[k] = float64(k + 1)
		}
		coo, err := NewCOO(rows, cols, is, js, vs)
		if err != nil {
			return // clean rejection is fine
		}
		// Every accepted matrix must survive all conversions.
		d := coo.ToDense()
		csr := coo.ToCSR()
		if csr.NNZ() != coo.NNZ() {
			t.Fatalf("CSR nnz %d vs %d", csr.NNZ(), coo.NNZ())
		}
		if !matrix.Equal(d, csr.ToCOO().ToDense()) {
			t.Fatal("CSR round trip changed the matrix")
		}
		ell := csr.ToELL()
		if ell.NNZ() != coo.NNZ() {
			t.Fatalf("ELL nnz %d vs %d", ell.NNZ(), coo.NNZ())
		}
		// SpMV against the dense reference.
		x := make([]float64, cols)
		for i := range x {
			x[i] = float64(i%5) - 2
		}
		y1 := make([]float64, rows)
		coo.MulVec(y1, x)
		y2 := make([]float64, rows)
		csr.MulVec(y2, x)
		for i := range y1 {
			if y1[i] != y2[i] {
				t.Fatalf("COO and CSR disagree at row %d", i)
			}
		}
	})
}
