package sparse

import (
	"fmt"
	"math"
	"math/rand"
)

// RandomUniform returns an n×n matrix with approximately density·n²
// non-zeros placed uniformly at random (deterministic under rng).
func RandomUniform(rng *rand.Rand, n int, density float64) *COO {
	if density <= 0 || density > 1 {
		panic(fmt.Sprintf("sparse: density %v", density))
	}
	type key struct{ i, j int32 }
	target := int(density * float64(n) * float64(n))
	if target < 1 {
		target = 1
	}
	seen := make(map[key]bool, target)
	var is, js []int32
	var vs []float64
	for len(vs) < target {
		k := key{int32(rng.Intn(n)), int32(rng.Intn(n))}
		if seen[k] {
			continue
		}
		seen[k] = true
		is = append(is, k.i)
		js = append(js, k.j)
		vs = append(vs, 2*rng.Float64()-1)
	}
	out, err := NewCOO(n, n, is, js, vs)
	if err != nil {
		panic("sparse: generator produced invalid matrix: " + err.Error())
	}
	return out
}

// Banded returns an n×n matrix with the given half-bandwidth fully
// populated (a tridiagonal matrix has halfBand 1) — the regular
// structure ELL is ideal for.
func Banded(rng *rand.Rand, n, halfBand int) *COO {
	if halfBand < 0 || halfBand >= n {
		panic(fmt.Sprintf("sparse: half bandwidth %d for n=%d", halfBand, n))
	}
	var is, js []int32
	var vs []float64
	for i := 0; i < n; i++ {
		lo := i - halfBand
		if lo < 0 {
			lo = 0
		}
		hi := i + halfBand
		if hi >= n {
			hi = n - 1
		}
		for j := lo; j <= hi; j++ {
			is = append(is, int32(i))
			js = append(js, int32(j))
			vs = append(vs, 2*rng.Float64()-1)
		}
	}
	out, err := NewCOO(n, n, is, js, vs)
	if err != nil {
		panic("sparse: generator produced invalid matrix: " + err.Error())
	}
	return out
}

// SPDBanded returns a symmetric positive definite banded matrix:
// random symmetric off-diagonals inside the half-bandwidth with each
// diagonal entry exceeding its row's absolute off-diagonal sum
// (diagonal dominance ⇒ SPD) — the canonical conjugate-gradient test
// operator.
func SPDBanded(rng *rand.Rand, n, halfBand int) *COO {
	if halfBand < 0 || halfBand >= n {
		panic(fmt.Sprintf("sparse: half bandwidth %d for n=%d", halfBand, n))
	}
	off := make(map[[2]int]float64)
	rowAbs := make([]float64, n)
	for i := 0; i < n; i++ {
		for j := i + 1; j <= i+halfBand && j < n; j++ {
			v := 2*rng.Float64() - 1
			off[[2]int{i, j}] = v
			rowAbs[i] += math.Abs(v)
			rowAbs[j] += math.Abs(v)
		}
	}
	var is, js []int32
	var vs []float64
	for i := 0; i < n; i++ {
		is = append(is, int32(i))
		js = append(js, int32(i))
		vs = append(vs, rowAbs[i]+1)
	}
	for k, v := range off {
		is = append(is, int32(k[0]), int32(k[1]))
		js = append(js, int32(k[1]), int32(k[0]))
		vs = append(vs, v, v)
	}
	out, err := NewCOO(n, n, is, js, vs)
	if err != nil {
		panic("sparse: generator produced invalid matrix: " + err.Error())
	}
	return out
}

// PowerLaw returns an n×n matrix whose row lengths follow a truncated
// power law (a few very heavy rows, many light ones) — the skewed
// structure that makes ELL padding catastrophic and is typical of
// graph adjacency matrices.
func PowerLaw(rng *rand.Rand, n int, avgNNZ int, alpha float64) *COO {
	if avgNNZ < 1 || alpha <= 1 {
		panic(fmt.Sprintf("sparse: avgNNZ %d alpha %v", avgNNZ, alpha))
	}
	var is, js []int32
	var vs []float64
	for i := 0; i < n; i++ {
		// Inverse-CDF sample of a Pareto-ish length, scaled to the
		// requested mean and capped at n.
		u := rng.Float64()
		ln := float64(avgNNZ) * (alpha - 1) / alpha * math.Pow(1-u, -1/alpha)
		length := int(ln)
		if length < 1 {
			length = 1
		}
		if length > n {
			length = n
		}
		cols := rng.Perm(n)[:length]
		for _, j := range cols {
			is = append(is, int32(i))
			js = append(js, int32(j))
			vs = append(vs, 2*rng.Float64()-1)
		}
	}
	out, err := NewCOO(n, n, is, js, vs)
	if err != nil {
		panic("sparse: generator produced invalid matrix: " + err.Error())
	}
	return out
}
