package sparse

import "fmt"

// CSC is compressed sparse column storage — the transpose-friendly
// counterpart of CSR. Its SpMV scatters into y column by column, which
// parallelizes only with atomics or per-thread private y vectors, so
// the parallel energy study sticks to the row-partitionable formats;
// CSC is provided for storage completeness (transpose products, column
// slicing) with the same correctness guarantees.
type CSC struct {
	RowsN, ColsN int
	ColPtr       []int32 // len ColsN+1
	Row          []int32
	V            []float64
}

// NNZ returns the number of stored non-zeros.
func (a *CSC) NNZ() int { return len(a.V) }

// ToCSC converts coordinate storage to CSC.
func (a *COO) ToCSC() *CSC {
	out := &CSC{
		RowsN: a.RowsN, ColsN: a.ColsN,
		ColPtr: make([]int32, a.ColsN+1),
		Row:    make([]int32, len(a.V)),
		V:      make([]float64, len(a.V)),
	}
	for _, c := range a.J {
		out.ColPtr[c+1]++
	}
	for c := 0; c < a.ColsN; c++ {
		out.ColPtr[c+1] += out.ColPtr[c]
	}
	next := make([]int32, a.ColsN)
	copy(next, out.ColPtr[:a.ColsN])
	for k := range a.V {
		c := a.J[k]
		pos := next[c]
		out.Row[pos] = a.I[k]
		out.V[pos] = a.V[k]
		next[c]++
	}
	return out
}

// ToCOO converts back to (row-sorted) coordinate storage.
func (a *CSC) ToCOO() *COO {
	is := make([]int32, len(a.V))
	js := make([]int32, len(a.V))
	vs := make([]float64, len(a.V))
	idx := 0
	for c := 0; c < a.ColsN; c++ {
		for k := a.ColPtr[c]; k < a.ColPtr[c+1]; k++ {
			is[idx] = a.Row[k]
			js[idx] = int32(c)
			vs[idx] = a.V[k]
			idx++
		}
	}
	out, err := NewCOO(a.RowsN, a.ColsN, is, js, vs)
	if err != nil {
		panic("sparse: CSC produced invalid COO: " + err.Error())
	}
	return out
}

// MulVec computes y = A·x by column scatter (y is overwritten).
func (a *CSC) MulVec(y, x []float64) {
	checkVecs(a.RowsN, a.ColsN, y, x)
	for i := range y {
		y[i] = 0
	}
	for c := 0; c < a.ColsN; c++ {
		xc := x[c]
		if xc == 0 {
			continue
		}
		for k := a.ColPtr[c]; k < a.ColPtr[c+1]; k++ {
			y[a.Row[k]] += a.V[k] * xc
		}
	}
}

// MulVecT computes y = Aᵀ·x — a gather over columns, CSC's natural
// fast direction (each output element reads one column).
func (a *CSC) MulVecT(y, x []float64) {
	if len(y) != a.ColsN || len(x) != a.RowsN {
		panic(fmt.Sprintf("sparse: MulVecT lengths y=%d x=%d for %dx%d", len(y), len(x), a.RowsN, a.ColsN))
	}
	for c := 0; c < a.ColsN; c++ {
		sum := 0.0
		for k := a.ColPtr[c]; k < a.ColPtr[c+1]; k++ {
			sum += a.V[k] * x[a.Row[k]]
		}
		y[c] = sum
	}
}
