package sparse

import (
	"math/rand"
	"testing"

	"capscale/internal/hw"
	"capscale/internal/sim"
	"capscale/internal/task"
)

func machine() *hw.Machine { return hw.HaswellE31225() }

func TestFormatNames(t *testing.T) {
	if FormatCSR.String() != "CSR" || FormatCOO.String() != "COO" || FormatELL.String() != "ELL" {
		t.Fatal("names")
	}
	if Format(9).String() != "Format(9)" {
		t.Fatal("out of range")
	}
	if len(Formats()) != 3 {
		t.Fatal("formats list")
	}
}

func TestBuildSpMVNumericsMatchSerialKernel(t *testing.T) {
	m := machine()
	rng := rand.New(rand.NewSource(1))
	coo := PowerLaw(rng, 200, 5, 2.0)
	csr := coo.ToCSR()

	for _, f := range Formats() {
		for _, workers := range []int{1, 3} {
			spmv := BuildSpMV(m, csr, f, Options{Workers: workers, Iterations: 2, WithMath: true})
			sim.Run(m, spmv.Root, sim.Config{Workers: workers, VerifyNumerics: true})
			want := make([]float64, csr.RowsN)
			csr.MulVec(want, spmv.X)
			if !vecAlmostEqual(spmv.Y, want, 1e-12) {
				t.Fatalf("%v workers=%d: parallel SpMV differs", f, workers)
			}
		}
	}
}

func TestNNZBalancedBounds(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	csr := PowerLaw(rng, 400, 8, 1.8).ToCSR()
	bounds := nnzBalancedBounds(csr, 4)
	if bounds[0] != 0 || bounds[4] != 400 {
		t.Fatalf("bounds %v", bounds)
	}
	total := csr.NNZ()
	for w := 0; w < 4; w++ {
		nnz := int(csr.RowPtr[bounds[w+1]] - csr.RowPtr[bounds[w]])
		if nnz > total/2 {
			t.Fatalf("chunk %d holds %d of %d nnz — unbalanced", w, nnz, total)
		}
	}
}

func TestFlopAccountingMatchesNNZ(t *testing.T) {
	m := machine()
	rng := rand.New(rand.NewSource(3))
	csr := RandomUniform(rng, 256, 0.05).ToCSR()
	spmv := BuildSpMV(m, csr, FormatCSR, Options{Workers: 4, Iterations: 3})
	stats := task.Collect(spmv.Root)
	want := 3 * 2 * float64(csr.NNZ())
	if stats.Flops != want {
		t.Fatalf("flops %v want %v", stats.Flops, want)
	}
}

func TestELLPaysForPadding(t *testing.T) {
	// On a skewed matrix ELL must charge more traffic and flops than
	// CSR; on a perfectly regular band they should be comparable.
	m := machine()
	rng := rand.New(rand.NewSource(4))
	skewed := PowerLaw(rng, 512, 4, 1.6).ToCSR()
	ellStats := task.Collect(BuildSpMV(m, skewed, FormatELL, Options{Workers: 2}).Root)
	csrStats := task.Collect(BuildSpMV(m, skewed, FormatCSR, Options{Workers: 2}).Root)
	if ellStats.DRAMBytes <= 1.5*csrStats.DRAMBytes {
		t.Fatalf("ELL traffic %v not well above CSR %v on skewed rows", ellStats.DRAMBytes, csrStats.DRAMBytes)
	}

	band := Banded(rng, 512, 3).ToCSR()
	ellB := task.Collect(BuildSpMV(m, band, FormatELL, Options{Workers: 2}).Root)
	csrB := task.Collect(BuildSpMV(m, band, FormatCSR, Options{Workers: 2}).Root)
	if ellB.DRAMBytes > 1.3*csrB.DRAMBytes {
		t.Fatalf("ELL traffic %v far above CSR %v on a regular band", ellB.DRAMBytes, csrB.DRAMBytes)
	}
}

func TestCOOPaysForScatter(t *testing.T) {
	m := machine()
	rng := rand.New(rand.NewSource(5))
	csr := RandomUniform(rng, 512, 0.02).ToCSR()
	coo := task.Collect(BuildSpMV(m, csr, FormatCOO, Options{Workers: 2}).Root)
	plain := task.Collect(BuildSpMV(m, csr, FormatCSR, Options{Workers: 2}).Root)
	if coo.DRAMBytes <= plain.DRAMBytes {
		t.Fatal("COO should move more bytes than CSR")
	}
}

func TestBytesPerNNZOrdering(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	skewed := PowerLaw(rng, 256, 4, 1.6).ToCSR()
	csr := BytesPerNNZ(FormatCSR, skewed)
	coo := BytesPerNNZ(FormatCOO, skewed)
	ell := BytesPerNNZ(FormatELL, skewed)
	if !(csr < coo && coo < ell) {
		t.Fatalf("per-nnz bytes ordering: CSR %v COO %v ELL %v", csr, coo, ell)
	}
}

func TestEnergyStudyShape(t *testing.T) {
	m := machine()
	rng := rand.New(rand.NewSource(7))
	a := PowerLaw(rng, 2048, 12, 1.8)
	pts := EnergyStudy(m, a, []int{1, 2, 4}, 20)
	if len(pts) != 9 {
		t.Fatalf("points %d", len(pts))
	}
	byKey := map[string]StudyPoint{}
	for _, p := range pts {
		byKey[p.Format.String()+string(rune('0'+p.Threads))] = p
		if p.Seconds <= 0 || p.Watts <= 0 || p.EP <= 0 {
			t.Fatalf("degenerate point %+v", p)
		}
	}
	// CSR is the fastest format on skewed matrices at every thread
	// count; SpMV is bandwidth-bound so power stays comparatively flat
	// (well under a compute-bound kernel's ~48 W at 4 threads).
	for _, th := range []byte{'1', '2', '4'} {
		if byKey["CSR"+string(th)].Seconds >= byKey["ELL"+string(th)].Seconds {
			t.Errorf("threads %c: CSR not faster than ELL", th)
		}
	}
	if byKey["CSR4"].Watts > 40 {
		t.Errorf("bandwidth-bound SpMV drawing %v W at 4 threads", byKey["CSR4"].Watts)
	}
}

func TestSpMVBandwidthBoundSpeedupLimited(t *testing.T) {
	// SpMV cannot scale past the memory system: 4-thread speedup must
	// sit near the aggregate/single-stream bandwidth ratio (~1.5), far
	// from 4.
	m := machine()
	rng := rand.New(rand.NewSource(8))
	csr := RandomUniform(rng, 4096, 0.004).ToCSR()
	t1 := sim.Run(m, BuildSpMV(m, csr, FormatCSR, Options{Workers: 1, Iterations: 5}).Root, sim.Config{Workers: 1}).Makespan
	t4 := sim.Run(m, BuildSpMV(m, csr, FormatCSR, Options{Workers: 4, Iterations: 5}).Root, sim.Config{Workers: 4}).Makespan
	speedup := t1 / t4
	if speedup > 2.0 {
		t.Fatalf("SpMV speedup %v too high for a bandwidth-bound kernel", speedup)
	}
	if speedup < 1.0 {
		t.Fatalf("SpMV slowed down with threads: %v", speedup)
	}
}

func TestBuildSpMVPanicsOnZeroWorkers(t *testing.T) {
	m := machine()
	rng := rand.New(rand.NewSource(9))
	csr := RandomUniform(rng, 16, 0.2).ToCSR()
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	BuildSpMV(m, csr, FormatCSR, Options{})
}
