package sparse_test

import (
	"fmt"

	"capscale/internal/sparse"
)

// Build a matrix from triples, convert between storage formats, and
// multiply — every format computes the same product.
func Example() {
	coo, err := sparse.NewCOO(3, 3,
		[]int32{0, 1, 1, 2},
		[]int32{0, 0, 2, 1},
		[]float64{2, 3, 4, 5})
	if err != nil {
		panic(err)
	}
	x := []float64{1, 1, 1}
	y := make([]float64, 3)

	csr := coo.ToCSR()
	csr.MulVec(y, x)
	fmt.Printf("CSR: %v\n", y)

	ell := csr.ToELL()
	ell.MulVec(y, x)
	fmt.Printf("ELL: %v (width %d, waste %.0f%%)\n", y, ell.Width, 100*ell.PaddingWaste())
	// Output:
	// CSR: [2 7 5]
	// ELL: [2 7 5] (width 2, waste 33%)
}

// CSC's natural fast direction is the transpose product.
func ExampleCSC_MulVecT() {
	coo, err := sparse.NewCOO(2, 2,
		[]int32{0, 0, 1},
		[]int32{0, 1, 1},
		[]float64{1, 2, 3})
	if err != nil {
		panic(err)
	}
	csc := coo.ToCSC()
	y := make([]float64, 2)
	csc.MulVecT(y, []float64{1, 1}) // Aᵀ·[1 1]
	fmt.Println(y)
	// Output:
	// [1 5]
}
