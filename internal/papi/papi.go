// Package papi provides a minimal PAPI-like component interface over
// the RAPL emulation — named energy events, event sets, and the
// start/read/stop lifecycle the paper's test driver uses to measure
// each matrix-multiplication run.
//
// Event naming follows PAPI's RAPL component convention
// ("rapl:::PACKAGE_ENERGY:PACKAGE0"); values are reported in
// nanojoules, as PAPI's scaled RAPL events are.
package papi

import (
	"fmt"
	"sort"

	"capscale/internal/rapl"
)

// Event names exposed by the emulated RAPL component. The NIC and
// SWITCH events map to the emulation's interconnect planes (see
// rapl.ClusterPlanes): PSYS-style counters a distributed monitor
// samples alongside the node planes.
const (
	EventPackageEnergy = "rapl:::PACKAGE_ENERGY:PACKAGE0"
	EventPP0Energy     = "rapl:::PP0_ENERGY:PACKAGE0"
	EventDRAMEnergy    = "rapl:::DRAM_ENERGY:PACKAGE0"
	EventNICEnergy     = "rapl:::NIC_ENERGY:CLUSTER0"
	EventSwitchEnergy  = "rapl:::SWITCH_ENERGY:CLUSTER0"
)

var eventPlanes = map[string]rapl.Plane{
	EventPackageEnergy: rapl.PlanePKG,
	EventPP0Energy:     rapl.PlanePP0,
	EventDRAMEnergy:    rapl.PlaneDRAM,
	EventNICEnergy:     rapl.PlaneNIC,
	EventSwitchEnergy:  rapl.PlaneSwitch,
}

// EventForPlane returns the component's event name for a plane.
func EventForPlane(p rapl.Plane) (string, error) {
	for name, pl := range eventPlanes {
		if pl == p {
			return name, nil
		}
	}
	return "", fmt.Errorf("papi: no event for plane %v", p)
}

// AvailableEvents lists the component's event names, sorted, the way
// papi_native_avail would.
func AvailableEvents() []string {
	names := make([]string, 0, len(eventPlanes))
	for n := range eventPlanes {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// state tracks the event-set lifecycle, mirroring PAPI's.
type state int

const (
	stateStopped state = iota
	stateRunning
)

// FaultHook lets a fault injector (internal/faults) perturb the
// event-set sampling path. Nil hooks cost nothing.
type FaultHook interface {
	// DropSample reports whether this timer-thread sample should be
	// silently lost — the PAPI sample-drop fault class.
	DropSample() bool
}

// EventSet is a set of energy events measured together, like a PAPI
// event set bound to the RAPL component.
type EventSet struct {
	dev    *rapl.Device
	events []string
	meter  *rapl.Meter
	st     state
	faults FaultHook
	drops  int
}

// SetFaultHook installs (or, with nil, removes) the sampling fault
// hook. Only the periodic Poll/PollEvent path consults it: Start,
// Read and Stop model deliberate reads, not timer-thread samples.
func (es *EventSet) SetFaultHook(h FaultHook) { es.faults = h }

// Drops returns how many periodic samples the fault hook swallowed.
func (es *EventSet) Drops() int { return es.drops }

// NewEventSet returns an empty event set bound to dev.
func NewEventSet(dev *rapl.Device) *EventSet {
	return &EventSet{dev: dev, meter: rapl.NewMeter(dev)}
}

// Add registers a named event. Unknown names and duplicates are
// errors; adding while running is an error, as in PAPI.
func (es *EventSet) Add(name string) error {
	if es.st == stateRunning {
		return fmt.Errorf("papi: cannot add %q to a running event set", name)
	}
	if _, ok := eventPlanes[name]; !ok {
		return fmt.Errorf("papi: unknown event %q", name)
	}
	for _, e := range es.events {
		if e == name {
			return fmt.Errorf("papi: event %q already in set", name)
		}
	}
	es.events = append(es.events, name)
	return nil
}

// Remove unregisters a named event from a stopped set.
func (es *EventSet) Remove(name string) error {
	if es.st == stateRunning {
		return fmt.Errorf("papi: cannot remove %q from a running event set", name)
	}
	for i, e := range es.events {
		if e == name {
			es.events = append(es.events[:i], es.events[i+1:]...)
			return nil
		}
	}
	return fmt.Errorf("papi: event %q not in set", name)
}

// Running reports whether the set is counting.
func (es *EventSet) Running() bool { return es.st == stateRunning }

// Reset re-zeros a running set's accumulation, as PAPI_reset does.
func (es *EventSet) Reset() error {
	if es.st != stateRunning {
		return fmt.Errorf("papi: resetting a stopped event set")
	}
	es.meter.Start()
	return nil
}

// Events returns the registered event names in registration order.
func (es *EventSet) Events() []string {
	out := make([]string, len(es.events))
	copy(out, es.events)
	return out
}

// Start begins counting. It is an error to start an empty or already
// running set.
func (es *EventSet) Start() error {
	if len(es.events) == 0 {
		return fmt.Errorf("papi: starting empty event set")
	}
	if es.st == stateRunning {
		return fmt.Errorf("papi: event set already running")
	}
	es.meter.Start()
	es.st = stateRunning
	return nil
}

// Poll samples the counters without stopping and without materializing
// values — the allocation-free call a timer-thread poller makes between
// Reads. Sampling at least once per counter wrap period is what keeps
// the wrap correction sound. Under an installed fault hook the sample
// may be silently dropped (nil error, counted by Drops) or fail with
// the underlying read error; planes that read cleanly keep their
// accumulation either way.
func (es *EventSet) Poll() error {
	if es.st != stateRunning {
		return fmt.Errorf("papi: polling a stopped event set")
	}
	if es.faults != nil && es.faults.DropSample() {
		es.drops++
		return nil
	}
	return es.sampleSet()
}

// sampleSet samples the plane of every registered event, in
// registration order, so sets that include the interconnect planes
// sample exactly what they armed. Every plane is attempted; the first
// error is returned.
func (es *EventSet) sampleSet() error {
	var first error
	for _, name := range es.events {
		if err := es.meter.SamplePlane(eventPlanes[name]); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// PollEvent samples a single named event's plane — the per-plane form
// the degradation-aware monitor uses so one failing plane neither
// poisons nor delays the others' samples. Drops and read errors
// behave as in Poll.
func (es *EventSet) PollEvent(name string) error {
	if es.st != stateRunning {
		return fmt.Errorf("papi: polling a stopped event set")
	}
	p, ok := eventPlanes[name]
	if !ok {
		return fmt.Errorf("papi: unknown event %q", name)
	}
	if es.faults != nil && es.faults.DropSample() {
		es.drops++
		return nil
	}
	return es.meter.SamplePlane(p)
}

// Read samples the counters without stopping and returns the values in
// nanojoules, ordered as the events were added. On a read error the
// values accumulated so far are returned alongside the error.
func (es *EventSet) Read() ([]int64, error) {
	if es.st != stateRunning {
		return nil, fmt.Errorf("papi: reading a stopped event set")
	}
	err := es.sampleSet()
	return es.values(), err
}

// Stop samples a final time, stops counting, and returns the values in
// nanojoules. When the final sample fails on some plane, the set still
// stops and the wrap-corrected values accumulated so far are returned
// together with the error — a degraded monitor keeps what it measured.
func (es *EventSet) Stop() ([]int64, error) {
	if es.st != stateRunning {
		return nil, fmt.Errorf("papi: stopping a stopped event set")
	}
	err := es.sampleSet()
	es.st = stateStopped
	if err != nil {
		return es.values(), fmt.Errorf("papi: final sample: %w", err)
	}
	return es.values(), nil
}

func (es *EventSet) values() []int64 {
	out := make([]int64, len(es.events))
	for i, name := range es.events {
		out[i] = int64(es.meter.Joules(eventPlanes[name]) * 1e9)
	}
	return out
}

// DefaultPollInterval is the device-time sampling period Measure uses
// between Start and Stop. One second keeps any plausible power model
// orders of magnitude inside the 32-bit wrap period (a plane would
// need to sustain ≈65 kW at the Haswell energy unit to wrap between
// samples), while a Stop-only measurement silently loses a full wrap's
// worth of energy (~65 kJ/plane) every time a run crosses one.
const DefaultPollInterval = 1.0

// Measure runs fn with all three energy events armed, sampling the
// counters every DefaultPollInterval seconds of device time, and
// returns the measured joules per plane and fn's duration — the
// convenience wrapper the experiment driver uses per run.
func Measure(dev *rapl.Device, fn func()) (pkg, pp0, dram, seconds float64, err error) {
	return MeasureAt(dev, DefaultPollInterval, fn)
}

// MeasureAt is Measure with an explicit poll interval (seconds of
// device time). A non-positive interval disables periodic sampling and
// reads the counters only at Stop — which under-reports by one full
// wrap (~65 kJ/plane at the default unit) for every counter wrap the
// run accumulates, exactly as an undersampled monitor would on real
// silicon.
func MeasureAt(dev *rapl.Device, pollInterval float64, fn func()) (pkg, pp0, dram, seconds float64, err error) {
	es := NewEventSet(dev)
	for _, e := range []string{EventPackageEnergy, EventPP0Energy, EventDRAMEnergy} {
		if err := es.Add(e); err != nil {
			return 0, 0, 0, 0, err
		}
	}
	t0 := dev.Now()
	if err := es.Start(); err != nil {
		return 0, 0, 0, 0, err
	}
	if pollInterval > 0 {
		dev.SetPoll(pollInterval, func() { es.Poll() })
		defer dev.SetPoll(0, nil)
	}
	fn()
	vals, err := es.Stop()
	if err != nil {
		return 0, 0, 0, 0, err
	}
	return float64(vals[0]) / 1e9, float64(vals[1]) / 1e9, float64(vals[2]) / 1e9, dev.Now() - t0, nil
}
