package papi

import (
	"errors"
	"strings"
	"testing"

	"capscale/internal/hw"
	"capscale/internal/rapl"
)

// dropEvery drops every k-th sample.
type dropEvery struct {
	k, n int
}

func (h *dropEvery) DropSample() bool {
	h.n++
	return h.n%h.k == 0
}

// eventIndex returns the position of name in the set's value slices.
func eventIndex(t *testing.T, es *EventSet, name string) int {
	t.Helper()
	for i, e := range es.Events() {
		if e == name {
			return i
		}
	}
	t.Fatalf("event %q not in set", name)
	return -1
}

func newRunningSet(t *testing.T, dev *rapl.Device) *EventSet {
	t.Helper()
	es := NewEventSet(dev)
	for _, e := range AvailableEvents() {
		if err := es.Add(e); err != nil {
			t.Fatal(err)
		}
	}
	if err := es.Start(); err != nil {
		t.Fatal(err)
	}
	return es
}

func TestPollDropsAreCountedAndSilent(t *testing.T) {
	dev := rapl.NewDevice()
	es := newRunningSet(t, dev)
	es.SetFaultHook(&dropEvery{k: 2})
	for i := 0; i < 10; i++ {
		dev.Advance(0.1, hw.PlanePower{PKG: 10})
		if err := es.Poll(); err != nil {
			t.Fatalf("dropped poll %d errored: %v", i, err)
		}
	}
	if es.Drops() != 5 {
		t.Fatalf("drops %d want 5", es.Drops())
	}
	// Dropped samples lose nothing on an unwrapped counter: Stop's
	// final sample still accounts the full energy.
	pkgIdx := eventIndex(t, es, EventPackageEnergy)
	vals, err := es.Stop()
	if err != nil {
		t.Fatal(err)
	}
	if j := float64(vals[pkgIdx]) / 1e9; j < 9.9 || j > 10.1 {
		t.Fatalf("measured %v J with drops, want ~10", j)
	}
}

func TestPollEventSamplesOnePlane(t *testing.T) {
	dev := rapl.NewDevice()
	es := newRunningSet(t, dev)
	dev.Advance(1, hw.PlanePower{PKG: 10, PP0: 5, DRAM: 2})
	if err := es.PollEvent(EventPackageEnergy); err != nil {
		t.Fatal(err)
	}
	if err := es.PollEvent("rapl:::NOPE"); err == nil || !strings.Contains(err.Error(), "unknown event") {
		t.Fatalf("unknown event accepted: %v", err)
	}
	es.Stop()
	if err := es.PollEvent(EventPackageEnergy); err == nil {
		t.Fatal("PollEvent on a stopped set accepted")
	}
}

// A failing plane must not poison the other planes' samples: PollEvent
// isolates the failure, and Stop returns the surviving values next to
// its error.
func TestStopReturnsValuesAlongsideError(t *testing.T) {
	dev := rapl.NewDevice()
	es := newRunningSet(t, dev)
	dev.Advance(1, hw.PlanePower{PKG: 10, PP0: 5, DRAM: 2})
	sentinel := errors.New("injected")
	dev.SetCounterFault(func(p rapl.Plane, raw uint64) (uint64, error) {
		if p == rapl.PlaneDRAM {
			return 0, sentinel
		}
		return raw, nil
	})
	pkgIdx := eventIndex(t, es, EventPackageEnergy)
	vals, err := es.Stop()
	if !errors.Is(err, sentinel) {
		t.Fatalf("stop error %v does not wrap the fault", err)
	}
	if vals == nil {
		t.Fatal("Stop dropped the surviving values")
	}
	if j := float64(vals[pkgIdx]) / 1e9; j < 9.9 || j > 10.1 {
		t.Fatalf("PKG measured %v J despite DRAM-only fault", j)
	}
	if es.Running() {
		t.Fatal("set still running after failed Stop")
	}
}

func TestReadReturnsValuesAlongsideError(t *testing.T) {
	dev := rapl.NewDevice()
	es := newRunningSet(t, dev)
	dev.Advance(1, hw.PlanePower{PKG: 10})
	dev.SetCounterFault(func(p rapl.Plane, raw uint64) (uint64, error) {
		if p == rapl.PlaneDRAM {
			return 0, errors.New("injected")
		}
		return raw, nil
	})
	vals, err := es.Read()
	if err == nil {
		t.Fatal("faulted Read did not error")
	}
	if vals == nil {
		t.Fatal("Read dropped the surviving values")
	}
}
