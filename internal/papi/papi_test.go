package papi

import (
	"math"
	"testing"

	"capscale/internal/hw"
	"capscale/internal/rapl"
)

func TestAvailableEvents(t *testing.T) {
	ev := AvailableEvents()
	if len(ev) != 5 {
		t.Fatalf("events %v", ev)
	}
	for i := 1; i < len(ev); i++ {
		if ev[i-1] >= ev[i] {
			t.Fatal("events not sorted")
		}
	}
}

func TestAddValidation(t *testing.T) {
	es := NewEventSet(rapl.NewDevice())
	if err := es.Add("rapl:::NOT_A_THING"); err == nil {
		t.Fatal("unknown event accepted")
	}
	if err := es.Add(EventPackageEnergy); err != nil {
		t.Fatal(err)
	}
	if err := es.Add(EventPackageEnergy); err == nil {
		t.Fatal("duplicate accepted")
	}
	if got := es.Events(); len(got) != 1 || got[0] != EventPackageEnergy {
		t.Fatalf("events %v", got)
	}
}

func TestLifecycleErrors(t *testing.T) {
	dev := rapl.NewDevice()
	es := NewEventSet(dev)
	if err := es.Start(); err == nil {
		t.Fatal("empty set started")
	}
	if _, err := es.Read(); err == nil {
		t.Fatal("read while stopped")
	}
	if _, err := es.Stop(); err == nil {
		t.Fatal("stop while stopped")
	}
	if err := es.Add(EventPackageEnergy); err != nil {
		t.Fatal(err)
	}
	if err := es.Start(); err != nil {
		t.Fatal(err)
	}
	if err := es.Start(); err == nil {
		t.Fatal("double start accepted")
	}
	if err := es.Add(EventPP0Energy); err == nil {
		t.Fatal("add while running accepted")
	}
	if _, err := es.Stop(); err != nil {
		t.Fatal(err)
	}
}

func TestMeasuredValuesMatchDevice(t *testing.T) {
	dev := rapl.NewDevice()
	es := NewEventSet(dev)
	for _, e := range []string{EventPackageEnergy, EventPP0Energy, EventDRAMEnergy} {
		if err := es.Add(e); err != nil {
			t.Fatal(err)
		}
	}
	// Energy before Start must not count.
	dev.Advance(10, hw.PlanePower{PKG: 50, PP0: 30, DRAM: 4})
	if err := es.Start(); err != nil {
		t.Fatal(err)
	}
	dev.Advance(2, hw.PlanePower{PKG: 35, PP0: 25, DRAM: 3})
	vals, err := es.Stop()
	if err != nil {
		t.Fatal(err)
	}
	// Nanojoules, within one quantization unit.
	wants := []float64{70e9, 50e9, 6e9}
	for i, want := range wants {
		if math.Abs(float64(vals[i])-want) > 20000 { // 15.3 µJ ≈ 15300 nJ
			t.Fatalf("event %d: %d nJ want ~%v", i, vals[i], want)
		}
	}
}

func TestReadKeepsCounting(t *testing.T) {
	dev := rapl.NewDevice()
	es := NewEventSet(dev)
	if err := es.Add(EventPackageEnergy); err != nil {
		t.Fatal(err)
	}
	if err := es.Start(); err != nil {
		t.Fatal(err)
	}
	dev.Advance(1, hw.PlanePower{PKG: 10})
	v1, err := es.Read()
	if err != nil {
		t.Fatal(err)
	}
	dev.Advance(1, hw.PlanePower{PKG: 10})
	v2, err := es.Stop()
	if err != nil {
		t.Fatal(err)
	}
	if v2[0] <= v1[0] {
		t.Fatalf("energy did not accumulate across Read: %d then %d", v1[0], v2[0])
	}
}

func TestRemoveAndRunning(t *testing.T) {
	es := NewEventSet(rapl.NewDevice())
	if err := es.Add(EventPackageEnergy); err != nil {
		t.Fatal(err)
	}
	if err := es.Add(EventPP0Energy); err != nil {
		t.Fatal(err)
	}
	if err := es.Remove(EventPP0Energy); err != nil {
		t.Fatal(err)
	}
	if err := es.Remove(EventPP0Energy); err == nil {
		t.Fatal("double remove accepted")
	}
	if got := es.Events(); len(got) != 1 {
		t.Fatalf("events %v", got)
	}
	if es.Running() {
		t.Fatal("stopped set reports running")
	}
	if err := es.Start(); err != nil {
		t.Fatal(err)
	}
	if !es.Running() {
		t.Fatal("running set reports stopped")
	}
	if err := es.Remove(EventPackageEnergy); err == nil {
		t.Fatal("remove while running accepted")
	}
	if _, err := es.Stop(); err != nil {
		t.Fatal(err)
	}
}

func TestReset(t *testing.T) {
	dev := rapl.NewDevice()
	es := NewEventSet(dev)
	if err := es.Add(EventPackageEnergy); err != nil {
		t.Fatal(err)
	}
	if err := es.Reset(); err == nil {
		t.Fatal("reset while stopped accepted")
	}
	if err := es.Start(); err != nil {
		t.Fatal(err)
	}
	dev.Advance(1, hw.PlanePower{PKG: 100})
	if err := es.Reset(); err != nil {
		t.Fatal(err)
	}
	dev.Advance(1, hw.PlanePower{PKG: 10})
	vals, err := es.Stop()
	if err != nil {
		t.Fatal(err)
	}
	// Only the post-reset 10 J should be visible.
	if vals[0] > 11e9 {
		t.Fatalf("reset did not clear: %d nJ", vals[0])
	}
}

func TestMeasureWrapper(t *testing.T) {
	dev := rapl.NewDevice()
	pkg, pp0, dram, secs, err := Measure(dev, func() {
		dev.Advance(3, hw.PlanePower{PKG: 20, PP0: 12, DRAM: 2})
	})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(pkg-60) > 0.001 || math.Abs(pp0-36) > 0.001 || math.Abs(dram-6) > 0.001 {
		t.Fatalf("measured %v %v %v", pkg, pp0, dram)
	}
	if secs != 3 {
		t.Fatalf("duration %v", secs)
	}
}

func TestPollLifecycle(t *testing.T) {
	dev := rapl.NewDevice()
	es := NewEventSet(dev)
	if err := es.Add(EventPackageEnergy); err != nil {
		t.Fatal(err)
	}
	if err := es.Poll(); err == nil {
		t.Fatal("poll while stopped accepted")
	}
	if err := es.Start(); err != nil {
		t.Fatal(err)
	}
	dev.Advance(1, hw.PlanePower{PKG: 10})
	if err := es.Poll(); err != nil {
		t.Fatal(err)
	}
	vals, err := es.Stop()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(float64(vals[0])-10e9) > 20000 {
		t.Fatalf("polled energy %d nJ", vals[0])
	}
}

// TestMeasureSurvivesCounterWrap is the regression test for the silent
// wrap loss Measure used to have: sampling only at Stop, any run
// accumulating more than one 32-bit counter wrap (~65.5 kJ/plane at
// the default unit) under-reported with no error. Measure now samples
// every DefaultPollInterval of device time, so a 200 kJ run (three
// wraps) is recovered in full.
func TestMeasureSurvivesCounterWrap(t *testing.T) {
	dev := rapl.NewDevice()
	pkg, pp0, dram, secs, err := Measure(dev, func() {
		// 4000 s at 50 W PKG / 30 W PP0 = 200 kJ / 120 kJ: two wraps on
		// PP0, three on PKG at the 2³²·2⁻¹⁶ ≈ 65.5 kJ wrap period.
		for i := 0; i < 4000; i++ {
			dev.Advance(1, hw.PlanePower{PKG: 50, PP0: 30, DRAM: 2})
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if secs != 4000 {
		t.Fatalf("duration %v", secs)
	}
	if math.Abs(pkg-200000) > 0.001 || math.Abs(pp0-120000) > 0.001 || math.Abs(dram-8000) > 0.001 {
		t.Fatalf("wrap-corrected energy %v %v %v want 200000 120000 8000", pkg, pp0, dram)
	}
}

// TestMeasureAtUndersampledLosesWraps documents the failure mode the
// polling fix removes: with periodic sampling disabled, each full wrap
// vanishes silently.
func TestMeasureAtUndersampledLosesWraps(t *testing.T) {
	dev := rapl.NewDevice()
	pkg, _, _, _, err := MeasureAt(dev, 0, func() {
		for i := 0; i < 4000; i++ {
			dev.Advance(1, hw.PlanePower{PKG: 50})
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	wrapJ := math.Pow(2, 32) / 65536.0
	want := 200000 - 3*wrapJ
	if math.Abs(pkg-want) > 0.001 {
		t.Fatalf("undersampled measurement %v J want %v (three wraps lost)", pkg, want)
	}
}
