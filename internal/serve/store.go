package serve

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"capscale/internal/workload"
)

// Store is the persistent result store: one checkpoint-format JSONL
// journal per configuration fingerprint, written by the sweeps
// themselves (the server points Config.CheckpointPath into the store
// directory, so every completed cell is journaled and fsynced the
// moment it finishes — the store is crash-consistent for free, and a
// re-POSTed sweep resumes from it like any checkpointed sweep).
type Store struct {
	dir string
}

// storeExt is the journal filename extension: <fingerprint>.jsonl.
const storeExt = ".jsonl"

// OpenStore creates dir if needed and returns the store.
func OpenStore(dir string) (*Store, error) {
	if dir == "" {
		return nil, fmt.Errorf("serve: empty store directory")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("serve: creating store: %w", err)
	}
	return &Store{dir: dir}, nil
}

// Dir returns the store directory.
func (st *Store) Dir() string { return st.dir }

// Path returns the journal path for a fingerprint.
func (st *Store) Path(fp string) string {
	return filepath.Join(st.dir, fp+storeExt)
}

// Has reports whether a journal exists for the fingerprint.
func (st *Store) Has(fp string) bool {
	_, err := os.Stat(st.Path(fp))
	return err == nil
}

// Replay streams the fingerprint's stored record lines to w, verbatim
// — byte-identical to the lines streamed while the sweep ran, and
// across repeated replays. Returns the record count.
func (st *Store) Replay(fp string, w io.Writer) (int, error) {
	return workload.ReplayJournal(st.Path(fp), w)
}

// Fingerprints lists the stored result fingerprints, sorted.
func (st *Store) Fingerprints() []string {
	entries, err := os.ReadDir(st.dir)
	if err != nil {
		return nil
	}
	var fps []string
	for _, e := range entries {
		name := e.Name()
		fp, ok := strings.CutSuffix(name, storeExt)
		if ok && validFingerprint(fp) {
			fps = append(fps, fp)
		}
	}
	sort.Strings(fps)
	return fps
}

// validFingerprint matches the 16-hex-digit form Config.Fingerprint
// produces; it is also the path-traversal guard for GET /v1/result.
func validFingerprint(fp string) bool {
	if len(fp) != 16 {
		return false
	}
	for _, c := range fp {
		if !(c >= '0' && c <= '9' || c >= 'a' && c <= 'f') {
			return false
		}
	}
	return true
}
