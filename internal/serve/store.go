package serve

import (
	"fmt"
	"io"

	"capscale/internal/store"
	"capscale/internal/workload"
)

// Store is the persistent result store: one checkpoint-format JSONL
// journal per configuration fingerprint, written by the sweeps
// themselves (the server points Config.CheckpointPath into the store
// directory, so every completed cell is journaled and fsynced the
// moment it finishes — the store is crash-consistent for free, and a
// re-POSTed sweep resumes from it like any checkpointed sweep). It is
// a thin serve-flavored wrapper over internal/store: the journal,
// lease and salvage mechanics live there, behind the injectable
// filesystem the fault tests drive.
type Store struct {
	inner *store.Store
}

// storeExt is the journal filename extension: <fingerprint>.jsonl.
const storeExt = store.Ext

// OpenStore creates dir if needed and returns the store. A nil fsys
// selects the real filesystem.
func OpenStore(dir string, fsys store.FS) (*Store, error) {
	if dir == "" {
		return nil, fmt.Errorf("serve: empty store directory")
	}
	inner, err := store.Open(dir, fsys)
	if err != nil {
		return nil, fmt.Errorf("serve: creating store: %w", err)
	}
	return &Store{inner: inner}, nil
}

// Dir returns the store directory.
func (st *Store) Dir() string { return st.inner.Dir() }

// Path returns the journal path for a fingerprint.
func (st *Store) Path(fp string) string { return st.inner.Path(fp) }

// LeasePath returns the on-disk claim file guarding a fingerprint's
// journal.
func (st *Store) LeasePath(fp string) string { return st.inner.LeasePath(fp) }

// Has reports whether a journal exists for the fingerprint.
func (st *Store) Has(fp string) bool { return st.inner.Has(fp) }

// Replay streams the fingerprint's stored record lines to w, verbatim
// — byte-identical to the lines streamed while the sweep ran, and
// across repeated replays. Returns the record count.
func (st *Store) Replay(fp string, w io.Writer) (int, error) {
	return workload.ReplayJournalFS(st.inner.FS(), st.Path(fp), w)
}

// Fingerprints lists the stored result fingerprints, sorted. Lease
// files, request sidecars and quarantined journals are excluded.
func (st *Store) Fingerprints() []string {
	fps, err := st.inner.Fingerprints()
	if err != nil {
		return nil
	}
	return fps
}

// RequestFingerprints lists the fingerprints with a saved request
// sidecar — including ones with no journal yet, which recovery
// restarts from scratch.
func (st *Store) RequestFingerprints() []string {
	fps, err := st.inner.RequestFingerprints()
	if err != nil {
		return nil
	}
	return fps
}

// SaveRequest persists the raw sweep request body next to the journal
// — what lets a recovering replica reconstruct and resume a sweep it
// never saw.
func (st *Store) SaveRequest(fp string, body []byte) error {
	return st.inner.SaveRequest(fp, body)
}

// LoadRequest returns the saved request body for fp, if any.
func (st *Store) LoadRequest(fp string) ([]byte, bool) { return st.inner.LoadRequest(fp) }

// validFingerprint matches the 16-hex-digit form Config.Fingerprint
// produces; it is also the path-traversal guard for GET /v1/result.
func validFingerprint(fp string) bool { return store.ValidFingerprint(fp) }
