// Package serve puts a long-running HTTP/JSON front end on the
// experiment pipeline: sweep-as-a-service. The paper's capability
// question — "which algorithm wins under this power budget on this
// machine?" — is a query, and everything a query service needs
// already exists in the pipeline: configurations fingerprint to
// content-addressed results (workload.Config.Fingerprint), completed
// cells journal crash-safely to JSONL (the checkpoint layer, reused
// here as the persistent result store), the run cache single-flights
// concurrent computes of one cell, and the obs metrics/span registry
// publishes through expvar as service telemetry for free.
//
// Endpoints:
//
//	POST /v1/sweep        a workload.Config subset (see SweepRequest)
//	                      → NDJSON stream of cell records as they
//	                      finish, then one trailer object. Requests
//	                      with equal fingerprints attach to one
//	                      in-flight execution (single-flight): each
//	                      cell is executed at most once no matter how
//	                      many clients ask for it. When a request
//	                      attaches to a sweep already under way, the
//	                      already-known cells are flushed immediately,
//	                      Predicted cells first (they are the cheap,
//	                      model-answered majority of a guided sweep).
//	GET  /v1/result/{fp}  replay a completed sweep's records from the
//	                      persistent store, byte-identical to the
//	                      lines streamed while it ran.
//	GET  /v1/status       service snapshot (uptime, in-flight sweeps,
//	                      stored results, dedup counters).
//	GET  /debug/vars      the expvar registry, including every obs.*
//	                      pipeline metric.
//
// Load shedding: at most MaxActiveSweeps distinct sweeps execute
// concurrently and each client (X-Client-ID header, else remote host)
// may hold ClientQuota open requests; beyond either, the server
// answers 429 so callers back off instead of queueing unboundedly.
// Attaching to an in-flight sweep does not count against
// MaxActiveSweeps — it costs a subscriber, not an executor.
//
// Draining: Drain stops admission (503 with Retry-After) and waits
// for in-flight sweeps. Every completed cell is already journaled and
// fsynced in the store, so a drain deadline (or a kill) loses no
// finished work; clients cut off mid-stream receive a trailer with
// "complete":false and the sweep fingerprint, and resume by POSTing
// the same request (restored cells replay from the store) or fetching
// GET /v1/result/{fingerprint} after the server returns.
package serve

import (
	"encoding/json"
	"expvar"
	"fmt"
	"io"
	"net/http"
	"sort"
	"sync"
	"time"

	"capscale/internal/obs"
	"capscale/internal/workload"
)

// Config configures a sweep server.
type Config struct {
	// StoreDir is the persistent result store: one JSONL journal per
	// configuration fingerprint. Required.
	StoreDir string
	// Parallelism bounds each sweep's cell workers (0 = GOMAXPROCS,
	// matching workload.Config).
	Parallelism int
	// MaxActiveSweeps bounds concurrently executing sweeps; further
	// new-fingerprint requests get 429. 0 selects DefaultMaxActiveSweeps.
	MaxActiveSweeps int
	// ClientQuota bounds open requests per client (X-Client-ID header,
	// else remote host); 0 selects DefaultClientQuota. Negative
	// disables the quota.
	ClientQuota int
	// CacheCap bounds the server's run cache instance; 0 selects
	// workload.DefaultRunCacheCap.
	CacheCap int
}

// Defaults for the load-shedding knobs: small enough that an abusive
// client cannot monopolize the simulator, large enough for a busy
// interactive fleet.
const (
	DefaultMaxActiveSweeps = 4
	DefaultClientQuota     = 8
)

// Server is a sweep-as-a-service instance. Create with New, mount
// Handler, call Drain before exit.
type Server struct {
	cfg   Config
	store *Store
	cache *workload.RunCache
	start time.Time

	mu       sync.Mutex
	sweeps   map[string]*sweepState // in-flight, by fingerprint
	active   int                    // executing sweeps
	clients  map[string]int         // open requests per client
	draining bool
	wg       sync.WaitGroup // one per executing sweep
}

// Service metrics, published through expvar like every obs metric.
var (
	mReqs       = obs.GetCounter("serve.requests")
	mStarted    = obs.GetCounter("serve.sweeps.started")
	mAttached   = obs.GetCounter("serve.sweeps.attached")
	mCompleted  = obs.GetCounter("serve.sweeps.completed")
	mFailed     = obs.GetCounter("serve.sweeps.failed")
	mReplayed   = obs.GetCounter("serve.results.replayed")
	mShedQuota  = obs.GetCounter("serve.shed.quota")
	mShedBusy   = obs.GetCounter("serve.shed.backpressure")
	mCellsSent  = obs.GetCounter("serve.cells.streamed")
	mActive     = obs.GetGauge("serve.sweeps.active")
	mOpenReqs   = obs.GetGauge("serve.requests.open")
	mReqSeconds = obs.GetHistogramUnit("serve.request.seconds", "s")
)

// New opens (creating if needed) the result store and returns a
// server.
func New(cfg Config) (*Server, error) {
	if cfg.MaxActiveSweeps == 0 {
		cfg.MaxActiveSweeps = DefaultMaxActiveSweeps
	}
	if cfg.ClientQuota == 0 {
		cfg.ClientQuota = DefaultClientQuota
	}
	if cfg.CacheCap == 0 {
		cfg.CacheCap = workload.DefaultRunCacheCap
	}
	store, err := OpenStore(cfg.StoreDir)
	if err != nil {
		return nil, err
	}
	return &Server{
		cfg:     cfg,
		store:   store,
		cache:   workload.NewRunCache(cfg.CacheCap),
		start:   time.Now(),
		sweeps:  make(map[string]*sweepState),
		clients: make(map[string]int),
	}, nil
}

// Handler returns the service's HTTP routes.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/sweep", s.handleSweep)
	mux.HandleFunc("GET /v1/result/{fp}", s.handleResult)
	mux.HandleFunc("GET /v1/status", s.handleStatus)
	mux.Handle("GET /debug/vars", expvar.Handler())
	return mux
}

// Drain stops admitting requests and waits up to timeout for in-flight
// sweeps to finish, returning true when everything drained. Cells
// completed by sweeps still running at the deadline are already
// journaled in the store; their clients' trailers carry
// "complete":false plus the fingerprint to resume by.
func (s *Server) Drain(timeout time.Duration) bool {
	s.mu.Lock()
	s.draining = true
	states := make([]*sweepState, 0, len(s.sweeps))
	for _, st := range s.sweeps {
		states = append(states, st)
	}
	s.mu.Unlock()

	done := make(chan struct{})
	go func() { s.wg.Wait(); close(done) }()
	select {
	case <-done:
		return true
	case <-time.After(timeout):
		// Cut the streams loose with a resumable trailer; the Execute
		// goroutines finish (and journal) on their own time.
		for _, st := range states {
			st.finish("server draining; completed cells are stored — resume by fingerprint")
		}
		return false
	}
}

// clientID identifies a request's client for quota accounting.
func clientID(r *http.Request) string {
	if id := r.Header.Get("X-Client-ID"); id != "" {
		return id
	}
	return r.RemoteAddr
}

// admit performs the shared admission checks (drain state, client
// quota), returning the client key and false when the request was
// already answered.
func (s *Server) admit(w http.ResponseWriter, r *http.Request) (string, bool) {
	mReqs.Inc()
	client := clientID(r)
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.draining {
		w.Header().Set("Retry-After", "10")
		http.Error(w, "server draining", http.StatusServiceUnavailable)
		return "", false
	}
	if q := s.cfg.ClientQuota; q > 0 && s.clients[client] >= q {
		mShedQuota.Inc()
		w.Header().Set("Retry-After", "1")
		http.Error(w, fmt.Sprintf("client %q has %d requests open (quota %d)", client, s.clients[client], q),
			http.StatusTooManyRequests)
		return "", false
	}
	s.clients[client]++
	mOpenReqs.Add(1)
	return client, true
}

// release undoes admit's accounting.
func (s *Server) release(client string) {
	s.mu.Lock()
	s.clients[client]--
	if s.clients[client] <= 0 {
		delete(s.clients, client)
	}
	s.mu.Unlock()
	mOpenReqs.Add(-1)
}

// handleSweep executes (or attaches to) a sweep and streams its cell
// records as NDJSON.
func (s *Server) handleSweep(w http.ResponseWriter, r *http.Request) {
	t0 := time.Now()
	defer func() { mReqSeconds.Observe(time.Since(t0).Seconds()) }()

	client, ok := s.admit(w, r)
	if !ok {
		return
	}
	defer s.release(client)

	body, err := io.ReadAll(io.LimitReader(r.Body, 1<<20))
	if err != nil {
		http.Error(w, "reading request body: "+err.Error(), http.StatusBadRequest)
		return
	}
	var req SweepRequest
	if len(body) > 0 {
		if err := json.Unmarshal(body, &req); err != nil {
			http.Error(w, "bad request JSON: "+err.Error(), http.StatusBadRequest)
			return
		}
	}
	cfg, err := req.Config()
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	fp := cfg.Fingerprint()

	st, attached, err := s.startOrAttach(fp, cfg)
	if err != nil {
		mShedBusy.Inc()
		w.Header().Set("Retry-After", "5")
		http.Error(w, err.Error(), http.StatusTooManyRequests)
		return
	}
	if attached {
		mAttached.Inc()
	}

	w.Header().Set("Content-Type", "application/x-ndjson")
	w.Header().Set("X-Sweep-Fingerprint", fp)
	w.WriteHeader(http.StatusOK)
	st.stream(r.Context(), w)
}

// startOrAttach returns the in-flight sweep state for fp, launching
// the execution when this request is the first to ask for it. The
// error (backpressure) is only possible for a launch.
func (s *Server) startOrAttach(fp string, cfg workload.Config) (*sweepState, bool, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if st, ok := s.sweeps[fp]; ok {
		return st, true, nil
	}
	if s.active >= s.cfg.MaxActiveSweeps {
		return nil, false, fmt.Errorf("%d sweeps executing (limit %d); retry shortly",
			s.active, s.cfg.MaxActiveSweeps)
	}
	st := newSweepState(fp, cfg.CellCount())
	s.sweeps[fp] = st
	s.active++
	mActive.Add(1)
	mStarted.Inc()
	s.wg.Add(1)
	go s.runSweep(st, cfg)
	return st, false, nil
}

// runSweep executes one sweep, feeding completed cells into the state
// (and, via the checkpoint journal, the persistent store) as they
// finish.
func (s *Server) runSweep(st *sweepState, cfg workload.Config) {
	defer s.wg.Done()
	defer func() {
		s.mu.Lock()
		delete(s.sweeps, st.fp)
		s.active--
		s.mu.Unlock()
		mActive.Add(-1)
	}()

	cfg.CheckpointPath = s.store.Path(st.fp)
	cfg.Cache = s.cache
	cfg.Parallelism = s.cfg.Parallelism
	cfg.OnRun = func(key string, r *workload.Run) {
		line, err := workload.MarshalRunRecord(key, r)
		if err != nil {
			return
		}
		mCellsSent.Inc()
		st.append(line, r.Predicted)
	}

	err := func() (err error) {
		defer func() {
			if p := recover(); p != nil {
				err = fmt.Errorf("sweep failed: %v", p)
			}
		}()
		workload.Execute(cfg)
		return nil
	}()
	if err != nil {
		mFailed.Inc()
		st.finish(err.Error())
		return
	}
	mCompleted.Inc()
	st.finish("")
}

// handleResult replays a completed sweep's journal from the store,
// byte-identical across replays (and to the record lines streamed by
// the POST that produced it).
func (s *Server) handleResult(w http.ResponseWriter, r *http.Request) {
	t0 := time.Now()
	defer func() { mReqSeconds.Observe(time.Since(t0).Seconds()) }()
	client, ok := s.admit(w, r)
	if !ok {
		return
	}
	defer s.release(client)

	fp := r.PathValue("fp")
	if !validFingerprint(fp) {
		http.Error(w, "malformed fingerprint", http.StatusBadRequest)
		return
	}
	s.mu.Lock()
	_, inflight := s.sweeps[fp]
	s.mu.Unlock()
	if inflight {
		// The journal is being appended to; a partial replay would not
		// be byte-stable. Clients stream the POST instead.
		w.Header().Set("Retry-After", "5")
		http.Error(w, "sweep still executing; POST /v1/sweep to stream it", http.StatusConflict)
		return
	}
	if !s.store.Has(fp) {
		http.Error(w, "no stored result for fingerprint "+fp, http.StatusNotFound)
		return
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	n, err := s.store.Replay(fp, w)
	if err != nil && n == 0 {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	mReplayed.Inc()
}

// statusJSON is the GET /v1/status document.
type statusJSON struct {
	UptimeSeconds   float64 `json:"uptime_seconds"`
	Draining        bool    `json:"draining"`
	ActiveSweeps    int     `json:"active_sweeps"`
	OpenRequests    int64   `json:"open_requests"`
	StoredResults   int     `json:"stored_results"`
	SweepsStarted   int64   `json:"sweeps_started"`
	SweepsAttached  int64   `json:"sweeps_attached"`
	SweepsCompleted int64   `json:"sweeps_completed"`
	SweepsFailed    int64   `json:"sweeps_failed"`
	CellsStreamed   int64   `json:"cells_streamed"`
	CellsExecuted   int64   `json:"cells_executed"`
	CacheDeduped    int64   `json:"cells_deduplicated"`
	ShedQuota       int64   `json:"shed_quota"`
	ShedBusy        int64   `json:"shed_backpressure"`
}

func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	active, draining := s.active, s.draining
	s.mu.Unlock()
	doc := statusJSON{
		UptimeSeconds:   time.Since(s.start).Seconds(),
		Draining:        draining,
		ActiveSweeps:    active,
		OpenRequests:    mOpenReqs.Value(),
		StoredResults:   len(s.store.Fingerprints()),
		SweepsStarted:   mStarted.Value(),
		SweepsAttached:  mAttached.Value(),
		SweepsCompleted: mCompleted.Value(),
		SweepsFailed:    mFailed.Value(),
		CellsStreamed:   mCellsSent.Value(),
		CellsExecuted:   obs.GetCounter("workload.cells.executed").Value(),
		CacheDeduped:    obs.GetCounter("workload.cache.singleflight").Value(),
		ShedQuota:       mShedQuota.Value(),
		ShedBusy:        mShedBusy.Value(),
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(doc)
}

// sweepState is one in-flight (or draining) sweep's fan-out buffer:
// record lines accumulate in completion order and every subscriber
// streams them at its own pace.
type sweepState struct {
	fp    string
	cells int

	mu     sync.Mutex
	cond   *sync.Cond
	lines  []recLine
	done   bool
	errMsg string
}

type recLine struct {
	data      []byte
	predicted bool
}

func newSweepState(fp string, cells int) *sweepState {
	st := &sweepState{fp: fp, cells: cells}
	st.cond = sync.NewCond(&st.mu)
	return st
}

// append publishes one completed cell's record line to every
// subscriber.
func (st *sweepState) append(line []byte, predicted bool) {
	st.mu.Lock()
	if !st.done {
		st.lines = append(st.lines, recLine{data: line, predicted: predicted})
	}
	st.mu.Unlock()
	st.cond.Broadcast()
}

// finish marks the sweep complete (errMsg "" on success). Idempotent;
// the first call wins.
func (st *sweepState) finish(errMsg string) {
	st.mu.Lock()
	if !st.done {
		st.done = true
		st.errMsg = errMsg
	}
	st.mu.Unlock()
	st.cond.Broadcast()
}

// trailer is the final NDJSON object of a sweep stream. Its "done"
// field distinguishes it from cell records (which carry "key").
type trailer struct {
	Done        bool   `json:"done"`
	Fingerprint string `json:"fingerprint"`
	Cells       int    `json:"cells"`
	Streamed    int    `json:"streamed"`
	Complete    bool   `json:"complete"`
	Error       string `json:"error,omitempty"`
}

// stream writes the sweep to w as NDJSON: the cells already known at
// attach time first (Predicted ones leading — the cheap, model-
// answered majority of a guided sweep), then live cells in completion
// order, then the trailer. Returns when the sweep finishes, the
// client disconnects, or ctx is canceled.
func (st *sweepState) stream(ctx interface{ Done() <-chan struct{} }, w io.Writer) {
	flush := func() {}
	if f, ok := w.(http.Flusher); ok {
		flush = f.Flush
	}
	// Wake the cond waiter when the client goes away.
	stop := make(chan struct{})
	defer close(stop)
	go func() {
		select {
		case <-ctx.Done():
			st.cond.Broadcast()
		case <-stop:
		}
	}()
	canceled := func() bool {
		select {
		case <-ctx.Done():
			return true
		default:
			return false
		}
	}

	st.mu.Lock()
	snapshot := append([]recLine(nil), st.lines...)
	st.mu.Unlock()
	sort.SliceStable(snapshot, func(i, j int) bool {
		return snapshot[i].predicted && !snapshot[j].predicted
	})
	streamed := 0
	for _, l := range snapshot {
		if _, err := fmt.Fprintf(w, "%s\n", l.data); err != nil {
			return
		}
		streamed++
	}
	flush()

	next := len(snapshot)
	for {
		st.mu.Lock()
		for next >= len(st.lines) && !st.done && !canceled() {
			st.cond.Wait()
		}
		batch := append([]recLine(nil), st.lines[next:]...)
		done, errMsg := st.done, st.errMsg
		st.mu.Unlock()

		for _, l := range batch {
			if _, err := fmt.Fprintf(w, "%s\n", l.data); err != nil {
				return
			}
			streamed++
			next++
		}
		if len(batch) > 0 {
			flush()
		}
		if canceled() {
			return
		}
		if done {
			tr := trailer{
				Done:        true,
				Fingerprint: st.fp,
				Cells:       st.cells,
				Streamed:    streamed,
				Complete:    errMsg == "" && streamed >= st.cells,
				Error:       errMsg,
			}
			line, _ := json.Marshal(tr)
			fmt.Fprintf(w, "%s\n", line)
			flush()
			return
		}
	}
}
