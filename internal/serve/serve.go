// Package serve puts a long-running HTTP/JSON front end on the
// experiment pipeline: sweep-as-a-service. The paper's capability
// question — "which algorithm wins under this power budget on this
// machine?" — is a query, and everything a query service needs
// already exists in the pipeline: configurations fingerprint to
// content-addressed results (workload.Config.Fingerprint), completed
// cells journal crash-safely to JSONL (the checkpoint layer, reused
// here as the persistent result store), the run cache single-flights
// concurrent computes of one cell, and the obs metrics/span registry
// publishes through expvar as service telemetry for free.
//
// Endpoints:
//
//	POST /v1/sweep        a workload.Config subset (see SweepRequest)
//	                      → NDJSON stream of cell records as they
//	                      finish, then one trailer object. Requests
//	                      with equal fingerprints attach to one
//	                      in-flight execution (single-flight): each
//	                      cell is executed at most once no matter how
//	                      many clients ask for it. When a request
//	                      attaches to a sweep already under way, the
//	                      already-known cells are flushed immediately,
//	                      Predicted cells first (they are the cheap,
//	                      model-answered majority of a guided sweep).
//	                      With ?from=N (or a Last-Cell: N header) the
//	                      stream is journal-backed instead: record
//	                      lines are tailed straight out of the store
//	                      journal starting at record index N, and the
//	                      trailer's "next_from" is an exact resume
//	                      token — a client cut off mid-stream re-POSTs
//	                      with ?from=<next_from> and receives each
//	                      record exactly once, even across a replica
//	                      death.
//	GET  /v1/result/{fp}  replay a completed sweep's records from the
//	                      persistent store, byte-identical to the
//	                      lines streamed while it ran. ?from=N skips
//	                      the first N records (X-Next-From carries the
//	                      full count).
//	GET  /v1/status       service snapshot (uptime, replica ID,
//	                      in-flight sweeps, stored results, dedup and
//	                      recovery counters).
//	GET  /debug/vars      the expvar registry, including every obs.*
//	                      pipeline metric.
//
// Multi-replica operation: any number of servers may share one store
// directory. Each sweep journal is claimed by an on-disk lease (owner
// + monotonic epoch + TTL, renewed while the sweep runs; see
// internal/store). A replica asked for a sweep another replica is
// executing attaches as a read-only follower: it tails the journal and
// streams cells as the leaseholder lands them. If the leaseholder dies
// — its lease expires, or its process is verifiably gone on the same
// host — the follower (or a recovering replica) steals the lease with
// a bumped epoch and resumes the sweep through the normal
// checkpoint-resume path; epoch fencing makes the dead replica's
// late journal writes fail rather than interleave. On startup,
// Recover salvages torn journals (quarantining ones whose header is
// unreadable) and resumes any incomplete sweep whose request sidecar
// is on disk and whose lease is free.
//
// Client retry contract: bounded retries with jittered exponential
// backoff. On 429/503, honor Retry-After (add ±50% jitter); on a cut
// stream, re-POST the same request with ?from=<next_from from the last
// trailer, or the count of records already held> — resumed streams
// never repeat a record, restored cells cost no re-execution, and a
// few retries (5 with backoff capped at ~30s is plenty) ride out a
// replica death, because any replica sharing the store can continue
// the sweep. Give up, rather than retrying forever, on 400s: they are
// deterministic.
//
// Load shedding: at most MaxActiveSweeps distinct sweeps execute
// concurrently and each client (X-Client-ID header, else remote host)
// may hold ClientQuota open requests; beyond either, the server
// answers 429 so callers back off instead of queueing unboundedly.
// Attaching to an in-flight sweep does not count against
// MaxActiveSweeps — it costs a subscriber, not an executor.
//
// Draining: Drain stops admission (503 with Retry-After) and waits for
// in-flight sweeps. At the deadline it stops them instead: remaining
// cells resolve as interrupted at the next cell boundary
// (workload.Config.Stop), streams get a trailer with "complete":false
// and "resumable":true, and a short grace period lets executors close
// their journals and release their leases. Every completed cell is
// already journaled and fsynced in the store, so a drain deadline (or
// a kill -9) loses no finished work.
package serve

import (
	"context"
	"encoding/json"
	"errors"
	"expvar"
	"fmt"
	"io"
	"net/http"
	"os"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"capscale/internal/obs"
	"capscale/internal/store"
	"capscale/internal/workload"
)

// Config configures a sweep server.
type Config struct {
	// StoreDir is the persistent result store: one JSONL journal per
	// configuration fingerprint. Required. Multiple replicas may share
	// one directory; the lease files coordinate them.
	StoreDir string
	// Parallelism bounds each sweep's cell workers (0 = GOMAXPROCS,
	// matching workload.Config).
	Parallelism int
	// MaxActiveSweeps bounds concurrently executing sweeps; further
	// new-fingerprint requests get 429. 0 selects DefaultMaxActiveSweeps.
	MaxActiveSweeps int
	// ClientQuota bounds open requests per client (X-Client-ID header,
	// else remote host); 0 selects DefaultClientQuota. Negative
	// disables the quota.
	ClientQuota int
	// CacheCap bounds the server's run cache instance; 0 selects
	// workload.DefaultRunCacheCap.
	CacheCap int
	// FS routes all store, journal and lease I/O through an injectable
	// filesystem; nil selects the real one. The crash property tests
	// inject faults.FaultFS here.
	FS store.FS
	// ReplicaID names this server on store leases and in /v1/status;
	// empty selects "<host>:<pid>". Replicas sharing a store should
	// carry stable distinct IDs.
	ReplicaID string
	// LeaseTTL is the sweep-journal claim lifetime between renewals;
	// 0 selects store.DefaultLeaseTTL. Lower values speed up takeover
	// of a crashed replica's sweeps at the cost of more lease I/O.
	LeaseTTL time.Duration
	// FollowPoll is how often a read-only follower re-scans a journal
	// another replica is writing; 0 selects DefaultFollowPoll.
	FollowPoll time.Duration
}

// Defaults for the load-shedding knobs: small enough that an abusive
// client cannot monopolize the simulator, large enough for a busy
// interactive fleet.
const (
	DefaultMaxActiveSweeps = 4
	DefaultClientQuota     = 8
	DefaultFollowPoll      = 150 * time.Millisecond
)

// Server is a sweep-as-a-service instance. Create with New, call
// Recover to pick up interrupted sweeps, mount Handler, call Drain
// before exit.
type Server struct {
	cfg   Config
	store *Store
	fsys  store.FS
	cache *workload.RunCache
	start time.Time

	// stopSweeps flips at the drain deadline: every executing sweep
	// stops at its next cell boundary (workload.Config.Stop).
	stopSweeps atomic.Bool

	mu       sync.Mutex
	sweeps   map[string]*sweepState // in-flight, by fingerprint
	active   int                    // executing sweeps
	clients  map[string]int         // open requests per client
	draining bool
	wg       sync.WaitGroup // one per executing sweep
}

// Service metrics, published through expvar like every obs metric.
var (
	mReqs        = obs.GetCounter("serve.requests")
	mStarted     = obs.GetCounter("serve.sweeps.started")
	mAttached    = obs.GetCounter("serve.sweeps.attached")
	mCompleted   = obs.GetCounter("serve.sweeps.completed")
	mFailed      = obs.GetCounter("serve.sweeps.failed")
	mInterrupted = obs.GetCounter("serve.sweeps.interrupted")
	mFollowed    = obs.GetCounter("serve.sweeps.followed")
	mRecovered   = obs.GetCounter("serve.sweeps.recovered")
	mTakeovers   = obs.GetCounter("serve.sweeps.takeovers")
	mSalvaged    = obs.GetCounter("serve.journals.salvaged")
	mReplayed    = obs.GetCounter("serve.results.replayed")
	mShedQuota   = obs.GetCounter("serve.shed.quota")
	mShedBusy    = obs.GetCounter("serve.shed.backpressure")
	mCellsSent   = obs.GetCounter("serve.cells.streamed")
	mActive      = obs.GetGauge("serve.sweeps.active")
	mOpenReqs    = obs.GetGauge("serve.requests.open")
	mReqSeconds  = obs.GetHistogramUnit("serve.request.seconds", "s")
)

// New opens (creating if needed) the result store and returns a
// server.
func New(cfg Config) (*Server, error) {
	if cfg.MaxActiveSweeps == 0 {
		cfg.MaxActiveSweeps = DefaultMaxActiveSweeps
	}
	if cfg.ClientQuota == 0 {
		cfg.ClientQuota = DefaultClientQuota
	}
	if cfg.CacheCap == 0 {
		cfg.CacheCap = workload.DefaultRunCacheCap
	}
	if cfg.FollowPoll <= 0 {
		cfg.FollowPoll = DefaultFollowPoll
	}
	if cfg.ReplicaID == "" {
		host, err := os.Hostname()
		if err != nil {
			host = "replica"
		}
		cfg.ReplicaID = fmt.Sprintf("%s:%d", host, os.Getpid())
	}
	st, err := OpenStore(cfg.StoreDir, cfg.FS)
	if err != nil {
		return nil, err
	}
	return &Server{
		cfg:     cfg,
		store:   st,
		fsys:    store.Resolve(cfg.FS),
		cache:   workload.NewRunCache(cfg.CacheCap),
		start:   time.Now(),
		sweeps:  make(map[string]*sweepState),
		clients: make(map[string]int),
	}, nil
}

// ReplicaID returns the ID this server claims leases under.
func (s *Server) ReplicaID() string { return s.cfg.ReplicaID }

// Handler returns the service's HTTP routes.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/sweep", s.handleSweep)
	mux.HandleFunc("GET /v1/result/{fp}", s.handleResult)
	mux.HandleFunc("GET /v1/status", s.handleStatus)
	mux.Handle("GET /debug/vars", expvar.Handler())
	return mux
}

// Recover scans the store for interrupted work: torn journal tails
// are salvaged (headerless journals quarantined aside), and every
// incomplete sweep with a request sidecar and a free lease is resumed
// through the normal checkpoint path. Call it on startup, after
// mounting nothing — it launches executor goroutines, not requests.
// logf (nil for silent) receives one line per action taken.
func (s *Server) Recover(logf func(format string, args ...any)) (resumed, salvaged int) {
	if logf == nil {
		logf = func(string, ...any) {}
	}
	// Union of journals and request sidecars: a crash between the
	// sidecar save and the journal's first rename leaves a sidecar with
	// no journal, and that sweep restarts from scratch.
	seen := make(map[string]bool)
	var fps []string
	for _, fp := range s.store.Fingerprints() {
		seen[fp] = true
		fps = append(fps, fp)
	}
	for _, fp := range s.store.RequestFingerprints() {
		if !seen[fp] {
			fps = append(fps, fp)
		}
	}
	for _, fp := range fps {
		if changed, err := workload.SalvageJournal(s.fsys, s.store.Path(fp)); err != nil {
			logf("recover %s: salvage: %v", fp, err)
			continue
		} else if changed {
			salvaged++
			mSalvaged.Inc()
			logf("recover %s: salvaged journal (torn tail or junk compacted away)", fp)
		}
		body, ok := s.store.LoadRequest(fp)
		if !ok {
			continue // nothing to reconstruct the sweep from
		}
		var req SweepRequest
		if err := json.Unmarshal(body, &req); err != nil {
			logf("recover %s: unreadable request sidecar: %v", fp, err)
			continue
		}
		cfg, err := req.Config()
		if err != nil || cfg.Fingerprint() != fp {
			logf("recover %s: request sidecar does not reproduce the fingerprint; skipping", fp)
			continue
		}
		snap, err := workload.SnapshotJournal(s.fsys, s.store.Path(fp))
		if err != nil {
			logf("recover %s: %v", fp, err)
			continue
		}
		if snap.Unique >= cfg.CellCount() {
			continue // complete: replayable, nothing to resume
		}
		if info, live := store.ReadLeaseInfo(s.fsys, s.store.LeasePath(fp), time.Now()); live {
			logf("recover %s: leased by %q; leaving it to them", fp, info.Owner)
			continue
		}
		if _, attached, err := s.startOrAttach(fp, cfg, nil); err != nil {
			logf("recover %s: %v", fp, err)
		} else if !attached {
			resumed++
			mRecovered.Inc()
			logf("recover %s: resuming (%d/%d cells stored)", fp, snap.Unique, cfg.CellCount())
		}
	}
	return resumed, salvaged
}

// Drain stops admitting requests and waits up to timeout for in-flight
// sweeps to finish, returning true when everything drained. At the
// deadline the sweeps are stopped instead of waited out: remaining
// cells resolve as interrupted at the next cell boundary, clients'
// trailers carry "complete":false with "resumable":true, and a short
// grace period lets executors close journals and release leases —
// every completed cell is already journaled and fsynced, so nothing
// finished is lost.
func (s *Server) Drain(timeout time.Duration) bool {
	s.mu.Lock()
	s.draining = true
	states := make([]*sweepState, 0, len(s.sweeps))
	for _, st := range s.sweeps {
		states = append(states, st)
	}
	s.mu.Unlock()

	done := make(chan struct{})
	go func() { s.wg.Wait(); close(done) }()
	select {
	case <-done:
		return true
	case <-time.After(timeout):
	}
	// Deadline expired: stop the sweeps at their next cell boundary and
	// cut the streams loose with a resumable trailer.
	s.stopSweeps.Store(true)
	for _, st := range states {
		st.finishResumable("server draining; completed cells are stored — resume with ?from=")
	}
	grace := timeout / 2
	if grace > 2*time.Second {
		grace = 2 * time.Second
	}
	if grace < 50*time.Millisecond {
		grace = 50 * time.Millisecond
	}
	select {
	case <-done:
	case <-time.After(grace):
	}
	return false
}

// clientID identifies a request's client for quota accounting.
func clientID(r *http.Request) string {
	if id := r.Header.Get("X-Client-ID"); id != "" {
		return id
	}
	return r.RemoteAddr
}

// admit performs the shared admission checks (drain state, client
// quota), returning the client key and false when the request was
// already answered.
func (s *Server) admit(w http.ResponseWriter, r *http.Request) (string, bool) {
	mReqs.Inc()
	client := clientID(r)
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.draining {
		w.Header().Set("Retry-After", "10")
		http.Error(w, "server draining", http.StatusServiceUnavailable)
		return "", false
	}
	if q := s.cfg.ClientQuota; q > 0 && s.clients[client] >= q {
		mShedQuota.Inc()
		w.Header().Set("Retry-After", "1")
		http.Error(w, fmt.Sprintf("client %q has %d requests open (quota %d)", client, s.clients[client], q),
			http.StatusTooManyRequests)
		return "", false
	}
	s.clients[client]++
	mOpenReqs.Add(1)
	return client, true
}

// release undoes admit's accounting.
func (s *Server) release(client string) {
	s.mu.Lock()
	s.clients[client]--
	if s.clients[client] <= 0 {
		delete(s.clients, client)
	}
	s.mu.Unlock()
	mOpenReqs.Add(-1)
}

// resumeToken parses the cell-granularity resume token: ?from=N query
// parameter, else a Last-Cell: N header. N is the number of record
// lines the client already holds (equivalently: the next record index
// it wants) — exactly the "next_from" a journal-backed trailer
// carries.
func resumeToken(r *http.Request) (from int, ok bool, err error) {
	v := r.URL.Query().Get("from")
	if v == "" {
		v = r.Header.Get("Last-Cell")
	}
	if v == "" {
		return 0, false, nil
	}
	n, err := strconv.Atoi(v)
	if err != nil || n < 0 {
		return 0, false, fmt.Errorf("bad resume token %q (want a non-negative record index)", v)
	}
	return n, true, nil
}

// handleSweep executes (or attaches to, or follows) a sweep and
// streams its cell records as NDJSON.
func (s *Server) handleSweep(w http.ResponseWriter, r *http.Request) {
	t0 := time.Now()
	defer func() { mReqSeconds.Observe(time.Since(t0).Seconds()) }()

	client, ok := s.admit(w, r)
	if !ok {
		return
	}
	defer s.release(client)

	body, err := io.ReadAll(io.LimitReader(r.Body, 1<<20))
	if err != nil {
		http.Error(w, "reading request body: "+err.Error(), http.StatusBadRequest)
		return
	}
	var req SweepRequest
	if len(body) > 0 {
		if err := json.Unmarshal(body, &req); err != nil {
			http.Error(w, "bad request JSON: "+err.Error(), http.StatusBadRequest)
			return
		}
	}
	cfg, err := req.Config()
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	fp := cfg.Fingerprint()
	from, hasFrom, err := resumeToken(r)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}

	if hasFrom {
		// Journal-backed stream: exact resume tokens, served whether
		// this replica executes the sweep, follows another replica's
		// journal, or replays a finished one. Make sure somebody is
		// executing it if it is incomplete.
		_, _, err := s.startOrAttach(fp, cfg, body)
		if err != nil && !errors.Is(err, store.ErrLeaseHeld) && !s.store.Has(fp) {
			mShedBusy.Inc()
			w.Header().Set("Retry-After", "5")
			http.Error(w, err.Error(), http.StatusTooManyRequests)
			return
		}
		w.Header().Set("Content-Type", "application/x-ndjson")
		w.Header().Set("X-Sweep-Fingerprint", fp)
		w.WriteHeader(http.StatusOK)
		s.streamJournal(r.Context(), w, fp, cfg, from)
		return
	}

	st, attached, err := s.startOrAttach(fp, cfg, body)
	if err != nil {
		var held *store.HeldError
		if errors.As(err, &held) {
			// Another replica is executing this sweep: follow its
			// journal read-only, streaming cells as they land.
			mFollowed.Inc()
			w.Header().Set("Content-Type", "application/x-ndjson")
			w.Header().Set("X-Sweep-Fingerprint", fp)
			w.Header().Set("X-Sweep-Leaseholder", held.Info.Owner)
			w.WriteHeader(http.StatusOK)
			s.streamJournal(r.Context(), w, fp, cfg, 0)
			return
		}
		mShedBusy.Inc()
		w.Header().Set("Retry-After", "5")
		http.Error(w, err.Error(), http.StatusTooManyRequests)
		return
	}
	if attached {
		mAttached.Inc()
	}

	w.Header().Set("Content-Type", "application/x-ndjson")
	w.Header().Set("X-Sweep-Fingerprint", fp)
	w.WriteHeader(http.StatusOK)
	st.stream(r.Context(), w)
}

// startOrAttach returns the in-flight sweep state for fp, launching
// the execution when this request is the first to ask for it. The
// launch claims the journal's on-disk lease; a *store.HeldError means
// another replica holds it (callers fall back to following its
// journal), any other error is executor backpressure. body, when
// non-nil, is saved as the request sidecar recovery resumes from.
func (s *Server) startOrAttach(fp string, cfg workload.Config, body []byte) (*sweepState, bool, error) {
	s.mu.Lock()
	if st, ok := s.sweeps[fp]; ok {
		s.mu.Unlock()
		return st, true, nil
	}
	if s.active >= s.cfg.MaxActiveSweeps {
		s.mu.Unlock()
		return nil, false, fmt.Errorf("%d sweeps executing (limit %d); retry shortly",
			s.active, s.cfg.MaxActiveSweeps)
	}
	// Reserve the slot and publish the state before the lease I/O, so
	// concurrent identical requests attach instead of racing the claim.
	st := newSweepState(fp, cfg.CellCount())
	s.sweeps[fp] = st
	s.active++
	s.mu.Unlock()
	mActive.Add(1)

	lease, err := store.AcquireLease(s.fsys, s.store.LeasePath(fp), s.cfg.ReplicaID, s.cfg.LeaseTTL, nil)
	if err != nil {
		s.mu.Lock()
		delete(s.sweeps, fp)
		s.active--
		s.mu.Unlock()
		mActive.Add(-1)
		// Anyone who attached to the placeholder in the window gets a
		// resumable trailer pointing at the follower path.
		st.finishResumable("sweep not started here: " + err.Error() + " — re-POST to follow the holder's journal")
		return nil, false, err
	}
	if len(body) > 0 {
		if err := s.store.SaveRequest(fp, body); err != nil {
			// The sweep can proceed; only crash recovery of this
			// fingerprint is degraded. Worth a line on stderr.
			fmt.Fprintf(os.Stderr, "serve: saving request sidecar for %s: %v\n", fp, err)
		}
	}
	mStarted.Inc()
	s.wg.Add(1)
	go s.runSweep(st, cfg, lease)
	return st, false, nil
}

// runSweep executes one sweep, feeding completed cells into the state
// (and, via the checkpoint journal, the persistent store) as they
// finish.
func (s *Server) runSweep(st *sweepState, cfg workload.Config, lease *store.Lease) {
	defer s.wg.Done()
	defer func() {
		// The release itself can panic under the fault filesystem's
		// simulated power loss (in production the process would be dead
		// here anyway); contain it so the in-memory bookkeeping below
		// still runs.
		func() {
			defer func() {
				if p := recover(); p != nil {
					fmt.Fprintf(os.Stderr, "serve: releasing lease for %s: %v\n", st.fp, p)
				}
			}()
			if err := lease.Release(); err != nil {
				fmt.Fprintf(os.Stderr, "serve: releasing lease for %s: %v\n", st.fp, err)
			}
		}()
		s.mu.Lock()
		delete(s.sweeps, st.fp)
		s.active--
		s.mu.Unlock()
		mActive.Add(-1)
	}()

	cfg.CheckpointPath = s.store.Path(st.fp)
	cfg.FS = s.cfg.FS
	cfg.Lease = lease
	cfg.LeaseOwner = s.cfg.ReplicaID
	cfg.Stop = func() bool { return s.stopSweeps.Load() }
	cfg.Cache = s.cache
	cfg.Parallelism = s.cfg.Parallelism
	cfg.OnRun = func(key string, r *workload.Run) {
		line, err := workload.MarshalRunRecord(key, r)
		if err != nil {
			return
		}
		mCellsSent.Inc()
		st.append(line, r.Predicted)
	}

	var mx *workload.Matrix
	err := func() (err error) {
		defer func() {
			if p := recover(); p != nil {
				err = fmt.Errorf("sweep failed: %v", p)
			}
		}()
		mx = workload.Execute(cfg)
		return nil
	}()
	switch {
	case err != nil:
		mFailed.Inc()
		st.finish(err.Error())
	case len(mx.InterruptedRuns()) > 0:
		// Drain deadline or lost lease: the sweep stopped at a cell
		// boundary with everything completed safely journaled.
		mInterrupted.Inc()
		reason := "drain deadline"
		if lease.Lost() {
			reason = "journal lease lost to another replica"
		}
		st.finishResumable(fmt.Sprintf("sweep interrupted (%s): %d of %d cells not executed; completed cells are stored — resume with ?from=",
			reason, len(mx.InterruptedRuns()), st.cells))
	default:
		mCompleted.Inc()
		st.finish("")
	}
}

// streamJournal streams record lines straight out of the store journal
// for fp, starting at record index from — the journal-backed stream
// whose indexes are exact resume tokens. It serves three cases with
// one loop: tailing a journal this replica is executing, following one
// another replica holds the lease on, and replaying a finished one.
// While the sweep is incomplete and nobody holds the lease, it
// triggers a takeover so the stream makes progress past a dead
// replica.
func (s *Server) streamJournal(ctx context.Context, w io.Writer, fp string, cfg workload.Config, from int) {
	flush := func() {}
	if f, ok := w.(http.Flusher); ok {
		flush = f.Flush
	}
	path := s.store.Path(fp)
	cells := cfg.CellCount()
	next, streamed := from, 0
	complete, resumable := false, true
	var errMsg string

loop:
	for {
		snap, err := workload.SnapshotJournal(s.fsys, path)
		if err != nil {
			errMsg = "journal read: " + err.Error()
			break
		}
		if snap.Fingerprint != "" && snap.Fingerprint != fp {
			errMsg = "stored journal belongs to a different configuration"
			resumable = false
			break
		}
		if next > len(snap.Records) {
			errMsg = fmt.Sprintf("resume token %d beyond the journal (%d records; it may have been salvaged) — restart from 0", next, len(snap.Records))
			break
		}
		wrote := false
		for ; next < len(snap.Records); next++ {
			if _, err := fmt.Fprintf(w, "%s\n", snap.Records[next]); err != nil {
				return // client gone; nothing more to say
			}
			streamed++
			mCellsSent.Inc()
			wrote = true
		}
		if wrote {
			flush()
		}
		if snap.Unique >= cells && cells > 0 {
			complete, resumable = true, false
			break
		}
		select {
		case <-ctx.Done():
			return
		default:
		}
		s.mu.Lock()
		_, inflight := s.sweeps[fp]
		draining := s.draining
		s.mu.Unlock()
		if draining && !inflight {
			errMsg = "server draining; resume against another replica"
			break
		}
		if !inflight {
			// Incomplete, and this replica is not executing it: take
			// over if the lease is free (the holder died), otherwise
			// keep following the holder's appends.
			if _, live := store.ReadLeaseInfo(s.fsys, s.store.LeasePath(fp), time.Now()); !live {
				if _, attached, err := s.startOrAttach(fp, cfg, nil); err == nil && !attached {
					mTakeovers.Inc()
				}
			}
		}
		t := time.NewTimer(s.cfg.FollowPoll)
		select {
		case <-ctx.Done():
			t.Stop()
			return
		case <-t.C:
		}
		continue loop
	}
	tr := trailer{
		Done:        true,
		Fingerprint: fp,
		Cells:       cells,
		Streamed:    streamed,
		Complete:    complete,
		Error:       errMsg,
		Resumable:   resumable && !complete,
		NextFrom:    next,
	}
	line, _ := json.Marshal(tr)
	if _, err := fmt.Fprintf(w, "%s\n", line); err != nil {
		return
	}
	flush()
}

// handleResult replays a completed sweep's journal from the store,
// byte-identical across replays (and to the record lines streamed by
// the POST that produced it). ?from=N skips the first N records;
// X-Next-From carries the stored record count either way.
func (s *Server) handleResult(w http.ResponseWriter, r *http.Request) {
	t0 := time.Now()
	defer func() { mReqSeconds.Observe(time.Since(t0).Seconds()) }()
	client, ok := s.admit(w, r)
	if !ok {
		return
	}
	defer s.release(client)

	fp := r.PathValue("fp")
	if !validFingerprint(fp) {
		http.Error(w, "malformed fingerprint", http.StatusBadRequest)
		return
	}
	from, hasFrom, err := resumeToken(r)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	s.mu.Lock()
	_, inflight := s.sweeps[fp]
	s.mu.Unlock()
	if inflight {
		// The journal is being appended to; a partial replay would not
		// be byte-stable. Clients stream the POST instead.
		w.Header().Set("Retry-After", "5")
		http.Error(w, "sweep still executing; POST /v1/sweep to stream it", http.StatusConflict)
		return
	}
	if !s.store.Has(fp) {
		http.Error(w, "no stored result for fingerprint "+fp, http.StatusNotFound)
		return
	}
	if hasFrom {
		snap, err := workload.SnapshotJournal(s.fsys, s.store.Path(fp))
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		if from > len(snap.Records) {
			http.Error(w, fmt.Sprintf("resume token %d beyond the %d stored records", from, len(snap.Records)),
				http.StatusBadRequest)
			return
		}
		w.Header().Set("Content-Type", "application/x-ndjson")
		w.Header().Set("X-Next-From", strconv.Itoa(len(snap.Records)))
		for _, line := range snap.Records[from:] {
			if _, err := fmt.Fprintf(w, "%s\n", line); err != nil {
				return
			}
		}
		mReplayed.Inc()
		return
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	n, err := s.store.Replay(fp, w)
	if err != nil && n == 0 {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	mReplayed.Inc()
}

// statusJSON is the GET /v1/status document.
type statusJSON struct {
	UptimeSeconds    float64 `json:"uptime_seconds"`
	ReplicaID        string  `json:"replica_id"`
	Draining         bool    `json:"draining"`
	ActiveSweeps     int     `json:"active_sweeps"`
	OpenRequests     int64   `json:"open_requests"`
	StoredResults    int     `json:"stored_results"`
	SweepsStarted    int64   `json:"sweeps_started"`
	SweepsAttached   int64   `json:"sweeps_attached"`
	SweepsCompleted  int64   `json:"sweeps_completed"`
	SweepsFailed     int64   `json:"sweeps_failed"`
	SweepsFollowed   int64   `json:"sweeps_followed"`
	SweepsRecovered  int64   `json:"sweeps_recovered"`
	SweepsTakenOver  int64   `json:"sweeps_taken_over"`
	JournalsSalvaged int64   `json:"journals_salvaged"`
	CellsStreamed    int64   `json:"cells_streamed"`
	CellsExecuted    int64   `json:"cells_executed"`
	CacheDeduped     int64   `json:"cells_deduplicated"`
	ShedQuota        int64   `json:"shed_quota"`
	ShedBusy         int64   `json:"shed_backpressure"`
}

func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	active, draining := s.active, s.draining
	s.mu.Unlock()
	doc := statusJSON{
		UptimeSeconds:    time.Since(s.start).Seconds(),
		ReplicaID:        s.cfg.ReplicaID,
		Draining:         draining,
		ActiveSweeps:     active,
		OpenRequests:     mOpenReqs.Value(),
		StoredResults:    len(s.store.Fingerprints()),
		SweepsStarted:    mStarted.Value(),
		SweepsAttached:   mAttached.Value(),
		SweepsCompleted:  mCompleted.Value(),
		SweepsFailed:     mFailed.Value(),
		SweepsFollowed:   mFollowed.Value(),
		SweepsRecovered:  mRecovered.Value(),
		SweepsTakenOver:  mTakeovers.Value(),
		JournalsSalvaged: mSalvaged.Value(),
		CellsStreamed:    mCellsSent.Value(),
		CellsExecuted:    obs.GetCounter("workload.cells.executed").Value(),
		CacheDeduped:     obs.GetCounter("workload.cache.singleflight").Value(),
		ShedQuota:        mShedQuota.Value(),
		ShedBusy:         mShedBusy.Value(),
	}
	w.Header().Set("Content-Type", "application/json")
	if err := json.NewEncoder(w).Encode(doc); err != nil {
		return
	}
}

// sweepState is one in-flight (or draining) sweep's fan-out buffer:
// record lines accumulate in completion order and every subscriber
// streams them at its own pace.
type sweepState struct {
	fp    string
	cells int

	mu        sync.Mutex
	cond      *sync.Cond
	lines     []recLine
	done      bool
	errMsg    string
	resumable bool
}

type recLine struct {
	data      []byte
	predicted bool
}

func newSweepState(fp string, cells int) *sweepState {
	st := &sweepState{fp: fp, cells: cells}
	st.cond = sync.NewCond(&st.mu)
	return st
}

// append publishes one completed cell's record line to every
// subscriber.
func (st *sweepState) append(line []byte, predicted bool) {
	st.mu.Lock()
	if !st.done {
		st.lines = append(st.lines, recLine{data: line, predicted: predicted})
	}
	st.mu.Unlock()
	st.cond.Broadcast()
}

// finish marks the sweep complete (errMsg "" on success). Idempotent;
// the first call wins.
func (st *sweepState) finish(errMsg string) {
	st.mu.Lock()
	if !st.done {
		st.done = true
		st.errMsg = errMsg
	}
	st.mu.Unlock()
	st.cond.Broadcast()
}

// finishResumable is finish for interrupted-but-journaled sweeps: the
// trailer additionally carries "resumable":true, telling clients a
// re-POST (with ?from= for exact tokens) will pick up where the sweep
// stopped.
func (st *sweepState) finishResumable(errMsg string) {
	st.mu.Lock()
	if !st.done {
		st.done = true
		st.errMsg = errMsg
		st.resumable = true
	}
	st.mu.Unlock()
	st.cond.Broadcast()
}

// trailer is the final NDJSON object of a sweep stream. Its "done"
// field distinguishes it from cell records (which carry "key").
// NextFrom is an exact resume token on journal-backed streams (?from=
// requests); on fan-out streams it is -1, because their completion-
// order lines do not map to journal indexes — resume those with
// ?from=0 (the journal replay dedups nothing, but restored cells cost
// no re-execution) or with the count of distinct records held.
type trailer struct {
	Done        bool   `json:"done"`
	Fingerprint string `json:"fingerprint"`
	Cells       int    `json:"cells"`
	Streamed    int    `json:"streamed"`
	Complete    bool   `json:"complete"`
	Error       string `json:"error,omitempty"`
	Resumable   bool   `json:"resumable,omitempty"`
	NextFrom    int    `json:"next_from"`
}

// stream writes the sweep to w as NDJSON: the cells already known at
// attach time first (Predicted ones leading — the cheap, model-
// answered majority of a guided sweep), then live cells in completion
// order, then the trailer. Returns when the sweep finishes, the
// client disconnects, or ctx is canceled.
func (st *sweepState) stream(ctx interface{ Done() <-chan struct{} }, w io.Writer) {
	flush := func() {}
	if f, ok := w.(http.Flusher); ok {
		flush = f.Flush
	}
	// Wake the cond waiter when the client goes away.
	stop := make(chan struct{})
	defer close(stop)
	go func() {
		select {
		case <-ctx.Done():
			st.cond.Broadcast()
		case <-stop:
		}
	}()
	canceled := func() bool {
		select {
		case <-ctx.Done():
			return true
		default:
			return false
		}
	}

	st.mu.Lock()
	snapshot := append([]recLine(nil), st.lines...)
	st.mu.Unlock()
	sort.SliceStable(snapshot, func(i, j int) bool {
		return snapshot[i].predicted && !snapshot[j].predicted
	})
	streamed := 0
	for _, l := range snapshot {
		if _, err := fmt.Fprintf(w, "%s\n", l.data); err != nil {
			return
		}
		streamed++
	}
	flush()

	next := len(snapshot)
	for {
		st.mu.Lock()
		for next >= len(st.lines) && !st.done && !canceled() {
			st.cond.Wait()
		}
		batch := append([]recLine(nil), st.lines[next:]...)
		done, errMsg, resumable := st.done, st.errMsg, st.resumable
		st.mu.Unlock()

		for _, l := range batch {
			if _, err := fmt.Fprintf(w, "%s\n", l.data); err != nil {
				return
			}
			streamed++
			next++
		}
		if len(batch) > 0 {
			flush()
		}
		if canceled() {
			return
		}
		if done {
			tr := trailer{
				Done:        true,
				Fingerprint: st.fp,
				Cells:       st.cells,
				Streamed:    streamed,
				Complete:    errMsg == "" && streamed >= st.cells,
				Error:       errMsg,
				Resumable:   resumable,
				NextFrom:    -1,
			}
			line, _ := json.Marshal(tr)
			if _, err := fmt.Fprintf(w, "%s\n", line); err != nil {
				return
			}
			flush()
			return
		}
	}
}
