package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"log"
	"net/http"
	"net/http/httptest"
	"os"
	"syscall"
	"testing"
	"time"

	"capscale/internal/faults"
	"capscale/internal/store"
)

// silentServer is httptest.NewServer with net/http's panic logging
// discarded — the crash tests panic handlers on purpose, hundreds of
// times.
func silentServer(h http.Handler) *httptest.Server {
	ts := httptest.NewUnstartedServer(h)
	ts.Config.ErrorLog = log.New(io.Discard, "", 0)
	ts.Start()
	return ts
}

// getResult GETs /v1/result/{fp}, returning status and body.
func getResult(t *testing.T, ts *httptest.Server, fp, query string) (int, []byte) {
	t.Helper()
	resp, err := http.Get(ts.URL + "/v1/result/" + fp + query)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, raw
}

// waitResult polls GET /v1/result/{fp} until it returns 200 (409 while
// the sweep is in flight) or the deadline passes.
func waitResult(t *testing.T, ts *httptest.Server, fp string, deadline time.Duration) []byte {
	t.Helper()
	end := time.Now().Add(deadline)
	for {
		status, body := getResult(t, ts, fp, "")
		if status == http.StatusOK {
			return body
		}
		if time.Now().After(end) {
			t.Fatalf("result for %s not available: last status %d: %s", fp, status, body)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestCrashEveryPointRecoversByteIdentical is the crash oracle for the
// whole service stack: a reference run counts the mutating filesystem
// operations a sweep performs (lease claim, request sidecar, journal
// creation, per-cell appends, release); then, for every k up to that
// count, a fresh fault filesystem replays the sweep with simulated
// power loss at op k — torn tails enabled — and a recovering server
// (salvage + lease takeover + checkpoint resume) must converge to a
// GET /v1/result replay byte-identical to the uninterrupted run.
// Parallelism 1 keeps the mutating-op sequence deterministic.
func TestCrashEveryPointRecoversByteIdentical(t *testing.T) {
	const dir = "crash-store"
	prof := faults.FSProfile{CrashTornFrac: 0.4}
	req := smokeRequest()
	cfg, err := req.Config()
	if err != nil {
		t.Fatal(err)
	}
	fp := cfg.Fingerprint()
	body, _ := json.Marshal(req)

	post := func(ts *httptest.Server) {
		resp, err := http.Post(ts.URL+"/v1/sweep", "application/json", bytes.NewReader(body))
		if err != nil {
			return // connection killed by a crash mid-handler: expected
		}
		_, _ = io.Copy(io.Discard, resp.Body)
		_ = resp.Body.Close()
	}

	// Reference: the uninterrupted run, and the op count to crash within.
	ref := faults.NewFaultFS(prof, 1)
	refSrv, err := New(Config{StoreDir: dir, FS: ref, Parallelism: 1, ReplicaID: "ref"})
	if err != nil {
		t.Fatal(err)
	}
	refTS := silentServer(refSrv.Handler())
	// CrashAt is relative to the op counter at arming time (after New's
	// MkdirAll), so count only the ops the POST itself performs.
	base := ref.Ops()
	post(refTS)
	refSrv.wg.Wait()
	want := waitResult(t, refTS, fp, 5*time.Second)
	refTS.Close()
	total := ref.Ops() - base
	if len(want) == 0 || total < 10 {
		t.Fatalf("implausible reference: %d bytes, %d ops", len(want), total)
	}

	for k := int64(1); k <= total; k++ {
		k := k
		t.Run(fmt.Sprintf("op%03d", k), func(t *testing.T) {
			ffs := faults.NewFaultFS(prof, 1_000+k)
			srv, err := New(Config{StoreDir: dir, FS: ffs, Parallelism: 1, ReplicaID: "victim"})
			if err != nil {
				t.Fatal(err)
			}
			ts := silentServer(srv.Handler())
			ffs.CrashAt(k)
			post(ts)
			srv.wg.Wait()
			ts.Close()
			if ffs.Stats().Crashes != 1 {
				t.Fatalf("crash-point %d did not fire (crashes=%d, total ops this run %d)",
					k, ffs.Stats().Crashes, ffs.Ops())
			}

			// Power back on. The victim's lease file may have survived
			// (it was written durably before the crash); in production
			// the dead PID or the TTL frees it — in-process, the PID is
			// alive, so model expiry by removing it.
			ffs.Reboot()
			_ = ffs.Remove(dir + "/" + fp + storeExt + ".lease")

			rec, err := New(Config{StoreDir: dir, FS: ffs, Parallelism: 1, ReplicaID: "recoverer"})
			if err != nil {
				t.Fatal(err)
			}
			recTS := silentServer(rec.Handler())
			defer recTS.Close()
			rec.Recover(nil)
			// A crash before anything durable hit the disk leaves nothing
			// for Recover to resume; the client's bounded-retry contract
			// covers that — it re-POSTs. Do the same unconditionally:
			// it attaches to a recovered sweep, restores a complete
			// journal, or restarts from scratch, whichever applies.
			post(recTS)
			rec.wg.Wait()

			got := waitResult(t, recTS, fp, 10*time.Second)
			if !bytes.Equal(got, want) {
				t.Fatalf("crash at op %d: recovered replay differs from uninterrupted run:\nwant %d bytes:\n%s\ngot %d bytes:\n%s",
					k, len(want), want, len(got), got)
			}
		})
	}
}

// TestRecoverResumesInterruptedSweep: a journal with a partial prefix,
// a request sidecar, and no live lease is picked up by Recover without
// any client asking, and the finished result replays completely.
func TestRecoverResumesInterruptedSweep(t *testing.T) {
	dir := t.TempDir()
	req := smokeRequest()
	cfg, err := req.Config()
	if err != nil {
		t.Fatal(err)
	}
	fp := cfg.Fingerprint()

	// Phase 1: run the sweep completely, then truncate the journal to a
	// strict prefix — a faithful image of a crash after the first cell.
	srv1, ts1 := testServer(t, Config{StoreDir: dir, Parallelism: 1})
	if _, tr, status := postSweep(t, ts1, req, "c1"); status != http.StatusOK || !tr.Complete {
		t.Fatalf("seed sweep: status %d trailer %+v", status, tr)
	}
	srv1.wg.Wait()
	full := waitResult(t, ts1, fp, 5*time.Second)

	path := srv1.store.Path(fp)
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	lines := bytes.SplitAfter(raw, []byte("\n"))
	if len(lines) < 3 {
		t.Fatalf("journal too small to truncate: %d lines", len(lines))
	}
	// Keep header + first record only.
	if err := os.WriteFile(path, append(append([]byte(nil), lines[0]...), lines[1]...), 0o644); err != nil {
		t.Fatal(err)
	}

	// Phase 2: a fresh replica recovers the store on startup.
	exec := executedDelta()
	srv2, err := New(Config{StoreDir: dir, Parallelism: 1, ReplicaID: "recoverer"})
	if err != nil {
		t.Fatal(err)
	}
	ts2 := httptest.NewServer(srv2.Handler())
	defer ts2.Close()
	resumed, _ := srv2.Recover(nil)
	if resumed != 1 {
		t.Fatalf("Recover resumed %d sweeps, want 1", resumed)
	}
	srv2.wg.Wait()
	got := waitResult(t, ts2, fp, 5*time.Second)
	if !bytes.Equal(got, full) {
		t.Fatalf("recovered result differs:\nwant %s\ngot  %s", full, got)
	}
	if d := exec(); d >= int64(cfg.CellCount()) {
		t.Fatalf("recovery re-executed everything (%d cells executed, sweep has %d); the journaled cell should have been restored", d, cfg.CellCount())
	}
}

// TestFollowerStreamsLeaseholderSweep: a replica asked for a sweep
// whose lease another replica holds cannot claim it, so it follows the
// holder's journal and still delivers the complete record stream. The
// test itself plays the leaseholder — it claims the lease as
// "replica-a" and journals cells one at a time — so the follower path
// is forced deterministically instead of racing a real sweep that
// might finish (and release the lease) before the second POST lands.
func TestFollowerStreamsLeaseholderSweep(t *testing.T) {
	req := SweepRequest{
		Algorithms: []string{"OpenBLAS", "Strassen"},
		Sizes:      []int{64, 96},
		Threads:    []int{1, 2},
	}
	cfg, err := req.Config()
	if err != nil {
		t.Fatal(err)
	}
	cells := cfg.CellCount()
	fp := cfg.Fingerprint()

	// Harvest genuine journal bytes from a scratch run so the journal
	// the fake leaseholder feeds is indistinguishable from one written
	// by a live replica.
	scratch, tsS := testServer(t, Config{Parallelism: 1})
	if _, tr, status := postSweep(t, tsS, req, "seed"); status != http.StatusOK || !tr.Complete {
		t.Fatalf("scratch sweep: status %d trailer %+v", status, tr)
	}
	scratch.wg.Wait()
	raw, err := os.ReadFile(scratch.store.Path(fp))
	if err != nil {
		t.Fatal(err)
	}
	lines := bytes.Split(bytes.TrimSuffix(raw, []byte("\n")), []byte("\n"))
	if len(lines) != cells+1 {
		t.Fatalf("scratch journal has %d lines, want header + %d records", len(lines), cells)
	}
	header, recs := lines[0], lines[1:]

	srvB, tsB := testServer(t, Config{Parallelism: 1, ReplicaID: "replica-b",
		FollowPoll: time.Millisecond})
	jpath := srvB.store.Path(fp)
	lease, err := store.AcquireLease(nil, store.LeasePath(jpath), "replica-a", time.Hour, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = lease.Release() }()
	j, err := store.CreateJournal(nil, jpath, header, recs[:1], lease, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = j.Close() }()
	// Feed the remaining cells while the follower is streaming; the
	// lease stays held throughout, so B can never take the sweep over.
	go func() {
		for _, rec := range recs[1:] {
			time.Sleep(2 * time.Millisecond)
			if err := j.Append(rec); err != nil {
				return
			}
		}
	}()

	records, tr, status := postSweep(t, tsB, req, "client-b")
	if status != http.StatusOK {
		t.Fatalf("follower POST status %d", status)
	}
	if !tr.Complete || tr.Error != "" {
		t.Fatalf("follower trailer: %+v", tr)
	}
	if len(records) != cells {
		t.Fatalf("follower streamed %d records, want %d", len(records), cells)
	}
	if tr.NextFrom != cells {
		t.Fatalf("follower trailer next_from = %d, want %d (journal-backed streams carry exact tokens)", tr.NextFrom, cells)
	}
	for i, rec := range records {
		if !bytes.Equal(rec, recs[i]) {
			t.Fatalf("follower record %d diverges from the leaseholder's journal:\n got %s\nwant %s", i, rec, recs[i])
		}
	}
}

// TestResumeTokenExactContinuation: ?from=N on a finished sweep
// returns exactly the records after N — re-POSTing with the trailer's
// next_from replays nothing twice and loses nothing.
func TestResumeTokenExactContinuation(t *testing.T) {
	srv, ts := testServer(t, Config{Parallelism: 1})
	req := smokeRequest()
	cfg, err := req.Config()
	if err != nil {
		t.Fatal(err)
	}
	fp := cfg.Fingerprint()
	cells := cfg.CellCount()

	if _, tr, status := postSweep(t, ts, req, "c1"); status != http.StatusOK || !tr.Complete {
		t.Fatalf("seed sweep: status %d trailer %+v", status, tr)
	}
	srv.wg.Wait()
	full := waitResult(t, ts, fp, 5*time.Second)
	fullLines := bytes.SplitAfter(bytes.TrimSuffix(full, []byte("\n")), []byte("\n"))
	if len(fullLines) != cells {
		t.Fatalf("replay has %d lines, want %d", len(fullLines), cells)
	}

	// GET with ?from=1 returns the tail plus the exact next token.
	status, tail := getResult(t, ts, fp, "?from=1")
	if status != http.StatusOK {
		t.Fatalf("GET ?from=1 status %d: %s", status, tail)
	}
	wantTail := bytes.Join(fullLines[1:], nil)
	if !bytes.Equal(bytes.TrimSuffix(tail, []byte("\n")), bytes.TrimSuffix(wantTail, []byte("\n"))) {
		t.Fatalf("?from=1 tail mismatch:\nwant %s\ngot  %s", wantTail, tail)
	}

	// POST with ?from=1 streams the same tail and a complete trailer
	// carrying next_from == total records.
	body, _ := json.Marshal(req)
	resp, err := http.Post(ts.URL+"/v1/sweep?from=1", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	raw, err := io.ReadAll(resp.Body)
	_ = resp.Body.Close()
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("POST ?from=1: status %d err %v", resp.StatusCode, err)
	}
	lines := bytes.Split(bytes.TrimSuffix(raw, []byte("\n")), []byte("\n"))
	var tr trailer
	if err := json.Unmarshal(lines[len(lines)-1], &tr); err != nil {
		t.Fatal(err)
	}
	if !tr.Complete || tr.NextFrom != cells || len(lines)-1 != cells-1 {
		t.Fatalf("resumed stream: %d records, trailer %+v (want %d records, next_from %d)",
			len(lines)-1, tr, cells-1, cells)
	}
	for i, line := range lines[:len(lines)-1] {
		if !bytes.Equal(line, bytes.TrimSuffix(fullLines[i+1], []byte("\n"))) {
			t.Fatalf("resumed record %d differs:\nwant %s\ngot  %s", i, fullLines[i+1], line)
		}
	}

	// Beyond-the-end and malformed tokens are client errors. (The
	// resumed POST restarted an executor to guarantee progress; let it
	// finish restoring first.)
	srv.wg.Wait()
	waitResult(t, ts, fp, 5*time.Second)
	if status, body := getResult(t, ts, fp, "?from=99"); status != http.StatusBadRequest {
		t.Fatalf("?from=99 status %d: %s", status, body)
	}
	if status, body := getResult(t, ts, fp, "?from=-1"); status != http.StatusBadRequest {
		t.Fatalf("?from=-1 status %d: %s", status, body)
	}
}

// TestTakeoverOfDeadReplica: a store holds a partial journal, a
// sidecar, and a lease owned by a verifiably dead process. A follower
// asked for the sweep detects the dead holder, steals the lease, and
// completes the sweep — each remaining cell executed exactly once.
func TestTakeoverOfDeadReplica(t *testing.T) {
	dir := t.TempDir()
	req := smokeRequest()
	cfg, err := req.Config()
	if err != nil {
		t.Fatal(err)
	}
	fp := cfg.Fingerprint()

	// Seed a complete run, truncate to a prefix, and plant a dead
	// holder's lease with a far-future expiry — only the PID liveness
	// probe can free it.
	srv1, ts1 := testServer(t, Config{StoreDir: dir, Parallelism: 1})
	if _, tr, status := postSweep(t, ts1, req, "c1"); status != http.StatusOK || !tr.Complete {
		t.Fatalf("seed sweep: status %d trailer %+v", status, tr)
	}
	srv1.wg.Wait()
	full := waitResult(t, ts1, fp, 5*time.Second)
	path := srv1.store.Path(fp)
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	lines := bytes.SplitAfter(raw, []byte("\n"))
	if err := os.WriteFile(path, append(append([]byte(nil), lines[0]...), lines[1]...), 0o644); err != nil {
		t.Fatal(err)
	}
	planted := plantDeadLease(t, srv1.store.LeasePath(fp))

	srv2, ts2 := testServer(t, Config{StoreDir: dir, Parallelism: 1, ReplicaID: "survivor",
		FollowPoll: 5 * time.Millisecond})
	body, _ := json.Marshal(req)
	resp, err := http.Post(ts2.URL+"/v1/sweep?from=0", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	streamed, err := io.ReadAll(resp.Body)
	_ = resp.Body.Close()
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("takeover POST: status %d err %v", resp.StatusCode, err)
	}
	sLines := bytes.Split(bytes.TrimSuffix(streamed, []byte("\n")), []byte("\n"))
	var tr trailer
	if err := json.Unmarshal(sLines[len(sLines)-1], &tr); err != nil {
		t.Fatal(err)
	}
	if !tr.Complete {
		t.Fatalf("takeover stream incomplete: %+v", tr)
	}
	srv2.wg.Wait()
	got := waitResult(t, ts2, fp, 5*time.Second)
	if !bytes.Equal(got, full) {
		t.Fatalf("post-takeover replay differs:\nwant %s\ngot  %s", full, got)
	}
	// The survivor's claim must fence the dead epoch behind it.
	if info, _ := store.ReadLeaseInfo(nil, srv2.store.LeasePath(fp), time.Now()); info.Owner != "" && info.Epoch <= planted.Epoch {
		t.Fatalf("lease epoch did not advance past the dead holder's: %+v", info)
	}
}

// plantDeadLease writes a lease owned by a dead PID on this host and
// returns it.
func plantDeadLease(t *testing.T, path string) store.LeaseInfo {
	t.Helper()
	host, err := os.Hostname()
	if err != nil {
		t.Fatal(err)
	}
	// Spawn a process and wait for it: its PID is verifiably dead.
	pid := deadPID(t)
	info := store.LeaseInfo{
		Owner:   "dead-replica",
		Host:    host,
		PID:     pid,
		Epoch:   3,
		Expires: time.Now().Add(time.Hour).UnixNano(),
	}
	raw, err := json.Marshal(info)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, append(raw, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, live := store.ReadLeaseInfo(nil, path, time.Now()); live {
		t.Skip("planted dead PID reads as live on this platform")
	}
	return info
}

// deadPID returns a PID with no process behind it.
func deadPID(t *testing.T) int {
	t.Helper()
	for pid := 1 << 21; pid > 1<<20; pid-- {
		if syscall.Kill(pid, 0) == syscall.ESRCH {
			return pid
		}
	}
	t.Skip("no dead PID found")
	return 0
}
