package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"testing"
	"time"

	"capscale/internal/obs"
	"capscale/internal/workload"
)

// testServer returns a Server over a fresh temp store plus an
// httptest front end.
func testServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	if cfg.StoreDir == "" {
		cfg.StoreDir = t.TempDir()
	}
	srv, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return srv, ts
}

// smokeRequest is a fast 2-cell sweep request.
func smokeRequest() SweepRequest {
	return SweepRequest{
		Algorithms: []string{"OpenBLAS", "Strassen"},
		Sizes:      []int{64},
		Threads:    []int{1},
	}
}

// postSweep POSTs the request and splits the NDJSON response into
// record lines and the trailer.
func postSweep(t *testing.T, ts *httptest.Server, req SweepRequest, client string) (records [][]byte, tr trailer, status int) {
	t.Helper()
	body, _ := json.Marshal(req)
	hr, err := http.NewRequest("POST", ts.URL+"/v1/sweep", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	if client != "" {
		hr.Header.Set("X-Client-ID", client)
	}
	resp, err := http.DefaultClient.Do(hr)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		return nil, trailer{}, resp.StatusCode
	}
	for _, line := range bytes.Split(bytes.TrimSuffix(raw, []byte("\n")), []byte("\n")) {
		var probe struct {
			Done bool   `json:"done"`
			Key  string `json:"key"`
		}
		if err := json.Unmarshal(line, &probe); err != nil {
			t.Fatalf("bad NDJSON line %q: %v", line, err)
		}
		if probe.Done {
			if err := json.Unmarshal(line, &tr); err != nil {
				t.Fatal(err)
			}
			continue
		}
		if probe.Key == "" {
			t.Fatalf("record line without key: %s", line)
		}
		records = append(records, append([]byte(nil), line...))
	}
	return records, tr, resp.StatusCode
}

func executedDelta() func() int64 {
	c := obs.GetCounter("workload.cells.executed")
	start := c.Value()
	return func() int64 { return c.Value() - start }
}

// TestSweepStreamAndReplay: a POSTed sweep streams every cell record
// plus a complete trailer, and GET /v1/result/{fp} replays the same
// records byte-identically (and stably across replays).
func TestSweepStreamAndReplay(t *testing.T) {
	_, ts := testServer(t, Config{})
	req := smokeRequest()
	cfg, err := req.Config()
	if err != nil {
		t.Fatal(err)
	}
	cells := cfg.CellCount()

	records, tr, status := postSweep(t, ts, req, "c1")
	if status != http.StatusOK {
		t.Fatalf("POST status %d", status)
	}
	if len(records) != cells {
		t.Fatalf("streamed %d records, want %d", len(records), cells)
	}
	if !tr.Done || !tr.Complete || tr.Error != "" || tr.Cells != cells {
		t.Fatalf("bad trailer: %+v", tr)
	}
	if tr.Fingerprint != cfg.Fingerprint() {
		t.Fatalf("trailer fingerprint %s, want %s", tr.Fingerprint, cfg.Fingerprint())
	}
	// Every streamed line parses as a journal record.
	for _, line := range records {
		if _, _, err := workload.UnmarshalRunRecord(line); err != nil {
			t.Fatal(err)
		}
	}

	get := func() []byte {
		resp, err := http.Get(ts.URL + "/v1/result/" + tr.Fingerprint)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET status %d", resp.StatusCode)
		}
		raw, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return raw
	}
	replay1, replay2 := get(), get()
	if !bytes.Equal(replay1, replay2) {
		t.Fatal("replays of one stored result differ")
	}
	// The replay's record lines are byte-identical to the streamed
	// ones (order may differ: the stream is completion order).
	sortLines := func(lines [][]byte) []string {
		out := make([]string, len(lines))
		for i, l := range lines {
			out[i] = string(l)
		}
		sort.Strings(out)
		return out
	}
	replayed := bytes.Split(bytes.TrimSuffix(replay1, []byte("\n")), []byte("\n"))
	got, want := sortLines(replayed), sortLines(records)
	if len(got) != len(want) {
		t.Fatalf("replay has %d records, stream had %d", len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("replayed record differs from streamed record:\n%s\n%s", got[i], want[i])
		}
	}
}

// TestConcurrentSweepsSingleFlight is the acceptance test: N clients
// POST the identical sweep concurrently; every client receives every
// cell record, yet each cell executes exactly once across the whole
// server (single-flight at the sweep level, run-cache and checkpoint
// dedup underneath).
func TestConcurrentSweepsSingleFlight(t *testing.T) {
	_, ts := testServer(t, Config{})
	req := smokeRequest()
	cfg, err := req.Config()
	if err != nil {
		t.Fatal(err)
	}
	cells := cfg.CellCount()
	delta := executedDelta()

	const clients = 4
	var wg sync.WaitGroup
	recCounts := make([]int, clients)
	complete := make([]bool, clients)
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			records, tr, status := postSweep(t, ts, req, fmt.Sprintf("client-%d", i))
			if status != http.StatusOK {
				return
			}
			recCounts[i] = len(records)
			complete[i] = tr.Complete
		}(i)
	}
	wg.Wait()

	for i := 0; i < clients; i++ {
		if recCounts[i] != cells || !complete[i] {
			t.Fatalf("client %d: %d records (want %d), complete=%v", i, recCounts[i], cells, complete[i])
		}
	}
	if d := delta(); d != int64(cells) {
		t.Fatalf("%d concurrent identical sweeps executed %d cells, want %d (each cell exactly once)", clients, d, cells)
	}

	// A later identical POST resumes entirely from the store: zero new
	// executions, full result.
	delta2 := executedDelta()
	records, tr, status := postSweep(t, ts, req, "late")
	if status != http.StatusOK || len(records) != cells || !tr.Complete {
		t.Fatalf("resume POST: status %d, %d records, complete=%v", status, len(records), tr.Complete)
	}
	if d := delta2(); d != 0 {
		t.Fatalf("resumed sweep re-executed %d cells, want 0", d)
	}
}

// TestAttachStreamsKnownCellsFirst pins the attach path at the
// fan-out layer: a subscriber joining mid-sweep first receives the
// already-known lines with Predicted cells leading, then live lines,
// then the trailer.
func TestAttachStreamsKnownCellsFirst(t *testing.T) {
	st := newSweepState("00000000000000ab", 4)
	st.append([]byte(`{"key":"measured-1"}`), false)
	st.append([]byte(`{"key":"predicted-1"}`), true)
	st.append([]byte(`{"key":"predicted-2"}`), true)

	var buf bytes.Buffer
	done := make(chan struct{})
	go func() {
		st.stream(context.Background(), &buf)
		close(done)
	}()
	// The live phase appends one more cell, then the sweep finishes.
	time.Sleep(10 * time.Millisecond)
	st.append([]byte(`{"key":"measured-2"}`), false)
	st.finish("")
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("stream did not terminate")
	}

	lines := strings.Split(strings.TrimSuffix(buf.String(), "\n"), "\n")
	keys := make([]string, 0, len(lines))
	for _, l := range lines {
		var probe struct {
			Key  string `json:"key"`
			Done bool   `json:"done"`
		}
		if err := json.Unmarshal([]byte(l), &probe); err != nil {
			t.Fatal(err)
		}
		if !probe.Done {
			keys = append(keys, probe.Key)
		}
	}
	want := []string{"predicted-1", "predicted-2", "measured-1", "measured-2"}
	if strings.Join(keys, ",") != strings.Join(want, ",") {
		t.Fatalf("stream order %v, want %v (predicted first, then live)", keys, want)
	}
}

// TestAttachDoesNotExecute: requests arriving while a sweep with the
// same fingerprint is in flight attach to it instead of executing —
// even when the executor slot limit is exhausted.
func TestAttachDoesNotExecute(t *testing.T) {
	srv, ts := testServer(t, Config{MaxActiveSweeps: 1})
	req := smokeRequest()
	cfg, err := req.Config()
	if err != nil {
		t.Fatal(err)
	}
	fp := cfg.Fingerprint()

	// Plant an in-flight sweep so the POST below must attach.
	st := newSweepState(fp, cfg.CellCount())
	srv.mu.Lock()
	srv.sweeps[fp] = st
	srv.active = srv.cfg.MaxActiveSweeps
	srv.mu.Unlock()

	attached0 := obs.GetCounter("serve.sweeps.attached").Value()
	delta := executedDelta()
	type result struct {
		records [][]byte
		tr      trailer
		status  int
	}
	resc := make(chan result, 1)
	go func() {
		records, tr, status := postSweep(t, ts, req, "attacher")
		resc <- result{records, tr, status}
	}()

	// Wait for the subscriber, then feed the planted sweep.
	deadline := time.Now().Add(5 * time.Second)
	for obs.GetCounter("serve.sweeps.attached").Value() == attached0 {
		if time.Now().After(deadline) {
			t.Fatal("POST never attached")
		}
		time.Sleep(time.Millisecond)
	}
	st.append([]byte(`{"key":"planted"}`), false)
	st.finish("")

	res := <-resc
	if res.status != http.StatusOK || len(res.records) != 1 || string(res.records[0]) != `{"key":"planted"}` {
		t.Fatalf("attached stream: status %d, records %q", res.status, res.records)
	}
	if d := delta(); d != 0 {
		t.Fatalf("attach executed %d cells, want 0", d)
	}

	srv.mu.Lock()
	delete(srv.sweeps, fp)
	srv.active = 0
	srv.mu.Unlock()
}

// TestBackpressure: when every executor slot is busy, a
// new-fingerprint POST gets 429 with Retry-After instead of queueing.
func TestBackpressure(t *testing.T) {
	srv, ts := testServer(t, Config{MaxActiveSweeps: 1})
	srv.mu.Lock()
	srv.active = 1 // all slots busy
	srv.mu.Unlock()
	defer func() {
		srv.mu.Lock()
		srv.active = 0
		srv.mu.Unlock()
	}()

	body, _ := json.Marshal(smokeRequest())
	resp, err := http.Post(ts.URL+"/v1/sweep", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("429 without Retry-After")
	}
}

// TestClientQuota: a client at its open-request quota gets 429; other
// clients are unaffected.
func TestClientQuota(t *testing.T) {
	srv, _ := testServer(t, Config{ClientQuota: 2})
	hr := httptest.NewRequest("GET", "/v1/status", nil)
	hr.Header.Set("X-Client-ID", "greedy")

	for i := 0; i < 2; i++ {
		if _, ok := srv.admit(httptest.NewRecorder(), hr); !ok {
			t.Fatalf("request %d rejected under quota", i)
		}
	}
	w := httptest.NewRecorder()
	if _, ok := srv.admit(w, hr); ok {
		t.Fatal("request over quota admitted")
	}
	if w.Code != http.StatusTooManyRequests {
		t.Fatalf("over-quota status %d, want 429", w.Code)
	}
	other := httptest.NewRequest("GET", "/v1/status", nil)
	other.Header.Set("X-Client-ID", "polite")
	if _, ok := srv.admit(httptest.NewRecorder(), other); !ok {
		t.Fatal("unrelated client rejected")
	}
	srv.release("polite")
	srv.release("greedy")
	srv.release("greedy")
	// Quota frees with release.
	if _, ok := srv.admit(httptest.NewRecorder(), hr); !ok {
		t.Fatal("request rejected after quota freed")
	}
	srv.release("greedy")
}

// TestDrainRejectsNewWork: after Drain, requests get 503 and the
// status document reports draining.
func TestDrainRejectsNewWork(t *testing.T) {
	srv, ts := testServer(t, Config{})
	if !srv.Drain(time.Second) {
		t.Fatal("idle server did not drain")
	}
	body, _ := json.Marshal(smokeRequest())
	resp, err := http.Post(ts.URL+"/v1/sweep", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("status %d, want 503", resp.StatusCode)
	}
}

// TestResultEndpointValidation: malformed fingerprints are rejected
// (they are also the path-traversal surface), unknown ones 404.
func TestResultEndpointValidation(t *testing.T) {
	_, ts := testServer(t, Config{})
	for path, want := range map[string]int{
		"/v1/result/not-hex-at-all!":   http.StatusBadRequest,
		"/v1/result/..%2f..%2fetc":     http.StatusBadRequest,
		"/v1/result/0123456789abcdef":  http.StatusNotFound,
		"/v1/result/0123456789ABCDEF":  http.StatusBadRequest, // fingerprints are lower-case
		"/v1/result/0123456789abcdef0": http.StatusBadRequest, // 17 digits
	} {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != want {
			t.Errorf("GET %s: status %d, want %d", path, resp.StatusCode, want)
		}
	}
}

// TestSweepRequestValidation: bad requests are answered 400 with a
// usable message, not executed.
func TestSweepRequestValidation(t *testing.T) {
	_, ts := testServer(t, Config{})
	cases := []struct {
		name string
		body string
		want string
	}{
		{"bad JSON", `{`, "bad request JSON"},
		{"unknown algorithm", `{"algorithms":["FFT"]}`, "unknown algorithm"},
		{"unknown machine", `{"machine":"Cray-1"}`, "unknown machine"},
		{"unknown plan", `{"plan":"psychic"}`, "unknown plan"},
		{"distributed without clusters", `{"algorithms":["SUMMA"]}`, "cluster"},
	}
	// An over-the-cell-limit matrix (3 algorithms × 400 sizes × 4
	// threads) is refused before executing anything.
	big := smokeRequest()
	big.Algorithms = nil
	big.Threads = []int{1, 2, 3, 4}
	big.Sizes = nil
	for n := 64; len(big.Sizes) < 400; n += 16 {
		big.Sizes = append(big.Sizes, n)
	}
	bigBody, _ := json.Marshal(big)
	cases = append(cases, struct {
		name string
		body string
		want string
	}{"oversized matrix", string(bigBody), "split the sweep"})
	for _, tc := range cases {
		resp, err := http.Post(ts.URL+"/v1/sweep", "application/json", strings.NewReader(tc.body))
		if err != nil {
			t.Fatal(err)
		}
		msg, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400", tc.name, resp.StatusCode)
		}
		if !strings.Contains(string(msg), tc.want) {
			t.Errorf("%s: body %q does not mention %q", tc.name, msg, tc.want)
		}
	}
}

// TestStatusAndVars: the status document reflects the counters and
// /debug/vars exposes the obs registry.
func TestStatusAndVars(t *testing.T) {
	_, ts := testServer(t, Config{})
	if _, tr, status := postSweep(t, ts, smokeRequest(), "c1"); status != http.StatusOK || !tr.Complete {
		t.Fatalf("sweep failed: status %d, trailer %+v", status, tr)
	}

	resp, err := http.Get(ts.URL + "/v1/status")
	if err != nil {
		t.Fatal(err)
	}
	var doc statusJSON
	if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if doc.SweepsStarted < 1 || doc.SweepsCompleted < 1 || doc.CellsStreamed < 2 {
		t.Fatalf("status counters did not advance: %+v", doc)
	}
	if doc.StoredResults != 1 {
		t.Fatalf("stored_results = %d, want 1", doc.StoredResults)
	}
	if doc.ActiveSweeps != 0 || doc.Draining {
		t.Fatalf("idle server reports %+v", doc)
	}

	resp, err = http.Get(ts.URL + "/debug/vars")
	if err != nil {
		t.Fatal(err)
	}
	vars, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	for _, key := range []string{"obs.serve.sweeps.started", "obs.workload.cells.executed"} {
		if !strings.Contains(string(vars), key) {
			t.Errorf("/debug/vars misses %s", key)
		}
	}
}

// TestStoreFingerprints: only well-formed journal names are listed.
func TestStoreFingerprints(t *testing.T) {
	dir := t.TempDir()
	st, err := OpenStore(dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{
		"0123456789abcdef" + storeExt, // valid
		"fedcba9876543210" + storeExt, // valid
		"README.md",                   // foreign file
		"short" + storeExt,            // malformed fingerprint
	} {
		if err := os.WriteFile(filepath.Join(dir, name), []byte("x\n"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	got := st.Fingerprints()
	want := []string{"0123456789abcdef", "fedcba9876543210"}
	if strings.Join(got, ",") != strings.Join(want, ",") {
		t.Fatalf("Fingerprints() = %v, want %v", got, want)
	}
}
