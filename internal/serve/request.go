package serve

import (
	"fmt"
	"strings"

	"capscale/internal/cluster"
	"capscale/internal/hw"
	"capscale/internal/workload"
)

// SweepRequest is the POST /v1/sweep body: the JSON-facing subset of
// workload.Config a remote caller may drive. Execution details
// (parallelism, cache, checkpoint path) belong to the server; trace
// recording and fault injection stay CLI-only — traces bloat the
// stream and faults are a chaos-testing concern, not a query.
type SweepRequest struct {
	// Machine names a machine from the built-in zoo (see hw.Zoo);
	// empty selects the paper's platform (Intel E3-1225 v3).
	Machine string `json:"machine,omitempty"`
	// Algorithms are canonical algorithm names (workload.AlgorithmNames);
	// empty selects the paper's three fixtures.
	Algorithms []string `json:"algorithms,omitempty"`
	// Sizes and Threads are the matrix axes; empty selects the smoke
	// matrix's axes (small and fast — callers wanting the paper matrix
	// say so explicitly).
	Sizes   []int `json:"sizes,omitempty"`
	Threads []int `json:"threads,omitempty"`
	// Clusters are cluster-spec strings ("16x1GbE", "49xFDR@16") for
	// the distributed algorithms (cluster.ParseSpec).
	Clusters []string `json:"clusters,omitempty"`
	// Plan is "exhaustive" (default) or "guided".
	Plan string `json:"plan,omitempty"`
	// SeedFraction and Confidence tune the guided planner (zero keeps
	// the planner defaults).
	SeedFraction float64 `json:"seed_fraction,omitempty"`
	Confidence   float64 `json:"confidence,omitempty"`
	// QuiesceSeconds is the idle gap between runs in the concatenated
	// power trace; zero keeps the smoke default (1 s).
	QuiesceSeconds float64 `json:"quiesce_seconds,omitempty"`
	// PollInterval is the measurement sampling period in seconds; zero
	// selects the pipeline default.
	PollInterval float64 `json:"poll_interval,omitempty"`
}

// maxRequestCells bounds one request's matrix so a single POST cannot
// occupy the simulator for hours; callers wanting more split the
// sweep (each part gets its own fingerprint and stored result).
const maxRequestCells = 4096

// lookupMachine resolves a zoo machine by exact name, or the paper
// platform for "".
func lookupMachine(name string) (*hw.Machine, error) {
	if name == "" {
		return hw.HaswellE31225(), nil
	}
	var names []string
	for _, m := range hw.Zoo() {
		if m.Name == name {
			return m, nil
		}
		names = append(names, fmt.Sprintf("%q", m.Name))
	}
	return nil, fmt.Errorf("unknown machine %q (valid: %s)", name, strings.Join(names, ", "))
}

// Config translates the request into a validated workload.Config. The
// zero request yields the smoke matrix on the paper platform.
func (req *SweepRequest) Config() (workload.Config, error) {
	cfg := workload.SmokeConfig()
	m, err := lookupMachine(req.Machine)
	if err != nil {
		return workload.Config{}, err
	}
	cfg.Machine = m
	if len(req.Algorithms) > 0 {
		cfg.Algorithms = cfg.Algorithms[:0]
		for _, name := range req.Algorithms {
			a, err := workload.ParseAlgorithm(strings.TrimSpace(name))
			if err != nil {
				return workload.Config{}, err
			}
			cfg.Algorithms = append(cfg.Algorithms, a)
		}
	}
	if len(req.Sizes) > 0 {
		cfg.Sizes = req.Sizes
	}
	if len(req.Threads) > 0 {
		cfg.Threads = req.Threads
	}
	for _, s := range req.Clusters {
		spec, err := cluster.ParseSpec(strings.TrimSpace(s))
		if err != nil {
			return workload.Config{}, err
		}
		cfg.Clusters = append(cfg.Clusters, spec)
	}
	if req.Plan != "" {
		plan, err := workload.ParsePlan(req.Plan)
		if err != nil {
			return workload.Config{}, err
		}
		cfg.Plan = plan
	}
	cfg.SeedFraction = req.SeedFraction
	cfg.Confidence = req.Confidence
	if req.QuiesceSeconds > 0 {
		cfg.QuiesceSeconds = req.QuiesceSeconds
	}
	if req.PollInterval > 0 {
		cfg.PollInterval = req.PollInterval
	}
	if err := cfg.Validate(); err != nil {
		return workload.Config{}, err
	}
	if n := cfg.CellCount(); n > maxRequestCells {
		return workload.Config{}, fmt.Errorf("matrix has %d cells (limit %d); split the sweep", n, maxRequestCells)
	}
	return cfg, nil
}
