package energy_test

import (
	"fmt"

	"capscale/internal/energy"
)

// The paper's core workflow: measure a run's power planes and runtime,
// compute EP (Eq. 1/3), and classify its scaling against the
// single-unit baseline (Eq. 5, Fig. 1).
func Example() {
	// A 4-thread run measured at 46 W (PKG) + 3 W (DRAM) for 0.25 s.
	planes := []energy.PlaneReading{{Name: "PKG", Watts: 46}, {Name: "DRAM", Watts: 3}}
	ep4 := energy.EP(energy.EAvg(planes), 0.25)

	// Its 1-thread baseline: 20 W for 0.9 s.
	ep1 := energy.EP(20, 0.9)

	s := energy.Scaling(ep4, ep1)
	fmt.Printf("EP_4 = %.0f, EP_1 = %.1f, S = %.1f -> %v at P=4\n",
		ep4, ep1, s, energy.Classify(s, 4))
	// Output:
	// EP_4 = 196, EP_1 = 22.2, S = 8.8 -> superlinear at P=4
}

// Eq. 9 locates the problem size where Strassen techniques break even
// with a tuned classic multiply on a given platform balance.
func ExampleCrossover() {
	// A platform computing 94208 MFlop/s against 11000 MB/s of memory
	// bandwidth (the paper's node).
	n := energy.Crossover(94208, 11000)
	fmt.Printf("crossover at n = %.0f\n", n)
	// Output:
	// crossover at n = 4111
}

// Eq. 8 bounds CAPS's per-processor communication; more local memory
// helps only until the memory-independent term dominates.
func ExampleCommBound() {
	small := energy.CommBound(4096, 49, 1<<16)
	large := energy.CommBound(4096, 49, 1<<30)
	fmt.Printf("tight memory: %.2e words, ample memory: %.2e words\n", small, large)
	// Output:
	// tight memory: 3.21e+06 words, ample memory: 1.05e+06 words
}

// EPMixed (Eq. 2/4) handles programs with a sequential stage followed
// by parallel units measured separately.
func ExampleEPMixed() {
	seq := energy.Phase{Planes: []energy.PlaneReading{{Name: "PKG", Watts: 21}}, T: 0.5}
	par := []energy.Phase{
		{Planes: []energy.PlaneReading{{Name: "PKG", Watts: 45}}, T: 1.0},
		{Planes: []energy.PlaneReading{{Name: "PKG", Watts: 48}}, T: 1.2},
	}
	fmt.Printf("EP_t = %.1f\n", energy.EPMixed(seq, par))
	// Output:
	// EP_t = 40.6
}
