package energy

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestEP(t *testing.T) {
	if got := EP(30, 2); got != 15 {
		t.Fatalf("EP %v", got)
	}
}

func TestEPPanicsOnZeroTime(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	EP(30, 0)
}

func TestEAvgSumsPlanes(t *testing.T) {
	planes := []PlaneReading{{"PKG", 30}, {"DRAM", 3.5}}
	if got := EAvg(planes); got != 33.5 {
		t.Fatalf("EAvg %v", got)
	}
	if EAvg(nil) != 0 {
		t.Fatal("empty planes should sum to zero")
	}
}

func TestEPMixed(t *testing.T) {
	seq := Phase{Planes: []PlaneReading{{"PKG", 20}}, T: 1}
	par := []Phase{
		{Planes: []PlaneReading{{"PKG", 40}}, T: 2},
		{Planes: []PlaneReading{{"PKG", 45}}, T: 1.5},
		{Planes: []PlaneReading{{"PKG", 38}}, T: 2.5},
	}
	// (20 + max(40,45,38)) / (1 + max(2,1.5,2.5)) = 65 / 3.5
	want := 65.0 / 3.5
	if got := EPMixed(seq, par); math.Abs(got-want) > 1e-12 {
		t.Fatalf("EPMixed %v want %v", got, want)
	}
}

func TestEPMixedPurelyParallel(t *testing.T) {
	par := []Phase{{Planes: []PlaneReading{{"PKG", 40}}, T: 2}}
	if got := EPMixed(Phase{}, par); got != 20 {
		t.Fatalf("EPMixed %v", got)
	}
}

func TestEPMixedPanics(t *testing.T) {
	panics := func(f func()) (p bool) {
		defer func() { p = recover() != nil }()
		f()
		return
	}
	if !panics(func() { EPMixed(Phase{}, nil) }) {
		t.Fatal("no parallel phases accepted")
	}
	if !panics(func() { EPMixed(Phase{}, []Phase{{T: 0}}) }) {
		t.Fatal("zero total time accepted")
	}
}

func TestEPMixedReducesToEPForOneUnit(t *testing.T) {
	// With no sequential part and one parallel unit, Eq. 2 is Eq. 1.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		w := 10 + rng.Float64()*50
		tt := 0.1 + rng.Float64()*10
		one := EPMixed(Phase{}, []Phase{{Planes: []PlaneReading{{"PKG", w}}, T: tt}})
		return math.Abs(one-EP(w, tt)) < 1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestScaling(t *testing.T) {
	if got := Scaling(40, 10); got != 4 {
		t.Fatalf("S %v", got)
	}
}

func TestScalingPanicsOnZeroBase(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	Scaling(40, 0)
}

func TestClassify(t *testing.T) {
	if Classify(3.9, 4) != Ideal {
		t.Fatal("3.9 at P=4 should be ideal")
	}
	if Classify(4.0, 4) != Ideal {
		t.Fatal("boundary should be ideal")
	}
	if Classify(4.1, 4) != Superlinear {
		t.Fatal("4.1 at P=4 should be superlinear")
	}
	if Ideal.String() != "ideal" || Superlinear.String() != "superlinear" {
		t.Fatal("class names")
	}
}

func TestLinearThreshold(t *testing.T) {
	if LinearThreshold(3) != 3 {
		t.Fatal("threshold")
	}
}

func TestOmega0(t *testing.T) {
	if math.Abs(Omega0-2.807354922) > 1e-8 {
		t.Fatalf("omega0 %v", Omega0)
	}
}

func TestCommBoundRegimes(t *testing.T) {
	// Memory-dependent bound dominates when local memory is small.
	n, p := 4096.0, 64.0
	small := CommBound(n, p, 1024)
	memBound := math.Pow(n, Omega0) / (p * math.Pow(1024, Omega0/2-1))
	if math.Abs(small-memBound)/memBound > 1e-12 {
		t.Fatalf("small-memory bound %v want %v", small, memBound)
	}
	// Memory-independent bound dominates when memory is plentiful.
	big := CommBound(n, p, 1e12)
	indep := n * n / math.Pow(p, 2/Omega0)
	if math.Abs(big-indep)/indep > 1e-12 {
		t.Fatalf("large-memory bound %v want %v", big, indep)
	}
}

func TestCommBoundPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	CommBound(0, 4, 100)
}

func TestPropertyCommBoundMonotone(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 128 + rng.Float64()*8192
		p := 1 + rng.Float64()*1024
		m := 256 + rng.Float64()*1e7
		base := CommBound(n, p, m)
		// More data to multiply → at least as much communication.
		if CommBound(n*2, p, m) < base {
			return false
		}
		// More processors → less communication per processor.
		if CommBound(n, p*2, m) > base {
			return false
		}
		// More local memory → no more communication.
		return CommBound(n, p, m*2) <= base
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestCrossover(t *testing.T) {
	// Platform computing 1000 MFlop/s moving 1000 MB/s: n = 480.
	if got := Crossover(1000, 1000); got != 480 {
		t.Fatalf("crossover %v", got)
	}
	// The paper's machine: ~23500 MFlop/s tuned DGEMM per core, ~7500
	// MB/s single stream → crossover ≈ 1504, in the region the paper
	// could not reach with its 4 GB of RAM — consistent with "we were
	// unable to execute problems large enough to realize the crossover".
	n := Crossover(23500, 7500)
	if n < 1000 || n > 2500 {
		t.Fatalf("paper-platform crossover %v implausible", n)
	}
}

func TestCrossoverForMachine(t *testing.T) {
	if got := CrossoverForMachine(1e9, 1e9); got != 480 {
		t.Fatalf("%v", got)
	}
}

func TestPropertyCrossoverScaling(t *testing.T) {
	// Faster compute pushes the crossover out; faster memory pulls it in.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		y := 100 + rng.Float64()*1e5
		z := 100 + rng.Float64()*1e5
		n := Crossover(y, z)
		return Crossover(y*2, z) > n && Crossover(y, z*2) < n &&
			math.Abs(Crossover(y*2, z*2)-n) < 1e-9*n
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSeriesClassification(t *testing.T) {
	ideal := Series{P: []int{1, 2, 3, 4}, S: []float64{1, 1.8, 2.5, 3.2}}
	super := Series{P: []int{1, 2, 3, 4}, S: []float64{1, 2.5, 4.2, 9.6}}
	if ideal.WorstClass() != Ideal {
		t.Fatal("ideal series misclassified")
	}
	if super.WorstClass() != Superlinear {
		t.Fatal("superlinear series misclassified")
	}
	if ideal.MaxExcess() != 0 {
		t.Fatalf("ideal excess %v", ideal.MaxExcess())
	}
	if got := super.MaxExcess(); math.Abs(got-5.6) > 1e-12 {
		t.Fatalf("super excess %v", got)
	}
}

func TestSeriesMeanDistanceToLinear(t *testing.T) {
	s := Series{P: []int{1, 2}, S: []float64{1, 1.5}}
	if got := s.MeanDistanceToLinear(); math.Abs(got-0.25) > 1e-12 {
		t.Fatalf("mean distance %v", got)
	}
	if (Series{}).MeanDistanceToLinear() != 0 {
		t.Fatal("empty series distance")
	}
}

func TestPaperScenarioOpenBLASSuperlinear(t *testing.T) {
	// Reconstruct Fig. 7's qualitative claim from Table III-like data:
	// OpenBLAS power 20→49 W with speedup ~3.9 gives S ≈ 9.5 >> 4.
	ep1 := EP(20.2, 1.0)
	ep4 := EP(49.13, 1.0/3.9)
	s := Scaling(ep4, ep1)
	if Classify(s, 4) != Superlinear {
		t.Fatalf("OpenBLAS-like scaling %v should be superlinear", s)
	}
	// Strassen-like: power 21→32 W with speedup ~2.1 gives S ≈ 3.2 < 4.
	eps1 := EP(21.1, 1.0)
	eps4 := EP(31.9, 1.0/2.1)
	if Classify(Scaling(eps4, eps1), 4) != Ideal {
		t.Fatal("Strassen-like scaling should be ideal")
	}
}

func TestEAvgRejectsNegativeReading(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("negative watts accepted: a sign error upstream would produce a plausible EP")
		}
	}()
	EAvg([]PlaneReading{{"PKG", 30}, {"DRAM", -3.5}})
}

func TestEPMixedRejectsNegativeInputs(t *testing.T) {
	panics := func(f func()) (p bool) {
		defer func() { p = recover() != nil }()
		f()
		return
	}
	if !panics(func() {
		EPMixed(Phase{}, []Phase{{Planes: []PlaneReading{{"PKG", -1}}, T: 2}})
	}) {
		t.Fatal("negative parallel-phase watts accepted")
	}
	if !panics(func() {
		EPMixed(Phase{Planes: []PlaneReading{{"PKG", -1}}, T: 1},
			[]Phase{{Planes: []PlaneReading{{"PKG", 40}}, T: 2}})
	}) {
		t.Fatal("negative sequential-phase watts accepted")
	}
	if !panics(func() {
		EPMixed(Phase{}, []Phase{{Planes: []PlaneReading{{"PKG", 40}}, T: -2}, {T: 5}})
	}) {
		t.Fatal("negative phase duration accepted")
	}
}

func TestClassifyRelativeEpsilonAtLargeS(t *testing.T) {
	// At large S the old absolute 1e-9 epsilon is below float
	// resolution: a value on the line but carrying one ulp of noise was
	// classified superlinear. The threshold must scale with P.
	p := 1 << 40
	thr := float64(p)
	onLine := thr * (1 + 1e-12) // float noise, far under the 1e-9 relative band
	if Classify(onLine, p) != Ideal {
		t.Fatalf("S=%v at P=%d misclassified as superlinear", onLine, p)
	}
	clearlyOver := thr * (1 + 1e-6)
	if Classify(clearlyOver, p) != Superlinear {
		t.Fatalf("S=%v at P=%d misclassified as ideal", clearlyOver, p)
	}
	// Small P keeps the absolute epsilon floor.
	if Classify(1+5e-10, 1) != Ideal {
		t.Fatal("boundary noise at P=1 misclassified")
	}
	if Classify(1.1, 1) != Superlinear {
		t.Fatal("1.1 at P=1 should be superlinear")
	}
}
