package energy

import "fmt"

// Extensions beyond the paper's EP ratio: the energy-delay family of
// metrics commonly used alongside it. The paper's EP = EAvg/T weights
// power against runtime; EDP and ED²P weight total energy against
// runtime once and twice, penalizing slow-but-frugal configurations
// progressively harder. Together they bracket the design space the
// paper's facility-limit scenario lives in.

// EnergyToSolution returns total joules for a run measured as average
// watts over seconds.
func EnergyToSolution(avgWatts, seconds float64) float64 {
	if seconds < 0 {
		panic(fmt.Sprintf("energy: negative runtime %v", seconds))
	}
	return avgWatts * seconds
}

// EDP returns the energy-delay product J·s (lower is better).
func EDP(joules, seconds float64) float64 {
	if seconds < 0 {
		panic(fmt.Sprintf("energy: negative runtime %v", seconds))
	}
	return joules * seconds
}

// ED2P returns the energy-delay-squared product J·s² (lower is
// better; insensitive to DVFS because dynamic energy scales ~f²
// while delay scales 1/f).
func ED2P(joules, seconds float64) float64 {
	return EDP(joules, seconds) * seconds
}

// Greenup, Speedup and Powerup decompose a configuration change
// against a baseline (the GSP view): speedup = Tb/T, powerup = P/Pb,
// greenup = speedup/powerup = Eb/E. A change is strictly "green" when
// greenup > 1.
func Greenup(baseJoules, joules float64) float64 {
	if joules <= 0 {
		panic(fmt.Sprintf("energy: non-positive joules %v", joules))
	}
	return baseJoules / joules
}
