// Package energy implements the paper's contribution: the energy
// performance scaling model of Section III, the CAPS communication
// lower bound (Eq. 8) and the Strassen/blocked crossover model (Eq. 9).
//
// The equations deliberately leave measurement criteria and units open
// ("to permit flexibility in the application of the equations"); this
// package follows suit — EAvg values are whatever power figure the
// caller measures (here: simulated RAPL watts), T values are seconds.
package energy

import (
	"fmt"
	"math"
)

// EP computes Eq. 1, the energy-performance ratio of a simple parallel
// algorithm: EP_p = EAvg_p / T_p. It panics on a non-positive runtime,
// which indicates a measurement bug rather than an input condition.
func EP(eavg, t float64) float64 {
	if t <= 0 {
		panic(fmt.Sprintf("energy: non-positive runtime %v", t))
	}
	return eavg / t
}

// PlaneReading is one power plane's average draw over a phase, the
// PPL_p term of Eq. 3. Name is informational ("PKG", "PP0", "DRAM").
type PlaneReading struct {
	Name  string
	Watts float64
}

// EAvg computes Eq. 3: the encapsulated power of a phase is the sum of
// its measurable power planes, EAvg_n = Σ_f PPL_f. It panics on a
// negative reading: power planes cannot draw negative watts, so a
// negative value is a sign error upstream that would otherwise
// propagate into a plausible-looking EP.
func EAvg(planes []PlaneReading) float64 {
	sum := 0.0
	for _, p := range planes {
		if p.Watts < 0 {
			panic(fmt.Sprintf("energy: negative power reading %s = %v W", p.Name, p.Watts))
		}
		sum += p.Watts
	}
	return sum
}

// Phase is one measured program phase: its power planes and duration.
// A purely sequential stage is one Phase; each parallel unit of a
// parallel stage is its own Phase.
type Phase struct {
	Planes []PlaneReading
	T      float64
}

// EPMixed computes Eq. 2 (and its power-plane expansion, Eq. 4): the
// total energy performance of a mixed sequential-parallel application,
//
//	EP_t = (EAvg_s + max(EAvg_p)) / (T_s + max(T_p)).
//
// seq may be the zero Phase for fully parallel programs; par must have
// at least one element.
func EPMixed(seq Phase, par []Phase) float64 {
	if len(par) == 0 {
		panic("energy: EPMixed requires at least one parallel phase")
	}
	maxE, maxT := 0.0, 0.0
	for _, p := range par {
		if p.T < 0 {
			panic(fmt.Sprintf("energy: negative phase duration %v", p.T))
		}
		if e := EAvg(p.Planes); e > maxE {
			maxE = e
		}
		if p.T > maxT {
			maxT = p.T
		}
	}
	total := seq.T + maxT
	if total <= 0 {
		panic(fmt.Sprintf("energy: non-positive total runtime %v", total))
	}
	return (EAvg(seq.Planes) + maxE) / total
}

// Scaling computes Eq. 5: S = EP_p / EP_1, the energy-performance
// scaling of the P-way run relative to the single-unit run.
func Scaling(epP, ep1 float64) float64 {
	if ep1 <= 0 {
		panic(fmt.Sprintf("energy: non-positive EP_1 %v", ep1))
	}
	return epP / ep1
}

// Class is the verdict of the paper's Fig. 1 taxonomy.
type Class int

const (
	// Ideal: the scaling value lies on or below the linear threshold —
	// power grows no faster than performance.
	Ideal Class = iota
	// Superlinear: power must grow faster than the performance speedup
	// to reach this operating point.
	Superlinear
)

func (c Class) String() string {
	if c == Ideal {
		return "ideal"
	}
	return "superlinear"
}

// Classify compares an energy-performance scaling value S at
// parallelism P against the linear threshold S = P (Fig. 1): values at
// or under the line are ideal, values above it superlinear. The
// boundary tolerance is relative to the threshold (floored at one so
// small P keeps an absolute epsilon): a fixed absolute epsilon is
// invisible next to large S values, where float noise alone exceeds
// it, misclassifying on-the-line points as superlinear.
func Classify(s float64, p int) Class {
	thr := float64(p)
	if s <= thr+1e-9*math.Max(1, thr) {
		return Ideal
	}
	return Superlinear
}

// LinearThreshold returns the Fig. 1 boundary value at parallelism p.
func LinearThreshold(p int) float64 { return float64(p) }

// Omega0 is ω₀ = log₂7, the exponent of Strassen's arithmetic
// complexity, used by the communication bound.
var Omega0 = math.Log2(7)

// CommBound computes Eq. 8, the per-processor communication lower
// bound of CAPS for an n×n multiply on P processors with M words of
// local memory each:
//
//	max( n^ω₀ / (P·M^(ω₀/2−1)), n² / P^(2/ω₀) )
//
// in words moved. It panics on non-positive arguments.
func CommBound(n, p, m float64) float64 {
	if n <= 0 || p <= 0 || m <= 0 {
		panic(fmt.Sprintf("energy: CommBound(%v, %v, %v)", n, p, m))
	}
	memBound := math.Pow(n, Omega0) / (p * math.Pow(m, Omega0/2-1))
	indepBound := n * n / math.Pow(p, 2/Omega0)
	return math.Max(memBound, indepBound)
}

// Crossover computes Eq. 9: the square-matrix dimension at which a
// Strassen technique breaks even with a tuned classic multiply on a
// platform that computes at y MFlop/s and moves data at z MB/s:
//
//	n = 480·y/z
//
// The constant follows from equating one recursion level's saved
// multiplication (2·(n/2)³ flop) against its added data movement
// (15 matrix operands of 32·(n/2)² bytes each... accumulated over the
// level, per the derivation the paper cites from Wadleigh & Crawford).
func Crossover(yMFlops, zMBs float64) float64 {
	if yMFlops <= 0 || zMBs <= 0 {
		panic(fmt.Sprintf("energy: Crossover(%v, %v)", yMFlops, zMBs))
	}
	return 480 * yMFlops / zMBs
}

// CrossoverForMachine evaluates Eq. 9 from absolute platform rates:
// flops in flop/s and bandwidth in B/s.
func CrossoverForMachine(flops, bandwidth float64) float64 {
	return Crossover(flops/1e6, bandwidth/1e6)
}

// Series is one algorithm's energy-performance scaling curve: the S
// value (Eq. 5) at each degree of parallelism, for one problem size.
type Series struct {
	Algorithm string
	ProblemN  int
	// P[i] and S[i] are parallelism degree and scaling value.
	P []int
	S []float64
}

// WorstClass returns the series' overall verdict: superlinear if any
// point exceeds the linear threshold.
func (s Series) WorstClass() Class {
	for i, p := range s.P {
		if Classify(s.S[i], p) == Superlinear {
			return Superlinear
		}
	}
	return Ideal
}

// MaxExcess returns the largest S−P distance above the linear
// threshold (0 for ideal series) — how superlinear the series gets.
func (s Series) MaxExcess() float64 {
	worst := 0.0
	for i, p := range s.P {
		if d := s.S[i] - float64(p); d > worst {
			worst = d
		}
	}
	return worst
}

// MeanDistanceToLinear returns the mean |S−P| over the series — the
// paper's "closer to the linear scale" comparison between CAPS and
// Strassen made quantitative.
func (s Series) MeanDistanceToLinear() float64 {
	if len(s.P) == 0 {
		return 0
	}
	sum := 0.0
	for i, p := range s.P {
		sum += math.Abs(s.S[i] - float64(p))
	}
	return sum / float64(len(s.P))
}
