package energy

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestEnergyToSolution(t *testing.T) {
	if EnergyToSolution(30, 2) != 60 {
		t.Fatal("energy")
	}
}

func TestEDPFamily(t *testing.T) {
	if EDP(60, 2) != 120 {
		t.Fatal("edp")
	}
	if ED2P(60, 2) != 240 {
		t.Fatal("ed2p")
	}
}

func TestMetricsPanics(t *testing.T) {
	cases := []func(){
		func() { EnergyToSolution(1, -1) },
		func() { EDP(1, -1) },
		func() { Greenup(1, 0) },
	}
	for i, f := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d: no panic", i)
				}
			}()
			f()
		}()
	}
}

func TestGreenup(t *testing.T) {
	if Greenup(100, 80) != 1.25 {
		t.Fatal("greenup")
	}
}

func TestPropertyEDPOrderingConsistent(t *testing.T) {
	// If one config dominates another in both energy and time, every
	// metric in the family agrees.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		e1, t1 := 1+rng.Float64()*100, 0.1+rng.Float64()*10
		e2, t2 := e1+rng.Float64()*50, t1+rng.Float64()*5
		return EDP(e1, t1) <= EDP(e2, t2) &&
			ED2P(e1, t1) <= ED2P(e2, t2) &&
			Greenup(e2, e1) >= 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyED2PDVFSInsensitive(t *testing.T) {
	// Idealized DVFS: delay ∝ 1/s, dynamic energy ∝ s² (per unit of
	// work E = P·T ∝ s³/s). ED²P = E·T² ∝ s²·s⁻² = const.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		s := 0.5 + rng.Float64()
		e0, t0 := 100.0, 2.0
		e, tt := e0*s*s, t0/s
		base := ED2P(e0, t0)
		scaled := ED2P(e, tt)
		return scaled > base*0.999 && scaled < base*1.001
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
