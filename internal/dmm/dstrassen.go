package dmm

import (
	"capscale/internal/cluster"
	"capscale/internal/kernel"
	"capscale/internal/mpi"
	"capscale/internal/strassen"
	"capscale/internal/task"
)

// Distributed classic Strassen — the non-communication-avoiding
// baseline mirroring the paper's shared-memory comparison: a pure
// depth-first traversal in which ALL ranks cooperate on each of the
// seven subproblems in sequence, fully redistributing the operand
// shares at every level the data still spans the machine. Once a
// subproblem is small enough to be node-local (below localCutoff) the
// remaining recursion is pure local arithmetic, charged in closed
// form. Same multiply flops as distributed CAPS; communication grows
// with the traversal instead of shrinking per owner subgroup.

const tagDStrassen = 9000

// localCutoff is the dimension below which a DFS subproblem's operands
// are node-local and recursion stops communicating.
const localCutoff = 512

// Strassen returns the rank program for distributed classic Strassen
// on any rank count (ranks work-share every level).
func Strassen(n, cutover int) func(*mpi.Rank) {
	if cutover <= 0 {
		cutover = strassen.DefaultCutover
	}
	return func(r *mpi.Rank) {
		p := r.Size()
		var rec func(curN, depth int)
		rec = func(curN, depth int) {
			if curN <= cutover || curN <= localCutoff || curN%2 != 0 {
				// Node-local remainder of the recursion, work-shared:
				// each rank computes its 1/p of the closed-form flops.
				localStrassen(r, curN, cutover, p)
				return
			}
			half := curN / 2
			// Work-shared operand sums for the level (18 add-ops on
			// (n/2)² elements, paper Eq. 7 counting).
			elems := 18 * float64(half) * float64(half) / float64(p)
			r.Compute(mpi.ComputeWork{
				Kind:      task.KindAdd,
				Flops:     elems,
				DRAMBytes: 3 * 8 * elems,
				Cores:     0,
			})
			// Full redistribution for the level: every rank exchanges
			// its share of all seven subproblems' operands with every
			// other rank (the DFS pattern of the paper's Fig. 2),
			// aggregated into one exchange per peer.
			if p > 1 {
				level := 7 * 2 * kernel.Bytes(half, half) / float64(p) // 7 subproblems × (A,B) shares
				r.Alltoall(tagDStrassen+depth, level/float64(p))
			}
			for q := 0; q < 7; q++ {
				rec(half, depth+1)
			}
		}
		rec(n, 0)
	}
}

// RunStrassen executes distributed classic Strassen on `ranks` nodes.
func RunStrassen(cl *cluster.Cluster, n, cutover, ranks int) *Result {
	res := mpi.Run(cl, ranks, Strassen(n, cutover))
	return &Result{Result: res, Algorithm: "Strassen", N: n, Ranks: ranks}
}
