package dmm

import (
	"math"
	"testing"

	"capscale/internal/cluster"
)

func Test25DWithC1MatchesSUMMAVolume(t *testing.T) {
	c := cluster.TS140Cluster(16)
	n := 4096
	summa := RunSUMMA(c, n, 16)
	flat := Run25D(c, n, 1, 16)
	if math.Abs(summa.BytesSent-flat.BytesSent) > 1e-6 {
		t.Fatalf("2.5D(c=1) volume %v vs SUMMA %v", flat.BytesSent, summa.BytesSent)
	}
	if math.Abs(summa.Makespan-flat.Makespan)/summa.Makespan > 1e-9 {
		t.Fatalf("2.5D(c=1) time %v vs SUMMA %v", flat.Makespan, summa.Makespan)
	}
}

func Test25DReducesCommunication(t *testing.T) {
	// Same 32 nodes: c=2 on a 4×4×2 grid versus... compare per-round
	// traffic at equal rank counts: 32 = 2·4² vs flat SUMMA needs a
	// square count, so compare per-rank volume between SUMMA on 16 and
	// 2.5D(c=2) on 32 at the same n — the 2.5D ranks each move less.
	n := 8192
	summa := RunSUMMA(cluster.TS140Cluster(16), n, 16)
	d25 := Run25D(cluster.TS140Cluster(32), n, 2, 32)
	perRankSumma := summa.BytesSent / 16
	perRank25 := d25.BytesSent / 32
	if perRank25 >= perRankSumma {
		t.Fatalf("2.5D per-rank volume %v not below SUMMA's %v", perRank25, perRankSumma)
	}
}

func Test25DReplicationPaysOffAtScale(t *testing.T) {
	// Replication wins once P ≫ c³ (its fixed replication/reduction
	// traffic amortizes): at 64 ranks c=4 is a net loss, at 256 ranks
	// it wins volume, wall time and energy — both sides of the
	// tradeoff, on the same fabric.
	n := 8192
	flat64 := Run25D(cluster.TS140Cluster(64), n, 1, 64)
	repl64 := Run25D(cluster.TS140Cluster(64), n, 4, 64)
	if repl64.BytesSent <= flat64.BytesSent {
		t.Fatalf("at P=64, c=4 volume %v unexpectedly below c=1's %v", repl64.BytesSent, flat64.BytesSent)
	}

	flat256 := Run25D(cluster.TS140Cluster(256), n, 1, 256)
	repl256 := Run25D(cluster.TS140Cluster(256), n, 4, 256)
	if repl256.BytesSent >= flat256.BytesSent {
		t.Fatalf("at P=256, c=4 volume %v not below c=1's %v", repl256.BytesSent, flat256.BytesSent)
	}
	if repl256.Makespan >= flat256.Makespan {
		t.Fatalf("at P=256, c=4 (%v s) not faster than c=1 (%v s)", repl256.Makespan, flat256.Makespan)
	}
	if repl256.TotalJoules() >= flat256.TotalJoules() {
		t.Fatalf("at P=256, c=4 energy %v not below c=1's %v", repl256.TotalJoules(), flat256.TotalJoules())
	}
}

func Test25DValidation(t *testing.T) {
	c := cluster.TS140Cluster(12)
	panics := func(f func()) (p bool) {
		defer func() { p = recover() != nil }()
		f()
		return
	}
	if !panics(func() { Run25D(c, 1024, 5, 12) }) {
		t.Fatal("c not dividing P accepted")
	}
	if !panics(func() { Run25D(c, 1024, 3, 12) }) {
		t.Fatal("non-square q accepted") // 12/3=4 → q=2, but q%c: 2%3 != 0 → panics too; either way invalid
	}
	if !panics(func() { Run25D(cluster.TS140Cluster(4), 1023, 1, 4) }) {
		t.Fatal("non-divisible n accepted")
	}
}

func Test25DDeterminism(t *testing.T) {
	c := cluster.TS140Cluster(32)
	a := Run25D(c, 4096, 2, 32)
	b := Run25D(c, 4096, 2, 32)
	if a.Makespan != b.Makespan || a.TotalJoules() != b.TotalJoules() {
		t.Fatal("2.5D not deterministic")
	}
}

func Test25DEnergyTradeoff(t *testing.T) {
	// Replication costs replication messages but shortens the run; on
	// the slow fabric total energy should not explode.
	n := 8192
	flat := Run25D(cluster.TS140Cluster(64), n, 1, 64)
	repl := Run25D(cluster.TS140Cluster(64), n, 4, 64)
	if repl.TotalJoules() > flat.TotalJoules()*1.2 {
		t.Fatalf("replication energy %v far above flat %v", repl.TotalJoules(), flat.TotalJoules())
	}
}
