package dmm

import (
	"math"
	"testing"

	"capscale/internal/cluster"
	"capscale/internal/kernel"
)

func TestSUMMACommunicationVolume(t *testing.T) {
	// On a q×q grid, each round moves (q−1) A blocks per row and (q−1)
	// B blocks per column: total = 2·q·(q−1)·q rounds? Exactly:
	// per round, rows send q·(q−1) A blocks and columns q·(q−1) B
	// blocks; over q rounds: 2·q²·(q−1) blocks of (n/q)² doubles.
	c := cluster.TS140Cluster(4)
	n := 1024
	res := RunSUMMA(c, n, 4)
	q := 2
	bn := n / q
	wantBlocks := float64(2 * q * q * (q - 1))
	want := wantBlocks * kernel.Bytes(bn, bn)
	if math.Abs(res.BytesSent-want) > 1e-6 {
		t.Fatalf("SUMMA volume %v want %v", res.BytesSent, want)
	}
}

func TestSUMMAFlopsConserved(t *testing.T) {
	// Σ ranks' local flops must equal 2n³ regardless of the grid.
	c := cluster.TS140Cluster(9)
	n := 576 // divisible by 3
	res := RunSUMMA(c, n, 9)
	// Makespan must be at least the per-rank compute time: 2n³/9 flops
	// over a 4-core node.
	node := c.Node
	minCompute := kernel.MulFlops(n, n, n) / 9 / (node.PeakFlops() * 0.92)
	if res.Makespan < minCompute {
		t.Fatalf("makespan %v below compute floor %v", res.Makespan, minCompute)
	}
}

func TestSUMMARequiresSquareGrid(t *testing.T) {
	c := cluster.TS140Cluster(3)
	defer func() {
		if recover() == nil {
			t.Fatal("non-square grid accepted")
		}
	}()
	RunSUMMA(c, 512, 3)
}

func TestCAPSRequiresPowerOf7(t *testing.T) {
	c := cluster.TS140Cluster(8)
	defer func() {
		if recover() == nil {
			t.Fatal("8 ranks accepted for CAPS")
		}
	}()
	RunCAPS(c, 1024, 64, 8)
}

func TestCAPSSingleRankIsLocalStrassen(t *testing.T) {
	c := cluster.TS140Cluster(1)
	res := RunCAPS(c, 1024, 64, 1)
	if res.BytesSent != 0 || res.Messages != 0 {
		t.Fatalf("1-rank CAPS communicated: %v bytes", res.BytesSent)
	}
	if res.Makespan <= 0 {
		t.Fatal("no local compute")
	}
}

func TestCAPSCommunicationPattern(t *testing.T) {
	// One BFS level on 7 ranks: every rank exchanges with its 6
	// counterparts twice (operands down, products up).
	c := cluster.TS140Cluster(7)
	res := RunCAPS(c, 1024, 64, 7)
	wantMsgs := 7 * 6 * 2
	if res.Messages != wantMsgs {
		t.Fatalf("CAPS messages %d want %d", res.Messages, wantMsgs)
	}
	if res.BytesSent <= 0 {
		t.Fatal("no communication volume")
	}
}

func TestCAPSSpeedsUpWithRanks(t *testing.T) {
	c := cluster.TS140Cluster(49)
	n := 4096
	t1 := RunCAPS(c, n, 64, 1).Makespan
	t7 := RunCAPS(c, n, 64, 7).Makespan
	t49 := RunCAPS(c, n, 64, 49).Makespan
	if !(t1 > t7 && t7 > t49) {
		t.Fatalf("CAPS not scaling: %v %v %v", t1, t7, t49)
	}
	if sp := t1 / t7; sp < 2 {
		t.Fatalf("7-rank speedup %v too low", sp)
	}
}

func TestSUMMASpeedsUpWithRanks(t *testing.T) {
	// On gigabit Ethernet the problem must be large enough for the n³
	// compute to dominate the n² block transfers (at n=4096 a 4-rank
	// SUMMA genuinely loses to one node — 33 MB blocks at ~118 MB/s).
	c := cluster.TS140Cluster(16)
	n := 8192
	t1 := RunSUMMA(c, n, 1).Makespan
	t4 := RunSUMMA(c, n, 4).Makespan
	t16 := RunSUMMA(c, n, 16).Makespan
	if !(t1 > t4 && t4 > t16) {
		t.Fatalf("SUMMA not scaling: %v %v %v", t1, t4, t16)
	}
}

func TestSUMMACommBoundAtSmallSizeOnGigE(t *testing.T) {
	// The flip side: at 4096 on GigE, 4 ranks are communication-bound
	// and do NOT beat one node — the effect the paper's future work
	// wants the distributed energy model to capture.
	c := cluster.TS140Cluster(4)
	n := 4096
	t1 := RunSUMMA(c, n, 1).Makespan
	t4 := RunSUMMA(c, n, 4).Makespan
	if t4 < t1 {
		t.Fatalf("expected comm-bound non-scaling at n=%d: t1=%v t4=%v", n, t1, t4)
	}
}

func TestCAPSPerRankCommShrinksFasterThanSUMMA(t *testing.T) {
	// CAPS per-rank communication falls like (1/4)^k with P = 7^k;
	// SUMMA's falls like 1/√P. Growing P by 7 (k by 1) must shrink
	// CAPS per-rank traffic by more than SUMMA's shrinks growing P by
	// 4 (√P by 2) — the communication-avoidance property at scale.
	n := 8192
	cCaps := cluster.TS140Cluster(49)
	caps7 := RunCAPS(cCaps, n, 64, 7)
	caps49 := RunCAPS(cCaps, n, 64, 49)
	capsRatio := (caps49.BytesSent / 49) / (caps7.BytesSent / 7)

	cSumma := cluster.TS140Cluster(16)
	summa4 := RunSUMMA(cSumma, n, 4)
	summa16 := RunSUMMA(cSumma, n, 16)
	summaRatio := (summa16.BytesSent / 16) / (summa4.BytesSent / 4)

	if capsRatio >= summaRatio {
		t.Fatalf("CAPS per-rank comm ratio %v not under SUMMA's %v", capsRatio, summaRatio)
	}
}

func TestEnergyIncludesInterconnect(t *testing.T) {
	c := cluster.TS140Cluster(4)
	res := RunSUMMA(c, 2048, 4)
	if res.NICJoules <= 0 {
		t.Fatal("no interconnect energy")
	}
	if res.IdleJoules <= 0 || res.ComputeJoules <= 0 {
		t.Fatal("missing energy components")
	}
	// Fewer nodes must not be billed for the whole cluster's idle.
	solo := RunSUMMA(c, 2048, 1)
	if solo.IdleJoules/solo.Makespan >= res.IdleJoules/res.Makespan {
		t.Fatal("idle power not proportional to nodes in use")
	}
}

func TestStudyShape(t *testing.T) {
	c := cluster.TS140Cluster(49)
	pts := Study(c, "CAPS", 4096, 64, []int{1, 7, 49})
	if len(pts) != 3 {
		t.Fatalf("points %d", len(pts))
	}
	if pts[0].Speedup != 1 || pts[0].ScalingS != 1 {
		t.Fatalf("baseline not normalized: %+v", pts[0])
	}
	for i := 1; i < len(pts); i++ {
		if pts[i].Speedup <= pts[i-1].Speedup {
			t.Fatalf("speedup not increasing: %+v", pts)
		}
		if pts[i].Watts <= pts[i-1].Watts {
			t.Fatalf("cluster power should grow with nodes: %+v", pts)
		}
	}
}

func TestStudyValidation(t *testing.T) {
	c := cluster.TS140Cluster(4)
	defer func() {
		if recover() == nil {
			t.Fatal("unknown algorithm accepted")
		}
	}()
	Study(c, "MAGIC", 1024, 64, []int{1})
}

func TestDistributedDeterminism(t *testing.T) {
	c := cluster.TS140Cluster(7)
	a := RunCAPS(c, 2048, 64, 7)
	b := RunCAPS(c, 2048, 64, 7)
	if a.Makespan != b.Makespan || a.TotalJoules() != b.TotalJoules() {
		t.Fatal("distributed CAPS not deterministic")
	}
}

func TestGigEVsInfiniBand(t *testing.T) {
	// Better fabric, same arithmetic: time and interconnect share of
	// energy both drop.
	n := 4096
	slow, err := cluster.New(cluster.TS140Cluster(1).Node, 49, cluster.GigE())
	if err != nil {
		t.Fatal(err)
	}
	fast, err := cluster.New(cluster.TS140Cluster(1).Node, 49, cluster.InfiniBandFDR())
	if err != nil {
		t.Fatal(err)
	}
	rs := RunCAPS(slow, n, 64, 49)
	rf := RunCAPS(fast, n, 64, 49)
	if rf.Makespan >= rs.Makespan {
		t.Fatalf("InfiniBand (%v) not faster than GigE (%v)", rf.Makespan, rs.Makespan)
	}
}
