package dmm

import (
	"fmt"
	"math"
)

// Communication lower bounds for distributed matrix multiplication,
// in words (matrix elements) moved per processor. Both are stated as
// the maximum of a memory-dependent term — binding when the per-node
// memory M is scarce — and a memory-independent term that no amount
// of replication can beat.
//
//   - Classic (Ballard–Demmel / Irony–Toledo–Tiskin):
//     max( n³/(P·√M), n²/P^(2/3) )
//   - Strassen-like, the paper's Eq. 8 (Ballard et al.):
//     max( n^w₀/(P·M^(w₀/2−1)), n²/P^(2/w₀) ),  w₀ = log₂7
//
// An algorithm's measured wire traffic, divided by P, lands above the
// matching bound; communication-optimal algorithms land within a
// constant factor of it (report.CommTable shows the ratio, and the
// tier-1 repro gate asserts it).

// W0 is ω₀ = log₂ 7, the exponent of Strassen's recursion.
var W0 = math.Log2(7)

// ClassicLowerBound returns the classic-multiplication bound in words
// per processor for an n×n multiply on P ranks with M words of memory
// per node.
func ClassicLowerBound(n, p int, memWords float64) float64 {
	if n <= 0 || p <= 0 || memWords <= 0 {
		panic(fmt.Sprintf("dmm: bad bound arguments n=%d P=%d M=%g", n, p, memWords))
	}
	nf, pf := float64(n), float64(p)
	memTerm := nf * nf * nf / (pf * math.Sqrt(memWords))
	indep := nf * nf / math.Pow(pf, 2.0/3.0)
	return math.Max(memTerm, indep)
}

// StrassenLowerBound returns the Eq. 8 bound in words per processor
// for a Strassen-like (ω₀ = log₂7) algorithm.
func StrassenLowerBound(n, p int, memWords float64) float64 {
	if n <= 0 || p <= 0 || memWords <= 0 {
		panic(fmt.Sprintf("dmm: bad bound arguments n=%d P=%d M=%g", n, p, memWords))
	}
	nf, pf := float64(n), float64(p)
	memTerm := math.Pow(nf, W0) / (pf * math.Pow(memWords, W0/2-1))
	indep := nf * nf / math.Pow(pf, 2/W0)
	return math.Max(memTerm, indep)
}

// Rank-count fitting: each algorithm has structural constraints on the
// communicator size, so a cluster of `nodes` nodes runs it on the
// largest rank count the constraints admit. Fit* return an error when
// not even one usable rank count exists.

// FitSUMMA returns the largest square rank count q² ≤ nodes whose grid
// dimension divides n.
func FitSUMMA(n, nodes int) (int, error) {
	for q := int(math.Sqrt(float64(nodes))); q >= 1; q-- {
		if n%q == 0 {
			return q * q, nil
		}
	}
	return 0, fmt.Errorf("dmm: no SUMMA grid fits n=%d on %d nodes", n, nodes)
}

// Fit25D returns the rank count c·q² ≤ nodes and the largest
// replication factor c whose replicated operands (3c·n²/P words of 8
// bytes per node) still fit in memBytes. With c = 1 it degenerates to
// the SUMMA grid.
func Fit25D(n, nodes int, memBytes float64) (ranks, c int, err error) {
	best, bestC := 0, 0
	for cc := 1; cc <= nodes; cc++ {
		q := int(math.Sqrt(float64(nodes / cc)))
		for ; q >= 1; q-- {
			if q%cc != 0 || n%q != 0 {
				continue
			}
			p := cc * q * q
			if memBytes > 0 && 3*8*float64(cc)*float64(n)*float64(n)/float64(p) > memBytes {
				continue
			}
			// Prefer more total ranks; at equal ranks prefer the higher
			// replication (less communication).
			if p > best || (p == best && cc > bestC) {
				best, bestC = p, cc
			}
			break
		}
	}
	if best == 0 {
		return 0, 0, fmt.Errorf("dmm: no 2.5D grid fits n=%d on %d nodes", n, nodes)
	}
	return best, bestC, nil
}

// FitCAPS returns the largest 7^k ≤ nodes whose k BFS halvings keep
// the block dimension integral (2^k divides n). k = 0 — one rank,
// purely local — always fits.
func FitCAPS(n, nodes int) int {
	ranks, levels := 1, 0
	for ranks*7 <= nodes && n%(1<<(levels+1)) == 0 {
		ranks *= 7
		levels++
	}
	return ranks
}
