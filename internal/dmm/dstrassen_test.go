package dmm

import (
	"testing"

	"capscale/internal/cluster"
)

func TestDistributedStrassenSingleRank(t *testing.T) {
	c := cluster.TS140Cluster(1)
	res := RunStrassen(c, 1024, 64, 1)
	if res.BytesSent != 0 {
		t.Fatalf("1-rank Strassen communicated %v bytes", res.BytesSent)
	}
	if res.Makespan <= 0 {
		t.Fatal("no compute")
	}
}

func TestDistributedStrassenArbitraryRankCounts(t *testing.T) {
	// Unlike CAPS (7^k) and SUMMA (q²), DFS Strassen work-shares on any
	// rank count.
	for _, p := range []int{2, 3, 5, 6} {
		c := cluster.TS140Cluster(p)
		res := RunStrassen(c, 2048, 64, p)
		if res.Makespan <= 0 {
			t.Fatalf("p=%d degenerate", p)
		}
		if res.BytesSent <= 0 {
			t.Fatalf("p=%d no communication", p)
		}
	}
}

func TestDistributedStrassenCommunicatesMoreThanCAPS(t *testing.T) {
	// The distributed mirror of the paper's SMP comparison: at the same
	// rank count, the non-avoiding DFS traversal moves more data and
	// takes longer.
	c := cluster.TS140Cluster(7)
	n := 4096
	str := RunStrassen(c, n, 64, 7)
	caps := RunCAPS(c, n, 64, 7)
	if str.BytesSent <= caps.BytesSent {
		t.Fatalf("Strassen comm %v not above CAPS %v", str.BytesSent, caps.BytesSent)
	}
	if str.Makespan <= caps.Makespan {
		t.Fatalf("Strassen (%v s) not slower than CAPS (%v s)", str.Makespan, caps.Makespan)
	}
}

func TestDistributedStrassenFabricDecidesScaling(t *testing.T) {
	// The honest headline: the full-redistribution DFS traversal is so
	// communication-heavy that on gigabit Ethernet adding nodes makes
	// it SLOWER, while on InfiniBand it scales — the gap communication
	// avoidance exists to close.
	n := 4096
	node := cluster.TS140Cluster(1).Node

	gige, err := cluster.New(node, 4, cluster.GigE())
	if err != nil {
		t.Fatal(err)
	}
	gigeSpeedup := RunStrassen(gige, n, 64, 1).Makespan / RunStrassen(gige, n, 64, 4).Makespan
	if gigeSpeedup > 1.6 {
		t.Fatalf("DFS Strassen 4-rank speedup %v on GigE — should be comm-crippled", gigeSpeedup)
	}

	ib, err := cluster.New(node, 4, cluster.InfiniBandFDR())
	if err != nil {
		t.Fatal(err)
	}
	ibSpeedup := RunStrassen(ib, n, 64, 1).Makespan / RunStrassen(ib, n, 64, 4).Makespan
	if ibSpeedup <= gigeSpeedup {
		t.Fatalf("InfiniBand speedup %v not above GigE's %v", ibSpeedup, gigeSpeedup)
	}
	if ibSpeedup < 2 {
		t.Fatalf("DFS Strassen speedup %v too low even on InfiniBand", ibSpeedup)
	}
}

func TestStudySupportsStrassen(t *testing.T) {
	c := cluster.TS140Cluster(4)
	pts := Study(c, "Strassen", 2048, 64, []int{1, 4})
	if len(pts) != 2 {
		t.Fatalf("points %d", len(pts))
	}
	for _, p := range pts {
		if p.Seconds <= 0 || p.Watts <= 0 || p.EP <= 0 {
			t.Fatalf("degenerate point %+v", p)
		}
	}
	if pts[1].CommMB <= 0 {
		t.Fatal("no communication recorded at 4 ranks")
	}
}
