// Package dmm implements distributed-memory matrix multiplication on
// the simulated cluster: the SUMMA 2-D algorithm as the classic
// baseline and a distributed CAPS following Ballard et al.'s BFS
// recursion over 7^k processor groups. This is the paper's Section
// VIII future work — the same energy-performance scaling methodology
// with interconnect transfer power included.
//
// Rank programs model communication exactly (every message goes
// through the mpi layer) and local arithmetic by operation counts
// (flops/DRAM traffic through the node cost model); the shared-memory
// packages validate the numerics, this package scales the energy
// accounting out.
package dmm

import (
	"fmt"
	"math"

	"capscale/internal/cluster"
	"capscale/internal/kernel"
	"capscale/internal/mpi"
	"capscale/internal/strassen"
	"capscale/internal/task"
)

// Result augments an mpi run with the problem description.
type Result struct {
	*mpi.Result
	Algorithm string
	N         int
	Ranks     int
}

// EP returns the run's Eq. 1 energy-performance ratio with the
// cluster-wide average power (all planes, NICs and switch included) as
// EAvg — the distributed extension of the paper's metric.
func (r *Result) EP() float64 { return r.AvgWatts() / r.Makespan }

// tag bases; each round offsets from these so concurrent phases don't
// collide.
const (
	tagSummaA = 1000
	tagSummaB = 2000
	tagCAPSDn = 3000
	tagCAPSUp = 4000
)

// SUMMA returns the rank program for an n×n multiply on a √P×√P
// process grid. Each of the √P panel rounds broadcasts an A block
// along the row and a B block down the column, then multiplies
// locally. It panics (inside the ranks) unless the communicator size
// is a perfect square dividing n.
func SUMMA(n int) func(*mpi.Rank) {
	return func(r *mpi.Rank) {
		p := r.Size()
		q := int(math.Round(math.Sqrt(float64(p))))
		if q*q != p {
			panic(fmt.Sprintf("dmm: SUMMA needs a square rank count, got %d", p))
		}
		if n%q != 0 {
			panic(fmt.Sprintf("dmm: SUMMA block size %d/%d not integral", n, q))
		}
		row, col := r.ID()/q, r.ID()%q
		bn := n / q
		blockBytes := kernel.Bytes(bn, bn)

		for k := 0; k < q; k++ {
			// Row broadcast of A(row, k) from the column-k owner.
			if col == k {
				for j := 0; j < q; j++ {
					if j != col {
						r.Send(row*q+j, tagSummaA+k, blockBytes)
					}
				}
			} else {
				r.Recv(row*q+k, tagSummaA+k)
			}
			// Column broadcast of B(k, col) from the row-k owner.
			if row == k {
				for i := 0; i < q; i++ {
					if i != row {
						r.Send(i*q+col, tagSummaB+k, blockBytes)
					}
				}
			} else {
				r.Recv(k*q+col, tagSummaB+k)
			}
			// Local rank-bn update C += A_blk · B_blk.
			r.Compute(mpi.ComputeWork{
				Kind:      task.KindGEMM,
				Flops:     kernel.MulFlops(bn, bn, bn),
				DRAMBytes: 3 * blockBytes,
			})
		}
	}
}

// CAPS returns the rank program for distributed CAPS on P = 7^k ranks:
// k BFS steps, each exchanging operand shares among the seven
// counterpart subgroups (the factor-7/4 memory blowup and the Eq. 8
// communication pattern), then a local Strassen solve, then the mirror
// recombination exchanges on the way back up.
func CAPS(n, cutover int) func(*mpi.Rank) {
	if cutover <= 0 {
		cutover = strassen.DefaultCutover
	}
	return func(r *mpi.Rank) {
		p := r.Size()
		levels := 0
		for v := p; v > 1; v /= 7 {
			if v%7 != 0 {
				panic(fmt.Sprintf("dmm: CAPS needs 7^k ranks, got %d", p))
			}
			levels++
		}

		var rec func(groupStart, groupSize, curN, depth int)
		rec = func(groupStart, groupSize, curN, depth int) {
			if groupSize == 1 {
				// Local sequential Strassen on the owned subproblem:
				// the base multiplies and the level additions cost
				// different kernel classes.
				localStrassen(r, curN, cutover, 1)
				return
			}
			sub := groupSize / 7
			rel := r.ID() - groupStart
			myGroup := rel / sub
			posInSub := rel % sub

			// Operand sums for the seven subproblems, work-shared over
			// the group: 10 additions on (curN/2)² elements.
			half := curN / 2
			addElems := 10 * float64(half) * float64(half) / float64(groupSize)
			r.Compute(mpi.ComputeWork{
				Kind:      task.KindAdd,
				Flops:     addElems,
				DRAMBytes: 3 * 8 * addElems,
				Cores:     0,
			})

			// BFS down-exchange: redistribute operand shares so each
			// subgroup holds its subproblem's inputs. A rank's local
			// piece of one subproblem's (S_j, T_j) combination is
			// 2·(curN/2)²/groupSize words; it keeps its own group's
			// piece and ships each of the other six to that group's
			// counterpart — the 7/4 memory blowup per level.
			share := 2 * kernel.Bytes(half, half) / float64(groupSize) // one subproblem's A and B pieces
			for j := 0; j < 7; j++ {
				if j == myGroup {
					continue
				}
				peer := groupStart + j*sub + posInSub
				r.Send(peer, tagCAPSDn+depth, share)
			}
			for j := 0; j < 7; j++ {
				if j == myGroup {
					continue
				}
				peer := groupStart + j*sub + posInSub
				r.Recv(peer, tagCAPSDn+depth)
			}

			rec(groupStart+myGroup*sub, sub, half, depth+1)

			// BFS up-exchange: scatter the subgroup's product back so
			// every rank holds its 1/groupSize share of all seven
			// products for the recombination, then the 8 recombination
			// additions. The per-counterpart piece mirrors the
			// down-exchange: (curN/2)²/groupSize words each.
			shareC := kernel.Bytes(half, half) / float64(groupSize)
			for j := 0; j < 7; j++ {
				if j == myGroup {
					continue
				}
				peer := groupStart + j*sub + posInSub
				r.Send(peer, tagCAPSUp+depth, shareC)
			}
			for j := 0; j < 7; j++ {
				if j == myGroup {
					continue
				}
				peer := groupStart + j*sub + posInSub
				r.Recv(peer, tagCAPSUp+depth)
			}
			recombElems := 8 * float64(half) * float64(half) / float64(groupSize)
			r.Compute(mpi.ComputeWork{
				Kind:      task.KindAdd,
				Flops:     recombElems,
				DRAMBytes: 3 * 8 * recombElems,
				Cores:     0,
			})
		}
		rec(0, p, n, 0)
	}
}

// localStrassen charges the closed-form local Strassen arithmetic of
// one curN×curN subproblem, split across `share` ranks: multiplies at
// the dense-solver class, additions at the bandwidth-bound class.
func localStrassen(r *mpi.Rank, curN, cutover, share int) {
	mulFlops := strassen.MulFlopsTotal(curN, cutover) / float64(share)
	addFlops := strassen.AddFlopsTotal(curN, cutover, false) / float64(share)
	r.Compute(mpi.ComputeWork{
		Kind:      task.KindBaseMul,
		Flops:     mulFlops,
		DRAMBytes: 3 * kernel.Bytes(curN, curN) / float64(share),
		Cores:     0,
	})
	if addFlops > 0 {
		r.Compute(mpi.ComputeWork{
			Kind:      task.KindAdd,
			Flops:     addFlops,
			DRAMBytes: 3 * 8 * addFlops,
			Cores:     0,
		})
	}
}

// RunSUMMA executes SUMMA on `ranks` nodes of c.
func RunSUMMA(c *cluster.Cluster, n, ranks int) *Result {
	res := mpi.Run(c, ranks, SUMMA(n))
	return &Result{Result: res, Algorithm: "SUMMA", N: n, Ranks: ranks}
}

// RunCAPS executes distributed CAPS on `ranks` nodes of c.
func RunCAPS(c *cluster.Cluster, n, cutover, ranks int) *Result {
	res := mpi.Run(c, ranks, CAPS(n, cutover))
	return &Result{Result: res, Algorithm: "CAPS", N: n, Ranks: ranks}
}

// ScalingPoint is one row of a distributed energy-scaling study.
type ScalingPoint struct {
	Ranks    int
	Seconds  float64
	Watts    float64
	Joules   float64
	CommMB   float64
	EP       float64
	Speedup  float64 // vs the study's first point
	PowerUp  float64 // watts growth vs the first point
	ScalingS float64 // Eq. 5 against the first point
}

// Study runs one algorithm across rank counts and derives the Eq. 5
// scaling series, treating the first rank count as the baseline.
func Study(c *cluster.Cluster, algorithm string, n, cutover int, rankCounts []int) []ScalingPoint {
	if len(rankCounts) == 0 {
		panic("dmm: empty rank counts")
	}
	points := make([]ScalingPoint, 0, len(rankCounts))
	var base *Result
	for _, p := range rankCounts {
		var res *Result
		switch algorithm {
		case "SUMMA":
			res = RunSUMMA(c, n, p)
		case "CAPS":
			res = RunCAPS(c, n, cutover, p)
		case "Strassen":
			res = RunStrassen(c, n, cutover, p)
		default:
			panic(fmt.Sprintf("dmm: unknown algorithm %q", algorithm))
		}
		if base == nil {
			base = res
		}
		points = append(points, ScalingPoint{
			Ranks:    p,
			Seconds:  res.Makespan,
			Watts:    res.AvgWatts(),
			Joules:   res.TotalJoules(),
			CommMB:   res.BytesSent / 1e6,
			EP:       res.EP(),
			Speedup:  base.Makespan / res.Makespan,
			PowerUp:  res.AvgWatts() / base.AvgWatts(),
			ScalingS: res.EP() / base.EP(),
		})
	}
	return points
}
