package dmm

import (
	"fmt"
	"math"

	"capscale/internal/cluster"
	"capscale/internal/kernel"
	"capscale/internal/mpi"
	"capscale/internal/task"
)

// 2.5D matrix multiplication (Solomonik & Demmel, the paper's ref
// [16]): P = c·q² ranks in a q×q×c grid trade a factor-c memory
// replication of A and B for a 1/√c reduction in communication — the
// classic-multiplication counterpart of CAPS's communication
// avoidance. With c = 1 it degenerates to SUMMA.

const (
	tag25Repl   = 5000
	tag25A      = 6000
	tag25B      = 7000
	tag25Reduce = 8000
)

// TwoPointFiveD returns the rank program for an n×n multiply with
// replication factor c on P = c·q² ranks. It panics (in the ranks)
// unless P/c is a perfect square, c divides q, and q divides n.
func TwoPointFiveD(n, c int) func(*mpi.Rank) {
	return func(r *mpi.Rank) {
		p := r.Size()
		if c < 1 || p%c != 0 {
			panic(fmt.Sprintf("dmm: 2.5D replication %d does not divide %d ranks", c, p))
		}
		q := int(math.Round(math.Sqrt(float64(p / c))))
		if q*q*c != p {
			panic(fmt.Sprintf("dmm: 2.5D needs c·q² ranks, got %d with c=%d", p, c))
		}
		if q%c != 0 {
			panic(fmt.Sprintf("dmm: 2.5D needs c (%d) to divide q (%d)", c, q))
		}
		if n%q != 0 {
			panic(fmt.Sprintf("dmm: 2.5D block size %d/%d not integral", n, q))
		}

		layer := r.ID() / (q * q)
		within := r.ID() % (q * q)
		row, col := within/q, within%q
		bn := n / q
		blockBytes := kernel.Bytes(bn, bn)
		rankAt := func(l, i, j int) int { return l*q*q + i*q + j }

		// Phase 1 — replication: layer 0 owners fan their A and B
		// blocks out to the other layers.
		if c > 1 {
			if layer == 0 {
				for l := 1; l < c; l++ {
					r.Send(rankAt(l, row, col), tag25Repl, 2*blockBytes)
				}
			} else {
				r.Recv(rankAt(0, row, col), tag25Repl)
			}
		}

		// Phase 2 — each layer runs its q/c SUMMA rounds.
		lo := layer * q / c
		hi := lo + q/c
		for k := lo; k < hi; k++ {
			if col == k {
				for j := 0; j < q; j++ {
					if j != col {
						r.Send(rankAt(layer, row, j), tag25A+k, blockBytes)
					}
				}
			} else {
				r.Recv(rankAt(layer, row, k), tag25A+k)
			}
			if row == k {
				for i := 0; i < q; i++ {
					if i != row {
						r.Send(rankAt(layer, i, col), tag25B+k, blockBytes)
					}
				}
			} else {
				r.Recv(rankAt(layer, k, col), tag25B+k)
			}
			r.Compute(mpi.ComputeWork{
				Kind:      task.KindGEMM,
				Flops:     kernel.MulFlops(bn, bn, bn),
				DRAMBytes: 3 * blockBytes,
			})
		}

		// Phase 3 — reduce the c partial C blocks onto layer 0.
		if c > 1 {
			if layer == 0 {
				for l := 1; l < c; l++ {
					r.Recv(rankAt(l, row, col), tag25Reduce)
					// Combine the received partial block.
					r.Compute(mpi.ComputeWork{
						Kind:      task.KindAdd,
						Flops:     float64(bn) * float64(bn),
						DRAMBytes: 3 * blockBytes,
						Cores:     1,
					})
				}
			} else {
				r.Send(rankAt(0, row, col), tag25Reduce, blockBytes)
			}
		}
	}
}

// Run25D executes 2.5D multiplication on `ranks` nodes of cl with the
// given replication factor.
func Run25D(cl *cluster.Cluster, n, c, ranks int) *Result {
	res := mpi.Run(cl, ranks, TwoPointFiveD(n, c))
	return &Result{Result: res, Algorithm: fmt.Sprintf("2.5D(c=%d)", c), N: n, Ranks: ranks}
}
