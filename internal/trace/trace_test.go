package trace

import (
	"math"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"capscale/internal/hw"
	"capscale/internal/sim"
)

func stepTrace() *Trace {
	return &Trace{
		Samples: []Sample{
			{T: 0, PKG: 10, PP0: 5, DRAM: 1},
			{T: 1, PKG: 20, PP0: 12, DRAM: 2},
			{T: 3, PKG: 30, PP0: 20, DRAM: 3},
		},
		End: 4,
	}
}

func TestFromSegments(t *testing.T) {
	segs := []sim.Segment{
		{Start: 0, End: 1, Power: hw.PlanePower{PKG: 10, PP0: 5, DRAM: 1}},
		{Start: 1, End: 2.5, Power: hw.PlanePower{PKG: 20, PP0: 12, DRAM: 2}},
	}
	tr := FromSegments(segs)
	if len(tr.Samples) != 2 || tr.End != 2.5 {
		t.Fatalf("trace %+v", tr)
	}
	if tr.Duration() != 2.5 {
		t.Fatalf("duration %v", tr.Duration())
	}
}

func TestEnergyStepIntegration(t *testing.T) {
	tr := stepTrace()
	pkg, pp0, dram := tr.Energy()
	// 10·1 + 20·2 + 30·1 = 80; 5+24+20 = 49; 1+4+3 = 8.
	if pkg != 80 || pp0 != 49 || dram != 8 {
		t.Fatalf("energy %v %v %v", pkg, pp0, dram)
	}
}

func TestAvgPower(t *testing.T) {
	tr := stepTrace()
	pkg, _, _ := tr.AvgPower()
	if pkg != 20 {
		t.Fatalf("avg pkg %v", pkg)
	}
	empty := &Trace{}
	if p, _, _ := empty.AvgPower(); p != 0 {
		t.Fatal("empty trace avg")
	}
}

func TestPeakPKG(t *testing.T) {
	if got := stepTrace().PeakPKG(); got != 30 {
		t.Fatalf("peak %v", got)
	}
}

func TestAt(t *testing.T) {
	tr := stepTrace()
	if s, ok := tr.At(0.5); !ok || s.PKG != 10 {
		t.Fatalf("At(0.5) %v %v", s, ok)
	}
	if s, ok := tr.At(1.0); !ok || s.PKG != 20 {
		t.Fatalf("At(1.0) %v %v", s, ok)
	}
	if s, ok := tr.At(3.9); !ok || s.PKG != 30 {
		t.Fatalf("At(3.9) %v %v", s, ok)
	}
	if _, ok := tr.At(4.0); ok {
		t.Fatal("At(end) should be out of range")
	}
	if _, ok := tr.At(-1); ok {
		t.Fatal("At(-1) should be out of range")
	}
}

func TestResample(t *testing.T) {
	tr := stepTrace()
	rs := tr.Resample(0.5)
	if len(rs.Samples) != 8 {
		t.Fatalf("resampled to %d samples", len(rs.Samples))
	}
	// Poller at 0.5 Hz intervals sees the step values in effect.
	if rs.Samples[2].PKG != 20 || rs.Samples[7].PKG != 30 {
		t.Fatalf("resampled values wrong: %+v", rs.Samples)
	}
	if rs.End != tr.End {
		t.Fatal("resample end")
	}
}

func TestResamplePanicsOnBadInterval(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	stepTrace().Resample(0)
}

func TestAppendWithGap(t *testing.T) {
	a := stepTrace()
	b := &Trace{
		Samples: []Sample{{T: 0, PKG: 50, PP0: 40, DRAM: 4}},
		End:     2,
	}
	idle := hw.PlanePower{PKG: 9.6, PP0: 0, DRAM: 1.1}
	a.AppendWithGap(b, 60, idle)
	if a.End != 4+60+2 {
		t.Fatalf("end %v", a.End)
	}
	// Quiesce period at idle power.
	if s, ok := a.At(30); !ok || s.PKG != 9.6 {
		t.Fatalf("gap sample %v %v", s, ok)
	}
	if s, ok := a.At(65); !ok || s.PKG != 50 {
		t.Fatalf("appended sample %v %v", s, ok)
	}
}

func TestWindowAvgPKG(t *testing.T) {
	tr := stepTrace() // 10W on [0,1), 20W on [1,3), 30W on [3,4)
	if got := tr.WindowAvgPKG(0, 1); got != 10 {
		t.Fatalf("[0,1) avg %v", got)
	}
	if got := tr.WindowAvgPKG(0.5, 1.5); got != 15 {
		t.Fatalf("[0.5,1.5) avg %v", got)
	}
	if got := tr.WindowAvgPKG(0, 4); got != 20 {
		t.Fatalf("full avg %v", got)
	}
	// Clipping outside the extent.
	if got := tr.WindowAvgPKG(3, 99); got != 30 {
		t.Fatalf("clipped avg %v", got)
	}
	if got := tr.WindowAvgPKG(10, 20); got != 0 {
		t.Fatalf("empty window avg %v", got)
	}
}

func TestWindowInvertedPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	stepTrace().WindowAvgPKG(2, 1)
}

func TestQuantilePKG(t *testing.T) {
	tr := stepTrace() // durations: 10W×1s, 20W×2s, 30W×1s
	if got := tr.QuantilePKG(0); got != 10 {
		t.Fatalf("q0 %v", got)
	}
	if got := tr.QuantilePKG(0.5); got != 20 {
		t.Fatalf("q50 %v", got)
	}
	if got := tr.QuantilePKG(1); got != 30 {
		t.Fatalf("q100 %v", got)
	}
	// 80th percentile: 3s of ≤20W out of 4s → must be 30.
	if got := tr.QuantilePKG(0.9); got != 30 {
		t.Fatalf("q90 %v", got)
	}
}

func TestQuantileOutOfRangePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	stepTrace().QuantilePKG(1.5)
}

func TestWriteCSV(t *testing.T) {
	var sb strings.Builder
	if err := stepTrace().WriteCSV(&sb); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(sb.String()), "\n")
	if len(lines) != 4 {
		t.Fatalf("csv lines %d", len(lines))
	}
	if !strings.HasPrefix(lines[0], "t_s,") {
		t.Fatalf("header %q", lines[0])
	}
	if !strings.Contains(lines[1], "10.000") {
		t.Fatalf("row %q", lines[1])
	}
}

func TestPropertyResampleEnergyApproximatesExact(t *testing.T) {
	// With a fine polling interval, resampled energy approaches exact.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		tr := &Trace{}
		tt := 0.0
		for i := 0; i < 5+rng.Intn(20); i++ {
			tr.Samples = append(tr.Samples, Sample{T: tt, PKG: 10 + rng.Float64()*40})
			tt += 0.1 + rng.Float64()
		}
		tr.End = tt
		exact, _, _ := tr.Energy()
		approx, _, _ := tr.Resample(0.001).Energy()
		return math.Abs(exact-approx)/exact < 0.02
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyEnergyAdditiveUnderAppend(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		mk := func() *Trace {
			tr := &Trace{}
			tt := 0.0
			for i := 0; i < 2+rng.Intn(5); i++ {
				tr.Samples = append(tr.Samples, Sample{T: tt, PKG: rng.Float64() * 50})
				tt += rng.Float64()
			}
			tr.End = tt
			return tr
		}
		a, b := mk(), mk()
		ea, _, _ := a.Energy()
		eb, _, _ := b.Energy()
		gap := rng.Float64() * 10
		idle := hw.PlanePower{PKG: 9.6}
		a.AppendWithGap(b, gap, idle)
		total, _, _ := a.Energy()
		want := ea + eb + gap*idle.PKG
		return math.Abs(total-want) < 1e-9*math.Max(1, want)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// TestResampleNoTimestampDrift is the regression test for the t += dt
// accumulation bug: 0.1 is not exactly representable, so repeated
// addition drifts the sample clock and can change the sample count
// over a long trace. Index-scaled timestamps must match start + i·dt
// bitwise, with exactly duration/dt samples.
func TestResampleNoTimestampDrift(t *testing.T) {
	tr := &Trace{
		Samples: []Sample{{T: 0, PKG: 10, PP0: 5, DRAM: 1}},
		End:     10000,
	}
	rs := tr.Resample(0.1)
	if len(rs.Samples) != 100000 {
		t.Fatalf("%d samples want 100000", len(rs.Samples))
	}
	for _, i := range []int{1, 99999, 31415} {
		want := float64(i) * 0.1
		if rs.Samples[i].T != want {
			t.Fatalf("sample %d at %v want exactly %v", i, rs.Samples[i].T, want)
		}
	}
	// The accumulating poller drifts: by sample 100000 the error of
	// repeated 0.1 addition is ~1.9e-9 s, and the drifted timestamps
	// diverge from the exact grid.
	drift := 0.0
	for i := 0; i < 100000; i++ {
		drift += 0.1
	}
	if drift == 10000.0 {
		t.Skip("platform sums 0.1 exactly; drift not observable")
	}
	if rs.Samples[99999].T == drift-0.1 {
		t.Fatal("resample still uses accumulated timestamps")
	}
}

func TestResampleNonZeroStart(t *testing.T) {
	tr := &Trace{
		Samples: []Sample{{T: 2, PKG: 7}},
		End:     3,
	}
	rs := tr.Resample(0.25)
	if len(rs.Samples) != 4 {
		t.Fatalf("%d samples", len(rs.Samples))
	}
	if rs.Samples[0].T != 2 || rs.Samples[3].T != 2.75 {
		t.Fatalf("timestamps %v %v", rs.Samples[0].T, rs.Samples[3].T)
	}
}

func TestSampleTotalExcludesPP0(t *testing.T) {
	// PP0 is a sub-plane of PKG: total must be PKG + DRAM only.
	s := Sample{PKG: 30, PP0: 22, DRAM: 4}
	if got := s.Total(); got != 34 {
		t.Fatalf("total %v want 34 (PKG+DRAM, PP0 already inside PKG)", got)
	}
}
