// Package trace represents power-over-time series: the simulator's
// per-segment plane powers become a step function that can be
// integrated, resampled at a fixed polling interval (the way a live
// power monitor samples RAPL), concatenated across runs with quiesce
// gaps, and exported as CSV for plotting.
package trace

import (
	"fmt"
	"io"
	"sort"

	"capscale/internal/hw"
	"capscale/internal/sim"
)

// Sample is one step of the power series: the plane powers hold from T
// until the next sample's T (or the trace end).
type Sample struct {
	T    float64
	PKG  float64
	PP0  float64
	DRAM float64
}

// Total returns the full-system draw at this sample: PKG + DRAM only.
// PP0 (the cores) is deliberately excluded because on RAPL it is a
// sub-plane of PKG — the package counter already contains the core
// energy, so adding PP0 again would triple-count the cores. This
// matches Eq. 3's plane encapsulation in internal/energy.
func (s Sample) Total() float64 { return s.PKG + s.DRAM }

// Trace is a right-open step function of power over [start, End).
type Trace struct {
	Samples []Sample
	End     float64
}

// FromSegments converts a simulator timeline into a trace.
func FromSegments(segs []sim.Segment) *Trace {
	tr := &Trace{}
	for _, s := range segs {
		tr.Samples = append(tr.Samples, Sample{
			T: s.Start, PKG: s.Power.PKG, PP0: s.Power.PP0, DRAM: s.Power.DRAM,
		})
		tr.End = s.End
	}
	return tr
}

// Duration returns the trace's time extent.
func (tr *Trace) Duration() float64 {
	if len(tr.Samples) == 0 {
		return 0
	}
	return tr.End - tr.Samples[0].T
}

// Energy integrates the step function, returning joules per plane.
func (tr *Trace) Energy() (pkg, pp0, dram float64) {
	for i, s := range tr.Samples {
		end := tr.End
		if i+1 < len(tr.Samples) {
			end = tr.Samples[i+1].T
		}
		dt := end - s.T
		if dt < 0 {
			panic(fmt.Sprintf("trace: non-monotone samples at %v", s.T))
		}
		pkg += s.PKG * dt
		pp0 += s.PP0 * dt
		dram += s.DRAM * dt
	}
	return pkg, pp0, dram
}

// AvgPower returns mean plane powers over the trace duration.
func (tr *Trace) AvgPower() (pkg, pp0, dram float64) {
	d := tr.Duration()
	if d == 0 {
		return 0, 0, 0
	}
	e1, e2, e3 := tr.Energy()
	return e1 / d, e2 / d, e3 / d
}

// PeakPKG returns the largest package power step in the trace.
func (tr *Trace) PeakPKG() float64 {
	peak := 0.0
	for _, s := range tr.Samples {
		if s.PKG > peak {
			peak = s.PKG
		}
	}
	return peak
}

// At returns the sample in effect at time t; ok is false outside the
// trace extent.
func (tr *Trace) At(t float64) (Sample, bool) {
	if len(tr.Samples) == 0 || t < tr.Samples[0].T || t >= tr.End {
		return Sample{}, false
	}
	// Find the last sample with T <= t.
	i := sort.Search(len(tr.Samples), func(i int) bool { return tr.Samples[i].T > t }) - 1
	s := tr.Samples[i]
	s.T = t
	return s, true
}

// Resample returns the trace as seen by a poller reading every dt
// seconds from the trace start — the view a PAPI-based monitor gets.
// It panics on non-positive (or NaN) dt.
//
// Sample times are computed as start + i·dt rather than by repeated
// addition: accumulating t += dt compounds float rounding over long
// traces, skewing late sample timestamps and the total sample count.
func (tr *Trace) Resample(dt float64) *Trace {
	if !(dt > 0) { // also rejects NaN, which would loop forever
		panic(fmt.Sprintf("trace: non-positive resample interval %v", dt))
	}
	out := &Trace{End: tr.End}
	if len(tr.Samples) == 0 {
		return out
	}
	start := tr.Samples[0].T
	for i := 0; ; i++ {
		t := start + float64(i)*dt
		if t >= tr.End {
			break
		}
		if s, ok := tr.At(t); ok {
			out.Samples = append(out.Samples, s)
		}
	}
	return out
}

// AppendWithGap appends other to tr, inserting gap seconds at the idle
// plane powers in between — the paper's 60-second quiesce between test
// runs.
func (tr *Trace) AppendWithGap(other *Trace, gap float64, idle hw.PlanePower) {
	if gap < 0 {
		panic(fmt.Sprintf("trace: negative gap %v", gap))
	}
	offset := tr.End
	if gap > 0 {
		tr.Samples = append(tr.Samples, Sample{T: offset, PKG: idle.PKG, PP0: idle.PP0, DRAM: idle.DRAM})
		offset += gap
	}
	if len(other.Samples) == 0 {
		tr.End = offset
		return
	}
	base := other.Samples[0].T
	for _, s := range other.Samples {
		s.T = s.T - base + offset
		tr.Samples = append(tr.Samples, s)
	}
	tr.End = other.End - base + offset
}

// WindowAvgPKG returns the mean package power over [t0, t1),
// clipped to the trace extent. It panics on an inverted window.
func (tr *Trace) WindowAvgPKG(t0, t1 float64) float64 {
	if t1 < t0 {
		panic(fmt.Sprintf("trace: inverted window [%v,%v)", t0, t1))
	}
	if len(tr.Samples) == 0 {
		return 0
	}
	start := tr.Samples[0].T
	if t0 < start {
		t0 = start
	}
	if t1 > tr.End {
		t1 = tr.End
	}
	if t1 <= t0 {
		return 0
	}
	energy := 0.0
	for i, s := range tr.Samples {
		end := tr.End
		if i+1 < len(tr.Samples) {
			end = tr.Samples[i+1].T
		}
		lo, hi := s.T, end
		if lo < t0 {
			lo = t0
		}
		if hi > t1 {
			hi = t1
		}
		if hi > lo {
			energy += s.PKG * (hi - lo)
		}
	}
	return energy / (t1 - t0)
}

// QuantilePKG returns the q-quantile (0..1) of package power weighted
// by time — e.g. QuantilePKG(0.95) is the draw exceeded only 5% of the
// run, the figure a facility sizes its provisioning against.
func (tr *Trace) QuantilePKG(q float64) float64 {
	if q < 0 || q > 1 {
		panic(fmt.Sprintf("trace: quantile %v outside [0,1]", q))
	}
	if len(tr.Samples) == 0 {
		return 0
	}
	type wp struct {
		w float64
		p float64
	}
	items := make([]wp, 0, len(tr.Samples))
	total := 0.0
	for i, s := range tr.Samples {
		end := tr.End
		if i+1 < len(tr.Samples) {
			end = tr.Samples[i+1].T
		}
		dt := end - s.T
		items = append(items, wp{w: dt, p: s.PKG})
		total += dt
	}
	sort.Slice(items, func(i, j int) bool { return items[i].p < items[j].p })
	cum := 0.0
	for _, it := range items {
		cum += it.w
		if cum >= q*total {
			return it.p
		}
	}
	return items[len(items)-1].p
}

// WriteCSV emits "t,pkg_w,pp0_w,dram_w,total_w" rows. The total_w
// column is PKG + DRAM (see Sample.Total): PP0 is a subset of PKG on
// RAPL, so it is reported for inspection but never summed in.
func (tr *Trace) WriteCSV(w io.Writer) error {
	if _, err := fmt.Fprintln(w, "t_s,pkg_w,pp0_w,dram_w,total_w"); err != nil {
		return err
	}
	for _, s := range tr.Samples {
		if _, err := fmt.Fprintf(w, "%.6f,%.3f,%.3f,%.3f,%.3f\n", s.T, s.PKG, s.PP0, s.DRAM, s.Total()); err != nil {
			return err
		}
	}
	return nil
}
