package trace

import (
	"math"
	"testing"
)

// FuzzResample builds a valid monotone trace from fuzz-chosen steps and
// resamples it at a fuzz-chosen interval. Invariants: no panic for any
// positive finite dt, sample times stay monotone inside the extent,
// sample values agree with At, and the resampled energy of the step
// function never exceeds the true integral by more than one step of
// peak power (the poller can only miss the tail of a step, not invent
// energy).
func FuzzResample(f *testing.F) {
	f.Add([]byte{10, 50, 20, 30, 5, 80}, 0.01)
	f.Add([]byte{1}, 1e-3)
	f.Add([]byte{}, 0.5)
	f.Add([]byte{255, 255, 255, 255}, 1e-6)

	f.Fuzz(func(t *testing.T, data []byte, dt float64) {
		if !(dt > 0) || math.IsInf(dt, 0) {
			t.Skip() // Resample's documented panic domain, tested elsewhere
		}
		// Decode byte pairs as (step duration, PKG power); keep the
		// trace small and strictly monotone.
		tr := &Trace{}
		now := 0.0
		peak := 0.0
		for i := 0; i+1 < len(data) && i < 64; i += 2 {
			step := float64(data[i]%64+1) / 256.0
			pow := float64(data[i+1])
			tr.Samples = append(tr.Samples, Sample{T: now, PKG: pow, PP0: pow / 2, DRAM: pow / 4})
			now += step
			peak = math.Max(peak, pow)
		}
		tr.End = now
		if now/dt > 1e5 {
			t.Skip() // bound the resampled size; OOM is not the property under test
		}

		out := tr.Resample(dt)

		if out.End != tr.End {
			t.Fatalf("End changed: %v -> %v", tr.End, out.End)
		}
		if len(tr.Samples) == 0 {
			if len(out.Samples) != 0 {
				t.Fatalf("empty trace resampled to %d samples", len(out.Samples))
			}
			return
		}
		start := tr.Samples[0].T
		for i, s := range out.Samples {
			if s.T < start || s.T >= tr.End {
				t.Fatalf("sample %d at %v outside [%v,%v)", i, s.T, start, tr.End)
			}
			if i > 0 && s.T <= out.Samples[i-1].T {
				t.Fatalf("sample %d at %v not after %v", i, s.T, out.Samples[i-1].T)
			}
			want, ok := tr.At(s.T)
			if !ok || want != s {
				t.Fatalf("sample %d disagrees with At(%v): %+v vs %+v", i, s.T, s, want)
			}
		}
		truePKG, _, _ := tr.Energy()
		gotPKG, _, _ := out.Energy()
		// The resampled step function differs from the true one only
		// within dt after each original step boundary, so the integral
		// error is bounded by peak power × dt per boundary. (A dt wider
		// than the whole trace degenerates to that same bound.)
		slack := peak*dt*float64(len(tr.Samples)) + 1e-9
		if math.Abs(gotPKG-truePKG) > slack+truePKG*1e-9 {
			t.Fatalf("resampled PKG energy %v vs true %v (slack %v, dt %v)",
				gotPKG, truePKG, slack, dt)
		}
	})
}

// FuzzResampleRejectsBadInterval pins the panic contract: any
// non-positive or NaN interval panics instead of looping or returning
// garbage.
func FuzzResampleRejectsBadInterval(f *testing.F) {
	f.Add(0.0)
	f.Add(-1.5)
	f.Add(math.NaN())
	f.Fuzz(func(t *testing.T, dt float64) {
		if dt > 0 {
			t.Skip()
		}
		tr := &Trace{Samples: []Sample{{T: 0, PKG: 1}}, End: 1}
		defer func() {
			if recover() == nil {
				t.Fatalf("Resample(%v) did not panic", dt)
			}
		}()
		tr.Resample(dt)
	})
}
