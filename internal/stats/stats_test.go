package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestMean(t *testing.T) {
	if Mean([]float64{1, 2, 3, 4}) != 2.5 {
		t.Fatal("mean")
	}
}

func TestMeanEmptyPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	Mean(nil)
}

func TestGeoMean(t *testing.T) {
	if got := GeoMean([]float64{1, 4}); math.Abs(got-2) > 1e-12 {
		t.Fatalf("geomean %v", got)
	}
}

func TestGeoMeanNonPositivePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	GeoMean([]float64{1, 0})
}

func TestMinMax(t *testing.T) {
	lo, hi := MinMax([]float64{3, -1, 7, 2})
	if lo != -1 || hi != 7 {
		t.Fatalf("minmax %v %v", lo, hi)
	}
}

func TestRelErr(t *testing.T) {
	if RelErr(11, 10) != 0.1 {
		t.Fatal("relerr")
	}
	if RelErr(0, 0) != 0 {
		t.Fatal("zero/zero")
	}
	if !math.IsInf(RelErr(1, 0), 1) {
		t.Fatal("x/0")
	}
}

func TestLinearFitExact(t *testing.T) {
	x := []float64{1, 2, 3, 4}
	y := []float64{5, 7, 9, 11} // y = 2x + 3
	slope, icept := LinearFit(x, y)
	if math.Abs(slope-2) > 1e-12 || math.Abs(icept-3) > 1e-12 {
		t.Fatalf("fit %v %v", slope, icept)
	}
}

func TestLinearFitPanics(t *testing.T) {
	cases := []func(){
		func() { LinearFit([]float64{1}, []float64{2}) },
		func() { LinearFit([]float64{1, 2}, []float64{2}) },
		func() { LinearFit([]float64{2, 2}, []float64{1, 3}) },
	}
	for i, f := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d: no panic", i)
				}
			}()
			f()
		}()
	}
}

func TestPropertyMeanBounds(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		xs := make([]float64, 1+rng.Intn(20))
		for i := range xs {
			xs[i] = rng.Float64()*200 - 100
		}
		m := Mean(xs)
		lo, hi := MinMax(xs)
		return m >= lo-1e-12 && m <= hi+1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyGeoMeanLEMean(t *testing.T) {
	// AM-GM inequality.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		xs := make([]float64, 1+rng.Intn(20))
		for i := range xs {
			xs[i] = 0.1 + rng.Float64()*100
		}
		return GeoMean(xs) <= Mean(xs)+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyFitRecoversLine(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a := rng.Float64()*10 - 5
		b := rng.Float64()*10 - 5
		x := make([]float64, 5)
		y := make([]float64, 5)
		for i := range x {
			x[i] = float64(i) + rng.Float64()
			y[i] = a*x[i] + b
		}
		slope, icept := LinearFit(x, y)
		return math.Abs(slope-a) < 1e-9 && math.Abs(icept-b) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
