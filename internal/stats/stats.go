// Package stats holds the small numeric helpers the harness and
// reports use: means, geometric means, extrema, least-squares fits and
// relative errors.
package stats

import (
	"fmt"
	"math"
)

// Mean returns the arithmetic mean; it panics on an empty slice, which
// indicates a harness bug.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		panic("stats: mean of empty slice")
	}
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// GeoMean returns the geometric mean of positive values.
func GeoMean(xs []float64) float64 {
	if len(xs) == 0 {
		panic("stats: geomean of empty slice")
	}
	sum := 0.0
	for _, x := range xs {
		if x <= 0 {
			panic(fmt.Sprintf("stats: geomean of non-positive value %v", x))
		}
		sum += math.Log(x)
	}
	return math.Exp(sum / float64(len(xs)))
}

// MinMax returns the extrema; it panics on an empty slice.
func MinMax(xs []float64) (lo, hi float64) {
	if len(xs) == 0 {
		panic("stats: minmax of empty slice")
	}
	lo, hi = xs[0], xs[0]
	for _, x := range xs[1:] {
		if x < lo {
			lo = x
		}
		if x > hi {
			hi = x
		}
	}
	return lo, hi
}

// RelErr returns |got−want| / |want|. A zero want with a nonzero got
// returns +Inf.
func RelErr(got, want float64) float64 {
	if want == 0 {
		if got == 0 {
			return 0
		}
		return math.Inf(1)
	}
	return math.Abs(got-want) / math.Abs(want)
}

// LinearFit returns the least-squares slope and intercept of y over x.
// It panics when fewer than two points are given or all x coincide.
func LinearFit(x, y []float64) (slope, intercept float64) {
	if len(x) != len(y) {
		panic(fmt.Sprintf("stats: fit length mismatch %d vs %d", len(x), len(y)))
	}
	if len(x) < 2 {
		panic("stats: fit needs at least two points")
	}
	n := float64(len(x))
	var sx, sy, sxx, sxy float64
	for i := range x {
		sx += x[i]
		sy += y[i]
		sxx += x[i] * x[i]
		sxy += x[i] * y[i]
	}
	den := n*sxx - sx*sx
	if den == 0 {
		panic("stats: degenerate fit (all x equal)")
	}
	slope = (n*sxy - sx*sy) / den
	intercept = (sy - slope*sx) / n
	return slope, intercept
}
