// Package stats holds the small numeric helpers the harness and
// reports use: means, geometric means, extrema, least-squares fits and
// relative errors.
package stats

import (
	"fmt"
	"math"
)

// Mean returns the arithmetic mean; it panics on an empty slice, which
// indicates a harness bug.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		panic("stats: mean of empty slice")
	}
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// GeoMean returns the geometric mean of positive values.
func GeoMean(xs []float64) float64 {
	if len(xs) == 0 {
		panic("stats: geomean of empty slice")
	}
	sum := 0.0
	for _, x := range xs {
		if x <= 0 {
			panic(fmt.Sprintf("stats: geomean of non-positive value %v", x))
		}
		sum += math.Log(x)
	}
	return math.Exp(sum / float64(len(xs)))
}

// MinMax returns the extrema; it panics on an empty slice.
func MinMax(xs []float64) (lo, hi float64) {
	if len(xs) == 0 {
		panic("stats: minmax of empty slice")
	}
	lo, hi = xs[0], xs[0]
	for _, x := range xs[1:] {
		if x < lo {
			lo = x
		}
		if x > hi {
			hi = x
		}
	}
	return lo, hi
}

// RelErr returns |got−want| / |want|. A zero want with a nonzero got
// returns +Inf.
func RelErr(got, want float64) float64 {
	if want == 0 {
		if got == 0 {
			return 0
		}
		return math.Inf(1)
	}
	return math.Abs(got-want) / math.Abs(want)
}

// LinearFit returns the least-squares slope and intercept of y over x.
// It panics when fewer than two points are given or all x coincide.
func LinearFit(x, y []float64) (slope, intercept float64) {
	if len(x) != len(y) {
		panic(fmt.Sprintf("stats: fit length mismatch %d vs %d", len(x), len(y)))
	}
	if len(x) < 2 {
		panic("stats: fit needs at least two points")
	}
	n := float64(len(x))
	var sx, sy, sxx, sxy float64
	for i := range x {
		sx += x[i]
		sy += y[i]
		sxx += x[i] * x[i]
		sxy += x[i] * y[i]
	}
	den := n*sxx - sx*sx
	if den == 0 {
		panic("stats: degenerate fit (all x equal)")
	}
	slope = (n*sxy - sx*sy) / den
	intercept = (sy - slope*sx) / n
	return slope, intercept
}

// LSFit is a multi-variable ordinary-least-squares fit y ≈ X·coef,
// solved through the normal equations. It keeps (XᵀX)⁻¹ and the
// residual variance so callers can attach a prediction interval to
// every prediction (the classic s²·(1 + xᵀ(XᵀX)⁻¹x) form).
type LSFit struct {
	Coef   []float64   // fitted coefficients, one per column of X
	XtXInv [][]float64 // inverse of the (possibly ridge-damped) normal matrix
	S2     float64     // residual variance SSR/dof; 0 when dof == 0
	Dof    int         // n − k, clamped at 0
	R2     float64     // coefficient of determination on the training set
	N      int         // observations
}

// LeastSquares fits y ≈ X·coef with X given row-major (one row per
// observation). When the normal matrix is singular — collinear
// features or too few observations — it retries with a tiny ridge
// term proportional to the matrix trace, which keeps corner-seeded
// planner fits usable instead of erroring out; a genuinely empty or
// zero design still returns an error.
func LeastSquares(X [][]float64, y []float64) (*LSFit, error) {
	n := len(X)
	if n == 0 || n != len(y) {
		return nil, fmt.Errorf("stats: least squares needs matching non-empty X (%d rows) and y (%d)", n, len(y))
	}
	k := len(X[0])
	if k == 0 {
		return nil, fmt.Errorf("stats: least squares with zero features")
	}
	for i, row := range X {
		if len(row) != k {
			return nil, fmt.Errorf("stats: ragged design matrix (row %d has %d features, want %d)", i, len(row), k)
		}
	}

	// Normal equations: A = XᵀX, b = Xᵀy.
	a := make([][]float64, k)
	b := make([]float64, k)
	trace := 0.0
	for i := 0; i < k; i++ {
		a[i] = make([]float64, k)
		for j := 0; j < k; j++ {
			s := 0.0
			for r := 0; r < n; r++ {
				s += X[r][i] * X[r][j]
			}
			a[i][j] = s
		}
		trace += a[i][i]
		s := 0.0
		for r := 0; r < n; r++ {
			s += X[r][i] * y[r]
		}
		b[i] = s
	}
	if trace == 0 {
		return nil, fmt.Errorf("stats: least squares on an all-zero design")
	}

	inv, err := invert(a)
	if err != nil {
		// Ridge fallback: damp the diagonal just enough to make the
		// system solvable without visibly moving well-determined
		// coefficients.
		lambda := 1e-9 * trace / float64(k)
		for i := 0; i < k; i++ {
			a[i][i] += lambda
		}
		if inv, err = invert(a); err != nil {
			return nil, fmt.Errorf("stats: singular normal matrix: %v", err)
		}
	}

	coef := make([]float64, k)
	for i := 0; i < k; i++ {
		for j := 0; j < k; j++ {
			coef[i] += inv[i][j] * b[j]
		}
	}

	// Residuals, R² and the pooled residual variance.
	var ssr, sst, ybar float64
	for _, v := range y {
		ybar += v
	}
	ybar /= float64(n)
	for r := 0; r < n; r++ {
		pred := 0.0
		for j := 0; j < k; j++ {
			pred += X[r][j] * coef[j]
		}
		d := y[r] - pred
		ssr += d * d
		dm := y[r] - ybar
		sst += dm * dm
	}
	fit := &LSFit{Coef: coef, XtXInv: inv, N: n}
	fit.Dof = n - k
	if fit.Dof < 0 {
		fit.Dof = 0
	}
	if fit.Dof > 0 {
		fit.S2 = ssr / float64(fit.Dof)
	}
	switch {
	case sst > 0:
		fit.R2 = 1 - ssr/sst
	case ssr == 0:
		fit.R2 = 1
	}
	return fit, nil
}

// Predict evaluates the fitted model at feature vector x.
func (f *LSFit) Predict(x []float64) float64 {
	if len(x) != len(f.Coef) {
		panic(fmt.Sprintf("stats: predict with %d features on a %d-feature fit", len(x), len(f.Coef)))
	}
	p := 0.0
	for j, c := range f.Coef {
		p += c * x[j]
	}
	return p
}

// PredVar returns the prediction variance s²·(1 + xᵀ(XᵀX)⁻¹x) at x.
// With zero residual degrees of freedom it returns 0 — the caller
// decides whether an exactly-determined fit deserves trust.
func (f *LSFit) PredVar(x []float64) float64 {
	if f.S2 == 0 {
		return 0
	}
	lev := 0.0
	for i := range x {
		row := 0.0
		for j := range x {
			row += f.XtXInv[i][j] * x[j]
		}
		lev += x[i] * row
	}
	if lev < 0 {
		lev = 0
	}
	return f.S2 * (1 + lev)
}

// invert returns the inverse of square matrix a by Gauss-Jordan
// elimination with partial pivoting, without modifying a.
func invert(a [][]float64) ([][]float64, error) {
	k := len(a)
	// Augmented working copy [a | I].
	w := make([][]float64, k)
	for i := 0; i < k; i++ {
		w[i] = make([]float64, 2*k)
		copy(w[i], a[i])
		w[i][k+i] = 1
	}
	for col := 0; col < k; col++ {
		pivot, best := -1, 0.0
		for r := col; r < k; r++ {
			if v := math.Abs(w[r][col]); v > best {
				pivot, best = r, v
			}
		}
		if pivot < 0 || best < 1e-300 {
			return nil, fmt.Errorf("pivot %d is numerically zero", col)
		}
		w[col], w[pivot] = w[pivot], w[col]
		pv := w[col][col]
		for j := 0; j < 2*k; j++ {
			w[col][j] /= pv
		}
		for r := 0; r < k; r++ {
			if r == col || w[r][col] == 0 {
				continue
			}
			f := w[r][col]
			for j := 0; j < 2*k; j++ {
				w[r][j] -= f * w[col][j]
			}
		}
	}
	inv := make([][]float64, k)
	for i := 0; i < k; i++ {
		inv[i] = w[i][k : 2*k : 2*k]
	}
	return inv, nil
}
