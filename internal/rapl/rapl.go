// Package rapl emulates the Intel Running Average Power Limit (RAPL)
// energy-reporting interface the paper reads through PAPI.
//
// The emulation is register-accurate where it matters to measurement
// code: a MSR_RAPL_POWER_UNIT register whose ENERGY_STATUS_UNITS field
// declares the energy quantum (2⁻¹⁶ J ≈ 15.3 µJ by default, the
// Haswell value), and 32-bit wrapping ENERGY_STATUS counters for the
// PKG, PP0 and DRAM planes. Consumers must apply the unit register and
// correct for wraparound exactly as they would against real silicon —
// internal/papi does, and its tests exercise the wrap path.
//
// Energy enters the device from the machine power model: the simulator
// (or a live run) advances the device through (duration, plane-power)
// segments and the device integrates them into counter units.
package rapl

import (
	"fmt"
	"math"

	"capscale/internal/hw"
)

// MSR addresses, as on real Intel parts (and as listed in
// /dev/cpu/*/msr consumers like PAPI's RAPL component).
const (
	MSRPowerUnit        = 0x606
	MSRPkgEnergyStatus  = 0x611
	MSRDramEnergyStatus = 0x619
	MSRPP0EnergyStatus  = 0x639
)

// Plane identifies one RAPL power plane.
type Plane int

const (
	// PlanePKG is the whole processor package (includes the cores).
	PlanePKG Plane = iota
	// PlanePP0 is power plane 0: the cores.
	PlanePP0
	// PlaneDRAM is the memory DIMMs.
	PlaneDRAM
	numPlanes
)

var planeNames = [...]string{"PKG", "PP0", "DRAM"}

func (p Plane) String() string {
	if p < 0 || p >= numPlanes {
		return fmt.Sprintf("Plane(%d)", int(p))
	}
	return planeNames[p]
}

// Planes lists every emulated plane.
func Planes() []Plane { return []Plane{PlanePKG, PlanePP0, PlaneDRAM} }

// defaultESU is the ENERGY_STATUS_UNITS exponent: energy unit =
// 1/2^esu joules. 16 is the client-Haswell value (≈15.3 µJ).
const defaultESU = 16

// Device is one emulated processor package's RAPL interface.
type Device struct {
	esu    uint
	totalJ [numPlanes]float64
	// now is the device's notion of elapsed time, for timestamped
	// trace export.
	now float64
	// powerLimitRaw backs MSR_PKG_POWER_LIMIT (see powerlimit.go).
	powerLimitRaw uint64

	// Poll hook (SetPoll): pollFn fires every pollInterval seconds of
	// device time. pollStart/pollCount derive each tick as
	// pollStart + count·interval so long runs accumulate no float
	// drift.
	pollInterval float64
	pollFn       func()
	pollStart    float64
	pollCount    int64
}

// NewDevice returns a device with the Haswell energy unit.
func NewDevice() *Device { return &Device{esu: defaultESU} }

// NewDeviceWithESU returns a device with a custom
// ENERGY_STATUS_UNITS exponent (0 < esu ≤ 31).
func NewDeviceWithESU(esu uint) (*Device, error) {
	if esu == 0 || esu > 31 {
		return nil, fmt.Errorf("rapl: ESU exponent %d out of range (1..31)", esu)
	}
	return &Device{esu: esu}, nil
}

// EnergyUnit returns the joules represented by one counter increment.
func (d *Device) EnergyUnit() float64 { return 1 / math.Pow(2, float64(d.esu)) }

// Advance integrates plane power p over dt seconds into the energy
// counters. It panics on negative dt (time does not run backwards).
// When a poller is registered (SetPoll), the integration is split at
// every poll tick inside the interval so the poller observes the
// counters exactly as a timer thread on real silicon would —
// including mid-segment, which is what makes wrap correction across
// long constant-power stretches possible.
func (d *Device) Advance(dt float64, p hw.PlanePower) {
	if dt < 0 {
		panic(fmt.Sprintf("rapl: negative interval %v", dt))
	}
	if d.pollFn == nil {
		d.integrate(dt, p)
		d.now += dt
		return
	}
	end := d.now + dt
	for {
		tick := d.pollStart + float64(d.pollCount+1)*d.pollInterval
		if tick > end {
			break
		}
		if step := tick - d.now; step > 0 {
			d.integrate(step, p)
		}
		d.now = tick
		d.pollCount++
		d.pollFn()
	}
	if step := end - d.now; step > 0 {
		d.integrate(step, p)
	}
	d.now = end
}

// integrate accumulates energy without touching the clock.
func (d *Device) integrate(dt float64, p hw.PlanePower) {
	d.totalJ[PlanePKG] += p.PKG * dt
	d.totalJ[PlanePP0] += p.PP0 * dt
	d.totalJ[PlaneDRAM] += p.DRAM * dt
}

// SetPoll registers fn to be invoked every interval seconds of device
// time, starting one interval after the current instant — the virtual
// equivalent of the timer thread a PAPI-based monitor runs. A
// non-positive interval (or nil fn) removes the poller.
func (d *Device) SetPoll(interval float64, fn func()) {
	if interval <= 0 || fn == nil {
		d.pollInterval, d.pollFn = 0, nil
		return
	}
	d.pollInterval, d.pollFn = interval, fn
	d.pollStart = d.now
	d.pollCount = 0
}

// Now returns the device's elapsed time in seconds.
func (d *Device) Now() float64 { return d.now }

// TotalJoules returns the exact accumulated energy of a plane — ground
// truth for validating measurement code, not reachable through the MSR
// interface.
func (d *Device) TotalJoules(p Plane) float64 {
	if p < 0 || p >= numPlanes {
		panic(fmt.Sprintf("rapl: bad plane %d", int(p)))
	}
	return d.totalJ[p]
}

// counter returns the 32-bit wrapped ENERGY_STATUS value for a plane.
func (d *Device) counter(p Plane) uint64 {
	units := uint64(d.totalJ[p] / d.EnergyUnit())
	return units & 0xFFFFFFFF
}

// ReadMSR emulates reading a model-specific register, the way the
// msr(4) device or the perf events sysfs interface exposes RAPL.
func (d *Device) ReadMSR(addr uint32) (uint64, error) {
	switch addr {
	case MSRPowerUnit:
		// Bits 12:8 hold ENERGY_STATUS_UNITS; power and time unit
		// fields are filled with their documented Haswell defaults.
		const powerUnits = 0x3 // 1/8 W
		const timeUnits = 0xA  // 976 µs
		return powerUnits | uint64(d.esu)<<8 | timeUnits<<16, nil
	case MSRPkgEnergyStatus:
		return d.counter(PlanePKG), nil
	case MSRPP0EnergyStatus:
		return d.counter(PlanePP0), nil
	case MSRDramEnergyStatus:
		return d.counter(PlaneDRAM), nil
	case MSRPkgPowerLimit:
		return d.readPowerLimitMSR(), nil
	default:
		return 0, fmt.Errorf("rapl: unimplemented MSR 0x%x", addr)
	}
}

// EnergyUnitFromPowerUnitMSR decodes the ENERGY_STATUS_UNITS field of
// a MSR_RAPL_POWER_UNIT value into joules per count — the decode every
// RAPL consumer must perform.
func EnergyUnitFromPowerUnitMSR(v uint64) float64 {
	esu := (v >> 8) & 0x1F
	return 1 / math.Pow(2, float64(esu))
}

// Meter accumulates wrap-corrected energy readings from a device, the
// way a PAPI-style consumer polls ENERGY_STATUS. Sample must be called
// at least once per counter wrap period (≈65 kJ at the default unit;
// over 20 minutes at 50 W) or energy is lost exactly as it would be on
// hardware.
type Meter struct {
	dev     *Device
	started bool
	last    [numPlanes]uint64
	accum   [numPlanes]float64 // joules
}

// NewMeter returns a meter for dev. Call Start before sampling.
func NewMeter(dev *Device) *Meter { return &Meter{dev: dev} }

// Start snapshots the counters; subsequent samples measure energy
// relative to this point.
func (m *Meter) Start() {
	for _, p := range Planes() {
		m.last[p] = m.dev.counter(p)
		m.accum[p] = 0
	}
	m.started = true
}

// Sample reads the counters, corrects 32-bit wraparound, and
// accumulates the deltas. It panics if Start was never called.
func (m *Meter) Sample() {
	if !m.started {
		panic("rapl: Meter.Sample before Start")
	}
	unit := m.dev.EnergyUnit()
	for _, p := range Planes() {
		cur := m.dev.counter(p)
		delta := (cur - m.last[p]) & 0xFFFFFFFF
		m.accum[p] += float64(delta) * unit
		m.last[p] = cur
	}
}

// Joules returns the wrap-corrected energy accumulated since Start.
func (m *Meter) Joules(p Plane) float64 {
	if p < 0 || p >= numPlanes {
		panic(fmt.Sprintf("rapl: bad plane %d", int(p)))
	}
	return m.accum[p]
}
