// Package rapl emulates the Intel Running Average Power Limit (RAPL)
// energy-reporting interface the paper reads through PAPI.
//
// The emulation is register-accurate where it matters to measurement
// code: a MSR_RAPL_POWER_UNIT register whose ENERGY_STATUS_UNITS field
// declares the energy quantum (2⁻¹⁶ J ≈ 15.3 µJ by default, the
// Haswell value), and 32-bit wrapping ENERGY_STATUS counters for the
// PKG, PP0 and DRAM planes. Consumers must apply the unit register and
// correct for wraparound exactly as they would against real silicon —
// internal/papi does, and its tests exercise the wrap path.
//
// Energy enters the device from the machine power model: the simulator
// (or a live run) advances the device through (duration, plane-power)
// segments and the device integrates them into counter units.
package rapl

import (
	"fmt"
	"math"

	"capscale/internal/hw"
)

// MSR addresses, as on real Intel parts (and as listed in
// /dev/cpu/*/msr consumers like PAPI's RAPL component).
const (
	MSRPowerUnit        = 0x606
	MSRPkgEnergyStatus  = 0x611
	MSRDramEnergyStatus = 0x619
	MSRPP0EnergyStatus  = 0x639
	// The NIC and switch ENERGY_STATUS registers are this emulation's
	// extension for distributed runs: RAPL-like 32-bit wrapping
	// counters for the interconnect planes, modeled on the PSYS
	// (platform) counter at 0x64D that covers energy outside the
	// package on real Skylake+ parts.
	MSRNicEnergyStatus    = 0x64C
	MSRSwitchEnergyStatus = 0x64D
)

// Plane identifies one RAPL power plane.
type Plane int

const (
	// PlanePKG is the whole processor package (includes the cores).
	PlanePKG Plane = iota
	// PlanePP0 is power plane 0: the cores.
	PlanePP0
	// PlaneDRAM is the memory DIMMs.
	PlaneDRAM
	// PlaneNIC is the nodes' network adapters — a RAPL-like plane the
	// distributed monitor samples; always zero on single-node runs.
	PlaneNIC
	// PlaneSwitch is the fabric's switching tiers, the PSYS-style
	// "everything else" plane of a cluster.
	PlaneSwitch
	numPlanes
)

// NumPlanes is the total emulated plane count (node + interconnect),
// for consumers that size per-plane state arrays.
const NumPlanes = int(numPlanes)

var planeNames = [...]string{"PKG", "PP0", "DRAM", "NIC", "SWITCH"}

func (p Plane) String() string {
	if p < 0 || p >= numPlanes {
		return fmt.Sprintf("Plane(%d)", int(p))
	}
	return planeNames[p]
}

// Planes lists the node-local planes real RAPL exposes — the set a
// single-node measurement samples.
func Planes() []Plane { return []Plane{PlanePKG, PlanePP0, PlaneDRAM} }

// ClusterPlanes lists every emulated plane including the interconnect
// extensions — the set a distributed measurement samples.
func ClusterPlanes() []Plane {
	return []Plane{PlanePKG, PlanePP0, PlaneDRAM, PlaneNIC, PlaneSwitch}
}

// defaultESU is the ENERGY_STATUS_UNITS exponent: energy unit =
// 1/2^esu joules. 16 is the client-Haswell value (≈15.3 µJ).
const defaultESU = 16

// CounterFault intercepts wrapped ENERGY_STATUS counter reads: it
// receives the true 32-bit wrapped value and returns what the
// consumer observes, or an error modelling a failed MSR read. A fault
// injector (internal/faults) installs one; nil (the default) costs
// the read path nothing.
type CounterFault func(p Plane, wrapped uint64) (uint64, error)

// PollJitterFn perturbs poll-tick timing: it returns an offset in
// seconds added to tick number `tick` of nominal period `interval`.
// The device clamps offsets into [0, interval) so jittered ticks stay
// strictly monotone.
type PollJitterFn func(tick int64, interval float64) float64

// Device is one emulated processor package's RAPL interface.
type Device struct {
	esu    uint
	totalJ [numPlanes]float64
	// now is the device's notion of elapsed time, for timestamped
	// trace export.
	now float64
	// powerLimitRaw backs MSR_PKG_POWER_LIMIT (see powerlimit.go).
	powerLimitRaw uint64

	// Poll hook (SetPoll): pollFn fires every pollInterval seconds of
	// device time. pollStart/pollCount derive each tick as
	// pollStart + count·interval so long runs accumulate no float
	// drift.
	pollInterval float64
	pollFn       func()
	pollStart    float64
	pollCount    int64

	// Fault hooks (nil = clean silicon).
	counterFault CounterFault
	pollJitter   PollJitterFn
	// jitterOff caches the current tick's jitter draw so re-evaluating
	// the tick across Advance calls does not re-roll it.
	jitterOff   float64
	jitterValid bool
}

// NewDevice returns a device with the Haswell energy unit.
func NewDevice() *Device { return &Device{esu: defaultESU} }

// NewDeviceWithESU returns a device with a custom
// ENERGY_STATUS_UNITS exponent (0 < esu ≤ 31).
func NewDeviceWithESU(esu uint) (*Device, error) {
	if esu == 0 || esu > 31 {
		return nil, fmt.Errorf("rapl: ESU exponent %d out of range (1..31)", esu)
	}
	return &Device{esu: esu}, nil
}

// EnergyUnit returns the joules represented by one counter increment.
func (d *Device) EnergyUnit() float64 { return 1 / math.Pow(2, float64(d.esu)) }

// Advance integrates plane power p over dt seconds into the energy
// counters. It panics on negative dt (time does not run backwards).
// When a poller is registered (SetPoll), the integration is split at
// every poll tick inside the interval so the poller observes the
// counters exactly as a timer thread on real silicon would —
// including mid-segment, which is what makes wrap correction across
// long constant-power stretches possible.
func (d *Device) Advance(dt float64, p hw.PlanePower) {
	if dt < 0 {
		panic(fmt.Sprintf("rapl: negative interval %v", dt))
	}
	if d.pollFn == nil {
		d.integrate(dt, p)
		d.now += dt
		return
	}
	end := d.now + dt
	for {
		tick := d.pollStart + float64(d.pollCount+1)*d.pollInterval + d.tickJitter()
		if tick > end {
			break
		}
		if step := tick - d.now; step > 0 {
			d.integrate(step, p)
		}
		d.now = tick
		d.pollCount++
		d.jitterValid = false
		d.pollFn()
	}
	if step := end - d.now; step > 0 {
		d.integrate(step, p)
	}
	d.now = end
}

// integrate accumulates energy without touching the clock.
func (d *Device) integrate(dt float64, p hw.PlanePower) {
	d.totalJ[PlanePKG] += p.PKG * dt
	d.totalJ[PlanePP0] += p.PP0 * dt
	d.totalJ[PlaneDRAM] += p.DRAM * dt
	d.totalJ[PlaneNIC] += p.NIC * dt
	d.totalJ[PlaneSwitch] += p.Switch * dt
}

// SetPoll registers fn to be invoked every interval seconds of device
// time, starting one interval after the current instant — the virtual
// equivalent of the timer thread a PAPI-based monitor runs.
// SetPoll(0, nil) removes the poller. Mixed arguments are caller
// bugs and panic with a descriptive message: a positive interval with
// a nil callback would silently never fire, and a registered callback
// with a non-positive interval would fire never (or, worse, be taken
// for a removal).
func (d *Device) SetPoll(interval float64, fn func()) {
	if interval <= 0 && fn == nil {
		d.pollInterval, d.pollFn = 0, nil
		d.jitterValid = false
		return
	}
	if fn == nil {
		panic(fmt.Sprintf("rapl: SetPoll(%v, nil): nil callback with a positive interval (use SetPoll(0, nil) to remove the poller)", interval))
	}
	if interval <= 0 {
		panic(fmt.Sprintf("rapl: SetPoll: non-positive interval %v with a live callback (use SetPoll(0, nil) to remove the poller)", interval))
	}
	d.pollInterval, d.pollFn = interval, fn
	d.pollStart = d.now
	d.pollCount = 0
	d.jitterValid = false
}

// SetCounterFault installs (or, with nil, removes) the counter-read
// fault hook. Consumers see faulted values through ReadMSR and
// Meter.SamplePlane; the device's own integration and TotalJoules
// ground truth are never affected.
func (d *Device) SetCounterFault(f CounterFault) { d.counterFault = f }

// SetPollJitter installs (or, with nil, removes) the poll-tick jitter
// hook. Offsets are clamped into [0, interval) so ticks stay strictly
// monotone and never regress past device time.
func (d *Device) SetPollJitter(f PollJitterFn) {
	d.pollJitter = f
	d.jitterValid = false
}

// tickJitter returns the (cached) jitter offset of the next poll
// tick, clamped to strictly less than one interval.
func (d *Device) tickJitter() float64 {
	if d.pollJitter == nil {
		return 0
	}
	if !d.jitterValid {
		off := d.pollJitter(d.pollCount+1, d.pollInterval)
		if off < 0 {
			off = 0
		}
		if max := d.pollInterval * 0.999; off > max {
			off = max
		}
		d.jitterOff, d.jitterValid = off, true
	}
	return d.jitterOff
}

// Now returns the device's elapsed time in seconds.
func (d *Device) Now() float64 { return d.now }

// TotalJoules returns the exact accumulated energy of a plane — ground
// truth for validating measurement code, not reachable through the MSR
// interface.
func (d *Device) TotalJoules(p Plane) float64 {
	if p < 0 || p >= numPlanes {
		panic(fmt.Sprintf("rapl: bad plane %d", int(p)))
	}
	return d.totalJ[p]
}

// counter returns the 32-bit wrapped ENERGY_STATUS value for a plane.
func (d *Device) counter(p Plane) uint64 {
	units := uint64(d.totalJ[p] / d.EnergyUnit())
	return units & 0xFFFFFFFF
}

// readCounter returns the wrapped counter as a consumer observes it:
// the true value routed through any installed fault hook.
func (d *Device) readCounter(p Plane) (uint64, error) {
	raw := d.counter(p)
	if d.counterFault == nil {
		return raw, nil
	}
	return d.counterFault(p, raw)
}

// ReadMSR emulates reading a model-specific register, the way the
// msr(4) device or the perf events sysfs interface exposes RAPL.
func (d *Device) ReadMSR(addr uint32) (uint64, error) {
	switch addr {
	case MSRPowerUnit:
		// Bits 12:8 hold ENERGY_STATUS_UNITS; power and time unit
		// fields are filled with their documented Haswell defaults.
		const powerUnits = 0x3 // 1/8 W
		const timeUnits = 0xA  // 976 µs
		return powerUnits | uint64(d.esu)<<8 | timeUnits<<16, nil
	case MSRPkgEnergyStatus:
		return d.readCounter(PlanePKG)
	case MSRPP0EnergyStatus:
		return d.readCounter(PlanePP0)
	case MSRDramEnergyStatus:
		return d.readCounter(PlaneDRAM)
	case MSRNicEnergyStatus:
		return d.readCounter(PlaneNIC)
	case MSRSwitchEnergyStatus:
		return d.readCounter(PlaneSwitch)
	case MSRPkgPowerLimit:
		return d.readPowerLimitMSR(), nil
	default:
		return 0, fmt.Errorf("rapl: unimplemented MSR 0x%x", addr)
	}
}

// EnergyUnitFromPowerUnitMSR decodes the ENERGY_STATUS_UNITS field of
// a MSR_RAPL_POWER_UNIT value into joules per count — the decode every
// RAPL consumer must perform.
func EnergyUnitFromPowerUnitMSR(v uint64) float64 {
	esu := (v >> 8) & 0x1F
	return 1 / math.Pow(2, float64(esu))
}

// Meter accumulates wrap-corrected energy readings from a device, the
// way a PAPI-style consumer polls ENERGY_STATUS. Sample must be called
// at least once per counter wrap period (≈65 kJ at the default unit;
// over 20 minutes at 50 W) or energy is lost exactly as it would be on
// hardware.
type Meter struct {
	dev     *Device
	started bool
	last    [numPlanes]uint64
	accum   [numPlanes]float64 // joules
}

// NewMeter returns a meter for dev. Call Start before sampling.
func NewMeter(dev *Device) *Meter { return &Meter{dev: dev} }

// Start snapshots the counters; subsequent samples measure energy
// relative to this point. The snapshot bypasses any fault hook: the
// measurement window opens on the true counter values, and every
// fault thereafter is attributable to the read path.
func (m *Meter) Start() {
	for _, p := range ClusterPlanes() {
		m.last[p] = m.dev.counter(p)
		m.accum[p] = 0
	}
	m.started = true
}

// SamplePlane reads one plane's counter through any installed fault
// hook and accumulates its wrap-corrected delta. On error the plane's
// accumulation is untouched; because ENERGY_STATUS is cumulative, a
// later successful sample recovers the energy — unless a wrap passes
// in between, which is exactly the loss mode the monitor's retry and
// quarantine machinery bounds. It panics if Start was never called.
func (m *Meter) SamplePlane(p Plane) error {
	if !m.started {
		panic("rapl: Meter.Sample before Start")
	}
	if p < 0 || p >= numPlanes {
		panic(fmt.Sprintf("rapl: bad plane %d", int(p)))
	}
	cur, err := m.dev.readCounter(p)
	if err != nil {
		return fmt.Errorf("rapl: sampling %v: %w", p, err)
	}
	delta := (cur - m.last[p]) & 0xFFFFFFFF
	m.accum[p] += float64(delta) * m.dev.EnergyUnit()
	m.last[p] = cur
	return nil
}

// Sample reads every plane's counter, corrects 32-bit wraparound, and
// accumulates the deltas. Planes whose read fails keep their previous
// accumulation; the first error is returned after every plane has
// been attempted. It panics if Start was never called.
func (m *Meter) Sample() error {
	var first error
	for _, p := range Planes() {
		if err := m.SamplePlane(p); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// Joules returns the wrap-corrected energy accumulated since Start.
func (m *Meter) Joules(p Plane) float64 {
	if p < 0 || p >= numPlanes {
		panic(fmt.Sprintf("rapl: bad plane %d", int(p)))
	}
	return m.accum[p]
}
