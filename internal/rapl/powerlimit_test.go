package rapl

import (
	"math"
	"testing"

	"capscale/internal/hw"
)

func TestPowerLimitDisabledByDefault(t *testing.T) {
	d := NewDevice()
	if _, enabled := d.PowerLimit(); enabled {
		t.Fatal("limit enabled on a fresh device")
	}
	v, err := d.ReadMSR(MSRPkgPowerLimit)
	if err != nil || v != 0 {
		t.Fatalf("fresh limit MSR %v %v", v, err)
	}
}

func TestSetPowerLimitRoundTrip(t *testing.T) {
	d := NewDevice()
	d.SetPowerLimit(32.5)
	w, enabled := d.PowerLimit()
	if !enabled {
		t.Fatal("limit not enabled")
	}
	// Quantized to 1/8 W.
	if math.Abs(w-32.5) > powerUnit/2 {
		t.Fatalf("limit %v want ~32.5", w)
	}
}

func TestSetPowerLimitDisable(t *testing.T) {
	d := NewDevice()
	d.SetPowerLimit(40)
	d.SetPowerLimit(0)
	if _, enabled := d.PowerLimit(); enabled {
		t.Fatal("limit still enabled after disable")
	}
}

func TestWriteMSRPowerLimit(t *testing.T) {
	d := NewDevice()
	// 30 W = 240 counts, enabled.
	raw := uint64(240) | plEnableBit
	if err := d.WriteMSR(MSRPkgPowerLimit, raw); err != nil {
		t.Fatal(err)
	}
	w, enabled := d.PowerLimit()
	if !enabled || w != 30 {
		t.Fatalf("limit %v enabled=%v", w, enabled)
	}
	got, err := d.ReadMSR(MSRPkgPowerLimit)
	if err != nil || got != raw {
		t.Fatalf("read back %x want %x", got, raw)
	}
}

func TestPowerLimitDrivesDVFS(t *testing.T) {
	// End to end: a limit programmed through the MSR interface feeds
	// the machine model's frequency derating, and the derated machine
	// respects the budget.
	d := NewDevice()
	if err := d.WriteMSR(MSRPkgPowerLimit, uint64(35*8)|plEnableBit); err != nil {
		t.Fatal(err)
	}
	limit, enabled := d.PowerLimit()
	if !enabled {
		t.Fatal("limit not enabled")
	}
	m := hw.HaswellE31225()
	capped, err := m.DeratedForCap(limit)
	if err != nil {
		t.Fatal(err)
	}
	if capped.MaxPower() > limit+1e-9 {
		t.Fatalf("derated max %v exceeds programmed limit %v", capped.MaxPower(), limit)
	}
}

func TestWriteMSRReadOnlyRegisters(t *testing.T) {
	d := NewDevice()
	for _, addr := range []uint32{MSRPowerUnit, MSRPkgEnergyStatus, MSRPP0EnergyStatus, MSRDramEnergyStatus} {
		if err := d.WriteMSR(addr, 1); err == nil {
			t.Errorf("MSR 0x%x writable", addr)
		}
	}
	if err := d.WriteMSR(0xDEAD, 1); err == nil {
		t.Error("unknown MSR writable")
	}
}
