package rapl

import (
	"fmt"
	"math"
)

// MSR_PKG_POWER_LIMIT: the register firmware and tools like
// powercap/RAPL write to enforce a package power budget. The emulation
// implements the PL1 fields (power limit in power units, enable bit),
// which is what a DVFS governor consumes; internal/hw.DeratedForCap is
// the frequency response to it.
const MSRPkgPowerLimit = 0x610

const (
	plEnableBit = 1 << 15
	plPowerMask = 0x7FFF
)

// powerUnit is watts per count in the POWER_UNITS field the device
// reports (1/8 W, the Haswell default also encoded in MSRPowerUnit).
const powerUnit = 1.0 / 8

// WriteMSR emulates writing a model-specific register. Only
// MSR_PKG_POWER_LIMIT is writable; energy counters are read-only as on
// real parts.
func (d *Device) WriteMSR(addr uint32, value uint64) error {
	switch addr {
	case MSRPkgPowerLimit:
		d.powerLimitRaw = value
		return nil
	case MSRPowerUnit, MSRPkgEnergyStatus, MSRPP0EnergyStatus, MSRDramEnergyStatus:
		return fmt.Errorf("rapl: MSR 0x%x is read-only", addr)
	default:
		return fmt.Errorf("rapl: unimplemented MSR 0x%x", addr)
	}
}

// SetPowerLimit programs an enabled PL1 limit of the given watts,
// quantized to the device's power unit. Non-positive watts disable the
// limit.
func (d *Device) SetPowerLimit(watts float64) {
	if watts <= 0 {
		d.powerLimitRaw = 0
		return
	}
	counts := uint64(math.Round(watts/powerUnit)) & plPowerMask
	d.powerLimitRaw = counts | plEnableBit
}

// PowerLimit returns the programmed PL1 limit in watts and whether it
// is enabled.
func (d *Device) PowerLimit() (watts float64, enabled bool) {
	if d.powerLimitRaw&plEnableBit == 0 {
		return 0, false
	}
	return float64(d.powerLimitRaw&plPowerMask) * powerUnit, true
}

// readPowerLimitMSR is the read path for MSRPkgPowerLimit.
func (d *Device) readPowerLimitMSR() uint64 { return d.powerLimitRaw }
