package rapl

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"capscale/internal/hw"
)

func TestPlaneNames(t *testing.T) {
	if PlanePKG.String() != "PKG" || PlanePP0.String() != "PP0" || PlaneDRAM.String() != "DRAM" {
		t.Fatal("plane names")
	}
	if Plane(9).String() != "Plane(9)" {
		t.Fatal("out of range plane name")
	}
	if len(Planes()) != 3 {
		t.Fatal("planes list")
	}
}

func TestEnergyUnitDefault(t *testing.T) {
	d := NewDevice()
	// 2^-16 J ≈ 15.26 µJ, the Haswell quantum.
	if got := d.EnergyUnit(); math.Abs(got-1.0/65536) > 1e-18 {
		t.Fatalf("unit %v", got)
	}
}

func TestCustomESU(t *testing.T) {
	d, err := NewDeviceWithESU(14)
	if err != nil {
		t.Fatal(err)
	}
	if got := d.EnergyUnit(); math.Abs(got-1.0/16384) > 1e-18 {
		t.Fatalf("unit %v", got)
	}
	if _, err := NewDeviceWithESU(0); err == nil {
		t.Fatal("ESU 0 accepted")
	}
	if _, err := NewDeviceWithESU(32); err == nil {
		t.Fatal("ESU 32 accepted")
	}
}

func TestPowerUnitMSRDecode(t *testing.T) {
	d := NewDevice()
	v, err := d.ReadMSR(MSRPowerUnit)
	if err != nil {
		t.Fatal(err)
	}
	if got := EnergyUnitFromPowerUnitMSR(v); got != d.EnergyUnit() {
		t.Fatalf("decoded unit %v want %v", got, d.EnergyUnit())
	}
}

func TestAdvanceAccumulates(t *testing.T) {
	d := NewDevice()
	d.Advance(2, hw.PlanePower{PKG: 30, PP0: 20, DRAM: 3})
	if got := d.TotalJoules(PlanePKG); got != 60 {
		t.Fatalf("PKG %v", got)
	}
	if got := d.TotalJoules(PlanePP0); got != 40 {
		t.Fatalf("PP0 %v", got)
	}
	if got := d.TotalJoules(PlaneDRAM); got != 6 {
		t.Fatalf("DRAM %v", got)
	}
	if d.Now() != 2 {
		t.Fatalf("now %v", d.Now())
	}
}

func TestAdvanceNegativePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	NewDevice().Advance(-1, hw.PlanePower{})
}

func TestCounterQuantization(t *testing.T) {
	d := NewDevice()
	// Less than one unit: counter must stay at zero.
	d.Advance(1, hw.PlanePower{PKG: d.EnergyUnit() / 2})
	v, err := d.ReadMSR(MSRPkgEnergyStatus)
	if err != nil {
		t.Fatal(err)
	}
	if v != 0 {
		t.Fatalf("sub-unit energy visible: %d", v)
	}
	// One more half-unit crosses the quantum.
	d.Advance(1, hw.PlanePower{PKG: d.EnergyUnit() / 2})
	v, _ = d.ReadMSR(MSRPkgEnergyStatus)
	if v != 1 {
		t.Fatalf("counter %d want 1", v)
	}
}

func TestReadMSRUnknownAddr(t *testing.T) {
	if _, err := NewDevice().ReadMSR(0x1234); err == nil {
		t.Fatal("unknown MSR accepted")
	}
}

func TestCounterWraps32Bits(t *testing.T) {
	d := NewDevice()
	// Just under 2^32 units, then push over.
	unit := d.EnergyUnit()
	d.Advance(1, hw.PlanePower{PKG: (math.Pow(2, 32) - 10) * unit})
	v1, _ := d.ReadMSR(MSRPkgEnergyStatus)
	if v1 < 0xFFFFFFF0 {
		t.Fatalf("counter %x not near wrap", v1)
	}
	d.Advance(1, hw.PlanePower{PKG: 20 * unit})
	v2, _ := d.ReadMSR(MSRPkgEnergyStatus)
	if v2 >= v1 {
		t.Fatalf("counter did not wrap: %x -> %x", v1, v2)
	}
	if v2 > 20 {
		t.Fatalf("wrapped counter %d too large", v2)
	}
}

func TestMeterMeasuresEnergy(t *testing.T) {
	d := NewDevice()
	m := NewMeter(d)
	d.Advance(5, hw.PlanePower{PKG: 40, PP0: 25, DRAM: 2}) // pre-Start energy must not count
	m.Start()
	d.Advance(2, hw.PlanePower{PKG: 30, PP0: 20, DRAM: 3})
	m.Sample()
	if got := m.Joules(PlanePKG); math.Abs(got-60) > 0.001 {
		t.Fatalf("PKG joules %v want ~60", got)
	}
	if got := m.Joules(PlanePP0); math.Abs(got-40) > 0.001 {
		t.Fatalf("PP0 joules %v want ~40", got)
	}
	if got := m.Joules(PlaneDRAM); math.Abs(got-6) > 0.001 {
		t.Fatalf("DRAM joules %v want ~6", got)
	}
}

func TestMeterSampleBeforeStartPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	NewMeter(NewDevice()).Sample()
}

func TestMeterCorrectsWraparound(t *testing.T) {
	d := NewDevice()
	m := NewMeter(d)
	unit := d.EnergyUnit()
	// Park the counter near the wrap point, then measure across it.
	d.Advance(1, hw.PlanePower{PKG: (math.Pow(2, 32) - 100) * unit})
	m.Start()
	d.Advance(1, hw.PlanePower{PKG: 200 * unit})
	m.Sample()
	want := 200 * unit
	if got := m.Joules(PlanePKG); math.Abs(got-want)/want > 1e-9 {
		t.Fatalf("wrap-corrected joules %v want %v", got, want)
	}
}

func TestMeterMultipleSamplesAccumulate(t *testing.T) {
	d := NewDevice()
	m := NewMeter(d)
	m.Start()
	for i := 0; i < 10; i++ {
		d.Advance(1, hw.PlanePower{PKG: 25})
		m.Sample()
	}
	if got := m.Joules(PlanePKG); math.Abs(got-250) > 0.01 {
		t.Fatalf("accumulated %v want ~250", got)
	}
}

func TestMeterRestartResets(t *testing.T) {
	d := NewDevice()
	m := NewMeter(d)
	m.Start()
	d.Advance(1, hw.PlanePower{PKG: 100})
	m.Sample()
	m.Start()
	if m.Joules(PlanePKG) != 0 {
		t.Fatal("Start did not reset accumulation")
	}
}

func TestPropertyMeterMatchesGroundTruth(t *testing.T) {
	// However the power varies, frequent sampling recovers total energy
	// to within quantization (one unit per sample).
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		d := NewDevice()
		m := NewMeter(d)
		m.Start()
		n := 1 + rng.Intn(50)
		for i := 0; i < n; i++ {
			d.Advance(rng.Float64()*10, hw.PlanePower{
				PKG:  rng.Float64() * 60,
				PP0:  rng.Float64() * 40,
				DRAM: rng.Float64() * 5,
			})
			m.Sample()
		}
		tol := float64(n+1) * d.EnergyUnit()
		for _, p := range Planes() {
			if math.Abs(m.Joules(p)-d.TotalJoules(p)) > tol {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
