package rapl

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"capscale/internal/hw"
)

func TestPlaneNames(t *testing.T) {
	if PlanePKG.String() != "PKG" || PlanePP0.String() != "PP0" || PlaneDRAM.String() != "DRAM" {
		t.Fatal("plane names")
	}
	if Plane(9).String() != "Plane(9)" {
		t.Fatal("out of range plane name")
	}
	if len(Planes()) != 3 {
		t.Fatal("planes list")
	}
}

func TestEnergyUnitDefault(t *testing.T) {
	d := NewDevice()
	// 2^-16 J ≈ 15.26 µJ, the Haswell quantum.
	if got := d.EnergyUnit(); math.Abs(got-1.0/65536) > 1e-18 {
		t.Fatalf("unit %v", got)
	}
}

func TestCustomESU(t *testing.T) {
	d, err := NewDeviceWithESU(14)
	if err != nil {
		t.Fatal(err)
	}
	if got := d.EnergyUnit(); math.Abs(got-1.0/16384) > 1e-18 {
		t.Fatalf("unit %v", got)
	}
	if _, err := NewDeviceWithESU(0); err == nil {
		t.Fatal("ESU 0 accepted")
	}
	if _, err := NewDeviceWithESU(32); err == nil {
		t.Fatal("ESU 32 accepted")
	}
}

func TestPowerUnitMSRDecode(t *testing.T) {
	d := NewDevice()
	v, err := d.ReadMSR(MSRPowerUnit)
	if err != nil {
		t.Fatal(err)
	}
	if got := EnergyUnitFromPowerUnitMSR(v); got != d.EnergyUnit() {
		t.Fatalf("decoded unit %v want %v", got, d.EnergyUnit())
	}
}

func TestAdvanceAccumulates(t *testing.T) {
	d := NewDevice()
	d.Advance(2, hw.PlanePower{PKG: 30, PP0: 20, DRAM: 3})
	if got := d.TotalJoules(PlanePKG); got != 60 {
		t.Fatalf("PKG %v", got)
	}
	if got := d.TotalJoules(PlanePP0); got != 40 {
		t.Fatalf("PP0 %v", got)
	}
	if got := d.TotalJoules(PlaneDRAM); got != 6 {
		t.Fatalf("DRAM %v", got)
	}
	if d.Now() != 2 {
		t.Fatalf("now %v", d.Now())
	}
}

func TestAdvanceNegativePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	NewDevice().Advance(-1, hw.PlanePower{})
}

func TestCounterQuantization(t *testing.T) {
	d := NewDevice()
	// Less than one unit: counter must stay at zero.
	d.Advance(1, hw.PlanePower{PKG: d.EnergyUnit() / 2})
	v, err := d.ReadMSR(MSRPkgEnergyStatus)
	if err != nil {
		t.Fatal(err)
	}
	if v != 0 {
		t.Fatalf("sub-unit energy visible: %d", v)
	}
	// One more half-unit crosses the quantum.
	d.Advance(1, hw.PlanePower{PKG: d.EnergyUnit() / 2})
	v, _ = d.ReadMSR(MSRPkgEnergyStatus)
	if v != 1 {
		t.Fatalf("counter %d want 1", v)
	}
}

func TestReadMSRUnknownAddr(t *testing.T) {
	if _, err := NewDevice().ReadMSR(0x1234); err == nil {
		t.Fatal("unknown MSR accepted")
	}
}

func TestCounterWraps32Bits(t *testing.T) {
	d := NewDevice()
	// Just under 2^32 units, then push over.
	unit := d.EnergyUnit()
	d.Advance(1, hw.PlanePower{PKG: (math.Pow(2, 32) - 10) * unit})
	v1, _ := d.ReadMSR(MSRPkgEnergyStatus)
	if v1 < 0xFFFFFFF0 {
		t.Fatalf("counter %x not near wrap", v1)
	}
	d.Advance(1, hw.PlanePower{PKG: 20 * unit})
	v2, _ := d.ReadMSR(MSRPkgEnergyStatus)
	if v2 >= v1 {
		t.Fatalf("counter did not wrap: %x -> %x", v1, v2)
	}
	if v2 > 20 {
		t.Fatalf("wrapped counter %d too large", v2)
	}
}

func TestMeterMeasuresEnergy(t *testing.T) {
	d := NewDevice()
	m := NewMeter(d)
	d.Advance(5, hw.PlanePower{PKG: 40, PP0: 25, DRAM: 2}) // pre-Start energy must not count
	m.Start()
	d.Advance(2, hw.PlanePower{PKG: 30, PP0: 20, DRAM: 3})
	m.Sample()
	if got := m.Joules(PlanePKG); math.Abs(got-60) > 0.001 {
		t.Fatalf("PKG joules %v want ~60", got)
	}
	if got := m.Joules(PlanePP0); math.Abs(got-40) > 0.001 {
		t.Fatalf("PP0 joules %v want ~40", got)
	}
	if got := m.Joules(PlaneDRAM); math.Abs(got-6) > 0.001 {
		t.Fatalf("DRAM joules %v want ~6", got)
	}
}

func TestMeterSampleBeforeStartPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	NewMeter(NewDevice()).Sample()
}

func TestMeterCorrectsWraparound(t *testing.T) {
	d := NewDevice()
	m := NewMeter(d)
	unit := d.EnergyUnit()
	// Park the counter near the wrap point, then measure across it.
	d.Advance(1, hw.PlanePower{PKG: (math.Pow(2, 32) - 100) * unit})
	m.Start()
	d.Advance(1, hw.PlanePower{PKG: 200 * unit})
	m.Sample()
	want := 200 * unit
	if got := m.Joules(PlanePKG); math.Abs(got-want)/want > 1e-9 {
		t.Fatalf("wrap-corrected joules %v want %v", got, want)
	}
}

func TestMeterMultipleSamplesAccumulate(t *testing.T) {
	d := NewDevice()
	m := NewMeter(d)
	m.Start()
	for i := 0; i < 10; i++ {
		d.Advance(1, hw.PlanePower{PKG: 25})
		m.Sample()
	}
	if got := m.Joules(PlanePKG); math.Abs(got-250) > 0.01 {
		t.Fatalf("accumulated %v want ~250", got)
	}
}

func TestMeterRestartResets(t *testing.T) {
	d := NewDevice()
	m := NewMeter(d)
	m.Start()
	d.Advance(1, hw.PlanePower{PKG: 100})
	m.Sample()
	m.Start()
	if m.Joules(PlanePKG) != 0 {
		t.Fatal("Start did not reset accumulation")
	}
}

func TestPropertyMeterMatchesGroundTruth(t *testing.T) {
	// However the power varies, frequent sampling recovers total energy
	// to within quantization (one unit per sample).
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		d := NewDevice()
		m := NewMeter(d)
		m.Start()
		n := 1 + rng.Intn(50)
		for i := 0; i < n; i++ {
			d.Advance(rng.Float64()*10, hw.PlanePower{
				PKG:  rng.Float64() * 60,
				PP0:  rng.Float64() * 40,
				DRAM: rng.Float64() * 5,
			})
			m.Sample()
		}
		tol := float64(n+1) * d.EnergyUnit()
		for _, p := range Planes() {
			if math.Abs(m.Joules(p)-d.TotalJoules(p)) > tol {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSetPollTicksInsideAdvance(t *testing.T) {
	d := NewDevice()
	var times []float64
	d.SetPoll(0.5, func() { times = append(times, d.Now()) })
	// One Advance spanning several ticks must fire the poller at each
	// tick, with the counters integrated up to exactly that instant.
	d.Advance(1.6, hw.PlanePower{PKG: 10})
	want := []float64{0.5, 1.0, 1.5}
	if len(times) != len(want) {
		t.Fatalf("ticks at %v want %v", times, want)
	}
	for i, w := range want {
		if math.Abs(times[i]-w) > 1e-12 {
			t.Fatalf("tick %d at %v want %v", i, times[i], w)
		}
	}
	if math.Abs(d.Now()-1.6) > 1e-12 {
		t.Fatalf("clock %v", d.Now())
	}
	if got := d.TotalJoules(PlanePKG); math.Abs(got-16) > 1e-9 {
		t.Fatalf("energy %v", got)
	}
}

func TestSetPollSeesIntermediateCounters(t *testing.T) {
	d := NewDevice()
	var joules []float64
	d.SetPoll(1, func() { joules = append(joules, d.TotalJoules(PlanePKG)) })
	d.Advance(3, hw.PlanePower{PKG: 10})
	if len(joules) != 3 {
		t.Fatalf("%d ticks", len(joules))
	}
	for i, want := range []float64{10, 20, 30} {
		if math.Abs(joules[i]-want) > 1e-9 {
			t.Fatalf("tick %d saw %v J want %v", i, joules[i], want)
		}
	}
}

func TestSetPollNoDriftOverLongRuns(t *testing.T) {
	d := NewDevice()
	n := 0
	d.SetPoll(0.1, func() { n++ })
	// 0.1 is not exactly representable; a naive t += dt poller drifts.
	// 10000 seconds in uneven chunks must yield exactly 100000 ticks,
	// each at pollStart + k·interval.
	for i := 0; i < 10000; i++ {
		d.Advance(0.7, hw.PlanePower{})
		d.Advance(0.3, hw.PlanePower{})
	}
	if n != 100000 {
		t.Fatalf("%d ticks want 100000", n)
	}
}

func TestSetPollRemoval(t *testing.T) {
	d := NewDevice()
	n := 0
	d.SetPoll(1, func() { n++ })
	d.Advance(2, hw.PlanePower{PKG: 1})
	d.SetPoll(0, nil)
	d.Advance(5, hw.PlanePower{PKG: 1})
	if n != 2 {
		t.Fatalf("%d ticks after removal want 2", n)
	}
	if math.Abs(d.TotalJoules(PlanePKG)-7) > 1e-9 {
		t.Fatalf("energy %v", d.TotalJoules(PlanePKG))
	}
}

func TestSetPollMeterRecoversWrappedEnergy(t *testing.T) {
	// The scenario the poll hook exists for: a run whose energy exceeds
	// one 32-bit counter wrap. A meter sampled only at the end loses a
	// full wrap; one sampled from the poll hook recovers ground truth.
	run := func(poll bool) float64 {
		d := NewDevice()
		m := NewMeter(d)
		m.Start()
		if poll {
			d.SetPoll(60, func() { m.Sample() })
		}
		// 100 kJ at 50 W — ~1.5 wraps at the 65.5 kJ wrap period.
		for i := 0; i < 2000; i++ {
			d.Advance(1, hw.PlanePower{PKG: 50})
		}
		m.Sample()
		return m.Joules(PlanePKG)
	}
	wrapJ := math.Pow(2, 32) / 65536.0
	if got := run(false); math.Abs(got-(100000-wrapJ)) > 1 {
		t.Fatalf("unpolled meter measured %v J, expected exactly one wrap lost", got)
	}
	if got := run(true); math.Abs(got-100000) > 0.001 {
		t.Fatalf("polled meter measured %v J want 100000", got)
	}
}
