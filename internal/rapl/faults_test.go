package rapl

import (
	"errors"
	"fmt"
	"strings"
	"testing"

	"capscale/internal/hw"
)

// SetPoll argument validation: mixed removal/registration arguments
// are caller bugs and must panic descriptively instead of silently
// never firing.

func TestSetPollNilCallbackPanics(t *testing.T) {
	d := NewDevice()
	defer func() {
		p := recover()
		if p == nil {
			t.Fatal("SetPoll(0.01, nil) did not panic")
		}
		if msg := fmt.Sprint(p); !strings.Contains(msg, "nil callback") {
			t.Fatalf("panic %q does not describe the nil callback", msg)
		}
	}()
	d.SetPoll(0.01, nil)
}

func TestSetPollNonPositiveIntervalPanics(t *testing.T) {
	for _, interval := range []float64{0, -1} {
		func() {
			d := NewDevice()
			defer func() {
				p := recover()
				if p == nil {
					t.Fatalf("SetPoll(%v, fn) did not panic", interval)
				}
				if msg := fmt.Sprint(p); !strings.Contains(msg, "non-positive interval") {
					t.Fatalf("panic %q does not describe the interval", msg)
				}
			}()
			d.SetPoll(interval, func() {})
		}()
	}
}

func TestSetPollZeroNilRemoves(t *testing.T) {
	d := NewDevice()
	fired := 0
	d.SetPoll(0.01, func() { fired++ })
	d.SetPoll(0, nil) // must not panic
	d.Advance(1, hw.PlanePower{PKG: 10})
	if fired != 0 {
		t.Fatalf("removed poller fired %d times", fired)
	}
}

// Counter fault hook: consumers observe the hook's value, while the
// device's ground-truth accumulation is untouched.
func TestCounterFaultHookPerturbsReadsOnly(t *testing.T) {
	d := NewDevice()
	d.Advance(1, hw.PlanePower{PKG: 100})
	truth := d.TotalJoules(PlanePKG)

	d.SetCounterFault(func(p Plane, wrapped uint64) (uint64, error) {
		if p == PlanePKG {
			return wrapped + 1000, nil
		}
		return wrapped, nil
	})
	v, err := d.ReadMSR(MSRPkgEnergyStatus)
	if err != nil {
		t.Fatal(err)
	}
	want := uint64(truth/d.EnergyUnit())&0xFFFFFFFF + 1000
	if v != want {
		t.Fatalf("faulted read %d want %d", v, want)
	}
	if d.TotalJoules(PlanePKG) != truth {
		t.Fatal("fault hook changed ground truth")
	}

	d.SetCounterFault(nil)
	v2, _ := d.ReadMSR(MSRPkgEnergyStatus)
	if v2 != want-1000 {
		t.Fatalf("removed hook still perturbs: %d", v2)
	}
}

func TestCounterFaultErrorPropagates(t *testing.T) {
	d := NewDevice()
	sentinel := errors.New("injected")
	d.SetCounterFault(func(Plane, uint64) (uint64, error) { return 0, sentinel })
	if _, err := d.ReadMSR(MSRPkgEnergyStatus); !errors.Is(err, sentinel) {
		t.Fatalf("fault error lost: %v", err)
	}

	m := NewMeter(d)
	d.SetCounterFault(nil)
	m.Start()
	d.SetCounterFault(func(Plane, uint64) (uint64, error) { return 0, sentinel })
	d.Advance(1, hw.PlanePower{PKG: 10})
	if err := m.SamplePlane(PlanePKG); !errors.Is(err, sentinel) {
		t.Fatalf("meter did not surface the fault: %v", err)
	}
	// The failed sample must not corrupt the accumulation: a later
	// clean sample still measures the full interval.
	d.SetCounterFault(nil)
	if err := m.SamplePlane(PlanePKG); err != nil {
		t.Fatal(err)
	}
	if got := m.Joules(PlanePKG); got < 9.9 || got > 10.1 {
		t.Fatalf("accumulated %v J after transient failure, want ~10", got)
	}
}

// Meter.Start bypasses the fault hook by design: arming the baseline
// read must always succeed so a fault cannot corrupt the epoch.
func TestMeterStartBypassesFaultHook(t *testing.T) {
	d := NewDevice()
	d.SetCounterFault(func(Plane, uint64) (uint64, error) { return 0, errors.New("boom") })
	m := NewMeter(d)
	m.Start() // must not panic or record a faulted baseline
	d.SetCounterFault(nil)
	d.Advance(1, hw.PlanePower{PKG: 10})
	if err := m.Sample(); err != nil {
		t.Fatal(err)
	}
	if got := m.Joules(PlanePKG); got < 9.9 || got > 10.1 {
		t.Fatalf("measured %v J, want ~10", got)
	}
}

// Poll jitter shifts tick times but never the tick count or monotone
// order, and offsets are clamped below one interval.
func TestPollJitterShiftsTicksMonotonically(t *testing.T) {
	d := NewDevice()
	var times []float64
	d.SetPoll(0.1, func() { times = append(times, d.Now()) })
	d.SetPollJitter(func(tick int64, interval float64) float64 {
		return 0.5 * interval // constant half-interval offset
	})
	d.Advance(1.05, hw.PlanePower{PKG: 10})
	if len(times) != 10 {
		t.Fatalf("fired %d ticks, want 10", len(times))
	}
	for i, tm := range times {
		want := 0.1*float64(i+1) + 0.05
		if diff := tm - want; diff < -1e-9 || diff > 1e-9 {
			t.Fatalf("tick %d at %v want %v", i, tm, want)
		}
		if i > 0 && tm <= times[i-1] {
			t.Fatalf("ticks not monotone: %v after %v", tm, times[i-1])
		}
	}
}

func TestPollJitterClamped(t *testing.T) {
	d := NewDevice()
	fired := 0
	d.SetPoll(0.1, func() { fired++ })
	d.SetPollJitter(func(int64, float64) float64 { return 10 }) // way past one interval
	d.Advance(1, hw.PlanePower{PKG: 1})
	// Clamped below one interval: every nominal tick still lands
	// inside the advanced window (the last may slip past the end).
	if fired < 9 {
		t.Fatalf("fired %d ticks under clamped jitter, want >= 9", fired)
	}
}
