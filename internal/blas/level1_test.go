package blas

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"capscale/internal/matrix"
)

func randVec(rng *rand.Rand, n int) []float64 {
	v := make([]float64, n)
	for i := range v {
		v[i] = 2*rng.Float64() - 1
	}
	return v
}

func TestDaxpy(t *testing.T) {
	x := []float64{1, 2, 3}
	y := []float64{10, 20, 30}
	Daxpy(2, x, y)
	want := []float64{12, 24, 36}
	for i := range y {
		if y[i] != want[i] {
			t.Fatalf("daxpy %v", y)
		}
	}
	// alpha = 0 leaves y untouched.
	Daxpy(0, x, y)
	if y[0] != 12 {
		t.Fatal("alpha=0 changed y")
	}
}

func TestDaxpyLengthPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	Daxpy(1, make([]float64, 2), make([]float64, 3))
}

func TestDdot(t *testing.T) {
	if got := Ddot([]float64{1, 2, 3}, []float64{4, 5, 6}); got != 32 {
		t.Fatalf("ddot %v", got)
	}
	if got := Ddot(nil, nil); got != 0 {
		t.Fatalf("empty ddot %v", got)
	}
}

func TestDscalDcopy(t *testing.T) {
	x := []float64{1, -2, 4}
	Dscal(-0.5, x)
	if x[0] != -0.5 || x[1] != 1 || x[2] != -2 {
		t.Fatalf("dscal %v", x)
	}
	y := make([]float64, 3)
	Dcopy(x, y)
	if y[2] != -2 {
		t.Fatalf("dcopy %v", y)
	}
}

func TestDnrm2(t *testing.T) {
	if got := Dnrm2([]float64{3, 4}); math.Abs(got-5) > 1e-14 {
		t.Fatalf("nrm2 %v", got)
	}
	if Dnrm2(nil) != 0 {
		t.Fatal("empty nrm2")
	}
	// Overflow safety: naive Σx² would overflow here.
	big := []float64{1e200, 1e200}
	if got := Dnrm2(big); math.IsInf(got, 1) || math.Abs(got-1e200*math.Sqrt2) > 1e186 {
		t.Fatalf("scaled nrm2 %v", got)
	}
}

func TestDasumIdamax(t *testing.T) {
	x := []float64{1, -5, 3}
	if Dasum(x) != 9 {
		t.Fatal("dasum")
	}
	if Idamax(x) != 1 {
		t.Fatal("idamax")
	}
	if Idamax(nil) != -1 {
		t.Fatal("idamax empty")
	}
	// First maximal element wins on ties.
	if Idamax([]float64{2, -2}) != 0 {
		t.Fatal("idamax tie")
	}
}

func TestDgemvNoTrans(t *testing.T) {
	a := matrix.NewFromSlice(2, 3, []float64{1, 2, 3, 4, 5, 6})
	x := []float64{1, 1, 1}
	y := []float64{100, 100}
	Dgemv(false, 1, a, x, 0, y)
	if y[0] != 6 || y[1] != 15 {
		t.Fatalf("dgemv %v", y)
	}
	// beta keeps prior contents.
	Dgemv(false, 1, a, x, 1, y)
	if y[0] != 12 || y[1] != 30 {
		t.Fatalf("dgemv beta %v", y)
	}
}

func TestDgemvTrans(t *testing.T) {
	a := matrix.NewFromSlice(2, 3, []float64{1, 2, 3, 4, 5, 6})
	x := []float64{1, 2}
	y := make([]float64, 3)
	Dgemv(true, 1, a, x, 0, y)
	// Aᵀx = [1+8, 2+10, 3+12]
	if y[0] != 9 || y[1] != 12 || y[2] != 15 {
		t.Fatalf("dgemv trans %v", y)
	}
}

func TestDgemvShapePanics(t *testing.T) {
	a := matrix.New(2, 3)
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	Dgemv(false, 1, a, make([]float64, 2), 0, make([]float64, 2))
}

func TestDger(t *testing.T) {
	a := matrix.New(2, 2)
	Dger(2, []float64{1, 2}, []float64{3, 4}, a)
	if a.At(0, 0) != 6 || a.At(0, 1) != 8 || a.At(1, 0) != 12 || a.At(1, 1) != 16 {
		t.Fatalf("dger %v", a)
	}
}

func TestPropertyDdotSymmetry(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := rng.Intn(50)
		x, y := randVec(rng, n), randVec(rng, n)
		return math.Abs(Ddot(x, y)-Ddot(y, x)) < 1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyCauchySchwarz(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(50)
		x, y := randVec(rng, n), randVec(rng, n)
		return math.Abs(Ddot(x, y)) <= Dnrm2(x)*Dnrm2(y)+1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyDgemvMatchesMulNaive(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		r, c := 1+rng.Intn(20), 1+rng.Intn(20)
		a := matrix.Rand(rng, r, c)
		x := randVec(rng, c)
		y := make([]float64, r)
		Dgemv(false, 1, a, x, 0, y)
		// Compare against MulNaive with x as an c×1 matrix.
		xm := matrix.NewFromSlice(c, 1, append([]float64(nil), x...))
		ym := matrix.New(r, 1)
		matrix.MulNaive(ym, a, xm)
		for i := range y {
			if math.Abs(y[i]-ym.At(i, 0)) > 1e-12 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyDgerThenDgemv(t *testing.T) {
	// (A + αxyᵀ)z == Az + αx(yᵀz)
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		r, c := 1+rng.Intn(15), 1+rng.Intn(15)
		a := matrix.Rand(rng, r, c)
		x, y, z := randVec(rng, r), randVec(rng, c), randVec(rng, c)
		alpha := rng.Float64()

		before := make([]float64, r)
		Dgemv(false, 1, a, z, 0, before)
		yz := Ddot(y, z)

		Dger(alpha, x, y, a)
		after := make([]float64, r)
		Dgemv(false, 1, a, z, 0, after)

		for i := range after {
			want := before[i] + alpha*x[i]*yz
			if math.Abs(after[i]-want) > 1e-10 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
