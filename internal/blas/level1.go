package blas

import (
	"fmt"
	"math"

	"capscale/internal/matrix"
)

// Level-1 and level-2 routines. The paper's study is level-3, but a
// usable dense-linear-algebra substrate needs the vector and
// matrix-vector layers too; they follow reference-BLAS semantics with
// Go slices.

// Daxpy computes y += alpha·x. Lengths must match.
func Daxpy(alpha float64, x, y []float64) {
	if len(x) != len(y) {
		panic(fmt.Sprintf("blas: daxpy lengths %d vs %d", len(x), len(y)))
	}
	if alpha == 0 {
		return
	}
	for i, v := range x {
		y[i] += alpha * v
	}
}

// Ddot returns xᵀy.
func Ddot(x, y []float64) float64 {
	if len(x) != len(y) {
		panic(fmt.Sprintf("blas: ddot lengths %d vs %d", len(x), len(y)))
	}
	sum := 0.0
	for i, v := range x {
		sum += v * y[i]
	}
	return sum
}

// Dscal scales x by alpha in place.
func Dscal(alpha float64, x []float64) {
	for i := range x {
		x[i] *= alpha
	}
}

// Dcopy copies x into y. Lengths must match.
func Dcopy(x, y []float64) {
	if len(x) != len(y) {
		panic(fmt.Sprintf("blas: dcopy lengths %d vs %d", len(x), len(y)))
	}
	copy(y, x)
}

// Dnrm2 returns ‖x‖₂ with scaling against overflow, as reference BLAS
// does.
func Dnrm2(x []float64) float64 {
	scale, ssq := 0.0, 1.0
	for _, v := range x {
		if v == 0 {
			continue
		}
		a := math.Abs(v)
		if scale < a {
			r := scale / a
			ssq = 1 + ssq*r*r
			scale = a
		} else {
			r := a / scale
			ssq += r * r
		}
	}
	return scale * math.Sqrt(ssq)
}

// Dasum returns Σ|xᵢ|.
func Dasum(x []float64) float64 {
	sum := 0.0
	for _, v := range x {
		sum += math.Abs(v)
	}
	return sum
}

// Idamax returns the index of the first element of maximum absolute
// value, or -1 for an empty vector.
func Idamax(x []float64) int {
	if len(x) == 0 {
		return -1
	}
	best, bestAbs := 0, math.Abs(x[0])
	for i := 1; i < len(x); i++ {
		if a := math.Abs(x[i]); a > bestAbs {
			best, bestAbs = i, a
		}
	}
	return best
}

// Dgemv computes y = alpha·A·x + beta·y (no transpose) or
// y = alpha·Aᵀ·x + beta·y (transposed).
func Dgemv(trans bool, alpha float64, a *matrix.Dense, x []float64, beta float64, y []float64) {
	rows, cols := a.Rows(), a.Cols()
	if trans {
		rows, cols = cols, rows
	}
	if len(x) != cols || len(y) != rows {
		panic(fmt.Sprintf("blas: dgemv %dx%d (trans=%v) with x=%d y=%d",
			a.Rows(), a.Cols(), trans, len(x), len(y)))
	}
	if beta != 1 {
		Dscal(beta, y)
	}
	if alpha == 0 {
		return
	}
	if !trans {
		for i := 0; i < a.Rows(); i++ {
			row := a.Row(i)
			sum := 0.0
			for j, v := range row {
				sum += v * x[j]
			}
			y[i] += alpha * sum
		}
		return
	}
	for i := 0; i < a.Rows(); i++ {
		row := a.Row(i)
		xi := alpha * x[i]
		if xi == 0 {
			continue
		}
		for j, v := range row {
			y[j] += xi * v
		}
	}
}

// Dger computes the rank-1 update A += alpha·x·yᵀ.
func Dger(alpha float64, x, y []float64, a *matrix.Dense) {
	if len(x) != a.Rows() || len(y) != a.Cols() {
		panic(fmt.Sprintf("blas: dger %dx%d with x=%d y=%d", a.Rows(), a.Cols(), len(x), len(y)))
	}
	if alpha == 0 {
		return
	}
	for i := 0; i < a.Rows(); i++ {
		row := a.Row(i)
		ax := alpha * x[i]
		if ax == 0 {
			continue
		}
		for j, v := range y {
			row[j] += ax * v
		}
	}
}
