package blas

import (
	"math/rand"
	"testing"
	"testing/quick"

	"capscale/internal/hw"
	"capscale/internal/kernel"
	"capscale/internal/matrix"
	"capscale/internal/sim"
	"capscale/internal/task"
)

func machine() *hw.Machine { return hw.HaswellE31225() }

func TestPlanForRespectsCaches(t *testing.T) {
	m := machine()
	p := PlanFor(m, 4096, 4096, 4096)
	if p.NC != 4096 {
		t.Fatalf("NC %d", p.NC)
	}
	if bytes := 8 * p.KC * p.NC; bytes > m.L3.SizeBytes/2 {
		t.Fatalf("B panel %d bytes exceeds half L3", bytes)
	}
	if bytes := 8 * p.MC * p.KC; bytes > m.L2.SizeBytes/2 {
		t.Fatalf("A block %d bytes exceeds half L2", bytes)
	}
	if p.MC < 16 || p.KC < 16 {
		t.Fatalf("degenerate plan %+v", p)
	}
}

func TestPlanForSmallProblem(t *testing.T) {
	p := PlanFor(machine(), 32, 32, 32)
	if p.KC > 32 || p.MC > 32 {
		t.Fatalf("plan exceeds problem: %+v", p)
	}
}

func TestBuildPanicsOnBadShapes(t *testing.T) {
	m := machine()
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on shape mismatch")
		}
	}()
	Build(m, matrix.New(4, 4), matrix.New(4, 8), matrix.New(4, 4), Options{Workers: 1})
}

func TestBuildPanicsOnZeroWorkers(t *testing.T) {
	m := machine()
	n := 8
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on zero workers")
		}
	}()
	Build(m, matrix.New(n, n), matrix.New(n, n), matrix.New(n, n), Options{})
}

func TestNumericsMatchNaive(t *testing.T) {
	m := machine()
	rng := rand.New(rand.NewSource(1))
	for _, n := range []int{8, 31, 64, 100, 128} {
		a := matrix.Rand(rng, n, n)
		b := matrix.Rand(rng, n, n)
		c := matrix.New(n, n)
		root := Build(m, c, a, b, Options{Workers: 3, WithMath: true})
		sim.Run(m, root, sim.Config{Workers: 3, VerifyNumerics: true})
		want := matrix.New(n, n)
		matrix.MulNaive(want, a, b)
		if !matrix.AlmostEqual(c, want, 1e-11) {
			t.Fatalf("n=%d: blocked result differs by %v", n, matrix.MaxAbsDiff(c, want))
		}
	}
}

func TestNumericsSerialExecutor(t *testing.T) {
	m := machine()
	rng := rand.New(rand.NewSource(2))
	n := 96
	a := matrix.Rand(rng, n, n)
	b := matrix.Rand(rng, n, n)
	c := matrix.New(n, n)
	root := Build(m, c, a, b, Options{Workers: 2, WithMath: true})
	task.RunSerial(root)
	want := matrix.New(n, n)
	matrix.MulNaive(want, a, b)
	if !matrix.AlmostEqual(c, want, 1e-11) {
		t.Fatal("serial execution differs from naive")
	}
}

func TestFlopAccountingExact(t *testing.T) {
	m := machine()
	n := 256
	a, b, c := matrix.New(n, n), matrix.New(n, n), matrix.New(n, n)
	root := Build(m, c, a, b, Options{Workers: 4})
	stats := task.Collect(root)
	wantGEMM := kernel.MulFlops(n, n, n)
	if got := stats.FlopsByKind[task.KindGEMM]; got != wantGEMM {
		t.Fatalf("gemm flops %v want %v", got, wantGEMM)
	}
}

func TestTreeIsComputeDominated(t *testing.T) {
	// Blocked DGEMM's whole point: flops per DRAM byte should be high.
	m := machine()
	n := 1024
	a, b, c := matrix.New(n, n), matrix.New(n, n), matrix.New(n, n)
	stats := task.Collect(Build(m, c, a, b, Options{Workers: 4}))
	intensity := stats.Flops / stats.DRAMBytes
	if intensity < 8 {
		t.Fatalf("arithmetic intensity %v too low for a blocked algorithm", intensity)
	}
}

func TestSimulatedSpeedupNearLinear(t *testing.T) {
	m := machine()
	n := 1024
	a, b, c := matrix.New(n, n), matrix.New(n, n), matrix.New(n, n)
	mk := func(workers int) *sim.Result {
		root := Build(m, c, a, b, Options{Workers: workers})
		return sim.Run(m, root, sim.Config{Workers: workers})
	}
	t1 := mk(1).Makespan
	t4 := mk(4).Makespan
	speedup := t1 / t4
	if speedup < 3.2 || speedup > 4.05 {
		t.Fatalf("4-thread speedup %v, want near 4 (compute bound)", speedup)
	}
}

func TestSimulatedTimeNearModelPrediction(t *testing.T) {
	// 4096³ at 4 threads should take on the order of 2·n³ / (4 cores ·
	// 25.6 GF · 0.92) ≈ 1.46 s. Allow packing and C-traffic slack.
	m := machine()
	n := 2048
	a, b, c := matrix.New(n, n), matrix.New(n, n), matrix.New(n, n)
	root := Build(m, c, a, b, Options{Workers: 4})
	res := sim.Run(m, root, sim.Config{Workers: 4})
	ideal := kernel.MulFlops(n, n, n) / (4 * m.PeakFlopsPerCore() * 0.92)
	if res.Makespan < ideal {
		t.Fatalf("makespan %v beats ideal %v", res.Makespan, ideal)
	}
	if res.Makespan > ideal*1.5 {
		t.Fatalf("makespan %v more than 1.5x ideal %v", res.Makespan, ideal)
	}
}

func TestStaticPartitionAvoidsCommunication(t *testing.T) {
	m := machine()
	n := 512
	a, b, c := matrix.New(n, n), matrix.New(n, n), matrix.New(n, n)
	root := Build(m, c, a, b, Options{Workers: 4})
	res := sim.Run(m, root, sim.Config{Workers: 4})
	if res.RemoteBytes != 0 {
		t.Fatalf("statically partitioned DGEMM charged %v remote bytes", res.RemoteBytes)
	}
}

func TestHighUtilizationAtFourThreads(t *testing.T) {
	m := machine()
	n := 1024
	a, b, c := matrix.New(n, n), matrix.New(n, n), matrix.New(n, n)
	root := Build(m, c, a, b, Options{Workers: 4})
	res := sim.Run(m, root, sim.Config{Workers: 4})
	if u := res.Utilization(); u < 0.85 {
		t.Fatalf("worker utilization %v, expected high for static DGEMM", u)
	}
	// Power should be near the compute-saturated calibration point.
	if p := res.AvgPowerTotal(); p < 40 || p > 56 {
		t.Fatalf("4-thread power %v W outside OpenBLAS-like range", p)
	}
}

func TestPropertyNumericsRandomSizes(t *testing.T) {
	m := machine()
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(80)
		workers := 1 + rng.Intn(4)
		a := matrix.Rand(rng, n, n)
		b := matrix.Rand(rng, n, n)
		c := matrix.New(n, n)
		root := Build(m, c, a, b, Options{Workers: workers, WithMath: true})
		sim.Run(m, root, sim.Config{Workers: workers, VerifyNumerics: true})
		want := matrix.New(n, n)
		matrix.MulNaive(want, a, b)
		return matrix.AlmostEqual(c, want, 1e-10)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyFlopAccountingRandomShapes(t *testing.T) {
	m := machine()
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		M, K, N := 1+rng.Intn(200), 1+rng.Intn(200), 1+rng.Intn(200)
		a, b, c := matrix.New(M, K), matrix.New(K, N), matrix.New(M, N)
		stats := task.Collect(Build(m, c, a, b, Options{Workers: 1 + rng.Intn(4)}))
		return stats.FlopsByKind[task.KindGEMM] == kernel.MulFlops(M, N, K)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// The live fast path must match the naive reference and the tree-built
// engine's product.
func TestMulFastPathMatchesNaive(t *testing.T) {
	m := machine()
	rng := rand.New(rand.NewSource(31))
	for _, dims := range [][3]int{{64, 64, 64}, {97, 113, 89}, {256, 128, 192}} {
		M, K, N := dims[0], dims[1], dims[2]
		a := matrix.Rand(rng, M, K)
		b := matrix.Rand(rng, K, N)
		want := matrix.New(M, N)
		matrix.MulNaive(want, a, b)
		for _, workers := range []int{1, 2, 4} {
			c := matrix.New(M, N)
			Mul(m, c, a, b, workers)
			if !matrix.AlmostEqual(c, want, 1e-10) {
				t.Errorf("%v workers=%d: Mul differs by %v", dims, workers, matrix.MaxAbsDiff(c, want))
			}
		}
	}
}
