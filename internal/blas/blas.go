// Package blas implements the paper's baseline: a tuned, blocked,
// multi-threaded double-precision matrix multiplication in the style of
// OpenBLAS/Goto (Algorithm 1 in the paper).
//
// The multiply is expressed as a task tree (internal/task). Loop order
// follows Goto's three-level blocking: a KC×NC panel of B is packed
// into the shared cache once per K-step, then MC×KC blocks of A stream
// through it, with the M dimension statically partitioned across
// threads exactly as OpenBLAS's OpenMP work split does. Leaves carry
// both the real arithmetic (optional) and the flop/traffic accounting
// the simulator charges.
package blas

import (
	"fmt"

	"capscale/internal/hw"
	"capscale/internal/kernel"
	"capscale/internal/matrix"
	"capscale/internal/task"
)

// Plan holds the cache-blocking factors.
type Plan struct {
	// MC×KC blocks of A are sized for a worker's L2 share; KC×NC panels
	// of B for half the shared L3.
	MC, KC, NC int
}

// PlanFor derives blocking factors for an M×K · K×N multiply on the
// given machine, the way OpenBLAS's genetic parameter headers encode
// them per microarchitecture.
func PlanFor(m *hw.Machine, M, K, N int) Plan {
	nc := N // our N values keep B panels narrower than L3 allows

	// KC: a KC×NC panel of B should occupy at most half the L3.
	kc := m.L3.SizeBytes / 2 / 8 / nc
	kc = clamp(kc, 16, 256)
	if kc > K {
		kc = K
	}

	// MC: an MC×KC block of A should occupy at most half the L2.
	mc := m.L2.SizeBytes / 2 / 8 / kc
	mc = clamp(mc, 16, 256)
	if mc > M {
		mc = M
	}
	return Plan{MC: mc, KC: kc, NC: nc}
}

func clamp(v, lo, hi int) int {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// Options configures tree construction.
type Options struct {
	// Workers is the thread count the M dimension is partitioned over
	// (OMP_NUM_THREADS). It must be >= 1.
	Workers int
	// Plan overrides the automatic blocking when non-zero.
	Plan Plan
	// WithMath attaches real-arithmetic closures to the leaves so the
	// tree can be executed for correctness checking or live runs.
	WithMath bool
}

// Build returns the task tree computing c = a·b. Shapes must conform;
// c must not alias a or b.
func Build(m *hw.Machine, c, a, b *matrix.Dense, opt Options) *task.Node {
	M, K, N := a.Rows(), a.Cols(), b.Cols()
	if b.Rows() != K || c.Rows() != M || c.Cols() != N {
		panic(fmt.Sprintf("blas: shapes %dx%d * %dx%d -> %dx%d", M, K, b.Rows(), N, c.Rows(), c.Cols()))
	}
	if opt.Workers < 1 {
		panic(fmt.Sprintf("blas: workers %d", opt.Workers))
	}
	plan := opt.Plan
	if plan.MC == 0 {
		plan = PlanFor(m, M, K, N)
	}

	var regions task.Regions
	if opt.WithMath {
		c.Zero()
	}

	// Region per (ic, jc) C block: the same block is revisited on every
	// K step, and static partitioning keeps it on one worker.
	nIC := ceilDiv(M, plan.MC)
	nJC := ceilDiv(N, plan.NC)
	cRegion := make([]task.RegionID, nIC*nJC)
	for i := range cRegion {
		cRegion[i] = regions.New()
	}

	var stages []*task.Node
	for jc := 0; jc < N; jc += plan.NC {
		ncCur := min(plan.NC, N-jc)
		for kc := 0; kc < K; kc += plan.KC {
			kcCur := min(plan.KC, K-kc)
			stages = append(stages,
				packStage(m, b, jc, kc, ncCur, kcCur, opt),
				computeStage(m, c, a, b, plan, jc, kc, ncCur, kcCur, cRegion, nJC, opt))
		}
	}
	return task.Seq(stages...)
}

// packStage models packing the KC×NC panel of B into the shared cache,
// split across workers by row chunks as OpenBLAS does.
func packStage(m *hw.Machine, b *matrix.Dense, jc, kc, nc, kcCur int, opt Options) *task.Node {
	chunks := opt.Workers
	if chunks > kcCur {
		chunks = kcCur
	}
	leaves := make([]*task.Node, 0, chunks)
	for t := 0; t < chunks; t++ {
		lo := kcCur * t / chunks
		hi := kcCur * (t + 1) / chunks
		rows := hi - lo
		if rows == 0 {
			continue
		}
		leaves = append(leaves, task.Leaf(task.Work{
			Label: fmt.Sprintf("packB k%d j%d t%d", kc, jc, t),
			Kind:  task.KindCopy,
			// Read the panel rows from DRAM, deposit them in L3.
			DRAMBytes: kernel.Bytes(rows, nc),
			L3Bytes:   kernel.Bytes(rows, nc),
		}))
	}
	return task.Par(leaves...)
}

// computeStage is the M-partitioned rank-KC update of the C panel.
func computeStage(m *hw.Machine, c, a, b *matrix.Dense, plan Plan, jc, kc, nc, kcCur int, cRegion []task.RegionID, nJC int, opt Options) *task.Node {
	M := a.Rows()
	type icBlock struct {
		ic, mc int
	}
	var blocks []icBlock
	for ic := 0; ic < M; ic += plan.MC {
		blocks = append(blocks, icBlock{ic, min(plan.MC, M-ic)})
	}

	// Static partition of ic blocks over workers, each worker's chain
	// pinned to its core — OpenBLAS threads own fixed row bands.
	chains := make([]*task.Node, 0, opt.Workers)
	for t := 0; t < opt.Workers; t++ {
		var chain []*task.Node
		for bi := t; bi < len(blocks); bi += opt.Workers {
			blk := blocks[bi]
			w := task.Work{
				Label: fmt.Sprintf("gemm i%d k%d j%d", blk.ic, kc, jc),
				Kind:  task.KindGEMM,
				Flops: kernel.MulFlops(blk.mc, nc, kcCur),
				// A block streams from DRAM; the packed B panel is
				// served by the shared cache; the C block is read and
				// written through DRAM on every K step.
				DRAMBytes:   kernel.Bytes(blk.mc, kcCur) + 2*kernel.Bytes(blk.mc, nc),
				L3Bytes:     kernel.Bytes(kcCur, nc),
				Reads:       []task.RegionID{cRegion[(blk.ic/plan.MC)*nJC+jc/plan.NC]},
				Writes:      []task.RegionID{cRegion[(blk.ic/plan.MC)*nJC+jc/plan.NC]},
				RegionBytes: kernel.Bytes(blk.mc, nc),
			}
			if opt.WithMath {
				cBlk := c.View(blk.ic, jc, blk.mc, nc)
				aBlk := a.View(blk.ic, kc, blk.mc, kcCur)
				bBlk := b.View(kc, jc, kcCur, nc)
				mc, kcP, ncP := plan.MC, plan.KC, plan.NC
				w.Run = func() { kernel.GemmPacked(cBlk, aBlk, bBlk, mc, kcP, ncP) }
			}
			chain = append(chain, task.Leaf(w))
		}
		if len(chain) > 0 {
			chains = append(chains, task.Seq(chain...).WithAffinityMask(task.SingleWorker(t)))
		}
	}
	return task.Par(chains...)
}

func ceilDiv(a, b int) int { return (a + b - 1) / b }

// Mul computes c = a·b live, bypassing tree construction entirely:
// the machine-derived blocking plan drives kernel.GemmParallel, whose
// workers share each packed B panel and pack A blocks into pooled
// per-worker buffers. This is the fast path for callers that want the
// product, not the schedule; steady-state calls allocate nothing.
func Mul(m *hw.Machine, c, a, b *matrix.Dense, workers int) {
	plan := PlanFor(m, a.Rows(), a.Cols(), b.Cols())
	c.Zero()
	kernel.GemmParallel(c, a, b, plan.MC, plan.KC, plan.NC, workers)
}
