// Package caps implements Communication Avoiding Parallel Strassen
// (Ballard, Demmel, Holtz, Lipshitz, Schwartz), the paper's third
// multiplier and its main subject.
//
// CAPS traverses the Strassen recursion tree choosing, per level,
// between a breadth-first step (BFS: the seven subproblems execute on
// disjoint worker subsets, which costs extra buffer memory for staged
// operands but keeps each subproblem's data local to its owners) and a
// depth-first step (DFS: all workers of the subtree compute the seven
// subproblems one after another with work-shared additions, which needs
// no extra memory but re-shares every operand). Following the paper's
// Algorithm 2 and its empirical tuning, the traversal runs BFS above a
// cutoff depth (default 4) and DFS below it.
//
// Ownership: the 7^L subtrees at the cutoff depth are block-partitioned
// across the workers in index order, and every interior node owns the
// union of its descendants' workers. Staging copies and operand
// additions are pinned to the consuming subtree's owners, which is the
// "communication avoiding" mechanism — the simulator charges remote
// traffic only at subtree boundaries instead of wherever work stealing
// happened to scatter tasks.
package caps

import (
	"fmt"

	"capscale/internal/hw"
	"capscale/internal/kernel"
	"capscale/internal/matrix"
	"capscale/internal/strassen"
	"capscale/internal/task"
)

// DefaultCutoffDepth is the BFS→DFS switch level the paper found best
// after empirical testing.
const DefaultCutoffDepth = 4

// Options configures tree construction.
type Options struct {
	// Cutover is the dense base-case dimension; 0 means
	// strassen.DefaultCutover (64), as the paper uses one cutover for
	// all three recursive codes.
	Cutover int
	// CutoffDepth is the recursion depth at which traversal switches
	// from BFS to DFS. 0 means DefaultCutoffDepth; negative means pure
	// DFS (no BFS levels), which is the ablation baseline.
	CutoffDepth int
	// WithMath attaches real arithmetic and allocates buffers.
	WithMath bool
}

func (o Options) cutover() int {
	if o.Cutover <= 0 {
		return strassen.DefaultCutover
	}
	return o.Cutover
}

func (o Options) cutoffDepth() int {
	if o.CutoffDepth == 0 {
		return DefaultCutoffDepth
	}
	if o.CutoffDepth < 0 {
		return 0
	}
	return o.CutoffDepth
}

type operand struct {
	mat    *matrix.Dense
	region task.RegionID
	n      int
}

func (o operand) quad(i, j int) operand {
	half := o.n / 2
	q := operand{region: o.region, n: half}
	if o.mat != nil {
		q.mat = o.mat.View(i*half, j*half, half, half)
	}
	return q
}

type builder struct {
	m       *hw.Machine
	opt     Options
	workers int
	regions task.Regions
	// bfsLevels is the effective number of BFS levels for this problem
	// (cutoff depth clipped to the actual recursion depth).
	bfsLevels int
	// leavesAtCutoff is 7^bfsLevels, the number of ownership units.
	leavesAtCutoff int
}

// Build returns the task tree computing c = a·b by CAPS. workers is the
// thread count the run will use; the BFS ownership partition is built
// for exactly that many workers.
func Build(m *hw.Machine, c, a, b *matrix.Dense, workers int, opt Options) *task.Node {
	n := a.Rows()
	if !a.IsSquare() || !b.IsSquare() || !c.IsSquare() || b.Rows() != n || c.Rows() != n {
		panic(fmt.Sprintf("caps: need equal square matrices, got %dx%d %dx%d %dx%d",
			a.Rows(), a.Cols(), b.Rows(), b.Cols(), c.Rows(), c.Cols()))
	}
	if workers < 1 {
		panic(fmt.Sprintf("caps: workers %d", workers))
	}
	bd := &builder{m: m, opt: opt, workers: workers}

	// Awkward sizes pad once to c·2^k ≤-cutover form, as the Strassen
	// builder does (see strassen.PaddedSize).
	padded := strassen.PaddedSize(n, opt.cutover())

	// Clip BFS to the recursion's actual depth.
	maxDepth := 0
	for v := padded; v > opt.cutover() && v%2 == 0; v /= 2 {
		maxDepth++
	}
	bd.bfsLevels = opt.cutoffDepth()
	if bd.bfsLevels > maxDepth {
		bd.bfsLevels = maxDepth
	}
	bd.leavesAtCutoff = 1
	for i := 0; i < bd.bfsLevels; i++ {
		bd.leavesAtCutoff *= 7
	}

	if padded != n {
		return bd.paddedMul(c, a, b, n, padded)
	}
	ca := operand{region: bd.regions.New(), n: n}
	cb := operand{region: bd.regions.New(), n: n}
	cc := operand{region: bd.regions.New(), n: n}
	if opt.WithMath {
		ca.mat, cb.mat, cc.mat = a, b, c
	}
	return bd.mul(cc, ca, cb, 0, 0)
}

// paddedMul wraps the recursion in pad-in/pad-out stages for sizes
// that do not halve evenly to the cutover.
func (bd *builder) paddedMul(c, a, b *matrix.Dense, n, padded int) *task.Node {
	var pa, pb, pc *matrix.Dense
	if bd.opt.WithMath {
		pa = matrix.PadTo(a, padded, padded)
		pb = matrix.PadTo(b, padded, padded)
		pc = matrix.New(padded, padded)
	}
	ca := operand{mat: pa, region: bd.regions.New(), n: padded}
	cb := operand{mat: pb, region: bd.regions.New(), n: padded}
	cc := operand{mat: pc, region: bd.regions.New(), n: padded}

	mkCopy := func(label string, read, write task.RegionID, run func()) *task.Node {
		w := task.Work{
			Label:       label,
			Kind:        task.KindCopy,
			DRAMBytes:   2 * kernel.Bytes(n, n),
			Reads:       []task.RegionID{read},
			Writes:      []task.RegionID{write},
			RegionBytes: kernel.Bytes(n, n),
		}
		if bd.opt.WithMath {
			w.Run = run
		}
		return task.Leaf(w)
	}
	srcA, srcB, dstC := bd.regions.New(), bd.regions.New(), bd.regions.New()
	padIn := task.Par(
		mkCopy(fmt.Sprintf("pad A %d->%d", n, padded), srcA, ca.region, func() {}),
		mkCopy(fmt.Sprintf("pad B %d->%d", n, padded), srcB, cb.region, func() {}),
	)
	padOut := mkCopy(fmt.Sprintf("unpad C %d->%d", padded, n), cc.region, dstC, func() {
		matrix.CopyTo(c, pc.View(0, 0, n, n))
	})
	alloc := 3 * kernel.Bytes(padded, padded)
	return task.Seq(padIn, bd.mul(cc, ca, cb, 0, 0), padOut).WithAlloc(alloc)
}

// ownerMask returns the worker mask owning the subtree at (depth, idx):
// the block partition of the 7^bfsLevels cutoff units over the workers.
// Nodes below the cutoff depth inherit their cutoff-level ancestor's
// single unit.
func (bd *builder) ownerMask(depth, idx int) task.Mask {
	if bd.bfsLevels == 0 {
		return task.Mask{} // pure DFS: unrestricted
	}
	var lo, hi int
	if depth >= bd.bfsLevels {
		for d := depth; d > bd.bfsLevels; d-- {
			idx /= 7
		}
		lo, hi = idx, idx
	} else {
		span := bd.leavesAtCutoff
		for i := 0; i < depth; i++ {
			span /= 7
		}
		lo = idx * span
		hi = lo + span - 1
	}
	wLo := lo * bd.workers / bd.leavesAtCutoff
	wHi := hi * bd.workers / bd.leavesAtCutoff
	return task.MaskRange(wLo, wHi)
}

func ownersOf(mask task.Mask, workers int) int {
	if mask.IsEmpty() {
		return workers
	}
	return mask.Count()
}

// mul builds the subtree for c = a·b at the given recursion position.
func (bd *builder) mul(c, a, b operand, depth, idx int) *task.Node {
	n := a.n
	mask := bd.ownerMask(depth, idx)
	if n <= bd.opt.cutover() || n%2 != 0 {
		return bd.baseMul(c, a, b, mask)
	}
	if depth < bd.bfsLevels {
		return bd.bfsNode(c, a, b, depth, idx)
	}
	return bd.dfsNode(c, a, b, depth, idx)
}

func (bd *builder) temp(n int) operand {
	t := operand{region: bd.regions.New(), n: n}
	if bd.opt.WithMath {
		t.mat = matrix.New(n, n)
	}
	return t
}

// baseMul emits the dense solver. When the owning mask spans several
// workers (pure-DFS configurations), the solver's row loop is
// work-shared across them, as the paper's OpenMP work-sharing DFS does.
func (bd *builder) baseMul(c, a, b operand, mask task.Mask) *task.Node {
	n := a.n
	owners := ownersOf(mask, bd.workers)
	if owners > n {
		owners = n
	}
	mk := func(rowLo, rowHi int) *task.Node {
		rows := rowHi - rowLo
		traffic := kernel.Bytes(rows, n) + kernel.Bytes(n, n) + 2*kernel.Bytes(rows, n)
		w := task.Work{
			Label:       fmt.Sprintf("basemul n%d r%d", n, rowLo),
			Kind:        task.KindBaseMul,
			Flops:       kernel.MulFlops(rows, n, n),
			Reads:       []task.RegionID{a.region, b.region},
			Writes:      []task.RegionID{c.region},
			RegionBytes: kernel.Bytes(n, n),
		}
		if bd.m.LevelFor(traffic, bd.workers) == hw.LevelDRAM {
			w.DRAMBytes = traffic
		} else {
			w.L3Bytes = traffic
		}
		if bd.opt.WithMath {
			cm := c.mat.View(rowLo, 0, rows, n)
			am := a.mat.View(rowLo, 0, rows, n)
			bm := b.mat
			w.Run = func() { kernel.Mul(cm, am, bm) }
		}
		return task.Leaf(w)
	}
	if owners <= 1 {
		return mk(0, n).WithAffinityMask(mask)
	}
	chunks := make([]*task.Node, 0, owners)
	for t := 0; t < owners; t++ {
		lo := n * t / owners
		hi := n * (t + 1) / owners
		if hi > lo {
			chunks = append(chunks, mk(lo, hi))
		}
	}
	return task.Par(chunks...).WithAffinityMask(mask)
}

// addLeaf emits dst = combination of srcs, pinned to mask, work-shared
// into chunks when the mask spans several workers.
func (bd *builder) addLeaf(label string, dst operand, addOps int, srcs []operand, mask task.Mask, run func()) *task.Node {
	n := dst.n
	owners := ownersOf(mask, bd.workers)
	bytes := kernel.Bytes(n, n)
	traffic := float64(len(srcs)+1) * bytes
	mkWork := func(frac float64) task.Work {
		w := task.Work{
			Label:       label,
			Kind:        task.KindAdd,
			Flops:       float64(addOps) * float64(n) * float64(n) * frac,
			Writes:      []task.RegionID{dst.region},
			RegionBytes: bytes * frac,
		}
		for _, s := range srcs {
			w.Reads = append(w.Reads, s.region)
		}
		if bd.m.LevelFor(traffic, bd.workers) == hw.LevelDRAM {
			w.DRAMBytes = traffic * frac
		} else {
			w.L3Bytes = traffic * frac
		}
		return w
	}
	if owners <= 1 {
		w := mkWork(1)
		if bd.opt.WithMath {
			w.Run = run
		}
		return task.Leaf(w).WithAffinityMask(mask)
	}
	// Work-shared: owners chunks; the real math (when on) runs whole in
	// the first chunk — numerically identical, and the accounting stays
	// split.
	chunks := make([]*task.Node, owners)
	for t := 0; t < owners; t++ {
		w := mkWork(1 / float64(owners))
		if t == 0 && bd.opt.WithMath {
			w.Run = run
		}
		chunks[t] = task.Leaf(w)
	}
	return task.Par(chunks...).WithAffinityMask(mask)
}

// copyLeaf stages src into a fresh local buffer owned by mask and
// returns the staged operand. This is the BFS redistribution cost: one
// read of src, one write of dst.
func (bd *builder) copyLeaf(label string, src operand, mask task.Mask) (operand, *task.Node) {
	dst := bd.temp(src.n)
	bytes := kernel.Bytes(src.n, src.n)
	traffic := 2 * bytes
	w := task.Work{
		Label:       label,
		Kind:        task.KindCopy,
		Reads:       []task.RegionID{src.region},
		Writes:      []task.RegionID{dst.region},
		RegionBytes: bytes,
	}
	if bd.m.LevelFor(traffic, bd.workers) == hw.LevelDRAM {
		w.DRAMBytes = traffic
	} else {
		w.L3Bytes = traffic
	}
	if bd.opt.WithMath {
		d, s := dst.mat, src.mat
		w.Run = func() { kernel.Pack(d, s) }
	}
	return dst, task.Leaf(w).WithAffinityMask(mask)
}

// subproblem describes one of the seven Strassen products at a node.
type subproblem struct {
	// terms for the left and right factors: quadrant operands and the
	// sign applied to the second one (0 = single operand).
	lx, ly operand
	lsub   bool
	lone   bool
	rx, ry operand
	rsub   bool
	rone   bool
}

// buildSubproblems returns the seven classic subproblem descriptors
// (paper Eq. 7, with the printed Q5 typo corrected to (A11+A12)·B22).
func buildSubproblems(a, b operand) [7]subproblem {
	a11, a12, a21, a22 := a.quad(0, 0), a.quad(0, 1), a.quad(1, 0), a.quad(1, 1)
	b11, b12, b21, b22 := b.quad(0, 0), b.quad(0, 1), b.quad(1, 0), b.quad(1, 1)
	return [7]subproblem{
		{lx: a11, ly: a22, rx: b11, ry: b22},                // Q1 = (A11+A22)(B11+B22)
		{lx: a21, ly: a22, rx: b11, rone: true},             // Q2 = (A21+A22)·B11
		{lx: a11, lone: true, rx: b12, ry: b22, rsub: true}, // Q3 = A11·(B12−B22)
		{lx: a22, lone: true, rx: b21, ry: b11, rsub: true}, // Q4 = A22·(B21−B11)
		{lx: a11, ly: a12, rx: b22, rone: true},             // Q5 = (A11+A12)·B22
		{lx: a21, ly: a11, lsub: true, rx: b11, ry: b12},    // Q6 = (A21−A11)(B11+B12)
		{lx: a12, ly: a22, lsub: true, rx: b21, ry: b22},    // Q7 = (A12−A22)(B21+B22)
	}
}

// factor materializes one factor of a subproblem for a consumer owned
// by mask: a sum/difference becomes an add into a local temp; a single
// quadrant is staged by copy in BFS mode or used in place in DFS mode.
func (bd *builder) factor(label string, lone bool, x, y operand, sub bool, mask task.Mask, stage bool) (operand, *task.Node) {
	if lone {
		if stage {
			return bd.copyLeaf(label+" stage", x, mask)
		}
		return x, nil
	}
	dst := bd.temp(x.n)
	run := func() {}
	if bd.opt.WithMath {
		dm, xm, ym := dst.mat, x.mat, y.mat
		if sub {
			run = func() { matrix.SubTo(dm, xm, ym) }
		} else {
			run = func() { matrix.AddTo(dm, xm, ym) }
		}
	}
	return dst, bd.addLeaf(label, dst, 1, []operand{x, y}, mask, run)
}

// bfsNode: the seven subproblems run concurrently on their owner
// subsets; operand sums and staged copies are pinned to the consumer.
func (bd *builder) bfsNode(c, a, b operand, depth, idx int) *task.Node {
	half := a.n / 2
	sub := buildSubproblems(a, b)
	q := make([]operand, 7)

	var prep []*task.Node
	var recs []*task.Node
	var gather []*task.Node
	mask := bd.ownerMask(depth, idx)
	gathered := make([]operand, 7)
	for k := 0; k < 7; k++ {
		q[k] = bd.temp(half)
		childMask := bd.ownerMask(depth+1, idx*7+k)
		l, lNode := bd.factor(fmt.Sprintf("bfs l%d n%d", k, half), sub[k].lone, sub[k].lx, sub[k].ly, sub[k].lsub, childMask, true)
		r, rNode := bd.factor(fmt.Sprintf("bfs r%d n%d", k, half), sub[k].rone, sub[k].rx, sub[k].ry, sub[k].rsub, childMask, true)
		if lNode != nil {
			prep = append(prep, lNode)
		}
		if rNode != nil {
			prep = append(prep, rNode)
		}
		recs = append(recs, bd.mul(q[k], l, r, depth+1, idx*7+k))
		// The inverse-BFS communication step: each product computed in a
		// child subset's buffers is gathered back for recombination.
		g, gNode := bd.copyLeaf(fmt.Sprintf("bfs gather q%d n%d", k, half), q[k], mask)
		gathered[k] = g
		gather = append(gather, gNode)
	}

	post := bd.recombine(c, gathered, mask)

	// 7 products, their 7 gathered copies, and up to 14 staged/summed
	// factors live concurrently.
	alloc := 28 * kernel.Bytes(half, half)
	return task.Seq(task.Par(prep...), task.Par(recs...), task.Par(gather...), post).WithAlloc(alloc)
}

// dfsNode: all owners compute the seven subproblems in sequence with
// work-shared additions; quadrant factors are used in place (no staging
// memory).
func (bd *builder) dfsNode(c, a, b operand, depth, idx int) *task.Node {
	half := a.n / 2
	sub := buildSubproblems(a, b)
	mask := bd.ownerMask(depth, idx)
	q := make([]operand, 7)

	var steps []*task.Node
	for k := 0; k < 7; k++ {
		q[k] = bd.temp(half)
		var pre []*task.Node
		l, lNode := bd.factor(fmt.Sprintf("dfs l%d n%d", k, half), sub[k].lone, sub[k].lx, sub[k].ly, sub[k].lsub, mask, false)
		r, rNode := bd.factor(fmt.Sprintf("dfs r%d n%d", k, half), sub[k].rone, sub[k].rx, sub[k].ry, sub[k].rsub, mask, false)
		if lNode != nil {
			pre = append(pre, lNode)
		}
		if rNode != nil {
			pre = append(pre, rNode)
		}
		step := []*task.Node{}
		if len(pre) > 0 {
			step = append(step, task.Par(pre...))
		}
		step = append(step, bd.mul(q[k], l, r, depth+1, idx*7+k))
		steps = append(steps, task.Seq(step...))
	}
	steps = append(steps, bd.recombine(c, q, mask))

	// Seven products plus two reusable factor temps at a time.
	alloc := 9 * kernel.Bytes(half, half)
	return task.Seq(steps...).WithAlloc(alloc)
}

// recombine emits the four C-quadrant recombination adds of Eq. 7.
func (bd *builder) recombine(c operand, q []operand, mask task.Mask) *task.Node {
	half := c.n / 2
	c11, c12, c21, c22 := c.quad(0, 0), c.quad(0, 1), c.quad(1, 0), c.quad(1, 1)
	mk := func(label string, dst operand, addOps int, srcs []operand, coeffs []float64) *task.Node {
		run := func() {}
		if bd.opt.WithMath {
			mats := make([]*matrix.Dense, len(srcs))
			for i, s := range srcs {
				mats[i] = s.mat
			}
			dm := dst.mat
			run = func() { combine(dm, mats, coeffs) }
		}
		return bd.addLeaf(label, dst, addOps, srcs, mask, run)
	}
	return task.Par(
		mk(fmt.Sprintf("c11 n%d", half), c11, 3, []operand{q[0], q[3], q[4], q[6]}, []float64{1, 1, -1, 1}),
		mk(fmt.Sprintf("c12 n%d", half), c12, 1, []operand{q[2], q[4]}, []float64{1, 1}),
		mk(fmt.Sprintf("c21 n%d", half), c21, 1, []operand{q[1], q[3]}, []float64{1, 1}),
		mk(fmt.Sprintf("c22 n%d", half), c22, 3, []operand{q[0], q[1], q[2], q[5]}, []float64{1, -1, 1, 1}),
	)
}

func combine(dst *matrix.Dense, srcs []*matrix.Dense, coeffs []float64) {
	if dst == nil {
		return
	}
	rows, cols := dst.Rows(), dst.Cols()
	for i := 0; i < rows; i++ {
		dr := dst.Row(i)
		for j := 0; j < cols; j++ {
			v := 0.0
			for k, s := range srcs {
				v += coeffs[k] * s.Row(i)[j]
			}
			dr[j] = v
		}
	}
}
