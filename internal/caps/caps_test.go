package caps

import (
	"math/rand"
	"testing"
	"testing/quick"

	"capscale/internal/hw"
	"capscale/internal/kernel"
	"capscale/internal/matrix"
	"capscale/internal/sim"
	"capscale/internal/strassen"
	"capscale/internal/task"
)

func machine() *hw.Machine { return hw.HaswellE31225() }

func mulVia(t *testing.T, n, workers int, opt Options) (*matrix.Dense, *matrix.Dense) {
	t.Helper()
	m := machine()
	rng := rand.New(rand.NewSource(int64(n)*17 + int64(workers)))
	a := matrix.Rand(rng, n, n)
	b := matrix.Rand(rng, n, n)
	c := matrix.New(n, n)
	opt.WithMath = true
	root := Build(m, c, a, b, workers, opt)
	sim.Run(m, root, sim.Config{Workers: workers, VerifyNumerics: true})
	want := matrix.New(n, n)
	matrix.MulNaive(want, a, b)
	return c, want
}

func TestMatchesNaive(t *testing.T) {
	for _, n := range []int{2, 4, 8, 16, 64, 128, 256} {
		got, want := mulVia(t, n, 4, Options{Cutover: 8})
		if !matrix.AlmostEqual(got, want, 1e-10) {
			t.Fatalf("n=%d: CAPS differs by %v", n, matrix.MaxAbsDiff(got, want))
		}
	}
}

func TestMatchesNaiveAllCutoffDepths(t *testing.T) {
	for _, depth := range []int{-1, 1, 2, 3, 4} {
		got, want := mulVia(t, 128, 3, Options{Cutover: 8, CutoffDepth: depth})
		if !matrix.AlmostEqual(got, want, 1e-10) {
			t.Fatalf("cutoff depth %d: CAPS differs by %v", depth, matrix.MaxAbsDiff(got, want))
		}
	}
}

func TestOddSizeFallsBackToDense(t *testing.T) {
	got, want := mulVia(t, 63, 2, Options{Cutover: 8})
	if !matrix.AlmostEqual(got, want, 1e-10) {
		t.Fatal("odd dimension wrong")
	}
}

func TestBuildPanics(t *testing.T) {
	m := machine()
	panicked := func(f func()) (p bool) {
		defer func() { p = recover() != nil }()
		f()
		return
	}
	if !panicked(func() {
		Build(m, matrix.New(4, 4), matrix.New(4, 4), matrix.New(8, 8), 2, Options{})
	}) {
		t.Fatal("mismatched shapes accepted")
	}
	if !panicked(func() {
		Build(m, matrix.New(4, 4), matrix.New(4, 4), matrix.New(4, 4), 0, Options{})
	}) {
		t.Fatal("zero workers accepted")
	}
}

func TestSameArithmeticAsStrassen(t *testing.T) {
	// CAPS reorganizes the schedule but performs the same multiply and
	// recombination flops as classic Strassen; only copies differ.
	m := machine()
	n := 512
	a, b, c := matrix.New(n, n), matrix.New(n, n), matrix.New(n, n)
	capsStats := task.Collect(Build(m, c, a, b, 4, Options{}))
	strStats := task.Collect(strassen.Build(m, c, a, b, 4, strassen.Options{}))
	if capsStats.FlopsByKind[task.KindBaseMul] != strStats.FlopsByKind[task.KindBaseMul] {
		t.Fatalf("mul flops differ: %v vs %v",
			capsStats.FlopsByKind[task.KindBaseMul], strStats.FlopsByKind[task.KindBaseMul])
	}
	if capsStats.FlopsByKind[task.KindAdd] != strStats.FlopsByKind[task.KindAdd] {
		t.Fatalf("add flops differ: %v vs %v",
			capsStats.FlopsByKind[task.KindAdd], strStats.FlopsByKind[task.KindAdd])
	}
}

func TestBFSStagesCopies(t *testing.T) {
	m := machine()
	n := 512
	a, b, c := matrix.New(n, n), matrix.New(n, n), matrix.New(n, n)
	withBFS := task.Collect(Build(m, c, a, b, 4, Options{CutoffDepth: 2}))
	pureDFS := task.Collect(Build(m, c, a, b, 4, Options{CutoffDepth: -1}))
	// Copies carry no flops; count leaves by walking.
	count := func(root *task.Node) int {
		c := 0
		root.Walk(func(nd *task.Node) {
			if nd.IsLeaf() && nd.Work().Kind == task.KindCopy {
				c++
			}
		})
		return c
	}
	bfsCopies := count(Build(m, c, a, b, 4, Options{CutoffDepth: 2}))
	dfsCopies := count(Build(m, c, a, b, 4, Options{CutoffDepth: -1}))
	if bfsCopies == 0 {
		t.Fatal("BFS levels staged no copies")
	}
	if dfsCopies != 0 {
		t.Fatalf("pure DFS staged %v copies", dfsCopies)
	}
	// And BFS needs more buffer memory.
	if withBFS.AllocPeak <= pureDFS.AllocPeak {
		t.Fatalf("BFS alloc %v not above DFS alloc %v", withBFS.AllocPeak, pureDFS.AllocPeak)
	}
}

func TestCommunicationBelowStrassen(t *testing.T) {
	// The headline mechanism: at 4 threads CAPS charges less remote
	// traffic than task-parallel Strassen.
	m := machine()
	n := 1024
	a, b, c := matrix.New(n, n), matrix.New(n, n), matrix.New(n, n)
	capsRes := sim.Run(m, Build(m, c, a, b, 4, Options{}), sim.Config{Workers: 4})
	strRes := sim.Run(m, strassen.Build(m, c, a, b, 4, strassen.Options{}), sim.Config{Workers: 4})
	if capsRes.RemoteBytes >= strRes.RemoteBytes {
		t.Fatalf("CAPS remote %v not below Strassen remote %v",
			capsRes.RemoteBytes, strRes.RemoteBytes)
	}
}

func TestLoadBalanceAtFourWorkers(t *testing.T) {
	m := machine()
	n := 1024
	a, b, c := matrix.New(n, n), matrix.New(n, n), matrix.New(n, n)
	res := sim.Run(m, Build(m, c, a, b, 4, Options{}), sim.Config{Workers: 4})
	minB, maxB := res.WorkerBusy[0], res.WorkerBusy[0]
	for _, v := range res.WorkerBusy {
		if v < minB {
			minB = v
		}
		if v > maxB {
			maxB = v
		}
	}
	if minB == 0 || maxB/minB > 1.5 {
		t.Fatalf("block ownership imbalanced: busy times %v", res.WorkerBusy)
	}
}

func TestOwnerMaskPartition(t *testing.T) {
	bd := &builder{workers: 4, bfsLevels: 2, leavesAtCutoff: 49}
	// Root owns everyone.
	if got := bd.ownerMask(0, 0); !got.Equal(task.MaskRange(0, 3)) {
		t.Fatalf("root mask %v", got)
	}
	// Cutoff-level units: block partition, monotone, all workers used.
	seen := make(map[int]bool)
	prev := -1
	for i := 0; i < 49; i++ {
		mask := bd.ownerMask(2, i)
		w := mask.Single()
		if w < 0 {
			t.Fatalf("unit %d mask %v not a single worker", i, mask)
		}
		if w < prev {
			t.Fatalf("ownership not monotone at unit %d", i)
		}
		prev = w
		seen[w] = true
	}
	if len(seen) != 4 {
		t.Fatalf("not all workers own units: %v", seen)
	}
}

func TestPropertyOwnerMaskDeepDepthsInheritAncestor(t *testing.T) {
	// Below the cutoff depth, a node's mask equals its cutoff-level
	// ancestor's — the invariant that keeps DFS subtrees pinned.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		levels := 1 + rng.Intn(3)
		units := 1
		for i := 0; i < levels; i++ {
			units *= 7
		}
		bd := &builder{workers: 1 + rng.Intn(4), bfsLevels: levels, leavesAtCutoff: units}
		idx := rng.Intn(units)
		base := bd.ownerMask(levels, idx)
		// Descend a few random levels below the cutoff.
		deepIdx := idx
		depth := levels
		for i := 0; i < 1+rng.Intn(3); i++ {
			deepIdx = deepIdx*7 + rng.Intn(7)
			depth++
		}
		return bd.ownerMask(depth, deepIdx).Equal(base)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestPureDFSUnrestricted(t *testing.T) {
	bd := &builder{workers: 4, bfsLevels: 0, leavesAtCutoff: 1}
	if got := bd.ownerMask(3, 5); !got.IsEmpty() {
		t.Fatalf("pure DFS mask %v, want empty (unrestricted)", got)
	}
}

func TestDefaultCutoffDepthClipped(t *testing.T) {
	// 128 with cutover 64 has only one recursion level; BFS must clip.
	m := machine()
	n := 128
	a, b, c := matrix.New(n, n), matrix.New(n, n), matrix.New(n, n)
	root := Build(m, c, a, b, 4, Options{})
	stats := task.Collect(root)
	if stats.FlopsByKind[task.KindBaseMul] != strassen.MulFlopsTotal(n, strassen.DefaultCutover) {
		t.Fatal("clipped BFS changed arithmetic")
	}
}

func TestPropertyMatchesNaiveExactInts(t *testing.T) {
	m := machine()
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 << (1 + rng.Intn(5))
		workers := 1 + rng.Intn(4)
		depth := rng.Intn(4) - 1
		a := matrix.RandInts(rng, n, n, 3)
		b := matrix.RandInts(rng, n, n, 3)
		c := matrix.New(n, n)
		root := Build(m, c, a, b, workers, Options{Cutover: 2, CutoffDepth: depth, WithMath: true})
		sim.Run(m, root, sim.Config{Workers: workers, VerifyNumerics: true})
		want := matrix.New(n, n)
		matrix.MulNaive(want, a, b)
		return matrix.Equal(c, want)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyAllocGrowsWithCutoffDepth(t *testing.T) {
	m := machine()
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 128 << rng.Intn(2) // 128 or 256
		a, b, c := matrix.New(n, n), matrix.New(n, n), matrix.New(n, n)
		shallow := task.Collect(Build(m, c, a, b, 4, Options{CutoffDepth: 1, Cutover: 32}))
		deep := task.Collect(Build(m, c, a, b, 4, Options{CutoffDepth: 2, Cutover: 32}))
		return deep.AllocPeak >= shallow.AllocPeak
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 6}); err != nil {
		t.Fatal(err)
	}
}

func TestCopyAccountingUsesKernelFormulas(t *testing.T) {
	m := machine()
	n := 256
	a, b, c := matrix.New(n, n), matrix.New(n, n), matrix.New(n, n)
	root := Build(m, c, a, b, 4, Options{CutoffDepth: 1})
	total := 0.0
	root.Walk(func(nd *task.Node) {
		if nd.IsLeaf() && nd.Work().Kind == task.KindCopy {
			w := nd.Work()
			total += w.DRAMBytes + w.L3Bytes
		}
	})
	// One BFS level stages 4 quadrant copies and gathers 7 products of
	// 128², each copy moving 2·bytes (one read, one write).
	want := (4 + 7) * 2 * kernel.Bytes(128, 128)
	if total != want {
		t.Fatalf("copy traffic %v want %v", total, want)
	}
}
