// Package mpi is a message-passing layer over the simulated cluster:
// rank programs written as ordinary Go functions exchange virtual-time
// messages (LogP-style: per-message CPU overhead on both ends, wire
// latency, bandwidth-limited transfer) and advance their local clocks
// through compute phases costed by the node's machine model. Energy —
// node compute, NIC transfer, and cluster idle/switch draw — is
// integrated alongside, giving the "multifaceted model of algorithmic
// energy performance scaling" the paper's future work calls for.
//
// Determinism: message matching is FIFO per (source, destination,
// tag) and receives always name their source, so results are
// independent of goroutine interleaving.
package mpi

import (
	"fmt"
	"sort"
	"sync"

	"capscale/internal/cluster"
	"capscale/internal/hw"
	"capscale/internal/sim"
	"capscale/internal/task"
)

// ComputeWork is one local compute phase of a rank program.
type ComputeWork struct {
	// Kind selects the kernel-efficiency class of the node model.
	Kind task.Kind
	// Flops and DRAMBytes are totals for the phase.
	Flops     float64
	DRAMBytes float64
	// Cores is how many of the node's cores the phase uses (0 = all).
	Cores int
}

// Result summarizes a distributed run.
type Result struct {
	// Makespan is the latest rank finish time, seconds.
	Makespan float64
	// Energy components in joules: node activity above idle, NIC
	// transfer, and the whole-cluster idle baseline over the makespan.
	ComputeJoules float64
	NICJoules     float64
	IdleJoules    float64
	// BytesSent is total traffic offered to the fabric (bytes on the
	// wire); Messages the message count.
	BytesSent float64
	Messages  int
	// CritAlphaTerms counts exposed message latencies on the critical
	// rank: the maximum over ranks of receives that actually stalled
	// the rank's clock (arrival later than its local time). For a
	// binomial collective this is the α·⌈log P⌉ term of the critical
	// path, measured rather than modeled.
	CritAlphaTerms int
	// CritCommSeconds is the maximum over ranks of time spent
	// communicating: per-message CPU overheads plus exposed wire
	// stalls.
	CritCommSeconds float64
	// RankFinish and RankBusy are per-rank clocks and busy seconds.
	RankFinish []float64
	RankBusy   []float64
}

// TotalJoules returns the run's full energy.
func (r *Result) TotalJoules() float64 { return r.ComputeJoules + r.NICJoules + r.IdleJoules }

// AvgWatts returns mean cluster draw over the makespan.
func (r *Result) AvgWatts() float64 {
	if r.Makespan == 0 {
		return 0
	}
	return r.TotalJoules() / r.Makespan
}

// msgKey routes messages: FIFO queue per (dst, src, tag).
type msgKey struct {
	dst, src, tag int
}

type message struct {
	bytes  float64
	arrive float64
}

// world is the shared state of one Run.
type world struct {
	c  *cluster.Cluster
	mu sync.Mutex
	cv *sync.Cond
	// queues holds in-flight messages.
	queues map[msgKey][]message
	// waiting records what each blocked rank is waiting for; alive
	// counts unfinished ranks. Every live rank waiting with no
	// deliverable message anywhere is a deadlock.
	waiting map[int]msgKey
	alive   int
	// record arms per-rank power-event collection so the run can be
	// rendered as a cluster power timeline (RunTraced).
	record bool
}

// powerEvent is a signed plane-power delta at one instant of virtual
// time: +power at a contribution's start, −power at its end. Sweeping
// the sorted deltas reconstructs the piecewise-constant cluster
// timeline.
type powerEvent struct {
	t  float64
	pw hw.PlanePower
}

// anyDeliverable reports whether any blocked rank's awaited queue has
// a message (a transient state: that rank will wake and drain it).
func (w *world) anyDeliverable() bool {
	for _, k := range w.waiting {
		if len(w.queues[k]) > 0 {
			return true
		}
	}
	return false
}

// Rank is one process of the distributed program. Methods must only be
// called from the rank's own goroutine.
type Rank struct {
	w    *world
	id   int
	size int

	now     float64
	busy    float64
	energyJ float64 // activity premium above node idle
	nicJ    float64
	sent    float64
	msgs    int

	// Communication critical-path accounting.
	alphaStalls int     // receives that stalled this rank's clock
	commSec     float64 // overheads + exposed wire stalls

	// Power-event log (RunTraced only).
	events []powerEvent
}

// emit records one constant-power contribution over [start, end).
func (r *Rank) emit(start, end float64, pw hw.PlanePower) {
	if !r.w.record || end <= start {
		return
	}
	r.events = append(r.events, powerEvent{t: start, pw: pw})
	r.events = append(r.events, powerEvent{t: end, pw: hw.PlanePower{}.Sub(pw)})
}

// ID returns the rank's index in [0, Size).
func (r *Rank) ID() int { return r.id }

// Size returns the communicator size.
func (r *Rank) Size() int { return r.size }

// Now returns the rank's virtual clock.
func (r *Rank) Now() float64 { return r.now }

// Compute advances the rank's clock through a local compute phase and
// integrates its energy premium over the node's idle draw.
func (r *Rank) Compute(w ComputeWork) {
	m := r.w.c.Node
	cores := w.Cores
	if cores <= 0 || cores > m.Cores {
		cores = m.Cores
	}
	perCore := &task.Work{
		Kind:      w.Kind,
		Flops:     w.Flops / float64(cores),
		DRAMBytes: w.DRAMBytes / float64(cores),
	}
	cost := m.CostLeaf(perCore, m.Shared(cores), 0, false)
	acts := make([]hw.Activity, cores)
	for i := range acts {
		acts[i] = hw.Activity{Utilization: cost.Utilization, DRAMRate: cost.DRAMRate}
	}
	planePremium := m.SegmentPower(acts).Sub(m.IdlePower())
	r.emit(r.now, r.now+cost.Duration, planePremium)
	r.now += cost.Duration
	r.busy += cost.Duration
	r.energyJ += planePremium.Total() * cost.Duration
}

// Sleep advances the rank's clock without activity.
func (r *Rank) Sleep(seconds float64) {
	if seconds < 0 {
		panic(fmt.Sprintf("mpi: negative sleep %v", seconds))
	}
	r.now += seconds
}

// Send posts bytes to rank `to` under `tag`. The sender pays the
// per-message CPU overhead; the wire time is charged to the message's
// arrival. Sends are buffered (eager) and never block.
func (r *Rank) Send(to, tag int, bytes float64) {
	if to < 0 || to >= r.size {
		panic(fmt.Sprintf("mpi: send to rank %d of %d", to, r.size))
	}
	if to == r.id {
		panic("mpi: send to self")
	}
	if bytes < 0 {
		panic(fmt.Sprintf("mpi: negative message size %v", bytes))
	}
	fab := &r.w.c.Fabric
	r.chargeOverhead()
	arrive := r.now + fab.TransferTime(bytes)
	r.sent += bytes
	r.msgs++
	r.nicJ += fab.NICPerGBs * bytes / 1e9
	// The message's full NIC transfer energy — this end's charge plus
	// the receiver's matching one — drawn evenly over the wire window.
	if wire := 2 * fab.NICPerGBs * bytes / 1e9; wire > 0 && arrive > r.now {
		r.emit(r.now, arrive, hw.PlanePower{NIC: wire / (arrive - r.now)})
	}

	w := r.w
	w.mu.Lock()
	key := msgKey{dst: to, src: r.id, tag: tag}
	w.queues[key] = append(w.queues[key], message{bytes: bytes, arrive: arrive})
	w.cv.Broadcast()
	w.mu.Unlock()
}

// Recv blocks until the next message from `from` under `tag` arrives,
// advances the clock to its arrival, pays the receive overhead, and
// returns the message size. Receiving from an unknown source or a
// cycle of waiting ranks panics with a deadlock diagnosis.
func (r *Rank) Recv(from, tag int) float64 {
	if from < 0 || from >= r.size {
		panic(fmt.Sprintf("mpi: recv from rank %d of %d", from, r.size))
	}
	if from == r.id {
		panic("mpi: recv from self")
	}
	w := r.w
	key := msgKey{dst: r.id, src: from, tag: tag}
	w.mu.Lock()
	for len(w.queues[key]) == 0 {
		w.waiting[r.id] = key
		if len(w.waiting) == w.alive && !w.anyDeliverable() {
			delete(w.waiting, r.id)
			w.mu.Unlock()
			panic(fmt.Sprintf("mpi: deadlock — every live rank is waiting (rank %d on src %d tag %d)", r.id, from, tag))
		}
		w.cv.Wait()
		delete(w.waiting, r.id)
	}
	msg := w.queues[key][0]
	w.queues[key] = w.queues[key][1:]
	w.mu.Unlock()

	if msg.arrive > r.now {
		// The wire is on the rank's critical path: an exposed α (plus
		// serialization) stall rather than overlap with local work.
		r.alphaStalls++
		r.commSec += msg.arrive - r.now
		r.now = msg.arrive
	}
	r.chargeOverhead()
	r.nicJ += w.c.Fabric.NICPerGBs * msg.bytes / 1e9
	return msg.bytes
}

// SendRecv exchanges messages with a partner (both directions, same
// tag) and returns the received size — the building block of the
// pairwise-exchange collectives.
func (r *Rank) SendRecv(peer, tag int, bytes float64) float64 {
	r.Send(peer, tag, bytes)
	return r.Recv(peer, tag)
}

// chargeOverhead advances the clock by the per-message CPU overhead
// and charges its energy as a lightly active core (on the PKG/PP0
// planes: message processing is core work).
func (r *Rank) chargeOverhead() {
	o := r.w.c.Fabric.PerMessageOverheadSec
	if o == 0 {
		return
	}
	m := r.w.c.Node
	premium := m.Power.CoreIdle + 0.3*m.Power.CoreDyn
	r.emit(r.now, r.now+o, hw.PlanePower{PKG: premium, PP0: premium})
	r.now += o
	r.busy += o
	r.commSec += o
	r.energyJ += premium * o
}

// Run executes prog on `ranks` ranks of cluster c (one rank per node)
// and integrates cluster energy over the run. It panics on invalid
// rank counts and propagates the first rank panic.
func Run(c *cluster.Cluster, ranks int, prog func(*Rank)) *Result {
	res, _ := run(c, ranks, prog, false)
	return res
}

// RunTraced is Run plus a cluster power timeline: the piecewise-
// constant per-plane draw (node PKG/PP0/DRAM summed over ranks, NIC,
// switch) over the run's virtual time. The timeline integrates
// exactly to Result.TotalJoules(), so it can drive the monitor stack
// (rapl.Device.Advance per segment) and reconcile against the run.
func RunTraced(c *cluster.Cluster, ranks int, prog func(*Rank)) (*Result, []sim.Segment) {
	res, rs := run(c, ranks, prog, true)
	return res, mergeTimeline(c, rs, res.Makespan)
}

func run(c *cluster.Cluster, ranks int, prog func(*Rank), record bool) (*Result, []*Rank) {
	if ranks <= 0 || ranks > c.Nodes {
		panic(fmt.Sprintf("mpi: %d ranks on %d nodes", ranks, c.Nodes))
	}
	w := &world{c: c, queues: make(map[msgKey][]message), waiting: make(map[int]msgKey), alive: ranks, record: record}
	w.cv = sync.NewCond(&w.mu)

	rs := make([]*Rank, ranks)
	for i := range rs {
		rs[i] = &Rank{w: w, id: i, size: ranks}
	}

	var wg sync.WaitGroup
	var panicMu sync.Mutex
	var panicked any
	for _, r := range rs {
		r := r
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer func() {
				if v := recover(); v != nil {
					panicMu.Lock()
					if panicked == nil {
						panicked = v
					}
					panicMu.Unlock()
				}
				w.mu.Lock()
				w.alive--
				w.cv.Broadcast()
				w.mu.Unlock()
			}()
			prog(r)
		}()
	}
	wg.Wait()
	if panicked != nil {
		panic(panicked)
	}

	res := &Result{
		RankFinish: make([]float64, ranks),
		RankBusy:   make([]float64, ranks),
	}
	for i, r := range rs {
		res.RankFinish[i] = r.now
		res.RankBusy[i] = r.busy
		res.ComputeJoules += r.energyJ
		res.NICJoules += r.nicJ
		res.BytesSent += r.sent
		res.Messages += r.msgs
		if r.now > res.Makespan {
			res.Makespan = r.now
		}
		if r.alphaStalls > res.CritAlphaTerms {
			res.CritAlphaTerms = r.alphaStalls
		}
		if r.commSec > res.CritCommSeconds {
			res.CritCommSeconds = r.commSec
		}
	}
	res.IdleJoules = c.IdlePowerFor(ranks) * res.Makespan
	return res, rs
}

// mergeTimeline folds every rank's signed power deltas, plus the
// cluster idle baseline over [0, makespan), into a piecewise-constant
// per-plane timeline. Events are concatenated in rank order and
// stable-sorted by time, so equal-time deltas apply in a fixed order
// and the timeline is deterministic.
func mergeTimeline(c *cluster.Cluster, rs []*Rank, makespan float64) []sim.Segment {
	if makespan <= 0 {
		return nil
	}
	idle := c.Node.IdlePower()
	n := float64(len(rs))
	base := hw.PlanePower{
		PKG:    idle.PKG * n,
		PP0:    idle.PP0 * n,
		DRAM:   idle.DRAM * n,
		NIC:    c.Fabric.NICIdleWatts * n,
		Switch: c.Fabric.SwitchIdleWatts,
	}
	var events []powerEvent
	for _, r := range rs {
		events = append(events, r.events...)
	}
	sort.SliceStable(events, func(i, j int) bool { return events[i].t < events[j].t })

	var segs []sim.Segment
	cur := base
	prev := 0.0
	for i := 0; i < len(events); {
		t := events[i].t
		if t > prev {
			segs = append(segs, sim.Segment{Start: prev, End: t, Power: cur})
			prev = t
		}
		for i < len(events) && events[i].t == t {
			cur = cur.Add(events[i].pw)
			i++
		}
	}
	if makespan > prev {
		segs = append(segs, sim.Segment{Start: prev, End: makespan, Power: cur})
	}
	return segs
}
