package mpi

import (
	"math"
	"testing"
)

// TestAllreducePhaseTagsIsolatedFromUserTraffic is the regression test
// for the composite-collective tag collision: Allreduce used to run
// its Reduce and Bcast phases on the caller's tag verbatim, so any
// point-to-point message in flight on that tag could be matched by a
// phase recv (FIFO queues are keyed only by dst/src/tag). Here rank 0
// posts a 5-byte user message on tag 7 before entering Allreduce(7);
// with shared tags, rank 1's Bcast-phase recv consumed that user
// message and the explicit Recv afterwards saw the 1000-byte Bcast
// payload instead. With the reserved per-phase namespace the user
// message survives the collective untouched.
func TestAllreducePhaseTagsIsolatedFromUserTraffic(t *testing.T) {
	c := testCluster(2)
	Run(c, 2, func(r *Rank) {
		if r.ID() == 0 {
			r.Send(1, 7, 5)
			r.Allreduce(7, 1000)
		} else {
			r.Allreduce(7, 1000)
			if got := r.Recv(0, 7); got != 5 {
				panic("Allreduce phase consumed the user's tag-7 message")
			}
		}
	})
}

// TestAllreduceAdversarialPhaseInterleaving drives ranks into the two
// phases at wildly skewed virtual times (each rank sleeps a different
// amount, twice, between back-to-back same-tag Allreduces) so that
// fast ranks are deep in a later phase while slow ranks still sit in
// an earlier one. Every phase message must still match its own phase:
// the run is deterministic and the traffic is exactly 2·(P−1)
// messages per Allreduce.
func TestAllreduceAdversarialPhaseInterleaving(t *testing.T) {
	const size = 6
	const rounds = 3
	c := testCluster(size)
	prog := func(r *Rank) {
		for k := 0; k < rounds; k++ {
			// Adversarial skew: a different rank is the straggler in
			// each round.
			r.Sleep(float64((r.ID()+k)%size) * 0.01)
			r.Allreduce(3, 1e4)
		}
	}
	a := Run(c, size, prog)
	b := Run(c, size, prog)
	wantMsgs := rounds * 2 * (size - 1)
	if a.Messages != wantMsgs {
		t.Fatalf("message count %d want %d (phase cross-match?)", a.Messages, wantMsgs)
	}
	if a.Makespan != b.Makespan || a.TotalJoules() != b.TotalJoules() || a.BytesSent != b.BytesSent {
		t.Fatal("skewed same-tag Allreduces are not deterministic")
	}
}

func TestAllreduceRejectsReservedTags(t *testing.T) {
	c := testCluster(2)
	for _, tag := range []int{phaseTagBase, phaseTagBase + 1, -1} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("tag %d accepted", tag)
				}
			}()
			Run(c, 2, func(r *Rank) { r.Allreduce(tag, 1) })
		}()
	}
}

// Oracle tests: pin each binomial collective's modeled volume,
// message count, and zero-byte critical path against closed forms at
// the non-power-of-two sizes P = 6 and 12. With bytes = 0 every
// transfer costs exactly α and the combine work vanishes, so the
// makespan isolates the o/α latency structure of the clamped binomial
// tree: the α coefficient is the tree depth and the o coefficient
// counts the serialized send/recv overheads on the deepest chain.
func TestBinomialCollectiveOracles(t *testing.T) {
	cases := []struct {
		size int
		// volume multipliers (× per-rank bytes) for data-bearing runs
		bcastVol, gatherVol float64
		// zero-byte critical path: oCoeff·o + aCoeff·α
		oCoeff, aCoeff float64
	}{
		// P=6 tree (root 0): edges 1→0, 2→0, 3→2, 4→0, 5→4; depth 2.
		// Gather/Scatter edge loads: 1+2+1+2+1 = 7 blocks.
		{size: 6, bcastVol: 5, gatherVol: 7, oCoeff: 5, aCoeff: 2},
		// P=12 tree: depth 3; subtree loads 1+2+1+4+1+2+1+4+1+2+1 = 20.
		{size: 12, bcastVol: 11, gatherVol: 20, oCoeff: 7, aCoeff: 3},
	}
	const per = 1e4
	for _, tc := range cases {
		c := testCluster(tc.size)
		o := c.Fabric.PerMessageOverheadSec
		alpha := c.Fabric.LatencySec
		wantPath := tc.oCoeff*o + tc.aCoeff*alpha

		colls := []struct {
			name    string
			run     func(r *Rank, bytes float64)
			volume  float64 // × per
			hasPath bool
		}{
			{"Bcast", func(r *Rank, b float64) { r.Bcast(0, 0, b) }, tc.bcastVol, true},
			{"Reduce", func(r *Rank, b float64) { r.Reduce(0, 0, b) }, tc.bcastVol, true},
			{"Gather", func(r *Rank, b float64) { r.Gather(0, 0, b) }, tc.gatherVol, true},
			{"Scatter", func(r *Rank, b float64) { r.Scatter(0, 0, b) }, tc.gatherVol, true},
		}
		for _, cl := range colls {
			// Volume and message count with a data-bearing payload.
			res := Run(c, tc.size, func(r *Rank) { cl.run(r, per) })
			if wantV := cl.volume * per; math.Abs(res.BytesSent-wantV) > 1e-9 {
				t.Errorf("P=%d %s volume %v want %v", tc.size, cl.name, res.BytesSent, wantV)
			}
			if res.Messages != tc.size-1 {
				t.Errorf("P=%d %s messages %d want %d", tc.size, cl.name, res.Messages, tc.size-1)
			}
			// Critical path with a zero-byte payload.
			if cl.hasPath {
				z := Run(c, tc.size, func(r *Rank) { cl.run(r, 0) })
				if math.Abs(z.Makespan-wantPath)/wantPath > 1e-9 {
					t.Errorf("P=%d %s critical path %v want %v (= %g·o + %g·α)",
						tc.size, cl.name, z.Makespan, wantPath, tc.oCoeff, tc.aCoeff)
				}
			}
		}
	}
}
