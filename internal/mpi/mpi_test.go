package mpi

import (
	"math"
	"testing"

	"capscale/internal/cluster"
	"capscale/internal/task"
)

func testCluster(nodes int) *cluster.Cluster {
	return cluster.TS140Cluster(nodes)
}

func TestRunPanicsOnBadRanks(t *testing.T) {
	c := testCluster(2)
	for _, ranks := range []int{0, -1, 3} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("ranks=%d accepted", ranks)
				}
			}()
			Run(c, ranks, func(r *Rank) {})
		}()
	}
}

func TestPingPongTiming(t *testing.T) {
	c := testCluster(2)
	bytes := 1e6
	res := Run(c, 2, func(r *Rank) {
		if r.ID() == 0 {
			r.Send(1, 0, bytes)
			r.Recv(1, 1)
		} else {
			r.Recv(0, 0)
			r.Send(0, 1, bytes)
		}
	})
	fab := c.Fabric
	// Round trip: 2 transfers + 4 CPU overheads on the critical path.
	want := 2*fab.TransferTime(bytes) + 4*fab.PerMessageOverheadSec
	if math.Abs(res.Makespan-want)/want > 1e-9 {
		t.Fatalf("ping-pong makespan %v want %v", res.Makespan, want)
	}
	if res.Messages != 2 || res.BytesSent != 2*bytes {
		t.Fatalf("traffic accounting: %d msgs %v bytes", res.Messages, res.BytesSent)
	}
}

func TestRecvWaitsForArrival(t *testing.T) {
	c := testCluster(2)
	res := Run(c, 2, func(r *Rank) {
		if r.ID() == 0 {
			r.Sleep(1.0) // sender is late
			r.Send(1, 0, 1000)
		} else {
			r.Recv(0, 0) // must advance past sender's clock
		}
	})
	if res.RankFinish[1] <= 1.0 {
		t.Fatalf("receiver finished at %v, before the sender acted", res.RankFinish[1])
	}
}

func TestMessageOrderFIFOPerTag(t *testing.T) {
	c := testCluster(2)
	res := Run(c, 2, func(r *Rank) {
		if r.ID() == 0 {
			r.Send(1, 7, 100)
			r.Send(1, 7, 200)
		} else {
			if got := r.Recv(0, 7); got != 100 {
				panic("first message out of order")
			}
			if got := r.Recv(0, 7); got != 200 {
				panic("second message out of order")
			}
		}
	})
	if res.Messages != 2 {
		t.Fatal("message count")
	}
}

func TestTagsIsolate(t *testing.T) {
	c := testCluster(2)
	Run(c, 2, func(r *Rank) {
		if r.ID() == 0 {
			r.Send(1, 1, 111)
			r.Send(1, 2, 222)
		} else {
			// Receive in the opposite tag order.
			if got := r.Recv(0, 2); got != 222 {
				panic("tag 2 payload wrong")
			}
			if got := r.Recv(0, 1); got != 111 {
				panic("tag 1 payload wrong")
			}
		}
	})
}

func TestDeadlockDetected(t *testing.T) {
	c := testCluster(2)
	defer func() {
		if recover() == nil {
			t.Fatal("mutual recv did not panic")
		}
	}()
	Run(c, 2, func(r *Rank) {
		r.Recv(1-r.ID(), 0) // both wait forever
	})
}

func TestRankPanicsPropagate(t *testing.T) {
	c := testCluster(2)
	defer func() {
		if v := recover(); v != "rank boom" {
			t.Fatalf("recovered %v", v)
		}
	}()
	Run(c, 2, func(r *Rank) {
		if r.ID() == 1 {
			panic("rank boom")
		}
	})
}

func TestComputeAdvancesClockAndEnergy(t *testing.T) {
	c := testCluster(1)
	res := Run(c, 1, func(r *Rank) {
		r.Compute(ComputeWork{Kind: task.KindGEMM, Flops: 1e9})
	})
	if res.Makespan <= 0 || res.ComputeJoules <= 0 {
		t.Fatalf("compute phase: %v s, %v J", res.Makespan, res.ComputeJoules)
	}
	// ~1e9 flops on 4 cores at ~23.5 GF/core.
	want := 1e9 / (4 * 25.6e9 * 0.92)
	if math.Abs(res.Makespan-want)/want > 0.05 {
		t.Fatalf("compute time %v want ~%v", res.Makespan, want)
	}
}

func TestEnergyComponentsPositive(t *testing.T) {
	c := testCluster(4)
	res := Run(c, 4, func(r *Rank) {
		r.Compute(ComputeWork{Kind: task.KindGEMM, Flops: 1e8})
		r.Allreduce(0, 1e5)
	})
	if res.ComputeJoules <= 0 || res.NICJoules <= 0 || res.IdleJoules <= 0 {
		t.Fatalf("energy components %v %v %v", res.ComputeJoules, res.NICJoules, res.IdleJoules)
	}
	if res.TotalJoules() != res.ComputeJoules+res.NICJoules+res.IdleJoules {
		t.Fatal("total mismatch")
	}
	if res.AvgWatts() <= c.IdlePower()*0.99 {
		t.Fatalf("avg watts %v below idle %v", res.AvgWatts(), c.IdlePower())
	}
}

func TestDeterminism(t *testing.T) {
	c := testCluster(7)
	prog := func(r *Rank) {
		r.Compute(ComputeWork{Kind: task.KindGEMM, Flops: float64(r.ID()+1) * 1e7})
		r.Allreduce(3, 1e5)
		r.Alltoall(4, 1e4)
		r.Reduce(2, 5, 2e5)
	}
	a := Run(c, 7, prog)
	b := Run(c, 7, prog)
	if a.Makespan != b.Makespan || a.TotalJoules() != b.TotalJoules() || a.BytesSent != b.BytesSent {
		t.Fatal("two identical distributed runs differ")
	}
}

func TestBcastReachesEveryone(t *testing.T) {
	for _, size := range []int{1, 2, 3, 4, 5, 7, 8} {
		c := testCluster(size)
		res := Run(c, size, func(r *Rank) {
			r.Bcast(size/2, 0, 1e5)
		})
		// Every non-root rank receives exactly once: size-1 messages.
		if res.Messages != size-1 {
			t.Errorf("size %d: %d messages want %d", size, res.Messages, size-1)
		}
	}
}

func TestBcastLogDepth(t *testing.T) {
	// Binomial broadcast's critical path grows like ceil(log2 P), not P.
	c8 := testCluster(8)
	c2 := testCluster(2)
	bytes := 1e6
	t8 := Run(c8, 8, func(r *Rank) { r.Bcast(0, 0, bytes) }).Makespan
	t2 := Run(c2, 2, func(r *Rank) { r.Bcast(0, 0, bytes) }).Makespan
	if t8 > t2*3.5 { // log2(8)=3 rounds vs 1
		t.Fatalf("bcast depth not logarithmic: %v vs %v", t8, t2)
	}
	if t8 <= t2 {
		t.Fatal("bigger broadcast should take longer")
	}
}

func TestReduceMessageCount(t *testing.T) {
	for _, size := range []int{2, 3, 5, 8} {
		c := testCluster(size)
		res := Run(c, size, func(r *Rank) { r.Reduce(0, 0, 1e4) })
		if res.Messages != size-1 {
			t.Errorf("size %d: %d messages want %d", size, res.Messages, size-1)
		}
	}
}

func TestGatherScatterVolume(t *testing.T) {
	size := 8
	per := 1e4
	c := testCluster(size)
	gather := Run(c, size, func(r *Rank) { r.Gather(0, 0, per) })
	// Binomial gather forwards subtrees: total volume is per·Σ subtree
	// sizes = per · (size-1 leaves' worth + forwarded) — at minimum
	// (size-1)·per, at most per·size·log2(size).
	if gather.BytesSent < per*float64(size-1) {
		t.Fatalf("gather volume %v too small", gather.BytesSent)
	}
	scatter := Run(c, size, func(r *Rank) { r.Scatter(0, 0, per) })
	if scatter.BytesSent < per*float64(size-1) {
		t.Fatalf("scatter volume %v too small", scatter.BytesSent)
	}
	// Gather and scatter move the same data in opposite directions.
	if math.Abs(gather.BytesSent-scatter.BytesSent) > 1e-9 {
		t.Fatalf("gather %v vs scatter %v volumes differ", gather.BytesSent, scatter.BytesSent)
	}
}

func TestAlltoallVolume(t *testing.T) {
	size := 5
	per := 1e3
	c := testCluster(size)
	res := Run(c, size, func(r *Rank) { r.Alltoall(0, per) })
	want := per * float64(size) * float64(size-1)
	if math.Abs(res.BytesSent-want) > 1e-9 {
		t.Fatalf("alltoall volume %v want %v", res.BytesSent, want)
	}
}

func TestAllgatherVolume(t *testing.T) {
	size := 6
	per := 1e4
	c := testCluster(size)
	res := Run(c, size, func(r *Rank) { r.Allgather(0, per) })
	// Ring: every rank sends size−1 blocks.
	want := per * float64(size) * float64(size-1)
	if math.Abs(res.BytesSent-want) > 1e-9 {
		t.Fatalf("allgather volume %v want %v", res.BytesSent, want)
	}
}

func TestReduceScatterVolumeAndCombines(t *testing.T) {
	size := 5
	per := 1e4
	c := testCluster(size)
	res := Run(c, size, func(r *Rank) { r.ReduceScatter(0, per) })
	want := per * float64(size) * float64(size-1)
	if math.Abs(res.BytesSent-want) > 1e-9 {
		t.Fatalf("reduce-scatter volume %v want %v", res.BytesSent, want)
	}
	// The combining adds must show up as compute energy.
	if res.ComputeJoules <= 0 {
		t.Fatal("no combine energy")
	}
}

func TestRingCollectivesDeterministic(t *testing.T) {
	c := testCluster(5)
	prog := func(r *Rank) {
		r.Allgather(1, 1e3)
		r.ReduceScatter(2, 2e3)
	}
	a := Run(c, 5, prog)
	b := Run(c, 5, prog)
	if a.Makespan != b.Makespan || a.TotalJoules() != b.TotalJoules() {
		t.Fatal("ring collectives not deterministic")
	}
}

func TestBarrierSynchronizes(t *testing.T) {
	c := testCluster(4)
	res := Run(c, 4, func(r *Rank) {
		// Rank 3 is slow; everyone must wait for it.
		if r.ID() == 3 {
			r.Sleep(0.5)
		}
		r.Barrier(9)
		if r.Now() < 0.5 {
			panic("rank left the barrier before the slowest arrived")
		}
	})
	if res.Makespan < 0.5 {
		t.Fatal("barrier broken")
	}
}

func TestSendRecvExchange(t *testing.T) {
	c := testCluster(2)
	Run(c, 2, func(r *Rank) {
		peer := 1 - r.ID()
		got := r.SendRecv(peer, 0, float64(100*(r.ID()+1)))
		want := float64(100 * (peer + 1))
		if got != want {
			panic("exchange payload wrong")
		}
	})
}

func TestSendValidation(t *testing.T) {
	c := testCluster(2)
	cases := []func(r *Rank){
		func(r *Rank) { r.Send(5, 0, 1) },
		func(r *Rank) { r.Send(r.ID(), 0, 1) },
		func(r *Rank) { r.Send(1-r.ID(), 0, -1) },
		func(r *Rank) { r.Recv(9, 0) },
		func(r *Rank) { r.Sleep(-1) },
	}
	for i, bad := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d did not panic", i)
				}
			}()
			Run(c, 2, func(r *Rank) {
				if r.ID() == 0 {
					bad(r)
				}
			})
		}()
	}
}
