package mpi

import (
	"math"
	"reflect"
	"testing"

	"capscale/internal/monitor"
	"capscale/internal/rapl"
	"capscale/internal/task"
)

// traceProg is a representative mixed program: local compute phases
// interleaved with an allreduce and some point-to-point traffic.
func traceProg(r *Rank) {
	r.Compute(ComputeWork{Kind: task.KindGEMM, Flops: 2e8, DRAMBytes: 1e6})
	r.Allreduce(3, 64<<10)
	if r.ID() == 0 && r.Size() > 1 {
		r.Send(1, 9, 1<<20)
	}
	if r.ID() == 1 {
		r.Recv(0, 9)
	}
	r.Compute(ComputeWork{Kind: task.KindGEMM, Flops: 1e8})
	r.Barrier(4)
}

// TestTimelineIntegratesToTotalJoules is the energy-consistency
// invariant RunTraced is built on: integrating the per-plane power
// timeline over virtual time reproduces the run's exact energy
// account, so a monitor fed the timeline reconciles against the same
// ground truth the Result reports.
func TestTimelineIntegratesToTotalJoules(t *testing.T) {
	c := testCluster(8)
	res, segs := RunTraced(c, 8, traceProg)
	if len(segs) == 0 {
		t.Fatal("no timeline")
	}
	var integral float64
	prev := 0.0
	for i, s := range segs {
		if s.End <= s.Start {
			t.Fatalf("segment %d empty: [%v,%v)", i, s.Start, s.End)
		}
		if s.Start != prev {
			t.Fatalf("segment %d starts at %v, want %v (gap or overlap)", i, s.Start, prev)
		}
		prev = s.End
		integral += s.Power.Total() * (s.End - s.Start)
	}
	if last := segs[len(segs)-1].End; last != res.Makespan {
		t.Fatalf("timeline ends at %v, makespan %v", last, res.Makespan)
	}
	want := res.TotalJoules()
	if math.Abs(integral-want) > 1e-9*want {
		t.Fatalf("timeline integral %v J, result total %v J", integral, want)
	}
}

// TestRunTracedDeterministic asserts bit-identical results and
// timelines across runs: merge order is rank order, never goroutine
// interleaving.
func TestRunTracedDeterministic(t *testing.T) {
	c := testCluster(8)
	res1, segs1 := RunTraced(c, 8, traceProg)
	res2, segs2 := RunTraced(c, 8, traceProg)
	if !reflect.DeepEqual(res1, res2) {
		t.Fatalf("results differ:\n%+v\n%+v", res1, res2)
	}
	if !reflect.DeepEqual(segs1, segs2) {
		t.Fatalf("timelines differ (%d vs %d segments)", len(segs1), len(segs2))
	}
}

// TestRunMatchesRunTraced pins that tracing is observation only: the
// untraced path returns the same Result.
func TestRunMatchesRunTraced(t *testing.T) {
	c := testCluster(8)
	plain := Run(c, 8, traceProg)
	traced, _ := RunTraced(c, 8, traceProg)
	if !reflect.DeepEqual(plain, traced) {
		t.Fatalf("Run and RunTraced disagree:\n%+v\n%+v", plain, traced)
	}
}

// TestTimelineReconcilesThroughMonitor closes the distributed
// measurement loop: the MPI power timeline replays through the RAPL
// device with the NIC and switch planes armed, the polled measurement
// reconciles against device ground truth, and the device's total
// energy equals the run's.
func TestTimelineReconcilesThroughMonitor(t *testing.T) {
	c := testCluster(8)
	res, segs := RunTraced(c, 8, traceProg)

	dev := rapl.NewDevice()
	rep, err := monitor.Replay(segs, monitor.Config{
		PollInterval: res.Makespan / 50,
		Device:       dev,
		Planes:       rapl.ClusterPlanes(),
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Planes) != len(rapl.ClusterPlanes()) {
		t.Fatalf("reported planes %v", rep.Planes)
	}
	if !rep.Reconciled(1e-3) {
		t.Fatalf("measurement did not reconcile:\n%s", rep)
	}
	// NIC and Switch planes carry real energy on this fabric.
	if rep.Plane(rapl.PlaneNIC).TruthJ <= 0 || rep.Plane(rapl.PlaneSwitch).TruthJ <= 0 {
		t.Fatalf("interconnect planes empty:\n%s", rep)
	}
	var devTotal float64
	for _, p := range rapl.ClusterPlanes() {
		if p == rapl.PlanePP0 { // nested inside PKG
			continue
		}
		devTotal += dev.TotalJoules(p)
	}
	want := res.TotalJoules()
	if math.Abs(devTotal-want) > 1e-6*want {
		t.Fatalf("device accumulated %v J, run total %v J", devTotal, want)
	}
}

// TestCriticalPathMetrics pins the measured α-term count: a binomial
// allreduce at P=8 puts ⌈log₂P⌉ = 3 exposed message latencies on the
// root's critical path (its three reduce receives), and the critical
// comm time is positive and bounded by the makespan.
func TestCriticalPathMetrics(t *testing.T) {
	c := testCluster(8)
	res := Run(c, 8, func(r *Rank) { r.Allreduce(0, 1<<20) })
	if res.CritAlphaTerms != 3 {
		t.Fatalf("CritAlphaTerms %d, want 3", res.CritAlphaTerms)
	}
	if res.CritCommSeconds <= 0 || res.CritCommSeconds > res.Makespan {
		t.Fatalf("CritCommSeconds %v outside (0, %v]", res.CritCommSeconds, res.Makespan)
	}
}
