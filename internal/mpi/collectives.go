package mpi

import (
	"fmt"

	"capscale/internal/cluster"
	"capscale/internal/task"
)

// Collective operations built on Send/Recv with the standard
// binomial-tree and ring algorithms. All ranks of the communicator
// must call the collective with the same root, tag and byte count;
// tags share the point-to-point namespace, so programs should reserve
// distinct tags for overlapping collectives.
//
// Reserved tag namespace: composite collectives (Allreduce, Barrier)
// run each internal phase on a tag derived from the caller's tag —
// tag+phaseReduceOff for the Reduce phase and tag+phaseBcastOff for
// the Bcast phase. Without distinct phase tags, a fast rank's
// Bcast-phase send could be matched by a slow rank still blocked in
// its Reduce phase (both phases address the same (dst, src, tag) FIFO
// queue), silently corrupting the matching order. User programs must
// therefore keep their own tags below phaseTagBase; tags at or above
// phaseTagBase belong to the composite-phase namespace.

const (
	// phaseTagBase is the floor of the reserved composite-phase tag
	// namespace. User tags must stay below it.
	phaseTagBase = 1 << 20
	// phaseReduceOff and phaseBcastOff shift a user tag into the
	// per-phase namespaces used by Allreduce (and Barrier through it).
	phaseReduceOff = 1 * phaseTagBase
	phaseBcastOff  = 2 * phaseTagBase
)

// Bcast distributes `bytes` from root to every rank along a binomial
// tree (ceil(log2 P) rounds on the critical path).
func (r *Rank) Bcast(root, tag int, bytes float64) {
	size := r.size
	if size == 1 {
		return
	}
	rel := (r.id - root + size) % size

	mask := 1
	for mask < size {
		if rel&mask != 0 {
			src := (r.id - mask + size) % size
			r.Recv(src, tag)
			break
		}
		mask <<= 1
	}
	mask >>= 1
	for mask > 0 {
		if rel+mask < size {
			dst := (r.id + mask) % size
			r.Send(dst, tag, bytes)
		}
		mask >>= 1
	}
}

// Reduce combines `bytes` of data from every rank onto root along the
// mirror-image binomial tree. Each combining step also costs an
// element-wise reduction on the node (modeled as a bandwidth-bound
// add over the payload).
func (r *Rank) Reduce(root, tag int, bytes float64) {
	size := r.size
	if size == 1 {
		return
	}
	rel := (r.id - root + size) % size

	mask := 1
	for mask < size {
		if rel&mask != 0 {
			dst := (r.id - mask + size) % size
			r.Send(dst, tag, bytes)
			return
		}
		if rel+mask < size {
			src := (r.id + mask) % size
			got := r.Recv(src, tag)
			// Combine the received payload with the local buffer.
			// Zero-byte reductions (Barrier) carry nothing to combine,
			// so they must not pay the per-task compute overhead.
			if got > 0 {
				r.Compute(ComputeWork{Kind: task.KindAdd, Flops: got / 8, DRAMBytes: 3 * got, Cores: 1})
			}
		}
		mask <<= 1
	}
}

// Allreduce reduces `bytes` across all ranks and leaves every rank
// the result, using the fabric's configured collective family:
// binomial (Reduce onto rank 0, Bcast from it — latency-optimal) or
// ring (ReduceScatter then Allgather of bytes/P shares —
// bandwidth-optimal). Each phase runs on its own derived tag (see the
// reserved-namespace note above) so the two phases can never
// cross-match when ranks drift.
func (r *Rank) Allreduce(tag int, bytes float64) {
	if tag >= phaseTagBase || tag < 0 {
		panic(fmt.Sprintf("mpi: Allreduce tag %d outside the user namespace [0, %d)", tag, phaseTagBase))
	}
	if r.w.c.Fabric.Allreduce == cluster.AllreduceRing && r.size > 1 {
		share := bytes / float64(r.size)
		r.ReduceScatter(tag+phaseReduceOff, share)
		r.Allgather(tag+phaseBcastOff, share)
		return
	}
	r.Reduce(0, tag+phaseReduceOff, bytes)
	r.Bcast(0, tag+phaseBcastOff, bytes)
}

// Barrier synchronizes all ranks (a zero-byte Allreduce).
func (r *Rank) Barrier(tag int) {
	r.Allreduce(tag, 0)
}

// Gather collects `bytes` from every rank onto root; interior tree
// nodes forward their whole received subtree.
func (r *Rank) Gather(root, tag int, bytes float64) {
	size := r.size
	if size == 1 {
		return
	}
	rel := (r.id - root + size) % size

	subtree := func(rel, mask int) int {
		n := mask
		if rel+n > size {
			n = size - rel
		}
		return n
	}

	mask := 1
	for mask < size {
		if rel&mask != 0 {
			dst := (r.id - mask + size) % size
			r.Send(dst, tag, bytes*float64(subtree(rel, mask)))
			return
		}
		if rel+mask < size {
			src := (r.id + mask) % size
			r.Recv(src, tag)
		}
		mask <<= 1
	}
}

// Scatter distributes `bytes` per rank from root down the binomial
// tree; interior nodes receive their whole subtree's data first.
func (r *Rank) Scatter(root, tag int, bytes float64) {
	size := r.size
	if size == 1 {
		return
	}
	rel := (r.id - root + size) % size

	subtree := func(rel, mask int) int {
		n := mask
		if rel+n > size {
			n = size - rel
		}
		return n
	}

	mask := 1
	for mask < size {
		if rel&mask != 0 {
			src := (r.id - mask + size) % size
			r.Recv(src, tag)
			break
		}
		mask <<= 1
	}
	mask >>= 1
	for mask > 0 {
		if rel+mask < size {
			dst := (r.id + mask) % size
			r.Send(dst, tag, bytes*float64(subtree(rel+mask, mask)))
		}
		mask >>= 1
	}
}

// Allgather distributes every rank's `bytes` to every other rank with
// the ring schedule: step k passes the block received at step k−1
// onward, so after size−1 steps everyone holds everything.
func (r *Rank) Allgather(tag int, bytes float64) {
	size := r.size
	next := (r.id + 1) % size
	prev := (r.id - 1 + size) % size
	for k := 0; k < size-1; k++ {
		r.Send(next, tag, bytes)
		r.Recv(prev, tag)
	}
}

// ReduceScatter combines `bytes` per rank of data and leaves each rank
// its reduced share, with the pairwise-exchange (ring) schedule: at
// step k each rank sends the partial block destined for (id−k) and
// combines the one it receives.
func (r *Rank) ReduceScatter(tag int, bytes float64) {
	size := r.size
	next := (r.id + 1) % size
	prev := (r.id - 1 + size) % size
	for k := 0; k < size-1; k++ {
		r.Send(next, tag, bytes)
		got := r.Recv(prev, tag)
		if got > 0 {
			r.Compute(ComputeWork{Kind: task.KindAdd, Flops: got / 8, DRAMBytes: 3 * got, Cores: 1})
		}
	}
}

// Alltoall exchanges `bytes` between every pair of ranks with the ring
// schedule: at step k each rank sends to (id+k) and receives from
// (id−k). Sends are eager, so the blocking receives cannot deadlock.
func (r *Rank) Alltoall(tag int, bytes float64) {
	size := r.size
	for k := 1; k < size; k++ {
		dst := (r.id + k) % size
		src := (r.id - k + size) % size
		r.Send(dst, tag, bytes)
		r.Recv(src, tag)
	}
}
