package matrix

import (
	"sync"
	"testing"
)

func TestPoolRecyclesBySize(t *testing.T) {
	var p Pool
	a := p.Get(8, 8)
	b := p.Get(8, 4)
	p.Put(a, b)
	if p.Len() != 2 {
		t.Fatalf("pool len %d", p.Len())
	}
	if got := p.Get(8, 8); got != a {
		t.Fatal("did not recycle the 8x8 matrix")
	}
	if got := p.Get(8, 4); got != b {
		t.Fatal("did not recycle the 8x4 matrix")
	}
	if p.Len() != 0 {
		t.Fatalf("pool len %d after draining", p.Len())
	}
	// A miss on an empty size class allocates fresh storage.
	c := p.Get(16, 16)
	if c.Rows() != 16 || c.Cols() != 16 {
		t.Fatalf("fresh matrix %dx%d", c.Rows(), c.Cols())
	}
}

func TestPoolRejectsViews(t *testing.T) {
	var p Pool
	m := New(8, 8)
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on Put of a view")
		}
	}()
	p.Put(m.View(0, 0, 4, 4))
}

func TestPoolIgnoresNil(t *testing.T) {
	var p Pool
	p.Put(nil, New(2, 2))
	if p.Len() != 1 {
		t.Fatalf("pool len %d", p.Len())
	}
}

func TestPoolConcurrentUse(t *testing.T) {
	var p Pool
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				m := p.Get(32, 32)
				m.Set(0, 0, 1)
				p.Put(m)
			}
		}()
	}
	wg.Wait()
}
