package matrix

import "math/rand"

// Rand returns a rows×cols matrix with elements drawn uniformly from
// [-1, 1) using rng. Passing an explicitly seeded rng makes the
// experiment harness deterministic, matching the paper's "randomly
// generated matrices" setup reproducibly.
func Rand(rng *rand.Rand, rows, cols int) *Dense {
	m := New(rows, cols)
	for i := range m.data {
		m.data[i] = 2*rng.Float64() - 1
	}
	return m
}

// RandSeeded returns a rows×cols matrix filled from a fresh generator
// seeded with seed.
func RandSeeded(seed int64, rows, cols int) *Dense {
	return Rand(rand.New(rand.NewSource(seed)), rows, cols)
}

// RandInts returns a rows×cols matrix whose elements are small integers
// in [-maxAbs, maxAbs]. Integer matrices make Strassen's recombination
// exact in floating point, which the equality-based property tests rely
// on.
func RandInts(rng *rand.Rand, rows, cols, maxAbs int) *Dense {
	m := New(rows, cols)
	span := 2*maxAbs + 1
	for i := range m.data {
		m.data[i] = float64(rng.Intn(span) - maxAbs)
	}
	return m
}
