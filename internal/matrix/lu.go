package matrix

import (
	"errors"
	"fmt"
	"math"
)

// LU is an LU factorization with partial pivoting: P·A = L·U, stored
// packed (unit-diagonal L below, U on and above the diagonal).
type LU struct {
	lu    *Dense
	pivot []int
	signD float64
}

// ErrSingular is returned when factorization meets a zero pivot.
var ErrSingular = errors.New("matrix: singular matrix")

// Factorize computes the pivoted LU factorization of a square matrix.
// a is not modified.
func Factorize(a *Dense) (*LU, error) {
	if !a.IsSquare() {
		return nil, fmt.Errorf("matrix: LU of non-square %dx%d", a.Rows(), a.Cols())
	}
	n := a.Rows()
	f := &LU{lu: a.Clone(), pivot: make([]int, n), signD: 1}
	lu := f.lu
	for k := 0; k < n; k++ {
		// Partial pivot: largest magnitude in column k at or below row k.
		p := k
		max := math.Abs(lu.At(k, k))
		for i := k + 1; i < n; i++ {
			if v := math.Abs(lu.At(i, k)); v > max {
				p, max = i, v
			}
		}
		f.pivot[k] = p
		if max == 0 {
			return nil, ErrSingular
		}
		if p != k {
			rk, rp := lu.Row(k), lu.Row(p)
			for j := range rk {
				rk[j], rp[j] = rp[j], rk[j]
			}
			f.signD = -f.signD
		}
		pivotVal := lu.At(k, k)
		for i := k + 1; i < n; i++ {
			m := lu.At(i, k) / pivotVal
			lu.Set(i, k, m)
			if m == 0 {
				continue
			}
			ri, rk := lu.Row(i), lu.Row(k)
			for j := k + 1; j < n; j++ {
				ri[j] -= m * rk[j]
			}
		}
	}
	return f, nil
}

// Solve returns x with A·x = b.
func (f *LU) Solve(b []float64) ([]float64, error) {
	n := f.lu.Rows()
	if len(b) != n {
		return nil, fmt.Errorf("matrix: rhs length %d for %dx%d system", len(b), n, n)
	}
	x := make([]float64, n)
	copy(x, b)
	// Apply the row exchanges.
	for k := 0; k < n; k++ {
		if p := f.pivot[k]; p != k {
			x[k], x[p] = x[p], x[k]
		}
	}
	// Forward substitution with unit-diagonal L.
	for i := 1; i < n; i++ {
		row := f.lu.Row(i)
		sum := x[i]
		for j := 0; j < i; j++ {
			sum -= row[j] * x[j]
		}
		x[i] = sum
	}
	// Back substitution with U.
	for i := n - 1; i >= 0; i-- {
		row := f.lu.Row(i)
		sum := x[i]
		for j := i + 1; j < n; j++ {
			sum -= row[j] * x[j]
		}
		x[i] = sum / row[i]
	}
	return x, nil
}

// Det returns the determinant of the factored matrix.
func (f *LU) Det() float64 {
	d := f.signD
	for i := 0; i < f.lu.Rows(); i++ {
		d *= f.lu.At(i, i)
	}
	return d
}

// SolveDense is the convenience one-shot: x with a·x = b.
func SolveDense(a *Dense, b []float64) ([]float64, error) {
	f, err := Factorize(a)
	if err != nil {
		return nil, err
	}
	return f.Solve(b)
}
