package matrix

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestFactorizeNonSquare(t *testing.T) {
	if _, err := Factorize(New(2, 3)); err == nil {
		t.Fatal("non-square accepted")
	}
}

func TestSingularDetected(t *testing.T) {
	a := NewFromSlice(2, 2, []float64{1, 2, 2, 4})
	if _, err := Factorize(a); err != ErrSingular {
		t.Fatalf("err %v", err)
	}
}

func TestSolveKnownSystem(t *testing.T) {
	// [2 1; 1 3]·x = [5; 10] → x = [1; 3].
	a := NewFromSlice(2, 2, []float64{2, 1, 1, 3})
	x, err := SolveDense(a, []float64{5, 10})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(x[0]-1) > 1e-12 || math.Abs(x[1]-3) > 1e-12 {
		t.Fatalf("x = %v", x)
	}
}

func TestSolveIdentity(t *testing.T) {
	id := Identity(5)
	b := []float64{1, 2, 3, 4, 5}
	x, err := SolveDense(id, b)
	if err != nil {
		t.Fatal(err)
	}
	for i := range b {
		if x[i] != b[i] {
			t.Fatalf("x = %v", x)
		}
	}
}

func TestSolveRhsLength(t *testing.T) {
	f, err := Factorize(Identity(3))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Solve([]float64{1, 2}); err == nil {
		t.Fatal("short rhs accepted")
	}
}

func TestDet(t *testing.T) {
	a := NewFromSlice(2, 2, []float64{3, 1, 4, 2})
	f, err := Factorize(a)
	if err != nil {
		t.Fatal(err)
	}
	if d := f.Det(); math.Abs(d-2) > 1e-12 {
		t.Fatalf("det %v", d)
	}
	// Pivoting case: determinant sign must survive row swaps.
	b := NewFromSlice(2, 2, []float64{0, 1, 1, 0})
	fb, err := Factorize(b)
	if err != nil {
		t.Fatal(err)
	}
	if d := fb.Det(); math.Abs(d+1) > 1e-12 {
		t.Fatalf("permutation det %v", d)
	}
}

func TestPivotingHandlesZeroLeadingEntry(t *testing.T) {
	a := NewFromSlice(3, 3, []float64{0, 2, 1, 1, 0, 3, 2, 1, 0})
	b := []float64{5, 10, 4}
	x, err := SolveDense(a, b)
	if err != nil {
		t.Fatal(err)
	}
	// Verify residual.
	for i := 0; i < 3; i++ {
		sum := 0.0
		for j := 0; j < 3; j++ {
			sum += a.At(i, j) * x[j]
		}
		if math.Abs(sum-b[i]) > 1e-10 {
			t.Fatalf("residual at row %d: %v", i, sum-b[i])
		}
	}
}

func TestFactorizeDoesNotMutateInput(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	a := Rand(rng, 6, 6)
	orig := a.Clone()
	if _, err := Factorize(a); err != nil {
		t.Fatal(err)
	}
	if !Equal(a, orig) {
		t.Fatal("Factorize mutated its input")
	}
}

func TestPropertySolveResidual(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(25)
		a := Rand(rng, n, n)
		// Diagonal dominance keeps conditioning sane.
		for i := 0; i < n; i++ {
			a.Set(i, i, a.At(i, i)+float64(n))
		}
		b := make([]float64, n)
		for i := range b {
			b[i] = rng.Float64()
		}
		x, err := SolveDense(a, b)
		if err != nil {
			return false
		}
		for i := 0; i < n; i++ {
			sum := 0.0
			for j := 0; j < n; j++ {
				sum += a.At(i, j) * x[j]
			}
			if math.Abs(sum-b[i]) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyDetOfProduct(t *testing.T) {
	// det(AB) == det(A)·det(B) on small well-scaled matrices.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(6)
		a := Rand(rng, n, n)
		b := Rand(rng, n, n)
		for i := 0; i < n; i++ {
			a.Set(i, i, a.At(i, i)+2)
			b.Set(i, i, b.At(i, i)+2)
		}
		ab := New(n, n)
		MulNaive(ab, a, b)
		fa, e1 := Factorize(a)
		fb, e2 := Factorize(b)
		fab, e3 := Factorize(ab)
		if e1 != nil || e2 != nil || e3 != nil {
			return true // singular draws are fine to skip
		}
		want := fa.Det() * fb.Det()
		got := fab.Det()
		return math.Abs(got-want) <= 1e-8*math.Max(1, math.Abs(want))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
