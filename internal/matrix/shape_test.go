package matrix

import (
	"strings"
	"testing"
)

func TestShapeDims(t *testing.T) {
	m := Shape(3, 5)
	if m.Rows() != 3 || m.Cols() != 5 || m.Stride() != 5 {
		t.Fatalf("shape dims %dx%d stride %d", m.Rows(), m.Cols(), m.Stride())
	}
	if !m.IsShape() {
		t.Fatal("IsShape false on Shape matrix")
	}
	if m.IsView() {
		t.Fatal("a fresh shape-only matrix is not a view")
	}
	if m.IsSquare() {
		t.Fatal("3x5 reported square")
	}
	if New(2, 2).IsShape() {
		t.Fatal("IsShape true on a backed matrix")
	}
}

func TestShapeNegativePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Shape(-1, 2) did not panic")
		}
	}()
	Shape(-1, 2)
}

// mustPanicShape asserts fn panics with a message naming shape-only
// access.
func mustPanicShape(t *testing.T, op string, fn func()) {
	t.Helper()
	defer func() {
		r := recover()
		if r == nil {
			t.Fatalf("%s on shape-only matrix did not panic", op)
		}
		if msg, ok := r.(string); !ok || !strings.Contains(msg, "shape-only") {
			t.Fatalf("%s panic %v does not name shape-only access", op, r)
		}
	}()
	fn()
}

func TestShapeElementAccessPanics(t *testing.T) {
	m := Shape(4, 4)
	mustPanicShape(t, "At", func() { m.At(0, 0) })
	mustPanicShape(t, "Set", func() { m.Set(0, 0, 1) })
	mustPanicShape(t, "Row", func() { m.Row(0) })
	mustPanicShape(t, "Data", func() { m.Data() })
	// Everything built on Row panics transitively.
	mustPanicShape(t, "Zero", func() { m.Zero() })
	mustPanicShape(t, "Clone", func() { m.Clone() })
	mustPanicShape(t, "CopyTo", func() { CopyTo(New(4, 4), m) })
}

func TestShapeViewAndQuadrantsPropagate(t *testing.T) {
	m := Shape(8, 8)
	v := m.View(2, 2, 4, 4)
	if !v.IsShape() || v.Rows() != 4 || v.Cols() != 4 {
		t.Fatalf("view of shape: shape=%v %dx%d", v.IsShape(), v.Rows(), v.Cols())
	}
	a11, a12, a21, a22 := m.Quadrants()
	for i, q := range []*Dense{a11, a12, a21, a22} {
		if !q.IsShape() || q.Rows() != 4 || q.Cols() != 4 {
			t.Fatalf("quadrant %d: shape=%v %dx%d", i, q.IsShape(), q.Rows(), q.Cols())
		}
	}
}

func TestShapeString(t *testing.T) {
	if s := Shape(2, 2).String(); !strings.Contains(s, "shape") {
		t.Fatalf("String %q does not mark shape-only", s)
	}
}

func TestPoolRejectsShape(t *testing.T) {
	var p Pool
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on Put of a shape-only matrix")
		}
	}()
	p.Put(Shape(8, 8))
}
