// Package matrix provides dense, row-major, double-precision matrices
// with cheap sub-matrix views, the arithmetic needed by the blocked,
// Strassen and CAPS multipliers, and deterministic generation utilities
// used by the experiment harness.
//
// A Dense value never owns synchronization: callers partition matrices
// into disjoint views before operating on them concurrently.
package matrix

import (
	"fmt"
	"math"
)

// Dense is a dense row-major matrix of float64 values. A Dense may be a
// view into a larger matrix, in which case its stride exceeds its column
// count and mutations are visible through the parent.
//
// A Dense may also be shape-only (see Shape): it carries dimensions and
// region identity but no backing storage, and panics on any element
// access. Shape-only matrices let the task-tree builders — which never
// read matrix elements when real math is off — describe arbitrarily
// large problems without allocating O(n²) zeros.
type Dense struct {
	rows, cols int
	stride     int
	data       []float64
	// shape marks a dimensions-only matrix with no backing storage.
	shape bool
}

// New returns a zeroed rows×cols matrix backed by freshly allocated
// storage. It panics if either dimension is negative.
func New(rows, cols int) *Dense {
	if rows < 0 || cols < 0 {
		panic(fmt.Sprintf("matrix: negative dimension %dx%d", rows, cols))
	}
	return &Dense{
		rows:   rows,
		cols:   cols,
		stride: cols,
		data:   make([]float64, rows*cols),
	}
}

// NewFromSlice returns a rows×cols matrix that adopts data as its
// backing storage (row-major, stride == cols). It panics if
// len(data) != rows*cols.
func NewFromSlice(rows, cols int, data []float64) *Dense {
	if len(data) != rows*cols {
		panic(fmt.Sprintf("matrix: slice length %d does not match %dx%d", len(data), rows, cols))
	}
	return &Dense{rows: rows, cols: cols, stride: cols, data: data}
}

// Shape returns a rows×cols matrix that carries only its dimensions:
// no element storage is allocated, and any element access (At, Set,
// Row, Data and everything built on them) panics. View and Quadrants
// work and yield shape-only views, which is exactly what the task-tree
// builders need to describe a multiply without materializing operands.
func Shape(rows, cols int) *Dense {
	if rows < 0 || cols < 0 {
		panic(fmt.Sprintf("matrix: negative dimension %dx%d", rows, cols))
	}
	return &Dense{rows: rows, cols: cols, stride: cols, shape: true}
}

// IsShape reports whether m is shape-only (no backing storage).
func (m *Dense) IsShape() bool { return m.shape }

// denyShape panics when op would touch elements of a shape-only matrix.
func (m *Dense) denyShape(op string) {
	if m.shape {
		panic(fmt.Sprintf("matrix: %s on shape-only %dx%d matrix", op, m.rows, m.cols))
	}
}

// Identity returns the n×n identity matrix.
func Identity(n int) *Dense {
	m := New(n, n)
	for i := 0; i < n; i++ {
		m.data[i*m.stride+i] = 1
	}
	return m
}

// Rows returns the number of rows in m.
func (m *Dense) Rows() int { return m.rows }

// Cols returns the number of columns in m.
func (m *Dense) Cols() int { return m.cols }

// Stride returns the distance, in elements, between the starts of
// consecutive rows in the backing storage.
func (m *Dense) Stride() int { return m.stride }

// IsSquare reports whether m has as many rows as columns.
func (m *Dense) IsSquare() bool { return m.rows == m.cols }

// IsView reports whether m shares storage with a larger matrix.
// Shape-only matrices have no storage to share and report false.
func (m *Dense) IsView() bool {
	if m.shape {
		return false
	}
	return m.stride != m.cols || len(m.data) != m.rows*m.cols
}

// At returns the element at row i, column j. Bounds are checked.
func (m *Dense) At(i, j int) float64 {
	m.denyShape("At")
	m.checkBounds(i, j)
	return m.data[i*m.stride+j]
}

// Set stores v at row i, column j. Bounds are checked.
func (m *Dense) Set(i, j int, v float64) {
	m.denyShape("Set")
	m.checkBounds(i, j)
	m.data[i*m.stride+j] = v
}

func (m *Dense) checkBounds(i, j int) {
	if i < 0 || i >= m.rows || j < 0 || j >= m.cols {
		panic(fmt.Sprintf("matrix: index (%d,%d) out of bounds %dx%d", i, j, m.rows, m.cols))
	}
}

// Row returns the i'th row as a slice sharing storage with m.
func (m *Dense) Row(i int) []float64 {
	m.denyShape("Row")
	if i < 0 || i >= m.rows {
		panic(fmt.Sprintf("matrix: row %d out of bounds %d", i, m.rows))
	}
	return m.data[i*m.stride : i*m.stride+m.cols]
}

// Data returns the backing slice of m. For views the slice begins at
// m's (0,0) element and rows are m.Stride() apart.
func (m *Dense) Data() []float64 {
	m.denyShape("Data")
	return m.data
}

// View returns the r×c sub-matrix of m whose top-left corner is at
// (i, j). The view shares storage with m; a view of a shape-only
// matrix is itself shape-only.
func (m *Dense) View(i, j, r, c int) *Dense {
	if i < 0 || j < 0 || r < 0 || c < 0 || i+r > m.rows || j+c > m.cols {
		panic(fmt.Sprintf("matrix: view (%d,%d)+%dx%d out of bounds %dx%d", i, j, r, c, m.rows, m.cols))
	}
	if m.shape {
		return &Dense{rows: r, cols: c, stride: m.stride, shape: true}
	}
	return &Dense{
		rows:   r,
		cols:   c,
		stride: m.stride,
		data:   m.data[i*m.stride+j:],
	}
}

// Quadrants splits a square matrix with even dimension into its four
// quadrant views, in the order A11, A12, A21, A22. It panics if m is
// not square with even dimension.
func (m *Dense) Quadrants() (a11, a12, a21, a22 *Dense) {
	if !m.IsSquare() || m.rows%2 != 0 {
		panic(fmt.Sprintf("matrix: quadrants of non-even square %dx%d", m.rows, m.cols))
	}
	h := m.rows / 2
	return m.View(0, 0, h, h), m.View(0, h, h, h), m.View(h, 0, h, h), m.View(h, h, h, h)
}

// Clone returns a compact (stride == cols) deep copy of m.
func (m *Dense) Clone() *Dense {
	out := New(m.rows, m.cols)
	CopyTo(out, m)
	return out
}

// Fill sets every element of m to v.
func (m *Dense) Fill(v float64) {
	for i := 0; i < m.rows; i++ {
		row := m.Row(i)
		for j := range row {
			row[j] = v
		}
	}
}

// Zero sets every element of m to zero.
func (m *Dense) Zero() { m.Fill(0) }

// String renders small matrices for debugging; large matrices render as
// a dimension summary.
func (m *Dense) String() string {
	if m.shape {
		return fmt.Sprintf("Dense{shape %dx%d}", m.rows, m.cols)
	}
	if m.rows > 8 || m.cols > 8 {
		return fmt.Sprintf("Dense{%dx%d}", m.rows, m.cols)
	}
	s := ""
	for i := 0; i < m.rows; i++ {
		row := m.Row(i)
		s += "["
		for j, v := range row {
			if j > 0 {
				s += " "
			}
			s += fmt.Sprintf("%.4g", v)
		}
		s += "]\n"
	}
	return s
}

// CopyTo copies src into dst element-wise. The shapes must match.
func CopyTo(dst, src *Dense) {
	checkSameShape("CopyTo", dst, src)
	for i := 0; i < dst.rows; i++ {
		copy(dst.Row(i), src.Row(i))
	}
}

// AddTo stores a + b into dst. Shapes must match; dst may alias a or b.
func AddTo(dst, a, b *Dense) {
	checkSameShape("AddTo", dst, a)
	checkSameShape("AddTo", dst, b)
	for i := 0; i < dst.rows; i++ {
		dr, ar, br := dst.Row(i), a.Row(i), b.Row(i)
		for j := range dr {
			dr[j] = ar[j] + br[j]
		}
	}
}

// SubTo stores a - b into dst. Shapes must match; dst may alias a or b.
func SubTo(dst, a, b *Dense) {
	checkSameShape("SubTo", dst, a)
	checkSameShape("SubTo", dst, b)
	for i := 0; i < dst.rows; i++ {
		dr, ar, br := dst.Row(i), a.Row(i), b.Row(i)
		for j := range dr {
			dr[j] = ar[j] - br[j]
		}
	}
}

// AccumTo adds src into dst element-wise (dst += src).
func AccumTo(dst, src *Dense) {
	checkSameShape("AccumTo", dst, src)
	for i := 0; i < dst.rows; i++ {
		dr, sr := dst.Row(i), src.Row(i)
		for j := range dr {
			dr[j] += sr[j]
		}
	}
}

// Scale multiplies every element of m by alpha in place.
func (m *Dense) Scale(alpha float64) {
	for i := 0; i < m.rows; i++ {
		row := m.Row(i)
		for j := range row {
			row[j] *= alpha
		}
	}
}

// TransposeTo stores aᵀ into dst. dst must be a.Cols()×a.Rows() and must
// not alias a.
func TransposeTo(dst, a *Dense) {
	if dst.rows != a.cols || dst.cols != a.rows {
		panic(fmt.Sprintf("matrix: TransposeTo shape %dx%d vs %dx%d", dst.rows, dst.cols, a.rows, a.cols))
	}
	for i := 0; i < a.rows; i++ {
		row := a.Row(i)
		for j, v := range row {
			dst.data[j*dst.stride+i] = v
		}
	}
}

// MulNaive computes dst = a*b with the straightforward i-k-j triple
// loop. It is the correctness reference for every other multiplier in
// the repository. dst must not alias a or b.
func MulNaive(dst, a, b *Dense) {
	if a.cols != b.rows || dst.rows != a.rows || dst.cols != b.cols {
		panic(fmt.Sprintf("matrix: MulNaive shapes %dx%d * %dx%d -> %dx%d",
			a.rows, a.cols, b.rows, b.cols, dst.rows, dst.cols))
	}
	dst.Zero()
	for i := 0; i < a.rows; i++ {
		dr := dst.Row(i)
		ar := a.Row(i)
		for k := 0; k < a.cols; k++ {
			aik := ar[k]
			if aik == 0 {
				continue
			}
			br := b.Row(k)
			for j := range dr {
				dr[j] += aik * br[j]
			}
		}
	}
}

// Equal reports whether a and b have the same shape and identical
// elements.
func Equal(a, b *Dense) bool {
	if a.rows != b.rows || a.cols != b.cols {
		return false
	}
	for i := 0; i < a.rows; i++ {
		ar, br := a.Row(i), b.Row(i)
		for j := range ar {
			if ar[j] != br[j] {
				return false
			}
		}
	}
	return true
}

// MaxAbsDiff returns the largest absolute element-wise difference
// between a and b. Shapes must match.
func MaxAbsDiff(a, b *Dense) float64 {
	checkSameShape("MaxAbsDiff", a, b)
	max := 0.0
	for i := 0; i < a.rows; i++ {
		ar, br := a.Row(i), b.Row(i)
		for j := range ar {
			if d := math.Abs(ar[j] - br[j]); d > max {
				max = d
			}
		}
	}
	return max
}

// AlmostEqual reports whether a and b match element-wise within tol,
// scaled by the magnitude of the elements (mixed absolute/relative
// tolerance, appropriate for Strassen's weaker stability bound).
func AlmostEqual(a, b *Dense, tol float64) bool {
	if a.rows != b.rows || a.cols != b.cols {
		return false
	}
	for i := 0; i < a.rows; i++ {
		ar, br := a.Row(i), b.Row(i)
		for j := range ar {
			scale := math.Max(1, math.Max(math.Abs(ar[j]), math.Abs(br[j])))
			if math.Abs(ar[j]-br[j]) > tol*scale {
				return false
			}
		}
	}
	return true
}

// MaxAbs returns the largest absolute element of m (its max-norm).
func (m *Dense) MaxAbs() float64 {
	max := 0.0
	for i := 0; i < m.rows; i++ {
		for _, v := range m.Row(i) {
			if a := math.Abs(v); a > max {
				max = a
			}
		}
	}
	return max
}

// FrobeniusNorm returns sqrt(Σ m[i][j]²).
func (m *Dense) FrobeniusNorm() float64 {
	sum := 0.0
	for i := 0; i < m.rows; i++ {
		for _, v := range m.Row(i) {
			sum += v * v
		}
	}
	return math.Sqrt(sum)
}

func checkSameShape(op string, a, b *Dense) {
	if a.rows != b.rows || a.cols != b.cols {
		panic(fmt.Sprintf("matrix: %s shape mismatch %dx%d vs %dx%d", op, a.rows, a.cols, b.rows, b.cols))
	}
}

// NextPow2 returns the smallest power of two that is >= n and >= 1.
func NextPow2(n int) int {
	p := 1
	for p < n {
		p <<= 1
	}
	return p
}

// IsPow2 reports whether n is a positive power of two.
func IsPow2(n int) bool { return n > 0 && n&(n-1) == 0 }

// PadTo returns an r×c matrix whose top-left block is a copy of m and
// whose remaining elements are zero. It panics if r or c is smaller
// than m's corresponding dimension. If m is already r×c a compact copy
// is returned.
func PadTo(m *Dense, r, c int) *Dense {
	if r < m.rows || c < m.cols {
		panic(fmt.Sprintf("matrix: PadTo %dx%d smaller than %dx%d", r, c, m.rows, m.cols))
	}
	out := New(r, c)
	CopyTo(out.View(0, 0, m.rows, m.cols), m)
	return out
}
