package matrix_test

import (
	"fmt"

	"capscale/internal/matrix"
)

// Dense matrices are row-major with cheap sub-matrix views; quadrant
// views are the building block of the Strassen-family recursions.
func Example() {
	a := matrix.NewFromSlice(4, 4, []float64{
		1, 2, 3, 4,
		5, 6, 7, 8,
		9, 10, 11, 12,
		13, 14, 15, 16,
	})
	a11, _, _, a22 := a.Quadrants()
	sum := matrix.New(2, 2)
	matrix.AddTo(sum, a11, a22)
	fmt.Print(sum)
	// Output:
	// [12 14]
	// [20 22]
}

// SolveDense solves a linear system through pivoted LU factorization.
func ExampleSolveDense() {
	a := matrix.NewFromSlice(2, 2, []float64{2, 1, 1, 3})
	x, err := matrix.SolveDense(a, []float64{5, 10})
	if err != nil {
		panic(err)
	}
	fmt.Printf("x = [%.0f %.0f]\n", x[0], x[1])
	// Output:
	// x = [1 3]
}

// Cholesky factorization is the SPD fast path.
func ExampleSolveSPD() {
	a := matrix.NewFromSlice(2, 2, []float64{4, 2, 2, 3})
	x, err := matrix.SolveSPD(a, []float64{8, 7})
	if err != nil {
		panic(err)
	}
	fmt.Printf("x = [%.2f %.2f]\n", x[0], x[1])
	// Output:
	// x = [1.25 1.50]
}
