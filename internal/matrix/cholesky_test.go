package matrix

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// randSPD builds B·Bᵀ + n·I, guaranteed SPD.
func randSPD(rng *rand.Rand, n int) *Dense {
	b := Rand(rng, n, n)
	bt := New(n, n)
	TransposeTo(bt, b)
	a := New(n, n)
	MulNaive(a, b, bt)
	for i := 0; i < n; i++ {
		a.Set(i, i, a.At(i, i)+float64(n))
	}
	return a
}

func TestCholeskyKnown(t *testing.T) {
	// [4 2; 2 3] = L·Lᵀ with L = [2 0; 1 √2].
	a := NewFromSlice(2, 2, []float64{4, 2, 2, 3})
	f, err := FactorizeCholesky(a)
	if err != nil {
		t.Fatal(err)
	}
	l := f.L()
	if math.Abs(l.At(0, 0)-2) > 1e-12 || math.Abs(l.At(1, 0)-1) > 1e-12 ||
		math.Abs(l.At(1, 1)-math.Sqrt2) > 1e-12 || l.At(0, 1) != 0 {
		t.Fatalf("L = %v", l)
	}
}

func TestCholeskyRejectsNonSPD(t *testing.T) {
	if _, err := FactorizeCholesky(NewFromSlice(2, 2, []float64{1, 2, 2, 1})); err != ErrNotSPD {
		t.Fatalf("indefinite accepted: %v", err)
	}
	if _, err := FactorizeCholesky(New(2, 3)); err == nil {
		t.Fatal("non-square accepted")
	}
}

func TestCholeskySolve(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	a := randSPD(rng, 12)
	b := make([]float64, 12)
	for i := range b {
		b[i] = rng.Float64()
	}
	x, err := SolveSPD(a, b)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 12; i++ {
		sum := 0.0
		for j := 0; j < 12; j++ {
			sum += a.At(i, j) * x[j]
		}
		if math.Abs(sum-b[i]) > 1e-9 {
			t.Fatalf("residual %v at row %d", sum-b[i], i)
		}
	}
}

func TestCholeskySolveRhsLength(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	f, err := FactorizeCholesky(randSPD(rng, 4))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Solve([]float64{1}); err == nil {
		t.Fatal("short rhs accepted")
	}
}

func TestCholeskyMatchesLU(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	a := randSPD(rng, 20)
	b := make([]float64, 20)
	for i := range b {
		b[i] = rng.Float64()
	}
	xc, err := SolveSPD(a, b)
	if err != nil {
		t.Fatal(err)
	}
	xl, err := SolveDense(a, b)
	if err != nil {
		t.Fatal(err)
	}
	for i := range xc {
		if math.Abs(xc[i]-xl[i]) > 1e-9*math.Max(1, math.Abs(xl[i])) {
			t.Fatalf("x[%d]: cholesky %v vs LU %v", i, xc[i], xl[i])
		}
	}
}

func TestPropertyCholeskyReconstructs(t *testing.T) {
	// L·Lᵀ == A.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(15)
		a := randSPD(rng, n)
		fac, err := FactorizeCholesky(a)
		if err != nil {
			return false
		}
		l := fac.L()
		lt := New(n, n)
		TransposeTo(lt, l)
		llt := New(n, n)
		MulNaive(llt, l, lt)
		return AlmostEqual(llt, a, 1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
