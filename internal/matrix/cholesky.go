package matrix

import (
	"errors"
	"fmt"
	"math"
)

// Cholesky is the L·Lᵀ factorization of a symmetric positive definite
// matrix — the dense reference for the SPD systems the CG solver
// targets.
type Cholesky struct {
	l *Dense
}

// ErrNotSPD is returned when factorization meets a non-positive pivot.
var ErrNotSPD = errors.New("matrix: not symmetric positive definite")

// FactorizeCholesky computes the lower-triangular Cholesky factor of a
// symmetric positive definite matrix. Only the lower triangle of a is
// read; a is not modified.
func FactorizeCholesky(a *Dense) (*Cholesky, error) {
	if !a.IsSquare() {
		return nil, fmt.Errorf("matrix: Cholesky of non-square %dx%d", a.Rows(), a.Cols())
	}
	n := a.Rows()
	l := New(n, n)
	for i := 0; i < n; i++ {
		for j := 0; j <= i; j++ {
			sum := a.At(i, j)
			li, lj := l.Row(i), l.Row(j)
			for k := 0; k < j; k++ {
				sum -= li[k] * lj[k]
			}
			if i == j {
				if sum <= 0 {
					return nil, ErrNotSPD
				}
				li[j] = math.Sqrt(sum)
			} else {
				li[j] = sum / lj[j]
			}
		}
	}
	return &Cholesky{l: l}, nil
}

// L returns the lower-triangular factor (a copy-free view of the
// internal storage; treat as read-only).
func (c *Cholesky) L() *Dense { return c.l }

// Solve returns x with A·x = b via forward/back substitution.
func (c *Cholesky) Solve(b []float64) ([]float64, error) {
	n := c.l.Rows()
	if len(b) != n {
		return nil, fmt.Errorf("matrix: rhs length %d for %dx%d system", len(b), n, n)
	}
	x := make([]float64, n)
	copy(x, b)
	// L·y = b.
	for i := 0; i < n; i++ {
		row := c.l.Row(i)
		sum := x[i]
		for k := 0; k < i; k++ {
			sum -= row[k] * x[k]
		}
		x[i] = sum / row[i]
	}
	// Lᵀ·x = y.
	for i := n - 1; i >= 0; i-- {
		sum := x[i]
		for k := i + 1; k < n; k++ {
			sum -= c.l.At(k, i) * x[k]
		}
		x[i] = sum / c.l.At(i, i)
	}
	return x, nil
}

// SolveSPD is the one-shot convenience for SPD systems.
func SolveSPD(a *Dense, b []float64) ([]float64, error) {
	f, err := FactorizeCholesky(a)
	if err != nil {
		return nil, err
	}
	return f.Solve(b)
}
