package matrix

import (
	"fmt"
	"sync"
)

// Pool is a size-keyed free list of Dense matrices. The Strassen and
// CAPS numeric paths draw their recursion temporaries (operand sums
// and the seven products per level) from a Pool instead of allocating
// them fresh on every build, which removes the O(n²)-per-level
// allocation churn from repeated multiplies.
//
// The zero value is ready to use. A Pool is safe for concurrent use.
type Pool struct {
	mu   sync.Mutex
	free map[[2]int][]*Dense
}

// Get returns an r×c matrix, recycling a previously Put one when a
// matching size is cached. The contents are undefined: callers that
// need zeroed storage must Zero it themselves. (The Strassen
// temporaries are fully overwritten before being read, so the numeric
// path skips the clear.)
func (p *Pool) Get(r, c int) *Dense {
	key := [2]int{r, c}
	p.mu.Lock()
	if list := p.free[key]; len(list) > 0 {
		m := list[len(list)-1]
		p.free[key] = list[:len(list)-1]
		p.mu.Unlock()
		return m
	}
	p.mu.Unlock()
	return New(r, c)
}

// Put returns matrices to the pool for reuse. Views are rejected with
// a panic: a view shares storage with its parent, so recycling it
// would alias two unrelated "scratch" matrices.
func (p *Pool) Put(ms ...*Dense) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.free == nil {
		p.free = make(map[[2]int][]*Dense)
	}
	for _, m := range ms {
		if m == nil {
			continue
		}
		if m.IsShape() {
			panic(fmt.Sprintf("matrix: Pool.Put of a shape-only %dx%d matrix", m.rows, m.cols))
		}
		if m.IsView() {
			panic(fmt.Sprintf("matrix: Pool.Put of a %dx%d view", m.rows, m.cols))
		}
		key := [2]int{m.rows, m.cols}
		p.free[key] = append(p.free[key], m)
	}
}

// Len returns the number of matrices currently cached.
func (p *Pool) Len() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	n := 0
	for _, list := range p.free {
		n += len(list)
	}
	return n
}
