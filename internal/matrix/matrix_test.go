package matrix

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewZeroed(t *testing.T) {
	m := New(3, 5)
	if m.Rows() != 3 || m.Cols() != 5 || m.Stride() != 5 {
		t.Fatalf("got %dx%d stride %d", m.Rows(), m.Cols(), m.Stride())
	}
	for i := 0; i < 3; i++ {
		for j := 0; j < 5; j++ {
			if m.At(i, j) != 0 {
				t.Fatalf("element (%d,%d) = %v, want 0", i, j, m.At(i, j))
			}
		}
	}
}

func TestNewNegativePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("New(-1, 2) did not panic")
		}
	}()
	New(-1, 2)
}

func TestNewFromSlice(t *testing.T) {
	m := NewFromSlice(2, 3, []float64{1, 2, 3, 4, 5, 6})
	if m.At(0, 0) != 1 || m.At(0, 2) != 3 || m.At(1, 0) != 4 || m.At(1, 2) != 6 {
		t.Fatalf("unexpected layout: %v", m)
	}
}

func TestNewFromSliceLengthMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("mismatched slice did not panic")
		}
	}()
	NewFromSlice(2, 3, []float64{1, 2, 3})
}

func TestIdentity(t *testing.T) {
	id := Identity(4)
	for i := 0; i < 4; i++ {
		for j := 0; j < 4; j++ {
			want := 0.0
			if i == j {
				want = 1
			}
			if id.At(i, j) != want {
				t.Fatalf("I(%d,%d) = %v", i, j, id.At(i, j))
			}
		}
	}
}

func TestSetAt(t *testing.T) {
	m := New(2, 2)
	m.Set(1, 0, 7.5)
	if m.At(1, 0) != 7.5 {
		t.Fatalf("round trip failed: %v", m.At(1, 0))
	}
}

func TestAtOutOfBoundsPanics(t *testing.T) {
	m := New(2, 2)
	for _, idx := range [][2]int{{-1, 0}, {0, -1}, {2, 0}, {0, 2}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("At(%d,%d) did not panic", idx[0], idx[1])
				}
			}()
			m.At(idx[0], idx[1])
		}()
	}
}

func TestViewSharesStorage(t *testing.T) {
	m := New(4, 4)
	v := m.View(1, 1, 2, 2)
	v.Set(0, 0, 9)
	if m.At(1, 1) != 9 {
		t.Fatal("view write not visible in parent")
	}
	m.Set(2, 2, 3)
	if v.At(1, 1) != 3 {
		t.Fatal("parent write not visible in view")
	}
	if !v.IsView() {
		t.Fatal("view not reported as view")
	}
	if m.IsView() {
		t.Fatal("owner reported as view")
	}
}

func TestViewOutOfBoundsPanics(t *testing.T) {
	m := New(4, 4)
	defer func() {
		if recover() == nil {
			t.Fatal("oversized view did not panic")
		}
	}()
	m.View(2, 2, 3, 3)
}

func TestQuadrants(t *testing.T) {
	m := New(4, 4)
	for i := 0; i < 4; i++ {
		for j := 0; j < 4; j++ {
			m.Set(i, j, float64(10*i+j))
		}
	}
	a11, a12, a21, a22 := m.Quadrants()
	if a11.At(0, 0) != 0 || a12.At(0, 0) != 2 || a21.At(0, 0) != 20 || a22.At(0, 0) != 22 {
		t.Fatalf("quadrant corners wrong: %v %v %v %v",
			a11.At(0, 0), a12.At(0, 0), a21.At(0, 0), a22.At(0, 0))
	}
	if a22.Rows() != 2 || a22.Cols() != 2 {
		t.Fatalf("quadrant shape %dx%d", a22.Rows(), a22.Cols())
	}
}

func TestQuadrantsOddPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("odd quadrants did not panic")
		}
	}()
	New(3, 3).Quadrants()
}

func TestCloneIsDeep(t *testing.T) {
	m := RandSeeded(1, 3, 3)
	c := m.Clone()
	if !Equal(m, c) {
		t.Fatal("clone differs")
	}
	c.Set(0, 0, 99)
	if m.At(0, 0) == 99 {
		t.Fatal("clone shares storage")
	}
}

func TestCloneOfViewIsCompact(t *testing.T) {
	m := RandSeeded(2, 6, 6)
	v := m.View(1, 1, 3, 3)
	c := v.Clone()
	if c.Stride() != 3 || c.IsView() {
		t.Fatalf("clone of view not compact: stride %d", c.Stride())
	}
	if !Equal(v, c) {
		t.Fatal("clone of view differs")
	}
}

func TestFillAndZero(t *testing.T) {
	m := New(3, 3)
	m.Fill(2.5)
	if m.At(2, 2) != 2.5 {
		t.Fatal("fill failed")
	}
	m.Zero()
	if m.MaxAbs() != 0 {
		t.Fatal("zero failed")
	}
}

func TestAddSubAccum(t *testing.T) {
	a := NewFromSlice(2, 2, []float64{1, 2, 3, 4})
	b := NewFromSlice(2, 2, []float64{10, 20, 30, 40})
	sum := New(2, 2)
	AddTo(sum, a, b)
	if sum.At(1, 1) != 44 {
		t.Fatalf("add: %v", sum)
	}
	diff := New(2, 2)
	SubTo(diff, b, a)
	if diff.At(0, 0) != 9 {
		t.Fatalf("sub: %v", diff)
	}
	AccumTo(sum, a)
	if sum.At(0, 0) != 12 {
		t.Fatalf("accum: %v", sum)
	}
}

func TestAddAliasing(t *testing.T) {
	a := NewFromSlice(2, 2, []float64{1, 2, 3, 4})
	AddTo(a, a, a) // a = a + a
	if a.At(1, 1) != 8 {
		t.Fatalf("aliased add: %v", a)
	}
}

func TestScale(t *testing.T) {
	a := NewFromSlice(1, 3, []float64{1, -2, 3})
	a.Scale(-2)
	if a.At(0, 0) != -2 || a.At(0, 1) != 4 || a.At(0, 2) != -6 {
		t.Fatalf("scale: %v", a)
	}
}

func TestTranspose(t *testing.T) {
	a := NewFromSlice(2, 3, []float64{1, 2, 3, 4, 5, 6})
	at := New(3, 2)
	TransposeTo(at, a)
	for i := 0; i < 2; i++ {
		for j := 0; j < 3; j++ {
			if a.At(i, j) != at.At(j, i) {
				t.Fatalf("transpose mismatch at (%d,%d)", i, j)
			}
		}
	}
}

func TestMulNaiveIdentity(t *testing.T) {
	a := RandSeeded(3, 5, 5)
	id := Identity(5)
	out := New(5, 5)
	MulNaive(out, a, id)
	if !Equal(out, a) {
		t.Fatal("A*I != A")
	}
	MulNaive(out, id, a)
	if !Equal(out, a) {
		t.Fatal("I*A != A")
	}
}

func TestMulNaiveKnown(t *testing.T) {
	a := NewFromSlice(2, 3, []float64{1, 2, 3, 4, 5, 6})
	b := NewFromSlice(3, 2, []float64{7, 8, 9, 10, 11, 12})
	out := New(2, 2)
	MulNaive(out, a, b)
	want := NewFromSlice(2, 2, []float64{58, 64, 139, 154})
	if !Equal(out, want) {
		t.Fatalf("got %v want %v", out, want)
	}
}

func TestMulNaiveShapePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("shape mismatch did not panic")
		}
	}()
	MulNaive(New(2, 2), New(2, 3), New(2, 2))
}

func TestMaxAbsDiffAndAlmostEqual(t *testing.T) {
	a := NewFromSlice(1, 2, []float64{1, 2})
	b := NewFromSlice(1, 2, []float64{1, 2.5})
	if d := MaxAbsDiff(a, b); d != 0.5 {
		t.Fatalf("diff %v", d)
	}
	if AlmostEqual(a, b, 1e-6) {
		t.Fatal("should not be almost equal")
	}
	if !AlmostEqual(a, b, 0.3) { // relative: 0.5/2.5 = 0.2 <= 0.3
		t.Fatal("should be almost equal at loose tolerance")
	}
}

func TestEqualShapeMismatch(t *testing.T) {
	if Equal(New(2, 2), New(2, 3)) {
		t.Fatal("different shapes reported equal")
	}
	if AlmostEqual(New(2, 2), New(3, 2), 1) {
		t.Fatal("different shapes reported almost equal")
	}
}

func TestNorms(t *testing.T) {
	m := NewFromSlice(1, 2, []float64{3, -4})
	if m.MaxAbs() != 4 {
		t.Fatalf("MaxAbs %v", m.MaxAbs())
	}
	if math.Abs(m.FrobeniusNorm()-5) > 1e-12 {
		t.Fatalf("Frobenius %v", m.FrobeniusNorm())
	}
}

func TestNextPow2(t *testing.T) {
	cases := map[int]int{0: 1, 1: 1, 2: 2, 3: 4, 4: 4, 5: 8, 1023: 1024, 1024: 1024, 1025: 2048}
	for in, want := range cases {
		if got := NextPow2(in); got != want {
			t.Errorf("NextPow2(%d) = %d, want %d", in, got, want)
		}
	}
}

func TestIsPow2(t *testing.T) {
	for _, n := range []int{1, 2, 4, 64, 4096} {
		if !IsPow2(n) {
			t.Errorf("IsPow2(%d) = false", n)
		}
	}
	for _, n := range []int{0, -2, 3, 6, 100} {
		if IsPow2(n) {
			t.Errorf("IsPow2(%d) = true", n)
		}
	}
}

func TestPadTo(t *testing.T) {
	m := NewFromSlice(2, 2, []float64{1, 2, 3, 4})
	p := PadTo(m, 4, 3)
	if p.Rows() != 4 || p.Cols() != 3 {
		t.Fatalf("pad shape %dx%d", p.Rows(), p.Cols())
	}
	if p.At(1, 1) != 4 || p.At(2, 0) != 0 || p.At(3, 2) != 0 {
		t.Fatalf("pad content wrong: %v", p)
	}
}

func TestPadToSmallerPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("shrinking pad did not panic")
		}
	}()
	PadTo(New(3, 3), 2, 4)
}

func TestRandDeterministic(t *testing.T) {
	a := RandSeeded(42, 6, 6)
	b := RandSeeded(42, 6, 6)
	if !Equal(a, b) {
		t.Fatal("same seed produced different matrices")
	}
	c := RandSeeded(43, 6, 6)
	if Equal(a, c) {
		t.Fatal("different seeds produced identical matrices")
	}
}

func TestRandRange(t *testing.T) {
	m := RandSeeded(7, 16, 16)
	for i := 0; i < 16; i++ {
		for _, v := range m.Row(i) {
			if v < -1 || v >= 1 {
				t.Fatalf("element %v outside [-1,1)", v)
			}
		}
	}
}

func TestRandIntsExact(t *testing.T) {
	m := RandInts(rand.New(rand.NewSource(1)), 8, 8, 3)
	for i := 0; i < 8; i++ {
		for _, v := range m.Row(i) {
			if v != math.Trunc(v) || v < -3 || v > 3 {
				t.Fatalf("element %v not an int in [-3,3]", v)
			}
		}
	}
}

// randDense builds a small random matrix from quick-check parameters.
func randDense(rng *rand.Rand, rows, cols int) *Dense {
	return Rand(rng, rows, cols)
}

func TestPropertyAddCommutes(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(12)
		a := randDense(rng, n, n)
		b := randDense(rng, n, n)
		ab, ba := New(n, n), New(n, n)
		AddTo(ab, a, b)
		AddTo(ba, b, a)
		return Equal(ab, ba)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyAddSubRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		r, c := 1+rng.Intn(10), 1+rng.Intn(10)
		a := randDense(rng, r, c)
		b := randDense(rng, r, c)
		sum, back := New(r, c), New(r, c)
		AddTo(sum, a, b)
		SubTo(back, sum, b)
		return AlmostEqual(back, a, 1e-12)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyMulDistributesOverAdd(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(8)
		a := RandInts(rng, n, n, 4)
		b := RandInts(rng, n, n, 4)
		c := RandInts(rng, n, n, 4)
		// a*(b+c) == a*b + a*c, exact for small integers.
		bc := New(n, n)
		AddTo(bc, b, c)
		lhs := New(n, n)
		MulNaive(lhs, a, bc)
		ab, ac, rhs := New(n, n), New(n, n), New(n, n)
		MulNaive(ab, a, b)
		MulNaive(ac, a, c)
		AddTo(rhs, ab, ac)
		return Equal(lhs, rhs)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyTransposeInvolution(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		r, c := 1+rng.Intn(10), 1+rng.Intn(10)
		a := randDense(rng, r, c)
		at := New(c, r)
		att := New(r, c)
		TransposeTo(at, a)
		TransposeTo(att, at)
		return Equal(a, att)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyMulTransposeIdentity(t *testing.T) {
	// (A*B)ᵀ == Bᵀ*Aᵀ with exact integer matrices.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(8)
		a := RandInts(rng, n, n, 3)
		b := RandInts(rng, n, n, 3)
		ab := New(n, n)
		MulNaive(ab, a, b)
		abT := New(n, n)
		TransposeTo(abT, ab)
		at, bt := New(n, n), New(n, n)
		TransposeTo(at, a)
		TransposeTo(bt, b)
		btat := New(n, n)
		MulNaive(btat, bt, at)
		return Equal(abT, btat)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyViewCloneEqualsRegion(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 4 + rng.Intn(12)
		m := randDense(rng, n, n)
		i, j := rng.Intn(n/2), rng.Intn(n/2)
		r, c := 1+rng.Intn(n-i-1), 1+rng.Intn(n-j-1)
		v := m.View(i, j, r, c)
		clone := v.Clone()
		for x := 0; x < r; x++ {
			for y := 0; y < c; y++ {
				if clone.At(x, y) != m.At(i+x, j+y) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestStringSmallAndLarge(t *testing.T) {
	small := Identity(2)
	if s := small.String(); len(s) == 0 {
		t.Fatal("empty string for small matrix")
	}
	big := New(100, 100)
	if s := big.String(); s != "Dense{100x100}" {
		t.Fatalf("large summary: %q", s)
	}
}
