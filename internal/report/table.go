// Package report renders the paper's tables and figures from a
// completed experiment matrix, side by side with the published values
// so a reader can check the reproduction's shape at a glance. All
// output is plain text (aligned tables) or CSV (figure series).
package report

import (
	"fmt"
	"io"
	"strings"
)

// Table is a simple aligned-text table with an optional title.
type Table struct {
	Title  string
	Header []string
	Rows   [][]string
}

// AddRow appends a row; it panics when the width disagrees with the
// header, which indicates a renderer bug.
func (t *Table) AddRow(cells ...string) {
	if len(t.Header) > 0 && len(cells) != len(t.Header) {
		panic(fmt.Sprintf("report: row width %d vs header %d", len(cells), len(t.Header)))
	}
	t.Rows = append(t.Rows, cells)
}

// String renders the table with aligned columns.
func (t *Table) String() string {
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var sb strings.Builder
	if t.Title != "" {
		sb.WriteString(t.Title)
		sb.WriteByte('\n')
	}
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				sb.WriteString("  ")
			}
			fmt.Fprintf(&sb, "%-*s", widths[i], c)
		}
		sb.WriteByte('\n')
	}
	writeRow(t.Header)
	sep := make([]string, len(t.Header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, row := range t.Rows {
		writeRow(row)
	}
	return sb.String()
}

// WriteCSV emits the table as CSV (title omitted).
func (t *Table) WriteCSV(w io.Writer) error {
	rows := append([][]string{t.Header}, t.Rows...)
	for _, row := range rows {
		for i, c := range row {
			if strings.ContainsAny(c, ",\"\n") {
				c = `"` + strings.ReplaceAll(c, `"`, `""`) + `"`
			}
			if i > 0 {
				if _, err := io.WriteString(w, ","); err != nil {
					return err
				}
			}
			if _, err := io.WriteString(w, c); err != nil {
				return err
			}
		}
		if _, err := io.WriteString(w, "\n"); err != nil {
			return err
		}
	}
	return nil
}

func f2(v float64) string { return fmt.Sprintf("%.2f", v) }
func f3(v float64) string { return fmt.Sprintf("%.3f", v) }
