package report

import (
	"strconv"
	"strings"
	"testing"

	"capscale/internal/workload"
)

var cached *workload.Matrix

func smokeMatrix(t *testing.T) *workload.Matrix {
	t.Helper()
	if cached == nil {
		cached = workload.Execute(workload.SmokeConfig())
	}
	return cached
}

func TestTableFormatting(t *testing.T) {
	tb := &Table{Title: "T", Header: []string{"a", "bb"}}
	tb.AddRow("1", "2")
	tb.AddRow("333", "4")
	s := tb.String()
	lines := strings.Split(strings.TrimRight(s, "\n"), "\n")
	if len(lines) != 5 { // title, header, separator, 2 rows
		t.Fatalf("lines %d:\n%s", len(lines), s)
	}
	if !strings.HasPrefix(lines[0], "T") {
		t.Fatal("title missing")
	}
}

func TestTableRowWidthPanics(t *testing.T) {
	tb := &Table{Header: []string{"a", "b"}}
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	tb.AddRow("only one")
}

func TestTableCSV(t *testing.T) {
	tb := &Table{Header: []string{"a", "b"}}
	tb.AddRow(`has,comma`, `has"quote`)
	var sb strings.Builder
	if err := tb.WriteCSV(&sb); err != nil {
		t.Fatal(err)
	}
	got := sb.String()
	if !strings.Contains(got, `"has,comma"`) || !strings.Contains(got, `"has""quote"`) {
		t.Fatalf("csv escaping wrong: %q", got)
	}
}

func TestPaperValuesComplete(t *testing.T) {
	sizes := []int{512, 1024, 2048, 4096}
	for _, alg := range []workload.Algorithm{workload.AlgStrassen, workload.AlgCAPS} {
		for _, n := range sizes {
			if _, ok := PaperTable2[alg][n]; !ok {
				t.Errorf("Table II missing %v/%d", alg, n)
			}
		}
	}
	for _, alg := range workload.PaperAlgorithms() {
		for p := 1; p <= 4; p++ {
			if _, ok := PaperTable3[alg][p]; !ok {
				t.Errorf("Table III missing %v/%d", alg, p)
			}
		}
		for _, n := range sizes {
			if _, ok := PaperTable4[alg][n]; !ok {
				t.Errorf("Table IV missing %v/%d", alg, n)
			}
		}
	}
}

func TestPaperTable3AveragesConsistent(t *testing.T) {
	// The published per-thread values should average to the published
	// all-thread averages (within rounding).
	for alg, rows := range PaperTable3 {
		sum := 0.0
		for _, w := range rows {
			sum += w
		}
		avg := sum / float64(len(rows))
		if d := avg - PaperTable3Avg[alg]; d > 0.2 || d < -0.2 {
			t.Errorf("%v: published rows average %v vs published avg %v", alg, avg, PaperTable3Avg[alg])
		}
	}
}

func TestRenderersProduceAllSections(t *testing.T) {
	mx := smokeMatrix(t)
	out := All(mx)
	for _, want := range []string{
		"Figure 1", "Figure 3", "Table II", "Figure 4", "Figure 5",
		"Figure 6", "Table III", "Table IV", "Figure 7",
		"Measurement reconciliation", "Headline",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q", want)
		}
	}
	for _, alg := range []string{"OpenBLAS", "Strassen", "CAPS"} {
		if !strings.Contains(out, alg) {
			t.Errorf("output missing algorithm %q", alg)
		}
	}
}

func TestTable2RowsCoverSizesPlusAverage(t *testing.T) {
	mx := smokeMatrix(t)
	tb := Table2(mx)
	// Two algorithms × (sizes + no published avg rows at smoke sizes).
	wantMin := 2 * len(mx.Cfg.Sizes)
	if len(tb.Rows) < wantMin {
		t.Fatalf("rows %d want at least %d", len(tb.Rows), wantMin)
	}
}

func TestFigure7ClassifiesSeries(t *testing.T) {
	mx := smokeMatrix(t)
	tb := Figure7(mx)
	s := tb.String()
	if !strings.Contains(s, "ideal") && !strings.Contains(s, "superlinear") {
		t.Fatal("no classification rendered")
	}
}

func TestFigure1Shape(t *testing.T) {
	tb := Figure1(4)
	if len(tb.Rows) != 4 {
		t.Fatalf("rows %d", len(tb.Rows))
	}
	// The superlinear example must exceed the threshold at P=4; the
	// ideal one must not.
	last := tb.Rows[3]
	parse := func(s string) float64 {
		v, err := strconv.ParseFloat(s, 64)
		if err != nil {
			t.Fatalf("cell %q not numeric: %v", s, err)
		}
		return v
	}
	if parse(last[2]) >= parse(last[1]) {
		t.Fatalf("ideal example %s above threshold %s", last[2], last[1])
	}
	if parse(last[3]) <= parse(last[1]) {
		t.Fatalf("superlinear example %s below threshold %s", last[3], last[1])
	}
}

func TestPowerScalingFigureColumns(t *testing.T) {
	mx := smokeMatrix(t)
	tb := PowerScalingFigure(mx, workload.AlgOpenBLAS, 4)
	if len(tb.Header) != 1+len(mx.Cfg.Sizes) {
		t.Fatalf("header %v", tb.Header)
	}
	if len(tb.Rows) != len(mx.Cfg.Threads) {
		t.Fatalf("rows %d", len(tb.Rows))
	}
}

func TestMeasurementTableReconciles(t *testing.T) {
	mx := smokeMatrix(t)
	tb := MeasurementTable(mx)
	if len(tb.Rows) != len(mx.Runs) {
		t.Fatalf("rows %d want %d", len(tb.Rows), len(mx.Runs))
	}
	for i := range mx.Runs {
		r := &mx.Runs[i]
		if r.TruthPKGJoules <= 0 {
			t.Fatalf("run %d carries no ground truth", i)
		}
		// Smoke runs are sub-millisecond, so relative error is floored
		// by counter quantization; the absolute error is what separates
		// "reconciled" (a few 15 µJ quanta) from wrap loss (~65 kJ).
		if e := r.MeasurementAbsErr(); e > 1e-4 {
			t.Errorf("run %d: abs.err %.3e J above quantization noise", i, e)
		}
		if tb.Rows[i][4] == "-" {
			t.Errorf("run %d rendered as legacy (no truth column)", i)
		}
	}
}

func TestMeasurementTableLegacyMatrix(t *testing.T) {
	// A matrix loaded from JSON saved before the measurement loop was
	// closed has no truth or sample columns; it must render as "-"
	// rather than claiming a perfect (zero) error.
	mx := &workload.Matrix{Runs: []workload.Run{{
		Alg: workload.AlgOpenBLAS, N: 512, Threads: 2,
		Seconds: 1, PKGJoules: 30, DRAMJoules: 3,
	}}}
	tb := MeasurementTable(mx)
	if got := tb.Rows[0][4]; got != "-" {
		t.Fatalf("truth cell %q want -", got)
	}
	if got := tb.Rows[0][5]; got != "-" {
		t.Fatalf("err cell %q want -", got)
	}
}

func TestHeadlinesRender(t *testing.T) {
	mx := smokeMatrix(t)
	s := Headlines(mx).String()
	for _, want := range []string{"slowdown", "power", "watts"} {
		if !strings.Contains(s, want) {
			t.Errorf("headlines missing %q", want)
		}
	}
}
