package report

import "capscale/internal/workload"

// The paper's published numbers, for side-by-side comparison. Sources:
// Table II (average Strassen/CAPS slowdown per problem size), Table III
// (average watts per thread count), Table IV (average energy
// performance per problem size).

// PaperTable2 holds average slowdown versus OpenBLAS by problem size.
var PaperTable2 = map[workload.Algorithm]map[int]float64{
	workload.AlgStrassen: {512: 2.872, 1024: 3.477, 2048: 2.874, 4096: 2.637},
	workload.AlgCAPS:     {512: 2.840, 1024: 2.942, 2048: 2.809, 4096: 2.561},
}

// PaperTable2Avg holds the all-sizes average slowdown.
var PaperTable2Avg = map[workload.Algorithm]float64{
	workload.AlgStrassen: 2.965,
	workload.AlgCAPS:     2.788,
}

// PaperTable3 holds average watts by thread count (1..4).
var PaperTable3 = map[workload.Algorithm]map[int]float64{
	workload.AlgOpenBLAS: {1: 20.2, 2: 30.9, 3: 40.98, 4: 49.13},
	workload.AlgStrassen: {1: 21.1, 2: 26.25, 3: 30.4, 4: 31.9},
	workload.AlgCAPS:     {1: 17.7, 2: 25.75, 3: 30.175, 4: 33.175},
}

// PaperTable3Avg holds the all-thread-counts average watts.
var PaperTable3Avg = map[workload.Algorithm]float64{
	workload.AlgOpenBLAS: 35.3,
	workload.AlgStrassen: 27.41,
	workload.AlgCAPS:     26.7,
}

// PaperTable4 holds average energy performance (EP = EAvg/T) by size.
var PaperTable4 = map[workload.Algorithm]map[int]float64{
	workload.AlgOpenBLAS: {512: 6356.33, 1024: 1052.34, 2048: 136.38, 4096: 19.53},
	workload.AlgStrassen: {512: 1912.76, 1024: 239.27, 2048: 24.60, 4096: 4.70},
	workload.AlgCAPS:     {512: 1961.28, 1024: 244.57, 2048: 25.32, 4096: 4.86},
}

// PaperHeadlines collects the paper's scalar claims used by the
// benchmark harness's shape checks.
var PaperHeadlines = struct {
	StrassenAvgSlowdown float64 // 2.965×
	CAPSAvgSlowdown     float64 // 2.788×
	CAPSPerfGain        float64 // CAPS 5.97% faster than Strassen
	CAPSPowerGain       float64 // CAPS 2.59% lower average power
	MinOpenBLASWatts    float64 // 17.7 W at 512/1 thread
	MaxOpenBLASWatts    float64 // 56.4 W at 4096/4 threads
}{
	StrassenAvgSlowdown: 2.965,
	CAPSAvgSlowdown:     2.788,
	CAPSPerfGain:        0.0597,
	CAPSPowerGain:       0.0259,
	MinOpenBLASWatts:    17.7,
	MaxOpenBLASWatts:    56.4,
}
