package report

import "capscale/internal/obs"

// MetricsTable renders the observability registry as a table: one row
// per counter, gauge and histogram, sorted by name. Counters are
// cumulative for the process; gauges also show their high-water mark.
// CLIs print this to stderr under -metrics so the run's pipeline
// health (cache hit rate, samples observed, leaves dispatched) rides
// along with the scientific output.
func MetricsTable() *Table {
	t := &Table{
		Title:  "Pipeline metrics",
		Header: []string{"metric", "kind", "value"},
	}
	for _, m := range obs.Metrics() {
		t.AddRow(m.Name, m.Kind, m.Value)
	}
	return t
}
