package report

import (
	"math"
	"strings"
	"testing"

	"capscale/internal/caps"
	"capscale/internal/hw"
	"capscale/internal/matrix"
	"capscale/internal/sim"
	"capscale/internal/task"
)

func TestGanttRendersSpans(t *testing.T) {
	g := &Gantt{
		Title:   "g",
		Workers: 2,
		Width:   10,
		Spans: []sim.LeafSpan{
			{Worker: 0, Start: 0, End: 0.5, Kind: task.KindGEMM},
			{Worker: 1, Start: 0.5, End: 1.0, Kind: task.KindAdd},
		},
	}
	s := g.String()
	lines := strings.Split(s, "\n")
	if !strings.HasPrefix(lines[1], "  w0 ") || !strings.Contains(lines[1], "GGGGG") {
		t.Fatalf("worker 0 row wrong:\n%s", s)
	}
	if !strings.Contains(lines[2], "AAAAA") || !strings.HasPrefix(lines[2], "  w1 ") {
		t.Fatalf("worker 1 row wrong:\n%s", s)
	}
	// First half of worker 1 idle.
	if !strings.Contains(lines[2], ".....") {
		t.Fatalf("idle not rendered:\n%s", s)
	}
	if u := g.Utilization(); math.Abs(u-0.5) > 1e-12 {
		t.Fatalf("utilization %v", u)
	}
}

func TestGanttBadWorkerPanics(t *testing.T) {
	g := &Gantt{Workers: 1, Spans: []sim.LeafSpan{{Worker: 3, End: 1}}}
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	_ = g.String()
}

func TestGanttEmpty(t *testing.T) {
	g := &Gantt{Workers: 2}
	if s := g.String(); !strings.Contains(s, "w0") {
		t.Fatal("empty gantt broken")
	}
}

func TestGanttFromRealSchedule(t *testing.T) {
	m := hw.HaswellE31225()
	n := 256
	a, b, c := matrix.New(n, n), matrix.New(n, n), matrix.New(n, n)
	root := caps.Build(m, c, a, b, 4, caps.Options{Cutover: 32, CutoffDepth: 2})
	res := sim.Run(m, root, sim.Config{Workers: 4, RecordSchedule: true})
	if len(res.Schedule) != res.Leaves {
		t.Fatalf("schedule %d spans for %d leaves", len(res.Schedule), res.Leaves)
	}
	g := &Gantt{Title: "caps", Workers: 4, Spans: res.Schedule}
	s := g.String()
	for _, want := range []string{"w0", "w3", "B"} {
		if !strings.Contains(s, want) {
			t.Fatalf("gantt missing %q:\n%s", want, s)
		}
	}
	// Spans on one worker must not overlap (the scheduler guarantees
	// one leaf per worker at a time).
	for _, w := range []int{0, 1, 2, 3} {
		var last float64
		for _, sp := range res.Schedule {
			if sp.Worker != w {
				continue
			}
			if sp.Start < last-1e-12 {
				t.Fatalf("worker %d spans overlap at %v", w, sp.Start)
			}
			last = sp.End
		}
	}
}

func TestScheduleOffByDefault(t *testing.T) {
	m := hw.HaswellE31225()
	root := task.Leaf(task.Work{Kind: task.KindGEMM, Flops: 1e6})
	res := sim.Run(m, root, sim.Config{Workers: 1})
	if res.Schedule != nil {
		t.Fatal("schedule recorded without RecordSchedule")
	}
}
