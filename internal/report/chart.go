package report

import (
	"fmt"
	"math"
	"strings"

	"capscale/internal/workload"
)

// Chart is a fixed-grid ASCII line chart: series of y-values over a
// shared ordered x-axis, one marker glyph per series. It renders the
// paper's figures as plots rather than tables.
type Chart struct {
	Title  string
	YLabel string
	// X holds the shared x coordinates (e.g. thread counts).
	X []float64
	// Series are plotted in order with markers o, x, *, +, #, @.
	Series []ChartSeries
	// Height is the plot rows (default 12); Width the plot columns
	// (default 56).
	Height, Width int
}

// ChartSeries is one plotted line.
type ChartSeries struct {
	Name string
	Y    []float64
}

var chartMarkers = []byte{'o', 'x', '*', '+', '#', '@'}

// String renders the chart. It panics on inconsistent series lengths
// (a renderer bug, not an input condition).
func (c *Chart) String() string {
	h, w := c.Height, c.Width
	if h <= 0 {
		h = 12
	}
	if w <= 0 {
		w = 56
	}
	for _, s := range c.Series {
		if len(s.Y) != len(c.X) {
			panic(fmt.Sprintf("report: series %q has %d points for %d x-values", s.Name, len(s.Y), len(c.X)))
		}
	}

	lo, hi := math.Inf(1), math.Inf(-1)
	for _, s := range c.Series {
		for _, v := range s.Y {
			lo = math.Min(lo, v)
			hi = math.Max(hi, v)
		}
	}
	if math.IsInf(lo, 1) {
		lo, hi = 0, 1
	}
	if hi == lo {
		hi = lo + 1
	}
	// Pad the range slightly so extremes stay inside the grid.
	pad := (hi - lo) * 0.05
	lo, hi = lo-pad, hi+pad

	grid := make([][]byte, h)
	for r := range grid {
		grid[r] = []byte(strings.Repeat(" ", w))
	}
	xcol := func(i int) int {
		if len(c.X) == 1 {
			return w / 2
		}
		return i * (w - 1) / (len(c.X) - 1)
	}
	yrow := func(v float64) int {
		r := int(math.Round((hi - v) / (hi - lo) * float64(h-1)))
		if r < 0 {
			r = 0
		}
		if r >= h {
			r = h - 1
		}
		return r
	}

	for si, s := range c.Series {
		marker := chartMarkers[si%len(chartMarkers)]
		// Connect consecutive points with interpolated dots, then put
		// markers on top.
		for i := 1; i < len(s.Y); i++ {
			c0, r0 := xcol(i-1), yrow(s.Y[i-1])
			c1, r1 := xcol(i), yrow(s.Y[i])
			steps := c1 - c0
			for st := 0; st <= steps; st++ {
				col := c0 + st
				frac := 0.0
				if steps > 0 {
					frac = float64(st) / float64(steps)
				}
				row := int(math.Round(float64(r0) + frac*float64(r1-r0)))
				if grid[row][col] == ' ' {
					grid[row][col] = '.'
				}
			}
		}
		for i, v := range s.Y {
			grid[yrow(v)][xcol(i)] = marker
		}
	}

	var sb strings.Builder
	if c.Title != "" {
		sb.WriteString(c.Title)
		sb.WriteByte('\n')
	}
	for r := 0; r < h; r++ {
		val := hi - (hi-lo)*float64(r)/float64(h-1)
		fmt.Fprintf(&sb, "%9.2f |%s\n", val, string(grid[r]))
	}
	sb.WriteString(strings.Repeat(" ", 10) + "+" + strings.Repeat("-", w) + "\n")
	// X tick labels, spread under their columns.
	ticks := []byte(strings.Repeat(" ", w+11))
	for i, x := range c.X {
		label := trimFloat(x)
		col := 11 + xcol(i)
		copy(ticks[min(col, len(ticks)-len(label)):], label)
	}
	sb.Write(ticks)
	sb.WriteByte('\n')
	for si, s := range c.Series {
		fmt.Fprintf(&sb, "  %c %s\n", chartMarkers[si%len(chartMarkers)], s.Name)
	}
	if c.YLabel != "" {
		fmt.Fprintf(&sb, "  y: %s\n", c.YLabel)
	}
	return sb.String()
}

func trimFloat(v float64) string {
	if v == math.Trunc(v) {
		return fmt.Sprintf("%d", int(v))
	}
	return fmt.Sprintf("%g", v)
}

// PowerScalingChart plots one algorithm's power-vs-threads curves per
// problem size — the graphical form of Figs. 4–6.
func PowerScalingChart(mx *workload.Matrix, alg workload.Algorithm, figNo int) *Chart {
	ch := &Chart{
		Title:  fmt.Sprintf("Figure %d — %s power scaling", figNo, alg),
		YLabel: "average watts (PKG+DRAM)",
	}
	for _, p := range mx.Cfg.Threads {
		ch.X = append(ch.X, float64(p))
	}
	for _, n := range mx.Cfg.Sizes {
		s := ChartSeries{Name: fmt.Sprintf("N=%d", n)}
		for _, p := range mx.Cfg.Threads {
			s.Y = append(s.Y, mx.Get(alg, n, p).WattsTotal())
		}
		ch.Series = append(ch.Series, s)
	}
	return ch
}

// ScalingChart plots the Fig. 7 energy-performance scaling S of every
// algorithm at one problem size, with the linear threshold as its own
// series.
func ScalingChart(mx *workload.Matrix, n int) *Chart {
	ch := &Chart{
		Title:  fmt.Sprintf("Figure 7 — energy performance scaling, N=%d", n),
		YLabel: "S = EP_p / EP_1 (above the linear line = superlinear)",
	}
	for _, p := range mx.Cfg.Threads {
		ch.X = append(ch.X, float64(p))
	}
	linear := ChartSeries{Name: "linear threshold"}
	for _, p := range mx.Cfg.Threads {
		linear.Y = append(linear.Y, float64(p))
	}
	ch.Series = append(ch.Series, linear)
	for _, alg := range mx.Cfg.Algorithms {
		series := mx.ScalingSeries(alg, n)
		ch.Series = append(ch.Series, ChartSeries{Name: alg.String(), Y: series.S})
	}
	return ch
}

// SlowdownChart plots Fig. 3: slowdown vs threads, one series per
// algorithm and size.
func SlowdownChart(mx *workload.Matrix) *Chart {
	ch := &Chart{
		Title:  "Figure 3 — Strassen/CAPS slowdown vs OpenBLAS",
		YLabel: "T_alg / T_OpenBLAS",
	}
	for _, p := range mx.Cfg.Threads {
		ch.X = append(ch.X, float64(p))
	}
	for _, alg := range []workload.Algorithm{workload.AlgStrassen, workload.AlgCAPS} {
		for _, n := range mx.Cfg.Sizes {
			s := ChartSeries{Name: fmt.Sprintf("%s N=%d", alg, n)}
			for _, p := range mx.Cfg.Threads {
				s.Y = append(s.Y, mx.Slowdown(alg, n, p))
			}
			ch.Series = append(ch.Series, s)
		}
	}
	return ch
}
