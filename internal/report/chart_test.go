package report

import (
	"strings"
	"testing"

	"capscale/internal/workload"
)

func simpleChart() *Chart {
	return &Chart{
		Title: "test chart",
		X:     []float64{1, 2, 3, 4},
		Series: []ChartSeries{
			{Name: "rising", Y: []float64{1, 2, 3, 4}},
			{Name: "flat", Y: []float64{2, 2, 2, 2}},
		},
	}
}

func TestChartRenders(t *testing.T) {
	s := simpleChart().String()
	if !strings.Contains(s, "test chart") {
		t.Fatal("title missing")
	}
	for _, want := range []string{"o", "x", "rising", "flat", "+--"} {
		if !strings.Contains(s, want) {
			t.Fatalf("chart missing %q:\n%s", want, s)
		}
	}
	// 12 plot rows by default plus axis/legend lines.
	lines := strings.Split(strings.TrimRight(s, "\n"), "\n")
	if len(lines) < 15 {
		t.Fatalf("only %d lines", len(lines))
	}
}

func TestChartMarkersAtExtremes(t *testing.T) {
	ch := &Chart{
		X:      []float64{1, 2},
		Height: 5, Width: 11,
		Series: []ChartSeries{{Name: "s", Y: []float64{0, 10}}},
	}
	s := ch.String()
	lines := strings.Split(s, "\n")
	// Max value on the top plot row, min on the bottom one.
	if !strings.Contains(lines[0], "o") {
		t.Fatalf("top row missing marker:\n%s", s)
	}
	if !strings.Contains(lines[4], "o") {
		t.Fatalf("bottom row missing marker:\n%s", s)
	}
}

func TestChartPanicsOnLengthMismatch(t *testing.T) {
	ch := &Chart{X: []float64{1, 2}, Series: []ChartSeries{{Name: "bad", Y: []float64{1}}}}
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	_ = ch.String()
}

func TestChartConstantSeries(t *testing.T) {
	ch := &Chart{X: []float64{1, 2}, Series: []ChartSeries{{Name: "c", Y: []float64{5, 5}}}}
	if s := ch.String(); !strings.Contains(s, "o") {
		t.Fatal("constant series not plotted")
	}
}

func TestChartDeterministic(t *testing.T) {
	a, b := simpleChart().String(), simpleChart().String()
	if a != b {
		t.Fatal("chart render not deterministic")
	}
}

func TestFigureCharts(t *testing.T) {
	mx := smokeMatrix(t)
	for _, ch := range []*Chart{
		PowerScalingChart(mx, workload.AlgOpenBLAS, 4),
		ScalingChart(mx, mx.Cfg.Sizes[0]),
		SlowdownChart(mx),
	} {
		s := ch.String()
		if len(s) < 100 {
			t.Fatalf("chart too small:\n%s", s)
		}
		if !strings.Contains(s, "Figure") {
			t.Fatal("figure title missing")
		}
	}
	// Fig. 7 chart must include the linear threshold series.
	if s := ScalingChart(mx, mx.Cfg.Sizes[0]).String(); !strings.Contains(s, "linear threshold") {
		t.Fatal("linear threshold missing")
	}
}
