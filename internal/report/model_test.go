package report

import (
	"strings"
	"testing"

	"capscale/internal/hw"
	"capscale/internal/workload"
)

func guidedMatrix(t *testing.T) *workload.Matrix {
	t.Helper()
	return workload.Execute(workload.Config{
		Machine:    hw.HaswellE31225(),
		Algorithms: []workload.Algorithm{workload.AlgOpenBLAS, workload.AlgStrassen},
		Sizes:      []int{128, 192, 256, 384},
		Threads:    []int{1, 2, 3, 4},
		Plan:       workload.PlanGuided,
	})
}

func TestModelTable(t *testing.T) {
	mx := guidedMatrix(t)
	tbl, err := ModelTable(mx)
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) == 0 {
		t.Fatal("model table has no family rows")
	}
	for _, row := range tbl.Rows {
		if len(row) != len(tbl.Header) {
			t.Fatalf("ragged row %v", row)
		}
	}
	s := tbl.String()
	for _, want := range []string{"classic", "strassen", "measured", "predicted"} {
		if !strings.Contains(s, want) {
			t.Fatalf("model table missing %q:\n%s", want, s)
		}
	}
	if !strings.Contains(s, mx.Model.Tag()) {
		t.Fatalf("model table does not name the fitted model tag:\n%s", s)
	}
}

func TestModelCoefficientTable(t *testing.T) {
	tbl, err := ModelCoefficientTable(guidedMatrix(t))
	if err != nil {
		t.Fatal(err)
	}
	s := tbl.String()
	for _, want := range []string{"pkg.eps_op", "dram.", "theta_work"} {
		if !strings.Contains(s, want) {
			t.Fatalf("coefficient table missing %q:\n%s", want, s)
		}
	}
}

func TestModelWorstTable(t *testing.T) {
	tbl, err := ModelWorstTable(guidedMatrix(t), 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) == 0 || len(tbl.Rows) > 5 {
		t.Fatalf("worst table has %d rows", len(tbl.Rows))
	}
}

// A plain exhaustive matrix (no planner) still reports: the model is
// fitted on demand from the measured cells.
func TestModelTableFitsOnDemand(t *testing.T) {
	mx := workload.Execute(workload.Config{
		Machine:    hw.HaswellE31225(),
		Algorithms: []workload.Algorithm{workload.AlgOpenBLAS},
		Sizes:      []int{128, 256, 384},
		Threads:    []int{1, 2, 4},
	})
	tbl, err := ModelTable(mx)
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) == 0 {
		t.Fatal("on-demand fit produced no rows")
	}
}
