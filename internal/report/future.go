package report

import (
	"fmt"

	"capscale/internal/dmm"
	"capscale/internal/sparse"
	"capscale/internal/workload"
)

// Renderers for the future-work studies (paper §VIII) and the
// cross-platform sweep, so the CLI and benches share one format.

// DistributedStudyTable renders a dmm scaling study.
func DistributedStudyTable(algorithm string, points []dmm.ScalingPoint) *Table {
	t := &Table{
		Title:  fmt.Sprintf("Future work — distributed %s energy scaling (interconnect power included)", algorithm),
		Header: []string{"ranks", "time (s)", "watts", "energy (J)", "comm (MB)", "speedup", "S (Eq.5)"},
	}
	for _, p := range points {
		t.AddRow(fmt.Sprint(p.Ranks), fmt.Sprintf("%.4f", p.Seconds), f2(p.Watts),
			fmt.Sprintf("%.0f", p.Joules), f2(p.CommMB), f2(p.Speedup), f2(p.ScalingS))
	}
	return t
}

// SparseStudyTable renders a storage-format energy study.
func SparseStudyTable(points []sparse.StudyPoint) *Table {
	t := &Table{
		Title:  "Future work — SpMV storage-format energy scaling",
		Header: []string{"format", "threads", "time (s)", "watts", "EP (Eq.1)", "traffic (MB)"},
	}
	for _, p := range points {
		t.AddRow(p.Format.String(), fmt.Sprint(p.Threads),
			fmt.Sprintf("%.4f", p.Seconds), f2(p.Watts), f2(p.EP), f2(p.BytesMB))
	}
	return t
}

// PlatformTable renders a cross-platform sweep.
func PlatformTable(points []workload.PlatformPoint) *Table {
	t := &Table{
		Title:  "Cross-platform sweep (full threads per machine)",
		Header: []string{"machine", "algorithm", "time (s)", "watts", "EP", "EDP (J·s)", "Eq.9 crossover"},
	}
	for _, p := range points {
		t.AddRow(p.Machine, p.Algorithm.String(),
			fmt.Sprintf("%.4f", p.Seconds), f2(p.Watts), f2(p.EP), f2(p.EDP),
			fmt.Sprintf("%.0f", p.CrossoverN))
	}
	return t
}
