package report

import (
	"fmt"
	"strings"

	"capscale/internal/sim"
	"capscale/internal/task"
)

// Gantt renders a simulated schedule as one text row per worker, time
// left to right, one glyph per leaf kind — the view that makes the
// paper's Fig. 2 contrast (depth-first vs breadth-first traversal)
// visible as actual core occupancy.
//
// Glyphs: G packed GEMM, B base-case multiply, A addition, C copy,
// o overhead, '.' idle.
type Gantt struct {
	Title   string
	Workers int
	Spans   []sim.LeafSpan
	// Width is the time axis resolution in characters (default 72).
	Width int
}

var ganttGlyphs = map[task.Kind]byte{
	task.KindGEMM:     'G',
	task.KindBaseMul:  'B',
	task.KindAdd:      'A',
	task.KindCopy:     'C',
	task.KindOverhead: 'o',
}

// String renders the chart. Overlapping spans on one worker indicate a
// scheduler bug and panic.
func (g *Gantt) String() string {
	w := g.Width
	if w <= 0 {
		w = 72
	}
	end := 0.0
	for _, s := range g.Spans {
		if s.End > end {
			end = s.End
		}
	}
	if end == 0 {
		end = 1
	}
	rows := make([][]byte, g.Workers)
	for i := range rows {
		rows[i] = []byte(strings.Repeat(".", w))
	}
	col := func(t float64) int {
		c := int(t / end * float64(w))
		if c >= w {
			c = w - 1
		}
		if c < 0 {
			c = 0
		}
		return c
	}
	for _, s := range g.Spans {
		if s.Worker < 0 || s.Worker >= g.Workers {
			panic(fmt.Sprintf("report: span on worker %d of %d", s.Worker, g.Workers))
		}
		glyph, ok := ganttGlyphs[s.Kind]
		if !ok {
			glyph = '?'
		}
		for c := col(s.Start); c <= col(s.End-1e-15); c++ {
			rows[s.Worker][c] = glyph
		}
	}
	var sb strings.Builder
	if g.Title != "" {
		sb.WriteString(g.Title)
		sb.WriteByte('\n')
	}
	for i, row := range rows {
		fmt.Fprintf(&sb, "  w%-2d |%s|\n", i, string(row))
	}
	fmt.Fprintf(&sb, "       0%s%.4fs\n", strings.Repeat(" ", w-8), end)
	sb.WriteString("  G gemm  B basemul  A add  C copy  . idle\n")
	return sb.String()
}

// utilization returns the busy fraction of the schedule.
func (g *Gantt) utilization() float64 {
	end := 0.0
	busy := 0.0
	for _, s := range g.Spans {
		busy += s.End - s.Start
		if s.End > end {
			end = s.End
		}
	}
	if end == 0 || g.Workers == 0 {
		return 0
	}
	return busy / (end * float64(g.Workers))
}

// Utilization exposes the schedule's busy fraction for captions.
func (g *Gantt) Utilization() float64 { return g.utilization() }
