package report

import (
	"strconv"
	"strings"
	"testing"

	"capscale/internal/cluster"
	"capscale/internal/hw"
	"capscale/internal/workload"
)

func commMatrix(t *testing.T) *workload.Matrix {
	t.Helper()
	spec, err := cluster.ParseSpec("16x1GbE")
	if err != nil {
		t.Fatal(err)
	}
	return workload.Execute(workload.Config{
		Machine:    hw.HaswellE31225(),
		Algorithms: []workload.Algorithm{workload.AlgSUMMA, workload.AlgDistCAPS},
		Sizes:      []int{256},
		Threads:    []int{1},
		Clusters:   []cluster.Spec{spec},
	})
}

func TestCommTableRows(t *testing.T) {
	tbl := CommTable(commMatrix(t))
	if len(tbl.Rows) != 2 {
		t.Fatalf("got %d rows: %v", len(tbl.Rows), tbl.Rows)
	}
	for _, row := range tbl.Rows {
		if len(row) != len(tbl.Header) {
			t.Fatalf("ragged row %v", row)
		}
		// Both cells fit more than one rank at n=256 on 16 nodes, so
		// every row's ratio must parse and sit at or above the bound.
		ratio, err := strconv.ParseFloat(row[9], 64)
		if err != nil {
			t.Fatalf("ratio %q does not parse: %v", row[9], err)
		}
		if ratio < 1 {
			t.Fatalf("measured volume below the lower bound: row %v", row)
		}
	}
	if !strings.Contains(tbl.String(), "SUMMA") {
		t.Fatalf("table missing SUMMA row:\n%s", tbl.String())
	}
}

func TestCommTableSkipsSingleNodeRuns(t *testing.T) {
	mx := workload.Execute(workload.Config{
		Machine:    hw.HaswellE31225(),
		Algorithms: []workload.Algorithm{workload.AlgOpenBLAS},
		Sizes:      []int{256},
		Threads:    []int{1},
	})
	if tbl := CommTable(mx); len(tbl.Rows) != 0 {
		t.Fatalf("single-node runs produced comm rows: %v", tbl.Rows)
	}
}

func TestCommLowerBoundFamilies(t *testing.T) {
	mem := 1 << 27 // words
	classic := CommLowerBound(workload.AlgSUMMA, 1024, 16, float64(mem))
	strassen := CommLowerBound(workload.AlgDistCAPS, 1024, 16, float64(mem))
	if classic <= 0 || strassen <= 0 {
		t.Fatalf("non-positive bound: classic %v strassen %v", classic, strassen)
	}
	// ω₀ < 3 admits less communication: Eq. 8 must sit below the
	// classic bound at the same coordinates.
	if strassen >= classic {
		t.Fatalf("Eq. 8 bound %v not below classic %v", strassen, classic)
	}
}
