package report

import (
	"fmt"

	"capscale/internal/cluster"
	"capscale/internal/dmm"
	"capscale/internal/workload"
)

// CommTable plots each distributed run's measured wire traffic against
// the communication lower bound for its algorithm family: Eq. 8
// (Ballard et al., ω₀ = log₂7) for the Strassen-like algorithms, the
// classic Ballard–Demmel bound for SUMMA and 2.5D. Both bounds and the
// measured column are in words per rank, with M = the cluster's
// per-node memory in words — so the Ratio column reads directly as
// "how far above optimal", and communication-avoiding algorithms show
// a small constant while bandwidth-wasteful ones drift up with P.
func CommTable(mx *workload.Matrix) *Table {
	t := &Table{
		Title: "Communication volume vs. lower bound (words per rank; Eq. 8 for Strassen-like, Ballard-Demmel for classic)",
		Header: []string{"Alg", "Cluster", "P", "c", "n",
			"Wire MB", "Msgs", "Words/rank", "Bound", "Ratio", "Crit α", "Comm s"},
	}
	for i := range mx.Runs {
		r := &mx.Runs[i]
		if r.Cluster == "" || r.Failed() {
			continue
		}
		spec, err := cluster.ParseSpec(r.Cluster)
		if err != nil {
			continue // a hand-edited saved matrix; nothing to bound against
		}
		// Ratio is meaningful only when the run put traffic on the wire
		// (a one-rank fit, or a size below the node-local cutoff, is a
		// purely local computation the distributed-data bounds do not
		// constrain).
		bound, ratio := "-", "-"
		if r.Ranks > 1 && r.WireBytes > 0 {
			b := CommLowerBound(r.Alg, r.N, r.Ranks, spec.MemPerNode/8)
			bound = fmt.Sprintf("%.4g", b)
			ratio = f2(CommWordsPerRank(r) / b)
		}
		t.AddRow(
			r.Alg.String(), r.Cluster,
			fmt.Sprintf("%d", r.Ranks), fmt.Sprintf("%d", r.Replication),
			fmt.Sprintf("%d", r.N),
			f2(r.WireBytes/1e6), fmt.Sprintf("%d", r.Messages),
			fmt.Sprintf("%.4g", CommWordsPerRank(r)),
			bound, ratio,
			fmt.Sprintf("%d", r.CritAlphaTerms), f3(r.CritCommSeconds),
		)
	}
	return t
}

// CommWordsPerRank converts a distributed run's measured wire bytes to
// the bound's unit: 8-byte words moved per rank.
func CommWordsPerRank(r *workload.Run) float64 {
	if r.Ranks <= 0 {
		return 0
	}
	return r.WireBytes / 8 / float64(r.Ranks)
}

// CommLowerBound selects the family-matching bound for one run's
// coordinates: Eq. 8 for the Strassen-like algorithms (recomputation
// lowers their exponent to ω₀), the classic bound otherwise. memWords
// is the per-node memory in 8-byte words.
func CommLowerBound(alg workload.Algorithm, n, p int, memWords float64) float64 {
	switch alg {
	case workload.AlgDStrassen, workload.AlgDistCAPS:
		return dmm.StrassenLowerBound(n, p, memWords)
	default:
		return dmm.ClassicLowerBound(n, p, memWords)
	}
}
