package report

import (
	"fmt"
	"strings"

	"capscale/internal/energy"
	"capscale/internal/stats"
	"capscale/internal/workload"
)

// Table2 renders the paper's Table II — average Strassen and CAPS
// slowdown versus OpenBLAS per problem size — with the published
// values alongside.
func Table2(mx *workload.Matrix) *Table {
	t := &Table{
		Title:  "Table II — Average Strassen slowdown at problem size N",
		Header: []string{"algorithm", "N", "measured", "paper", "rel.err"},
	}
	for _, alg := range []workload.Algorithm{workload.AlgStrassen, workload.AlgCAPS} {
		total := 0.0
		for _, n := range mx.Cfg.Sizes {
			got := mx.AvgSlowdownAtSize(alg, n)
			total += got
			paper, ok := PaperTable2[alg][n]
			if ok {
				t.AddRow(alg.String(), fmt.Sprint(n), f3(got), f3(paper), pct(stats.RelErr(got, paper)))
			} else {
				t.AddRow(alg.String(), fmt.Sprint(n), f3(got), "-", "-")
			}
		}
		avg := total / float64(len(mx.Cfg.Sizes))
		if paper, ok := PaperTable2Avg[alg]; ok {
			t.AddRow(alg.String(), "avg", f3(avg), f3(paper), pct(stats.RelErr(avg, paper)))
		}
	}
	return t
}

// Table3 renders the paper's Table III — average watts per thread
// count — with the published values alongside.
func Table3(mx *workload.Matrix) *Table {
	t := &Table{
		Title:  "Table III — Average power (W) at thread count",
		Header: []string{"algorithm", "threads", "measured", "paper", "rel.err"},
	}
	for _, alg := range mx.Cfg.Algorithms {
		total := 0.0
		for _, p := range mx.Cfg.Threads {
			got := mx.AvgPowerAtThreads(alg, p)
			total += got
			if paper, ok := PaperTable3[alg][p]; ok {
				t.AddRow(alg.String(), fmt.Sprint(p), f2(got), f2(paper), pct(stats.RelErr(got, paper)))
			} else {
				t.AddRow(alg.String(), fmt.Sprint(p), f2(got), "-", "-")
			}
		}
		avg := total / float64(len(mx.Cfg.Threads))
		if paper, ok := PaperTable3Avg[alg]; ok {
			t.AddRow(alg.String(), "avg", f2(avg), f2(paper), pct(stats.RelErr(avg, paper)))
		}
	}
	return t
}

// Table4 renders the paper's Table IV — average energy performance
// (EP = EAvg/T) per problem size.
func Table4(mx *workload.Matrix) *Table {
	t := &Table{
		Title:  "Table IV — Average energy performance at problem size N",
		Header: []string{"algorithm", "N", "measured", "paper", "rel.err"},
	}
	for _, alg := range mx.Cfg.Algorithms {
		for _, n := range mx.Cfg.Sizes {
			got := mx.AvgEPAtSize(alg, n)
			if paper, ok := PaperTable4[alg][n]; ok {
				t.AddRow(alg.String(), fmt.Sprint(n), f2(got), f2(paper), pct(stats.RelErr(got, paper)))
			} else {
				t.AddRow(alg.String(), fmt.Sprint(n), f2(got), "-", "-")
			}
		}
	}
	return t
}

// Figure1 renders the conceptual ideal/superlinear chart of Fig. 1 as
// a series table: the linear threshold plus an example of each class.
func Figure1(maxP int) *Table {
	t := &Table{
		Title:  "Figure 1 — Ideal vs. superlinear energy performance scaling (conceptual)",
		Header: []string{"P", "linear threshold", "ideal example", "superlinear example"},
	}
	for p := 1; p <= maxP; p++ {
		fp := float64(p)
		t.AddRow(fmt.Sprint(p),
			f3(energy.LinearThreshold(p)),
			f3(1+(fp-1)*0.72), // power tracks under speedup
			f3(fp*fp*0.95+0.05))
	}
	return t
}

// Figure3 renders the Strassen/CAPS slowdown series per configuration
// (the scatter the paper plots in Fig. 3).
func Figure3(mx *workload.Matrix) *Table {
	t := &Table{
		Title:  "Figure 3 — Strassen slowdown scaling (T_alg / T_OpenBLAS)",
		Header: []string{"N", "threads", "Strassen", "CAPS"},
	}
	for _, n := range mx.Cfg.Sizes {
		for _, p := range mx.Cfg.Threads {
			t.AddRow(fmt.Sprint(n), fmt.Sprint(p),
				f3(mx.Slowdown(workload.AlgStrassen, n, p)),
				f3(mx.Slowdown(workload.AlgCAPS, n, p)))
		}
	}
	return t
}

// PowerScalingFigure renders one algorithm's power-vs-threads series
// per problem size (Figs. 4, 5 and 6 for OpenBLAS, Strassen and CAPS).
func PowerScalingFigure(mx *workload.Matrix, alg workload.Algorithm, figNo int) *Table {
	t := &Table{
		Title:  fmt.Sprintf("Figure %d — %s power scaling (W)", figNo, alg),
		Header: append([]string{"threads"}, sizeHeaders(mx)...),
	}
	for _, p := range mx.Cfg.Threads {
		row := []string{fmt.Sprint(p)}
		for _, n := range mx.Cfg.Sizes {
			row = append(row, f2(mx.Get(alg, n, p).WattsTotal()))
		}
		t.AddRow(row...)
	}
	return t
}

// Figure7 renders the energy-performance scaling series (Eq. 5) of
// every algorithm and size, with the linear threshold and each
// series' classification.
func Figure7(mx *workload.Matrix) *Table {
	t := &Table{
		Title:  "Figure 7 — Energy performance scaling S = EP_p / EP_1",
		Header: []string{"algorithm", "N", "series (P:S)", "class", "mean |S-P|"},
	}
	for _, alg := range mx.Cfg.Algorithms {
		for _, n := range mx.Cfg.Sizes {
			s := mx.ScalingSeries(alg, n)
			var points []string
			for i := range s.P {
				points = append(points, fmt.Sprintf("%d:%.2f", s.P[i], s.S[i]))
			}
			t.AddRow(alg.String(), fmt.Sprint(n),
				strings.Join(points, " "),
				s.WorstClass().String(),
				f3(s.MeanDistanceToLinear()))
		}
	}
	return t
}

// MeasurementTable reconciles the polled monitor's measured energy
// against the device's ground-truth accumulators for every run in the
// matrix: the numbers all downstream tables (EP, scaling, power) are
// computed from, versus what the hardware actually dissipated. A run
// whose relative error strays past float-accumulation noise — or whose
// sample count is suspiciously low — indicates undersampling and
// possible 32-bit counter wrap loss. Matrices loaded from JSON saved
// before the measurement loop was closed carry no truth columns and
// render as "-".
func MeasurementTable(mx *workload.Matrix) *Table {
	t := &Table{
		Title:  "Measurement reconciliation — monitor vs. RAPL ground truth",
		Header: []string{"algorithm", "N", "threads", "measured J", "truth J", "max rel.err", "samples", "flags"},
	}
	for i := range mx.Runs {
		r := &mx.Runs[i]
		meas := r.PKGJoules + r.DRAMJoules
		truth := r.TruthPKGJoules + r.TruthDRAMJoules
		if r.Failed() {
			t.AddRow(r.Alg.String(), fmt.Sprint(r.N), fmt.Sprint(r.Threads),
				"-", "-", "-", "-", "FAILED: "+r.Err)
			continue
		}
		if truth == 0 && r.MeasSamples == 0 {
			t.AddRow(r.Alg.String(), fmt.Sprint(r.N), fmt.Sprint(r.Threads),
				f2(meas), "-", "-", "-", runFlags(r))
			continue
		}
		t.AddRow(r.Alg.String(), fmt.Sprint(r.N), fmt.Sprint(r.Threads),
			f2(meas), f2(truth), fmt.Sprintf("%.2e", r.MeasurementErr()),
			fmt.Sprint(r.MeasSamples), runFlags(r))
	}
	return t
}

// runFlags summarizes a completed run's degradation state for the
// reconciliation table: "ok" for clean measurements, otherwise the
// degradation facts a reader needs before trusting the row.
func runFlags(r *workload.Run) string {
	if !r.Degraded {
		return "ok"
	}
	parts := []string{"DEGRADED"}
	if len(r.QuarantinedPlanes) > 0 {
		parts = append(parts, "quarantined "+strings.Join(r.QuarantinedPlanes, "+"))
	}
	if r.MeasReadErrors > 0 {
		parts = append(parts, fmt.Sprintf("%d read errors", r.MeasReadErrors))
	}
	if r.MeasDrops > 0 {
		parts = append(parts, fmt.Sprintf("%d drops", r.MeasDrops))
	}
	return strings.Join(parts, ", ")
}

// BreakdownTable decomposes each algorithm's busy time by kernel class
// at one configuration — where the cycles (and therefore the dynamic
// energy) go.
func BreakdownTable(mx *workload.Matrix, n, threads int) *Table {
	t := &Table{
		Title:  fmt.Sprintf("Busy-time breakdown at N=%d, %d threads (seconds)", n, threads),
		Header: []string{"algorithm", "gemm", "basemul", "add", "copy", "total busy"},
	}
	for _, alg := range mx.Cfg.Algorithms {
		r := mx.Get(alg, n, threads)
		if r == nil {
			continue
		}
		total := 0.0
		for _, v := range r.BusyByKind {
			total += v
		}
		cell := func(kind string) string {
			v := r.BusyByKind[kind]
			if v == 0 {
				return "-"
			}
			return fmt.Sprintf("%.4f", v)
		}
		t.AddRow(alg.String(), cell("gemm"), cell("basemul"), cell("add"), cell("copy"),
			fmt.Sprintf("%.4f", total))
	}
	return t
}

// Headlines summarizes the paper's scalar claims against the measured
// matrix: slowdown averages, the CAPS-vs-Strassen performance and
// power margins, and the OpenBLAS power envelope.
func Headlines(mx *workload.Matrix) *Table {
	t := &Table{
		Title:  "Headline comparisons",
		Header: []string{"claim", "measured", "paper"},
	}
	strAvg := avgSlowdown(mx, workload.AlgStrassen)
	capsAvg := avgSlowdown(mx, workload.AlgCAPS)
	t.AddRow("Strassen avg slowdown", f3(strAvg), f3(PaperHeadlines.StrassenAvgSlowdown))
	t.AddRow("CAPS avg slowdown", f3(capsAvg), f3(PaperHeadlines.CAPSAvgSlowdown))
	t.AddRow("CAPS perf gain vs Strassen", pct(strAvg/capsAvg-1), pct(PaperHeadlines.CAPSPerfGain))

	strP := avgPower(mx, workload.AlgStrassen)
	capsP := avgPower(mx, workload.AlgCAPS)
	t.AddRow("CAPS avg power vs Strassen", pct(capsP/strP-1), pct(-PaperHeadlines.CAPSPowerGain))

	lo, hi := openBLASPowerEnvelope(mx)
	t.AddRow("OpenBLAS min watts", f2(lo), f2(PaperHeadlines.MinOpenBLASWatts))
	t.AddRow("OpenBLAS max watts", f2(hi), f2(PaperHeadlines.MaxOpenBLASWatts))

	// Not a paper claim, but the precondition for all of the above: the
	// measured energy the tables are computed from must agree with the
	// device's ground truth (the paper trusts PAPI the same way).
	t.AddRow("Max measurement rel.err", fmt.Sprintf("%.2e", maxMeasurementErr(mx)), "-")
	return t
}

// maxMeasurementErr returns the worst per-plane monitor-vs-truth
// relative error across the matrix (0 for matrices without recorded
// ground truth).
func maxMeasurementErr(mx *workload.Matrix) float64 {
	worst := 0.0
	for i := range mx.Runs {
		if e := mx.Runs[i].MeasurementErr(); e > worst {
			worst = e
		}
	}
	return worst
}

func avgSlowdown(mx *workload.Matrix, alg workload.Algorithm) float64 {
	sum := 0.0
	for _, n := range mx.Cfg.Sizes {
		sum += mx.AvgSlowdownAtSize(alg, n)
	}
	return sum / float64(len(mx.Cfg.Sizes))
}

func avgPower(mx *workload.Matrix, alg workload.Algorithm) float64 {
	sum := 0.0
	for _, p := range mx.Cfg.Threads {
		sum += mx.AvgPowerAtThreads(alg, p)
	}
	return sum / float64(len(mx.Cfg.Threads))
}

func openBLASPowerEnvelope(mx *workload.Matrix) (lo, hi float64) {
	var watts []float64
	for _, n := range mx.Cfg.Sizes {
		for _, p := range mx.Cfg.Threads {
			watts = append(watts, mx.Get(workload.AlgOpenBLAS, n, p).WattsTotal())
		}
	}
	return stats.MinMax(watts)
}

func sizeHeaders(mx *workload.Matrix) []string {
	out := make([]string, 0, len(mx.Cfg.Sizes))
	for _, n := range mx.Cfg.Sizes {
		out = append(out, fmt.Sprintf("N=%d", n))
	}
	return out
}

func pct(v float64) string { return fmt.Sprintf("%+.2f%%", v*100) }

// All renders every table and figure in paper order.
func All(mx *workload.Matrix) string {
	parts := []string{
		Figure1(maxThreads(mx)).String(),
		Figure3(mx).String(),
		Table2(mx).String(),
		PowerScalingFigure(mx, workload.AlgOpenBLAS, 4).String(),
		PowerScalingFigure(mx, workload.AlgStrassen, 5).String(),
		PowerScalingFigure(mx, workload.AlgCAPS, 6).String(),
		Table3(mx).String(),
		Table4(mx).String(),
		Figure7(mx).String(),
		BreakdownTable(mx, mx.Cfg.Sizes[len(mx.Cfg.Sizes)-1], maxThreads(mx)).String(),
		MeasurementTable(mx).String(),
		Headlines(mx).String(),
	}
	if len(mx.Cfg.Clusters) > 0 {
		parts = append(parts, CommTable(mx).String())
	}
	return strings.Join(parts, "\n")
}

func maxThreads(mx *workload.Matrix) int {
	max := 1
	for _, p := range mx.Cfg.Threads {
		if p > max {
			max = p
		}
	}
	return max
}
