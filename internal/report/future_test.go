package report

import (
	"strings"
	"testing"

	"capscale/internal/cluster"
	"capscale/internal/dmm"
	"capscale/internal/hw"
	"capscale/internal/sparse"
	"capscale/internal/workload"

	"math/rand"
)

func TestDistributedStudyTable(t *testing.T) {
	c := cluster.TS140Cluster(7)
	pts := dmm.Study(c, "CAPS", 2048, 64, []int{1, 7})
	tbl := DistributedStudyTable("CAPS", pts)
	s := tbl.String()
	if !strings.Contains(s, "CAPS") || !strings.Contains(s, "ranks") {
		t.Fatalf("table missing fields:\n%s", s)
	}
	if len(tbl.Rows) != 2 {
		t.Fatalf("rows %d", len(tbl.Rows))
	}
}

func TestSparseStudyTable(t *testing.T) {
	m := hw.HaswellE31225()
	a := sparse.RandomUniform(rand.New(rand.NewSource(1)), 512, 0.02)
	pts := sparse.EnergyStudy(m, a, []int{1, 2}, 5)
	tbl := SparseStudyTable(pts)
	if len(tbl.Rows) != 6 {
		t.Fatalf("rows %d", len(tbl.Rows))
	}
	s := tbl.String()
	for _, want := range []string{"CSR", "COO", "ELL"} {
		if !strings.Contains(s, want) {
			t.Fatalf("missing %s", want)
		}
	}
}

func TestPlatformTable(t *testing.T) {
	pts := workload.CrossPlatform([]*hw.Machine{hw.HaswellE31225()}, 512)
	tbl := PlatformTable(pts)
	if len(tbl.Rows) != 3 {
		t.Fatalf("rows %d", len(tbl.Rows))
	}
	if !strings.Contains(tbl.String(), "crossover") {
		t.Fatal("crossover column missing")
	}
}
