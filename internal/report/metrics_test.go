package report

import (
	"strings"
	"testing"

	"capscale/internal/obs"
)

func TestMetricsTableListsRegisteredMetrics(t *testing.T) {
	obs.GetCounter("report.test.counter").Add(7)
	obs.GetGauge("report.test.gauge").Set(3)

	tbl := MetricsTable()
	if len(tbl.Rows) == 0 {
		t.Fatal("metrics table is empty")
	}
	s := tbl.String()
	for _, want := range []string{"report.test.counter", "counter", "report.test.gauge", "gauge"} {
		if !strings.Contains(s, want) {
			t.Fatalf("metrics table lacks %q:\n%s", want, s)
		}
	}
	// Rows arrive sorted by metric name from the registry snapshot.
	for i := 1; i < len(tbl.Rows); i++ {
		if tbl.Rows[i-1][0] > tbl.Rows[i][0] {
			t.Fatalf("rows not sorted: %q after %q", tbl.Rows[i][0], tbl.Rows[i-1][0])
		}
	}
}
