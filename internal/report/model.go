package report

import (
	"fmt"

	"capscale/internal/workload"
)

// ModelTable summarizes the fitted energy-complexity model for a
// matrix: per-family fit quality (time R², in-sample max relative
// errors) plus what the guided planner measured vs predicted. The
// matrix's model is used when present (guided sweeps carry one);
// otherwise the model is fitted on demand from the measured cells.
func ModelTable(mx *workload.Matrix) (*Table, error) {
	mo, err := mx.FitModel()
	if err != nil {
		return nil, err
	}
	t := &Table{
		Title: fmt.Sprintf("Energy-complexity model %s (fitted on %d measured cells; planner: %d seeded, %d measured, %d predicted, %d refit rounds)",
			mo.Tag(), mo.TrainingSize(),
			mx.Planner.SeededCells, mx.Planner.MeasuredCells, mx.Planner.PredictedCells, mx.Planner.Rounds),
		Header: []string{"Family", "Obs", "Fitted", "Time R2", "Time max rel", "Energy max rel", "Energy mean rel"},
	}
	for _, st := range mo.FamilyStats() {
		fitted := "yes"
		if !st.Fitted {
			fitted = "no"
		}
		t.AddRow(st.Family.String(), fmt.Sprintf("%d", st.N), fitted,
			fmt.Sprintf("%.5f", st.TimeR2), pct(st.TimeMaxRel), pct(st.EnergyMaxRel), pct(st.EnergyMeanRel))
	}
	return t, nil
}

// ModelCoefficientTable lists the fitted platform coefficients — the
// ICE-style ε/π parameters and the per-family time weights.
func ModelCoefficientTable(mx *workload.Matrix) (*Table, error) {
	mo, err := mx.FitModel()
	if err != nil {
		return nil, err
	}
	t := &Table{
		Title:  "Fitted platform coefficients",
		Header: []string{"Coefficient", "Value", "Unit"},
	}
	for _, c := range mo.Coefficients() {
		t.AddRow(c.Name, fmt.Sprintf("%.6g", c.Value), c.Unit)
	}
	return t, nil
}

// ModelWorstTable lists the k training cells the model explains worst —
// the measured-vs-predicted rows a reader checks before trusting the
// predicted cells.
func ModelWorstTable(mx *workload.Matrix, k int) (*Table, error) {
	mo, err := mx.FitModel()
	if err != nil {
		return nil, err
	}
	t := &Table{
		Title:  fmt.Sprintf("Worst measured-vs-predicted training rows (top %d)", k),
		Header: []string{"Cell", "Measured J", "Predicted J", "Rel err"},
	}
	for _, w := range mo.WorstRows(k) {
		t.AddRow(w.Key, fmt.Sprintf("%.6g", w.MeasuredJ), fmt.Sprintf("%.6g", w.PredictedJ), pct(w.RelErr))
	}
	return t, nil
}
