package report

import (
	"math"
	"strings"
	"testing"
)

// FuzzChart feeds the ASCII chart renderer arbitrary geometry and
// values (including NaN-free extremes); it must always render a
// well-formed plot without panicking.
func FuzzChart(f *testing.F) {
	f.Add(4, 12, 56, []byte{1, 2, 3, 4})
	f.Add(1, 1, 1, []byte{0})
	f.Add(2, 40, 200, []byte{255, 0})
	f.Fuzz(func(t *testing.T, points, height, width int, raw []byte) {
		if points <= 0 || points > 64 || len(raw) == 0 {
			return
		}
		if height < -5 || height > 100 || width < -5 || width > 300 {
			return
		}
		ch := &Chart{Title: "fuzz", Height: height, Width: width}
		for i := 0; i < points; i++ {
			ch.X = append(ch.X, float64(i))
		}
		// Two series derived from the raw bytes.
		for s := 0; s < 2; s++ {
			series := ChartSeries{Name: "s"}
			for i := 0; i < points; i++ {
				b := raw[(s*points+i)%len(raw)]
				v := (float64(b) - 128) * math.Pow(10, float64(int(b)%7-3))
				series.Y = append(series.Y, v)
			}
			ch.Series = append(ch.Series, series)
		}
		out := ch.String()
		if !strings.Contains(out, "fuzz") {
			t.Fatal("title lost")
		}
		if !strings.Contains(out, "+") {
			t.Fatal("axis lost")
		}
		// Every plot row has the same prefix shape.
		for _, line := range strings.Split(out, "\n") {
			if strings.Contains(line, "|") && len(line) < 10 {
				t.Fatalf("malformed row %q", line)
			}
		}
	})
}
