package kernel

import (
	"math/rand"
	"runtime"
	"testing"

	"capscale/internal/matrix"
)

// gemmSizes deliberately avoids multiples of MR/NR so every edge path
// of the micro-kernel and both packers is exercised.
var gemmSizes = [][3]int{
	{1, 1, 1},
	{3, 5, 2},
	{5, 7, 3},
	{17, 13, 19},
	{33, 19, 27},
	{63, 65, 62},
	{100, 64, 80},
	{129, 127, 131},
	{130, 131, 129},
	{257, 129, 255},
}

func workerCounts() []int {
	counts := []int{1, 2}
	if p := runtime.GOMAXPROCS(0); p != 1 && p != 2 {
		counts = append(counts, p)
	}
	return counts
}

// GemmParallel must be bit-identical to GemmPacked at every worker
// count: the (jc, pc) panel steps run in serial order with a barrier
// between them, and within a step each C element is updated by exactly
// one worker with the same micro-kernel FMA sequence.
func TestGemmParallelBitIdenticalToPacked(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for _, dims := range gemmSizes {
		m, k, n := dims[0], dims[1], dims[2]
		a := matrix.Rand(rng, m, k)
		b := matrix.Rand(rng, k, n)
		want := matrix.New(m, n)
		MulPacked(want, a, b)
		naive := matrix.New(m, n)
		matrix.MulNaive(naive, a, b)
		for _, w := range workerCounts() {
			got := matrix.New(m, n)
			MulParallel(got, a, b, w)
			if !matrix.Equal(got, want) {
				t.Errorf("%v workers=%d: parallel differs from packed by %v",
					dims, w, matrix.MaxAbsDiff(got, want))
			}
			if !matrix.AlmostEqual(got, naive, 1e-10) {
				t.Errorf("%v workers=%d: parallel differs from naive by %v",
					dims, w, matrix.MaxAbsDiff(got, naive))
			}
		}
	}
}

// Awkward blocking parameters (small, non-multiples of each other and
// of the problem size) must not change the result either: they force
// multiple (jc, pc) panel steps and accumulate semantics across steps.
func TestGemmParallelAccumulatesAcrossPanels(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	m, k, n := 97, 101, 89
	a := matrix.Rand(rng, m, k)
	b := matrix.Rand(rng, k, n)
	init := matrix.Rand(rng, m, n)

	want := init.Clone()
	GemmPacked(want, a, b, 24, 16, 40)
	for _, w := range workerCounts() {
		got := init.Clone()
		GemmParallel(got, a, b, 24, 16, 40, w)
		if !matrix.Equal(got, want) {
			t.Errorf("workers=%d: accumulate differs from packed by %v",
				w, matrix.MaxAbsDiff(got, want))
		}
	}
}

// Concurrent GemmParallel callers (as sched workers would be) must not
// interfere through the shared helper pool or buffer pools.
func TestGemmParallelConcurrentCallers(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	n := 150
	a := matrix.Rand(rng, n, n)
	b := matrix.Rand(rng, n, n)
	want := matrix.New(n, n)
	MulPacked(want, a, b)

	const callers = 4
	results := make([]*matrix.Dense, callers)
	done := make(chan int, callers)
	for i := 0; i < callers; i++ {
		i := i
		go func() {
			c := matrix.New(n, n)
			MulParallel(c, a, b, 2)
			results[i] = c
			done <- i
		}()
	}
	for i := 0; i < callers; i++ {
		<-done
	}
	for i, c := range results {
		if !matrix.Equal(c, want) {
			t.Errorf("caller %d: concurrent result differs by %v", i, matrix.MaxAbsDiff(c, want))
		}
	}
}

// Requesting far more workers than the helper pool holds must degrade
// gracefully, not promise phantom workers: the fan-out is capped at
// the pool size recorded when the helpers were spawned (plus the
// caller), and when concurrent callers saturate the pool the
// saturation fallback — the caller absorbing unclaimed shares itself —
// must still produce bit-identical results. GOMAXPROCS is raised for
// the duration to expose the stale-pool case the cap guards against:
// the pool was sized at first use and never grows, so a cap against
// the *current* GOMAXPROCS would count helpers that do not exist.
func TestGemmParallelOversubscribedAndSaturated(t *testing.T) {
	prev := runtime.GOMAXPROCS(0)
	runtime.GOMAXPROCS(2 * prev)
	defer runtime.GOMAXPROCS(prev)

	rng := rand.New(rand.NewSource(14))
	n := 170
	a := matrix.Rand(rng, n, n)
	b := matrix.Rand(rng, n, n)
	want := matrix.New(n, n)
	MulPacked(want, a, b)

	const callers = 8
	results := make([]*matrix.Dense, callers)
	done := make(chan struct{}, callers)
	for i := 0; i < callers; i++ {
		i := i
		go func() {
			c := matrix.New(n, n)
			// Far beyond any plausible pool: the cap plus the
			// saturation fallback absorb the excess.
			MulParallel(c, a, b, 16*prev)
			results[i] = c
			done <- struct{}{}
		}()
	}
	for i := 0; i < callers; i++ {
		<-done
	}
	for i, c := range results {
		if !matrix.Equal(c, want) {
			t.Errorf("caller %d: oversubscribed result differs by %v", i, matrix.MaxAbsDiff(c, want))
		}
	}
}

// The register-block constants are load-bearing for micro's hand
// unrolled accumulator file; a compile-time guard in packed.go pins
// them, and this test documents the invariant where a human will see
// it fail first.
func TestMicroKernelBlockConstants(t *testing.T) {
	if MR != 4 || NR != 4 {
		t.Fatalf("MR=%d NR=%d: micro's accumulators are hand-unrolled for 4x4; "+
			"rewrite kernel.micro before changing the block constants", MR, NR)
	}
}
