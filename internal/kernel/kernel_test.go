package kernel

import (
	"math/rand"
	"testing"
	"testing/quick"

	"capscale/internal/matrix"
)

func TestMulMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, dims := range [][3]int{{1, 1, 1}, {2, 3, 4}, {5, 5, 5}, {7, 13, 3}, {16, 16, 16}, {33, 17, 9}} {
		m, k, n := dims[0], dims[1], dims[2]
		a := matrix.Rand(rng, m, k)
		b := matrix.Rand(rng, k, n)
		got := matrix.New(m, n)
		Mul(got, a, b)
		want := matrix.New(m, n)
		matrix.MulNaive(want, a, b)
		if !matrix.AlmostEqual(got, want, 1e-12) {
			t.Fatalf("%dx%dx%d: kernel mul differs from naive by %v", m, k, n, matrix.MaxAbsDiff(got, want))
		}
	}
}

func TestMulAddAccumulates(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	a := matrix.Rand(rng, 4, 4)
	b := matrix.Rand(rng, 4, 4)
	dst := matrix.Rand(rng, 4, 4)
	before := dst.Clone()
	MulAdd(dst, a, b)
	prod := matrix.New(4, 4)
	matrix.MulNaive(prod, a, b)
	want := matrix.New(4, 4)
	matrix.AddTo(want, before, prod)
	if !matrix.AlmostEqual(dst, want, 1e-12) {
		t.Fatal("MulAdd did not accumulate onto existing dst")
	}
}

func TestMulAddShapePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("shape mismatch did not panic")
		}
	}()
	MulAdd(matrix.New(2, 2), matrix.New(2, 3), matrix.New(4, 2))
}

func TestMulOnViews(t *testing.T) {
	// Kernels must honour strides: multiply quadrant views of a larger
	// matrix and compare against compact copies.
	rng := rand.New(rand.NewSource(3))
	big := matrix.Rand(rng, 8, 8)
	a11, _, _, a22 := big.Quadrants()
	got := matrix.New(4, 4)
	Mul(got, a11, a22)
	want := matrix.New(4, 4)
	matrix.MulNaive(want, a11.Clone(), a22.Clone())
	if !matrix.AlmostEqual(got, want, 1e-12) {
		t.Fatal("strided multiply wrong")
	}
}

func TestPack(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	big := matrix.Rand(rng, 6, 6)
	v := big.View(1, 2, 3, 3)
	dst := matrix.New(3, 3)
	Pack(dst, v)
	if !matrix.Equal(dst, v.Clone()) {
		t.Fatal("pack copied wrong data")
	}
}

func TestCostFormulas(t *testing.T) {
	if MulFlops(2, 3, 4) != 48 {
		t.Fatalf("MulFlops %v", MulFlops(2, 3, 4))
	}
	if AddFlops(3, 5) != 15 {
		t.Fatalf("AddFlops %v", AddFlops(3, 5))
	}
	if Bytes(2, 2) != 32 {
		t.Fatalf("Bytes %v", Bytes(2, 2))
	}
	if MulTraffic(2, 2, 2) != 8*(4+4+8) {
		t.Fatalf("MulTraffic %v", MulTraffic(2, 2, 2))
	}
	if AddTraffic(2, 2) != 96 {
		t.Fatalf("AddTraffic %v", AddTraffic(2, 2))
	}
	if CopyTraffic(4, 4) != 256 {
		t.Fatalf("CopyTraffic %v", CopyTraffic(4, 4))
	}
}

func TestPropertyMulLinearity(t *testing.T) {
	// (αA)·B == α(A·B) with exact powers of two as scalars.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(12)
		a := matrix.RandInts(rng, n, n, 3)
		b := matrix.RandInts(rng, n, n, 3)
		a2 := a.Clone()
		a2.Scale(2)
		lhs := matrix.New(n, n)
		Mul(lhs, a2, b)
		rhs := matrix.New(n, n)
		Mul(rhs, a, b)
		rhs.Scale(2)
		return matrix.Equal(lhs, rhs)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyMulMatchesNaiveRandomShapes(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m, k, n := 1+rng.Intn(20), 1+rng.Intn(20), 1+rng.Intn(20)
		a := matrix.Rand(rng, m, k)
		b := matrix.Rand(rng, k, n)
		got := matrix.New(m, n)
		Mul(got, a, b)
		want := matrix.New(m, n)
		matrix.MulNaive(want, a, b)
		return matrix.AlmostEqual(got, want, 1e-11)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkMulAdd64(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	x := matrix.Rand(rng, 64, 64)
	y := matrix.Rand(rng, 64, 64)
	dst := matrix.New(64, 64)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		MulAdd(dst, x, y)
	}
}
