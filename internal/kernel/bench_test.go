package kernel

import (
	"fmt"
	"math/rand"
	"runtime"
	"testing"

	"capscale/internal/matrix"
)

// benchGemm measures one multiplier at size n, reporting achieved
// GFLOP/s. Steady-state iterations must not allocate: both kernels
// draw their packing buffers from the shared pool.
func benchGemm(b *testing.B, n int, mul func(dst, a, bb *matrix.Dense)) {
	rng := rand.New(rand.NewSource(int64(n)))
	a := matrix.Rand(rng, n, n)
	bb := matrix.Rand(rng, n, n)
	dst := matrix.New(n, n)
	mul(dst, a, bb) // warm the buffer pools before counting allocs
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		mul(dst, a, bb)
	}
	gflops := MulFlops(n, n, n) * float64(b.N) / b.Elapsed().Seconds() / 1e9
	b.ReportMetric(gflops, "GFLOP/s")
}

func BenchmarkGemmPacked(b *testing.B) {
	for _, n := range []int{256, 512, 1024} {
		b.Run(fmt.Sprintf("n%d", n), func(b *testing.B) {
			benchGemm(b, n, func(dst, a, bb *matrix.Dense) { MulPacked(dst, a, bb) })
		})
	}
}

func BenchmarkGemmParallel(b *testing.B) {
	workers := runtime.GOMAXPROCS(0)
	for _, n := range []int{256, 512, 1024} {
		b.Run(fmt.Sprintf("n%d", n), func(b *testing.B) {
			benchGemm(b, n, func(dst, a, bb *matrix.Dense) { MulParallel(dst, a, bb, workers) })
		})
	}
}
