package kernel

import (
	"math/rand"
	"testing"
	"testing/quick"

	"capscale/internal/matrix"
)

func TestPackAUnpacksCorrectly(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	a := matrix.Rand(rng, 10, 6)
	mc, kc := 6, 5
	dst := make([]float64, ((mc+MR-1)/MR)*MR*kc)
	PackA(dst, a, 2, 1, mc, kc)
	// Element (row r of block, k) lives at panel(r/MR), k, r%MR.
	for r := 0; r < mc; r++ {
		for k := 0; k < kc; k++ {
			idx := (r/MR)*MR*kc + k*MR + r%MR
			if dst[idx] != a.At(2+r, 1+k) {
				t.Fatalf("PackA misplaced (%d,%d)", r, k)
			}
		}
	}
	// Zero-padding past mc.
	if pad := dst[(mc/MR)*MR*kc+0*MR+(mc%MR)]; pad != 0 {
		t.Fatalf("padding not zero: %v", pad)
	}
}

func TestPackBUnpacksCorrectly(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	b := matrix.Rand(rng, 7, 11)
	kc, nc := 5, 7
	dst := make([]float64, ((nc+NR-1)/NR)*NR*kc)
	PackB(dst, b, 1, 3, kc, nc)
	for k := 0; k < kc; k++ {
		for c := 0; c < nc; c++ {
			idx := (c/NR)*NR*kc + k*NR + c%NR
			if dst[idx] != b.At(1+k, 3+c) {
				t.Fatalf("PackB misplaced (%d,%d)", k, c)
			}
		}
	}
}

func TestPackTooSmallPanics(t *testing.T) {
	a := matrix.New(8, 8)
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	PackA(make([]float64, 3), a, 0, 0, 8, 8)
}

func TestMulPackedMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for _, dims := range [][3]int{{1, 1, 1}, {4, 4, 4}, {5, 7, 3}, {16, 16, 16}, {33, 19, 27}, {100, 64, 80}, {130, 131, 129}} {
		m, k, n := dims[0], dims[1], dims[2]
		a := matrix.Rand(rng, m, k)
		b := matrix.Rand(rng, k, n)
		got := matrix.New(m, n)
		MulPacked(got, a, b)
		want := matrix.New(m, n)
		matrix.MulNaive(want, a, b)
		if !matrix.AlmostEqual(got, want, 1e-11) {
			t.Fatalf("%v: packed gemm differs by %v", dims, matrix.MaxAbsDiff(got, want))
		}
	}
}

func TestGemmPackedAccumulates(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	a := matrix.Rand(rng, 8, 8)
	b := matrix.Rand(rng, 8, 8)
	dst := matrix.Rand(rng, 8, 8)
	before := dst.Clone()
	GemmPacked(dst, a, b, 0, 0, 0)
	prod := matrix.New(8, 8)
	matrix.MulNaive(prod, a, b)
	want := matrix.New(8, 8)
	matrix.AddTo(want, before, prod)
	if !matrix.AlmostEqual(dst, want, 1e-12) {
		t.Fatal("GemmPacked did not accumulate")
	}
}

func TestGemmPackedTinyBlocks(t *testing.T) {
	// Pathological blocking parameters must still be correct.
	rng := rand.New(rand.NewSource(5))
	a := matrix.Rand(rng, 23, 17)
	b := matrix.Rand(rng, 17, 29)
	got := matrix.New(23, 29)
	GemmPacked(got, a, b, 5, 3, 7)
	want := matrix.New(23, 29)
	matrix.MulNaive(want, a, b)
	if !matrix.AlmostEqual(got, want, 1e-11) {
		t.Fatalf("tiny blocks wrong by %v", matrix.MaxAbsDiff(got, want))
	}
}

func TestGemmPackedOnViews(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	big := matrix.Rand(rng, 32, 32)
	a11, _, _, a22 := big.Quadrants()
	got := matrix.New(16, 16)
	MulPacked(got, a11, a22)
	want := matrix.New(16, 16)
	matrix.MulNaive(want, a11.Clone(), a22.Clone())
	if !matrix.AlmostEqual(got, want, 1e-12) {
		t.Fatal("strided packed multiply wrong")
	}
}

func TestPropertyPackedMatchesMulAdd(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m, k, n := 1+rng.Intn(40), 1+rng.Intn(40), 1+rng.Intn(40)
		a := matrix.Rand(rng, m, k)
		b := matrix.Rand(rng, k, n)
		p := matrix.New(m, n)
		MulPacked(p, a, b)
		q := matrix.New(m, n)
		Mul(q, a, b)
		return matrix.AlmostEqual(p, q, 1e-11)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkMulAdd256(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	x := matrix.Rand(rng, 256, 256)
	y := matrix.Rand(rng, 256, 256)
	dst := matrix.New(256, 256)
	flops := MulFlops(256, 256, 256)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		MulAdd(dst, x, y)
	}
	b.ReportMetric(flops*float64(b.N)/b.Elapsed().Seconds()/1e9, "GFLOPS")
}

func BenchmarkGemmPacked256(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	x := matrix.Rand(rng, 256, 256)
	y := matrix.Rand(rng, 256, 256)
	dst := matrix.New(256, 256)
	flops := MulFlops(256, 256, 256)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		GemmPacked(dst, x, y, 0, 0, 0)
	}
	b.ReportMetric(flops*float64(b.N)/b.Elapsed().Seconds()/1e9, "GFLOPS")
}
