// Package kernel provides the real-arithmetic compute kernels used by
// the multipliers' leaf tasks, together with the flop and traffic cost
// formulas the simulator charges for those same leaves. Keeping the
// math and its accounting side by side makes it hard for the simulated
// cost of an operation to drift from what the operation actually does.
package kernel

import (
	"fmt"

	"capscale/internal/matrix"
)

// MulAdd computes dst += a·b with a cache-friendly i-k-j loop over row
// slices. It is the building block of both the blocked DGEMM's inner
// kernel and the Strassen base-case solver. dst must not alias a or b.
func MulAdd(dst, a, b *matrix.Dense) {
	m, k, n := a.Rows(), a.Cols(), b.Cols()
	if b.Rows() != k || dst.Rows() != m || dst.Cols() != n {
		panic(fmt.Sprintf("kernel: MulAdd shapes %dx%d * %dx%d -> %dx%d",
			m, k, b.Rows(), n, dst.Rows(), dst.Cols()))
	}
	for i := 0; i < m; i++ {
		dr := dst.Row(i)
		ar := a.Row(i)
		for kk := 0; kk < k; kk++ {
			aik := ar[kk]
			if aik == 0 {
				continue
			}
			br := b.Row(kk)
			j := 0
			// 4-wide unroll; Go's bounds-check elimination handles the
			// slice pattern well.
			for ; j+4 <= n; j += 4 {
				dr[j] += aik * br[j]
				dr[j+1] += aik * br[j+1]
				dr[j+2] += aik * br[j+2]
				dr[j+3] += aik * br[j+3]
			}
			for ; j < n; j++ {
				dr[j] += aik * br[j]
			}
		}
	}
}

// Mul computes dst = a·b (overwriting dst). dst must not alias a or b.
func Mul(dst, a, b *matrix.Dense) {
	dst.Zero()
	MulAdd(dst, a, b)
}

// Pack copies src into dst, a compact buffer. It is the real-math
// counterpart of a KindCopy leaf (BLAS packing, CAPS BFS staging).
func Pack(dst, src *matrix.Dense) {
	matrix.CopyTo(dst, src)
}

// MulFlops returns the double-precision operation count of an
// m×k · k×n multiply-accumulate: one multiply and one add per term.
func MulFlops(m, n, k int) float64 { return 2 * float64(m) * float64(n) * float64(k) }

// AddFlops returns the operation count of an r×c element-wise
// addition or subtraction.
func AddFlops(r, c int) float64 { return float64(r) * float64(c) }

// Bytes returns the memory footprint of an r×c double matrix.
func Bytes(r, c int) float64 { return 8 * float64(r) * float64(c) }

// MulTraffic returns the bytes an m×k · k×n multiply leaf moves when
// its operands stream in once and C is read and written: A + B + 2C.
// Blocked algorithms that reuse panels should charge less by scaling
// the relevant term (see blas.Plan).
func MulTraffic(m, n, k int) float64 {
	return Bytes(m, k) + Bytes(k, n) + 2*Bytes(m, n)
}

// AddTraffic returns the bytes an r×c addition moves: two operand
// reads and one result write.
func AddTraffic(r, c int) float64 { return 3 * Bytes(r, c) }

// CopyTraffic returns the bytes an r×c copy moves: one read, one write.
func CopyTraffic(r, c int) float64 { return 2 * Bytes(r, c) }
