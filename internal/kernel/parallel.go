package kernel

import (
	"runtime"
	"sync"
	"sync/atomic"

	"capscale/internal/matrix"
)

// Parallel packed GEMM: the ic loop of the Goto blocking is fanned out
// across a persistent worker pool. All participants share the packed
// KC×NC panel of B (packed once per K-step by the caller, exactly as
// OpenBLAS shares it across threads) and each packs its own MC×KC
// blocks of A into a per-worker buffer drawn from a sync.Pool, so a
// steady-state multiply allocates nothing.
//
// Each (jc, pc) panel step is a barrier: every C element is updated by
// exactly one worker per step, and steps execute in the same order as
// the serial loop nest, so GemmParallel is bit-identical to GemmPacked.

// packBufPool recycles packing buffers across GemmPacked and
// GemmParallel calls. It stores *[]float64 so Put does not allocate a
// slice-header box.
var packBufPool = sync.Pool{New: func() any { return new([]float64) }}

// getPackBuf returns a pooled buffer with at least n elements. The
// contents are undefined; PackA/PackB fully overwrite the prefix they
// use.
func getPackBuf(n int) *[]float64 {
	p := packBufPool.Get().(*[]float64)
	if cap(*p) < n {
		*p = make([]float64, n)
	}
	*p = (*p)[:n]
	return p
}

func putPackBuf(p *[]float64) { packBufPool.Put(p) }

// gemmState is the shared state of one GemmParallel invocation. The
// caller mutates the panel-step fields only between barriers; workers
// touch the state only between wg.Add and wg.Wait.
type gemmState struct {
	dst, a, b *matrix.Dense
	mc, kc    int
	// Current (jc, pc) panel step.
	jc, pc, ncCur, kcCur int
	bpack                []float64
	next                 atomic.Int64
	wg                   sync.WaitGroup
}

var gemmStatePool = sync.Pool{New: func() any { return new(gemmState) }}

var (
	gemmOnce sync.Once
	gemmJobs chan *gemmState
	// gemmPoolSize is the helper count recorded when the pool was
	// spawned. Worker caps must use it, not the current GOMAXPROCS:
	// raising GOMAXPROCS after the first call does not grow the pool,
	// so "workers" beyond pool size + caller would silently never
	// exist.
	gemmPoolSize int
)

// startGemmWorkers lazily spawns the persistent helper goroutines.
// They block on the job channel when idle and never block while
// holding a job, so nested or concurrent GemmParallel calls cannot
// deadlock: a caller that finds the pool saturated absorbs the work
// itself.
func startGemmWorkers() {
	n := runtime.GOMAXPROCS(0)
	gemmPoolSize = n
	gemmJobs = make(chan *gemmState, n)
	for i := 0; i < n; i++ {
		go func() {
			for st := range gemmJobs {
				st.sweep()
				st.wg.Done()
			}
		}()
	}
}

// sweep claims ic blocks of the current panel step until none remain,
// packing A blocks into a pooled per-worker buffer.
func (st *gemmState) sweep() {
	m := st.a.Rows()
	nBlocks := (m + st.mc - 1) / st.mc
	apP := getPackBuf(((st.mc + MR - 1) / MR) * MR * st.kc)
	ap := *apP
	for {
		bi := int(st.next.Add(1)) - 1
		if bi >= nBlocks {
			break
		}
		ic := bi * st.mc
		mcCur := min(st.mc, m-ic)
		PackA(ap, st.a, ic, st.pc, mcCur, st.kcCur)
		for jr := 0; jr < st.ncCur; jr += NR {
			nr := min(NR, st.ncCur-jr)
			bp := st.bpack[(jr/NR)*NR*st.kcCur:]
			for ir := 0; ir < mcCur; ir += MR {
				mr := min(MR, mcCur-ir)
				app := ap[(ir/MR)*MR*st.kcCur:]
				micro(st.kcCur, app, bp, st.dst, ic+ir, st.jc+jr, mr, nr)
			}
		}
	}
	putPackBuf(apP)
}

// GemmParallel computes dst += a·b with the same blocking and the same
// floating-point result as GemmPacked, parallelized over the ic loop.
// workers is the number of participants including the caller; values
// < 1 select GOMAXPROCS. Zero block parameters select the GemmPacked
// defaults. Steady-state calls allocate nothing.
func GemmParallel(dst, a, b *matrix.Dense, mc, kc, nc, workers int) {
	m, k, n := a.Rows(), a.Cols(), b.Cols()
	checkGemmShapes("GemmParallel", dst, a, b)
	if mc <= 0 {
		mc = 128
	}
	if kc <= 0 {
		kc = 128
	}
	if nc <= 0 {
		nc = 512
	}
	if workers < 1 {
		workers = runtime.GOMAXPROCS(0)
	}
	// Cap the fan-out at the number of ic blocks: extra helpers would
	// only find the counter exhausted.
	if nb := (m + mc - 1) / mc; workers > nb {
		workers = nb
	}
	if workers <= 1 {
		gemmBlocked(dst, a, b, mc, kc, nc)
		return
	}
	gemmOnce.Do(startGemmWorkers)
	// Cap the fan-out at the recorded pool size plus the caller: the
	// helper pool was sized at first call and never grows, so capping
	// against the *current* GOMAXPROCS would promise workers that
	// cannot exist (their jobs would queue behind the pool and sweep
	// an already-exhausted counter).
	if workers > gemmPoolSize+1 {
		workers = gemmPoolSize + 1
	}

	st := gemmStatePool.Get().(*gemmState)
	st.dst, st.a, st.b = dst, a, b
	st.mc, st.kc = mc, kc
	bpP := getPackBuf(((nc + NR - 1) / NR) * NR * kc)
	st.bpack = *bpP

	for jc := 0; jc < n; jc += nc {
		st.jc = jc
		st.ncCur = min(nc, n-jc)
		for pc := 0; pc < k; pc += kc {
			st.pc = pc
			st.kcCur = min(kc, k-pc)
			PackB(st.bpack, b, pc, jc, st.kcCur, st.ncCur)
			st.next.Store(0)
			for i := 0; i < workers-1; i++ {
				st.wg.Add(1)
				select {
				case gemmJobs <- st:
				default:
					// Helper pool saturated (nested call, or more
					// workers requested than cores): the caller's own
					// sweep absorbs the unclaimed share.
					st.wg.Done()
				}
			}
			st.sweep()
			st.wg.Wait()
		}
	}

	putPackBuf(bpP)
	*st = gemmState{}
	gemmStatePool.Put(st)
}

// MulParallel computes dst = a·b with default blocking across
// GOMAXPROCS workers.
func MulParallel(dst, a, b *matrix.Dense, workers int) {
	dst.Zero()
	GemmParallel(dst, a, b, 0, 0, 0, workers)
}
