package kernel

import (
	"fmt"

	"capscale/internal/matrix"
)

// Packed, register-blocked GEMM — the real-arithmetic counterpart of
// the Goto structure the blocked-DGEMM task tree models. A is packed
// into MR-row panels and B into NR-column panels so the inner kernel
// streams both contiguously and accumulates a MR×NR block of C in
// scalar registers.

// MR and NR are the micro-kernel's register block dimensions.
const (
	MR = 4
	NR = 4
)

// micro's register file is hand-unrolled for a 4×4 block. These
// constants fail to compile (negative constant converted to uint) if
// MR or NR is changed without rewriting micro, instead of letting the
// stale unroll silently corrupt results.
const (
	_ = uint(MR - 4)
	_ = uint(4 - MR)
	_ = uint(NR - 4)
	_ = uint(4 - NR)
)

// PackA packs the mc×kc block of a starting at (i0, k0) into MR-row
// panels: panel-major, then k, then row-within-panel. dst must hold
// ceil(mc/MR)·MR·kc elements; rows beyond mc are zero-filled.
func PackA(dst []float64, a *matrix.Dense, i0, k0, mc, kc int) {
	need := ((mc + MR - 1) / MR) * MR * kc
	if len(dst) < need {
		panic(fmt.Sprintf("kernel: PackA dst %d < %d", len(dst), need))
	}
	idx := 0
	for ip := 0; ip < mc; ip += MR {
		for k := 0; k < kc; k++ {
			for r := 0; r < MR; r++ {
				if ip+r < mc {
					dst[idx] = a.At(i0+ip+r, k0+k)
				} else {
					dst[idx] = 0
				}
				idx++
			}
		}
	}
}

// PackB packs the kc×nc block of b starting at (k0, j0) into NR-column
// panels: panel-major, then k, then column-within-panel. dst must hold
// ceil(nc/NR)·NR·kc elements; columns beyond nc are zero-filled.
func PackB(dst []float64, b *matrix.Dense, k0, j0, kc, nc int) {
	need := ((nc + NR - 1) / NR) * NR * kc
	if len(dst) < need {
		panic(fmt.Sprintf("kernel: PackB dst %d < %d", len(dst), need))
	}
	idx := 0
	for jp := 0; jp < nc; jp += NR {
		for k := 0; k < kc; k++ {
			for c := 0; c < NR; c++ {
				if jp+c < nc {
					dst[idx] = b.At(k0+k, j0+jp+c)
				} else {
					dst[idx] = 0
				}
				idx++
			}
		}
	}
}

// micro accumulates a MR×NR block of C from packed panels ap (one
// MR-row panel, kc steps) and bp (one NR-column panel, kc steps). mr
// and nr bound the rows/columns actually stored (edge blocks).
func micro(kc int, ap, bp []float64, c *matrix.Dense, i, j, mr, nr int) {
	var c00, c01, c02, c03 float64
	var c10, c11, c12, c13 float64
	var c20, c21, c22, c23 float64
	var c30, c31, c32, c33 float64
	for k := 0; k < kc; k++ {
		a0, a1, a2, a3 := ap[k*MR], ap[k*MR+1], ap[k*MR+2], ap[k*MR+3]
		b0, b1, b2, b3 := bp[k*NR], bp[k*NR+1], bp[k*NR+2], bp[k*NR+3]
		c00 += a0 * b0
		c01 += a0 * b1
		c02 += a0 * b2
		c03 += a0 * b3
		c10 += a1 * b0
		c11 += a1 * b1
		c12 += a1 * b2
		c13 += a1 * b3
		c20 += a2 * b0
		c21 += a2 * b1
		c22 += a2 * b2
		c23 += a2 * b3
		c30 += a3 * b0
		c31 += a3 * b1
		c32 += a3 * b2
		c33 += a3 * b3
	}
	acc := [MR][NR]float64{
		{c00, c01, c02, c03},
		{c10, c11, c12, c13},
		{c20, c21, c22, c23},
		{c30, c31, c32, c33},
	}
	for r := 0; r < mr; r++ {
		row := c.Row(i + r)
		for cc := 0; cc < nr; cc++ {
			row[j+cc] += acc[r][cc]
		}
	}
}

func checkGemmShapes(op string, dst, a, b *matrix.Dense) {
	m, k, n := a.Rows(), a.Cols(), b.Cols()
	if b.Rows() != k || dst.Rows() != m || dst.Cols() != n {
		panic(fmt.Sprintf("kernel: %s shapes %dx%d * %dx%d -> %dx%d",
			op, m, k, b.Rows(), n, dst.Rows(), dst.Cols()))
	}
}

// GemmPacked computes dst += a·b with three-level cache blocking
// (mc×kc blocks of A against kc×nc panels of B) around the packed
// micro-kernel. Zero block parameters select reasonable defaults.
// Packing buffers come from a shared pool, so steady-state calls
// allocate nothing.
func GemmPacked(dst, a, b *matrix.Dense, mc, kc, nc int) {
	checkGemmShapes("GemmPacked", dst, a, b)
	if mc <= 0 {
		mc = 128
	}
	if kc <= 0 {
		kc = 128
	}
	if nc <= 0 {
		nc = 512
	}
	gemmBlocked(dst, a, b, mc, kc, nc)
}

// gemmBlocked is the serial loop nest shared by GemmPacked and the
// single-worker path of GemmParallel. Block parameters must be
// positive.
func gemmBlocked(dst, a, b *matrix.Dense, mc, kc, nc int) {
	m, k, n := a.Rows(), a.Cols(), b.Cols()

	bpP := getPackBuf(((nc + NR - 1) / NR) * NR * kc)
	apP := getPackBuf(((mc + MR - 1) / MR) * MR * kc)
	bpack, apack := *bpP, *apP

	for jc := 0; jc < n; jc += nc {
		ncCur := min(nc, n-jc)
		for pc := 0; pc < k; pc += kc {
			kcCur := min(kc, k-pc)
			PackB(bpack, b, pc, jc, kcCur, ncCur)
			for ic := 0; ic < m; ic += mc {
				mcCur := min(mc, m-ic)
				PackA(apack, a, ic, pc, mcCur, kcCur)
				for jr := 0; jr < ncCur; jr += NR {
					nr := min(NR, ncCur-jr)
					bp := bpack[(jr/NR)*NR*kcCur:]
					for ir := 0; ir < mcCur; ir += MR {
						mr := min(MR, mcCur-ir)
						ap := apack[(ir/MR)*MR*kcCur:]
						micro(kcCur, ap, bp, dst, ic+ir, jc+jr, mr, nr)
					}
				}
			}
		}
	}

	putPackBuf(apP)
	putPackBuf(bpP)
}

// MulPacked computes dst = a·b with the packed kernel.
func MulPacked(dst, a, b *matrix.Dense) {
	dst.Zero()
	GemmPacked(dst, a, b, 0, 0, 0)
}
