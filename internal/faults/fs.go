package faults

import (
	"io"
	"io/fs"
	"math/rand"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"syscall"
	"time"

	"capscale/internal/store"
)

// FaultFS is a seed-deterministic in-memory filesystem implementing
// store.FS, extending the injector's reach from measurement faults
// (faults.Injector) down to the storage layer the journals and leases
// live on. It models the failure surface a real disk presents:
//
//   - write errors (EIO) that apply nothing,
//   - short writes that persist only a prefix and report it,
//   - sync errors that leave durability unknown,
//   - ENOSPC once a byte budget is exhausted,
//   - crash-points: at the Nth mutating operation the "machine" loses
//     power — every byte written since the last successful fsync is
//     dropped (optionally leaving a torn prefix of the unsynced tail,
//     as a real disk tearing a sector boundary would), the faulting
//     goroutine panics with *CrashPoint, and all subsequent I/O fails
//     until Reboot.
//
// Every mutating operation (create, write, truncate, sync, rename,
// remove) advances one shared op counter; CrashAt arms a crash at a
// chosen op, so a harness can first count a clean run's ops and then
// replay it crashing at every single one. All randomness comes from
// the constructor's seed, in op order: the same seed and the same
// operation sequence produce the same faults.
//
// Like the measurement injector, the nil/disabled contract holds: the
// production stack takes a store.FS and a nil one means the real OS
// filesystem with zero added overhead.
type FaultFS struct {
	mu      sync.Mutex
	rng     *rand.Rand
	prof    FSProfile
	files   map[string]*memFile
	dirs    map[string]bool
	ops     int64
	crashAt int64 // 0 = disarmed
	crashed bool
	written int64 // bytes accepted by Write, for the ENOSPC budget
	stats   FSStats
}

// FSProfile sets the per-operation injection rates. The zero profile
// injects nothing (crash-points still fire when armed).
type FSProfile struct {
	// WriteErrRate is the per-write probability of EIO with nothing
	// applied.
	WriteErrRate float64
	// ShortWriteRate is the per-write probability that only a random
	// prefix is applied, reported via the (n, err) contract.
	ShortWriteRate float64
	// SyncErrRate is the per-fsync probability of EIO with durability
	// unchanged.
	SyncErrRate float64
	// ENOSPCBytes caps total bytes accepted by Write across the
	// filesystem's lifetime; past it writes fail with ENOSPC.
	// Zero means unlimited.
	ENOSPCBytes int64
	// CrashTornFrac is the per-file probability that a crash tears the
	// unsynced tail — keeping a random prefix of it — instead of
	// dropping it whole. This is what produces mid-record torn journal
	// tails for the salvage path.
	CrashTornFrac float64
}

// FSStats counts what the filesystem injected.
type FSStats struct {
	WriteErrs   int
	ShortWrites int
	SyncErrs    int
	ENOSPCs     int
	Crashes     int
	TornFiles   int
}

// CrashPoint is the panic value thrown when an armed crash-point
// fires.
type CrashPoint struct{ Op int64 }

func (c *CrashPoint) String() string {
	return "faults: simulated power loss at filesystem op " + itoa(c.Op)
}

func itoa(n int64) string {
	if n == 0 {
		return "0"
	}
	var b [20]byte
	i := len(b)
	for n > 0 {
		i--
		b[i] = byte('0' + n%10)
		n /= 10
	}
	return string(b[i:])
}

// ErrCrashed is the error all I/O returns between a crash and Reboot.
var ErrCrashed = &os.PathError{Op: "io", Path: "(faultfs)", Err: syscall.EIO}

type memFile struct {
	data   []byte
	synced int // durable prefix length
}

// NewFaultFS returns a fault filesystem drawing every injection
// decision from seed.
func NewFaultFS(prof FSProfile, seed int64) *FaultFS {
	return &FaultFS{
		rng:   rand.New(rand.NewSource(seed)),
		prof:  prof,
		files: map[string]*memFile{},
		dirs:  map[string]bool{"/": true, ".": true},
	}
}

// CrashAt arms a power loss at the opth mutating operation from now
// (1 = the very next one). Zero disarms.
func (f *FaultFS) CrashAt(op int64) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if op <= 0 {
		f.crashAt = 0
		return
	}
	f.crashAt = f.ops + op
}

// Ops returns how many mutating operations have executed — run a
// clean pass first, read Ops, then replay with CrashAt(k) for every
// k ≤ Ops.
func (f *FaultFS) Ops() int64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.ops
}

// Stats returns the injection counts so far.
func (f *FaultFS) Stats() FSStats {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.stats
}

// Crashed reports whether the filesystem is down awaiting Reboot.
func (f *FaultFS) Crashed() bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.crashed
}

// Reboot brings the filesystem back after a crash, disarmed: the
// recovery pass runs clean, on exactly the bytes that were durable.
func (f *FaultFS) Reboot() {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.crashed = false
	f.crashAt = 0
}

// step advances the mutating-op counter and fires an armed
// crash-point. Callers hold f.mu (released by their defer before the
// panic unwinds further).
func (f *FaultFS) step() {
	f.ops++
	if f.crashAt > 0 && f.ops >= f.crashAt && !f.crashed {
		f.crash()
		panic(&CrashPoint{Op: f.ops})
	}
}

// crash models power loss: every file keeps only its durable prefix,
// except that with CrashTornFrac probability a file instead keeps a
// random partial prefix of its unsynced tail — the torn write.
func (f *FaultFS) crash() {
	f.crashed = true
	f.stats.Crashes++
	// Deterministic file order so the same seed tears the same files.
	names := make([]string, 0, len(f.files))
	for name := range f.files {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		mf := f.files[name]
		unsynced := len(mf.data) - mf.synced
		if unsynced <= 0 {
			continue
		}
		keep := mf.synced
		if f.prof.CrashTornFrac > 0 && f.rng.Float64() < f.prof.CrashTornFrac {
			keep += f.rng.Intn(unsynced + 1)
			if keep > mf.synced {
				f.stats.TornFiles++
			}
		}
		mf.data = mf.data[:keep]
		mf.synced = keep
	}
	// Files created but never synced vanish entirely (their directory
	// entry was never durable either).
	for _, name := range names {
		if mf := f.files[name]; len(mf.data) == 0 && mf.synced == 0 {
			delete(f.files, name)
		}
	}
}

func clean(name string) string { return filepath.Clean(name) }

// --- store.FS ---

func (f *FaultFS) OpenFile(name string, flag int, perm os.FileMode) (store.File, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.crashed {
		return nil, ErrCrashed
	}
	name = clean(name)
	mf, exists := f.files[name]
	if flag&os.O_CREATE != 0 {
		if exists && flag&os.O_EXCL != 0 {
			return nil, &os.PathError{Op: "open", Path: name, Err: os.ErrExist}
		}
		if !exists {
			f.step() // creating a directory entry mutates the disk
			mf = &memFile{}
			f.files[name] = mf
			f.markDirs(name)
			exists = true
		}
	}
	if !exists {
		return nil, &os.PathError{Op: "open", Path: name, Err: os.ErrNotExist}
	}
	if flag&os.O_TRUNC != 0 && len(mf.data) > 0 {
		f.step()
		mf.data = nil
		mf.synced = 0
	}
	h := &memHandle{
		fs:     f,
		mf:     mf,
		name:   name,
		write:  flag&(os.O_WRONLY|os.O_RDWR) != 0,
		read:   flag&os.O_WRONLY == 0,
		append: flag&os.O_APPEND != 0,
	}
	if !h.append && h.write {
		h.pos = 0
	}
	return h, nil
}

func (f *FaultFS) markDirs(name string) {
	for d := filepath.Dir(name); d != "." && d != "/" && d != ""; d = filepath.Dir(d) {
		f.dirs[d] = true
	}
}

func (f *FaultFS) Rename(oldpath, newpath string) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.crashed {
		return ErrCrashed
	}
	oldpath, newpath = clean(oldpath), clean(newpath)
	mf, ok := f.files[oldpath]
	if !ok {
		return &os.PathError{Op: "rename", Path: oldpath, Err: os.ErrNotExist}
	}
	f.step()
	// Rename is modeled as atomic and immediately durable, the
	// guarantee journaled filesystems give and the one the atomic
	// compaction (temp + fsync + rename) relies on. The file's own
	// unsynced tail stays unsynced across the move.
	delete(f.files, oldpath)
	f.files[newpath] = mf
	f.markDirs(newpath)
	return nil
}

func (f *FaultFS) Remove(name string) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.crashed {
		return ErrCrashed
	}
	name = clean(name)
	if _, ok := f.files[name]; ok {
		f.step()
		delete(f.files, name)
		return nil
	}
	if f.dirs[name] {
		for p := range f.files {
			if strings.HasPrefix(p, name+"/") {
				return &os.PathError{Op: "remove", Path: name, Err: syscall.ENOTEMPTY}
			}
		}
		f.step()
		delete(f.dirs, name)
		return nil
	}
	return &os.PathError{Op: "remove", Path: name, Err: os.ErrNotExist}
}

func (f *FaultFS) Stat(name string) (fs.FileInfo, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.crashed {
		return nil, ErrCrashed
	}
	name = clean(name)
	if mf, ok := f.files[name]; ok {
		return fileInfo{name: filepath.Base(name), size: int64(len(mf.data))}, nil
	}
	if f.dirExists(name) {
		return fileInfo{name: filepath.Base(name), dir: true}, nil
	}
	return nil, &os.PathError{Op: "stat", Path: name, Err: os.ErrNotExist}
}

func (f *FaultFS) dirExists(name string) bool {
	if f.dirs[name] {
		return true
	}
	for p := range f.files {
		if strings.HasPrefix(p, name+"/") {
			return true
		}
	}
	return false
}

func (f *FaultFS) ReadDir(name string) ([]fs.DirEntry, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.crashed {
		return nil, ErrCrashed
	}
	name = clean(name)
	if !f.dirExists(name) {
		return nil, &os.PathError{Op: "readdir", Path: name, Err: os.ErrNotExist}
	}
	seen := map[string]bool{}
	var out []fs.DirEntry
	add := func(base string, dir bool, size int64) {
		if !seen[base] {
			seen[base] = true
			out = append(out, dirEntry{fileInfo{name: base, dir: dir, size: size}})
		}
	}
	prefix := name + "/"
	if name == "." {
		prefix = ""
	}
	for p, mf := range f.files {
		if !strings.HasPrefix(p, prefix) || p == name {
			continue
		}
		rest := strings.TrimPrefix(p, prefix)
		if i := strings.IndexByte(rest, '/'); i >= 0 {
			add(rest[:i], true, 0)
		} else {
			add(rest, false, int64(len(mf.data)))
		}
	}
	for d := range f.dirs {
		if !strings.HasPrefix(d, prefix) || d == name {
			continue
		}
		rest := strings.TrimPrefix(d, prefix)
		if i := strings.IndexByte(rest, '/'); i >= 0 {
			rest = rest[:i]
		}
		add(rest, true, 0)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name() < out[j].Name() })
	return out, nil
}

func (f *FaultFS) MkdirAll(path string, perm os.FileMode) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.crashed {
		return ErrCrashed
	}
	path = clean(path)
	if !f.dirs[path] {
		f.step()
		f.dirs[path] = true
		f.markDirs(path)
	}
	return nil
}

// memHandle is one open descriptor. It holds the memFile directly —
// the inode, not the name — so it stays valid across Rename and Remove
// exactly like a POSIX fd (the atomic temp+rename journal path writes
// through its handle after renaming the file into place).
type memHandle struct {
	fs     *FaultFS
	mf     *memFile
	name   string
	pos    int
	write  bool
	read   bool
	append bool
	closed bool
}

func (h *memHandle) file() (*memFile, error) {
	if h.closed {
		return nil, os.ErrClosed
	}
	if h.fs.crashed {
		return nil, ErrCrashed
	}
	return h.mf, nil
}

func (h *memHandle) Read(p []byte) (int, error) {
	h.fs.mu.Lock()
	defer h.fs.mu.Unlock()
	mf, err := h.file()
	if err != nil {
		return 0, err
	}
	if !h.read {
		return 0, &os.PathError{Op: "read", Path: h.name, Err: os.ErrInvalid}
	}
	if h.pos >= len(mf.data) {
		return 0, io.EOF
	}
	n := copy(p, mf.data[h.pos:])
	h.pos += n
	return n, nil
}

func (h *memHandle) Write(p []byte) (int, error) {
	h.fs.mu.Lock()
	defer h.fs.mu.Unlock()
	mf, err := h.file()
	if err != nil {
		return 0, err
	}
	if !h.write {
		return 0, &os.PathError{Op: "write", Path: h.name, Err: os.ErrInvalid}
	}
	h.fs.step()
	fsp := &h.fs.prof
	if fsp.WriteErrRate > 0 && h.fs.rng.Float64() < fsp.WriteErrRate {
		h.fs.stats.WriteErrs++
		return 0, &os.PathError{Op: "write", Path: h.name, Err: syscall.EIO}
	}
	apply := p
	var werr error
	if fsp.ShortWriteRate > 0 && len(p) > 1 && h.fs.rng.Float64() < fsp.ShortWriteRate {
		h.fs.stats.ShortWrites++
		apply = p[:1+h.fs.rng.Intn(len(p)-1)]
		werr = io.ErrShortWrite
	}
	if fsp.ENOSPCBytes > 0 && h.fs.written+int64(len(apply)) > fsp.ENOSPCBytes {
		room := fsp.ENOSPCBytes - h.fs.written
		if room < 0 {
			room = 0
		}
		apply = apply[:room]
		h.fs.stats.ENOSPCs++
		werr = &os.PathError{Op: "write", Path: h.name, Err: syscall.ENOSPC}
	}
	if h.append {
		h.pos = len(mf.data)
	}
	end := h.pos + len(apply)
	if end > len(mf.data) {
		grown := make([]byte, end)
		copy(grown, mf.data)
		mf.data = grown
	}
	copy(mf.data[h.pos:], apply)
	h.pos += len(apply)
	h.fs.written += int64(len(apply))
	if werr != nil {
		return len(apply), werr
	}
	return len(p), nil
}

func (h *memHandle) Sync() error {
	h.fs.mu.Lock()
	defer h.fs.mu.Unlock()
	mf, err := h.file()
	if err != nil {
		return err
	}
	h.fs.step()
	if h.fs.prof.SyncErrRate > 0 && h.fs.rng.Float64() < h.fs.prof.SyncErrRate {
		h.fs.stats.SyncErrs++
		return &os.PathError{Op: "sync", Path: h.name, Err: syscall.EIO}
	}
	mf.synced = len(mf.data)
	return nil
}

func (h *memHandle) Truncate(size int64) error {
	h.fs.mu.Lock()
	defer h.fs.mu.Unlock()
	mf, err := h.file()
	if err != nil {
		return err
	}
	if !h.write {
		return &os.PathError{Op: "truncate", Path: h.name, Err: os.ErrInvalid}
	}
	h.fs.step()
	n := int(size)
	if n < 0 {
		return &os.PathError{Op: "truncate", Path: h.name, Err: os.ErrInvalid}
	}
	for len(mf.data) < n {
		mf.data = append(mf.data, 0)
	}
	mf.data = mf.data[:n]
	if mf.synced > n {
		mf.synced = n
	}
	return nil
}

func (h *memHandle) Close() error {
	h.fs.mu.Lock()
	defer h.fs.mu.Unlock()
	if h.closed {
		return os.ErrClosed
	}
	h.closed = true
	return nil
}

func (h *memHandle) Name() string { return h.name }

// fileInfo / dirEntry implement fs.FileInfo / fs.DirEntry for Stat and
// ReadDir.
type fileInfo struct {
	name string
	size int64
	dir  bool
}

func (i fileInfo) Name() string { return i.name }
func (i fileInfo) Size() int64  { return i.size }
func (i fileInfo) Mode() fs.FileMode {
	if i.dir {
		return fs.ModeDir | 0o755
	}
	return 0o644
}
func (i fileInfo) ModTime() time.Time { return time.Time{} }
func (i fileInfo) IsDir() bool        { return i.dir }
func (i fileInfo) Sys() any           { return nil }

type dirEntry struct{ fi fileInfo }

func (d dirEntry) Name() string               { return d.fi.name }
func (d dirEntry) IsDir() bool                { return d.fi.dir }
func (d dirEntry) Type() fs.FileMode          { return d.fi.Mode().Type() }
func (d dirEntry) Info() (fs.FileInfo, error) { return d.fi, nil }
