package faults

import (
	"errors"
	"testing"

	"capscale/internal/rapl"
)

// Two injectors with the same seed must deliver the identical fault
// sequence — the property every chaos-sweep determinism assertion
// rests on.
func TestInjectorDeterministic(t *testing.T) {
	prof := DefaultProfile()
	a, b := New(prof, 12345), New(prof, 12345)
	for i := 0; i < 500; i++ {
		p := rapl.Planes()[i%3]
		av, aerr := readRecover(a, p, uint64(i*1000))
		bv, berr := readRecover(b, p, uint64(i*1000))
		if av != bv || !errEqual(aerr, berr) {
			t.Fatalf("read %d diverged: (%d,%v) vs (%d,%v)", i, av, aerr, bv, berr)
		}
		if a.DropSample() != b.DropSample() {
			t.Fatalf("drop decision %d diverged", i)
		}
		if a.PollJitter(int64(i), 0.01) != b.PollJitter(int64(i), 0.01) {
			t.Fatalf("jitter %d diverged", i)
		}
	}
	if a.Stats() != b.Stats() {
		t.Fatalf("stats diverged: %+v vs %+v", a.Stats(), b.Stats())
	}
}

// readRecover converts an injected CellAbort panic into its error so
// determinism checks can compare aborting injectors too.
func readRecover(inj *Injector, p rapl.Plane, raw uint64) (v uint64, err error) {
	defer func() {
		if r := recover(); r != nil {
			err = r.(CellAbort)
		}
	}()
	return inj.CounterRead(p, raw)
}

func errEqual(a, b error) bool {
	if (a == nil) != (b == nil) {
		return false
	}
	return a == nil || a.Error() == b.Error()
}

func TestInjectorZeroProfileIsClean(t *testing.T) {
	inj := New(Profile{}, 99)
	for i := 0; i < 200; i++ {
		v, err := inj.CounterRead(rapl.PlanePKG, uint64(i))
		if err != nil || v != uint64(i) {
			t.Fatalf("zero profile perturbed read %d: %d, %v", i, v, err)
		}
		if inj.DropSample() {
			t.Fatalf("zero profile dropped sample %d", i)
		}
		if off := inj.PollJitter(int64(i), 0.01); off != 0 {
			t.Fatalf("zero profile jittered tick %d by %g", i, off)
		}
	}
	if inj.Stats().Any() {
		t.Fatalf("zero profile delivered faults: %+v", inj.Stats())
	}
	if got := inj.DriftInterval(0.01); got != 0.01 {
		t.Fatalf("zero profile drifted interval to %g", got)
	}
}

// A plane dropout is permanent: once ErrPlaneDropout appears, every
// later read of that plane fails the same way.
func TestPlaneDropoutIsPermanent(t *testing.T) {
	prof := Profile{PlaneDropoutRate: 1, DropoutWindow: 1}
	inj := New(prof, 7)
	if _, err := inj.CounterRead(rapl.PlanePKG, 0); !errors.Is(err, ErrPlaneDropout) {
		t.Fatalf("dropout did not fire: %v", err)
	}
	for i := 0; i < 10; i++ {
		if _, err := inj.CounterRead(rapl.PlanePKG, uint64(i)); !errors.Is(err, ErrPlaneDropout) {
			t.Fatalf("dropped plane answered read %d: %v", i, err)
		}
	}
	if inj.Stats().DroppedPlanes != 1 {
		t.Fatalf("dropped planes %d want 1", inj.Stats().DroppedPlanes)
	}
}

func TestCellAbortPanics(t *testing.T) {
	prof := Profile{CellAbortRate: 1, AbortWindow: 1}
	inj := New(prof, 3)
	defer func() {
		p := recover()
		if p == nil {
			t.Fatal("no abort panic")
		}
		ca, ok := p.(CellAbort)
		if !ok {
			t.Fatalf("panic value %T, want CellAbort", p)
		}
		if ca.Error() == "" {
			t.Fatal("empty abort error")
		}
	}()
	inj.CounterRead(rapl.PlanePKG, 0)
}

// An extra-wrap injection must make a wrap-correcting consumer gain
// one full counter period: the returned value is the true one minus
// 2³¹ (mod 2³²), so (cur−last)&0xFFFFFFFF over the pair adds ~2³².
func TestExtraWrapArithmetic(t *testing.T) {
	prof := Profile{ExtraWrapRate: 1}
	inj := New(prof, 11)
	last := uint64(5000)
	cur, err := inj.CounterRead(rapl.PlanePKG, 6000)
	if err != nil {
		t.Fatal(err)
	}
	delta := (cur - last) & 0xFFFFFFFF
	if delta < 1<<30 {
		t.Fatalf("injected wrap delta %d not a large backwards jump", delta)
	}
}

func TestScheduleArmedFraction(t *testing.T) {
	sch := DefaultSchedule(42)
	sch.CellFraction = 0.5
	armed := 0
	const cells = 2000
	for i := 0; i < cells; i++ {
		if sch.Armed(string(rune('a'+i%26)) + string(rune('0'+i%10)) + string(rune(i))) {
			armed++
		}
	}
	frac := float64(armed) / cells
	if frac < 0.4 || frac > 0.6 {
		t.Fatalf("armed fraction %.3f far from configured 0.5", frac)
	}
	// Edge fractions are exact.
	sch.CellFraction = 0
	if sch.Armed("x") {
		t.Fatal("fraction 0 armed a cell")
	}
	sch.CellFraction = 1
	if !sch.Armed("x") {
		t.Fatal("fraction 1 left a cell clean")
	}
}

// Arming is attempt-independent, but the per-attempt injectors differ
// — a retried cell re-rolls its faults without being disarmed.
func TestForCellAttemptRerolls(t *testing.T) {
	sch := DefaultSchedule(1)
	sch.CellFraction = 1
	a0 := sch.ForCell("CAPS/1024/4", 0)
	a1 := sch.ForCell("CAPS/1024/4", 1)
	if a0 == nil || a1 == nil {
		t.Fatal("armed cell got no injector")
	}
	same := true
	for i := 0; i < 100 && same; i++ {
		v0, e0 := readRecover(a0, rapl.PlanePKG, uint64(i))
		v1, e1 := readRecover(a1, rapl.PlanePKG, uint64(i))
		if v0 != v1 || !errEqual(e0, e1) {
			same = false
		}
	}
	if same {
		t.Fatal("attempt 0 and 1 injectors delivered identical sequences")
	}
}

func TestScheduleFingerprint(t *testing.T) {
	a := DefaultSchedule(42)
	b := DefaultSchedule(42)
	if a.Fingerprint() != b.Fingerprint() {
		t.Fatal("identical schedules fingerprint differently")
	}
	b.Seed = 43
	if a.Fingerprint() == b.Fingerprint() {
		t.Fatal("seed change did not move the fingerprint")
	}
	c := DefaultSchedule(42)
	c.Profile.MSRErrorRate += 0.001
	if a.Fingerprint() == c.Fingerprint() {
		t.Fatal("profile change did not move the fingerprint")
	}
	var nilSch *Schedule
	if nilSch.Fingerprint() != 0 {
		t.Fatal("nil schedule fingerprint not 0")
	}
}

func TestValidate(t *testing.T) {
	good := DefaultProfile()
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := DefaultProfile()
	bad.MSRErrorRate = 1.5
	if err := bad.Validate(); err == nil {
		t.Fatal("rate 1.5 accepted")
	}
	sch := DefaultSchedule(1)
	sch.CellFraction = -0.1
	if err := sch.Validate(); err == nil {
		t.Fatal("negative fraction accepted")
	}
	var nilSch *Schedule
	if err := nilSch.Validate(); err != nil {
		t.Fatalf("nil schedule rejected: %v", err)
	}
}
