package faults

import (
	"errors"
	"fmt"
	"io"
	"os"
	"syscall"
	"testing"

	"capscale/internal/store"
)

// TestFaultFSRoundTrip: the zero-profile filesystem behaves like a
// filesystem — create, write, sync, rename, stat, list, remove.
func TestFaultFSRoundTrip(t *testing.T) {
	ffs := NewFaultFS(FSProfile{}, 1)
	if err := ffs.MkdirAll("dir/sub", 0o755); err != nil {
		t.Fatal(err)
	}
	f, err := ffs.OpenFile("dir/sub/a.txt", os.O_WRONLY|os.O_CREATE|os.O_EXCL, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte("hello")); err != nil {
		t.Fatal(err)
	}
	if err := f.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := ffs.OpenFile("dir/sub/a.txt", os.O_WRONLY|os.O_CREATE|os.O_EXCL, 0o644); !errors.Is(err, os.ErrExist) {
		t.Fatalf("O_EXCL on existing file = %v, want ErrExist", err)
	}
	if err := ffs.Rename("dir/sub/a.txt", "dir/sub/b.txt"); err != nil {
		t.Fatal(err)
	}
	if _, err := ffs.Stat("dir/sub/a.txt"); !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("stat after rename = %v, want ErrNotExist", err)
	}
	g, err := ffs.OpenFile("dir/sub/b.txt", os.O_RDONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	raw, err := io.ReadAll(g)
	if err != nil || string(raw) != "hello" {
		t.Fatalf("read back %q, %v", raw, err)
	}
	if err := g.Close(); err != nil {
		t.Fatal(err)
	}
	entries, err := ffs.ReadDir("dir/sub")
	if err != nil || len(entries) != 1 || entries[0].Name() != "b.txt" {
		t.Fatalf("readdir = %v, %v", entries, err)
	}
	if err := ffs.Remove("dir/sub/b.txt"); err != nil {
		t.Fatal(err)
	}
	if _, err := ffs.Stat("dir/sub/b.txt"); !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("stat after remove = %v", err)
	}
}

// TestCrashDropsUnsyncedData: power loss keeps exactly the durable
// prefix of each file, vaporizes never-synced files, and fails all I/O
// until Reboot.
func TestCrashDropsUnsyncedData(t *testing.T) {
	ffs := NewFaultFS(FSProfile{}, 1)
	f, err := ffs.OpenFile("a", os.O_WRONLY|os.O_CREATE, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte("durable|")); err != nil {
		t.Fatal(err)
	}
	if err := f.Sync(); err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte("volatile")); err != nil {
		t.Fatal(err)
	}
	g, err := ffs.OpenFile("never-synced", os.O_WRONLY|os.O_CREATE, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := g.Write([]byte("gone")); err != nil {
		t.Fatal(err)
	}

	ffs.CrashAt(1)
	func() {
		defer func() {
			if p := recover(); p == nil {
				t.Fatal("armed crash-point did not fire")
			} else if _, ok := p.(*CrashPoint); !ok {
				panic(p)
			}
		}()
		_, _ = f.Write([]byte("x"))
	}()
	if !ffs.Crashed() {
		t.Fatal("filesystem not down after crash")
	}
	if _, err := ffs.OpenFile("a", os.O_RDONLY, 0); !errors.Is(err, syscall.EIO) {
		t.Fatalf("open while crashed = %v, want EIO", err)
	}

	ffs.Reboot()
	h, err := ffs.OpenFile("a", os.O_RDONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	raw, err := io.ReadAll(h)
	if err != nil || string(raw) != "durable|" {
		t.Fatalf("after reboot file a = %q, %v (want only the synced prefix)", raw, err)
	}
	if err := h.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := ffs.Stat("never-synced"); !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("never-synced file survived the crash: %v", err)
	}
	if ffs.Stats().Crashes != 1 {
		t.Fatalf("crash count = %d", ffs.Stats().Crashes)
	}
}

// TestWriteErrInjection: EIO and ENOSPC surface through the standard
// (n, err) contract with errors.Is-compatible wrapping.
func TestWriteErrInjection(t *testing.T) {
	ffs := NewFaultFS(FSProfile{WriteErrRate: 1}, 42)
	f, err := ffs.OpenFile("a", os.O_WRONLY|os.O_CREATE, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if n, err := f.Write([]byte("data")); n != 0 || !errors.Is(err, syscall.EIO) {
		t.Fatalf("injected write = (%d, %v), want (0, EIO)", n, err)
	}
	if ffs.Stats().WriteErrs == 0 {
		t.Fatal("write error not counted")
	}

	nospc := NewFaultFS(FSProfile{ENOSPCBytes: 10}, 42)
	g, err := nospc.OpenFile("b", os.O_WRONLY|os.O_CREATE, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := g.Write([]byte("12345678")); err != nil {
		t.Fatalf("write within budget: %v", err)
	}
	if n, err := g.Write([]byte("overflow")); !errors.Is(err, syscall.ENOSPC) || n >= len("overflow") {
		t.Fatalf("over-budget write = (%d, %v), want partial + ENOSPC", n, err)
	}
	if nospc.Stats().ENOSPCs == 0 {
		t.Fatal("ENOSPC not counted")
	}
}

// TestJournalENOSPCRollback: when the disk fills mid-append, the
// journal rolls the partial line back — the file stays clean and holds
// exactly the records whose appends succeeded.
func TestJournalENOSPCRollback(t *testing.T) {
	header := []byte(`{"version":1,"fingerprint":"0123456789abcdef"}`)
	// Budget: the header and first record fit; a later append trips it.
	ffs := NewFaultFS(FSProfile{ENOSPCBytes: int64(len(header)) + 40}, 7)
	j, err := store.CreateJournal(ffs, "sweep.jsonl", header, nil, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	var ok int
	for i := 0; i < 5; i++ {
		rec := fmt.Sprintf(`{"key":"cell-%d"}`, i)
		if err := j.Append([]byte(rec)); err != nil {
			if !errors.Is(err, syscall.ENOSPC) {
				t.Fatalf("append %d: %v", i, err)
			}
			break
		}
		ok++
	}
	if ok == 0 || ok == 5 {
		t.Fatalf("want some appends to succeed and some to hit ENOSPC; %d succeeded", ok)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	sc, err := store.ScanJournal(ffs, "sweep.jsonl", 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	if !sc.Clean() {
		t.Fatalf("journal dirty after rolled-back append: torn=%v unterminated=%v", sc.Torn, sc.Unterminated)
	}
	if len(sc.Records) != ok {
		t.Fatalf("journal holds %d records, want the %d successful appends", len(sc.Records), ok)
	}
}

// TestJournalCrashEveryOp: the journal-level crash oracle. A reference
// run writes a journal through N mutating ops; then, for every k ≤ N,
// a fresh filesystem replays the same sequence with power loss at op k
// (torn tails enabled). After reboot + salvage the journal must be
// clean and hold a strict prefix of the reference records — never a
// corrupt or reordered file.
func TestJournalCrashEveryOp(t *testing.T) {
	header := []byte(`{"version":1,"fingerprint":"0123456789abcdef"}`)
	records := make([][]byte, 6)
	for i := range records {
		records[i] = []byte(fmt.Sprintf(`{"key":"cell-%d","joules":%d.5}`, i, i*3))
	}
	run := func(ffs *FaultFS) error {
		j, err := store.CreateJournal(ffs, "sweep.jsonl", header, nil, nil, nil)
		if err != nil {
			return err
		}
		for _, rec := range records {
			if err := j.Append(rec); err != nil {
				return err
			}
		}
		return j.Close()
	}

	clean := NewFaultFS(FSProfile{}, 99)
	if err := run(clean); err != nil {
		t.Fatal(err)
	}
	total := clean.Ops()
	if total < int64(len(records)) {
		t.Fatalf("implausible op count %d", total)
	}

	for k := int64(1); k <= total; k++ {
		ffs := NewFaultFS(FSProfile{CrashTornFrac: 0.5}, 1000+k)
		ffs.CrashAt(k)
		crashed := false
		func() {
			defer func() {
				if p := recover(); p != nil {
					if _, ok := p.(*CrashPoint); !ok {
						panic(p)
					}
					crashed = true
				}
			}()
			_ = run(ffs)
		}()
		if !crashed {
			t.Fatalf("k=%d: crash-point did not fire (total ops %d)", k, total)
		}
		ffs.Reboot()
		if _, err := store.SalvageJournal(ffs, "sweep.jsonl", 1<<20); err != nil {
			t.Fatalf("k=%d: salvage: %v", k, err)
		}
		sc, err := store.ScanJournal(ffs, "sweep.jsonl", 1<<20)
		if errors.Is(err, os.ErrNotExist) {
			continue // crashed before the journal became durable: clean slate
		}
		if err != nil {
			t.Fatalf("k=%d: scan: %v", k, err)
		}
		if len(sc.Records) > 0 && !sc.HeaderOK {
			t.Fatalf("k=%d: records without a header after salvage", k)
		}
		if !sc.Clean() && sc.HeaderOK {
			t.Fatalf("k=%d: journal not clean after salvage: torn=%v unterminated=%v", k, sc.Torn, sc.Unterminated)
		}
		if len(sc.Records) > len(records) {
			t.Fatalf("k=%d: more records than were written: %d", k, len(sc.Records))
		}
		for i, rec := range sc.Records {
			if string(rec) != string(records[i]) {
				t.Fatalf("k=%d: record %d = %q, want prefix of reference (%q)", k, i, rec, records[i])
			}
		}
	}
}
