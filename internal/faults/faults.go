// Package faults is a deterministic, seed-driven fault injector for
// the emulated measurement stack. It perturbs the exact failure
// surface a real RAPL/PAPI monitor lives with — MSR reads that
// transiently fail, ENERGY_STATUS counters that stick or wrap an
// extra time, PAPI timer-thread samples that are silently dropped,
// poll clocks that drift and jitter, and whole power planes that
// disappear mid-run — so the pipeline's graceful-degradation paths
// (retry, quarantine, ground-truth fallback, per-cell containment)
// can be exercised and asserted on in tests and chaos sweeps.
//
// An Injector is wired into the stack through small hooks the
// measurement packages expose: rapl.Device.SetCounterFault and
// SetPollJitter, papi.EventSet.SetFaultHook, and
// monitor.Config.Faults. All hooks are nil by default and the hot
// paths pay nothing until one is installed, mirroring the
// internal/obs disabled-path discipline.
//
// Determinism: every decision an Injector makes is drawn from one
// seeded math/rand stream in call order. A cell simulated twice with
// the same seed experiences the same faults at the same reads, which
// is what lets chaos sweeps assert bit-identical per-seed results.
// An Injector is not safe for concurrent use; give each simulated
// cell its own (Schedule.ForCell does).
package faults

import (
	"errors"
	"fmt"
	"math/rand"

	"capscale/internal/rapl"
)

// Profile sets the per-class injection rates. The zero Profile
// injects nothing; DefaultProfile is the chaos harness's mix.
type Profile struct {
	// MSRErrorRate is the per-read probability that an ENERGY_STATUS
	// counter read fails transiently (ErrMSRRead).
	MSRErrorRate float64
	// StuckRate is the per-read probability that a plane's counter
	// freezes at its current value for StuckReads consecutive reads.
	// Because ENERGY_STATUS is cumulative, a stuck episode self-heals
	// on the next live read — unless it hides a wrap.
	StuckRate float64
	// StuckReads is the length of a stuck episode (default 3).
	StuckReads int
	// ExtraWrapRate is the per-read probability that the observed
	// counter jumps backwards by half the wrap period, making the
	// consumer's wrap correction add a spurious 2³² counts (~65 kJ at
	// the Haswell unit) — the inverse of the wrap loss PR 2 guards.
	ExtraWrapRate float64
	// DropSampleRate is the per-poll probability that the PAPI layer
	// silently loses a timer-thread sample.
	DropSampleRate float64
	// JitterFrac scatters each poll tick uniformly within
	// [0, JitterFrac·interval) of its nominal time — timestamp jitter
	// as a fraction of the poll interval. Values ≥ 1 are clamped by
	// the device so ticks stay monotone.
	JitterFrac float64
	// DriftFrac scales the monitor's poll interval once per run by a
	// uniform factor in [1−DriftFrac, 1+DriftFrac] — a poll clock
	// running systematically fast or slow.
	DriftFrac float64
	// PlaneDropoutRate is the per-plane probability that the plane
	// dies at a seeded read inside DropoutWindow and never answers
	// again — the quarantine path's trigger.
	PlaneDropoutRate float64
	// DropoutWindow bounds the read index at which a dropout fires
	// (default 64).
	DropoutWindow int
	// CellAbortRate is the per-cell probability that one seeded read
	// panics (CellAbort) inside AbortWindow — the hard failure the
	// sweep driver's per-cell containment must recover.
	CellAbortRate float64
	// AbortWindow bounds the read index of an injected abort
	// (default 64).
	AbortWindow int
}

// DefaultProfile returns the chaos harness's fault mix: every class
// armed at a rate that leaves most reads clean but makes a multi-cell
// sweep certain to exercise retry, quarantine and containment.
func DefaultProfile() Profile {
	return Profile{
		MSRErrorRate:     0.05,
		StuckRate:        0.02,
		StuckReads:       3,
		ExtraWrapRate:    0.01,
		DropSampleRate:   0.05,
		JitterFrac:       0.5,
		DriftFrac:        0.02,
		PlaneDropoutRate: 0.15,
		DropoutWindow:    64,
		CellAbortRate:    0.05,
		AbortWindow:      64,
	}
}

// Validate reports a descriptive error for rates outside [0,1] or
// negative windows.
func (p *Profile) Validate() error {
	for _, f := range []struct {
		name string
		v    float64
	}{
		{"MSRErrorRate", p.MSRErrorRate},
		{"StuckRate", p.StuckRate},
		{"ExtraWrapRate", p.ExtraWrapRate},
		{"DropSampleRate", p.DropSampleRate},
		{"PlaneDropoutRate", p.PlaneDropoutRate},
		{"CellAbortRate", p.CellAbortRate},
	} {
		if f.v < 0 || f.v > 1 {
			return fmt.Errorf("faults: %s %v outside [0,1]", f.name, f.v)
		}
	}
	if p.JitterFrac < 0 || p.DriftFrac < 0 || p.DriftFrac >= 1 {
		return fmt.Errorf("faults: JitterFrac %v / DriftFrac %v out of range", p.JitterFrac, p.DriftFrac)
	}
	if p.StuckReads < 0 || p.DropoutWindow < 0 || p.AbortWindow < 0 {
		return fmt.Errorf("faults: negative StuckReads/DropoutWindow/AbortWindow")
	}
	return nil
}

// ErrMSRRead is the transient injected MSR read failure; consumers
// should retry.
var ErrMSRRead = errors.New("faults: injected MSR read error")

// ErrPlaneDropout marks a plane that has permanently stopped
// answering; retries cannot help and the monitor quarantines it.
var ErrPlaneDropout = errors.New("faults: injected plane dropout")

// CellAbort is the panic value of an injected hard cell failure; the
// sweep driver's containment recovers it and records the cell error.
type CellAbort struct {
	// Read is the counter-read index at which the abort fired.
	Read int64
}

func (a CellAbort) Error() string {
	return fmt.Sprintf("faults: injected cell abort at read %d", a.Read)
}

// Stats counts the faults an Injector actually delivered. A cell
// whose injector reports zero stats executed on the clean path even
// though it was armed.
type Stats struct {
	MSRErrors      int
	StuckReads     int
	ExtraWraps     int
	DroppedSamples int
	DroppedPlanes  int
	JitteredTicks  int
	Aborted        bool
}

// Any reports whether any fault was delivered.
func (s Stats) Any() bool {
	return s.MSRErrors > 0 || s.StuckReads > 0 || s.ExtraWraps > 0 ||
		s.DroppedSamples > 0 || s.DroppedPlanes > 0 || s.JitteredTicks > 0 || s.Aborted
}

// Injector delivers one cell's faults. Construct with New (or
// Schedule.ForCell); the zero Injector is not usable.
type Injector struct {
	prof Profile
	rng  *rand.Rand

	reads     int64
	stuckLeft [rapl.NumPlanes]int
	stuckVal  [rapl.NumPlanes]uint64
	dropAt    [rapl.NumPlanes]int64 // read index at which the plane dies; -1 = never
	dead      [rapl.NumPlanes]bool
	abortAt   int64 // -1 = never

	stats Stats
}

// New returns an injector drawing every decision from seed. The
// plane-dropout and cell-abort lotteries are drawn up front so their
// onset is a pure function of the seed.
func New(prof Profile, seed int64) *Injector {
	inj := &Injector{prof: prof, rng: rand.New(rand.NewSource(seed))}
	window := func(w int) int64 {
		if w <= 0 {
			return 64
		}
		return int64(w)
	}
	for i := range inj.dropAt {
		inj.dropAt[i] = -1
		if prof.PlaneDropoutRate > 0 && inj.rng.Float64() < prof.PlaneDropoutRate {
			inj.dropAt[i] = inj.rng.Int63n(window(prof.DropoutWindow))
		}
	}
	inj.abortAt = -1
	if prof.CellAbortRate > 0 && inj.rng.Float64() < prof.CellAbortRate {
		inj.abortAt = inj.rng.Int63n(window(prof.AbortWindow))
	}
	return inj
}

// Stats returns a copy of the delivered-fault counts.
func (inj *Injector) Stats() Stats { return inj.stats }

// CounterRead implements the rapl.CounterFault hook: it receives the
// true wrapped ENERGY_STATUS value and returns what the consumer
// observes (possibly stuck or extra-wrapped), an error (transient MSR
// failure or permanent dropout), or panics with CellAbort when the
// cell's hard failure fires.
func (inj *Injector) CounterRead(p rapl.Plane, raw uint64) (uint64, error) {
	i := int(p)
	n := inj.reads
	inj.reads++

	if inj.abortAt >= 0 && n >= inj.abortAt && !inj.stats.Aborted {
		inj.stats.Aborted = true
		panic(CellAbort{Read: n})
	}
	if inj.dead[i] {
		return 0, fmt.Errorf("%w: plane %v", ErrPlaneDropout, p)
	}
	if inj.dropAt[i] >= 0 && n >= inj.dropAt[i] {
		inj.dead[i] = true
		inj.stats.DroppedPlanes++
		return 0, fmt.Errorf("%w: plane %v", ErrPlaneDropout, p)
	}
	if inj.stuckLeft[i] > 0 {
		inj.stuckLeft[i]--
		inj.stats.StuckReads++
		return inj.stuckVal[i], nil
	}

	// One uniform draw per read, partitioned among the transient
	// classes, keeps the rng stream — and therefore the whole fault
	// sequence — a stable function of the read order.
	r := inj.rng.Float64()
	switch {
	case r < inj.prof.MSRErrorRate:
		inj.stats.MSRErrors++
		return 0, ErrMSRRead
	case r < inj.prof.MSRErrorRate+inj.prof.StuckRate:
		stuck := inj.prof.StuckReads
		if stuck <= 0 {
			stuck = 3
		}
		inj.stuckLeft[i] = stuck - 1
		inj.stuckVal[i] = raw
		inj.stats.StuckReads++
		return raw, nil
	case r < inj.prof.MSRErrorRate+inj.prof.StuckRate+inj.prof.ExtraWrapRate:
		// Jump the observed counter back by half the wrap period: the
		// consumer's (cur−last) & 0xFFFFFFFF correction turns the
		// negative delta into a spurious near-full wrap of energy.
		inj.stats.ExtraWraps++
		return (raw - 1<<31) & 0xFFFFFFFF, nil
	default:
		return raw, nil
	}
}

// DropSample implements papi's FaultHook: whether this timer-thread
// sample is silently lost.
func (inj *Injector) DropSample() bool {
	if inj.prof.DropSampleRate <= 0 {
		return false
	}
	if inj.rng.Float64() < inj.prof.DropSampleRate {
		inj.stats.DroppedSamples++
		return true
	}
	return false
}

// PollJitter implements the rapl.PollJitterFn hook: the offset in
// seconds added to poll tick number `tick` of nominal period
// `interval`. The device clamps the offset below one interval so
// ticks stay strictly monotone.
func (inj *Injector) PollJitter(tick int64, interval float64) float64 {
	if inj.prof.JitterFrac <= 0 {
		return 0
	}
	off := inj.rng.Float64() * inj.prof.JitterFrac * interval
	if off > 0 {
		inj.stats.JitteredTicks++
	}
	return off
}

// DriftInterval returns the poll interval as the monitor's drifted
// clock produces it: base scaled once by a seeded factor in
// [1−DriftFrac, 1+DriftFrac].
func (inj *Injector) DriftInterval(base float64) float64 {
	if inj.prof.DriftFrac <= 0 {
		return base
	}
	return base * (1 + inj.prof.DriftFrac*(2*inj.rng.Float64()-1))
}
