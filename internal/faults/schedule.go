package faults

import (
	"fmt"
	"hash/fnv"
)

// Schedule is a sweep-wide fault plan: which cells of an experiment
// matrix are armed, and with what fault mix. Cell selection and
// per-cell seeds are pure functions of (Seed, cell key), so a sweep
// is reproducible regardless of execution order or parallelism — the
// chaos harness's core invariant.
type Schedule struct {
	// Seed drives every derived injector. Two sweeps with the same
	// seed, fraction and profile inject identical faults.
	Seed int64
	// CellFraction is the fraction of cells armed, in [0,1]. Selection
	// is by per-cell hash, so roughly — not exactly — this fraction of
	// cells receives an injector.
	CellFraction float64
	// Profile is the fault mix delivered to armed cells.
	Profile Profile
}

// DefaultSchedule returns a schedule arming half the cells with the
// default profile — the chaos harness's configuration.
func DefaultSchedule(seed int64) *Schedule {
	return &Schedule{Seed: seed, CellFraction: 0.5, Profile: DefaultProfile()}
}

// Validate reports a descriptive error for unusable schedules.
func (s *Schedule) Validate() error {
	if s == nil {
		return nil
	}
	if s.CellFraction < 0 || s.CellFraction > 1 {
		return fmt.Errorf("faults: cell fraction %v outside [0,1]", s.CellFraction)
	}
	return s.Profile.Validate()
}

// cellHash folds the schedule seed and a cell key (and salt) into a
// 64-bit hash.
func (s *Schedule) cellHash(key string, salt int) uint64 {
	h := fnv.New64a()
	fmt.Fprintf(h, "%d|%s|%d", s.Seed, key, salt)
	return h.Sum64()
}

// Armed reports whether the schedule selects the cell for injection.
// Selection is independent of the execution attempt: a retried cell
// stays armed (with a different per-attempt seed), so retrying cannot
// silently launder a faulted cell into a clean one by disarming it.
func (s *Schedule) Armed(key string) bool {
	if s == nil || s.CellFraction <= 0 {
		return false
	}
	if s.CellFraction >= 1 {
		return true
	}
	// Top 53 bits → uniform in [0,1).
	u := float64(s.cellHash(key, -1)>>11) / (1 << 53)
	return u < s.CellFraction
}

// ForCell returns the injector for one execution attempt of a cell,
// or nil when the schedule leaves the cell clean. The injector seed
// folds in the attempt number, so a contained retry of a failed cell
// re-rolls its faults rather than deterministically re-dying — while
// the overall attempt sequence stays a pure function of the schedule
// seed.
func (s *Schedule) ForCell(key string, attempt int) *Injector {
	if !s.Armed(key) {
		return nil
	}
	return New(s.Profile, int64(s.cellHash(key, attempt)))
}

// Fingerprint hashes the whole plan — seed, fraction and every
// profile rate — for cache and checkpoint keys: results obtained
// under different fault plans must never be mistaken for one another.
func (s *Schedule) Fingerprint() uint64 {
	if s == nil {
		return 0
	}
	h := fnv.New64a()
	p := s.Profile
	fmt.Fprintf(h, "%d|%g|%g|%g|%d|%g|%g|%g|%g|%g|%d|%g|%d",
		s.Seed, s.CellFraction,
		p.MSRErrorRate, p.StuckRate, p.StuckReads, p.ExtraWrapRate,
		p.DropSampleRate, p.JitterFrac, p.DriftFrac,
		p.PlaneDropoutRate, p.DropoutWindow, p.CellAbortRate, p.AbortWindow)
	return h.Sum64()
}
