package monitor

import (
	"math"
	"reflect"
	"testing"

	"capscale/internal/faults"
	"capscale/internal/hw"
	"capscale/internal/rapl"
	"capscale/internal/sim"
)

// steady returns a constant-power timeline of dur seconds split into
// segs equal segments.
func steady(dur float64, segs int, p hw.PlanePower) []sim.Segment {
	out := make([]sim.Segment, segs)
	step := dur / float64(segs)
	for i := range out {
		out[i] = sim.Segment{Start: float64(i) * step, End: float64(i+1) * step, Power: p}
	}
	return out
}

// A transiently failing stack: the monitor's immediate retries absorb
// the failures and the report reconciles cleanly.
func TestStreamRetriesTransientErrors(t *testing.T) {
	inj := faults.New(faults.Profile{MSRErrorRate: 0.3}, 42)
	rep, err := Replay(steady(10, 50, hw.PlanePower{PKG: 20, PP0: 10, DRAM: 5}), Config{
		PollInterval: 0.1,
		Faults:       inj,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Retries == 0 {
		t.Fatal("30% MSR error rate produced no retries")
	}
	if len(rep.Quarantined) > 0 {
		t.Fatalf("transient errors quarantined planes: %v", rep.Quarantined)
	}
	// Retried reads land on the same virtual instant, so nothing is
	// lost: reconciliation within the degradation threshold.
	if e := rep.MaxAbsErr(); e > DegradedAbsErrJ {
		t.Fatalf("max abs err %v J after retries", e)
	}
}

// A dead plane is quarantined after repeated failures, its figure is
// substituted from ground truth, and the report is flagged Degraded.
func TestStreamQuarantinesDeadPlane(t *testing.T) {
	inj := faults.New(faults.Profile{PlaneDropoutRate: 1, DropoutWindow: 1}, 7)
	rep, err := Replay(steady(10, 50, hw.PlanePower{PKG: 20, PP0: 10, DRAM: 5}), Config{
		PollInterval: 0.1,
		Faults:       inj,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Degraded {
		t.Fatal("whole-stack dropout not flagged Degraded")
	}
	if len(rep.Quarantined) == 0 {
		t.Fatal("no plane quarantined after permanent dropout")
	}
	for _, pr := range rep.Planes {
		if !pr.Quarantined {
			continue
		}
		if pr.MeasuredJ != pr.TruthJ {
			t.Fatalf("%v: quarantined figure %v not substituted from truth %v",
				pr.Plane, pr.MeasuredJ, pr.TruthJ)
		}
		if pr.TruthJ <= 0 {
			t.Fatalf("%v: substituted truth is %v", pr.Plane, pr.TruthJ)
		}
	}
	if rep.ReadErrors == 0 {
		t.Fatal("dropout produced no recorded read errors")
	}
}

// The same seed must produce the identical degraded report: fault
// injection is deterministic through the whole monitor stack.
func TestFaultedStreamDeterministic(t *testing.T) {
	run := func() *Report {
		inj := faults.New(faults.DefaultProfile(), 1234)
		rep, err := Replay(steady(20, 200, hw.PlanePower{PKG: 30, PP0: 20, DRAM: 8}), Config{
			PollInterval: 0.05,
			Faults:       inj,
		})
		if err != nil {
			t.Fatal(err)
		}
		return rep
	}
	a, b := run(), run()
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("same-seed reports differ:\n%+v\n%+v", a, b)
	}
}

// Clock drift changes the effective interval; the report must echo
// the drifted value, and sampling still reconciles.
func TestStreamDriftedInterval(t *testing.T) {
	inj := faults.New(faults.Profile{DriftFrac: 0.1}, 5)
	rep, err := Replay(steady(10, 50, hw.PlanePower{PKG: 20}), Config{
		PollInterval: 0.1,
		Faults:       inj,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.PollInterval == 0.1 {
		t.Fatal("drifted stream reports the nominal interval")
	}
	if d := math.Abs(rep.PollInterval - 0.1); d > 0.01+1e-12 {
		t.Fatalf("drift %v beyond the 10%% bound", d)
	}
	if rep.Degraded {
		t.Fatal("pure drift flagged Degraded (nothing was lost)")
	}
}

// Dropped timer samples are counted; on an unwrapped counter they
// cost nothing because the next live sample covers the gap.
func TestStreamCountsDroppedSamples(t *testing.T) {
	inj := faults.New(faults.Profile{DropSampleRate: 0.5}, 21)
	rep, err := Replay(steady(10, 50, hw.PlanePower{PKG: 20}), Config{
		PollInterval: 0.1,
		Faults:       inj,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.DroppedSamples == 0 {
		t.Fatal("50% drop rate lost no samples")
	}
	if e := rep.MaxAbsErr(); e > DegradedAbsErrJ {
		t.Fatalf("max abs err %v J from drops on an unwrapped counter", e)
	}
}

// The clean path must be byte-identical with the degradation machinery
// compiled in: a nil-faults stream produces the same report as before
// the fault layer existed (pinned against the batch Replay, which the
// determinism tests cover).
func TestCleanStreamUnchangedByFaultMachinery(t *testing.T) {
	segs := steady(5, 25, hw.PlanePower{PKG: 25, PP0: 15, DRAM: 6})
	a, err := Replay(segs, Config{PollInterval: 0.1})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Replay(segs, Config{PollInterval: 0.1, MaxRetries: 5, QuarantineAfter: 2})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("degradation config changed a clean run:\n%+v\n%+v", a, b)
	}
	if a.Degraded || a.Retries != 0 || a.ReadErrors != 0 || a.DroppedSamples != 0 {
		t.Fatalf("clean run reports degradation: %+v", a)
	}
}

// An extra-wrap fault makes the consumer's wrap correction add a
// spurious ~wrap of energy; the report must flag it as ExtraWraps and
// Degraded rather than silently reporting 65 kJ too much.
func TestStreamFlagsExtraWraps(t *testing.T) {
	// Inject exactly one backwards jump mid-run, via a hand-installed
	// device hook (NewStream only manages hooks when cfg.Faults is set,
	// so the stream itself runs the clean path; wrap detection and the
	// Degraded flag are unconditional).
	pkgReads := 0
	dev := rapl.NewDevice()
	dev.SetCounterFault(func(p rapl.Plane, raw uint64) (uint64, error) {
		if p == rapl.PlanePKG {
			pkgReads++
			if pkgReads == 100 {
				return (raw - 1<<31) & 0xFFFFFFFF, nil
			}
		}
		return raw, nil
	})
	rep, err := Replay(steady(30, 300, hw.PlanePower{PKG: 20, PP0: 10, DRAM: 5}), Config{
		PollInterval: 0.1,
		Device:       dev,
	})
	if err != nil {
		t.Fatal(err)
	}
	pkg := rep.Plane(rapl.PlanePKG)
	if pkg.ExtraWraps == 0 {
		t.Fatalf("spurious wrap not detected: %+v", pkg)
	}
	if !rep.Degraded {
		t.Fatal("extra wrap not flagged Degraded")
	}
}
