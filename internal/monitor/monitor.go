// Package monitor closes the measurement loop the paper's numbers
// depend on: a virtual-time polling monitor that replays a simulated
// power timeline (or a recorded trace) into the emulated RAPL device,
// samples it through the PAPI event-set layer at a fixed device-time
// interval — the way the paper's driver polled real silicon through
// PAPI's RAPL component — and reconciles what the polling measured
// against the device's exact accumulated energy.
//
// The reconciliation report states, per power plane, the measured and
// ground-truth joules, the absolute and relative error, and the number
// of 32-bit counter wraps the measurement lost (zero for a correctly
// sampled run). It also warns when the chosen poll interval could
// accumulate more than one wrap period of energy between samples at
// the timeline's peak power — the undersampling condition under which
// RAPL measurement silently loses energy on real hardware too.
//
// The experiment driver (internal/workload) measures every run through
// this monitor, so the EP and scaling figures of Eq. 1 and Eq. 5 are
// computed from measured energy, with the simulator's exact totals
// kept as a cross-check rather than used directly.
package monitor

import (
	"fmt"
	"math"
	"strings"

	"capscale/internal/faults"
	"capscale/internal/hw"
	"capscale/internal/obs"
	"capscale/internal/papi"
	"capscale/internal/rapl"
	"capscale/internal/sim"
	"capscale/internal/trace"
)

// Degradation policy defaults (Config overrides).
const (
	// DefaultMaxRetries is how many times a failed plane read is
	// immediately re-attempted within one poll tick.
	DefaultMaxRetries = 3
	// DefaultQuarantineAfter is how many consecutive failed ticks a
	// plane survives before it is quarantined for the rest of the run.
	DefaultQuarantineAfter = 4
	// backoffCapTicks caps the exponential inter-retry backoff, in
	// poll ticks.
	backoffCapTicks = 8
	// DegradedAbsErrJ is the absolute measured-vs-truth discrepancy
	// (per plane, in joules) beyond which a report is flagged
	// Degraded. Clean sampling is short by at most a few counter
	// quanta (~15 µJ each at the Haswell unit), while any real loss —
	// a stuck tail, a dropped final sample, a hidden wrap — shows up
	// orders of magnitude above this.
	DegradedAbsErrJ = 0.01
)

// Config controls one monitored replay.
type Config struct {
	// PollInterval is the sampling period in seconds of device time.
	// It must be positive.
	PollInterval float64
	// Device is the RAPL device to replay into; nil selects a fresh
	// device with the default (Haswell) energy unit. Passing a device
	// with a custom ESU exponent narrows or widens the wrap period
	// under test.
	Device *rapl.Device
	// ObsTrack, when tracing is enabled, is the span track the
	// stream's "monitor.stream" span lands on. The zero Track targets
	// "main".
	ObsTrack obs.Track
	// Faults, when non-nil, arms the deterministic fault injector on
	// the whole measurement stack for this stream: counter faults and
	// tick jitter on the device, sample drops on the event set, clock
	// drift on the poll interval. The degradation machinery (retries,
	// quarantine, ground-truth fallback) runs regardless — faults are
	// just what makes it fire.
	Faults *faults.Injector
	// MaxRetries bounds immediate re-reads of a failed plane sample
	// (per tick). Zero selects DefaultMaxRetries; negative disables
	// retrying.
	MaxRetries int
	// QuarantineAfter is how many consecutive failed ticks a plane
	// survives before being quarantined. Zero selects
	// DefaultQuarantineAfter.
	QuarantineAfter int
	// Planes is the plane set this stream samples and reconciles. Nil
	// selects the node-local RAPL planes (rapl.Planes()); distributed
	// runs pass rapl.ClusterPlanes() so the NIC and switch planes are
	// polled, degraded, and reconciled exactly like the node planes.
	Planes []rapl.Plane
}

// Measurement metrics, folded into the registry at Finish.
var (
	monitorStreams     = obs.GetCounter("monitor.streams.finished")
	monitorSamples     = obs.GetCounter("monitor.samples.observed")
	monitorLostWraps   = obs.GetCounter("monitor.wraps.lost")
	monitorRetries     = obs.GetCounter("monitor.reads.retried")
	monitorReadErrors  = obs.GetCounter("monitor.reads.failed")
	monitorQuarantined = obs.GetCounter("monitor.planes.quarantined")
	monitorDropped     = obs.GetCounter("monitor.samples.dropped")
	monitorDegraded    = obs.GetCounter("monitor.streams.degraded")
)

// PlaneReport is one plane's reconciliation verdict.
type PlaneReport struct {
	Plane rapl.Plane
	// MeasuredJ is what the polled PAPI event set accumulated.
	MeasuredJ float64
	// TruthJ is the device's exact integrated energy over the replay —
	// the oracle a real monitor never sees.
	TruthJ float64
	// AbsErr is MeasuredJ − TruthJ (non-positive in practice: the
	// counters quantize downward and wraps only lose energy).
	AbsErr float64
	// RelErr is |AbsErr| / TruthJ, or 0 when TruthJ is 0.
	RelErr float64
	// LostWraps estimates how many full 32-bit counter wraps the
	// measurement missed: the deficit rounded to whole wrap periods.
	LostWraps int
	// ExtraWraps estimates spurious wraps the measurement gained — a
	// counter observed jumping backwards makes the wrap correction
	// add energy that was never dissipated.
	ExtraWraps int
	// Quarantined marks a plane that failed repeatedly and was taken
	// out of sampling; its MeasuredJ is substituted from the
	// simulator's ground truth and must be treated as modelled, not
	// measured.
	Quarantined bool
}

// Report is the outcome of one monitored replay.
type Report struct {
	// PollInterval echoes the configured sampling period.
	PollInterval float64
	// Samples counts periodic polls plus the final Stop sample.
	Samples int
	// Duration is the replayed device time in seconds.
	Duration float64
	// WrapJoules is the energy of one full counter wrap at the
	// device's unit (2³² · unit ≈ 65.5 kJ at the Haswell default).
	WrapJoules float64
	// Planes holds one report per sampled plane, in the stream's
	// configured plane order (rapl.Planes() by default,
	// rapl.ClusterPlanes() on distributed runs).
	Planes []PlaneReport
	// Warnings lists sampling-adequacy diagnostics: undersampling
	// relative to the wrap period at peak power, or too few samples to
	// call the run monitored.
	Warnings []string

	// Degraded reports that at least one figure in this report is not
	// a clean measurement: a plane was quarantined (and substituted
	// from ground truth), a wrap was lost or spuriously gained, or the
	// measured-vs-truth discrepancy exceeds DegradedAbsErrJ. Consumers
	// must surface the flag next to every number derived from a
	// degraded report.
	Degraded bool
	// Quarantined lists the planes taken out of sampling after
	// repeated read failures.
	Quarantined []rapl.Plane
	// Retries counts immediate re-reads after transient failures.
	Retries int
	// ReadErrors counts plane-sample attempts that failed even after
	// retrying.
	ReadErrors int
	// DroppedSamples counts timer-thread samples the fault layer
	// swallowed.
	DroppedSamples int
}

// Plane returns the report for one plane; it panics on an unknown
// plane, which indicates a caller bug.
func (r *Report) Plane(p rapl.Plane) PlaneReport {
	for _, pr := range r.Planes {
		if pr.Plane == p {
			return pr
		}
	}
	panic(fmt.Sprintf("monitor: no report for plane %v", p))
}

// MaxAbsErr returns the largest per-plane |measured − truth| in joules.
func (r *Report) MaxAbsErr() float64 {
	worst := 0.0
	for _, pr := range r.Planes {
		if e := math.Abs(pr.AbsErr); e > worst {
			worst = e
		}
	}
	return worst
}

// MaxRelErr returns the largest per-plane relative error.
func (r *Report) MaxRelErr() float64 {
	worst := 0.0
	for _, pr := range r.Planes {
		if pr.RelErr > worst {
			worst = pr.RelErr
		}
	}
	return worst
}

// WrapLoss reports whether any plane lost at least one counter wrap.
func (r *Report) WrapLoss() bool {
	for _, pr := range r.Planes {
		if pr.LostWraps > 0 {
			return true
		}
	}
	return false
}

// Reconciled reports whether the measurement agrees with ground truth:
// no wrap loss and every plane within relTol relative error (planes
// with zero truth must measure within one counter quantum).
func (r *Report) Reconciled(relTol float64) bool {
	if r.WrapLoss() {
		return false
	}
	for _, pr := range r.Planes {
		if pr.TruthJ == 0 {
			if math.Abs(pr.MeasuredJ) > r.WrapJoules/math.Pow(2, 32) {
				return false
			}
			continue
		}
		if pr.RelErr > relTol {
			return false
		}
	}
	return true
}

// String renders a one-paragraph summary for logs and CLI output.
func (r *Report) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "monitor: %d samples @ %gs over %.4fs", r.Samples, r.PollInterval, r.Duration)
	if r.Degraded {
		sb.WriteString(" [DEGRADED]")
	}
	for _, pr := range r.Planes {
		fmt.Fprintf(&sb, "; %s %.4f/%.4f J (rel.err %.2e", pr.Plane, pr.MeasuredJ, pr.TruthJ, pr.RelErr)
		if pr.LostWraps > 0 {
			fmt.Fprintf(&sb, ", %d wraps LOST", pr.LostWraps)
		}
		if pr.ExtraWraps > 0 {
			fmt.Fprintf(&sb, ", %d wraps GAINED", pr.ExtraWraps)
		}
		if pr.Quarantined {
			sb.WriteString(", QUARANTINED→truth")
		}
		sb.WriteString(")")
	}
	if r.Retries > 0 || r.ReadErrors > 0 || r.DroppedSamples > 0 {
		fmt.Fprintf(&sb, "; retries %d, read errors %d, dropped samples %d",
			r.Retries, r.ReadErrors, r.DroppedSamples)
	}
	for _, w := range r.Warnings {
		fmt.Fprintf(&sb, "\nwarning: %s", w)
	}
	return sb.String()
}

// Stream is an incremental monitor: the same polling measurement
// Replay performs, but fed one power segment at a time as a producer
// (typically sim.Config.OnSegment) emits them. This fuses measurement
// into the simulator's event loop — no materialized timeline, no
// second O(segments) pass.
//
// Usage: NewStream, then Observe once per segment in time order, then
// Finish to stop the event set and build the Report. Finish is
// idempotent: the first call settles the stream and subsequent calls
// return the same report and error. A Stream is not safe for
// concurrent use; each simulated run gets its own Stream. Streams
// must be constructed with NewStream: methods on a zero-value Stream
// return descriptive errors instead of sampling a nonexistent event
// set.
type Stream struct {
	cfg     Config
	dev     *rapl.Device
	es      *papi.EventSet
	planes  []rapl.Plane
	events  []string // PAPI event name per plane, in planes order
	truth0  []float64
	t0      float64
	peak    hw.PlanePower
	samples int
	err     error
	done    bool
	sp      obs.Span

	// Effective (possibly drift-perturbed) poll interval.
	interval float64

	// Degradation machinery: per-plane consecutive-failure counts,
	// capped-exponential backoff (in ticks to skip), and quarantine.
	maxRetries  int
	quarAfter   int
	consFails   []int
	backoff     []int
	quarantined []bool
	retries     int
	readErrs    int

	// Settled Finish outcome (idempotency).
	finRep *Report
	finErr error
}

// planeWatts projects one plane's component out of a PlanePower.
func planeWatts(pw hw.PlanePower, p rapl.Plane) float64 {
	switch p {
	case rapl.PlanePKG:
		return pw.PKG
	case rapl.PlanePP0:
		return pw.PP0
	case rapl.PlaneDRAM:
		return pw.DRAM
	case rapl.PlaneNIC:
		return pw.NIC
	case rapl.PlaneSwitch:
		return pw.Switch
	}
	panic(fmt.Sprintf("monitor: unknown plane %v", p))
}

// NewStream prepares a monitored measurement: it arms the PAPI event
// set on the RAPL device and schedules periodic polling every
// cfg.PollInterval seconds of device time. With cfg.Faults set it
// also installs the fault injector's hooks across the stack (and a
// drifted poll clock); the clean path is bit-identical to a faultless
// stream.
func NewStream(cfg Config) (*Stream, error) {
	if cfg.PollInterval <= 0 {
		return nil, fmt.Errorf("monitor: non-positive poll interval %v", cfg.PollInterval)
	}
	dev := cfg.Device
	if dev == nil {
		dev = rapl.NewDevice()
	}

	s := &Stream{cfg: cfg, dev: dev, interval: cfg.PollInterval}
	switch {
	case cfg.MaxRetries == 0:
		s.maxRetries = DefaultMaxRetries
	case cfg.MaxRetries < 0:
		s.maxRetries = 0
	default:
		s.maxRetries = cfg.MaxRetries
	}
	s.quarAfter = cfg.QuarantineAfter
	if s.quarAfter <= 0 {
		s.quarAfter = DefaultQuarantineAfter
	}
	s.planes = cfg.Planes
	if len(s.planes) == 0 {
		s.planes = rapl.Planes()
	}
	n := len(s.planes)
	s.events = make([]string, n)
	s.truth0 = make([]float64, n)
	s.consFails = make([]int, n)
	s.backoff = make([]int, n)
	s.quarantined = make([]bool, n)
	for i, p := range s.planes {
		ev, err := papi.EventForPlane(p)
		if err != nil {
			return nil, err
		}
		s.events[i] = ev
		s.truth0[i] = dev.TotalJoules(p)
	}

	s.es = papi.NewEventSet(dev)
	for _, e := range s.events {
		if err := s.es.Add(e); err != nil {
			return nil, err
		}
	}
	if inj := cfg.Faults; inj != nil {
		s.interval = inj.DriftInterval(s.interval)
		if s.interval <= 0 { // defensive: drift must not disable polling
			s.interval = cfg.PollInterval
		}
		dev.SetCounterFault(inj.CounterRead)
		dev.SetPollJitter(inj.PollJitter)
		s.es.SetFaultHook(inj)
	}
	if err := s.es.Start(); err != nil {
		return nil, err
	}
	dev.SetPoll(s.interval, s.pollTick)
	s.t0 = dev.Now()
	if obs.Enabled() {
		s.sp = obs.StartOn(cfg.ObsTrack, "monitor.stream")
	}
	return s, nil
}

// pollTick is the per-tick sampling body: each plane is sampled
// independently so one failing plane neither poisons nor delays the
// others. A failed read is retried immediately up to maxRetries
// times; a plane that keeps failing backs off exponentially (in poll
// ticks, capped at backoffCapTicks) and is quarantined for the rest
// of the run after quarAfter consecutive failed ticks.
func (s *Stream) pollTick() {
	s.samples++
	for i := range s.planes {
		s.samplePlane(i)
	}
}

// samplePlane performs one tick's retried sample of plane index i,
// honouring backoff and quarantine.
func (s *Stream) samplePlane(i int) {
	if s.quarantined[i] {
		return
	}
	if s.backoff[i] > 0 {
		s.backoff[i]--
		return
	}
	err := s.es.PollEvent(s.events[i])
	for attempt := 0; err != nil && attempt < s.maxRetries; attempt++ {
		s.retries++
		err = s.es.PollEvent(s.events[i])
	}
	if err == nil {
		s.consFails[i] = 0
		return
	}
	s.readErrs++
	s.consFails[i]++
	if s.consFails[i] >= s.quarAfter {
		s.quarantined[i] = true
		return
	}
	// Capped exponential backoff in device time: after f consecutive
	// failed ticks, skip 2^f ticks before trying again.
	b := 1 << s.consFails[i]
	if b > backoffCapTicks {
		b = backoffCapTicks
	}
	s.backoff[i] = b
}

// Observe advances the device through one power segment. Segments must
// arrive in time order; a non-monotone segment poisons the stream (the
// same error then surfaces from Finish). Misuse — Observe on a
// zero-value Stream or after Finish — returns a descriptive error
// without touching the event set. Use OnSegment to wire a Stream into
// the simulator.
func (s *Stream) Observe(seg sim.Segment) error {
	if s.es == nil {
		return fmt.Errorf("monitor: Observe on an unstarted Stream (construct with NewStream)")
	}
	if s.done {
		return fmt.Errorf("monitor: Observe after Finish on a stopped Stream")
	}
	if s.err != nil {
		return s.err
	}
	dt := seg.End - seg.Start
	if dt < 0 {
		s.err = fmt.Errorf("monitor: non-monotone segment [%v,%v)", seg.Start, seg.End)
		return s.err
	}
	if seg.Power.PKG > s.peak.PKG {
		s.peak.PKG = seg.Power.PKG
	}
	if seg.Power.PP0 > s.peak.PP0 {
		s.peak.PP0 = seg.Power.PP0
	}
	if seg.Power.DRAM > s.peak.DRAM {
		s.peak.DRAM = seg.Power.DRAM
	}
	if seg.Power.NIC > s.peak.NIC {
		s.peak.NIC = seg.Power.NIC
	}
	if seg.Power.Switch > s.peak.Switch {
		s.peak.Switch = seg.Power.Switch
	}
	s.dev.Advance(dt, seg.Power)
	return nil
}

// OnSegment is Observe shaped for sim.Config.OnSegment (which takes no
// error return). Errors are not lost: a poisoned or misused stream
// surfaces the same error from Finish.
func (s *Stream) OnSegment(seg sim.Segment) { _ = s.Observe(seg) }

// Finish stops the event set, takes the final sample, and reconciles
// the polled measurement against the device's exact energy totals.
// Finish is idempotent: the first call settles the stream's outcome
// and every later call returns the same report and error, so shutdown
// paths that double-Finish (a deferred cleanup racing an explicit
// one) cannot corrupt or duplicate anything.
func (s *Stream) Finish() (*Report, error) {
	if s.es == nil {
		return nil, fmt.Errorf("monitor: Finish on an unstarted Stream (construct with NewStream)")
	}
	if s.done {
		return s.finRep, s.finErr
	}
	s.done = true
	s.finRep, s.finErr = s.finish()
	return s.finRep, s.finErr
}

// finish is Finish's single-shot body.
func (s *Stream) finish() (*Report, error) {
	defer s.sp.End()
	s.dev.SetPoll(0, nil)
	if s.cfg.Faults != nil {
		// A degraded final sample: retry each live plane the same way a
		// tick does, so a transient fault at the very end does not cost
		// the run's tail energy. Quarantine can still fire here.
		for i := range s.planes {
			s.samplePlane(i)
		}
		defer s.dev.SetCounterFault(nil)
		defer s.dev.SetPollJitter(nil)
	}
	if s.err != nil {
		s.es.Stop()
		return nil, s.err
	}
	vals, stopErr := s.es.Stop()
	if stopErr != nil && s.cfg.Faults == nil {
		// Clean path: a failed final sample is a caller/stack bug, not
		// a degradation to absorb.
		return nil, stopErr
	}
	s.samples++ // Stop's final sample

	rep := &Report{
		PollInterval:   s.interval,
		Samples:        s.samples,
		Duration:       s.dev.Now() - s.t0,
		WrapJoules:     math.Pow(2, 32) * s.dev.EnergyUnit(),
		Retries:        s.retries,
		ReadErrors:     s.readErrs,
		DroppedSamples: s.es.Drops(),
	}
	var unsound []string
	for i, p := range s.planes {
		measured := float64(vals[i]) / 1e9
		truth := s.dev.TotalJoules(p) - s.truth0[i]
		pr := PlaneReport{
			Plane:       p,
			MeasuredJ:   measured,
			TruthJ:      truth,
			Quarantined: s.quarantined[i],
		}
		if pr.Quarantined {
			// Graceful degradation: the plane stopped answering, so its
			// figure falls back to the simulator's ground truth — a
			// modelled number, explicitly flagged, instead of a silently
			// wrong measured one (or a dead sweep).
			pr.MeasuredJ = truth
			rep.Quarantined = append(rep.Quarantined, p)
		}
		pr.AbsErr = pr.MeasuredJ - truth
		if truth != 0 {
			pr.RelErr = math.Abs(pr.AbsErr) / truth
		}
		// A correctly sampled measurement is short by at most one
		// counter quantum; any discrepancy near a multiple of the wrap
		// period is wraps lost (deficit) or spuriously gained (surplus).
		if deficit := truth - pr.MeasuredJ; deficit > rep.WrapJoules/2 {
			pr.LostWraps = int(math.Round(deficit / rep.WrapJoules))
		} else if -deficit > rep.WrapJoules/2 {
			pr.ExtraWraps = int(math.Round(-deficit / rep.WrapJoules))
		}
		rep.Planes = append(rep.Planes, pr)

		if maxGain := planeWatts(s.peak, p) * s.interval; maxGain >= rep.WrapJoules {
			unsound = append(unsound, p.String())
		}
	}
	// One undersampling warning per run, naming every affected plane —
	// not one per plane (or, worse, per segment) repeating the same
	// diagnosis.
	if len(unsound) > 0 {
		rep.Warnings = append(rep.Warnings, fmt.Sprintf(
			"%s: poll interval %gs can accumulate more than the %.0f J wrap period between samples at peak power — wrap correction is unsound",
			strings.Join(unsound, ", "), s.interval, rep.WrapJoules))
	}
	if rep.Duration > 0 && rep.Samples < 2 {
		rep.Warnings = append(rep.Warnings, fmt.Sprintf(
			"only %d sample(s) over %.4fs: poll interval %gs undersamples the run",
			rep.Samples, rep.Duration, s.interval))
	}
	for _, pr := range rep.Planes {
		if pr.Quarantined || pr.LostWraps > 0 || pr.ExtraWraps > 0 || math.Abs(pr.AbsErr) > DegradedAbsErrJ {
			rep.Degraded = true
		}
	}

	monitorStreams.Inc()
	monitorSamples.Add(int64(rep.Samples))
	monitorRetries.Add(int64(rep.Retries))
	monitorReadErrors.Add(int64(rep.ReadErrors))
	monitorQuarantined.Add(int64(len(rep.Quarantined)))
	monitorDropped.Add(int64(rep.DroppedSamples))
	if rep.Degraded {
		monitorDegraded.Inc()
	}
	for _, pr := range rep.Planes {
		monitorLostWraps.Add(int64(pr.LostWraps))
	}
	if s.sp.Live() {
		s.sp.ArgInt("samples", rep.Samples)
		s.sp.ArgFloat("device_s", rep.Duration)
		if rep.Degraded {
			s.sp.Arg("degraded", "true")
		}
	}
	return rep, nil
}

// Replay feeds a simulator timeline into the RAPL device segment by
// segment, sampling through a PAPI event set every cfg.PollInterval
// seconds of device time, and reconciles the measurement against the
// device's exact energy totals. It is the batch form of Stream.
func Replay(segs []sim.Segment, cfg Config) (*Report, error) {
	s, err := NewStream(cfg)
	if err != nil {
		return nil, err
	}
	for _, seg := range segs {
		s.Observe(seg)
	}
	return s.Finish()
}

// ReplayTrace replays a recorded power trace — each step of the trace
// becomes one constant-power segment.
func ReplayTrace(tr *trace.Trace, cfg Config) (*Report, error) {
	segs := make([]sim.Segment, 0, len(tr.Samples))
	for i, s := range tr.Samples {
		end := tr.End
		if i+1 < len(tr.Samples) {
			end = tr.Samples[i+1].T
		}
		segs = append(segs, sim.Segment{
			Start: s.T,
			End:   end,
			Power: hw.PlanePower{PKG: s.PKG, PP0: s.PP0, DRAM: s.DRAM},
		})
	}
	return Replay(segs, cfg)
}
