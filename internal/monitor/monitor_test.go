package monitor

import (
	"math"
	"strings"
	"testing"

	"capscale/internal/hw"
	"capscale/internal/rapl"
	"capscale/internal/sim"
	"capscale/internal/trace"
)

// segsFor builds a synthetic timeline: count segments of dt seconds
// cycling through three power levels.
func segsFor(count int, dt float64) []sim.Segment {
	powers := []hw.PlanePower{
		{PKG: 20, PP0: 12, DRAM: 2},
		{PKG: 35, PP0: 25, DRAM: 3},
		{PKG: 50, PP0: 38, DRAM: 4},
	}
	segs := make([]sim.Segment, count)
	t := 0.0
	for i := range segs {
		segs[i] = sim.Segment{Start: t, End: t + dt, Power: powers[i%len(powers)]}
		t += dt
	}
	return segs
}

func TestReplayReconcilesAtSaneInterval(t *testing.T) {
	// 300 s mixed-power run, polled at 100 Hz: measured must match the
	// device's exact totals to within one counter quantum per plane.
	rep, err := Replay(segsFor(300, 1), Config{PollInterval: 0.01})
	if err != nil {
		t.Fatal(err)
	}
	unit := 1.0 / 65536
	for _, pr := range rep.Planes {
		if pr.TruthJ <= 0 {
			t.Fatalf("%v: no ground truth energy", pr.Plane)
		}
		// Quantization bounds the error at one counter quantum; float
		// accumulation across ~30k integration splits adds noise of the
		// same order.
		if math.Abs(pr.AbsErr) > 2*unit {
			t.Errorf("%v: abs err %v J exceeds two quanta", pr.Plane, pr.AbsErr)
		}
		if pr.LostWraps != 0 {
			t.Errorf("%v: %d wraps reported on a sane run", pr.Plane, pr.LostWraps)
		}
	}
	if !rep.Reconciled(1e-6) {
		t.Fatalf("not reconciled: %v", rep)
	}
	if len(rep.Warnings) != 0 {
		t.Fatalf("unexpected warnings: %v", rep.Warnings)
	}
	if rep.Duration != 300 {
		t.Fatalf("duration %v", rep.Duration)
	}
	if rep.Samples < 30000 {
		t.Fatalf("samples %d, expected ~30001", rep.Samples)
	}
}

func TestReplayFlagsInjectedWrapLoss(t *testing.T) {
	// One 10000 s segment at 10 W PKG accumulates 100 kJ — past the
	// 65.5 kJ wrap period. A poll interval longer than the run leaves
	// only the Stop sample, so the wrap is lost; the monitor must
	// detect it, report the lost energy, and warn about the interval.
	segs := []sim.Segment{{Start: 0, End: 10000, Power: hw.PlanePower{PKG: 10, PP0: 1, DRAM: 1}}}
	rep, err := Replay(segs, Config{PollInterval: 20000})
	if err != nil {
		t.Fatal(err)
	}
	pkg := rep.Plane(rapl.PlanePKG)
	if pkg.LostWraps != 1 {
		t.Fatalf("lost wraps %d want 1 (report: %v)", pkg.LostWraps, rep)
	}
	if !rep.WrapLoss() || rep.Reconciled(1e-6) {
		t.Fatal("wrap loss not flagged")
	}
	wrapJ := math.Pow(2, 32) / 65536
	if math.Abs(pkg.MeasuredJ-(100000-wrapJ)) > 0.001 {
		t.Fatalf("measured %v J want %v", pkg.MeasuredJ, 100000-wrapJ)
	}
	if math.Abs(pkg.TruthJ-100000) > 1e-6 {
		t.Fatalf("truth %v J", pkg.TruthJ)
	}
	// PP0/DRAM stayed inside one wrap: no false positives.
	if rep.Plane(rapl.PlanePP0).LostWraps != 0 || rep.Plane(rapl.PlaneDRAM).LostWraps != 0 {
		t.Fatal("false wrap loss on low-energy planes")
	}
	found := false
	for _, w := range rep.Warnings {
		if strings.Contains(w, "wrap period") {
			found = true
		}
	}
	if !found {
		t.Fatalf("no undersampling warning: %v", rep.Warnings)
	}
	if !strings.Contains(rep.String(), "LOST") {
		t.Fatalf("summary hides wrap loss: %s", rep.String())
	}
}

func TestReplaySameRunReconciledWhenSampledFastEnough(t *testing.T) {
	// The same 100 kJ run is fully recovered when the poll interval
	// stays inside the wrap period (60 s × 10 W = 600 J ≪ 65.5 kJ).
	segs := []sim.Segment{{Start: 0, End: 10000, Power: hw.PlanePower{PKG: 10, PP0: 1, DRAM: 1}}}
	rep, err := Replay(segs, Config{PollInterval: 60})
	if err != nil {
		t.Fatal(err)
	}
	if rep.WrapLoss() {
		t.Fatalf("wrap loss at a sane interval: %v", rep)
	}
	if !rep.Reconciled(1e-6) {
		t.Fatalf("not reconciled: %v", rep)
	}
	if len(rep.Warnings) != 0 {
		t.Fatalf("warnings at a sane interval: %v", rep.Warnings)
	}
}

func TestReplayWarnsOnSingleSample(t *testing.T) {
	segs := segsFor(3, 1)
	rep, err := Replay(segs, Config{PollInterval: 100})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Samples != 1 {
		t.Fatalf("samples %d", rep.Samples)
	}
	found := false
	for _, w := range rep.Warnings {
		if strings.Contains(w, "undersamples") {
			found = true
		}
	}
	if !found {
		t.Fatalf("no sample-count warning: %v", rep.Warnings)
	}
}

func TestReplayTraceMatchesSegments(t *testing.T) {
	segs := segsFor(30, 0.5)
	tr := trace.FromSegments(segs)
	a, err := Replay(segs, Config{PollInterval: 0.05})
	if err != nil {
		t.Fatal(err)
	}
	b, err := ReplayTrace(tr, Config{PollInterval: 0.05})
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Planes {
		if a.Planes[i].MeasuredJ != b.Planes[i].MeasuredJ || a.Planes[i].TruthJ != b.Planes[i].TruthJ {
			t.Fatalf("trace replay diverges on %v: %+v vs %+v", a.Planes[i].Plane, a.Planes[i], b.Planes[i])
		}
	}
	if a.Samples != b.Samples {
		t.Fatalf("samples %d vs %d", a.Samples, b.Samples)
	}
}

func TestReplayCustomDeviceAndESU(t *testing.T) {
	// A coarser unit (ESU 10: ~0.98 mJ, wrap ≈ 4.2 MJ) still
	// reconciles; the report's wrap period follows the device.
	dev, err := rapl.NewDeviceWithESU(10)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := Replay(segsFor(50, 1), Config{PollInterval: 0.5, Device: dev})
	if err != nil {
		t.Fatal(err)
	}
	if want := math.Pow(2, 32) / 1024; rep.WrapJoules != want {
		t.Fatalf("wrap joules %v want %v", rep.WrapJoules, want)
	}
	if !rep.Reconciled(1e-3) {
		t.Fatalf("not reconciled at coarse unit: %v", rep)
	}
}

func TestReplayErrors(t *testing.T) {
	if _, err := Replay(segsFor(1, 1), Config{}); err == nil {
		t.Fatal("zero interval accepted")
	}
	bad := []sim.Segment{{Start: 5, End: 1}}
	if _, err := Replay(bad, Config{PollInterval: 1}); err == nil {
		t.Fatal("non-monotone segment accepted")
	}
}

func TestReportPlanePanicsOnUnknown(t *testing.T) {
	rep := &Report{}
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	rep.Plane(rapl.PlanePKG)
}

func TestReplayEmptyTimeline(t *testing.T) {
	rep, err := Replay(nil, Config{PollInterval: 1})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Duration != 0 || rep.MaxAbsErr() != 0 {
		t.Fatalf("empty replay %v", rep)
	}
	if !rep.Reconciled(0) {
		t.Fatal("empty replay not reconciled")
	}
}
