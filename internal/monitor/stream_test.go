package monitor

import (
	"testing"

	"capscale/internal/sim"
)

func TestStreamMatchesReplay(t *testing.T) {
	segs := segsFor(500, 0.25)
	cfg := Config{PollInterval: 0.01}

	batch, err := Replay(segs, cfg)
	if err != nil {
		t.Fatal(err)
	}
	s, err := NewStream(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, seg := range segs {
		s.Observe(seg)
	}
	streamed, err := s.Finish()
	if err != nil {
		t.Fatal(err)
	}

	if streamed.Samples != batch.Samples || streamed.Duration != batch.Duration ||
		streamed.WrapJoules != batch.WrapJoules {
		t.Fatalf("stream header %+v != replay %+v", streamed, batch)
	}
	if len(streamed.Planes) != len(batch.Planes) {
		t.Fatalf("plane counts %d vs %d", len(streamed.Planes), len(batch.Planes))
	}
	for i, pr := range streamed.Planes {
		if pr != batch.Planes[i] {
			t.Fatalf("plane %v: streamed %+v != replay %+v", pr.Plane, pr, batch.Planes[i])
		}
	}
}

func TestStreamNonMonotoneSegmentErrors(t *testing.T) {
	s, err := NewStream(Config{PollInterval: 0.01})
	if err != nil {
		t.Fatal(err)
	}
	s.Observe(sim.Segment{Start: 1, End: 0})
	if _, err := s.Finish(); err == nil {
		t.Fatal("non-monotone segment did not surface from Finish")
	}
}

func TestStreamFinishTwiceErrors(t *testing.T) {
	s, err := NewStream(Config{PollInterval: 0.01})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Finish(); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Finish(); err == nil {
		t.Fatal("second Finish did not error")
	}
}

func TestStreamBadIntervalErrors(t *testing.T) {
	if _, err := NewStream(Config{PollInterval: 0}); err == nil {
		t.Fatal("zero poll interval accepted")
	}
}
