package monitor

import (
	"strings"
	"testing"

	"capscale/internal/hw"
	"capscale/internal/sim"
)

func TestStreamMatchesReplay(t *testing.T) {
	segs := segsFor(500, 0.25)
	cfg := Config{PollInterval: 0.01}

	batch, err := Replay(segs, cfg)
	if err != nil {
		t.Fatal(err)
	}
	s, err := NewStream(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, seg := range segs {
		s.Observe(seg)
	}
	streamed, err := s.Finish()
	if err != nil {
		t.Fatal(err)
	}

	if streamed.Samples != batch.Samples || streamed.Duration != batch.Duration ||
		streamed.WrapJoules != batch.WrapJoules {
		t.Fatalf("stream header %+v != replay %+v", streamed, batch)
	}
	if len(streamed.Planes) != len(batch.Planes) {
		t.Fatalf("plane counts %d vs %d", len(streamed.Planes), len(batch.Planes))
	}
	for i, pr := range streamed.Planes {
		if pr != batch.Planes[i] {
			t.Fatalf("plane %v: streamed %+v != replay %+v", pr.Plane, pr, batch.Planes[i])
		}
	}
}

func TestStreamNonMonotoneSegmentErrors(t *testing.T) {
	s, err := NewStream(Config{PollInterval: 0.01})
	if err != nil {
		t.Fatal(err)
	}
	s.Observe(sim.Segment{Start: 1, End: 0})
	if _, err := s.Finish(); err == nil {
		t.Fatal("non-monotone segment did not surface from Finish")
	}
}

func TestStreamFinishIdempotent(t *testing.T) {
	s, err := NewStream(Config{PollInterval: 0.01})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Observe(sim.Segment{Start: 0, End: 0.1, Power: hw.PlanePower{PKG: 10}}); err != nil {
		t.Fatal(err)
	}
	first, err := s.Finish()
	if err != nil {
		t.Fatal(err)
	}
	second, err := s.Finish()
	if err != nil {
		t.Fatalf("second Finish errored: %v", err)
	}
	if second != first {
		t.Fatalf("second Finish returned a different report: %p vs %p", second, first)
	}
	// The settled outcome must also not re-sample: the sample count is
	// frozen by the first call.
	third, _ := s.Finish()
	if third.Samples != first.Samples {
		t.Fatalf("Finish re-sampled: %d != %d", third.Samples, first.Samples)
	}
}

// A poisoned stream's error is settled too: every Finish returns it.
func TestStreamFinishIdempotentOnError(t *testing.T) {
	s, err := NewStream(Config{PollInterval: 0.01})
	if err != nil {
		t.Fatal(err)
	}
	s.Observe(sim.Segment{Start: 1, End: 0})
	_, err1 := s.Finish()
	_, err2 := s.Finish()
	if err1 == nil || err2 == nil {
		t.Fatal("poisoned stream Finish did not error")
	}
	if err1.Error() != err2.Error() {
		t.Fatalf("settled errors differ: %v vs %v", err1, err2)
	}
}

func TestStreamBadIntervalErrors(t *testing.T) {
	if _, err := NewStream(Config{PollInterval: 0}); err == nil {
		t.Fatal("zero poll interval accepted")
	}
}

// Misuse hardening: both illegal orderings must fail loudly instead of
// silently corrupting the sample record.

func TestStreamObserveAfterFinishErrors(t *testing.T) {
	s, err := NewStream(Config{PollInterval: 0.01})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Observe(sim.Segment{Start: 0, End: 0.1, Power: hw.PlanePower{PKG: 10}}); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Finish(); err != nil {
		t.Fatal(err)
	}
	err = s.Observe(sim.Segment{Start: 0.1, End: 0.2, Power: hw.PlanePower{PKG: 10}})
	if err == nil {
		t.Fatal("Observe after Finish did not error")
	}
	if !strings.Contains(err.Error(), "after Finish") {
		t.Fatalf("Observe-after-Finish error %q does not name the misuse", err)
	}
}

func TestZeroValueStreamErrors(t *testing.T) {
	var s Stream
	err := s.Observe(sim.Segment{Start: 0, End: 0.1})
	if err == nil {
		t.Fatal("Observe on zero-value Stream did not error")
	}
	if !strings.Contains(err.Error(), "NewStream") {
		t.Fatalf("zero-value Observe error %q does not point at NewStream", err)
	}
	if _, err := s.Finish(); err == nil {
		t.Fatal("Finish on zero-value Stream did not error")
	}
}
