package monitor

import (
	"strings"
	"testing"

	"capscale/internal/hw"
	"capscale/internal/sim"
)

func TestStreamMatchesReplay(t *testing.T) {
	segs := segsFor(500, 0.25)
	cfg := Config{PollInterval: 0.01}

	batch, err := Replay(segs, cfg)
	if err != nil {
		t.Fatal(err)
	}
	s, err := NewStream(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, seg := range segs {
		s.Observe(seg)
	}
	streamed, err := s.Finish()
	if err != nil {
		t.Fatal(err)
	}

	if streamed.Samples != batch.Samples || streamed.Duration != batch.Duration ||
		streamed.WrapJoules != batch.WrapJoules {
		t.Fatalf("stream header %+v != replay %+v", streamed, batch)
	}
	if len(streamed.Planes) != len(batch.Planes) {
		t.Fatalf("plane counts %d vs %d", len(streamed.Planes), len(batch.Planes))
	}
	for i, pr := range streamed.Planes {
		if pr != batch.Planes[i] {
			t.Fatalf("plane %v: streamed %+v != replay %+v", pr.Plane, pr, batch.Planes[i])
		}
	}
}

func TestStreamNonMonotoneSegmentErrors(t *testing.T) {
	s, err := NewStream(Config{PollInterval: 0.01})
	if err != nil {
		t.Fatal(err)
	}
	s.Observe(sim.Segment{Start: 1, End: 0})
	if _, err := s.Finish(); err == nil {
		t.Fatal("non-monotone segment did not surface from Finish")
	}
}

func TestStreamFinishTwiceErrors(t *testing.T) {
	s, err := NewStream(Config{PollInterval: 0.01})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Finish(); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Finish(); err == nil {
		t.Fatal("second Finish did not error")
	}
}

func TestStreamBadIntervalErrors(t *testing.T) {
	if _, err := NewStream(Config{PollInterval: 0}); err == nil {
		t.Fatal("zero poll interval accepted")
	}
}

// Misuse hardening: both illegal orderings must fail loudly instead of
// silently corrupting the sample record.

func TestStreamObserveAfterFinishErrors(t *testing.T) {
	s, err := NewStream(Config{PollInterval: 0.01})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Observe(sim.Segment{Start: 0, End: 0.1, Power: hw.PlanePower{PKG: 10}}); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Finish(); err != nil {
		t.Fatal(err)
	}
	err = s.Observe(sim.Segment{Start: 0.1, End: 0.2, Power: hw.PlanePower{PKG: 10}})
	if err == nil {
		t.Fatal("Observe after Finish did not error")
	}
	if !strings.Contains(err.Error(), "after Finish") {
		t.Fatalf("Observe-after-Finish error %q does not name the misuse", err)
	}
}

func TestZeroValueStreamErrors(t *testing.T) {
	var s Stream
	err := s.Observe(sim.Segment{Start: 0, End: 0.1})
	if err == nil {
		t.Fatal("Observe on zero-value Stream did not error")
	}
	if !strings.Contains(err.Error(), "NewStream") {
		t.Fatalf("zero-value Observe error %q does not point at NewStream", err)
	}
	if _, err := s.Finish(); err == nil {
		t.Fatal("Finish on zero-value Stream did not error")
	}
}
