package workload

import (
	"bytes"
	"reflect"
	"strings"
	"testing"

	"capscale/internal/hw"
)

func TestJSONRoundTrip(t *testing.T) {
	mx := getSmoke(t)
	var buf bytes.Buffer
	if err := mx.SaveJSON(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := LoadJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(back.Runs) != len(mx.Runs) {
		t.Fatalf("runs %d vs %d", len(back.Runs), len(mx.Runs))
	}
	if back.Cfg.Machine.Name != mx.Cfg.Machine.Name {
		t.Fatal("machine lost")
	}
	// Spot-check a cell and the aggregations still working.
	a := mx.Get(AlgStrassen, 256, 2)
	b := back.Get(AlgStrassen, 256, 2)
	if b == nil || b.Seconds != a.Seconds || b.PKGJoules != a.PKGJoules {
		t.Fatalf("cell mismatch: %+v vs %+v", b, a)
	}
	if got, want := back.AvgSlowdownAtSize(AlgStrassen, 256), mx.AvgSlowdownAtSize(AlgStrassen, 256); got != want {
		t.Fatalf("aggregation %v vs %v", got, want)
	}
	if len(b.BusyByKind) == 0 {
		t.Fatal("busy breakdown lost")
	}
}

func TestLoadJSONUnknownMachine(t *testing.T) {
	in := `{"machine":"Not A Machine","algorithms":[],"sizes":[],"threads":[],"runs":[]}`
	if _, err := LoadJSON(strings.NewReader(in)); err == nil {
		t.Fatal("unknown machine accepted")
	}
}

func TestLoadJSONGarbage(t *testing.T) {
	if _, err := LoadJSON(strings.NewReader("not json at all")); err == nil {
		t.Fatal("garbage accepted")
	}
}

func TestBusyByKindRecorded(t *testing.T) {
	mx := getSmoke(t)
	r := mx.Get(AlgStrassen, 256, 2)
	if r.BusyByKind["basemul"] <= 0 || r.BusyByKind["add"] <= 0 {
		t.Fatalf("breakdown %v", r.BusyByKind)
	}
	// The base multiplies dominate Strassen's busy time.
	if r.BusyByKind["basemul"] <= r.BusyByKind["add"] {
		t.Fatalf("basemul %v not above add %v", r.BusyByKind["basemul"], r.BusyByKind["add"])
	}
}

// The degradation fields survive a save/load round trip — a chaos
// sweep's partial results are faithfully archived.
func TestJSONRoundTripDegradationFields(t *testing.T) {
	mx := &Matrix{
		Cfg: Config{Machine: hw.HaswellE31225()},
		Runs: []Run{
			{Alg: AlgOpenBLAS, N: 128, Threads: 1, Seconds: 1, Attempts: 1},
			{
				Alg: AlgStrassen, N: 256, Threads: 2, Seconds: 2,
				Degraded:          true,
				QuarantinedPlanes: []string{"PKG", "DRAM"},
				MeasRetries:       3,
				MeasReadErrors:    5,
				MeasDrops:         2,
				Attempts:          2,
			},
			{Alg: AlgCAPS, N: 512, Threads: 4, Attempts: 2, Err: "cell aborted"},
		},
	}
	var buf bytes.Buffer
	if err := mx.SaveJSON(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := LoadJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(back.Runs, mx.Runs) {
		t.Fatalf("degradation fields lost:\n%+v\n%+v", back.Runs, mx.Runs)
	}
	if !back.Runs[2].Failed() {
		t.Fatal("failed cell not failed after round trip")
	}
}
