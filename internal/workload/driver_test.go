package workload

import (
	"math"
	"reflect"
	"runtime"
	"testing"

	"capscale/internal/matrix"
	"capscale/internal/sim"
	"capscale/internal/strassen"
)

func TestZeroDurationRunWatts(t *testing.T) {
	r := &Run{PKGJoules: 5, PP0Joules: 3, DRAMJoules: 1, Seconds: 0}
	for name, w := range map[string]float64{
		"PKG": r.WattsPKG(), "PP0": r.WattsPP0(),
		"DRAM": r.WattsDRAM(), "Total": r.WattsTotal(),
	} {
		if w != 0 {
			t.Errorf("Watts%s on a zero-duration run = %v, want 0", name, w)
		}
		if math.IsNaN(w) || math.IsInf(w, 0) {
			t.Errorf("Watts%s on a zero-duration run is %v", name, w)
		}
	}
}

// TestExecuteParallelBitIdenticalToSequential is the tentpole's
// correctness gate: the concurrent sweep must reproduce the sequential
// sweep bit for bit, every field of every Run, in the same order. It
// runs under -race in scripts/check.sh.
func TestExecuteParallelBitIdenticalToSequential(t *testing.T) {
	cfg := SmokeConfig()
	cfg.RecordTraces = true
	cfg.TraceSampleInterval = 1e-4
	cfg.NoCache = true // both arms must actually simulate

	seqCfg := cfg
	seqCfg.Parallelism = 1
	parCfg := cfg
	parCfg.Parallelism = 8

	seq := Execute(seqCfg)
	par := Execute(parCfg)

	if len(seq.Runs) != len(par.Runs) {
		t.Fatalf("run counts %d vs %d", len(seq.Runs), len(par.Runs))
	}
	for i := range seq.Runs {
		if !reflect.DeepEqual(seq.Runs[i], par.Runs[i]) {
			t.Fatalf("run %d differs:\nsequential %+v\nparallel   %+v",
				i, seq.Runs[i], par.Runs[i])
		}
	}
}

func TestExecuteNegativeParallelismPanics(t *testing.T) {
	cfg := SmokeConfig()
	cfg.Parallelism = -1
	defer func() {
		if recover() == nil {
			t.Fatal("negative parallelism did not panic")
		}
	}()
	Execute(cfg)
}

// TestShapeTreeMatchesDenseTree proves the shape-only build is not a
// different model: a tree built from shape-only operands simulates to
// exactly the same schedule and energy as one built from dense
// operands.
func TestShapeTreeMatchesDenseTree(t *testing.T) {
	m := SmokeConfig().Machine
	n, threads := 256, 2

	a, b, c := matrix.New(n, n), matrix.New(n, n), matrix.New(n, n)
	dense := strassen.Build(m, c, a, b, threads, strassen.Options{})
	shape := BuildTree(m, AlgStrassen, n, threads)

	rd := sim.Run(m, dense, sim.Config{Workers: threads, RecordTimeline: true})
	rs := sim.Run(m, shape, sim.Config{Workers: threads, RecordTimeline: true})

	if rd.Makespan != rs.Makespan || rd.Leaves != rs.Leaves ||
		rd.EnergyPKG != rs.EnergyPKG || rd.EnergyPP0 != rs.EnergyPP0 ||
		rd.EnergyDRAM != rs.EnergyDRAM || rd.RemoteBytes != rs.RemoteBytes {
		t.Fatalf("dense-built and shape-built trees diverge:\ndense %+v\nshape %+v", rd, rs)
	}
	if len(rd.Timeline) != len(rs.Timeline) {
		t.Fatalf("timeline lengths %d vs %d", len(rd.Timeline), len(rs.Timeline))
	}
	for i := range rd.Timeline {
		if rd.Timeline[i] != rs.Timeline[i] {
			t.Fatalf("segment %d differs", i)
		}
	}
}

// TestBuildTreeAllocatesNoOperandStorage pins the memory win: building
// the n=2048 Strassen tree must not allocate the ~100 MB of dense
// operand zeros the old path did.
func TestBuildTreeAllocatesNoOperandStorage(t *testing.T) {
	m := SmokeConfig().Machine
	var before, after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)
	root := BuildTree(m, AlgStrassen, 2048, 4)
	runtime.ReadMemStats(&after)
	if root == nil {
		t.Fatal("nil tree")
	}
	alloc := after.TotalAlloc - before.TotalAlloc
	// Three dense 2048x2048 operands alone are 100 MB; the tree itself
	// is a few MB of nodes. Anything near the dense figure means the
	// shape-only path regressed.
	if alloc > 32<<20 {
		t.Fatalf("BuildTree(n=2048) allocated %d MB, shape-only build regressed", alloc>>20)
	}
}

func TestRunMemoizationHitsAndIsolation(t *testing.T) {
	ResetRunCache()
	defer ResetRunCache()
	cfg := SmokeConfig()
	cfg.RecordTraces = true
	cfg.TraceSampleInterval = 1e-4

	r1 := ExecuteOne(cfg, AlgOpenBLAS, 128, 1)
	if got := runCacheLen(); got != 1 {
		t.Fatalf("cache holds %d entries after one cell, want 1", got)
	}
	r2 := ExecuteOne(cfg, AlgOpenBLAS, 128, 1)
	if got := runCacheLen(); got != 1 {
		t.Fatalf("cache holds %d entries after a repeat, want 1", got)
	}
	if !reflect.DeepEqual(r1, r2) {
		t.Fatalf("cached run differs from original:\n%+v\n%+v", r1, r2)
	}

	// Mutating what a caller got back must not poison later hits.
	r2.BusyByKind["poison"] = 1
	r2.Trace.Samples[0].PKG = -1
	r3 := ExecuteOne(cfg, AlgOpenBLAS, 128, 1)
	if _, leaked := r3.BusyByKind["poison"]; leaked {
		t.Fatal("map mutation leaked into the cache")
	}
	if r3.Trace.Samples[0].PKG == -1 {
		t.Fatal("trace mutation leaked into the cache")
	}
}

func TestRunMemoizationNoCacheBypasses(t *testing.T) {
	ResetRunCache()
	defer ResetRunCache()
	cfg := SmokeConfig()
	cfg.NoCache = true
	ExecuteOne(cfg, AlgOpenBLAS, 128, 1)
	if got := runCacheLen(); got != 0 {
		t.Fatalf("NoCache run populated the cache (%d entries)", got)
	}
}

func TestRunMemoizationKeysOnMachineAndSettings(t *testing.T) {
	ResetRunCache()
	defer ResetRunCache()
	cfg := SmokeConfig()
	base := ExecuteOne(cfg, AlgOpenBLAS, 128, 1)

	// A tweaked power coefficient is a different platform: the cache
	// must miss and the run must differ.
	tweaked := *cfg.Machine
	tweaked.Power.CoreDyn *= 2
	cfg2 := cfg
	cfg2.Machine = &tweaked
	hot := ExecuteOne(cfg2, AlgOpenBLAS, 128, 1)
	if got := runCacheLen(); got != 2 {
		t.Fatalf("cache holds %d entries across two machines, want 2", got)
	}
	if hot.PKGJoules <= base.PKGJoules {
		t.Fatalf("doubled CoreDyn did not raise PKG joules (%v vs %v)", hot.PKGJoules, base.PKGJoules)
	}

	// A different poll interval is a different measurement: new entry.
	cfg3 := cfg
	cfg3.PollInterval = DefaultPollInterval / 2
	ExecuteOne(cfg3, AlgOpenBLAS, 128, 1)
	if got := runCacheLen(); got != 3 {
		t.Fatalf("cache holds %d entries across two poll intervals, want 3", got)
	}

	// An explicitly-default poll interval shares the defaulted entry.
	cfg4 := cfg
	cfg4.PollInterval = DefaultPollInterval
	ExecuteOne(cfg4, AlgOpenBLAS, 128, 1)
	if got := runCacheLen(); got != 3 {
		t.Fatalf("explicit default interval added an entry (%d total)", got)
	}
}

func TestGetIndexAgreesWithLinearScan(t *testing.T) {
	mx := getSmoke(t)
	for _, alg := range mx.Cfg.Algorithms {
		for _, n := range mx.Cfg.Sizes {
			for _, p := range mx.Cfg.Threads {
				r := mx.Get(alg, n, p)
				if r == nil || r.Alg != alg || r.N != n || r.Threads != p {
					t.Fatalf("Get(%v,%d,%d) = %+v", alg, n, p, r)
				}
				// The pointer must land inside Runs, not a copy.
				found := false
				for i := range mx.Runs {
					if r == &mx.Runs[i] {
						found = true
						break
					}
				}
				if !found {
					t.Fatal("Get returned a pointer outside Runs")
				}
			}
		}
	}
	if mx.Get(AlgWinograd, 128, 1) != nil {
		t.Fatal("Get found an algorithm the smoke matrix never ran")
	}
}
