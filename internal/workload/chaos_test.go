package workload

import (
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"capscale/internal/faults"
)

// chaosConfig is the smoke matrix with an aggressive fault schedule:
// half the cells armed, with rates hot enough that short smoke runs
// still see dropouts and aborts.
func chaosConfig(seed int64) Config {
	cfg := SmokeConfig()
	cfg.NoCache = true
	// Smoke cells finish in well under a millisecond; poll fast enough
	// that every cell sees hundreds of counter reads, so fault windows
	// actually trigger.
	cfg.PollInterval = 1e-6
	sch := faults.DefaultSchedule(seed)
	sch.Profile.PlaneDropoutRate = 0.6
	sch.Profile.DropoutWindow = 4
	sch.Profile.CellAbortRate = 0.4
	sch.Profile.AbortWindow = 4
	cfg.Faults = sch
	return cfg
}

// The chaos gate: a fault-injected sweep completes without panicking,
// is deterministic per seed regardless of parallelism, flags every
// degraded cell, and leaves unarmed cells bit-identical to a clean
// sweep.
func TestChaosSweepInvariants(t *testing.T) {
	cfg := chaosConfig(7)
	cells := cfg.cells()

	armed := 0
	for _, c := range cells {
		if cfg.Faults.Armed(cfg.cellKey(c)) {
			armed++
		}
	}
	if frac := float64(armed) / float64(len(cells)); frac < 0.3 {
		t.Fatalf("schedule arms only %.0f%% of cells; the gate needs >= 30%%", frac*100)
	}

	cfg.Parallelism = 4
	mx := Execute(cfg) // must not panic
	if len(mx.Runs) != len(cells) {
		t.Fatalf("sweep incomplete: %d/%d cells", len(mx.Runs), len(cells))
	}

	// Deterministic per seed and independent of parallelism.
	seq := cfg
	seq.Parallelism = 1
	mx2 := Execute(seq)
	if !reflect.DeepEqual(mx.Runs, mx2.Runs) {
		t.Fatal("same-seed chaos sweeps differ between parallel and sequential execution")
	}

	// Every completed cell either reconciles or is flagged; failed
	// cells carry their error.
	clean := SmokeConfig()
	clean.NoCache = true
	clean.PollInterval = cfg.PollInterval
	ref := Execute(clean)
	sawDegraded, sawFailed := 0, 0
	for i := range mx.Runs {
		r := &mx.Runs[i]
		key := cfg.cellKey(cell{alg: r.Alg, n: r.N, threads: r.Threads, spec: -1})
		switch {
		case r.Failed():
			sawFailed++
			if r.Err == "" || r.Attempts == 0 {
				t.Fatalf("failed cell %s lacks error/attempts: %+v", key, r)
			}
			if cfg.Faults != nil && !cfg.Faults.Armed(key) {
				t.Fatalf("unarmed cell %s failed: %s", key, r.Err)
			}
		case r.Degraded:
			sawDegraded++
		default:
			// Completed and unflagged: the figures must be clean.
			if e := r.MeasurementAbsErr(); e > 0.01 {
				t.Fatalf("unflagged cell %s has abs err %v J", key, e)
			}
		}
		if !cfg.Faults.Armed(key) {
			// Containment bookkeeping aside (a contained cell records
			// its attempt count), the figures are bit-identical.
			norm := *r
			norm.Attempts = ref.Runs[i].Attempts
			if !reflect.DeepEqual(norm, ref.Runs[i]) {
				t.Fatalf("unarmed cell %s differs from the clean sweep:\n%+v\n%+v", key, *r, ref.Runs[i])
			}
		}
	}
	if sawDegraded+sawFailed == 0 {
		t.Fatal("aggressive chaos schedule degraded nothing — the gate is vacuous")
	}
	t.Logf("chaos sweep: %d cells, %d armed, %d degraded, %d failed",
		len(cells), armed, sawDegraded, sawFailed)
}

// The fault layer must leave the clean path untouched: the same config
// with and without the (nil) schedule field produces identical runs.
func TestNoFaultsBitIdentical(t *testing.T) {
	a := SmokeConfig()
	a.NoCache = true
	a.Sizes = []int{128}
	b := a
	b.Faults = nil // explicit
	mxA, mxB := Execute(a), Execute(b)
	if !reflect.DeepEqual(mxA.Runs, mxB.Runs) {
		t.Fatal("nil-faults sweep not bit-identical")
	}
}

func TestCheckpointResume(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "sweep.ck")

	cfg := SmokeConfig()
	cfg.NoCache = true
	cfg.Sizes = []int{128}
	cfg.CheckpointPath = path

	first := Execute(cfg)
	if first.RestoredCells() != 0 {
		t.Fatalf("fresh sweep restored %d cells", first.RestoredCells())
	}
	second := Execute(cfg)
	if got, want := second.RestoredCells(), len(first.Runs); got != want {
		t.Fatalf("resume restored %d cells, want %d", got, want)
	}
	for i := range second.Runs {
		if !second.Runs[i].Restored {
			t.Fatalf("cell %d not marked Restored", i)
		}
		// Restored figures equal the executed ones (modulo the
		// session-local Restored flag itself).
		a, b := first.Runs[i], second.Runs[i]
		b.Restored = false
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("restored cell %d differs:\n%+v\n%+v", i, a, b)
		}
	}
}

// A checkpoint written under one configuration must not satisfy
// another: the fingerprint invalidates stale journals.
func TestCheckpointFingerprintInvalidation(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "sweep.ck")

	cfg := SmokeConfig()
	cfg.NoCache = true
	cfg.Sizes = []int{128}
	cfg.CheckpointPath = path
	Execute(cfg)

	moved := cfg
	moved.PollInterval = 0.05 // different measurement settings
	mx := Execute(moved)
	if mx.RestoredCells() != 0 {
		t.Fatalf("stale checkpoint satisfied %d cells of a different config", mx.RestoredCells())
	}

	// And a fault-schedule change invalidates too.
	faulted := cfg
	faulted.Faults = faults.DefaultSchedule(3)
	mx2 := Execute(faulted)
	if mx2.RestoredCells() != 0 {
		t.Fatalf("clean checkpoint satisfied %d cells of a faulted sweep", mx2.RestoredCells())
	}
}

// Failed cells are not journaled: a resumed chaos sweep re-attempts
// exactly the cells that failed, and only those.
func TestCheckpointSkipsFailedCells(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "sweep.ck")

	cfg := chaosConfig(7)
	cfg.CheckpointPath = path
	cfg.MaxRetries = -1 // no retries: aborts become failed cells
	first := Execute(cfg)
	failed := len(first.FailedRuns())
	if failed == 0 {
		t.Skip("seed 7 produced no failed cells at this profile; invariant vacuous")
	}
	second := Execute(cfg)
	if got, want := second.RestoredCells(), len(first.Runs)-failed; got != want {
		t.Fatalf("resume restored %d cells, want %d (completed only)", got, want)
	}
	// Determinism: the re-attempted cells fail identically, so the
	// matrices agree cell for cell.
	for i := range second.Runs {
		a, b := first.Runs[i], second.Runs[i]
		b.Restored = false
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("cell %d differs after resume:\n%+v\n%+v", i, a, b)
		}
	}
}

// Traced sweeps serialize traces into the journal so SessionTrace
// works across a resume.
func TestCheckpointCarriesTraces(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "sweep.ck")

	cfg := SmokeConfig()
	cfg.NoCache = true
	cfg.Sizes = []int{128}
	cfg.RecordTraces = true
	cfg.TraceSampleInterval = 0.001
	cfg.CheckpointPath = path

	first := Execute(cfg)
	a := first.SessionTrace()
	second := Execute(cfg)
	if second.RestoredCells() != len(first.Runs) {
		t.Fatalf("traced resume restored %d/%d", second.RestoredCells(), len(first.Runs))
	}
	b := second.SessionTrace()
	if !reflect.DeepEqual(a, b) {
		t.Fatal("session trace differs across checkpoint resume")
	}
}

// A torn journal tail (crash mid-write) degrades to restoring the
// intact prefix.
func TestCheckpointTornTail(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "sweep.ck")

	cfg := SmokeConfig()
	cfg.NoCache = true
	cfg.Sizes = []int{128}
	cfg.CheckpointPath = path
	first := Execute(cfg)

	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Chop the last record in half.
	if err := os.WriteFile(path, data[:len(data)-40], 0o644); err != nil {
		t.Fatal(err)
	}
	second := Execute(cfg)
	if got := second.RestoredCells(); got == 0 || got >= len(first.Runs) {
		t.Fatalf("torn tail restored %d cells, want 1..%d", got, len(first.Runs)-1)
	}
	if !reflect.DeepEqual(stripRestored(first.Runs), stripRestored(second.Runs)) {
		t.Fatal("matrix differs after torn-tail resume")
	}
}

func stripRestored(runs []Run) []Run {
	out := append([]Run(nil), runs...)
	for i := range out {
		out[i].Restored = false
	}
	return out
}

// The run cache must never serve or store fault-armed cells.
func TestFaultsBypassRunCache(t *testing.T) {
	ResetRunCache()
	cfg := SmokeConfig()
	cfg.Sizes = []int{128}
	cfg.Threads = []int{1}
	cfg.Algorithms = []Algorithm{AlgOpenBLAS}
	Execute(cfg) // populates the cache
	if runCacheLen() == 0 {
		t.Fatal("clean sweep did not populate the cache")
	}
	before := runCacheLen()

	faulted := cfg
	faulted.Faults = faults.DefaultSchedule(1)
	faulted.Faults.CellFraction = 1
	Execute(faulted)
	if runCacheLen() != before {
		t.Fatalf("faulted sweep changed the cache: %d -> %d", before, runCacheLen())
	}
}

// DegradationSummary names every failed and degraded cell.
func TestDegradationSummary(t *testing.T) {
	mx := &Matrix{Runs: []Run{
		{Alg: AlgOpenBLAS, N: 128, Threads: 1},
		{Alg: AlgStrassen, N: 128, Threads: 2, Degraded: true, QuarantinedPlanes: []string{"PKG"}},
		{Alg: AlgCAPS, N: 256, Threads: 1, Attempts: 2, Err: "boom"},
	}}
	s := mx.DegradationSummary()
	for _, want := range []string{"FAILED", "boom", "degraded", "quarantined PKG", "1/3 cells degraded, 1 failed"} {
		if !strings.Contains(s, want) {
			t.Errorf("summary missing %q:\n%s", want, s)
		}
	}
	clean := &Matrix{Runs: []Run{{Alg: AlgOpenBLAS, N: 128, Threads: 1}}}
	if got := clean.DegradationSummary(); got != "" {
		t.Fatalf("clean matrix summary %q", got)
	}
}
