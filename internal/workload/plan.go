// Model-guided sweep planning: measure a stratified seed of cells, fit
// the energy-complexity model, and measure further only where the
// model is uncertain or where algorithms cross over — every other cell
// is emitted as a prediction flagged Run.Predicted.
package workload

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"capscale/internal/model"
	"capscale/internal/obs"
)

// PlanMode selects the sweep strategy.
type PlanMode int

const (
	// PlanExhaustive measures every cell (the default).
	PlanExhaustive PlanMode = iota
	// PlanGuided measures a stratified seed, fits the energy model, and
	// only measures cells the model is not confident about.
	PlanGuided
)

var planNames = [...]string{"exhaustive", "guided"}

func (p PlanMode) String() string {
	if p < 0 || int(p) >= len(planNames) {
		return fmt.Sprintf("PlanMode(%d)", int(p))
	}
	return planNames[p]
}

// PlanNames lists the accepted plan-mode spellings in order.
func PlanNames() []string { return append([]string(nil), planNames[:]...) }

// ParsePlan resolves a plan-mode name (case-insensitive).
func ParsePlan(name string) (PlanMode, error) {
	for i, n := range planNames {
		if strings.EqualFold(name, n) {
			return PlanMode(i), nil
		}
	}
	return 0, fmt.Errorf("unknown plan %q (valid: %s)", name, strings.Join(planNames[:], ", "))
}

const (
	// DefaultSeedFraction is the share of cells the guided plan
	// measures up front (grid corners first, padded evenly).
	DefaultSeedFraction = 0.25
	// DefaultConfidence is the widest acceptable ±2σ relative
	// prediction interval; cells above it get measured.
	DefaultConfidence = 0.15
	// maxPlannerRounds bounds the measure→refit loop; anything still
	// uncertain after the last round is measured outright.
	maxPlannerRounds = 3
	// maxMeasureFraction is the guided plan's hard measurement budget:
	// at most this share of the matrix is executed (the seed always
	// fits under it, and cells the model cannot predict at all are
	// exempt — correctness beats budget). Cells trimmed by the budget
	// are emitted as predictions whose PredRelCI records the remaining
	// uncertainty honestly.
	maxMeasureFraction = 1.0 / 3
)

// PlannerStats records what the guided planner did with the matrix.
type PlannerStats struct {
	// SeededCells were measured up front as the stratified training
	// seed (includes checkpoint restores).
	SeededCells int
	// MeasuredCells is every cell actually executed or restored,
	// seed and refinement rounds included.
	MeasuredCells int
	// PredictedCells were emitted from the fitted model without
	// executing.
	PredictedCells int
	// Rounds counts refinement rounds after the seed (fit → measure
	// uncertain cells → refit).
	Rounds int
}

// guided carries one guided sweep's working state.
type guided struct {
	cfg      Config
	cells    []cell
	terms    []model.Terms
	mx       *Matrix
	measured []bool
	ck       *checkpoint
	restored map[string]Run // measured checkpoint records
	predRest map[string]Run // predicted checkpoint records, tag-gated
}

// executeGuided runs the guided plan: seed → fit → refine → predict.
func executeGuided(cfg Config) *Matrix {
	g := &guided{cfg: cfg, cells: cfg.cells()}
	g.mx = &Matrix{Cfg: cfg, Runs: make([]Run, len(g.cells))}
	g.measured = make([]bool, len(g.cells))
	g.terms = make([]model.Terms, len(g.cells))
	for i, c := range g.cells {
		t, err := cellTerms(&cfg, c)
		if err != nil {
			panic(err.Error())
		}
		g.terms[i] = t
	}

	if cfg.CheckpointPath != "" {
		var err error
		if g.ck, g.restored, err = openCheckpoint(cfg); err != nil {
			panic(err.Error())
		}
		defer g.ck.close()
		// Predicted records only stand in for a prediction when the
		// refitted model still carries the same tag; they never count
		// as measurements.
		g.predRest = make(map[string]Run)
		for k, r := range g.restored {
			if r.Predicted {
				g.predRest[k] = r
				delete(g.restored, k)
			}
		}
	}

	var sweepSp obs.Span
	if obs.Enabled() {
		sweepSp = obs.StartOn(obs.Track{}, "workload.sweep.guided")
		sweepSp.ArgInt("cells", len(g.cells))
		defer sweepSp.End()
	}
	sweepsExecuted.Inc()

	seedFrac := cfg.SeedFraction
	if seedFrac <= 0 {
		seedFrac = DefaultSeedFraction
	}
	conf := cfg.Confidence
	if conf <= 0 {
		conf = DefaultConfidence
	}

	g.measure(seedIndices(&cfg, g.cells, seedFrac))
	g.mx.Planner.SeededCells = g.measuredCount()

	budget := int(math.Floor(maxMeasureFraction * float64(len(g.cells))))
	if budget < g.mx.Planner.SeededCells {
		budget = g.mx.Planner.SeededCells
	}

	mo := g.fit()
	for round := 0; mo != nil; round++ {
		must, wanted := g.uncertain(mo, conf)
		if allow := budget - g.measuredCount(); len(wanted) > allow {
			if allow < 0 {
				allow = 0
			}
			wanted = wanted[:allow]
		}
		needs := append(must, wanted...)
		if len(needs) == 0 {
			break
		}
		g.measure(needs)
		if round+1 >= maxPlannerRounds {
			break
		}
		g.mx.Planner.Rounds++
		mo = g.fit()
	}
	if mo == nil {
		// The model never became fittable (degenerate matrices):
		// degrade gracefully to an exhaustive sweep.
		all := make([]int, len(g.cells))
		for i := range all {
			all[i] = i
		}
		g.measure(all)
	}

	// Emit the remainder as predictions; any cell the final model
	// cannot answer is measured instead.
	var fallback []int
	for i := range g.cells {
		if g.measured[i] {
			continue
		}
		p, err := mo.Predict(g.terms[i])
		if err != nil {
			fallback = append(fallback, i)
			continue
		}
		key := g.cfg.cellKey(g.cells[i])
		if r, ok := g.predRest[key]; ok && r.ModelTag == mo.Tag() {
			r.Restored = true
			cellsRestored.Inc()
			g.mx.addRestored()
			g.mx.Runs[i] = r
		} else {
			run := predictedRun(&g.cfg, g.cells[i], g.terms[i], p, mo.Tag())
			if g.ck != nil {
				g.ck.record(key, &run)
			}
			g.mx.Runs[i] = run
		}
		if g.cfg.OnRun != nil {
			g.cfg.OnRun(key, &g.mx.Runs[i])
		}
		g.mx.Planner.PredictedCells++
	}
	g.measure(fallback)

	g.mx.Planner.MeasuredCells = g.measuredCount()
	g.mx.Model = mo
	return g.mx
}

func (g *guided) measuredCount() int {
	n := 0
	for _, m := range g.measured {
		if m {
			n++
		}
	}
	return n
}

// measure executes (or restores) the given cell indices across the
// driver pool, skipping ones already measured.
func (g *guided) measure(idx []int) {
	var todo []int
	for _, i := range idx {
		if !g.measured[i] {
			todo = append(todo, i)
			g.measured[i] = true
		}
	}
	if len(todo) == 0 {
		return
	}
	runPool(g.cfg.poolWorkers(len(todo)), len(todo), func(j int, tr obs.Track) {
		i := todo[j]
		c := g.cells[i]
		key := g.cfg.cellKey(c)
		if r, ok := g.restored[key]; ok {
			r.Restored = true
			cellsRestored.Inc()
			g.mx.addRestored()
			g.mx.Runs[i] = r
		} else if (g.cfg.Stop != nil && g.cfg.Stop()) || g.ck.interrupted() {
			// Stopped sweep (drain or lost lease): leave the cell
			// interrupted and unstreamed so a resume executes it.
			cellsSkipped.Inc()
			g.mx.Runs[i] = interruptedRun(&g.cfg, c)
			return
		} else {
			run := executeOne(g.cfg, c, tr)
			if g.ck != nil && !run.Failed() {
				g.ck.record(key, &run)
			}
			g.mx.Runs[i] = run
		}
		if g.cfg.OnRun != nil {
			g.cfg.OnRun(key, &g.mx.Runs[i])
		}
	})
}

// fit builds the model from every measured, completed cell. Returns
// nil while the observations cannot support a fit yet.
func (g *guided) fit() *model.Model {
	var obsv []model.Obs
	for i := range g.cells {
		if !g.measured[i] {
			continue
		}
		r := &g.mx.Runs[i]
		if r.Failed() {
			continue
		}
		obsv = append(obsv, model.Obs{
			Key:     g.cfg.cellKey(g.cells[i]),
			Terms:   g.terms[i],
			Seconds: r.Seconds,
			PKGJ:    r.PKGJoules,
			PP0J:    r.PP0Joules,
			DRAMJ:   r.DRAMJoules,
			NICJ:    r.NICJoules,
			SwitchJ: r.SwitchJoules,
		})
	}
	mo, err := model.Fit(g.cfg.Machine, obsv)
	if err != nil {
		return nil
	}
	return mo
}

// uncertain splits the unmeasured cells the model cannot yet answer
// confidently into must-measure (no prediction possible at all —
// budget-exempt) and wanted (prediction interval above the confidence
// bound or sitting on an algorithm-crossover frontier), the latter in
// priority order: widest interval first, frontier cells after.
func (g *guided) uncertain(mo *model.Model, conf float64) (must, wanted []int) {
	type wide struct {
		i  int
		ci float64
	}
	var wides []wide
	preds := make(map[int]model.Prediction)
	for i := range g.cells {
		if g.measured[i] {
			continue
		}
		p, err := mo.Predict(g.terms[i])
		if err != nil {
			must = append(must, i)
			continue
		}
		if p.RelCI > conf {
			wides = append(wides, wide{i: i, ci: p.RelCI})
			continue
		}
		preds[i] = p
	}
	sort.Slice(wides, func(a, b int) bool {
		if wides[a].ci != wides[b].ci {
			return wides[a].ci > wides[b].ci
		}
		return wides[a].i < wides[b].i
	})
	for _, w := range wides {
		wanted = append(wanted, w.i)
	}

	straddle := make(map[int]bool)
	g.frontierStraddles(preds, straddle)
	var sidx []int
	for i := range straddle {
		sidx = append(sidx, i)
	}
	sort.Ints(sidx)
	wanted = append(wanted, sidx...)
	return must, wanted
}

// frontierKey groups cells that differ only by algorithm — the axis
// the paper's crossover plots rank.
type frontierKey struct{ n, threads, spec int }

// maxStraddleCellsPerRound bounds how many crossover-frontier cells a
// refinement round measures (most ambiguous first). Near-ties between
// algorithms can blanket a sweep; the cap keeps the guided plan's
// budget advantage while still spending measurements where ordering is
// least certain.
const maxStraddleCellsPerRound = 4

// frontierStraddles marks unmeasured cells whose predicted
// energy-proportionality sits within the combined confidence band of
// the best competing algorithm at the same coordinates: the model
// cannot say which one wins there, so the frontier cell gets measured.
func (g *guided) frontierStraddles(preds map[int]model.Prediction, need map[int]bool) {
	groups := make(map[frontierKey][]int)
	for i, c := range g.cells {
		k := frontierKey{n: c.n, threads: c.threads, spec: c.spec}
		groups[k] = append(groups[k], i)
	}
	type pt struct {
		i        int
		ep, ci   float64
		measured bool
	}
	// One candidate per ambiguous group: the less certain cell of the
	// winner/runner-up pair, ranked by how ambiguous the ordering is.
	type candidate struct {
		i         int
		ambiguity float64 // gap/band; smaller = less separable
	}
	var cands []candidate
	for _, idx := range groups {
		if len(idx) < 2 {
			continue
		}
		var pts []pt
		for _, i := range idx {
			if g.measured[i] {
				r := &g.mx.Runs[i]
				if r.Failed() || r.Seconds <= 0 {
					continue
				}
				pts = append(pts, pt{i: i, ep: (r.PKGJoules + r.DRAMJoules) / (r.Seconds * r.Seconds), measured: true})
			} else if p, ok := preds[i]; ok && p.Seconds > 0 {
				pts = append(pts, pt{i: i, ep: (p.PKGJ + p.DRAMJ) / (p.Seconds * p.Seconds), ci: p.RelCI})
			}
		}
		if len(pts) < 2 {
			continue
		}
		sort.Slice(pts, func(a, b int) bool { return pts[a].ep < pts[b].ep })
		// Only the winner matters for the crossover plots: resolve the
		// best vs runner-up when the model cannot separate them.
		a, b := pts[0], pts[1]
		band := (a.ci + b.ci) * a.ep
		if band <= 0 || b.ep-a.ep >= band {
			continue
		}
		pick := a
		if !b.measured && (a.measured || b.ci > a.ci) {
			pick = b
		}
		if pick.measured {
			continue
		}
		cands = append(cands, candidate{i: pick.i, ambiguity: (b.ep - a.ep) / band})
	}
	sort.Slice(cands, func(x, y int) bool {
		if cands[x].ambiguity != cands[y].ambiguity {
			return cands[x].ambiguity < cands[y].ambiguity
		}
		return cands[x].i < cands[y].i
	})
	for k := 0; k < len(cands) && k < maxStraddleCellsPerRound; k++ {
		need[cands[k].i] = true
	}
}

// seedIndices picks the stratified training seed: per algorithm, the
// four grid corners (extreme size × extreme thread count or cluster),
// padded evenly across the remaining cells up to the seed fraction.
func seedIndices(cfg *Config, cells []cell, frac float64) []int {
	target := int(math.Ceil(frac * float64(len(cells))))
	if target < 1 {
		target = 1
	}
	picked := make(map[int]bool)
	axis := func(c cell) int {
		if c.spec >= 0 {
			return c.spec
		}
		return c.threads
	}
	byAlg := make(map[Algorithm][]int)
	for i, c := range cells {
		byAlg[c.alg] = append(byAlg[c.alg], i)
	}
	done := make(map[Algorithm]bool)
	for _, alg := range cfg.Algorithms {
		idx := byAlg[alg]
		if len(idx) == 0 || done[alg] {
			continue
		}
		done[alg] = true
		minN, maxN := cells[idx[0]].n, cells[idx[0]].n
		minA, maxA := axis(cells[idx[0]]), axis(cells[idx[0]])
		for _, i := range idx {
			c := cells[i]
			if c.n < minN {
				minN = c.n
			}
			if c.n > maxN {
				maxN = c.n
			}
			if a := axis(c); a < minA {
				minA = a
			} else if a > maxA {
				maxA = a
			}
		}
		for _, i := range idx {
			c := cells[i]
			if (c.n == minN || c.n == maxN) && (axis(c) == minA || axis(c) == maxA) {
				picked[i] = true
			}
		}
	}
	if len(picked) < target {
		var rest []int
		for i := range cells {
			if !picked[i] {
				rest = append(rest, i)
			}
		}
		need := target - len(picked)
		if need > len(rest) {
			need = len(rest)
		}
		for k := 0; k < need; k++ {
			picked[rest[k*len(rest)/need]] = true
		}
	}
	out := make([]int, 0, len(picked))
	for i := range picked {
		out = append(out, i)
	}
	sort.Ints(out)
	return out
}

// predictedRun synthesizes the Run record for a cell answered by the
// model instead of executed. Joule and second figures are the model's;
// structural facts (leaves, traffic, rank fit) come from the analytic
// terms, and the Predicted/PredRelCI/ModelTag triple marks provenance.
func predictedRun(cfg *Config, c cell, t model.Terms, p model.Prediction, tag string) Run {
	run := Run{
		Alg:        c.alg,
		N:          c.n,
		Threads:    c.threads,
		Seconds:    p.Seconds,
		PKGJoules:  p.PKGJ,
		PP0Joules:  p.PP0J,
		DRAMJoules: p.DRAMJ,
		Leaves:     int(t.Leaves),
		Predicted:  true,
		PredRelCI:  p.RelCI,
		ModelTag:   tag,
	}
	cores := float64(c.threads)
	if cs := cfg.clusterOf(c); cs != nil {
		ranks, repl := fitRanks(c.alg, c.n, cs)
		run.Cluster = cs.String()
		run.Ranks = ranks
		run.Replication = repl
		run.Threads = cfg.Machine.Cores
		run.WireBytes = t.WireBytes
		run.Messages = int(math.Round(t.Messages))
		run.CritCommSeconds = t.CommSeconds
		run.NICJoules = p.NICJ
		run.SwitchJoules = p.SwitchJ
		// Distributed CompSeconds is per rank; every rank spreads it
		// over the node's cores.
		cores = float64(cfg.Machine.Cores)
	}
	if p.Seconds > 0 && cores > 0 {
		u := t.CompSeconds / (cores * p.Seconds)
		if u > 1 {
			u = 1
		}
		run.Utilization = u
	}
	return run
}
