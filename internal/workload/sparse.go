// Sparse workloads in the sweep matrix: AlgSpMV and AlgCG run over a
// canonical SPD banded system so every cell at a given size shares the
// same nonzero structure and the nnz-driven work terms are
// reproducible across sessions.
package workload

import (
	"math/rand"
	"sync"

	"capscale/internal/cg"
	"capscale/internal/hw"
	"capscale/internal/sparse"
	"capscale/internal/task"
)

const (
	// sparseHalfBand is the half bandwidth of the canonical SPD system:
	// ~2·sparseHalfBand+1 nonzeros per row, enough to be
	// bandwidth-bound without drowning the vector traffic.
	sparseHalfBand = 8
	// sparseSeed pins the canonical system's structure and values.
	sparseSeed = 42
	// spmvIterations repeats y = A·x per cell, as a solver inner loop
	// does, so power averages over a realistic duration.
	spmvIterations = 50
	// cgIterations bounds the CG energy tree's iteration count.
	cgIterations = 20
)

// sparseSystems caches the canonical CSR per dimension; the matrices
// are shape-only trees' backing structure and are shared read-only
// across cells and driver workers.
var sparseSystems sync.Map // int -> *sparse.CSR

// sparseSystem returns the canonical n×n SPD banded system.
func sparseSystem(n int) *sparse.CSR {
	if v, ok := sparseSystems.Load(n); ok {
		return v.(*sparse.CSR)
	}
	a := sparse.SPDBanded(rand.New(rand.NewSource(sparseSeed)), n, sparseHalfBand).ToCSR()
	actual, _ := sparseSystems.LoadOrStore(n, a)
	return actual.(*sparse.CSR)
}

// buildSparseTree builds the task tree for one sparse cell. SpMV is
// the row-partitioned iterated y = A·x; CG is the full
// conjugate-gradient iteration loop (SpMV plus vector updates).
func buildSparseTree(m *hw.Machine, alg Algorithm, n, threads int) *task.Node {
	a := sparseSystem(n)
	switch alg {
	case AlgSpMV:
		return sparse.BuildSpMV(m, a, sparse.FormatCSR, sparse.Options{
			Workers:    threads,
			Iterations: spmvIterations,
		}).Root
	case AlgCG:
		return cg.BuildEnergyTree(m, a, sparse.FormatCSR, threads, cgIterations)
	default:
		panic("workload: buildSparseTree on dense algorithm " + alg.String())
	}
}
