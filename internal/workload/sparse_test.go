package workload

import (
	"testing"
)

func TestSparseAlgorithmsInSweep(t *testing.T) {
	cfg := SmokeConfig()
	cfg.Algorithms = []Algorithm{AlgSpMV, AlgCG}
	cfg.Sizes = []int{256, 512}
	cfg.Threads = []int{1, 2}
	mx := Execute(cfg)
	if len(mx.Runs) != 8 {
		t.Fatalf("%d runs", len(mx.Runs))
	}
	for i := range mx.Runs {
		r := &mx.Runs[i]
		if r.Seconds <= 0 || r.PKGJoules <= 0 || r.DRAMJoules <= 0 {
			t.Fatalf("sparse cell %s/%d/%d empty: %+v", r.Alg, r.N, r.Threads, r)
		}
		if r.Leaves == 0 {
			t.Fatalf("sparse cell %s/%d/%d scheduled no leaves", r.Alg, r.N, r.Threads)
		}
	}
	// The sparse workloads are bandwidth-bound: DRAM traffic per flop
	// must dwarf the dense cells'. Compare SpMV with a classic GEMM
	// cell at the same size.
	spmv := mx.Get(AlgSpMV, 256, 1)
	dense := ExecuteOne(SmokeConfig(), AlgOpenBLAS, 256, 1)
	if spmv == nil {
		t.Fatal("missing SpMV run")
	}
	spmvRatio := spmv.DRAMJoules / spmv.PKGJoules
	denseRatio := dense.DRAMJoules / dense.PKGJoules
	if spmvRatio <= denseRatio {
		t.Fatalf("SpMV DRAM/PKG ratio %.3f not above dense %.3f — memory term looks wrong", spmvRatio, denseRatio)
	}
}

func TestParseAlgorithm(t *testing.T) {
	cases := map[string]Algorithm{
		"openblas": AlgOpenBLAS,
		"SpMV":     AlgSpMV,
		"spmv":     AlgSpMV,
		"cg":       AlgCG,
		"2.5D":     Alg25D,
		"dcaps":    AlgDistCAPS,
	}
	for name, want := range cases {
		got, err := ParseAlgorithm(name)
		if err != nil || got != want {
			t.Fatalf("ParseAlgorithm(%q) = %v, %v; want %v", name, got, err, want)
		}
	}
	if _, err := ParseAlgorithm("nope"); err == nil {
		t.Fatal("bad algorithm accepted")
	} else if want := "SpMV"; !containsStr(err.Error(), want) {
		t.Fatalf("error %q does not list valid names", err)
	}
	if !AlgSpMV.Sparse() || !AlgCG.Sparse() || AlgOpenBLAS.Sparse() || AlgSUMMA.Sparse() {
		t.Fatal("Sparse() classification")
	}
	if AlgSpMV.Distributed() || AlgCG.Distributed() {
		t.Fatal("sparse algorithms classified distributed")
	}
}

func containsStr(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}
