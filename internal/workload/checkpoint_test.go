package workload

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"capscale/internal/obs"
)

// ckTestConfig is a 4-cell sweep small enough to journal repeatedly.
func ckTestConfig(path string) Config {
	cfg := SmokeConfig()
	cfg.NoCache = true
	cfg.Sizes = []int{64, 128}
	cfg.Threads = []int{1}
	cfg.Algorithms = []Algorithm{AlgOpenBLAS, AlgStrassen}
	cfg.CheckpointPath = path
	return cfg
}

// TestCheckpointRewriteCrashSafe pins the truncate-before-rewrite fix:
// a sweep killed at any instant inside the journal compaction window
// (after the old journal was read, before the new one is complete)
// must lose no previously completed cell. The old implementation
// os.Create'd the live journal first — a crash there lost everything.
func TestCheckpointRewriteCrashSafe(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "sweep.ck")
	cfg := ckTestConfig(path)

	first := Execute(cfg)
	cells := len(first.Runs)

	// Kill the process (simulated as a panic) in the rewrite window.
	ckRewriteCrash = func() { panic("simulated kill mid-rewrite") }
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("crash hook did not fire")
			}
		}()
		Execute(cfg)
	}()
	ckRewriteCrash = nil

	// The live journal must still restore every completed cell.
	resumed := Execute(cfg)
	if got := resumed.RestoredCells(); got != cells {
		t.Fatalf("after mid-rewrite crash, resume restored %d cells, want %d", got, cells)
	}
}

// TestCheckpointRewriteLeavesNoTempDebris: the happy path renames its
// temp file over the journal; nothing else may accumulate in the
// directory across repeated opens.
func TestCheckpointRewriteLeavesNoTempDebris(t *testing.T) {
	dir := t.TempDir()
	cfg := ckTestConfig(filepath.Join(dir, "sweep.ck"))
	Execute(cfg)
	Execute(cfg)
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 || entries[0].Name() != "sweep.ck" {
		names := make([]string, len(entries))
		for i, e := range entries {
			names[i] = e.Name()
		}
		t.Fatalf("journal directory holds %v, want only sweep.ck", names)
	}
}

// TestCheckpointOversizedRecordSkipped pins the scanner fix: a record
// over the line cap must be skipped with a warning — not treated as
// end-of-journal, which silently discarded every record after it.
func TestCheckpointOversizedRecordSkipped(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "sweep.ck")
	cfg := ckTestConfig(path)
	first := Execute(cfg)
	cells := len(first.Runs)

	// Splice an oversized junk line between the first record and the
	// rest of the journal.
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	lines := bytes.SplitAfter(raw, []byte("\n"))
	if len(lines) < cells+1 {
		t.Fatalf("journal has %d lines, want >= %d", len(lines), cells+1)
	}
	prev := ckMaxRecordBytes
	ckMaxRecordBytes = 4096
	defer func() { ckMaxRecordBytes = prev }()
	var spliced bytes.Buffer
	spliced.Write(lines[0]) // header
	spliced.Write(lines[1]) // first record
	fmt.Fprintf(&spliced, "{\"key\":\"oversized\",\"junk\":%q}\n", strings.Repeat("x", 2*ckMaxRecordBytes))
	for _, l := range lines[2:] {
		spliced.Write(l)
	}
	if err := os.WriteFile(path, spliced.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}

	over0 := obs.GetCounter("workload.checkpoint.oversized").Value()
	resumed := Execute(cfg)
	if got := resumed.RestoredCells(); got != cells {
		t.Fatalf("oversized record dropped the journal tail: restored %d cells, want %d", got, cells)
	}
	if d := obs.GetCounter("workload.checkpoint.oversized").Value() - over0; d != 1 {
		t.Fatalf("oversized counter advanced by %d, want 1", d)
	}
}

// TestConcurrentExecuteSharedCheckpointPath: two concurrent sweeps
// journaling to one path must not interleave torn records — the
// second open fails cleanly while the first holds the journal, and
// the journal stays complete and resumable throughout.
func TestConcurrentExecuteSharedCheckpointPath(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "sweep.ck")
	cfg := ckTestConfig(path)

	firstCell := make(chan struct{}) // closed once sweep A has journaled a cell
	release := make(chan struct{})   // holds sweep A open until B has collided
	var once sync.Once
	cfgA := cfg
	cfgA.Parallelism = 1
	cfgA.OnRun = func(string, *Run) {
		once.Do(func() { close(firstCell) })
		<-release
	}

	done := make(chan *Matrix, 1)
	go func() {
		done <- Execute(cfgA)
	}()
	<-firstCell

	// Sweep B: same journal path while A holds it → a clean error
	// (surfaced as Execute's panic), not a torn journal.
	func() {
		defer func() {
			p := recover()
			if p == nil {
				t.Error("concurrent Execute on a held checkpoint path did not fail")
				return
			}
			if msg := fmt.Sprint(p); !strings.Contains(msg, "already in use") {
				t.Errorf("unexpected panic message: %v", msg)
			}
		}()
		Execute(cfg)
	}()

	close(release)
	mxA := <-done
	if len(mxA.FailedRuns()) != 0 {
		t.Fatal("sweep A failed cells")
	}

	// The journal is whole: a resume restores every cell.
	resumed := Execute(cfg)
	if got, want := resumed.RestoredCells(), len(mxA.Runs); got != want {
		t.Fatalf("journal damaged by the collision: restored %d, want %d", got, want)
	}
}

// TestRunRecordRoundTrip: the exported record marshaling matches what
// the journal writes, byte for byte, and parses back.
func TestRunRecordRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "sweep.ck")
	cfg := ckTestConfig(path)
	mx := Execute(cfg)

	var replay bytes.Buffer
	n, err := ReplayJournal(path, &replay)
	if err != nil {
		t.Fatal(err)
	}
	if n != len(mx.Runs) {
		t.Fatalf("replayed %d records, want %d", n, len(mx.Runs))
	}
	lines := bytes.Split(bytes.TrimSuffix(replay.Bytes(), []byte("\n")), []byte("\n"))
	keys := make(map[string]bool)
	for _, line := range lines {
		key, run, err := UnmarshalRunRecord(line)
		if err != nil {
			t.Fatal(err)
		}
		keys[key] = true
		remarshal, err := MarshalRunRecord(key, &run)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(line, remarshal) {
			t.Fatalf("record for %s does not round-trip:\n%s\n%s", key, line, remarshal)
		}
	}
	for i := range mx.Runs {
		r := &mx.Runs[i]
		if key := cfg.cellKey(cell{alg: r.Alg, n: r.N, threads: r.Threads, spec: -1}); !keys[key] {
			t.Fatalf("journal replay misses cell %s", key)
		}
	}
}
