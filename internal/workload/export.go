package workload

import (
	"fmt"
	"io"

	"capscale/internal/obs"
	"capscale/internal/trace"
)

// Chrome trace-event (Perfetto-loadable) export: the observability
// window into a run the paper's Figs. 3–6 opened with a chart
// recorder. The exported file merges two timebases as two trace
// processes — the simulated machine in virtual time (one track per
// worker from the recorded schedule, one counter track per RAPL
// plane from the power trace) and the experiment driver in wall time
// (the obs span collector: one track per driver worker, cells
// annotated with their cache verdict). Load the file at
// https://ui.perfetto.dev or chrome://tracing.

// Trace process ids. Perfetto groups tracks by process; the simulated
// machine and the wall-clock driver get one each.
const (
	simPID    = 1
	driverPID = 2
)

// addRunProcess emits one run's worker tracks and RAPL counter tracks
// as trace process pid.
func addRunProcess(b *obs.TraceBuilder, r *Run, pid int) {
	b.ProcessName(pid, fmt.Sprintf("sim %s n=%d p=%d (virtual time)", r.Alg, r.N, r.Threads))
	for w := 0; w < r.Threads; w++ {
		b.ThreadName(pid, w, fmt.Sprintf("worker %d", w))
	}
	for _, ls := range r.Schedule {
		name := ls.Label
		if name == "" {
			name = ls.Kind.String()
		}
		b.Complete(pid, ls.Worker, name, ls.Start, ls.End-ls.Start,
			map[string]any{"kind": ls.Kind.String()})
	}
	addPowerCounters(b, r.Trace, pid, 0)
}

// addPowerCounters emits one counter track per RAPL plane from a power
// trace, shifted by offset seconds (for session concatenation).
func addPowerCounters(b *obs.TraceBuilder, tr *trace.Trace, pid int, offset float64) {
	if tr == nil {
		return
	}
	for _, s := range tr.Samples {
		t := s.T + offset
		b.Counter(pid, "PKG W", t, map[string]float64{"W": s.PKG})
		b.Counter(pid, "PP0 W", t, map[string]float64{"W": s.PP0})
		b.Counter(pid, "DRAM W", t, map[string]float64{"W": s.DRAM})
	}
}

// WriteRunChromeTrace exports a single run — executed with
// Config.RecordSchedule and Config.RecordTraces — plus the driver's
// span collector (nil to omit) as Chrome trace-event JSON.
func WriteRunChromeTrace(w io.Writer, r *Run, spans *obs.Collector) error {
	if len(r.Schedule) == 0 && r.Trace == nil {
		return fmt.Errorf("workload: run has neither schedule nor trace; execute with RecordSchedule/RecordTraces")
	}
	b := obs.NewTraceBuilder()
	addRunProcess(b, r, simPID)
	b.AddCollector(spans, driverPID, "experiment driver (wall time)")
	return b.WriteJSON(w)
}

// WriteMatrixChromeTrace exports a whole sweep — executed with
// Config.RecordTraces — as one session in virtual time: a "runs"
// track with one span per cell, the concatenated RAPL counter tracks
// with the configured quiesce gaps (the paper's session power log),
// and the driver's wall-clock spans (nil to omit).
func WriteMatrixChromeTrace(w io.Writer, mx *Matrix, spans *obs.Collector) error {
	b := obs.NewTraceBuilder()
	b.ProcessName(simPID, fmt.Sprintf("power session on %q (virtual time)", mx.Cfg.Machine.Name))
	b.ThreadName(simPID, 0, "runs")
	offset := 0.0
	for i := range mx.Runs {
		r := &mx.Runs[i]
		if r.Trace == nil {
			return fmt.Errorf("workload: run %v n=%d p=%d has no trace; execute with RecordTraces", r.Alg, r.N, r.Threads)
		}
		if i > 0 {
			offset += mx.Cfg.QuiesceSeconds
		}
		d := r.Trace.Duration()
		b.Complete(simPID, 0, fmt.Sprintf("%s n=%d p=%d", r.Alg, r.N, r.Threads), offset, d,
			map[string]any{
				"seconds": r.Seconds,
				"watts":   r.WattsTotal(),
				"ep":      r.EP(),
			})
		base := 0.0
		if len(r.Trace.Samples) > 0 {
			base = r.Trace.Samples[0].T
		}
		addPowerCounters(b, r.Trace, simPID, offset-base)
		offset += d
	}
	b.AddCollector(spans, driverPID, "experiment driver (wall time)")
	return b.WriteJSON(w)
}
