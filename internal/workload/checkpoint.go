package workload

import (
	"bufio"
	"encoding/json"
	"fmt"
	"hash/fnv"
	"os"
	"sync"

	"capscale/internal/model"
	"capscale/internal/trace"
)

// Sweep checkpointing: with Config.CheckpointPath set, Execute
// journals every completed cell to a JSONL file as it finishes, and a
// later Execute with the same configuration restores those cells
// instead of re-simulating them. The journal survives a killed or
// crashed sweep because records are appended (and flushed) one cell
// at a time — exactly the cells that completed are exactly the cells
// restored.
//
// File format: one JSON object per line. The first line is a header
// carrying a fingerprint of everything that determines cell results —
// machine, matrix coordinates, measurement settings, ablations and
// the fault schedule. A journal whose fingerprint does not match the
// current configuration is discarded wholesale: resuming cells
// produced under a different configuration would silently mix
// incomparable results. Subsequent lines are cell records; duplicate
// keys keep the last record (a cell journaled by an earlier partial
// sweep and re-journaled by a later one agrees anyway — the simulator
// is deterministic). Failed cells are never journaled, so a resumed
// sweep retries them.
//
// Traces ride along in the record when Config.RecordTraces is set, so
// a resumed traced sweep can still assemble its SessionTrace; a
// record without a trace does not satisfy a traced sweep and is
// re-run instead of restored.

// ckVersion guards the journal layout.
const ckVersion = 1

type ckHeader struct {
	Version     int    `json:"version"`
	Fingerprint string `json:"fingerprint"`
}

type ckRecord struct {
	Key   string       `json:"key"`
	Run   runJSON      `json:"run"`
	Trace *trace.Trace `json:"trace,omitempty"`
}

// checkpoint is an open sweep journal. record is safe for concurrent
// use by the driver's workers.
type checkpoint struct {
	mu   sync.Mutex
	f    *os.File
	path string
	keep bool // RecordTraces: records must carry traces
}

// checkpointFingerprint folds every result-determining configuration
// field into the header fingerprint.
func checkpointFingerprint(cfg Config) string {
	h := fnv.New64a()
	fmt.Fprintf(h, "%x|", machineFingerprint(cfg.Machine))
	for _, a := range cfg.Algorithms {
		fmt.Fprintf(h, "a%d|", int(a))
	}
	for _, n := range cfg.Sizes {
		fmt.Fprintf(h, "n%d|", n)
	}
	for _, p := range cfg.Threads {
		fmt.Fprintf(h, "p%d|", p)
	}
	for i := range cfg.Clusters {
		fmt.Fprintf(h, "c%x|", clusterFingerprint(&cfg.Clusters[i]))
	}
	interval := cfg.PollInterval
	if interval <= 0 {
		interval = DefaultPollInterval
	}
	fmt.Fprintf(h, "%g|%t|%t|%g|%t|%t|%g|%d|%x",
		cfg.QuiesceSeconds, cfg.RecordTraces, cfg.RecordSchedule, cfg.TraceSampleInterval,
		cfg.DisableAffinity, cfg.DisableContention, interval, cfg.MaxRetries,
		cfg.Faults.Fingerprint())
	// Planner coordinates: a guided journal (whose predicted records
	// depend on the seed, confidence and model version) must not be
	// resumed by an exhaustive sweep or a different planner setup.
	fmt.Fprintf(h, "|plan%d|%g|%g|mv%d", int(cfg.Plan), cfg.SeedFraction, cfg.Confidence, model.Version)
	return fmt.Sprintf("%016x", h.Sum64())
}

// openCheckpoint loads any resumable cells from cfg.CheckpointPath and
// returns the open journal plus the restored runs by cell key. A
// missing file, a stale fingerprint, or a corrupt tail (a record cut
// mid-write by a crash) all degrade to "restore what is readable" —
// never to a failed sweep. The journal is rewritten on open so stale
// headers, duplicate records and torn tails do not accumulate.
func openCheckpoint(cfg Config) (*checkpoint, map[string]Run, error) {
	fp := checkpointFingerprint(cfg)
	restored := loadCheckpoint(cfg, fp)

	f, err := os.Create(cfg.CheckpointPath)
	if err != nil {
		return nil, nil, fmt.Errorf("workload: checkpoint: %w", err)
	}
	ck := &checkpoint{f: f, path: cfg.CheckpointPath, keep: cfg.RecordTraces}
	hdr, _ := json.Marshal(ckHeader{Version: ckVersion, Fingerprint: fp})
	if _, err := fmt.Fprintf(f, "%s\n", hdr); err != nil {
		f.Close()
		return nil, nil, fmt.Errorf("workload: checkpoint: %w", err)
	}
	// Re-journal the restored cells so the rewritten file is complete
	// on its own.
	for key := range restored {
		r := restored[key]
		ck.record(key, &r)
	}
	return ck, restored, nil
}

// loadCheckpoint reads the resumable cells out of an existing journal,
// or nil when there is none (or it belongs to a different
// configuration).
func loadCheckpoint(cfg Config, fingerprint string) map[string]Run {
	f, err := os.Open(cfg.CheckpointPath)
	if err != nil {
		return nil
	}
	defer f.Close()

	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 64*1024), 64*1024*1024) // traced records are large
	if !sc.Scan() {
		return nil
	}
	var hdr ckHeader
	if err := json.Unmarshal(sc.Bytes(), &hdr); err != nil ||
		hdr.Version != ckVersion || hdr.Fingerprint != fingerprint {
		return nil
	}
	restored := make(map[string]Run)
	for sc.Scan() {
		var rec ckRecord
		if err := json.Unmarshal(sc.Bytes(), &rec); err != nil {
			// A torn tail from a crashed sweep; everything before it is
			// intact and restorable.
			break
		}
		if rec.Run.Err != "" {
			continue // defensive: failed cells are not resumable
		}
		if cfg.RecordTraces && rec.Trace == nil {
			continue // a traced sweep cannot restore an untraced record
		}
		run := runFromJSON(&rec.Run)
		if !cfg.RecordTraces {
			rec.Trace = nil
		}
		run.Trace = rec.Trace
		restored[rec.Key] = run
	}
	if len(restored) == 0 {
		return nil
	}
	return restored
}

// record journals one completed cell and flushes it to the OS, so the
// record survives the process dying right afterwards.
func (ck *checkpoint) record(key string, r *Run) {
	rec := ckRecord{Key: key, Run: runToJSON(r)}
	if ck.keep {
		rec.Trace = r.Trace
	}
	line, err := json.Marshal(rec)
	if err != nil {
		return // unserializable cells are simply not resumable
	}
	ck.mu.Lock()
	defer ck.mu.Unlock()
	if ck.f == nil {
		return
	}
	fmt.Fprintf(ck.f, "%s\n", line)
	ck.f.Sync()
}

// close closes the journal file; records after close are dropped.
func (ck *checkpoint) close() {
	ck.mu.Lock()
	defer ck.mu.Unlock()
	if ck.f != nil {
		ck.f.Close()
		ck.f = nil
	}
}
