package workload

import (
	"bufio"
	"encoding/json"
	"fmt"
	"hash/fnv"
	"io"
	"os"
	"path/filepath"
	"sync"

	"capscale/internal/model"
	"capscale/internal/obs"
	"capscale/internal/trace"
)

// Sweep checkpointing: with Config.CheckpointPath set, Execute
// journals every completed cell to a JSONL file as it finishes, and a
// later Execute with the same configuration restores those cells
// instead of re-simulating them. The journal survives a killed or
// crashed sweep because records are appended (and flushed) one cell
// at a time — exactly the cells that completed are exactly the cells
// restored.
//
// File format: one JSON object per line. The first line is a header
// carrying a fingerprint of everything that determines cell results —
// machine, matrix coordinates, measurement settings, ablations and
// the fault schedule. A journal whose fingerprint does not match the
// current configuration is discarded wholesale: resuming cells
// produced under a different configuration would silently mix
// incomparable results. Subsequent lines are cell records; duplicate
// keys keep the last record (a cell journaled by an earlier partial
// sweep and re-journaled by a later one agrees anyway — the simulator
// is deterministic). Failed cells are never journaled, so a resumed
// sweep retries them.
//
// Traces ride along in the record when Config.RecordTraces is set, so
// a resumed traced sweep can still assemble its SessionTrace; a
// record without a trace does not satisfy a traced sweep and is
// re-run instead of restored.
//
// On open the journal is compacted — restored records re-journaled to
// a fresh file so stale headers, duplicates and torn tails do not
// accumulate. The rewrite is crash-safe: it goes to a temp file in
// the same directory that is atomically renamed over the journal only
// once it is complete, so a crash at any instant leaves either the
// old complete journal or the new complete one, never a truncated
// in-between. (The previous implementation truncated the live journal
// first and re-journaled into it; dying in that window lost every
// previously completed cell.)
//
// A journal path is exclusive while open: a second Execute trying to
// open the same path while one holds it fails with a descriptive
// error instead of interleaving torn records into a shared file.

// ckVersion guards the journal layout.
const ckVersion = 1

type ckHeader struct {
	Version     int    `json:"version"`
	Fingerprint string `json:"fingerprint"`
}

type ckRecord struct {
	Key   string       `json:"key"`
	Run   runJSON      `json:"run"`
	Trace *trace.Trace `json:"trace,omitempty"`
}

// checkpoint is an open sweep journal. record is safe for concurrent
// use by the driver's workers.
type checkpoint struct {
	mu   sync.Mutex
	f    *os.File
	path string // cleaned path, claimed in ckActive until close
	keep bool   // RecordTraces: records must carry traces
}

// ckActive registers the journal paths open in this process, so two
// concurrent sweeps cannot interleave writes into one file.
var (
	ckActiveMu sync.Mutex
	ckActive   = map[string]bool{}
)

// ckRewriteCrash is a test hook invoked between writing the compacted
// temp journal and renaming it over the live one — the crash window
// the atomic rewrite must keep harmless. Nil outside tests.
var ckRewriteCrash func()

// oversized-record drops are counted so a service embedding the
// pipeline can alarm on silent journal damage.
var ckOversized = obs.GetCounter("workload.checkpoint.oversized")

// ckPath canonicalizes a journal path for the exclusivity registry.
func ckPath(path string) string {
	if abs, err := filepath.Abs(path); err == nil {
		return abs
	}
	return filepath.Clean(path)
}

// claimCheckpointPath registers path as in use, failing when another
// open sweep in this process already journals there.
func claimCheckpointPath(path string) error {
	key := ckPath(path)
	ckActiveMu.Lock()
	defer ckActiveMu.Unlock()
	if ckActive[key] {
		return fmt.Errorf("workload: checkpoint journal %s is already in use by a concurrent sweep (give each sweep its own CheckpointPath, or serialize them)", path)
	}
	ckActive[key] = true
	return nil
}

// releaseCheckpointPath undoes claimCheckpointPath.
func releaseCheckpointPath(path string) {
	ckActiveMu.Lock()
	delete(ckActive, ckPath(path))
	ckActiveMu.Unlock()
}

// checkpointFingerprint folds every result-determining configuration
// field into the header fingerprint.
func checkpointFingerprint(cfg Config) string {
	h := fnv.New64a()
	fmt.Fprintf(h, "%x|", machineFingerprint(cfg.Machine))
	for _, a := range cfg.Algorithms {
		fmt.Fprintf(h, "a%d|", int(a))
	}
	for _, n := range cfg.Sizes {
		fmt.Fprintf(h, "n%d|", n)
	}
	for _, p := range cfg.Threads {
		fmt.Fprintf(h, "p%d|", p)
	}
	for i := range cfg.Clusters {
		fmt.Fprintf(h, "c%x|", clusterFingerprint(&cfg.Clusters[i]))
	}
	interval := cfg.PollInterval
	if interval <= 0 {
		interval = DefaultPollInterval
	}
	fmt.Fprintf(h, "%g|%t|%t|%g|%t|%t|%g|%d|%x",
		cfg.QuiesceSeconds, cfg.RecordTraces, cfg.RecordSchedule, cfg.TraceSampleInterval,
		cfg.DisableAffinity, cfg.DisableContention, interval, cfg.MaxRetries,
		cfg.Faults.Fingerprint())
	// Planner coordinates: a guided journal (whose predicted records
	// depend on the seed, confidence and model version) must not be
	// resumed by an exhaustive sweep or a different planner setup.
	fmt.Fprintf(h, "|plan%d|%g|%g|mv%d", int(cfg.Plan), cfg.SeedFraction, cfg.Confidence, model.Version)
	return fmt.Sprintf("%016x", h.Sum64())
}

// Fingerprint returns the configuration's result fingerprint: a hash
// of every field that determines cell results (machine, matrix
// coordinates, measurement settings, ablations, fault schedule and
// planner coordinates — execution details like Parallelism or the
// cache instance are excluded). It keys the checkpoint journal header
// and the sweep server's persistent result store: two configurations
// with equal fingerprints produce byte-identical cell records.
func (cfg Config) Fingerprint() string { return checkpointFingerprint(cfg) }

// MarshalRunRecord serializes one completed cell in the checkpoint
// journal's record format (one JSON object, no trailing newline) —
// exactly the bytes record appends for an untraced sweep, so a
// service streaming cells and replaying its journal later serves
// byte-identical lines.
func MarshalRunRecord(key string, r *Run) ([]byte, error) {
	return json.Marshal(ckRecord{Key: key, Run: runToJSON(r)})
}

// UnmarshalRunRecord parses one checkpoint journal record line.
func UnmarshalRunRecord(line []byte) (key string, run Run, err error) {
	var rec ckRecord
	if err := json.Unmarshal(line, &rec); err != nil {
		return "", Run{}, fmt.Errorf("workload: bad run record: %w", err)
	}
	r := runFromJSON(&rec.Run)
	r.Trace = rec.Trace
	return rec.Key, r, nil
}

// openCheckpoint loads any resumable cells from cfg.CheckpointPath and
// returns the open journal plus the restored runs by cell key. A
// missing file, a stale fingerprint, or a corrupt tail (a record cut
// mid-write by a crash) all degrade to "restore what is readable" —
// never to a failed sweep. The journal is compacted on open via an
// atomic temp-file rewrite; see the package comment for the crash
// contract.
func openCheckpoint(cfg Config) (*checkpoint, map[string]Run, error) {
	if err := claimCheckpointPath(cfg.CheckpointPath); err != nil {
		return nil, nil, err
	}
	ok := false
	defer func() {
		if !ok {
			releaseCheckpointPath(cfg.CheckpointPath)
		}
	}()

	fp := checkpointFingerprint(cfg)
	restored := loadCheckpoint(cfg, fp)

	dir, base := filepath.Split(cfg.CheckpointPath)
	if dir == "" {
		dir = "."
	}
	f, err := os.CreateTemp(dir, base+".rewrite-*")
	if err != nil {
		return nil, nil, fmt.Errorf("workload: checkpoint: %w", err)
	}
	tmp := f.Name()
	fail := func(err error) (*checkpoint, map[string]Run, error) {
		f.Close()
		os.Remove(tmp)
		return nil, nil, fmt.Errorf("workload: checkpoint: %w", err)
	}
	ck := &checkpoint{f: f, path: cfg.CheckpointPath, keep: cfg.RecordTraces}
	hdr, _ := json.Marshal(ckHeader{Version: ckVersion, Fingerprint: fp})
	if _, err := fmt.Fprintf(f, "%s\n", hdr); err != nil {
		return fail(err)
	}
	// Re-journal the restored cells so the compacted file is complete
	// on its own.
	for key := range restored {
		r := restored[key]
		ck.record(key, &r)
	}
	if err := f.Sync(); err != nil {
		return fail(err)
	}
	if ckRewriteCrash != nil {
		// Simulated kill inside the rewrite window: the live journal has
		// not been touched yet, so nothing is lost.
		ckRewriteCrash()
	}
	// Atomic cutover: the complete compacted journal replaces the old
	// one in a single rename. The open handle stays valid across the
	// rename, and subsequent records append to the live journal.
	if err := os.Rename(tmp, cfg.CheckpointPath); err != nil {
		return fail(err)
	}
	ok = true
	return ck, restored, nil
}

// ckMaxRecordBytes bounds one journal line: 64 MiB holds any traced
// record the pipeline produces while keeping a corrupt (newline-less)
// journal from ballooning memory on load. A variable so tests can
// exercise the oversized path without writing 64 MiB lines.
var ckMaxRecordBytes = 64 * 1024 * 1024

// loadCheckpoint reads the resumable cells out of an existing journal,
// or nil when there is none (or it belongs to a different
// configuration). A record longer than ckMaxRecordBytes is skipped —
// counted and warned about, with scanning continuing at the next line
// — instead of silently discarding the rest of the journal the way a
// bufio.Scanner hitting its cap would.
func loadCheckpoint(cfg Config, fingerprint string) map[string]Run {
	f, err := os.Open(cfg.CheckpointPath)
	if err != nil {
		return nil
	}
	defer f.Close()

	br := bufio.NewReaderSize(f, 64*1024)
	line, tooLong, err := readJournalLine(br)
	if err != nil || tooLong {
		return nil
	}
	var hdr ckHeader
	if err := json.Unmarshal(line, &hdr); err != nil ||
		hdr.Version != ckVersion || hdr.Fingerprint != fingerprint {
		return nil
	}
	restored := make(map[string]Run)
	for {
		line, tooLong, err := readJournalLine(br)
		if tooLong {
			ckOversized.Inc()
			fmt.Fprintf(os.Stderr, "workload: checkpoint %s: skipping oversized record (> %d bytes); later records still restored\n",
				cfg.CheckpointPath, ckMaxRecordBytes)
			continue
		}
		if len(line) == 0 && err != nil {
			break
		}
		var rec ckRecord
		if err := json.Unmarshal(line, &rec); err != nil {
			// A torn tail from a crashed sweep; everything before it is
			// intact and restorable.
			break
		}
		if rec.Run.Err != "" {
			continue // defensive: failed cells are not resumable
		}
		if cfg.RecordTraces && rec.Trace == nil {
			continue // a traced sweep cannot restore an untraced record
		}
		run := runFromJSON(&rec.Run)
		if !cfg.RecordTraces {
			rec.Trace = nil
		}
		run.Trace = rec.Trace
		restored[rec.Key] = run
		if err != nil {
			break // final unterminated line parsed cleanly
		}
	}
	if len(restored) == 0 {
		return nil
	}
	return restored
}

// readJournalLine reads one newline-terminated line of at most
// ckMaxRecordBytes. Oversized lines are consumed to their newline and
// reported as tooLong with no content, so the caller can keep
// scanning from the next record.
func readJournalLine(br *bufio.Reader) (line []byte, tooLong bool, err error) {
	for {
		chunk, err := br.ReadSlice('\n')
		if !tooLong {
			line = append(line, chunk...)
			if len(line) > ckMaxRecordBytes {
				line = nil
				tooLong = true
			}
		}
		switch err {
		case bufio.ErrBufferFull:
			continue // line spans buffer chunks; keep accumulating
		case nil:
			if !tooLong {
				line = line[:len(line)-1] // strip the newline
			}
			return line, tooLong, nil
		default:
			// EOF (possibly with a final unterminated line) or a read
			// error: hand back what accumulated.
			return line, tooLong, err
		}
	}
}

// record journals one completed cell and flushes it to the OS, so the
// record survives the process dying right afterwards.
func (ck *checkpoint) record(key string, r *Run) {
	rec := ckRecord{Key: key, Run: runToJSON(r)}
	if ck.keep {
		rec.Trace = r.Trace
	}
	line, err := json.Marshal(rec)
	if err != nil {
		return // unserializable cells are simply not resumable
	}
	ck.mu.Lock()
	defer ck.mu.Unlock()
	if ck.f == nil {
		return
	}
	fmt.Fprintf(ck.f, "%s\n", line)
	ck.f.Sync()
}

// close closes the journal file and releases the path claim; records
// after close are dropped.
func (ck *checkpoint) close() {
	ck.mu.Lock()
	defer ck.mu.Unlock()
	if ck.f != nil {
		ck.f.Close()
		ck.f = nil
		releaseCheckpointPath(ck.path)
	}
}

// replayJournal streams the record lines of the journal at path
// verbatim to w (the header line is validated and skipped), returning
// the record count. Torn tails stop the replay silently, matching
// loadCheckpoint; oversized records are skipped with a count. The
// sweep server's GET /v1/result replays stored journals through this.
func replayJournal(path string, w io.Writer) (int, error) {
	f, err := os.Open(path)
	if err != nil {
		return 0, err
	}
	defer f.Close()

	br := bufio.NewReaderSize(f, 64*1024)
	line, tooLong, err := readJournalLine(br)
	if err != nil || tooLong {
		return 0, fmt.Errorf("workload: journal %s: unreadable header", path)
	}
	var hdr ckHeader
	if err := json.Unmarshal(line, &hdr); err != nil || hdr.Version != ckVersion {
		return 0, fmt.Errorf("workload: journal %s: bad header", path)
	}
	records := 0
	for {
		line, tooLong, err := readJournalLine(br)
		if tooLong {
			ckOversized.Inc()
			continue
		}
		if len(line) == 0 && err != nil {
			break
		}
		if !json.Valid(line) {
			break // torn tail
		}
		if _, werr := fmt.Fprintf(w, "%s\n", line); werr != nil {
			return records, werr
		}
		records++
		if err != nil {
			break
		}
	}
	return records, nil
}

// ReplayJournal streams the record lines of a checkpoint/result
// journal verbatim to w (header validated and skipped) and returns
// how many records it wrote. Callers get the exact bytes record
// appended, so repeated replays are byte-identical.
func ReplayJournal(path string, w io.Writer) (int, error) { return replayJournal(path, w) }
