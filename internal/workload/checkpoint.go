package workload

import (
	"encoding/json"
	"errors"
	"fmt"
	"hash/fnv"
	"io"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"

	"capscale/internal/model"
	"capscale/internal/obs"
	"capscale/internal/store"
	"capscale/internal/trace"
)

// Sweep checkpointing: with Config.CheckpointPath set, Execute
// journals every completed cell to a JSONL file as it finishes, and a
// later Execute with the same configuration restores those cells
// instead of re-simulating them. The journal survives a killed or
// crashed sweep because records are appended (and fsynced) one cell
// at a time — exactly the cells that completed are exactly the cells
// restored.
//
// File format: one JSON object per line. The first line is a header
// carrying a fingerprint of everything that determines cell results —
// machine, matrix coordinates, measurement settings, ablations and
// the fault schedule. A journal whose fingerprint does not match the
// current configuration is discarded wholesale: resuming cells
// produced under a different configuration would silently mix
// incomparable results. Subsequent lines are cell records; duplicate
// keys keep the last record (a cell journaled by an earlier partial
// sweep and re-journaled by a later one agrees anyway — the simulator
// is deterministic). Failed cells are never journaled, so a resumed
// sweep retries them.
//
// Traces ride along in the record when Config.RecordTraces is set, so
// a resumed traced sweep can still assemble its SessionTrace; a
// record without a trace does not satisfy a traced sweep and is
// re-run instead of restored.
//
// On open the journal is compacted — restored records re-journaled in
// their original journal order to a fresh file, so stale headers,
// duplicates and torn tails do not accumulate and a compacted journal
// replays byte-identically to the sweep that produced it. The rewrite
// is crash-safe (temp file + fsync + atomic rename; see
// store.CreateJournal): a crash at any instant leaves either the old
// complete journal or the new complete one, never a truncated
// in-between.
//
// Exclusivity is enforced at two levels. Inside one process, a journal
// path is claimed while open, so a second Execute on the same path
// fails with a descriptive error instead of interleaving torn records.
// Across processes and replicas, an on-disk lease file
// (store.AcquireLease) claims the journal: it is renewed in the
// background while the sweep runs, a crashed holder's lease expires
// (or is broken immediately when its process is verifiably dead on
// this host), and every append is epoch-fenced so a zombie holder's
// late writes are rejected once its lease has been stolen. All journal
// I/O goes through Config.FS (nil = the real filesystem), which is how
// the crash and torn-write tests drive these paths.

// ckVersion guards the journal layout.
const ckVersion = 1

type ckRecord struct {
	Key   string       `json:"key"`
	Run   runJSON      `json:"run"`
	Trace *trace.Trace `json:"trace,omitempty"`
}

// checkpoint is an open sweep journal. record is safe for concurrent
// use by the driver's workers.
type checkpoint struct {
	mu   sync.Mutex
	j    *store.Journal
	path string // cleaned path, claimed in ckActive until close
	keep bool   // RecordTraces: records must carry traces

	lease     *store.Lease
	ownLease  bool // acquired here (vs. supplied pre-held by the caller)
	renewStop chan struct{}
	renewDone chan struct{}

	lost   atomic.Bool // lease lost: journal fenced off, sweep should stop
	warned atomic.Bool // one append warning per sweep is enough
}

// ckActive registers the journal paths open in this process, so two
// concurrent sweeps cannot interleave writes into one file.
var (
	ckActiveMu sync.Mutex
	ckActive   = map[string]bool{}
)

// ckRewriteCrash is a test hook invoked between writing the compacted
// temp journal and renaming it over the live one — the crash window
// the atomic rewrite must keep harmless. Nil outside tests.
var ckRewriteCrash func()

// oversized-record drops and append failures are counted so a service
// embedding the pipeline can alarm on silent journal damage.
var (
	ckOversized  = obs.GetCounter("workload.checkpoint.oversized")
	ckAppendErrs = obs.GetCounter("workload.checkpoint.appenderrors")
	ckLeaseLost  = obs.GetCounter("workload.checkpoint.leaselost")
)

// ckPath canonicalizes a journal path for the exclusivity registry.
func ckPath(path string) string {
	if abs, err := filepath.Abs(path); err == nil {
		return abs
	}
	return filepath.Clean(path)
}

// claimCheckpointPath registers path as in use, failing when another
// open sweep in this process already journals there.
func claimCheckpointPath(path string) error {
	key := ckPath(path)
	ckActiveMu.Lock()
	defer ckActiveMu.Unlock()
	if ckActive[key] {
		return fmt.Errorf("workload: checkpoint journal %s is already in use by a concurrent sweep (give each sweep its own CheckpointPath, or serialize them)", path)
	}
	ckActive[key] = true
	return nil
}

// releaseCheckpointPath undoes claimCheckpointPath.
func releaseCheckpointPath(path string) {
	ckActiveMu.Lock()
	delete(ckActive, ckPath(path))
	ckActiveMu.Unlock()
}

// checkpointFingerprint folds every result-determining configuration
// field into the header fingerprint.
func checkpointFingerprint(cfg Config) string {
	h := fnv.New64a()
	fmt.Fprintf(h, "%x|", machineFingerprint(cfg.Machine))
	for _, a := range cfg.Algorithms {
		fmt.Fprintf(h, "a%d|", int(a))
	}
	for _, n := range cfg.Sizes {
		fmt.Fprintf(h, "n%d|", n)
	}
	for _, p := range cfg.Threads {
		fmt.Fprintf(h, "p%d|", p)
	}
	for i := range cfg.Clusters {
		fmt.Fprintf(h, "c%x|", clusterFingerprint(&cfg.Clusters[i]))
	}
	interval := cfg.PollInterval
	if interval <= 0 {
		interval = DefaultPollInterval
	}
	fmt.Fprintf(h, "%g|%t|%t|%g|%t|%t|%g|%d|%x",
		cfg.QuiesceSeconds, cfg.RecordTraces, cfg.RecordSchedule, cfg.TraceSampleInterval,
		cfg.DisableAffinity, cfg.DisableContention, interval, cfg.MaxRetries,
		cfg.Faults.Fingerprint())
	// Planner coordinates: a guided journal (whose predicted records
	// depend on the seed, confidence and model version) must not be
	// resumed by an exhaustive sweep or a different planner setup.
	fmt.Fprintf(h, "|plan%d|%g|%g|mv%d", int(cfg.Plan), cfg.SeedFraction, cfg.Confidence, model.Version)
	return fmt.Sprintf("%016x", h.Sum64())
}

// Fingerprint returns the configuration's result fingerprint: a hash
// of every field that determines cell results (machine, matrix
// coordinates, measurement settings, ablations, fault schedule and
// planner coordinates — execution details like Parallelism, the cache
// instance, the filesystem or the lease identity are excluded). It
// keys the checkpoint journal header and the sweep server's persistent
// result store: two configurations with equal fingerprints produce
// byte-identical cell records.
func (cfg Config) Fingerprint() string { return checkpointFingerprint(cfg) }

// MarshalRunRecord serializes one completed cell in the checkpoint
// journal's record format (one JSON object, no trailing newline) —
// exactly the bytes record appends for an untraced sweep, so a
// service streaming cells and replaying its journal later serves
// byte-identical lines.
func MarshalRunRecord(key string, r *Run) ([]byte, error) {
	return json.Marshal(ckRecord{Key: key, Run: runToJSON(r)})
}

// UnmarshalRunRecord parses one checkpoint journal record line.
func UnmarshalRunRecord(line []byte) (key string, run Run, err error) {
	var rec ckRecord
	if err := json.Unmarshal(line, &rec); err != nil {
		return "", Run{}, fmt.Errorf("workload: bad run record: %w", err)
	}
	r := runFromJSON(&rec.Run)
	r.Trace = rec.Trace
	return rec.Key, r, nil
}

// openCheckpoint loads any resumable cells from cfg.CheckpointPath and
// returns the open journal plus the restored runs by cell key. A
// missing file, a stale fingerprint, or a corrupt tail (a record cut
// mid-write by a crash) all degrade to "restore what is readable" —
// never to a failed sweep. The journal is compacted on open via an
// atomic temp-file rewrite, and claimed by an on-disk lease unless the
// caller supplied one it already holds; see the package comment for
// the crash and fencing contracts.
func openCheckpoint(cfg Config) (*checkpoint, map[string]Run, error) {
	fsys := store.Resolve(cfg.FS)
	if err := claimCheckpointPath(cfg.CheckpointPath); err != nil {
		return nil, nil, err
	}
	lease := cfg.Lease
	ownLease := false
	ok := false
	defer func() {
		if ok {
			return
		}
		if ownLease {
			_ = lease.Release()
		}
		releaseCheckpointPath(cfg.CheckpointPath)
	}()

	if lease == nil {
		owner := cfg.LeaseOwner
		if owner == "" {
			owner = fmt.Sprintf("pid-%d", os.Getpid())
		}
		var err error
		lease, err = store.AcquireLease(fsys, store.LeasePath(cfg.CheckpointPath), owner, cfg.LeaseTTL, nil)
		if err != nil {
			var held *store.HeldError
			if errors.As(err, &held) {
				return nil, nil, fmt.Errorf("workload: checkpoint journal %s is leased by replica %q (epoch %d) — another process may be executing this sweep; retry after its lease expires: %w",
					cfg.CheckpointPath, held.Info.Owner, held.Info.Epoch, err)
			}
			return nil, nil, fmt.Errorf("workload: checkpoint: %w", err)
		}
		ownLease = true
	}

	fp := checkpointFingerprint(cfg)
	keys, restored := loadCheckpoint(fsys, cfg, fp)

	ck := &checkpoint{path: cfg.CheckpointPath, keep: cfg.RecordTraces, lease: lease, ownLease: ownLease}
	hdr, err := json.Marshal(store.Header{Version: ckVersion, Fingerprint: fp})
	if err != nil {
		return nil, nil, fmt.Errorf("workload: checkpoint: %w", err)
	}
	// Re-journal the restored cells — in their original journal order,
	// so compaction preserves replay bytes — making the compacted file
	// complete on its own.
	records := make([][]byte, 0, len(keys))
	for _, key := range keys {
		r := restored[key]
		line, err := ck.marshalRecord(key, &r)
		if err != nil {
			continue // unserializable cells are simply not resumable
		}
		records = append(records, line)
	}
	j, err := store.CreateJournal(fsys, cfg.CheckpointPath, hdr, records, lease, ckRewriteCrash)
	if err != nil {
		return nil, nil, fmt.Errorf("workload: checkpoint: %w", err)
	}
	ck.j = j
	ck.startRenewer()
	ok = true
	return ck, restored, nil
}

// ckMaxRecordBytes bounds one journal line: 64 MiB holds any traced
// record the pipeline produces while keeping a corrupt (newline-less)
// journal from ballooning memory on load. A variable so tests can
// exercise the oversized path without writing 64 MiB lines.
var ckMaxRecordBytes = 64 * 1024 * 1024

// loadCheckpoint reads the resumable cells out of an existing journal:
// the restored runs by key, plus the keys in first-journaled order
// (duplicate keys keep the last record but the first position) so the
// compaction rewrite preserves the journal's replay order. Nil when
// there is no journal or it belongs to a different configuration.
func loadCheckpoint(fsys store.FS, cfg Config, fingerprint string) ([]string, map[string]Run) {
	sc, err := store.ScanJournal(fsys, cfg.CheckpointPath, ckMaxRecordBytes)
	if err != nil || !sc.HeaderOK {
		return nil, nil
	}
	if sc.Header.Version != ckVersion || sc.Header.Fingerprint != fingerprint {
		return nil, nil
	}
	if sc.Oversized > 0 {
		ckOversized.Add(int64(sc.Oversized))
		fmt.Fprintf(os.Stderr, "workload: checkpoint %s: skipped %d oversized record(s) (> %d bytes); later records still restored\n",
			cfg.CheckpointPath, sc.Oversized, ckMaxRecordBytes)
	}
	var keys []string
	restored := make(map[string]Run)
	for _, line := range sc.Records {
		var rec ckRecord
		if err := json.Unmarshal(line, &rec); err != nil {
			continue // valid JSON, wrong shape: not a cell record
		}
		if rec.Run.Err != "" {
			continue // defensive: failed cells are not resumable
		}
		if cfg.RecordTraces && rec.Trace == nil {
			continue // a traced sweep cannot restore an untraced record
		}
		run := runFromJSON(&rec.Run)
		if !cfg.RecordTraces {
			rec.Trace = nil
		}
		run.Trace = rec.Trace
		if _, seen := restored[rec.Key]; !seen {
			keys = append(keys, rec.Key)
		}
		restored[rec.Key] = run
	}
	if len(restored) == 0 {
		return nil, nil
	}
	return keys, restored
}

// marshalRecord serializes one cell record under the journal's trace
// policy.
func (ck *checkpoint) marshalRecord(key string, r *Run) ([]byte, error) {
	rec := ckRecord{Key: key, Run: runToJSON(r)}
	if ck.keep {
		rec.Trace = r.Trace
	}
	return json.Marshal(rec)
}

// startRenewer keeps the journal lease alive in the background while
// the sweep runs. A renewal failure marks the checkpoint lost: the
// fenced journal refuses further appends and the driver stops starting
// new cells (see Execute).
func (ck *checkpoint) startRenewer() {
	if ck.lease == nil {
		return
	}
	ck.renewStop = make(chan struct{})
	ck.renewDone = make(chan struct{})
	interval := ck.lease.TTL() / 3
	if interval <= 0 {
		interval = time.Second
	}
	go func() {
		defer close(ck.renewDone)
		// A panic out of the renewal I/O (the fault filesystem's
		// simulated power loss fires on whichever goroutine performs the
		// fatal op) must not take down unrelated goroutines; treat it
		// like any other failed renewal.
		defer func() {
			if p := recover(); p != nil {
				ck.lost.Store(true)
				ckLeaseLost.Inc()
				fmt.Fprintf(os.Stderr, "workload: checkpoint %s: lease renewal panicked (%v); stopping new cells\n", ck.path, p)
			}
		}()
		t := time.NewTicker(interval)
		defer t.Stop()
		for {
			select {
			case <-ck.renewStop:
				return
			case <-t.C:
				if err := ck.lease.Renew(); err != nil {
					ck.lost.Store(true)
					ckLeaseLost.Inc()
					fmt.Fprintf(os.Stderr, "workload: checkpoint %s: lease renewal failed (%v); stopping new cells\n", ck.path, err)
					return
				}
			}
		}
	}()
}

// interrupted reports whether the journal's lease has been lost — the
// signal for the driver to stop starting new cells.
func (ck *checkpoint) interrupted() bool {
	return ck != nil && ck.lost.Load()
}

// record journals one completed cell and fsyncs it, so the record
// survives the process dying right afterwards. Failures are counted
// and warned about — the cell simply is not resumable — except a lost
// lease, which additionally fences the rest of the sweep.
func (ck *checkpoint) record(key string, r *Run) {
	line, err := ck.marshalRecord(key, r)
	if err != nil {
		return // unserializable cells are simply not resumable
	}
	ck.mu.Lock()
	j := ck.j
	ck.mu.Unlock()
	if j == nil {
		return
	}
	if err := j.Append(line); err != nil {
		if errors.Is(err, store.ErrLeaseLost) {
			if !ck.lost.Swap(true) {
				ckLeaseLost.Inc()
				fmt.Fprintf(os.Stderr, "workload: checkpoint %s: lease lost; cell %s not journaled and remaining cells will not start\n", ck.path, key)
			}
			return
		}
		ckAppendErrs.Inc()
		if !ck.warned.Swap(true) {
			fmt.Fprintf(os.Stderr, "workload: checkpoint %s: append failed: %v — affected cells will not be resumable\n", ck.path, err)
		}
	}
}

// close closes the journal file, stops the lease renewer and releases
// the claims; records after close are dropped. Close and release
// failures are warned about, not swallowed: each is a torn-journal or
// stuck-lease risk the operator should see.
func (ck *checkpoint) close() {
	ck.mu.Lock()
	j := ck.j
	ck.j = nil
	ck.mu.Unlock()
	if j == nil {
		return
	}
	if ck.renewStop != nil {
		close(ck.renewStop)
		<-ck.renewDone
	}
	if err := j.Close(); err != nil {
		ckAppendErrs.Inc()
		fmt.Fprintf(os.Stderr, "workload: checkpoint %s: close failed: %v\n", ck.path, err)
	}
	if ck.ownLease {
		if err := ck.lease.Release(); err != nil {
			fmt.Fprintf(os.Stderr, "workload: checkpoint %s: lease release failed: %v (holders must wait out the TTL)\n", ck.path, err)
		}
	}
	releaseCheckpointPath(ck.path)
}

// SalvageJournal repairs the sweep journal at path in place: torn
// tails and oversized interior junk are compacted away through the
// same atomic rewrite the checkpoint open uses, and a journal whose
// header no longer parses is quarantined aside as path+".corrupt".
// Reports whether the file changed. The sweep server runs this over
// its store on startup and on lease takeover.
func SalvageJournal(fsys store.FS, path string) (bool, error) {
	return store.SalvageJournal(store.Resolve(fsys), path, ckMaxRecordBytes)
}

// JournalSnapshot is one consistent read of a sweep journal: the raw
// record lines (replay bytes), their cell keys in journal order, and
// the distinct-cell count — what a read-only follower needs to stream
// a journal another replica is executing.
type JournalSnapshot struct {
	Fingerprint string
	Records     [][]byte
	Keys        []string
	Unique      int
	Torn        bool
}

// SnapshotJournal scans the journal at path through fsys. A missing
// file yields an empty snapshot, not an error; a torn tail yields the
// intact prefix with Torn set.
func SnapshotJournal(fsys store.FS, path string) (*JournalSnapshot, error) {
	sc, err := store.ScanJournal(store.Resolve(fsys), path, ckMaxRecordBytes)
	if err != nil {
		if store.IsNotExist(err) {
			return &JournalSnapshot{}, nil
		}
		return nil, err
	}
	if !sc.HeaderOK || sc.Header.Version != ckVersion {
		return &JournalSnapshot{Torn: sc.Torn}, nil
	}
	snap := &JournalSnapshot{
		Fingerprint: sc.Header.Fingerprint,
		Records:     sc.Records,
		Keys:        make([]string, len(sc.Records)),
		Torn:        sc.Torn,
	}
	seen := make(map[string]bool, len(sc.Records))
	for i, line := range sc.Records {
		var rec struct {
			Key string `json:"key"`
		}
		if json.Unmarshal(line, &rec) == nil {
			snap.Keys[i] = rec.Key
			if rec.Key != "" && !seen[rec.Key] {
				seen[rec.Key] = true
				snap.Unique++
			}
		}
	}
	return snap, nil
}

// ReplayJournal streams the record lines of a checkpoint/result
// journal verbatim to w (header validated and skipped) and returns
// how many records it wrote. Callers get the exact bytes record
// appended, so repeated replays are byte-identical. Torn tails stop
// the replay silently, matching loadCheckpoint; oversized records are
// skipped with a count.
func ReplayJournal(path string, w io.Writer) (int, error) {
	return ReplayJournalFS(nil, path, w)
}

// ReplayJournalFS is ReplayJournal through an injectable filesystem.
func ReplayJournalFS(fsys store.FS, path string, w io.Writer) (int, error) {
	records, oversized, err := store.ReplayJournal(store.Resolve(fsys), path, ckVersion, ckMaxRecordBytes, w)
	if oversized > 0 {
		ckOversized.Add(int64(oversized))
	}
	return records, err
}
