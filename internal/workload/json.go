package workload

import (
	"encoding/json"
	"fmt"
	"io"

	"capscale/internal/cluster"
	"capscale/internal/hw"
)

// JSON persistence for experiment matrices: epscale can save a run's
// results and re-render tables later (or diff two calibrations)
// without re-simulating. Traces are not serialized — they are cheap to
// regenerate and large to store.

// matrixJSON is the serialized form. The machine is stored by name and
// resolved against the built-in zoo on load.
type matrixJSON struct {
	Machine    string      `json:"machine"`
	Algorithms []Algorithm `json:"algorithms"`
	Sizes      []int       `json:"sizes"`
	Threads    []int       `json:"threads"`
	// Clusters holds the distributed axis in its parseable spec form
	// ("16x1GbE"); resolved through cluster.ParseSpec on load.
	Clusters []string  `json:"clusters,omitempty"`
	Quiesce  float64   `json:"quiesce_seconds"`
	Runs     []runJSON `json:"runs"`
}

type runJSON struct {
	Alg        Algorithm `json:"alg"`
	N          int       `json:"n"`
	Threads    int       `json:"threads"`
	Seconds    float64   `json:"seconds"`
	PKGJoules  float64   `json:"pkg_j"`
	PP0Joules  float64   `json:"pp0_j"`
	DRAMJoules float64   `json:"dram_j"`
	// Distributed coordinates and communication record (absent on
	// single-node cells).
	Cluster           string  `json:"cluster,omitempty"`
	Ranks             int     `json:"ranks,omitempty"`
	Replication       int     `json:"replication,omitempty"`
	WireBytes         float64 `json:"wire_bytes,omitempty"`
	Messages          int     `json:"messages,omitempty"`
	CritAlphaTerms    int     `json:"crit_alpha_terms,omitempty"`
	CritCommSeconds   float64 `json:"crit_comm_seconds,omitempty"`
	NICJoules         float64 `json:"nic_j,omitempty"`
	SwitchJoules      float64 `json:"switch_j,omitempty"`
	TruthNICJoules    float64 `json:"truth_nic_j,omitempty"`
	TruthSwitchJoules float64 `json:"truth_switch_j,omitempty"`
	// Oracle energy and sample count (absent in matrices saved before
	// the measurement loop was closed; MeasurementErr treats zero
	// truth as "no oracle recorded").
	TruthPKGJoules  float64            `json:"truth_pkg_j,omitempty"`
	TruthPP0Joules  float64            `json:"truth_pp0_j,omitempty"`
	TruthDRAMJoules float64            `json:"truth_dram_j,omitempty"`
	MeasSamples     int                `json:"meas_samples,omitempty"`
	Leaves          int                `json:"leaves"`
	RemoteBytes     float64            `json:"remote_bytes"`
	StolenLeaves    int                `json:"stolen_leaves"`
	AllocHighWater  float64            `json:"alloc_high_water"`
	Utilization     float64            `json:"utilization"`
	BusyByKind      map[string]float64 `json:"busy_by_kind,omitempty"`
	// Degradation record (absent on clean runs and on matrices saved
	// before the fault layer existed).
	Degraded          bool     `json:"degraded,omitempty"`
	QuarantinedPlanes []string `json:"quarantined_planes,omitempty"`
	MeasRetries       int      `json:"meas_retries,omitempty"`
	MeasReadErrors    int      `json:"meas_read_errors,omitempty"`
	MeasDrops         int      `json:"meas_drops,omitempty"`
	Attempts          int      `json:"attempts,omitempty"`
	Err               string   `json:"error,omitempty"`
	// Model-predicted cells (guided sweeps): provenance survives the
	// round trip so loaded matrices keep predictions distinguishable.
	Predicted bool    `json:"predicted,omitempty"`
	PredRelCI float64 `json:"pred_rel_ci,omitempty"`
	ModelTag  string  `json:"model_tag,omitempty"`
}

// runToJSON converts a Run to its serialized form (traces and
// schedules are handled separately by the callers that keep them).
func runToJSON(r *Run) runJSON {
	return runJSON{
		Alg: r.Alg, N: r.N, Threads: r.Threads,
		Cluster: r.Cluster, Ranks: r.Ranks, Replication: r.Replication,
		WireBytes: r.WireBytes, Messages: r.Messages,
		CritAlphaTerms: r.CritAlphaTerms, CritCommSeconds: r.CritCommSeconds,
		NICJoules: r.NICJoules, SwitchJoules: r.SwitchJoules,
		TruthNICJoules: r.TruthNICJoules, TruthSwitchJoules: r.TruthSwitchJoules,
		Seconds: r.Seconds, PKGJoules: r.PKGJoules, PP0Joules: r.PP0Joules, DRAMJoules: r.DRAMJoules,
		TruthPKGJoules: r.TruthPKGJoules, TruthPP0Joules: r.TruthPP0Joules, TruthDRAMJoules: r.TruthDRAMJoules,
		MeasSamples: r.MeasSamples,
		Leaves:      r.Leaves, RemoteBytes: r.RemoteBytes, StolenLeaves: r.StolenLeaves,
		AllocHighWater: r.AllocHighWater, Utilization: r.Utilization,
		BusyByKind:        r.BusyByKind,
		Degraded:          r.Degraded,
		QuarantinedPlanes: r.QuarantinedPlanes,
		MeasRetries:       r.MeasRetries,
		MeasReadErrors:    r.MeasReadErrors,
		MeasDrops:         r.MeasDrops,
		Attempts:          r.Attempts,
		Err:               r.Err,
		Predicted:         r.Predicted,
		PredRelCI:         r.PredRelCI,
		ModelTag:          r.ModelTag,
	}
}

// runFromJSON is runToJSON's inverse.
func runFromJSON(rj *runJSON) Run {
	return Run{
		Alg: rj.Alg, N: rj.N, Threads: rj.Threads,
		Cluster: rj.Cluster, Ranks: rj.Ranks, Replication: rj.Replication,
		WireBytes: rj.WireBytes, Messages: rj.Messages,
		CritAlphaTerms: rj.CritAlphaTerms, CritCommSeconds: rj.CritCommSeconds,
		NICJoules: rj.NICJoules, SwitchJoules: rj.SwitchJoules,
		TruthNICJoules: rj.TruthNICJoules, TruthSwitchJoules: rj.TruthSwitchJoules,
		Seconds: rj.Seconds, PKGJoules: rj.PKGJoules, PP0Joules: rj.PP0Joules, DRAMJoules: rj.DRAMJoules,
		TruthPKGJoules: rj.TruthPKGJoules, TruthPP0Joules: rj.TruthPP0Joules, TruthDRAMJoules: rj.TruthDRAMJoules,
		MeasSamples: rj.MeasSamples,
		Leaves:      rj.Leaves, RemoteBytes: rj.RemoteBytes, StolenLeaves: rj.StolenLeaves,
		AllocHighWater: rj.AllocHighWater, Utilization: rj.Utilization,
		BusyByKind:        rj.BusyByKind,
		Degraded:          rj.Degraded,
		QuarantinedPlanes: rj.QuarantinedPlanes,
		MeasRetries:       rj.MeasRetries,
		MeasReadErrors:    rj.MeasReadErrors,
		MeasDrops:         rj.MeasDrops,
		Attempts:          rj.Attempts,
		Err:               rj.Err,
		Predicted:         rj.Predicted,
		PredRelCI:         rj.PredRelCI,
		ModelTag:          rj.ModelTag,
	}
}

// SaveJSON writes the matrix (without traces) to w.
func (mx *Matrix) SaveJSON(w io.Writer) error {
	out := matrixJSON{
		Machine:    mx.Cfg.Machine.Name,
		Algorithms: mx.Cfg.Algorithms,
		Sizes:      mx.Cfg.Sizes,
		Threads:    mx.Cfg.Threads,
		Quiesce:    mx.Cfg.QuiesceSeconds,
	}
	for _, spec := range mx.Cfg.Clusters {
		out.Clusters = append(out.Clusters, spec.String())
	}
	for i := range mx.Runs {
		out.Runs = append(out.Runs, runToJSON(&mx.Runs[i]))
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}

// LoadJSON reads a matrix saved by SaveJSON, resolving the machine
// against the built-in zoo by name.
func LoadJSON(r io.Reader) (*Matrix, error) {
	var in matrixJSON
	if err := json.NewDecoder(r).Decode(&in); err != nil {
		return nil, fmt.Errorf("workload: decoding matrix: %w", err)
	}
	var machine *hw.Machine
	for _, m := range hw.Zoo() {
		if m.Name == in.Machine {
			machine = m
			break
		}
	}
	if machine == nil {
		return nil, fmt.Errorf("workload: unknown machine %q in saved matrix", in.Machine)
	}
	mx := &Matrix{Cfg: Config{
		Machine:        machine,
		Algorithms:     in.Algorithms,
		Sizes:          in.Sizes,
		Threads:        in.Threads,
		QuiesceSeconds: in.Quiesce,
	}}
	for _, s := range in.Clusters {
		spec, err := cluster.ParseSpec(s)
		if err != nil {
			return nil, fmt.Errorf("workload: saved matrix: %w", err)
		}
		mx.Cfg.Clusters = append(mx.Cfg.Clusters, spec)
	}
	for i := range in.Runs {
		mx.Runs = append(mx.Runs, runFromJSON(&in.Runs[i]))
	}
	return mx, nil
}
