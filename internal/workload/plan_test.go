package workload

import (
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// guidedConfig is a matrix big enough that the corner seed is a real
// minority of cells (4 sizes × 4 threads per algorithm).
func guidedConfig() Config {
	cfg := SmokeConfig()
	cfg.Sizes = []int{128, 192, 256, 384}
	cfg.Threads = []int{1, 2, 3, 4}
	cfg.Plan = PlanGuided
	return cfg
}

func TestParsePlan(t *testing.T) {
	if p, err := ParsePlan("guided"); err != nil || p != PlanGuided {
		t.Fatalf("guided: %v %v", p, err)
	}
	if p, err := ParsePlan("EXHAUSTIVE"); err != nil || p != PlanExhaustive {
		t.Fatalf("exhaustive: %v %v", p, err)
	}
	if _, err := ParsePlan("nope"); err == nil || !strings.Contains(err.Error(), "guided") {
		t.Fatalf("bad plan error should list valid modes, got %v", err)
	}
	if PlanGuided.String() != "guided" {
		t.Fatal("plan name")
	}
}

func TestSeedIndicesCornersAndFraction(t *testing.T) {
	cfg := guidedConfig()
	cells := cfg.cells()
	seed := seedIndices(&cfg, cells, 0.25)
	if len(seed) < len(cfg.Algorithms)*4 {
		t.Fatalf("seed %d smaller than the per-algorithm corner set", len(seed))
	}
	if len(seed) > (len(cells)+3)/3 {
		t.Fatalf("seed %d of %d cells is not a small subset", len(seed), len(cells))
	}
	// Every algorithm's four grid corners must be in the seed.
	inSeed := make(map[int]bool)
	for _, i := range seed {
		inSeed[i] = true
	}
	for i, c := range cells {
		cornerN := c.n == 128 || c.n == 384
		cornerP := c.threads == 1 || c.threads == 4
		if cornerN && cornerP && !inSeed[i] {
			t.Fatalf("corner cell %s missing from seed", cfg.cellKey(c))
		}
	}
}

// The guided plan must measure a strict subset of the matrix and
// predict the rest within the model's stated confidence.
func TestGuidedSweepMeasuresFewerCells(t *testing.T) {
	cfg := guidedConfig()
	guided := Execute(cfg)

	exhaustive := cfg
	exhaustive.Plan = PlanExhaustive
	truth := Execute(exhaustive)

	total := len(guided.Runs)
	if guided.Planner.MeasuredCells+guided.Planner.PredictedCells != total {
		t.Fatalf("planner stats %+v do not cover %d cells", guided.Planner, total)
	}
	if guided.Planner.PredictedCells == 0 {
		t.Fatal("guided sweep predicted nothing")
	}
	if 3*guided.Planner.MeasuredCells > total {
		t.Fatalf("guided measured %d of %d cells — above the 1/3 budget", guided.Planner.MeasuredCells, total)
	}
	if guided.Model == nil {
		t.Fatal("guided matrix carries no fitted model")
	}

	worst := 0.0
	for i := range guided.Runs {
		g, tr := &guided.Runs[i], &truth.Runs[i]
		if g.Alg != tr.Alg || g.N != tr.N {
			t.Fatalf("run order diverged at %d", i)
		}
		if !g.Predicted {
			continue
		}
		if g.ModelTag != guided.Model.Tag() {
			t.Fatalf("predicted cell %s/%d tagged %q, model is %q", g.Alg, g.N, g.ModelTag, guided.Model.Tag())
		}
		gotE := g.PKGJoules + g.DRAMJoules
		wantE := tr.PKGJoules + tr.DRAMJoules
		rel := math.Abs(gotE-wantE) / wantE
		if rel > worst {
			worst = rel
		}
	}
	if worst > 0.15 {
		t.Fatalf("worst predicted-cell energy error %.1f%% above 15%%", 100*worst)
	}
}

// Two identical guided sweeps must be bit-identical, including which
// cells were predicted and the predictions themselves.
func TestGuidedSweepDeterminism(t *testing.T) {
	cfg := guidedConfig()
	cfg.Parallelism = 4
	a := Execute(cfg)
	b := Execute(cfg)
	if a.Planner != b.Planner {
		t.Fatalf("planner stats diverged: %+v vs %+v", a.Planner, b.Planner)
	}
	for i := range a.Runs {
		ra, rb := &a.Runs[i], &b.Runs[i]
		if ra.Predicted != rb.Predicted || ra.Seconds != rb.Seconds ||
			ra.PKGJoules != rb.PKGJoules || ra.DRAMJoules != rb.DRAMJoules ||
			ra.PredRelCI != rb.PredRelCI || ra.ModelTag != rb.ModelTag {
			t.Fatalf("run %d diverged between identical guided sweeps", i)
		}
	}
}

// Predictions are never memoized: an exhaustive sweep after a guided
// one over the same cells must serve only measured runs.
func TestRunCacheNeverServesPredictions(t *testing.T) {
	cfg := guidedConfig()
	Execute(cfg)
	cfg.Plan = PlanExhaustive
	mx := Execute(cfg)
	for i := range mx.Runs {
		if mx.Runs[i].Predicted {
			t.Fatalf("exhaustive sweep got a predicted run for %s/%d from the cache", mx.Runs[i].Alg, mx.Runs[i].N)
		}
	}
}

// A resumed guided sweep restores journaled predictions only while the
// refitted model carries the same tag; a stale tag forces re-prediction.
func TestGuidedCheckpointPredictions(t *testing.T) {
	cfg := guidedConfig()
	cfg.CheckpointPath = filepath.Join(t.TempDir(), "ck.jsonl")
	first := Execute(cfg)
	if first.Planner.PredictedCells == 0 {
		t.Fatal("nothing predicted")
	}

	// Clean resume: every cell — measured and predicted — restores.
	second := Execute(cfg)
	if got, want := second.RestoredCells(), len(second.Runs); got != want {
		t.Fatalf("clean resume restored %d of %d cells", got, want)
	}
	for i := range second.Runs {
		if second.Runs[i].Predicted != first.Runs[i].Predicted {
			t.Fatalf("resume changed prediction status at %d", i)
		}
	}

	// Corrupt the journal's model tags: stale predictions must be
	// dropped and re-predicted under the current model's tag.
	raw, err := os.ReadFile(cfg.CheckpointPath)
	if err != nil {
		t.Fatal(err)
	}
	stale := strings.ReplaceAll(string(raw), first.Model.Tag(), "v0:stale")
	if stale == string(raw) {
		t.Fatal("journal holds no model tags to corrupt")
	}
	if err := os.WriteFile(cfg.CheckpointPath, []byte(stale), 0o644); err != nil {
		t.Fatal(err)
	}
	third := Execute(cfg)
	if third.RestoredCells() >= len(third.Runs) {
		t.Fatal("stale predictions were restored verbatim")
	}
	for i := range third.Runs {
		r := &third.Runs[i]
		if r.Predicted && r.ModelTag != third.Model.Tag() {
			t.Fatalf("cell %s/%d kept stale model tag %q", r.Alg, r.N, r.ModelTag)
		}
		if r.Predicted && r.Restored {
			t.Fatalf("cell %s/%d restored a stale prediction", r.Alg, r.N)
		}
	}
}

// Guided sweeps journal predictions with provenance that must survive
// the JSON round trip.
func TestPredictedRunsRoundTripJSON(t *testing.T) {
	cfg := guidedConfig()
	mx := Execute(cfg)
	var buf strings.Builder
	if err := mx.SaveJSON(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := LoadJSON(strings.NewReader(buf.String()))
	if err != nil {
		t.Fatal(err)
	}
	for i := range mx.Runs {
		a, b := &mx.Runs[i], &back.Runs[i]
		if a.Predicted != b.Predicted || a.PredRelCI != b.PredRelCI || a.ModelTag != b.ModelTag {
			t.Fatalf("prediction provenance lost at %d: %+v vs %+v", i, a, b)
		}
	}
}

// Guided planning extends to the distributed axis: cluster cells fit
// and predict through the closed-form wire terms.
func TestGuidedDistributedSweep(t *testing.T) {
	cfg := distConfig(t, "4x1GbE", "16xFDR")
	cfg.Sizes = []int{256, 512, 1024}
	cfg.Plan = PlanGuided
	mx := Execute(cfg)
	if mx.Planner.MeasuredCells+mx.Planner.PredictedCells != len(mx.Runs) {
		t.Fatalf("planner stats %+v", mx.Planner)
	}
	for i := range mx.Runs {
		r := &mx.Runs[i]
		if r.Seconds <= 0 || r.PKGJoules <= 0 {
			t.Fatalf("cell %s/%d empty: %+v", r.Alg, r.N, r)
		}
		if r.Predicted && r.Cluster != "" && r.Ranks <= 0 {
			t.Fatalf("predicted distributed cell %s/%d lost its rank fit", r.Alg, r.N)
		}
	}
}
