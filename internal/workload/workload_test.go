package workload

import (
	"math"
	"testing"

	"capscale/internal/energy"
)

// smoke is computed once; the full matrix of the smoke config is still
// 12 runs through the whole stack.
var smoke *Matrix

func getSmoke(t *testing.T) *Matrix {
	t.Helper()
	if smoke == nil {
		cfg := SmokeConfig()
		cfg.RecordTraces = true
		cfg.TraceSampleInterval = 1e-4
		smoke = Execute(cfg)
	}
	return smoke
}

func TestAlgorithmNames(t *testing.T) {
	if AlgOpenBLAS.String() != "OpenBLAS" || AlgCAPS.String() != "CAPS" ||
		AlgStrassen.String() != "Strassen" || AlgWinograd.String() != "Winograd" {
		t.Fatal("names")
	}
	if Algorithm(99).String() != "Algorithm(99)" {
		t.Fatal("out of range name")
	}
	if len(PaperAlgorithms()) != 3 {
		t.Fatal("paper algorithms")
	}
}

func TestPaperConfigShape(t *testing.T) {
	cfg := PaperConfig()
	if len(cfg.Sizes) != 4 || len(cfg.Threads) != 4 || len(cfg.Algorithms) != 3 {
		t.Fatalf("config %+v", cfg)
	}
	if cfg.QuiesceSeconds != 60 {
		t.Fatal("quiesce")
	}
	// 3 × 4 × 4 = the paper's 48 result sets.
	if n := len(cfg.Algorithms) * len(cfg.Sizes) * len(cfg.Threads); n != 48 {
		t.Fatalf("matrix size %d", n)
	}
}

func TestExecuteProducesFullMatrix(t *testing.T) {
	mx := getSmoke(t)
	want := len(mx.Cfg.Algorithms) * len(mx.Cfg.Sizes) * len(mx.Cfg.Threads)
	if len(mx.Runs) != want {
		t.Fatalf("%d runs want %d", len(mx.Runs), want)
	}
	for _, alg := range mx.Cfg.Algorithms {
		for _, n := range mx.Cfg.Sizes {
			for _, p := range mx.Cfg.Threads {
				r := mx.Get(alg, n, p)
				if r == nil {
					t.Fatalf("missing %v n=%d p=%d", alg, n, p)
				}
				if r.Seconds <= 0 || r.PKGJoules <= 0 || r.DRAMJoules <= 0 {
					t.Fatalf("degenerate run %+v", r)
				}
			}
		}
	}
	if mx.Get(AlgOpenBLAS, 9999, 1) != nil {
		t.Fatal("phantom run")
	}
}

func TestRunDerivedQuantities(t *testing.T) {
	mx := getSmoke(t)
	r := mx.Get(AlgOpenBLAS, 256, 2)
	if r.WattsPKG() <= 0 || r.WattsDRAM() <= 0 || r.WattsPP0() <= 0 {
		t.Fatal("watts")
	}
	if r.WattsTotal() <= r.WattsPKG() {
		t.Fatal("total should add DRAM")
	}
	if got := r.EP(); math.Abs(got-r.WattsTotal()/1.0*1.0/1.0) > 1e9 {
		_ = got // EP is watts/seconds; sanity below
	}
	want := r.WattsTotal() / r.Seconds * r.Seconds // = WattsTotal
	if math.Abs(energy.EAvg(r.Planes())-want) > 1e-9 {
		t.Fatal("planes should encapsulate PKG+DRAM")
	}
}

func TestMeasuredEnergyMatchesPowerTimesTime(t *testing.T) {
	mx := getSmoke(t)
	for i := range mx.Runs {
		r := &mx.Runs[i]
		if r.WattsPKG() < 9 || r.WattsPKG() > 60 {
			t.Fatalf("%v n=%d p=%d: implausible PKG watts %v", r.Alg, r.N, r.Threads, r.WattsPKG())
		}
		// PP0 under PKG always.
		if r.PP0Joules >= r.PKGJoules {
			t.Fatalf("PP0 %v >= PKG %v", r.PP0Joules, r.PKGJoules)
		}
	}
}

func TestPaperOrderingsHoldOnSmokeMatrix(t *testing.T) {
	mx := getSmoke(t)
	for _, n := range mx.Cfg.Sizes {
		for _, p := range mx.Cfg.Threads {
			blasT := mx.Get(AlgOpenBLAS, n, p).Seconds
			strT := mx.Get(AlgStrassen, n, p).Seconds
			if blasT >= strT {
				t.Fatalf("n=%d p=%d: OpenBLAS (%v) not faster than Strassen (%v)", n, p, blasT, strT)
			}
		}
	}
	// OpenBLAS draws the most power at the top thread count, at sizes
	// big enough for its static row partition to fill the workers (at
	// n=128 the MC blocking leaves threads idle — the paper's smallest
	// size is 512).
	top := mx.Cfg.Threads[len(mx.Cfg.Threads)-1]
	for _, n := range mx.Cfg.Sizes {
		if n < 256 {
			continue
		}
		pb := mx.Get(AlgOpenBLAS, n, top).WattsTotal()
		ps := mx.Get(AlgStrassen, n, top).WattsTotal()
		if pb <= ps {
			t.Fatalf("n=%d: OpenBLAS power %v not above Strassen %v", n, pb, ps)
		}
	}
}

func TestSlowdownAggregation(t *testing.T) {
	mx := getSmoke(t)
	n := mx.Cfg.Sizes[0]
	man := 0.0
	for _, p := range mx.Cfg.Threads {
		man += mx.Get(AlgStrassen, n, p).Seconds / mx.Get(AlgOpenBLAS, n, p).Seconds
	}
	man /= float64(len(mx.Cfg.Threads))
	if got := mx.AvgSlowdownAtSize(AlgStrassen, n); math.Abs(got-man) > 1e-12 {
		t.Fatalf("avg slowdown %v want %v", got, man)
	}
	if mx.Slowdown(AlgOpenBLAS, n, 1) != 1 {
		t.Fatal("self-slowdown should be 1")
	}
}

func TestPowerAggregation(t *testing.T) {
	mx := getSmoke(t)
	p := mx.Cfg.Threads[len(mx.Cfg.Threads)-1]
	got := mx.AvgPowerAtThreads(AlgOpenBLAS, p)
	one := mx.AvgPowerAtThreads(AlgOpenBLAS, 1)
	if got <= one {
		t.Fatal("power should grow with threads for OpenBLAS")
	}
}

func TestEPAggregationAndScalingSeries(t *testing.T) {
	mx := getSmoke(t)
	n := mx.Cfg.Sizes[len(mx.Cfg.Sizes)-1]
	if mx.AvgEPAtSize(AlgOpenBLAS, n) <= mx.AvgEPAtSize(AlgStrassen, n) {
		t.Fatal("OpenBLAS should have the higher EP (faster at same order of power)")
	}
	s := mx.ScalingSeries(AlgOpenBLAS, n)
	if len(s.P) != len(mx.Cfg.Threads) {
		t.Fatal("series length")
	}
	if s.S[0] != 1 {
		t.Fatalf("S at base parallelism should be 1, got %v", s.S[0])
	}
	for i := 1; i < len(s.S); i++ {
		if s.S[i] <= s.S[i-1] {
			t.Fatalf("scaling not increasing: %v", s.S)
		}
	}
}

func TestPowerCurveMonotone(t *testing.T) {
	mx := getSmoke(t)
	curve := mx.PowerCurve(AlgOpenBLAS, mx.Cfg.Sizes[0])
	for i := 1; i < len(curve); i++ {
		if curve[i] <= curve[i-1] {
			t.Fatalf("OpenBLAS power curve not increasing: %v", curve)
		}
	}
}

func TestSessionTrace(t *testing.T) {
	mx := getSmoke(t)
	tr := mx.SessionTrace()
	// Total duration = Σ run durations + (runs−1) quiesce gaps.
	want := 0.0
	for i := range mx.Runs {
		want += mx.Runs[i].Trace.Duration()
	}
	want += float64(len(mx.Runs)-1) * mx.Cfg.QuiesceSeconds
	if math.Abs(tr.Duration()-want)/want > 0.01 {
		t.Fatalf("session duration %v want %v", tr.Duration(), want)
	}
	// Energy must exceed the idle baseline over the same span.
	pkg, _, _ := tr.Energy()
	if pkg <= mx.Cfg.Machine.IdlePower().PKG*tr.Duration()*0.99 {
		t.Fatal("session energy at or below idle")
	}
}

func TestBuildTreeUnknownAlgorithmPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	BuildTree(SmokeConfig().Machine, Algorithm(42), 64, 1)
}

func TestWinogradVariantRuns(t *testing.T) {
	cfg := SmokeConfig()
	r := ExecuteOne(cfg, AlgWinograd, 256, 1)
	if r.Seconds <= 0 {
		t.Fatal("winograd run degenerate")
	}
	// At one thread, runtime is the serial sum of leaf costs, so
	// Winograd's fewer additions must show up directly. (At higher
	// thread counts its longer pre-add dependency chains can mask the
	// saving on small problems.)
	rs := ExecuteOne(cfg, AlgStrassen, 256, 1)
	if r.Seconds >= rs.Seconds {
		t.Fatalf("Winograd (%v) not faster than classic (%v) at one thread", r.Seconds, rs.Seconds)
	}
}
