package workload

import (
	"reflect"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"capscale/internal/obs"
)

// TestRunCacheIsBounded pins the memory fix: with a cap of 2, sweeping
// more than 2 distinct cells must evict oldest entries instead of
// growing without limit, and the eviction counter must advance.
func TestRunCacheIsBounded(t *testing.T) {
	ResetRunCache()
	prev := SetRunCacheCap(2)
	defer func() { SetRunCacheCap(prev); ResetRunCache() }()

	evicted0 := obs.GetCounter("workload.cache.evictions").Value()
	cfg := SmokeConfig()
	for _, n := range []int{64, 128, 256} {
		ExecuteOne(cfg, AlgOpenBLAS, n, 1)
	}
	if got := runCacheLen(); got != 2 {
		t.Fatalf("cache holds %d entries under cap 2", got)
	}
	evictions := obs.GetCounter("workload.cache.evictions").Value() - evicted0
	if evictions != 1 {
		t.Fatalf("evictions = %d, want 1", evictions)
	}

	// FIFO: the oldest cell (n=64) was evicted, the newer two remain.
	hits0 := obs.GetCounter("workload.cache.hits").Value()
	ExecuteOne(cfg, AlgOpenBLAS, 128, 1)
	ExecuteOne(cfg, AlgOpenBLAS, 256, 1)
	if hits := obs.GetCounter("workload.cache.hits").Value() - hits0; hits != 2 {
		t.Fatalf("remaining entries did not hit (hits=%d, want 2)", hits)
	}
	misses0 := obs.GetCounter("workload.cache.misses").Value()
	ExecuteOne(cfg, AlgOpenBLAS, 64, 1)
	if misses := obs.GetCounter("workload.cache.misses").Value() - misses0; misses != 1 {
		t.Fatalf("evicted entry hit the cache (misses=%d, want 1)", misses)
	}
}

// TestRunCacheShrinksWhenCapLowered: lowering the cap below the live
// entry count evicts immediately.
func TestRunCacheShrinksWhenCapLowered(t *testing.T) {
	ResetRunCache()
	prev := SetRunCacheCap(8)
	defer func() { SetRunCacheCap(prev); ResetRunCache() }()

	cfg := SmokeConfig()
	for _, n := range []int{64, 128, 256} {
		ExecuteOne(cfg, AlgOpenBLAS, n, 1)
	}
	if got := runCacheLen(); got != 3 {
		t.Fatalf("cache holds %d entries, want 3", got)
	}
	SetRunCacheCap(1)
	if got := runCacheLen(); got != 1 {
		t.Fatalf("cache holds %d entries after cap 1, want 1", got)
	}
}

// TestRunCacheDisabledByNonPositiveCap: cap 0 stores nothing.
func TestRunCacheDisabledByNonPositiveCap(t *testing.T) {
	ResetRunCache()
	prev := SetRunCacheCap(0)
	defer func() { SetRunCacheCap(prev); ResetRunCache() }()

	cfg := SmokeConfig()
	ExecuteOne(cfg, AlgOpenBLAS, 64, 1)
	if got := runCacheLen(); got != 0 {
		t.Fatalf("cap 0 cached %d entries", got)
	}
}

// TestRunCacheCountsHitsAndMisses: the registry sees exactly one miss
// for the first execution and one hit for the repeat.
func TestRunCacheCountsHitsAndMisses(t *testing.T) {
	ResetRunCache()
	defer ResetRunCache()
	cfg := SmokeConfig()
	hits0 := obs.GetCounter("workload.cache.hits").Value()
	misses0 := obs.GetCounter("workload.cache.misses").Value()
	ExecuteOne(cfg, AlgOpenBLAS, 64, 1)
	ExecuteOne(cfg, AlgOpenBLAS, 64, 1)
	if d := obs.GetCounter("workload.cache.misses").Value() - misses0; d != 1 {
		t.Fatalf("misses +%d, want +1", d)
	}
	if d := obs.GetCounter("workload.cache.hits").Value() - hits0; d != 1 {
		t.Fatalf("hits +%d, want +1", d)
	}
}

// TestRunCacheInstancesAreIndependent: a sweep with its own
// Config.Cache must not populate (or be served by) the process
// default, and resetting the default must not touch the instance —
// the semantic isolation a long-running server needs.
func TestRunCacheInstancesAreIndependent(t *testing.T) {
	ResetRunCache()
	defer ResetRunCache()

	own := NewRunCache(DefaultRunCacheCap)
	cfg := SmokeConfig()
	cfg.Cache = own
	ExecuteOne(cfg, AlgOpenBLAS, 64, 1)
	if got := own.Len(); got != 1 {
		t.Fatalf("instance cache holds %d entries, want 1", got)
	}
	if got := runCacheLen(); got != 0 {
		t.Fatalf("default cache holds %d entries after instance-scoped run", got)
	}
	ResetRunCache()
	if got := own.Len(); got != 1 {
		t.Fatalf("ResetRunCache emptied an unrelated instance (len %d)", got)
	}
	own.Reset()
	if got := own.Len(); got != 0 {
		t.Fatalf("instance Reset left %d entries", got)
	}
}

// TestRunCacheSingleFlight: concurrent Do calls on one key compute it
// exactly once; every other caller waits for that result.
func TestRunCacheSingleFlight(t *testing.T) {
	rc := NewRunCache(8)
	key := runKey{n: 64, threads: 1}
	var computes int32
	gate := make(chan struct{})
	const callers = 8
	var wg sync.WaitGroup
	results := make([]Run, callers)
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i] = rc.Do(key, func() Run {
				atomic.AddInt32(&computes, 1)
				<-gate // hold every concurrent caller in the wait path
				return Run{N: 64, Threads: 1, Seconds: 1.5}
			})
		}(i)
	}
	// Let the followers pile up on the leader before releasing it.
	time.Sleep(10 * time.Millisecond)
	close(gate)
	wg.Wait()
	if computes != 1 {
		t.Fatalf("key computed %d times under concurrent Do, want 1", computes)
	}
	for i := range results {
		if results[i].Seconds != 1.5 {
			t.Fatalf("caller %d got %+v", i, results[i])
		}
	}
}

// TestRunCacheSingleFlightLeaderPanic: a panicking compute must not
// wedge its waiters — they recompute for themselves.
func TestRunCacheSingleFlightLeaderPanic(t *testing.T) {
	rc := NewRunCache(8)
	key := runKey{n: 128}
	entered := make(chan struct{})
	done := make(chan Run, 1)
	go func() {
		defer func() { recover() }()
		rc.Do(key, func() Run {
			close(entered)
			time.Sleep(10 * time.Millisecond)
			panic("injected")
		})
	}()
	<-entered
	go func() {
		done <- rc.Do(key, func() Run { return Run{N: 128, Seconds: 2} })
	}()
	select {
	case r := <-done:
		if r.Seconds != 2 {
			t.Fatalf("waiter got %+v after leader panic", r)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("waiter wedged after leader panic")
	}
}

// TestConcurrentExecuteResetAndMetricsRace drives concurrent Execute
// sweeps against cache resets, cap changes and registry reads — the
// observability layer itself must be race-free. It runs under -race in
// scripts/check.sh.
func TestConcurrentExecuteResetAndMetricsRace(t *testing.T) {
	ResetRunCache()
	defer func() { obs.Disable(); ResetRunCache() }()
	col := obs.Enable()

	cfg := SmokeConfig()
	cfg.Sizes = []int{64, 128}
	cfg.Threads = []int{1, 2}
	cfg.Algorithms = []Algorithm{AlgOpenBLAS}
	cfg.Parallelism = 2

	const iters = 20
	var wg sync.WaitGroup
	for g := 0; g < 3; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				Execute(cfg)
			}
		}()
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < iters; i++ {
			ResetRunCache()
			SetRunCacheCap(1 + i%4)
		}
		SetRunCacheCap(DefaultRunCacheCap)
	}()
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < iters; i++ {
			obs.Metrics()
			col.Spans()
			col.TrackNames()
		}
	}()
	wg.Wait()

	// The sweeps must still be deterministic under all that churn.
	ResetRunCache()
	a := Execute(cfg)
	b := Execute(cfg)
	if !reflect.DeepEqual(a.Runs, b.Runs) {
		t.Fatal("concurrent churn broke sweep determinism")
	}
}
