package workload

import (
	"testing"

	"capscale/internal/hw"
)

func TestCrossPlatformShape(t *testing.T) {
	pts := CrossPlatform(hw.Zoo(), 1024)
	if len(pts) != len(hw.Zoo())*3 {
		t.Fatalf("points %d", len(pts))
	}
	byMachine := map[string][]PlatformPoint{}
	for _, p := range pts {
		if p.Seconds <= 0 || p.Watts <= 0 || p.EP <= 0 || p.EDP <= 0 {
			t.Fatalf("degenerate point %+v", p)
		}
		byMachine[p.Machine] = append(byMachine[p.Machine], p)
	}
	for name, rows := range byMachine {
		if len(rows) != 3 {
			t.Fatalf("%s has %d rows", name, len(rows))
		}
		// Crossover identical across a machine's rows.
		for _, r := range rows[1:] {
			if r.CrossoverN != rows[0].CrossoverN {
				t.Fatalf("%s crossover varies per algorithm", name)
			}
		}
		// OpenBLAS fastest on every platform at these sizes.
		var blasT float64
		for _, r := range rows {
			if r.Algorithm == AlgOpenBLAS {
				blasT = r.Seconds
			}
		}
		for _, r := range rows {
			if r.Algorithm != AlgOpenBLAS && r.Seconds <= blasT {
				t.Errorf("%s: %v not slower than OpenBLAS", name, r.Algorithm)
			}
		}
	}
}

func TestCrossPlatformCrossoverTracksBalance(t *testing.T) {
	pts := CrossPlatform(hw.Zoo(), 512)
	cross := map[string]float64{}
	for _, p := range pts {
		cross[p.Machine] = p.CrossoverN
	}
	hbm := cross[hw.BandwidthRichNode().Name]
	paper := cross[hw.HaswellE31225().Name]
	if hbm >= paper {
		t.Fatalf("bandwidth-rich node crossover %v not below the paper machine's %v", hbm, paper)
	}
	// The HBM node's crossover should be small enough that Strassen
	// pays off at modest sizes there.
	if hbm > 512 {
		t.Fatalf("HBM crossover %v unexpectedly large", hbm)
	}
}

func TestConfigValidate(t *testing.T) {
	good := SmokeConfig()
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	cases := map[string]func(*Config){
		"nil machine":    func(c *Config) { c.Machine = nil },
		"no sizes":       func(c *Config) { c.Sizes = nil },
		"no threads":     func(c *Config) { c.Threads = nil },
		"no algorithms":  func(c *Config) { c.Algorithms = nil },
		"bad size":       func(c *Config) { c.Sizes = []int{0} },
		"threads > core": func(c *Config) { c.Threads = []int{99} },
		"neg quiesce":    func(c *Config) { c.QuiesceSeconds = -1 },
	}
	for name, mutate := range cases {
		cfg := SmokeConfig()
		mutate(&cfg)
		if err := cfg.Validate(); err == nil {
			t.Errorf("%s accepted", name)
		}
	}
}

func TestExecutePanicsOnInvalidConfig(t *testing.T) {
	cfg := SmokeConfig()
	cfg.Threads = []int{0}
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	Execute(cfg)
}

// The whole pipeline on a 12-core machine: exercises the scheduler,
// the CAPS ownership partition and the static BLAS split well past the
// paper's 4 threads.
func TestTwelveCoreMachineMatrix(t *testing.T) {
	cfg := Config{
		Machine:    hw.XeonE52690v3(),
		Algorithms: PaperAlgorithms(),
		Sizes:      []int{512},
		Threads:    []int{1, 6, 12},
	}
	mx := Execute(cfg)
	for _, alg := range cfg.Algorithms {
		t1 := mx.Get(alg, 512, 1).Seconds
		t12 := mx.Get(alg, 512, 12).Seconds
		if t12 >= t1 {
			t.Errorf("%v did not speed up on 12 cores: %v -> %v", alg, t1, t12)
		}
	}
	// Power grows with threads on the big part too.
	if mx.Get(AlgOpenBLAS, 512, 12).WattsTotal() <= mx.Get(AlgOpenBLAS, 512, 1).WattsTotal() {
		t.Error("12-thread power not above 1-thread")
	}
}

func TestCrossPlatformFasterMachineFasterRun(t *testing.T) {
	pts := CrossPlatform([]*hw.Machine{hw.HaswellE31225(), hw.XeonE52690v3()}, 2048)
	var paper, xeon float64
	for _, p := range pts {
		if p.Algorithm != AlgOpenBLAS {
			continue
		}
		switch p.Machine {
		case hw.HaswellE31225().Name:
			paper = p.Seconds
		case hw.XeonE52690v3().Name:
			xeon = p.Seconds
		}
	}
	if xeon >= paper {
		t.Fatalf("12-core FMA Xeon (%v) not faster than the paper node (%v)", xeon, paper)
	}
}
