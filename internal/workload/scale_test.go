package workload

import (
	"testing"
	"time"

	"capscale/internal/hw"
	"capscale/internal/sim"
)

// TestSimScalabilitySmoke1024Nodes is the scalability gate wired into
// scripts/check.sh: a 1024-node cluster of the paper's machine (4096
// cores) must build and simulate shape-only trees for every algorithm
// well inside a single-digit-second wall-clock budget. Regressions in
// the event queue, idle bitmaps or mask intersection show up here as a
// timeout long before they show up in profiles.
func TestSimScalabilitySmoke1024Nodes(t *testing.T) {
	node := hw.HaswellE31225()
	m := hw.Cluster(node, 1024)
	if m.Cores != 4096 {
		t.Fatalf("cluster has %d cores, want 4096", m.Cores)
	}
	const budget = 10 * time.Second
	start := time.Now()
	for _, alg := range []Algorithm{AlgOpenBLAS, AlgStrassen, AlgCAPS} {
		root := BuildTree(m, alg, 1024, m.Cores)
		res := sim.Run(m, root, sim.Config{Workers: m.Cores})
		if res.Makespan <= 0 || res.Leaves == 0 {
			t.Fatalf("%v: degenerate result %+v", alg, res)
		}
		if res.EnergyPKG <= 0 {
			t.Fatalf("%v: no package energy accumulated", alg)
		}
	}
	if elapsed := time.Since(start); elapsed > budget {
		t.Fatalf("4096-core sweep took %v, budget %v", elapsed, budget)
	}
}
