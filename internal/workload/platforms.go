package workload

import (
	"runtime"
	"sync"
	"sync/atomic"

	"capscale/internal/energy"
	"capscale/internal/hw"
	"capscale/internal/sim"
	"capscale/internal/task"
)

// Cross-platform sweep: the paper's ambition is making algorithmic
// determinations "on arbitrary computing platforms"; this applies the
// model across the machine zoo and reports, per platform, how each
// algorithm fares and where Eq. 9 puts the Strassen crossover.

// PlatformPoint is one (machine, algorithm) cell of the sweep.
type PlatformPoint struct {
	Machine   string
	Algorithm Algorithm
	N         int
	Threads   int
	Seconds   float64
	Watts     float64
	EP        float64
	EDP       float64
	// CrossoverN is the Eq. 9 prediction for the machine (same for
	// every algorithm row of that machine).
	CrossoverN float64
}

// CrossPlatform runs each paper algorithm at full threads on every
// machine and derives the energy metrics. The (machine, algorithm)
// cells are independent simulations, so they fan across a bounded
// worker pool; the result order (machines outer, paper algorithms
// inner) matches the sequential sweep exactly.
func CrossPlatform(machines []*hw.Machine, n int) []PlatformPoint {
	algs := PaperAlgorithms()
	type pcell struct {
		m   *hw.Machine
		alg Algorithm
	}
	cells := make([]pcell, 0, len(machines)*len(algs))
	for _, m := range machines {
		for _, alg := range algs {
			cells = append(cells, pcell{m, alg})
		}
	}
	out := make([]PlatformPoint, len(cells))
	runCell := func(i int) {
		c := cells[i]
		root := BuildTree(c.m, c.alg, n, c.m.Cores)
		res := sim.Run(c.m, root, sim.Config{Workers: c.m.Cores})
		out[i] = PlatformPoint{
			Machine:   c.m.Name,
			Algorithm: c.alg,
			N:         n,
			Threads:   c.m.Cores,
			Seconds:   res.Makespan,
			Watts:     res.AvgPowerTotal(),
			EP:        energy.EP(res.AvgPowerTotal(), res.Makespan),
			EDP:       energy.EDP(res.EnergyTotal(), res.Makespan),
			CrossoverN: energy.CrossoverForMachine(
				c.m.PeakFlops()*c.m.Eff(task.KindGEMM), c.m.DRAMBandwidth),
		}
	}

	workers := runtime.GOMAXPROCS(0)
	if workers > len(cells) {
		workers = len(cells)
	}
	if workers <= 1 {
		for i := range cells {
			runCell(i)
		}
		return out
	}
	var next int64 = -1
	panics := make([]any, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			defer func() { panics[w] = recover() }()
			for {
				i := int(atomic.AddInt64(&next, 1))
				if i >= len(cells) {
					return
				}
				runCell(i)
			}
		}(w)
	}
	wg.Wait()
	for _, p := range panics {
		if p != nil {
			panic(p)
		}
	}
	return out
}
