package workload

import (
	"capscale/internal/energy"
	"capscale/internal/hw"
	"capscale/internal/sim"
	"capscale/internal/task"
)

// Cross-platform sweep: the paper's ambition is making algorithmic
// determinations "on arbitrary computing platforms"; this applies the
// model across the machine zoo and reports, per platform, how each
// algorithm fares and where Eq. 9 puts the Strassen crossover.

// PlatformPoint is one (machine, algorithm) cell of the sweep.
type PlatformPoint struct {
	Machine   string
	Algorithm Algorithm
	N         int
	Threads   int
	Seconds   float64
	Watts     float64
	EP        float64
	EDP       float64
	// CrossoverN is the Eq. 9 prediction for the machine (same for
	// every algorithm row of that machine).
	CrossoverN float64
}

// CrossPlatform runs each paper algorithm at full threads on every
// machine and derives the energy metrics.
func CrossPlatform(machines []*hw.Machine, n int) []PlatformPoint {
	var out []PlatformPoint
	for _, m := range machines {
		crossover := energy.CrossoverForMachine(
			m.PeakFlops()*m.Eff(task.KindGEMM), m.DRAMBandwidth)
		for _, alg := range PaperAlgorithms() {
			root := BuildTree(m, alg, n, m.Cores)
			res := sim.Run(m, root, sim.Config{Workers: m.Cores})
			joules := res.EnergyTotal()
			out = append(out, PlatformPoint{
				Machine:    m.Name,
				Algorithm:  alg,
				N:          n,
				Threads:    m.Cores,
				Seconds:    res.Makespan,
				Watts:      res.AvgPowerTotal(),
				EP:         energy.EP(res.AvgPowerTotal(), res.Makespan),
				EDP:        energy.EDP(joules, res.Makespan),
				CrossoverN: crossover,
			})
		}
	}
	return out
}
