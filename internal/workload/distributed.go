package workload

import (
	"fmt"
	"math"
	"time"

	"capscale/internal/cluster"
	"capscale/internal/dmm"
	"capscale/internal/faults"
	"capscale/internal/monitor"
	"capscale/internal/mpi"
	"capscale/internal/obs"
	"capscale/internal/rapl"
	"capscale/internal/trace"
)

// Distributed cell execution: a cell on the cluster axis runs its rank
// program through the simulated MPI layer, renders the run as a
// cluster power timeline (node planes summed over ranks, NIC, switch),
// and measures that timeline through the same monitor stack as the
// single-node cells — so faults, quarantine, checkpointing and
// reconciliation work unchanged, with the NIC and switch planes
// sampled RAPL-style alongside PKG/PP0/DRAM.

// fitRanks resolves the communicator size (and 2.5D replication) for
// one distributed cell on its cluster spec. It panics on unusable
// combinations — Validate admits any spec, but an algorithm whose
// structure cannot fit even one rank is a configuration error.
func fitRanks(alg Algorithm, n int, spec *cluster.Spec) (ranks, replication int) {
	switch alg {
	case AlgSUMMA:
		r, err := dmm.FitSUMMA(n, spec.Nodes)
		if err != nil {
			panic(fmt.Sprintf("workload: %v", err))
		}
		return r, 1
	case Alg25D:
		r, c, err := dmm.Fit25D(n, spec.Nodes, spec.MemPerNode)
		if err != nil {
			panic(fmt.Sprintf("workload: %v", err))
		}
		return r, c
	case AlgDStrassen:
		return spec.Nodes, 1
	case AlgDistCAPS:
		return dmm.FitCAPS(n, spec.Nodes), 1
	default:
		panic(fmt.Sprintf("workload: %v is not a distributed algorithm", alg))
	}
}

// distProgram returns the rank program for one distributed cell.
func distProgram(alg Algorithm, n, replication int) func(*mpi.Rank) {
	switch alg {
	case AlgSUMMA:
		return dmm.SUMMA(n)
	case Alg25D:
		return dmm.TwoPointFiveD(n, replication)
	case AlgDStrassen:
		return dmm.Strassen(n, 0)
	case AlgDistCAPS:
		return dmm.CAPS(n, 0)
	default:
		panic(fmt.Sprintf("workload: %v is not a distributed algorithm", alg))
	}
}

// executeDistributedCell simulates and measures one cluster cell. The
// MPI run's power timeline replays into the RAPL device with the full
// cluster plane set armed; the Run's joule figures are what the
// polled monitor measured, per plane, with the device truth alongside
// as the reconciliation oracle — exactly the single-node contract,
// extended by the NIC and switch planes.
func executeDistributedCell(cfg Config, c cell, inj *faults.Injector, tr obs.Track) Run {
	t0 := time.Now()
	spec := cfg.clusterOf(c)
	ranks, replication := fitRanks(c.alg, c.n, spec)

	fabric, err := spec.Comms.Fabric()
	if err != nil {
		panic(fmt.Sprintf("workload: cluster %q: %v", spec, err))
	}
	cl, err := cluster.New(cfg.Machine, spec.Nodes, fabric)
	if err != nil {
		panic(fmt.Sprintf("workload: cluster %q: %v", spec, err))
	}

	res, segs := mpi.RunTraced(cl, ranks, distProgram(c.alg, c.n, replication))

	interval := cfg.PollInterval
	if interval <= 0 {
		interval = DefaultPollInterval
	}
	stream, err := monitor.NewStream(monitor.Config{
		PollInterval: interval,
		ObsTrack:     tr,
		Faults:       inj,
		Planes:       rapl.ClusterPlanes(),
	})
	if err != nil {
		panic(fmt.Sprintf("workload: measurement failed: %v", err))
	}
	for _, seg := range segs {
		stream.OnSegment(seg)
	}
	rep, err := stream.Finish()
	if err != nil {
		panic(fmt.Sprintf("workload: measurement failed: %v", err))
	}
	pkg := rep.Plane(rapl.PlanePKG)
	pp0 := rep.Plane(rapl.PlanePP0)
	dram := rep.Plane(rapl.PlaneDRAM)
	nic := rep.Plane(rapl.PlaneNIC)
	sw := rep.Plane(rapl.PlaneSwitch)

	// Cross-check the oracle: the device's integration of the replayed
	// timeline must reproduce the MPI run's own energy account (PP0
	// nests inside PKG, so it is excluded from the sum).
	truth := pkg.TruthJ + dram.TruthJ + nic.TruthJ + sw.TruthJ
	if diff := math.Abs(truth - res.TotalJoules()); diff > 1e-6*math.Max(1, res.TotalJoules()) {
		panic(fmt.Sprintf("workload: replay oracle %v J diverged from MPI run %v J", truth, res.TotalJoules()))
	}

	run := Run{
		Alg: c.alg, N: c.n, Threads: cfg.Machine.Cores,
		Cluster: spec.String(), Ranks: ranks, Replication: replication,
		Seconds:   rep.Duration,
		PKGJoules: pkg.MeasuredJ, PP0Joules: pp0.MeasuredJ, DRAMJoules: dram.MeasuredJ,
		NICJoules: nic.MeasuredJ, SwitchJoules: sw.MeasuredJ,
		TruthPKGJoules: pkg.TruthJ, TruthPP0Joules: pp0.TruthJ, TruthDRAMJoules: dram.TruthJ,
		TruthNICJoules: nic.TruthJ, TruthSwitchJoules: sw.TruthJ,
		MeasSamples:     rep.Samples,
		WireBytes:       res.BytesSent,
		Messages:        res.Messages,
		CritAlphaTerms:  res.CritAlphaTerms,
		CritCommSeconds: res.CritCommSeconds,
		Degraded:        rep.Degraded,
		MeasRetries:     rep.Retries,
		MeasReadErrors:  rep.ReadErrors,
		MeasDrops:       rep.DroppedSamples,
	}
	for _, p := range rep.Quarantined {
		run.QuarantinedPlanes = append(run.QuarantinedPlanes, p.String())
	}
	if cfg.RecordTraces {
		// The trace keeps the node planes (its CSV contract); NIC and
		// switch draw live in the Run's joule columns instead.
		t := trace.FromSegments(segs)
		if cfg.TraceSampleInterval > 0 {
			t = t.Resample(cfg.TraceSampleInterval)
		}
		run.Trace = t
	}
	cellsExecuted.Inc()
	cellSeconds.Observe(time.Since(t0).Seconds())
	return run
}
