package workload

import (
	"bytes"
	"math"
	"path/filepath"
	"reflect"
	"testing"

	"capscale/internal/cluster"
	"capscale/internal/hw"
)

func distConfig(t *testing.T, specs ...string) Config {
	t.Helper()
	cfg := Config{
		Machine:    hw.HaswellE31225(),
		Algorithms: []Algorithm{AlgSUMMA, AlgDistCAPS},
		Sizes:      []int{256},
		Threads:    []int{1},
	}
	for _, s := range specs {
		spec, err := cluster.ParseSpec(s)
		if err != nil {
			t.Fatal(err)
		}
		cfg.Clusters = append(cfg.Clusters, spec)
	}
	return cfg
}

func TestDistributedCellsThroughDriver(t *testing.T) {
	cfg := distConfig(t, "7x1GbE", "16xFDR")
	mx := Execute(cfg)
	// 2 algorithms × 1 size × 2 clusters.
	if len(mx.Runs) != 4 {
		t.Fatalf("got %d runs", len(mx.Runs))
	}
	for i := range mx.Runs {
		r := &mx.Runs[i]
		if r.Failed() {
			t.Fatalf("cell %s/%d@%s failed: %s", r.Alg, r.N, r.Cluster, r.Err)
		}
		if r.Cluster == "" || r.Ranks < 1 {
			t.Fatalf("distributed run missing coordinates: %+v", r)
		}
		if r.Seconds <= 0 || r.PKGJoules <= 0 {
			t.Fatalf("empty measurement: %+v", r)
		}
		if r.Ranks > 1 {
			if r.WireBytes <= 0 || r.Messages <= 0 || r.CritAlphaTerms <= 0 {
				t.Fatalf("no communication recorded: %+v", r)
			}
			if r.NICJoules <= 0 || r.SwitchJoules <= 0 {
				t.Fatalf("interconnect planes empty: %+v", r)
			}
		}
		// The monitor's measurement reconciles against the device truth
		// on every plane, including NIC and switch.
		for _, pair := range [][2]float64{
			{r.PKGJoules, r.TruthPKGJoules},
			{r.DRAMJoules, r.TruthDRAMJoules},
			{r.NICJoules, r.TruthNICJoules},
			{r.SwitchJoules, r.TruthSwitchJoules},
		} {
			if diff := math.Abs(pair[0] - pair[1]); diff > 0.01 {
				t.Fatalf("measured %v J vs truth %v J: %+v", pair[0], pair[1], r)
			}
		}
	}
	// SUMMA on 7 nodes fits a 2×2 grid; dCAPS fits all 7 ranks.
	if r := mx.GetCluster(AlgSUMMA, 256, "7x1GbE"); r == nil || r.Ranks != 4 {
		t.Fatalf("SUMMA fit: %+v", r)
	}
	if r := mx.GetCluster(AlgDistCAPS, 256, "7x1GbE"); r == nil || r.Ranks != 7 {
		t.Fatalf("dCAPS fit: %+v", r)
	}
}

func TestDistributedDeterministicAndCached(t *testing.T) {
	cfg := distConfig(t, "4x1GbE")
	ResetRunCache()
	mx1 := Execute(cfg)
	mx2 := Execute(cfg) // second sweep should be served from cache
	for i := range mx1.Runs {
		a, b := mx1.Runs[i], mx2.Runs[i]
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("distributed sweep not deterministic:\n%+v\n%+v", a, b)
		}
	}
}

func TestDistributedJSONRoundTrip(t *testing.T) {
	cfg := distConfig(t, "4x1GbE")
	mx := Execute(cfg)
	var buf bytes.Buffer
	if err := mx.SaveJSON(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(loaded.Cfg.Clusters) != 1 || loaded.Cfg.Clusters[0].String() != "4x1GbE" {
		t.Fatalf("clusters did not round-trip: %+v", loaded.Cfg.Clusters)
	}
	for i := range mx.Runs {
		want, got := mx.Runs[i], loaded.Runs[i]
		if got.Cluster != want.Cluster || got.Ranks != want.Ranks ||
			got.WireBytes != want.WireBytes || got.Messages != want.Messages ||
			got.CritAlphaTerms != want.CritAlphaTerms ||
			got.NICJoules != want.NICJoules || got.SwitchJoules != want.SwitchJoules {
			t.Fatalf("run did not round-trip:\n%+v\n%+v", want, got)
		}
	}
}

func TestDistributedCheckpointResume(t *testing.T) {
	cfg := distConfig(t, "4x1GbE")
	cfg.CheckpointPath = filepath.Join(t.TempDir(), "sweep.ckpt")
	cfg.NoCache = true
	first := Execute(cfg)
	if first.RestoredCells() != 0 {
		t.Fatalf("fresh sweep restored %d cells", first.RestoredCells())
	}
	second := Execute(cfg)
	if second.RestoredCells() != len(second.Runs) {
		t.Fatalf("resumed sweep restored %d of %d cells",
			second.RestoredCells(), len(second.Runs))
	}
	for i := range first.Runs {
		a, b := first.Runs[i], second.Runs[i]
		b.Restored = false
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("restored run differs:\n%+v\n%+v", a, b)
		}
	}
}

func TestValidateRejectsDistributedWithoutClusters(t *testing.T) {
	cfg := distConfig(t, "4x1GbE")
	cfg.Clusters = nil
	if err := cfg.Validate(); err == nil {
		t.Fatal("distributed algorithms without clusters accepted")
	}
}
