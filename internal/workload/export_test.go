package workload

import (
	"bytes"
	"fmt"
	"os"
	"testing"

	"capscale/internal/obs"
)

// traceStatsFor executes the export path and validates the result
// structurally, returning the stats for further assertions.
func traceStatsFor(t *testing.T, buf *bytes.Buffer) *obs.TraceStats {
	t.Helper()
	stats, err := obs.ValidateChromeTrace(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("exported trace is structurally invalid: %v", err)
	}
	return stats
}

// TestRunChromeTraceStructure is the structural golden check for the
// single-run exporter: one thread track per simulated worker, one
// counter track per RAPL plane, and per-track monotone timestamps
// (enforced inside ValidateChromeTrace).
func TestRunChromeTraceStructure(t *testing.T) {
	ResetRunCache()
	defer func() { obs.Disable(); ResetRunCache() }()
	col := obs.Enable()

	cfg := SmokeConfig()
	cfg.RecordTraces = true
	cfg.RecordSchedule = true
	const threads = 2
	run := ExecuteOne(cfg, AlgCAPS, 128, threads)

	var buf bytes.Buffer
	if err := WriteRunChromeTrace(&buf, &run, col); err != nil {
		t.Fatal(err)
	}
	stats := traceStatsFor(t, &buf)

	if got := stats.Processes[1]; got == "" {
		t.Fatal("sim process has no process_name metadata")
	}
	for w := 0; w < threads; w++ {
		key := fmt.Sprintf("1/%d", w)
		if got, want := stats.ThreadNames[key], fmt.Sprintf("worker %d", w); got != want {
			t.Fatalf("thread %s named %q, want %q", key, got, want)
		}
		if stats.SpansPerThread[key] == 0 {
			t.Fatalf("worker %d track has no leaf spans", w)
		}
	}
	for _, plane := range []string{"PKG W", "PP0 W", "DRAM W"} {
		if stats.CounterSamples[plane] == 0 {
			t.Fatalf("no counter samples on RAPL track %q", plane)
		}
		if want := len(run.Trace.Samples); stats.CounterSamples[plane] != want {
			t.Fatalf("track %q has %d samples, power trace holds %d",
				plane, stats.CounterSamples[plane], want)
		}
	}
	// The driver collector rode along as pid 2.
	if got := stats.Processes[2]; got == "" {
		t.Fatal("driver process has no process_name metadata")
	}
	var driverSpans int
	for key, n := range stats.SpansPerThread {
		if len(key) > 2 && key[:2] == "2/" {
			driverSpans += n
		}
	}
	if driverSpans == 0 {
		t.Fatal("no driver spans exported from the obs collector")
	}
}

// TestRunChromeTraceRequiresRecording: exporting a bare run is a
// usage error, not an empty file.
func TestRunChromeTraceRequiresRecording(t *testing.T) {
	ResetRunCache()
	defer ResetRunCache()
	run := ExecuteOne(SmokeConfig(), AlgOpenBLAS, 64, 1)
	var buf bytes.Buffer
	if err := WriteRunChromeTrace(&buf, &run, nil); err == nil {
		t.Fatal("export of a run without schedule or trace did not error")
	}
}

// TestMatrixChromeTraceStructure checks the session exporter: a "runs"
// track with one span per cell and concatenated RAPL counter tracks
// spanning the whole session.
func TestMatrixChromeTraceStructure(t *testing.T) {
	ResetRunCache()
	defer ResetRunCache()

	cfg := SmokeConfig()
	cfg.RecordTraces = true
	cfg.Sizes = []int{64, 128}
	cfg.Threads = []int{1, 2}
	cfg.Algorithms = []Algorithm{AlgOpenBLAS, AlgCAPS}
	mx := Execute(cfg)

	var buf bytes.Buffer
	if err := WriteMatrixChromeTrace(&buf, mx, nil); err != nil {
		t.Fatal(err)
	}
	stats := traceStatsFor(t, &buf)

	if got, want := stats.SpansPerThread["1/0"], len(mx.Runs); got != want {
		t.Fatalf("runs track has %d spans, want one per cell (%d)", got, want)
	}
	var wantSamples int
	for i := range mx.Runs {
		wantSamples += len(mx.Runs[i].Trace.Samples)
	}
	for _, plane := range []string{"PKG W", "PP0 W", "DRAM W"} {
		if stats.CounterSamples[plane] != wantSamples {
			t.Fatalf("session track %q has %d samples, want %d",
				plane, stats.CounterSamples[plane], wantSamples)
		}
	}
}

// TestMatrixChromeTraceRequiresTraces: a sweep executed without
// RecordTraces cannot be exported as a session.
func TestMatrixChromeTraceRequiresTraces(t *testing.T) {
	ResetRunCache()
	defer ResetRunCache()
	mx := Execute(SmokeConfig())
	var buf bytes.Buffer
	if err := WriteMatrixChromeTrace(&buf, mx, nil); err == nil {
		t.Fatal("export of a traceless sweep did not error")
	}
}

// TestTraceSmokeGoldenFile validates a trace file produced by an
// actual CLI invocation (scripts/trace_smoke.sh sets
// CAPSCALE_TRACE_FILE); it is skipped in a bare `go test` run.
func TestTraceSmokeGoldenFile(t *testing.T) {
	path := os.Getenv("CAPSCALE_TRACE_FILE")
	if path == "" {
		t.Skip("CAPSCALE_TRACE_FILE not set; run via scripts/trace_smoke.sh")
	}
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	stats, err := obs.ValidateChromeTrace(f)
	if err != nil {
		t.Fatalf("CLI-produced trace %s is structurally invalid: %v", path, err)
	}
	if stats.Events == 0 {
		t.Fatal("CLI-produced trace is empty")
	}
	for _, plane := range []string{"PKG W", "PP0 W", "DRAM W"} {
		if stats.CounterSamples[plane] == 0 {
			t.Fatalf("CLI-produced trace lacks RAPL counter track %q", plane)
		}
	}
}
