// Bridging the sweep matrix to internal/model: analytic terms for any
// cell, and observation extraction from measured runs so a fitted
// model can stand in for unmeasured cells.
package workload

import (
	"fmt"

	"capscale/internal/model"
)

// distKindOf maps a distributed sweep algorithm to its model
// accountant.
func distKindOf(alg Algorithm) (model.DistKind, bool) {
	switch alg {
	case AlgSUMMA:
		return model.DistSUMMA, true
	case Alg25D:
		return model.Dist25D, true
	case AlgDStrassen:
		return model.DistDStrassen, true
	case AlgDistCAPS:
		return model.DistCAPS, true
	}
	return 0, false
}

// cellTerms computes the analytic model terms for one cell without
// executing it. Dense node families use the closed-form accountants;
// sparse cells walk the (cheap, already shape-only) task tree;
// distributed cells use the closed wire/work forms on the fitted rank
// count.
func cellTerms(cfg *Config, c cell) (model.Terms, error) {
	m := cfg.Machine
	switch c.alg {
	case AlgOpenBLAS:
		return model.Classic(m, c.n, c.threads), nil
	case AlgStrassen:
		return model.Strassen(m, c.n, c.threads, false), nil
	case AlgWinograd:
		return model.Strassen(m, c.n, c.threads, true), nil
	case AlgCAPS:
		return model.CAPS(m, c.n, c.threads), nil
	case AlgSpMV, AlgCG:
		return model.FromTree(m, model.FamilySparse, buildSparseTree(m, c.alg, c.n, c.threads), c.threads), nil
	}
	kind, ok := distKindOf(c.alg)
	if !ok {
		return model.Terms{}, fmt.Errorf("workload: no model terms for algorithm %s", c.alg)
	}
	spec := cfg.clusterOf(c)
	if spec == nil {
		return model.Terms{}, fmt.Errorf("workload: distributed cell %s without a cluster spec", c.alg)
	}
	ranks, repl := fitRanks(c.alg, c.n, spec)
	fab, err := spec.Comms.Fabric()
	if err != nil {
		return model.Terms{}, fmt.Errorf("workload: cluster %q: %v", spec, err)
	}
	return model.Distributed(m, fab, kind, c.n, ranks, repl)
}

// ModelObservations converts the matrix's measured runs into model
// training observations. Failed and predicted runs are excluded —
// predictions must never feed back into a fit.
func (mx *Matrix) ModelObservations() []model.Obs {
	cells := mx.Cfg.cells()
	if len(cells) != len(mx.Runs) {
		panic("workload: matrix runs do not match its config's cells")
	}
	obs := make([]model.Obs, 0, len(mx.Runs))
	for i := range mx.Runs {
		r := &mx.Runs[i]
		if r.Failed() || r.Predicted {
			continue
		}
		t, err := cellTerms(&mx.Cfg, cells[i])
		if err != nil {
			continue
		}
		obs = append(obs, model.Obs{
			Key:     mx.Cfg.cellKey(cells[i]),
			Terms:   t,
			Seconds: r.Seconds,
			PKGJ:    r.PKGJoules,
			PP0J:    r.PP0Joules,
			DRAMJ:   r.DRAMJoules,
			NICJ:    r.NICJoules,
			SwitchJ: r.SwitchJoules,
		})
	}
	return obs
}

// FitModel fits (or returns the already-fitted) energy-complexity
// model for this matrix's measured cells.
func (mx *Matrix) FitModel() (*model.Model, error) {
	if mx.Model != nil {
		return mx.Model, nil
	}
	mo, err := model.Fit(mx.Cfg.Machine, mx.ModelObservations())
	if err != nil {
		return nil, err
	}
	mx.Model = mo
	return mo, nil
}
