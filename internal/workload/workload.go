// Package workload drives the paper's experiment matrix: every
// algorithm × problem size × thread count combination, executed on the
// virtual-time simulator, measured through the emulated RAPL/PAPI
// stack, and reduced to the energy-performance quantities of Section
// III. The result feeds internal/report's tables and figures and the
// repository's benchmark harness.
package workload

import (
	"fmt"
	"math"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"capscale/internal/blas"
	"capscale/internal/caps"
	"capscale/internal/cluster"
	"capscale/internal/energy"
	"capscale/internal/faults"
	"capscale/internal/hw"
	"capscale/internal/matrix"
	"capscale/internal/model"
	"capscale/internal/monitor"
	"capscale/internal/obs"
	"capscale/internal/rapl"
	"capscale/internal/sim"
	"capscale/internal/store"
	"capscale/internal/strassen"
	"capscale/internal/task"
	"capscale/internal/trace"
)

// DefaultPollInterval is the monitor's sampling period when the
// configuration leaves PollInterval unset: 10 ms (100 Hz), a typical
// rate for a PAPI-based RAPL poller, and far inside the counter wrap
// period at any power the machine zoo can draw.
const DefaultPollInterval = 0.01

// DefaultCellRetries is how many times a failed (aborted or panicked)
// cell is re-attempted under an armed fault schedule before the sweep
// records it as failed and moves on.
const DefaultCellRetries = 1

// Algorithm identifies one of the multipliers under test.
type Algorithm int

const (
	// AlgOpenBLAS is the blocked, statically partitioned DGEMM.
	AlgOpenBLAS Algorithm = iota
	// AlgStrassen is the task-parallel classic Strassen (BOTS style).
	AlgStrassen
	// AlgCAPS is Communication Avoiding Parallel Strassen.
	AlgCAPS
	// AlgWinograd is the Strassen-Winograd variant (an extension beyond
	// the paper's three test fixtures).
	AlgWinograd

	// The distributed family runs on the cluster axis (Config.Clusters)
	// through the simulated MPI layer instead of the shared-memory
	// simulator — the paper's Section VIII scaling-out direction.

	// AlgSUMMA is the classic 2-D SUMMA baseline on a √P×√P grid.
	AlgSUMMA
	// Alg25D is Solomonik–Demmel 2.5D multiplication; the replication
	// factor is fitted to the cluster's per-node memory.
	Alg25D
	// AlgDStrassen is distributed classic (depth-first) Strassen, the
	// non-communication-avoiding baseline.
	AlgDStrassen
	// AlgDistCAPS is distributed CAPS on 7^k ranks (Ballard et al.'s
	// BFS recursion), the Eq. 8 communication-optimal fixture.
	AlgDistCAPS

	// The sparse family runs on the node axis like the dense
	// algorithms, over the canonical banded SPD system (sparse.go) —
	// nnz-driven work with a bandwidth-bound memory term.

	// AlgSpMV is repeated sparse matrix-vector multiplication in CSR.
	AlgSpMV
	// AlgCG is the conjugate-gradient iteration loop (SpMV plus
	// level-1 vector work) on the same system.
	AlgCG
)

var algNames = [...]string{"OpenBLAS", "Strassen", "CAPS", "Winograd",
	"SUMMA", "2.5D", "DStrassen", "dCAPS", "SpMV", "CG"}

func (a Algorithm) String() string {
	if a < 0 || int(a) >= len(algNames) {
		return fmt.Sprintf("Algorithm(%d)", int(a))
	}
	return algNames[a]
}

// Distributed reports whether the algorithm runs on the cluster axis.
func (a Algorithm) Distributed() bool { return a >= AlgSUMMA && a <= AlgDistCAPS }

// Sparse reports whether the algorithm is a sparse workload (banded
// SPD system instead of dense n×n operands).
func (a Algorithm) Sparse() bool { return a == AlgSpMV || a == AlgCG }

// AlgorithmNames lists every algorithm's canonical name in enum order —
// the single registry the CLIs validate -alg/-algs flags against.
func AlgorithmNames() []string {
	return append([]string(nil), algNames[:]...)
}

// ParseAlgorithm resolves a (case-insensitive) algorithm name. The
// error lists the valid names, so every CLI using it reports the same
// actionable message.
func ParseAlgorithm(name string) (Algorithm, error) {
	for i, n := range algNames {
		if strings.EqualFold(n, name) {
			return Algorithm(i), nil
		}
	}
	return 0, fmt.Errorf("unknown algorithm %q (valid: %s)", name, strings.Join(algNames[:], ", "))
}

// PaperAlgorithms returns the paper's three test fixtures in its order.
func PaperAlgorithms() []Algorithm {
	return []Algorithm{AlgOpenBLAS, AlgStrassen, AlgCAPS}
}

// DistributedAlgorithms returns the cluster-axis family: the classic
// baselines and the communication-avoiding fixtures.
func DistributedAlgorithms() []Algorithm {
	return []Algorithm{AlgSUMMA, Alg25D, AlgDStrassen, AlgDistCAPS}
}

// Config describes an experiment matrix.
type Config struct {
	Machine    *hw.Machine
	Algorithms []Algorithm
	Sizes      []int
	Threads    []int
	// Clusters is the distributed axis: every spec (nodes × fabric ×
	// memory per node) is crossed with Sizes for each distributed
	// algorithm in Algorithms. Each distributed cell runs on the
	// largest rank count the algorithm's structure admits on the spec
	// (one rank per node, all cores), through the simulated MPI layer
	// and the same monitored measurement path as the single-node cells
	// — with the NIC and switch power planes sampled alongside the node
	// planes. Single-node algorithms ignore this axis. Required
	// (Validate) whenever Algorithms contains a distributed algorithm.
	Clusters []cluster.Spec
	// QuiesceSeconds is the idle gap inserted between runs in the
	// concatenated power trace (the paper used 60 s).
	QuiesceSeconds float64
	// RecordTraces keeps each run's resampled power trace in the Run.
	RecordTraces bool
	// RecordSchedule keeps each run's per-leaf placement (worker,
	// interval, kind) in the Run — the worker tracks of an exported
	// Chrome/Perfetto trace. Opt-in: large trees produce large
	// schedules.
	RecordSchedule bool
	// TraceSampleInterval is the poller period for recorded traces.
	TraceSampleInterval float64
	// PollInterval is the measurement monitor's sampling period in
	// seconds of device time; non-positive selects
	// DefaultPollInterval. Every run's joule figures are what the
	// polled RAPL/PAPI stack measured at this rate, reconciled against
	// the device's exact totals (internal/monitor).
	PollInterval float64
	// DisableAffinity / DisableContention forward the simulator's
	// ablation switches.
	DisableAffinity   bool
	DisableContention bool
	// Parallelism bounds how many matrix cells execute concurrently.
	// Cells are independent simulations, so the driver fans them across
	// a worker pool; results land in the paper's nesting order and are
	// bit-identical to a sequential sweep. Zero selects GOMAXPROCS;
	// negative is rejected by Validate.
	Parallelism int
	// NoCache bypasses the in-process run memoization cache: every cell
	// is re-simulated even when an identical configuration has already
	// been executed. Benchmarks and determinism tests use it.
	NoCache bool
	// Cache selects the run memoization cache instance this sweep
	// loads from and stores into; nil selects the shared process
	// default. A long-running embedder (the sweep server) gives its
	// sweeps a cache it owns, so its cap and reset decisions cannot
	// race other pipelines in the process. The cache also single-
	// flights concurrent computes of one cell across every sweep
	// sharing it.
	Cache *RunCache
	// OnRun, when non-nil, is invoked once per cell as it resolves —
	// executed, restored from a checkpoint, or emitted as a model
	// prediction — with the cell's stable key and its final Run. It is
	// called concurrently from the driver's workers, in completion
	// order (not the matrix nesting order); the callback must be safe
	// for concurrent use and must not retain r past the call. The
	// sweep server streams partial results through this hook.
	OnRun func(key string, r *Run)

	// Faults, when non-nil, arms the deterministic fault schedule: each
	// cell the schedule selects executes under an injector that perturbs
	// its measurement stack, the driver contains per-cell failures
	// (recovering panics and retrying up to MaxRetries), and the
	// memoization cache is bypassed entirely — faulted results must
	// never be memoized as clean ones. Unarmed cells still run the
	// bit-identical clean path.
	Faults *faults.Schedule
	// MaxRetries bounds re-attempts of a failed cell under an armed
	// fault schedule. Zero selects DefaultCellRetries; negative disables
	// retrying (one attempt only).
	MaxRetries int
	// CheckpointPath, when non-empty, journals every completed cell to
	// a JSONL file as the sweep progresses, and on the next Execute
	// with the same configuration restores those cells instead of
	// re-simulating them — a killed or crashed sweep resumes where it
	// stopped. Failed cells are not journaled and re-run on resume. The
	// journal is invalidated (and the sweep starts fresh) when the
	// configuration fingerprint changes.
	CheckpointPath string
	// FS, when non-nil, routes all checkpoint-journal and lease I/O
	// through an injectable filesystem — the crash/fault tests inject
	// faults.FaultFS here. Nil selects the real OS filesystem with zero
	// added overhead, matching the fault injector's contract.
	FS store.FS
	// LeaseOwner names this process on the journal's on-disk lease
	// (store.AcquireLease); empty selects "pid-<pid>". Replicas sharing
	// a store directory should use stable distinct IDs so lease
	// diagnostics identify the holder.
	LeaseOwner string
	// LeaseTTL is how long the journal lease stays valid between
	// background renewals; non-positive selects store.DefaultLeaseTTL.
	LeaseTTL time.Duration
	// Lease, when non-nil, is a pre-acquired claim on the checkpoint
	// journal: Execute fences every journal append with it and renews
	// it while the sweep runs, but does not release it — the caller
	// owns its lifecycle (the sweep server acquires leases before
	// launching sweeps). Nil with CheckpointPath set means Execute
	// acquires and releases its own lease.
	Lease *store.Lease
	// Stop, when non-nil, is polled before each cell starts. Once it
	// returns true the remaining cells resolve as interrupted
	// (Run.Interrupted) instead of executing, and the sweep returns
	// with whatever completed — the journal then resumes it later. The
	// sweep server's bounded drain and lease-loss paths use this; cells
	// already executing always run to completion.
	Stop func() bool

	// Plan selects the sweep strategy: PlanExhaustive measures every
	// cell; PlanGuided measures a stratified seed, fits the
	// energy-complexity model (internal/model) and measures only cells
	// whose prediction is too uncertain or that straddle an algorithm
	// crossover, emitting model predictions (Run.Predicted) for the
	// rest. See plan.go.
	Plan PlanMode
	// SeedFraction is the guided plan's target fraction of each
	// algorithm's cells to measure up front (the per-algorithm grid
	// corners are always included). Zero selects DefaultSeedFraction.
	SeedFraction float64
	// Confidence is the guided plan's acceptance threshold on a
	// prediction's ±2σ relative confidence interval: cells above it are
	// measured instead of predicted. Zero selects DefaultConfidence.
	Confidence float64
}

// PaperConfig returns the paper's full 48-run matrix on its platform.
func PaperConfig() Config {
	return Config{
		Machine:        hw.HaswellE31225(),
		Algorithms:     PaperAlgorithms(),
		Sizes:          []int{512, 1024, 2048, 4096},
		Threads:        []int{1, 2, 3, 4},
		QuiesceSeconds: 60,
	}
}

// SmokeConfig returns a small, fast matrix with the same structure,
// for tests.
func SmokeConfig() Config {
	return Config{
		Machine:        hw.HaswellE31225(),
		Algorithms:     PaperAlgorithms(),
		Sizes:          []int{128, 256},
		Threads:        []int{1, 2},
		QuiesceSeconds: 1,
	}
}

// Validate reports a descriptive error for unusable configurations.
func (cfg *Config) Validate() error {
	if cfg.Machine == nil {
		return fmt.Errorf("workload: nil machine")
	}
	if err := cfg.Machine.Validate(); err != nil {
		return err
	}
	if len(cfg.Algorithms) == 0 || len(cfg.Sizes) == 0 || len(cfg.Threads) == 0 {
		return fmt.Errorf("workload: empty algorithms/sizes/threads")
	}
	distributed := false
	for _, a := range cfg.Algorithms {
		if a.Distributed() {
			distributed = true
		}
	}
	if distributed && len(cfg.Clusters) == 0 {
		return fmt.Errorf("workload: distributed algorithms need at least one cluster spec")
	}
	for _, spec := range cfg.Clusters {
		if spec.Nodes <= 0 {
			return fmt.Errorf("workload: cluster spec %q: non-positive node count", spec)
		}
		if spec.MemPerNode <= 0 {
			return fmt.Errorf("workload: cluster spec %q: non-positive memory", spec)
		}
		if err := spec.Comms.Validate(); err != nil {
			return err
		}
	}
	for _, n := range cfg.Sizes {
		if n <= 0 {
			return fmt.Errorf("workload: non-positive size %d", n)
		}
	}
	for _, p := range cfg.Threads {
		if p <= 0 || p > cfg.Machine.Cores {
			return fmt.Errorf("workload: thread count %d outside [1,%d]", p, cfg.Machine.Cores)
		}
	}
	if cfg.QuiesceSeconds < 0 {
		return fmt.Errorf("workload: negative quiesce %v", cfg.QuiesceSeconds)
	}
	if cfg.PollInterval < 0 {
		return fmt.Errorf("workload: negative poll interval %v", cfg.PollInterval)
	}
	if cfg.Parallelism < 0 {
		return fmt.Errorf("workload: negative parallelism %d", cfg.Parallelism)
	}
	if err := cfg.Faults.Validate(); err != nil {
		return err
	}
	if cfg.Plan != PlanExhaustive && cfg.Plan != PlanGuided {
		return fmt.Errorf("workload: unknown plan mode %d", int(cfg.Plan))
	}
	if cfg.SeedFraction < 0 || cfg.SeedFraction > 1 {
		return fmt.Errorf("workload: seed fraction %g outside [0,1]", cfg.SeedFraction)
	}
	if cfg.Confidence < 0 {
		return fmt.Errorf("workload: negative confidence threshold %g", cfg.Confidence)
	}
	if cfg.Plan == PlanGuided {
		// Predicted cells have no power trace, no schedule and no
		// measurement stack to perturb — these features need every cell
		// actually executed.
		switch {
		case cfg.RecordTraces:
			return fmt.Errorf("workload: guided plan cannot record traces (predicted cells have none)")
		case cfg.RecordSchedule:
			return fmt.Errorf("workload: guided plan cannot record schedules (predicted cells have none)")
		case cfg.Faults != nil:
			return fmt.Errorf("workload: guided plan cannot run under fault injection")
		}
	}
	return nil
}

// Run is one cell of the experiment matrix.
type Run struct {
	Alg     Algorithm
	N       int
	Threads int

	// Distributed coordinates: Cluster is the spec string ("16x1GbE",
	// "" for single-node cells), Ranks the communicator size actually
	// fitted to it, Replication the 2.5D c factor (1 otherwise).
	Cluster     string
	Ranks       int
	Replication int

	// Measured communication record (distributed cells only): bytes
	// offered to the wire, message count, and the critical rank's
	// exposed α·log P terms and total communication seconds — the
	// quantities report.CommTable gates against the Eq. 8 /
	// Ballard–Demmel lower bounds.
	WireBytes       float64
	Messages        int
	CritAlphaTerms  int
	CritCommSeconds float64

	// NIC and switch plane joules (distributed cells): measured through
	// the monitor like the node planes, with the device truth alongside.
	NICJoules         float64
	SwitchJoules      float64
	TruthNICJoules    float64
	TruthSwitchJoules float64

	// Seconds is the virtual runtime; the joule figures are what the
	// polling monitor measured through the emulated RAPL/PAPI stack —
	// the same wrap-corrected counter deltas a live driver gets. All
	// EP and scaling figures derive from these measured values.
	Seconds    float64
	PKGJoules  float64
	PP0Joules  float64
	DRAMJoules float64

	// TruthPKGJoules, TruthPP0Joules and TruthDRAMJoules are the RAPL
	// device's exact integrated energy — the oracle kept as a
	// cross-check on the measurement path, never fed into the model.
	TruthPKGJoules  float64
	TruthPP0Joules  float64
	TruthDRAMJoules float64
	// MeasSamples counts the monitor's counter samples over the run.
	MeasSamples int

	// Scheduling facts from the simulator.
	Leaves         int
	RemoteBytes    float64
	StolenLeaves   int
	AllocHighWater float64
	Utilization    float64
	// BusyByKind decomposes busy seconds by kernel class (keyed by the
	// task.Kind name for serializability).
	BusyByKind map[string]float64

	// Trace is the resampled power series (nil unless recorded).
	Trace *trace.Trace

	// Schedule is the per-leaf placement record (nil unless
	// Config.RecordSchedule); it feeds the exported trace's per-worker
	// tracks and is never serialized to JSON.
	Schedule []sim.LeafSpan

	// Degradation record. A Run with Err == "" completed (possibly
	// degraded); a Run with Err != "" failed every contained attempt and
	// carries only its coordinates and the error.

	// Degraded reports that the joule figures are not all clean
	// measurements: a plane was quarantined (and substituted from the
	// simulator's ground truth), a counter wrap was lost or spuriously
	// gained, or measured-vs-truth disagreed beyond
	// monitor.DegradedAbsErrJ. Every consumer rendering this run's
	// numbers must surface the flag.
	Degraded bool
	// QuarantinedPlanes names the planes whose figures fell back to
	// ground truth after repeated read failures.
	QuarantinedPlanes []string
	// MeasRetries / MeasReadErrors / MeasDrops count the monitor's
	// transient-failure handling over the run.
	MeasRetries    int
	MeasReadErrors int
	MeasDrops      int
	// Attempts counts contained execution attempts (0 on the clean
	// path, which makes exactly one uncontained attempt).
	Attempts int
	// Err is the final attempt's failure, or "" for a completed run.
	Err string
	// Restored marks a run loaded from a sweep checkpoint rather than
	// executed in this process. Session-local; never serialized.
	Restored bool

	// Predicted marks a cell whose figures come from the fitted
	// energy-complexity model (guided sweeps) instead of a simulation.
	// Predicted runs carry no traces, no truth planes and no
	// measurement record; every consumer rendering their numbers must
	// surface the flag.
	Predicted bool
	// PredRelCI is the model's ±2σ relative confidence interval on the
	// predicted total energy (Predicted cells only).
	PredRelCI float64
	// ModelTag identifies the fitted model instance (version +
	// training-set hash) that produced a predicted run. A checkpointed
	// prediction is only restored when a refit reproduces its tag.
	ModelTag string
}

// Failed reports whether the cell exhausted its contained attempts
// without completing.
func (r *Run) Failed() bool { return r.Err != "" }

// ErrInterrupted is the Err value of a cell the sweep never started:
// the driver was stopped (Config.Stop — a bounded drain) or the
// journal lease was lost to another replica. Interrupted cells are not
// journaled and not streamed through OnRun; resuming the same
// configuration executes them.
const ErrInterrupted = "sweep interrupted before this cell started"

// Interrupted reports whether this cell was skipped by a stopped
// sweep rather than executed.
func (r *Run) Interrupted() bool { return r.Err == ErrInterrupted }

// MeasurementErr returns the largest per-plane relative error between
// the monitor's measurement and the oracle energy — 0 for a perfectly
// reconciled run, and 0 for legacy runs with no recorded truth. Note
// the floor on relative error is counter quantization (~15 µJ at the
// default ESU), so very short runs show percent-level values without
// anything being wrong; use MeasurementAbsErr to check reconciliation
// independent of run length.
func (r *Run) MeasurementErr() float64 {
	worst := 0.0
	for _, pair := range [][2]float64{
		{r.PKGJoules, r.TruthPKGJoules},
		{r.PP0Joules, r.TruthPP0Joules},
		{r.DRAMJoules, r.TruthDRAMJoules},
	} {
		if pair[1] == 0 {
			continue
		}
		if e := math.Abs(pair[0]-pair[1]) / pair[1]; e > worst {
			worst = e
		}
	}
	return worst
}

// MeasurementAbsErr returns the largest per-plane absolute error in
// joules between the monitor's measurement and the oracle energy. A
// correctly sampled run is within a few counter quanta; a missed
// 32-bit wrap shows up as ~65 kJ, so the two are unambiguous at any
// run length.
func (r *Run) MeasurementAbsErr() float64 {
	worst := 0.0
	for _, pair := range [][2]float64{
		{r.PKGJoules, r.TruthPKGJoules},
		{r.PP0Joules, r.TruthPP0Joules},
		{r.DRAMJoules, r.TruthDRAMJoules},
	} {
		if e := math.Abs(pair[0] - pair[1]); e > worst {
			worst = e
		}
	}
	return worst
}

// safeDiv returns a/b, or 0 when b is 0 — zero-duration runs report
// zero watts rather than NaN/Inf, matching sim.Result's convention.
func safeDiv(a, b float64) float64 {
	if b == 0 {
		return 0
	}
	return a / b
}

// WattsPKG returns average package watts over the run.
func (r *Run) WattsPKG() float64 { return safeDiv(r.PKGJoules, r.Seconds) }

// WattsPP0 returns average core-plane watts over the run.
func (r *Run) WattsPP0() float64 { return safeDiv(r.PP0Joules, r.Seconds) }

// WattsDRAM returns average DRAM watts over the run.
func (r *Run) WattsDRAM() float64 { return safeDiv(r.DRAMJoules, r.Seconds) }

// WattsTotal returns average full-system watts (package + DRAM), the
// EAvg figure the tables use.
func (r *Run) WattsTotal() float64 { return safeDiv(r.PKGJoules+r.DRAMJoules, r.Seconds) }

// EP returns the run's Eq. 1 energy-performance ratio, with EAvg
// encapsulating the PKG and DRAM planes per Eq. 3.
func (r *Run) EP() float64 {
	return energy.EP(energy.EAvg(r.Planes()), r.Seconds)
}

// Planes returns the run's power-plane readings (Eq. 3 inputs). PP0 is
// not listed separately because PKG already contains it, as on real
// RAPL — summing all three would double-count the cores.
func (r *Run) Planes() []energy.PlaneReading {
	return []energy.PlaneReading{
		{Name: "PKG", Watts: r.WattsPKG()},
		{Name: "DRAM", Watts: r.WattsDRAM()},
	}
}

// Matrix is a completed experiment matrix. A Matrix is used through a
// pointer (the lazy Get index embeds a sync.Once); Runs holds the
// cells in the paper's nesting order.
type Matrix struct {
	Cfg  Config
	Runs []Run

	// Model is the fitted energy-complexity model when the sweep ran
	// under PlanGuided (nil otherwise; FitModel fits on demand).
	Model *model.Model
	// Planner records what the guided planner measured vs predicted
	// (zero value for exhaustive sweeps).
	Planner PlannerStats

	// restored counts cells served from the sweep checkpoint (atomic:
	// driver workers record restores concurrently).
	restored int64

	indexOnce sync.Once
	index     map[getKey]int
}

// getKey indexes Runs for Get/GetCluster: single-node cells by
// (alg, n, threads), distributed cells by (alg, n, cluster spec).
type getKey struct {
	alg     Algorithm
	n       int
	threads int
	cluster string
}

// addRestored counts one checkpoint-restored cell.
func (mx *Matrix) addRestored() { atomic.AddInt64(&mx.restored, 1) }

// RestoredCells reports how many cells were restored from the sweep
// checkpoint instead of executed.
func (mx *Matrix) RestoredCells() int { return int(atomic.LoadInt64(&mx.restored)) }

// FailedRuns returns the cells that exhausted their contained attempts
// without completing. Empty on any sweep without an armed fault
// schedule.
func (mx *Matrix) FailedRuns() []*Run {
	var out []*Run
	for i := range mx.Runs {
		if mx.Runs[i].Failed() {
			out = append(out, &mx.Runs[i])
		}
	}
	return out
}

// InterruptedRuns returns the cells a stopped sweep never started —
// non-empty only when Config.Stop fired or the journal lease was lost
// mid-sweep. They are resumable: re-executing the same configuration
// restores the completed cells and runs exactly these.
func (mx *Matrix) InterruptedRuns() []*Run {
	var out []*Run
	for i := range mx.Runs {
		if mx.Runs[i].Interrupted() {
			out = append(out, &mx.Runs[i])
		}
	}
	return out
}

// DegradedRuns returns the completed cells whose figures are flagged
// degraded (quarantined planes, wrap anomalies, or reconciliation
// beyond tolerance).
func (mx *Matrix) DegradedRuns() []*Run {
	var out []*Run
	for i := range mx.Runs {
		if r := &mx.Runs[i]; !r.Failed() && r.Degraded {
			out = append(out, r)
		}
	}
	return out
}

// DegradationSummary renders the sweep's degradation report for CLI
// stderr: one line per failed cell, one per degraded cell, and a
// closing tally. It returns "" for a fully clean matrix, so callers
// can print it unconditionally.
func (mx *Matrix) DegradationSummary() string {
	failed, degraded := mx.FailedRuns(), mx.DegradedRuns()
	if len(failed) == 0 && len(degraded) == 0 {
		return ""
	}
	var sb strings.Builder
	for _, r := range failed {
		fmt.Fprintf(&sb, "warning: cell %s/%d/%d FAILED after %d attempt(s): %s\n",
			r.Alg, r.N, r.Threads, r.Attempts, r.Err)
	}
	for _, r := range degraded {
		fmt.Fprintf(&sb, "warning: cell %s/%d/%d degraded", r.Alg, r.N, r.Threads)
		if len(r.QuarantinedPlanes) > 0 {
			fmt.Fprintf(&sb, " (quarantined %s: measured joules substituted from simulator ground truth)",
				strings.Join(r.QuarantinedPlanes, "+"))
		}
		sb.WriteString("\n")
	}
	fmt.Fprintf(&sb, "warning: %d/%d cells degraded, %d failed — flagged figures are not clean measurements\n",
		len(degraded), len(mx.Runs), len(failed))
	return sb.String()
}

// BuildTree constructs the task tree for one configuration. Exposed so
// benchmarks and ablations can drive the simulator directly.
//
// The operands are shape-only matrices (matrix.Shape): the builders
// read dimensions and region identity but never elements when real
// math is off, so describing an n×n multiply costs KB of tree nodes
// instead of three n×n backing arrays of zeros — hundreds of MB at
// n=4096, which is what made large sweeps memory-bound.
func BuildTree(m *hw.Machine, alg Algorithm, n, threads int) *task.Node {
	a, b, c := matrix.Shape(n, n), matrix.Shape(n, n), matrix.Shape(n, n)
	switch alg {
	case AlgOpenBLAS:
		return blas.Build(m, c, a, b, blas.Options{Workers: threads})
	case AlgStrassen:
		return strassen.Build(m, c, a, b, threads, strassen.Options{})
	case AlgWinograd:
		return strassen.Build(m, c, a, b, threads, strassen.Options{Winograd: true})
	case AlgCAPS:
		return caps.Build(m, c, a, b, threads, caps.Options{})
	case AlgSpMV, AlgCG:
		return buildSparseTree(m, alg, n, threads)
	default:
		panic(fmt.Sprintf("workload: unknown algorithm %v", alg))
	}
}

// Driver metrics: cell throughput and worker occupancy, visible in
// expvar and report.MetricsTable.
var (
	cellsExecuted  = obs.GetCounter("workload.cells.executed")
	cellSeconds    = obs.GetHistogramUnit("workload.cell.seconds", "s")
	driverBusy     = obs.GetGauge("workload.workers.busy")
	sweepsExecuted = obs.GetCounter("workload.sweeps.executed")
	cellsRetried   = obs.GetCounter("workload.cells.retried")
	cellsFailed    = obs.GetCounter("workload.cells.failed")
	cellsRestored  = obs.GetCounter("workload.checkpoint.restored")
	cellsSkipped   = obs.GetCounter("workload.cells.interrupted")
)

// ExecuteOne runs a single configuration through the simulator and the
// RAPL/PAPI measurement stack. Results are memoized in-process keyed
// by machine fingerprint × algorithm × size × threads × ablations ×
// poll interval (see cache.go); set Config.NoCache to force
// re-simulation. Cached calls return an independent deep copy.
func ExecuteOne(cfg Config, alg Algorithm, n, threads int) Run {
	return executeOne(cfg, cell{alg: alg, n: n, threads: threads, spec: -1}, obs.Track{})
}

// ExecuteOneCluster runs a single distributed configuration on one
// cluster spec through the MPI layer and the cluster-plane measurement
// stack. It panics (like ExecuteOne) on non-distributed algorithms.
func ExecuteOneCluster(cfg Config, alg Algorithm, n int, spec cluster.Spec) Run {
	if !alg.Distributed() {
		panic(fmt.Sprintf("workload: %v is not a distributed algorithm", alg))
	}
	cfg.Clusters = []cluster.Spec{spec}
	return executeOne(cfg, cell{alg: alg, n: n, spec: 0}, obs.Track{})
}

// executeOne is the cell dispatcher on an explicit span track (the
// driver pool gives each of its workers one).
func executeOne(cfg Config, c cell, tr obs.Track) Run {
	var sp obs.Span
	if obs.Enabled() {
		sp = obs.StartOn(tr, "cell")
		sp.Arg("alg", c.alg.String())
		sp.ArgInt("n", c.n)
		sp.ArgInt("threads", c.threads)
		if cs := cfg.clusterOf(c); cs != nil {
			sp.Arg("cluster", cs.String())
		}
		defer sp.End()
	}
	if cfg.Faults != nil {
		// An armed fault schedule bypasses the memoization cache in both
		// directions: a faulted (or merely fault-eligible) result must
		// never be served as — or stored alongside — a clean one.
		sp.Arg("faults", "armed")
		return executeContained(cfg, c, tr)
	}
	if cfg.NoCache {
		return executeCell(cfg, c, nil, tr)
	}
	rc := cfg.Cache
	if rc == nil {
		rc = defaultRunCache
	}
	// Do memoizes and single-flights: when a concurrent sweep sharing
	// this cache is already simulating the same cell, this call waits
	// for that result instead of duplicating the work.
	computed := false
	run := rc.Do(cacheKey(cfg, c), func() Run {
		computed = true
		return executeCell(cfg, c, nil, tr)
	})
	if computed {
		sp.Arg("cache", "miss")
	} else {
		sp.Arg("cache", "hit")
	}
	return run
}

// cellKey is the stable cell identifier fault schedules and sweep
// checkpoints key on. Distributed cells append their cluster spec.
func (cfg *Config) cellKey(c cell) string {
	key := fmt.Sprintf("%s/%d/%d", c.alg, c.n, c.threads)
	if cs := cfg.clusterOf(c); cs != nil {
		key += "@" + cs.String()
	}
	return key
}

// interruptedRun builds the placeholder Run for a cell a stopped
// sweep never started: coordinates plus ErrInterrupted, nothing else.
func interruptedRun(cfg *Config, c cell) Run {
	r := Run{Alg: c.alg, N: c.n, Threads: c.threads, Err: ErrInterrupted}
	if cs := cfg.clusterOf(c); cs != nil {
		r.Cluster = cs.String()
	}
	return r
}

// executeContained runs one cell under the fault schedule with
// per-cell containment: an injected abort (or any other panic escaping
// the cell) is recovered and the cell retried — with a re-rolled
// injector — up to the configured attempt budget. A cell that fails
// every attempt yields a Run carrying its coordinates and error, so
// the sweep always completes.
func executeContained(cfg Config, c cell, tr obs.Track) Run {
	key := cfg.cellKey(c)
	retries := cfg.MaxRetries
	switch {
	case retries == 0:
		retries = DefaultCellRetries
	case retries < 0:
		retries = 0
	}
	var lastErr error
	for attempt := 0; attempt <= retries; attempt++ {
		if attempt > 0 {
			cellsRetried.Inc()
		}
		inj := cfg.Faults.ForCell(key, attempt)
		run, err := tryCell(cfg, c, inj, tr)
		if err == nil {
			run.Attempts = attempt + 1
			return run
		}
		lastErr = err
	}
	cellsFailed.Inc()
	fail := Run{Alg: c.alg, N: c.n, Threads: c.threads, Attempts: retries + 1, Err: lastErr.Error()}
	if cs := cfg.clusterOf(c); cs != nil {
		fail.Cluster = cs.String()
	}
	return fail
}

// tryCell is one contained attempt: executeCell with panics converted
// to errors. Injected aborts surface as their faults.CellAbort value;
// anything else is wrapped with the cell coordinates.
func tryCell(cfg Config, c cell, inj *faults.Injector, tr obs.Track) (run Run, err error) {
	defer func() {
		if p := recover(); p != nil {
			if e, ok := p.(error); ok {
				err = e
				return
			}
			err = fmt.Errorf("workload: cell %s panicked: %v", cfg.cellKey(c), p)
		}
	}()
	return executeCell(cfg, c, inj, tr), nil
}

// executeCell simulates and measures one matrix cell, bypassing the
// memoization cache. A non-nil inj arms the fault injector on the
// cell's measurement stack; the nil path is bit-identical to the
// pre-fault-layer driver. Distributed cells route through the MPI
// layer (executeDistributedCell); both paths share the monitored
// measurement stack.
func executeCell(cfg Config, c cell, inj *faults.Injector, tr obs.Track) Run {
	if c.spec >= 0 {
		return executeDistributedCell(cfg, c, inj, tr)
	}
	alg, n, threads := c.alg, c.n, c.threads
	t0 := time.Now()

	var buildSp obs.Span
	if obs.Enabled() {
		buildSp = obs.StartOn(tr, "build-tree")
	}
	root := BuildTree(cfg.Machine, alg, n, threads)
	buildSp.End()

	// Stream the measurement through the polling monitor as the
	// simulator produces segments: the emulated RAPL device advances
	// segment by segment while a PAPI event set samples it in device
	// time, as the paper's driver polled real silicon. Fusing the
	// monitor into the simulator's advance loop (sim.Config.OnSegment)
	// avoids materializing the timeline and replaying it in a second
	// pass. The model consumes the measured joules; the device's exact
	// totals ride along as the reconciliation oracle.
	interval := cfg.PollInterval
	if interval <= 0 {
		interval = DefaultPollInterval
	}
	stream, err := monitor.NewStream(monitor.Config{PollInterval: interval, ObsTrack: tr, Faults: inj})
	if err != nil {
		panic(fmt.Sprintf("workload: measurement failed: %v", err))
	}
	res := sim.Run(cfg.Machine, root, sim.Config{
		Workers:           threads,
		RecordTimeline:    cfg.RecordTraces, // traces still need the materialized timeline
		RecordSchedule:    cfg.RecordSchedule,
		OnSegment:         stream.OnSegment,
		DisableAffinity:   cfg.DisableAffinity,
		DisableContention: cfg.DisableContention,
		ObsTrack:          tr,
	})
	rep, err := stream.Finish()
	if err != nil {
		panic(fmt.Sprintf("workload: measurement failed: %v", err))
	}
	pkg := rep.Plane(rapl.PlanePKG)
	pp0 := rep.Plane(rapl.PlanePP0)
	dram := rep.Plane(rapl.PlaneDRAM)

	// Cross-check the oracle itself: the device's integration of the
	// replayed timeline must agree with the simulator's own energy
	// accounting to float accumulation noise, or the measurement stack
	// replayed a different run than it claims.
	for _, chk := range [][2]float64{
		{pkg.TruthJ, res.EnergyPKG}, {pp0.TruthJ, res.EnergyPP0}, {dram.TruthJ, res.EnergyDRAM},
	} {
		if diff := math.Abs(chk[0] - chk[1]); diff > 1e-6*math.Max(1, chk[1]) {
			panic(fmt.Sprintf("workload: replay oracle %v J diverged from simulator %v J", chk[0], chk[1]))
		}
	}

	byKind := make(map[string]float64, len(res.BusyByKind))
	for k, v := range res.BusyByKind {
		byKind[k.String()] = v
	}
	run := Run{
		Alg: alg, N: n, Threads: threads,
		Seconds:   rep.Duration,
		PKGJoules: pkg.MeasuredJ, PP0Joules: pp0.MeasuredJ, DRAMJoules: dram.MeasuredJ,
		TruthPKGJoules: pkg.TruthJ, TruthPP0Joules: pp0.TruthJ, TruthDRAMJoules: dram.TruthJ,
		MeasSamples:    rep.Samples,
		Leaves:         res.Leaves,
		RemoteBytes:    res.RemoteBytes,
		StolenLeaves:   res.StolenLeaves,
		AllocHighWater: res.AllocHighWater,
		Utilization:    res.Utilization(),
		BusyByKind:     byKind,
		Degraded:       rep.Degraded,
		MeasRetries:    rep.Retries,
		MeasReadErrors: rep.ReadErrors,
		MeasDrops:      rep.DroppedSamples,
	}
	for _, p := range rep.Quarantined {
		run.QuarantinedPlanes = append(run.QuarantinedPlanes, p.String())
	}
	if cfg.RecordSchedule {
		run.Schedule = res.Schedule
	}
	if cfg.RecordTraces {
		t := trace.FromSegments(res.Timeline)
		interval := cfg.TraceSampleInterval
		if interval > 0 {
			t = t.Resample(interval)
		}
		run.Trace = t
	}
	cellsExecuted.Inc()
	cellSeconds.Observe(time.Since(t0).Seconds())
	return run
}

// cell is one coordinate of the matrix: (algorithm, size, threads)
// for single-node algorithms, (algorithm, size, cluster spec) for
// distributed ones.
type cell struct {
	alg     Algorithm
	n       int
	threads int
	// spec indexes Config.Clusters for distributed cells; -1 marks a
	// single-node cell.
	spec int
}

// clusterOf returns the cell's cluster spec, or nil for single-node
// cells.
func (cfg *Config) clusterOf(c cell) *cluster.Spec {
	if c.spec < 0 {
		return nil
	}
	return &cfg.Clusters[c.spec]
}

// cells enumerates the matrix coordinates in the paper's nesting order
// (algorithm, then size, then thread count — or cluster spec on the
// distributed axis).
func (cfg *Config) cells() []cell {
	out := make([]cell, 0, len(cfg.Algorithms)*len(cfg.Sizes)*len(cfg.Threads))
	for _, alg := range cfg.Algorithms {
		for _, n := range cfg.Sizes {
			if alg.Distributed() {
				for s := range cfg.Clusters {
					out = append(out, cell{alg: alg, n: n, spec: s})
				}
				continue
			}
			for _, p := range cfg.Threads {
				out = append(out, cell{alg: alg, n: n, threads: p, spec: -1})
			}
		}
	}
	return out
}

// CellCount returns how many cells the configuration sweeps — the
// single-node algorithm×size×thread cross plus the distributed
// algorithm×size×cluster cross. CLIs use it for their progress line.
func (cfg *Config) CellCount() int {
	return len(cfg.cells())
}

// Execute runs the whole matrix, fanning independent cells across a
// bounded worker pool (Config.Parallelism workers; zero selects
// GOMAXPROCS). Every cell is an isolated simulation — its own task
// tree, RAPL device and event set — so the concurrent sweep is
// bit-identical to the sequential one, with Matrix.Runs in the paper's
// nesting order (algorithm, then size, then thread count) either way.
// It panics on invalid configurations (Validate reports the reason).
func Execute(cfg Config) *Matrix {
	if err := cfg.Validate(); err != nil {
		panic(err.Error())
	}
	if cfg.Plan == PlanGuided {
		return executeGuided(cfg)
	}
	cells := cfg.cells()
	mx := &Matrix{Cfg: cfg, Runs: make([]Run, len(cells))}

	var ck *checkpoint
	var restored map[string]Run
	if cfg.CheckpointPath != "" {
		var err error
		if ck, restored, err = openCheckpoint(cfg); err != nil {
			panic(err.Error())
		}
		defer ck.close()
	}
	// runCell resolves one cell: restored from the checkpoint when the
	// journal has it, executed otherwise, and journaled when it
	// completes (failed cells are left out so a resumed sweep retries
	// them). A stopped sweep — bounded drain, or the journal lease lost
	// to another replica — resolves remaining cells as interrupted
	// instead of executing them; they are neither journaled nor
	// streamed, so a resume runs exactly those cells.
	runCell := func(c cell, tr obs.Track) Run {
		key := cfg.cellKey(c)
		if r, ok := restored[key]; ok {
			r.Restored = true
			cellsRestored.Inc()
			mx.addRestored()
			if cfg.OnRun != nil {
				cfg.OnRun(key, &r)
			}
			return r
		}
		if (cfg.Stop != nil && cfg.Stop()) || ck.interrupted() {
			cellsSkipped.Inc()
			return interruptedRun(&cfg, c)
		}
		run := executeOne(cfg, c, tr)
		if ck != nil && !run.Failed() {
			ck.record(key, &run)
		}
		if cfg.OnRun != nil {
			cfg.OnRun(key, &run)
		}
		return run
	}

	var sweepSp obs.Span
	if obs.Enabled() {
		sweepSp = obs.StartOn(obs.Track{}, "workload.sweep")
		sweepSp.ArgInt("cells", len(cells))
		sweepSp.ArgInt("workers", cfg.poolWorkers(len(cells)))
		defer sweepSp.End()
	}
	sweepsExecuted.Inc()

	runPool(cfg.poolWorkers(len(cells)), len(cells), func(i int, tr obs.Track) {
		mx.Runs[i] = runCell(cells[i], tr)
	})
	return mx
}

// poolWorkers resolves the driver pool width for n cells.
func (cfg *Config) poolWorkers(n int) int {
	workers := cfg.Parallelism
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	if workers < 1 {
		workers = 1
	}
	return workers
}

// runPool fans body over indices 0..n-1 across a bounded worker pool.
// Bodies are independent simulations, so results are bit-identical to
// a sequential loop; worker panics are re-raised on the caller.
func runPool(workers, n int, body func(i int, tr obs.Track)) {
	if workers <= 1 {
		for i := 0; i < n; i++ {
			driverBusy.Add(1)
			body(i, obs.Track{})
			driverBusy.Add(-1)
		}
		return
	}
	var next int64 = -1
	panics := make([]any, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			defer func() { panics[w] = recover() }()
			var tr obs.Track
			if obs.Enabled() {
				tr = obs.NewTrack(fmt.Sprintf("driver worker %d", w))
			}
			for {
				i := int(atomic.AddInt64(&next, 1))
				if i >= n {
					return
				}
				driverBusy.Add(1)
				body(i, tr)
				driverBusy.Add(-1)
			}
		}(w)
	}
	wg.Wait()
	for _, p := range panics {
		if p != nil {
			panic(p)
		}
	}
}

// Get returns the single-node run for a configuration, or nil when
// absent. The first call builds an index over Runs, so lookups from
// the table and figure aggregations are O(1); Runs must not be
// appended to or reordered after the first Get. Distributed cells are
// indexed by their cluster spec — use GetCluster.
func (mx *Matrix) Get(alg Algorithm, n, threads int) *Run {
	return mx.get(getKey{alg: alg, n: n, threads: threads})
}

// GetCluster returns the distributed run of one (algorithm, size,
// cluster spec) cell, or nil when absent.
func (mx *Matrix) GetCluster(alg Algorithm, n int, spec string) *Run {
	return mx.get(getKey{alg: alg, n: n, cluster: spec})
}

func (mx *Matrix) get(k getKey) *Run {
	mx.indexOnce.Do(func() {
		mx.index = make(map[getKey]int, len(mx.Runs))
		for i := range mx.Runs {
			r := &mx.Runs[i]
			k := getKey{alg: r.Alg, n: r.N, cluster: r.Cluster}
			if r.Cluster == "" {
				k.threads = r.Threads
			}
			// First match wins, preserving the linear scan's semantics
			// on (malformed) matrices with duplicate cells.
			if _, dup := mx.index[k]; !dup {
				mx.index[k] = i
			}
		}
	})
	if i, ok := mx.index[k]; ok {
		return &mx.Runs[i]
	}
	return nil
}

// mustGet panics on a missing cell — aggregations assume a full matrix.
func (mx *Matrix) mustGet(alg Algorithm, n, threads int) *Run {
	r := mx.Get(alg, n, threads)
	if r == nil {
		panic(fmt.Sprintf("workload: missing run %v n=%d p=%d", alg, n, threads))
	}
	return r
}

// Slowdown returns T_alg / T_OpenBLAS for one cell (Fig. 3's metric).
func (mx *Matrix) Slowdown(alg Algorithm, n, threads int) float64 {
	return mx.mustGet(alg, n, threads).Seconds / mx.mustGet(AlgOpenBLAS, n, threads).Seconds
}

// AvgSlowdownAtSize averages slowdown over thread counts (Table II).
func (mx *Matrix) AvgSlowdownAtSize(alg Algorithm, n int) float64 {
	sum := 0.0
	for _, p := range mx.Cfg.Threads {
		sum += mx.Slowdown(alg, n, p)
	}
	return sum / float64(len(mx.Cfg.Threads))
}

// AvgPowerAtThreads averages watts over sizes at one thread count
// (Table III).
func (mx *Matrix) AvgPowerAtThreads(alg Algorithm, threads int) float64 {
	sum := 0.0
	for _, n := range mx.Cfg.Sizes {
		sum += mx.mustGet(alg, n, threads).WattsTotal()
	}
	return sum / float64(len(mx.Cfg.Sizes))
}

// AvgEPAtSize averages the Eq. 1 ratio over thread counts (Table IV).
func (mx *Matrix) AvgEPAtSize(alg Algorithm, n int) float64 {
	sum := 0.0
	for _, p := range mx.Cfg.Threads {
		sum += mx.mustGet(alg, n, p).EP()
	}
	return sum / float64(len(mx.Cfg.Threads))
}

// ScalingSeries returns the Eq. 5 energy-performance scaling curve of
// one algorithm at one size across the thread counts (Fig. 7). The
// baseline EP_1 is the algorithm's own single-thread run.
func (mx *Matrix) ScalingSeries(alg Algorithm, n int) energy.Series {
	base := mx.mustGet(alg, n, mx.Cfg.Threads[0]).EP()
	s := energy.Series{Algorithm: alg.String(), ProblemN: n}
	for _, p := range mx.Cfg.Threads {
		s.P = append(s.P, p)
		s.S = append(s.S, energy.Scaling(mx.mustGet(alg, n, p).EP(), base))
	}
	return s
}

// PowerCurve returns watts as a function of thread count at one size
// (the per-size series of Figs. 4–6).
func (mx *Matrix) PowerCurve(alg Algorithm, n int) []float64 {
	out := make([]float64, 0, len(mx.Cfg.Threads))
	for _, p := range mx.Cfg.Threads {
		out = append(out, mx.mustGet(alg, n, p).WattsTotal())
	}
	return out
}

// SessionTrace concatenates every recorded run trace with the
// configured quiesce gap — the full power log of the experiment
// session. It panics when traces were not recorded. Failed cells have
// no trace and are skipped: a degraded sweep's session log covers the
// cells that completed.
func (mx *Matrix) SessionTrace() *trace.Trace {
	full := &trace.Trace{}
	idle := mx.Cfg.Machine.IdlePower()
	first := true
	for i := range mx.Runs {
		r := &mx.Runs[i]
		if r.Failed() {
			continue
		}
		if r.Trace == nil {
			panic("workload: SessionTrace requires Config.RecordTraces")
		}
		gap := mx.Cfg.QuiesceSeconds
		if first {
			gap = 0
			first = false
		}
		full.AppendWithGap(r.Trace, gap, idle)
	}
	return full
}
