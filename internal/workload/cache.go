package workload

import (
	"fmt"
	"hash/fnv"
	"sort"
	"sync"

	"capscale/internal/hw"
	"capscale/internal/task"
	"capscale/internal/trace"
)

// Run memoization: the simulator is deterministic, so a cell's Run is
// a pure function of the machine and the cell coordinates plus the
// measurement settings. The bench harness and the CLIs repeatedly
// execute identical cells (epscale renders four tables from one
// matrix, powertrace re-runs the smoke matrix per invocation in tests,
// benchmarks iterate); memoizing the Run makes every repeat nearly
// free. The cache holds private deep copies — callers can mutate what
// they get back without poisoning later hits.

// runKey identifies one memoizable cell. Machines are folded to a
// fingerprint hash of every model-relevant field, so two distinct
// *hw.Machine values describing the same platform share entries while
// any coefficient tweak misses.
type runKey struct {
	machine           uint64
	alg               Algorithm
	n                 int
	threads           int
	disableAffinity   bool
	disableContention bool
	pollInterval      float64
	recordTraces      bool
	traceInterval     float64
}

// runCache maps runKey to *Run (a private deep copy).
var runCache sync.Map

// cacheKey derives the memoization key for one cell under cfg. The
// poll interval is normalized (unset selects DefaultPollInterval) so
// explicit and defaulted configurations share entries.
func cacheKey(cfg Config, alg Algorithm, n, threads int) runKey {
	interval := cfg.PollInterval
	if interval <= 0 {
		interval = DefaultPollInterval
	}
	return runKey{
		machine:           machineFingerprint(cfg.Machine),
		alg:               alg,
		n:                 n,
		threads:           threads,
		disableAffinity:   cfg.DisableAffinity,
		disableContention: cfg.DisableContention,
		pollInterval:      interval,
		recordTraces:      cfg.RecordTraces,
		traceInterval:     cfg.TraceSampleInterval,
	}
}

// machineFingerprint hashes every field of the machine that feeds the
// cost or power model. The KernelEff map is folded in sorted-kind
// order so the hash is independent of map iteration order.
func machineFingerprint(m *hw.Machine) uint64 {
	h := fnv.New64a()
	fmt.Fprintf(h, "%s|%d|%g|%g|", m.Name, m.Cores, m.FreqHz, m.FlopsPerCycle)
	for _, c := range [3]hw.Cache{m.L1, m.L2, m.L3} {
		fmt.Fprintf(h, "%d:%d|", c.SizeBytes, c.LineBytes)
	}
	fmt.Fprintf(h, "%g|%g|%g|%g|",
		m.L3Bandwidth, m.DRAMBandwidth, m.DRAMStreamBandwidth, m.RemoteBandwidth)
	kinds := make([]task.Kind, 0, len(m.KernelEff))
	for k := range m.KernelEff {
		kinds = append(kinds, k)
	}
	sort.Slice(kinds, func(i, j int) bool { return kinds[i] < kinds[j] })
	for _, k := range kinds {
		fmt.Fprintf(h, "%d=%g|", int(k), m.KernelEff[k])
	}
	fmt.Fprintf(h, "%g|%g|", m.TaskOverhead, m.StealOverhead)
	p := m.Power
	fmt.Fprintf(h, "%g|%g|%g|%g|%g|%g",
		p.PkgIdle, p.CoreIdle, p.CoreDyn, p.L3PerGBs, p.DRAMIdle, p.DRAMPerGBs)
	return h.Sum64()
}

// cloneRun deep-copies a Run: the BusyByKind map and the Trace are the
// only shared-reference fields.
func cloneRun(r *Run) Run {
	out := *r
	if r.BusyByKind != nil {
		out.BusyByKind = make(map[string]float64, len(r.BusyByKind))
		for k, v := range r.BusyByKind {
			out.BusyByKind[k] = v
		}
	}
	if r.Trace != nil {
		out.Trace = &trace.Trace{
			Samples: append([]trace.Sample(nil), r.Trace.Samples...),
			End:     r.Trace.End,
		}
	}
	return out
}

// ResetRunCache empties the run memoization cache. Tests use it to
// force re-simulation; long-lived processes can use it to bound memory
// after sweeping many distinct configurations.
func ResetRunCache() {
	runCache.Range(func(k, _ any) bool {
		runCache.Delete(k)
		return true
	})
}

// runCacheLen counts cached cells (test hook).
func runCacheLen() int {
	n := 0
	runCache.Range(func(_, _ any) bool { n++; return true })
	return n
}
