package workload

import (
	"fmt"
	"hash/fnv"
	"sort"
	"sync"

	"capscale/internal/cluster"
	"capscale/internal/hw"
	"capscale/internal/obs"
	"capscale/internal/sim"
	"capscale/internal/task"
	"capscale/internal/trace"
)

// Run memoization: the simulator is deterministic, so a cell's Run is
// a pure function of the machine and the cell coordinates plus the
// measurement settings. The bench harness and the CLIs repeatedly
// execute identical cells (epscale renders four tables from one
// matrix, powertrace re-runs the smoke matrix per invocation in tests,
// benchmarks iterate); memoizing the Run makes every repeat nearly
// free. The cache holds private deep copies — callers can mutate what
// they get back without poisoning later hits.
//
// The cache is an instance (RunCache): every Execute uses the cache
// the configuration names (Config.Cache), falling back to a shared
// process default. Instance scoping is what lets a long-running
// server give concurrent sweeps one coherent cache whose cap and
// lifetime it owns, while a test (or a second embedded pipeline) uses
// its own without racing the server semantically — the old
// package-global cache made SetRunCacheCap/ResetRunCache act at a
// distance on every in-flight sweep in the process.
//
// Each cache is also a single-flight group: when two concurrent
// sweeps reach the same not-yet-cached cell, one simulates it and the
// other waits for that result instead of duplicating the work. The
// dedup counter counts the waits.
//
// A cache is bounded: at most cap entries, evicted in insertion
// (FIFO) order. An unbounded cache of deep-copied Runs — with full
// traces when RecordTraces is set — grows without limit under a long
// sweep over many machines/intervals, which is exactly the workload a
// bench loop (or a sweep server) produces. Hits, misses, evictions
// and single-flight waits are visible in the obs metrics registry.

// DefaultRunCacheCap is the default bound on memoized cells. The full
// paper matrix is 48 cells; 256 leaves room for several machines and
// measurement settings while capping worst-case (traced) memory at a
// few hundred MB.
const DefaultRunCacheCap = 256

var (
	cacheHits      = obs.GetCounter("workload.cache.hits")
	cacheMisses    = obs.GetCounter("workload.cache.misses")
	cacheEvictions = obs.GetCounter("workload.cache.evictions")
	cacheDedups    = obs.GetCounter("workload.cache.singleflight")
	cacheSize      = obs.GetGauge("workload.cache.size")
)

// RunCache memoizes executed cells with FIFO eviction and
// single-flight deduplication of concurrent computes. Safe for
// concurrent use; the zero value is not usable — construct with
// NewRunCache.
type RunCache struct {
	mu       sync.Mutex
	entries  map[runKey]*Run
	order    []runKey // insertion order; evictions pop the front
	cap      int
	inflight map[runKey]*inflightRun
}

// inflightRun is a cell some goroutine is currently computing. done is
// closed when run is final; run stays nil when the compute panicked,
// and waiters fall back to computing for themselves.
type inflightRun struct {
	done chan struct{}
	run  *Run
}

// NewRunCache returns a cache bounded to at most cap entries. A
// non-positive cap disables storing (lookups always miss, computes
// still single-flight).
func NewRunCache(cap int) *RunCache {
	return &RunCache{
		entries:  make(map[runKey]*Run),
		cap:      cap,
		inflight: make(map[runKey]*inflightRun),
	}
}

// defaultRunCache backs the package-level wrappers and every Config
// that does not name its own cache.
var defaultRunCache = NewRunCache(DefaultRunCacheCap)

// runKey identifies one memoizable cell. Machines are folded to a
// fingerprint hash of every model-relevant field, so two distinct
// *hw.Machine values describing the same platform share entries while
// any coefficient tweak misses.
type runKey struct {
	machine           uint64
	alg               Algorithm
	n                 int
	threads           int
	cluster           uint64 // cluster-spec fingerprint; 0 = single-node
	disableAffinity   bool
	disableContention bool
	pollInterval      float64
	recordTraces      bool
	traceInterval     float64
	recordSchedule    bool
}

// cacheKey derives the memoization key for one cell under cfg. The
// poll interval is normalized (unset selects DefaultPollInterval) so
// explicit and defaulted configurations share entries.
func cacheKey(cfg Config, c cell) runKey {
	interval := cfg.PollInterval
	if interval <= 0 {
		interval = DefaultPollInterval
	}
	key := runKey{
		machine:           machineFingerprint(cfg.Machine),
		alg:               c.alg,
		n:                 c.n,
		threads:           c.threads,
		disableAffinity:   cfg.DisableAffinity,
		disableContention: cfg.DisableContention,
		pollInterval:      interval,
		recordTraces:      cfg.RecordTraces,
		traceInterval:     cfg.TraceSampleInterval,
		recordSchedule:    cfg.RecordSchedule,
	}
	if cs := cfg.clusterOf(c); cs != nil {
		key.cluster = clusterFingerprint(cs)
	}
	return key
}

// clusterFingerprint hashes every field of a cluster spec that feeds
// the distributed cost or power model.
func clusterFingerprint(cs *cluster.Spec) uint64 {
	h := fnv.New64a()
	cc := cs.Comms
	fmt.Fprintf(h, "%d|%g|%s|%g|%g|%g|%g|%g|%d|%d|%g|%g|%g",
		cs.Nodes, cs.MemPerNode, cc.Name,
		cc.LinkLatencySec, cc.LinkBandwidth, cc.LinkEfficiency,
		cc.PerMessageOverheadSec, cc.SwitchLatencySec, cc.SwitchTiers,
		int(cc.Allreduce), cc.NICIdleWatts, cc.NICPerGBs, cc.SwitchIdleWattsTier)
	return h.Sum64()
}

// Do returns the memoized run for key, waiting on a concurrent
// compute of the same key when one is in flight, and calling compute
// (then storing the result) otherwise — each key is computed at most
// once across concurrent callers. The returned Run is always a
// private copy.
func (rc *RunCache) Do(key runKey, compute func() Run) Run {
	rc.mu.Lock()
	if r, ok := rc.entries[key]; ok {
		rc.mu.Unlock()
		cacheHits.Inc()
		// Cached *Run values are immutable once stored, so cloning
		// outside the critical section is safe even if the entry is
		// evicted concurrently.
		return cloneRun(r)
	}
	if fl, ok := rc.inflight[key]; ok {
		rc.mu.Unlock()
		<-fl.done
		if fl.run != nil {
			cacheDedups.Inc()
			return cloneRun(fl.run)
		}
		// The leader panicked; its waiters compute for themselves
		// rather than propagating a failure that was not theirs.
		return compute()
	}
	fl := &inflightRun{done: make(chan struct{})}
	rc.inflight[key] = fl
	rc.mu.Unlock()
	cacheMisses.Inc()

	defer func() {
		rc.mu.Lock()
		delete(rc.inflight, key)
		rc.mu.Unlock()
		close(fl.done)
	}()
	run := compute()
	stored := cloneRun(&run)
	fl.run = &stored
	rc.store(key, &stored)
	return run
}

// load returns a private copy of the memoized run for key, counting
// the hit or miss (test hook; Do is the execution path).
func (rc *RunCache) load(key runKey) (Run, bool) {
	rc.mu.Lock()
	r, ok := rc.entries[key]
	rc.mu.Unlock()
	if !ok {
		cacheMisses.Inc()
		return Run{}, false
	}
	cacheHits.Inc()
	return cloneRun(r), true
}

// store memoizes run (which must already be a private deep copy),
// evicting the oldest entries once the cap is reached. A non-positive
// cap disables storing entirely.
func (rc *RunCache) store(key runKey, run *Run) {
	rc.mu.Lock()
	defer rc.mu.Unlock()
	if rc.cap <= 0 {
		return
	}
	if _, exists := rc.entries[key]; exists {
		// Deterministic simulator: a concurrent sweep re-simulated the
		// same cell; keep the existing entry and its age.
		return
	}
	rc.evictDownToLocked(rc.cap - 1)
	rc.entries[key] = run
	rc.order = append(rc.order, key)
	cacheSize.Set(int64(len(rc.entries)))
}

// evictDownToLocked removes oldest entries until at most n remain.
// Called with rc.mu held.
func (rc *RunCache) evictDownToLocked(n int) {
	for len(rc.entries) > n && len(rc.order) > 0 {
		oldest := rc.order[0]
		rc.order = rc.order[1:]
		if _, ok := rc.entries[oldest]; ok {
			delete(rc.entries, oldest)
			cacheEvictions.Inc()
		}
	}
	cacheSize.Set(int64(len(rc.entries)))
}

// SetCap bounds the cache to at most n entries, evicting oldest
// entries immediately if it is over the new cap, and returns the
// previous cap. A non-positive n disables caching.
func (rc *RunCache) SetCap(n int) int {
	rc.mu.Lock()
	defer rc.mu.Unlock()
	prev := rc.cap
	rc.cap = n
	if n <= 0 {
		n = 0
	}
	rc.evictDownToLocked(n)
	return prev
}

// Reset empties the cache. In-flight computes are unaffected: they
// complete and store into the emptied cache.
func (rc *RunCache) Reset() {
	rc.mu.Lock()
	defer rc.mu.Unlock()
	rc.entries = make(map[runKey]*Run)
	rc.order = nil
	cacheSize.Set(0)
}

// Len counts cached cells.
func (rc *RunCache) Len() int {
	rc.mu.Lock()
	defer rc.mu.Unlock()
	return len(rc.entries)
}

// SetRunCacheCap bounds the process-default memoization cache to at
// most n entries, evicting oldest entries immediately if the cache is
// over the new cap, and returns the previous cap. A non-positive n
// disables caching. Tests use small caps to exercise eviction.
// Sweeps with their own Config.Cache are unaffected.
func SetRunCacheCap(n int) int { return defaultRunCache.SetCap(n) }

// ResetRunCache empties the process-default run memoization cache.
// Tests use it to force re-simulation; long-lived processes can use
// it to release memory after sweeping many distinct configurations.
func ResetRunCache() { defaultRunCache.Reset() }

// runCacheLen counts cells in the default cache (test hook).
func runCacheLen() int { return defaultRunCache.Len() }

// machineFingerprint hashes every field of the machine that feeds the
// cost or power model. The KernelEff map is folded in sorted-kind
// order so the hash is independent of map iteration order.
func machineFingerprint(m *hw.Machine) uint64 {
	h := fnv.New64a()
	fmt.Fprintf(h, "%s|%d|%g|%g|", m.Name, m.Cores, m.FreqHz, m.FlopsPerCycle)
	for _, c := range [3]hw.Cache{m.L1, m.L2, m.L3} {
		fmt.Fprintf(h, "%d:%d|", c.SizeBytes, c.LineBytes)
	}
	fmt.Fprintf(h, "%g|%g|%g|%g|",
		m.L3Bandwidth, m.DRAMBandwidth, m.DRAMStreamBandwidth, m.RemoteBandwidth)
	kinds := make([]task.Kind, 0, len(m.KernelEff))
	for k := range m.KernelEff {
		kinds = append(kinds, k)
	}
	sort.Slice(kinds, func(i, j int) bool { return kinds[i] < kinds[j] })
	for _, k := range kinds {
		fmt.Fprintf(h, "%d=%g|", int(k), m.KernelEff[k])
	}
	fmt.Fprintf(h, "%g|%g|", m.TaskOverhead, m.StealOverhead)
	p := m.Power
	fmt.Fprintf(h, "%g|%g|%g|%g|%g|%g",
		p.PkgIdle, p.CoreIdle, p.CoreDyn, p.L3PerGBs, p.DRAMIdle, p.DRAMPerGBs)
	return h.Sum64()
}

// cloneRun deep-copies a Run: the BusyByKind map, the Trace and the
// Schedule are the only shared-reference fields.
func cloneRun(r *Run) Run {
	out := *r
	if r.BusyByKind != nil {
		out.BusyByKind = make(map[string]float64, len(r.BusyByKind))
		for k, v := range r.BusyByKind {
			out.BusyByKind[k] = v
		}
	}
	if r.Trace != nil {
		out.Trace = &trace.Trace{
			Samples: append([]trace.Sample(nil), r.Trace.Samples...),
			End:     r.Trace.End,
		}
	}
	if r.Schedule != nil {
		out.Schedule = append([]sim.LeafSpan(nil), r.Schedule...)
	}
	return out
}
