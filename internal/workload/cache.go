package workload

import (
	"fmt"
	"hash/fnv"
	"sort"
	"sync"

	"capscale/internal/cluster"
	"capscale/internal/hw"
	"capscale/internal/obs"
	"capscale/internal/sim"
	"capscale/internal/task"
	"capscale/internal/trace"
)

// Run memoization: the simulator is deterministic, so a cell's Run is
// a pure function of the machine and the cell coordinates plus the
// measurement settings. The bench harness and the CLIs repeatedly
// execute identical cells (epscale renders four tables from one
// matrix, powertrace re-runs the smoke matrix per invocation in tests,
// benchmarks iterate); memoizing the Run makes every repeat nearly
// free. The cache holds private deep copies — callers can mutate what
// they get back without poisoning later hits.
//
// The cache is bounded: at most runCacheCap entries, evicted in
// insertion (FIFO) order. An unbounded cache of deep-copied Runs —
// with full traces when RecordTraces is set — grows without limit
// under a long sweep over many machines/intervals, which is exactly
// the workload a bench loop produces. Hits, misses and evictions are
// visible in the obs metrics registry.

// DefaultRunCacheCap is the default bound on memoized cells. The full
// paper matrix is 48 cells; 256 leaves room for several machines and
// measurement settings while capping worst-case (traced) memory at a
// few hundred MB.
const DefaultRunCacheCap = 256

var (
	cacheMu      sync.Mutex
	cacheEntries = make(map[runKey]*Run)
	cacheOrder   []runKey // insertion order; evictions pop the front
	runCacheCap  = DefaultRunCacheCap

	cacheHits      = obs.GetCounter("workload.cache.hits")
	cacheMisses    = obs.GetCounter("workload.cache.misses")
	cacheEvictions = obs.GetCounter("workload.cache.evictions")
	cacheSize      = obs.GetGauge("workload.cache.size")
)

// runKey identifies one memoizable cell. Machines are folded to a
// fingerprint hash of every model-relevant field, so two distinct
// *hw.Machine values describing the same platform share entries while
// any coefficient tweak misses.
type runKey struct {
	machine           uint64
	alg               Algorithm
	n                 int
	threads           int
	cluster           uint64 // cluster-spec fingerprint; 0 = single-node
	disableAffinity   bool
	disableContention bool
	pollInterval      float64
	recordTraces      bool
	traceInterval     float64
	recordSchedule    bool
}

// cacheKey derives the memoization key for one cell under cfg. The
// poll interval is normalized (unset selects DefaultPollInterval) so
// explicit and defaulted configurations share entries.
func cacheKey(cfg Config, c cell) runKey {
	interval := cfg.PollInterval
	if interval <= 0 {
		interval = DefaultPollInterval
	}
	key := runKey{
		machine:           machineFingerprint(cfg.Machine),
		alg:               c.alg,
		n:                 c.n,
		threads:           c.threads,
		disableAffinity:   cfg.DisableAffinity,
		disableContention: cfg.DisableContention,
		pollInterval:      interval,
		recordTraces:      cfg.RecordTraces,
		traceInterval:     cfg.TraceSampleInterval,
		recordSchedule:    cfg.RecordSchedule,
	}
	if cs := cfg.clusterOf(c); cs != nil {
		key.cluster = clusterFingerprint(cs)
	}
	return key
}

// clusterFingerprint hashes every field of a cluster spec that feeds
// the distributed cost or power model.
func clusterFingerprint(cs *cluster.Spec) uint64 {
	h := fnv.New64a()
	cc := cs.Comms
	fmt.Fprintf(h, "%d|%g|%s|%g|%g|%g|%g|%g|%d|%d|%g|%g|%g",
		cs.Nodes, cs.MemPerNode, cc.Name,
		cc.LinkLatencySec, cc.LinkBandwidth, cc.LinkEfficiency,
		cc.PerMessageOverheadSec, cc.SwitchLatencySec, cc.SwitchTiers,
		int(cc.Allreduce), cc.NICIdleWatts, cc.NICPerGBs, cc.SwitchIdleWattsTier)
	return h.Sum64()
}

// cacheLoad returns a private copy of the memoized run for key, and
// counts the hit or miss.
func cacheLoad(key runKey) (Run, bool) {
	cacheMu.Lock()
	r, ok := cacheEntries[key]
	cacheMu.Unlock()
	if !ok {
		cacheMisses.Inc()
		return Run{}, false
	}
	// Cached *Run values are immutable once stored, so cloning outside
	// the critical section is safe even if the entry is evicted
	// concurrently.
	cacheHits.Inc()
	return cloneRun(r), true
}

// cacheStore memoizes a private copy of run, evicting the oldest
// entries once the cap is reached. A non-positive cap disables
// storing entirely.
func cacheStore(key runKey, run *Run) {
	stored := cloneRun(run)
	cacheMu.Lock()
	defer cacheMu.Unlock()
	if runCacheCap <= 0 {
		return
	}
	if _, exists := cacheEntries[key]; exists {
		// Deterministic simulator: a concurrent sweep re-simulated the
		// same cell; keep the existing entry and its age.
		return
	}
	evictDownToLocked(runCacheCap - 1)
	cacheEntries[key] = &stored
	cacheOrder = append(cacheOrder, key)
	cacheSize.Set(int64(len(cacheEntries)))
}

// evictDownToLocked removes oldest entries until at most n remain.
// Called with cacheMu held.
func evictDownToLocked(n int) {
	for len(cacheEntries) > n && len(cacheOrder) > 0 {
		oldest := cacheOrder[0]
		cacheOrder = cacheOrder[1:]
		if _, ok := cacheEntries[oldest]; ok {
			delete(cacheEntries, oldest)
			cacheEvictions.Inc()
		}
	}
	cacheSize.Set(int64(len(cacheEntries)))
}

// SetRunCacheCap bounds the memoization cache to at most n entries,
// evicting oldest entries immediately if the cache is over the new
// cap, and returns the previous cap. A non-positive n disables
// caching. Tests use small caps to exercise eviction.
func SetRunCacheCap(n int) int {
	cacheMu.Lock()
	defer cacheMu.Unlock()
	prev := runCacheCap
	runCacheCap = n
	if n <= 0 {
		n = 0
	}
	evictDownToLocked(n)
	return prev
}

// machineFingerprint hashes every field of the machine that feeds the
// cost or power model. The KernelEff map is folded in sorted-kind
// order so the hash is independent of map iteration order.
func machineFingerprint(m *hw.Machine) uint64 {
	h := fnv.New64a()
	fmt.Fprintf(h, "%s|%d|%g|%g|", m.Name, m.Cores, m.FreqHz, m.FlopsPerCycle)
	for _, c := range [3]hw.Cache{m.L1, m.L2, m.L3} {
		fmt.Fprintf(h, "%d:%d|", c.SizeBytes, c.LineBytes)
	}
	fmt.Fprintf(h, "%g|%g|%g|%g|",
		m.L3Bandwidth, m.DRAMBandwidth, m.DRAMStreamBandwidth, m.RemoteBandwidth)
	kinds := make([]task.Kind, 0, len(m.KernelEff))
	for k := range m.KernelEff {
		kinds = append(kinds, k)
	}
	sort.Slice(kinds, func(i, j int) bool { return kinds[i] < kinds[j] })
	for _, k := range kinds {
		fmt.Fprintf(h, "%d=%g|", int(k), m.KernelEff[k])
	}
	fmt.Fprintf(h, "%g|%g|", m.TaskOverhead, m.StealOverhead)
	p := m.Power
	fmt.Fprintf(h, "%g|%g|%g|%g|%g|%g",
		p.PkgIdle, p.CoreIdle, p.CoreDyn, p.L3PerGBs, p.DRAMIdle, p.DRAMPerGBs)
	return h.Sum64()
}

// cloneRun deep-copies a Run: the BusyByKind map, the Trace and the
// Schedule are the only shared-reference fields.
func cloneRun(r *Run) Run {
	out := *r
	if r.BusyByKind != nil {
		out.BusyByKind = make(map[string]float64, len(r.BusyByKind))
		for k, v := range r.BusyByKind {
			out.BusyByKind[k] = v
		}
	}
	if r.Trace != nil {
		out.Trace = &trace.Trace{
			Samples: append([]trace.Sample(nil), r.Trace.Samples...),
			End:     r.Trace.End,
		}
	}
	if r.Schedule != nil {
		out.Schedule = append([]sim.LeafSpan(nil), r.Schedule...)
	}
	return out
}

// ResetRunCache empties the run memoization cache. Tests use it to
// force re-simulation; long-lived processes can use it to release
// memory after sweeping many distinct configurations.
func ResetRunCache() {
	cacheMu.Lock()
	defer cacheMu.Unlock()
	cacheEntries = make(map[runKey]*Run)
	cacheOrder = nil
	cacheSize.Set(0)
}

// runCacheLen counts cached cells (test hook).
func runCacheLen() int {
	cacheMu.Lock()
	defer cacheMu.Unlock()
	return len(cacheEntries)
}
