// Package sched is the real execution engine: it runs a task tree's
// leaf closures on a pool of persistent worker goroutines with
// fork-join semantics, standing in for the OpenMP task runtime the
// paper's codes used.
//
// Where the virtual-time simulator (internal/sim) models placement,
// contention and power, this engine actually computes: examples and
// correctness tests execute the same trees here and compare results.
//
// Dispatch is a shared LIFO deque of ready leaves guarded by one
// mutex: interior Seq/Par nodes are expanded into per-node join
// counters at dispatch time, so no goroutine is ever spawned per task
// — the pool's workers are created once in New and pull leaves until
// the tree drains. LIFO order pops the most recently exposed subtree
// first, which keeps a worker on the data it just produced (the same
// reason Cilk-style runtimes pop their own deque from the top). This
// makes fine-grained trees (Strassen at cutover 64 produces tens of
// thousands of leaves) cheap to execute: per-leaf overhead is two
// short critical sections, not a goroutine spawn plus channel
// round-trip.
//
// Use it on trees built WithMath at moderate problem sizes; an
// accounting-only tree runs in zero time here (no closures) and should
// go to the simulator instead.
package sched

import (
	"fmt"
	"sync"
	"time"

	"capscale/internal/obs"
	"capscale/internal/task"
)

// Dispatch metrics: run/leaf throughput is batched into the registry
// once per Run; the per-leaf occupancy gauge is only touched while
// span tracing is enabled, so the multi-million-leaves-per-second
// dispatch path stays a single atomic load when observability is off.
var (
	schedRuns        = obs.GetCounter("sched.runs")
	schedLeaves      = obs.GetCounter("sched.leaves.dispatched")
	schedBusyWorkers = obs.GetGauge("sched.workers.busy")
)

// Metrics summarizes one real execution.
type Metrics struct {
	// Wall is the measured wall-clock duration of the whole tree.
	Wall time.Duration
	// Leaves is the number of leaf tasks executed.
	Leaves int
	// PerWorkerLeaves and PerWorkerBusy attribute work to the worker
	// that executed each leaf.
	PerWorkerLeaves []int64
	PerWorkerBusy   []time.Duration
	// Flops, L3Bytes and DRAMBytes are the accounting totals of the
	// executed leaves, for feeding the power model after a live run.
	Flops     float64
	L3Bytes   float64
	DRAMBytes float64
}

// Utilization returns mean busy fraction across workers over the wall
// time.
func (m Metrics) Utilization() float64 {
	if m.Wall == 0 || len(m.PerWorkerBusy) == 0 {
		return 0
	}
	var busy time.Duration
	for _, b := range m.PerWorkerBusy {
		busy += b
	}
	return float64(busy) / (float64(m.Wall) * float64(len(m.PerWorkerBusy)))
}

// nodeState is the per-node join bookkeeping of the active run, the
// executor-side mirror of the task tree.
type nodeState struct {
	n         *task.Node
	parent    *nodeState
	pending   int // outstanding children (Par)
	nextChild int // next child index to start (Seq)
}

// runState collects the results of one Run. All fields are guarded by
// the pool's mutex.
type runState struct {
	leaves   int
	busy     []time.Duration
	byWorker []int64
	flops    float64
	l3       float64
	dram     float64
	panicked any
	rootDone bool
	done     chan struct{}
}

// Pool executes task trees on `workers` persistent goroutines.
type Pool struct {
	workers int

	mu     sync.Mutex
	cond   *sync.Cond // workers wait here for ready leaves
	deque  []*nodeState
	st     *runState // active run; nil while idle
	closed bool

	runMu sync.Mutex // serializes Run calls
}

// New returns a pool with the given worker count. The workers are
// spawned immediately and persist across Run calls; Close releases
// them.
func New(workers int) *Pool {
	if workers < 1 {
		panic(fmt.Sprintf("sched: workers %d", workers))
	}
	p := &Pool{workers: workers, deque: make([]*nodeState, 0, 4*workers)}
	p.cond = sync.NewCond(&p.mu)
	for i := 0; i < workers; i++ {
		go p.worker(i)
	}
	return p
}

// Workers returns the pool's parallelism bound.
func (p *Pool) Workers() int { return p.workers }

// Close stops the pool's worker goroutines. A closed pool must not
// Run again. Pools that live for the whole process need not be
// closed; the workers park on a condition variable and cost nothing
// while idle.
func (p *Pool) Close() {
	p.mu.Lock()
	p.closed = true
	p.cond.Broadcast()
	p.mu.Unlock()
}

// Run executes root and blocks until every leaf has completed. If any
// leaf panics, the remaining leaves of sequential chains are skipped
// and Run re-panics with the first value after the tree quiesces.
// Concurrent Run calls on one pool are serialized.
func (p *Pool) Run(root *task.Node) Metrics {
	p.runMu.Lock()
	defer p.runMu.Unlock()

	var sp obs.Span
	if obs.Enabled() {
		sp = obs.StartOn(obs.Track{}, "sched.run")
		sp.ArgInt("workers", p.workers)
	}

	st := &runState{
		busy:     make([]time.Duration, p.workers),
		byWorker: make([]int64, p.workers),
		done:     make(chan struct{}),
	}
	start := time.Now()

	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		panic("sched: Run on closed pool")
	}
	p.st = st
	p.startNode(&nodeState{n: root})
	p.mu.Unlock()

	<-st.done

	p.mu.Lock()
	p.st = nil
	p.mu.Unlock()

	wall := time.Since(start)
	schedRuns.Inc()
	schedLeaves.Add(int64(st.leaves))
	if sp.Live() {
		sp.ArgInt("leaves", st.leaves)
	}
	sp.End()
	if st.panicked != nil {
		panic(st.panicked)
	}
	return Metrics{
		Wall:            wall,
		Leaves:          st.leaves,
		PerWorkerLeaves: st.byWorker,
		PerWorkerBusy:   st.busy,
		Flops:           st.flops,
		L3Bytes:         st.l3,
		DRAMBytes:       st.dram,
	}
}

// startNode activates a node: leaves join the deque; interior nodes
// expand per Seq/Par semantics. Empty interior nodes complete
// immediately. Called with p.mu held.
func (p *Pool) startNode(s *nodeState) {
	switch {
	case s.n.IsLeaf():
		p.deque = append(p.deque, s)
		p.cond.Signal()
	case s.n.IsSeq():
		if len(s.n.Children()) == 0 {
			p.complete(s)
			return
		}
		p.startChild(s, 0)
	default: // Par
		children := s.n.Children()
		if len(children) == 0 {
			p.complete(s)
			return
		}
		s.pending = len(children)
		for i := range children {
			p.startChild(s, i)
		}
	}
}

func (p *Pool) startChild(parent *nodeState, idx int) {
	if parent.n.IsSeq() {
		parent.nextChild = idx + 1
	}
	p.startNode(&nodeState{n: parent.n.Children()[idx], parent: parent})
}

// complete propagates a finished node up the tree, starting successor
// Seq children as they become runnable. After a leaf panic, pending
// Seq successors are skipped so the run drains promptly. Called with
// p.mu held.
func (p *Pool) complete(s *nodeState) {
	for {
		par := s.parent
		if par == nil {
			p.st.rootDone = true
			close(p.st.done)
			return
		}
		if par.n.IsSeq() {
			if p.st.panicked == nil && par.nextChild < len(par.n.Children()) {
				p.startChild(par, par.nextChild)
				return
			}
			s = par
			continue
		}
		par.pending--
		if par.pending > 0 {
			return
		}
		s = par
	}
}

// worker is the body of one persistent pool goroutine: pop a ready
// leaf, run its closure outside the lock, fold the stats in and
// propagate completion.
func (p *Pool) worker(id int) {
	p.mu.Lock()
	for {
		for !p.closed && len(p.deque) == 0 {
			p.cond.Wait()
		}
		if p.closed {
			p.mu.Unlock()
			return
		}
		s := p.deque[len(p.deque)-1]
		p.deque[len(p.deque)-1] = nil
		p.deque = p.deque[:len(p.deque)-1]
		st := p.st
		skip := st.panicked != nil
		p.mu.Unlock()

		w := s.n.Work()
		var busy time.Duration
		if !skip && w.Run != nil {
			observed := obs.Enabled()
			if observed {
				schedBusyWorkers.Add(1)
			}
			t0 := time.Now()
			func() {
				defer func() {
					if v := recover(); v != nil {
						p.mu.Lock()
						if st.panicked == nil {
							st.panicked = v
						}
						p.mu.Unlock()
					}
				}()
				w.Run()
			}()
			busy = time.Since(t0)
			if observed {
				schedBusyWorkers.Add(-1)
			}
		}

		p.mu.Lock()
		st.leaves++
		st.byWorker[id]++
		st.busy[id] += busy
		st.flops += w.Flops
		st.l3 += w.L3Bytes
		st.dram += w.DRAMBytes
		p.complete(s)
	}
}
