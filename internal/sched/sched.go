// Package sched is the real execution engine: it runs a task tree's
// leaf closures on goroutines with fork-join semantics and a bounded
// number of concurrently executing leaves, standing in for the OpenMP
// task runtime the paper's codes used.
//
// Where the virtual-time simulator (internal/sim) models placement,
// contention and power, this engine actually computes: examples and
// correctness tests execute the same trees here and compare results.
// Placement is delegated to the Go scheduler; worker identity is the
// token a leaf holds while running, which bounds parallelism to the
// configured worker count and attributes busy time.
//
// Use it on trees built WithMath at moderate problem sizes; an
// accounting-only tree runs in zero time here (no closures) and should
// go to the simulator instead.
package sched

import (
	"fmt"
	"sync"
	"time"

	"capscale/internal/task"
)

// Metrics summarizes one real execution.
type Metrics struct {
	// Wall is the measured wall-clock duration of the whole tree.
	Wall time.Duration
	// Leaves is the number of leaf tasks executed.
	Leaves int
	// PerWorkerLeaves and PerWorkerBusy attribute work to the worker
	// token each leaf held.
	PerWorkerLeaves []int64
	PerWorkerBusy   []time.Duration
	// Flops, L3Bytes and DRAMBytes are the accounting totals of the
	// executed leaves, for feeding the power model after a live run.
	Flops     float64
	L3Bytes   float64
	DRAMBytes float64
}

// Utilization returns mean busy fraction across workers over the wall
// time.
func (m Metrics) Utilization() float64 {
	if m.Wall == 0 || len(m.PerWorkerBusy) == 0 {
		return 0
	}
	var busy time.Duration
	for _, b := range m.PerWorkerBusy {
		busy += b
	}
	return float64(busy) / (float64(m.Wall) * float64(len(m.PerWorkerBusy)))
}

// Pool executes task trees with at most `workers` leaves in flight.
type Pool struct {
	workers int
	tokens  chan int
}

// New returns a pool with the given worker count.
func New(workers int) *Pool {
	if workers < 1 {
		panic(fmt.Sprintf("sched: workers %d", workers))
	}
	p := &Pool{workers: workers, tokens: make(chan int, workers)}
	for i := 0; i < workers; i++ {
		p.tokens <- i
	}
	return p
}

// Workers returns the pool's parallelism bound.
func (p *Pool) Workers() int { return p.workers }

// run executes a subtree, collecting stats; panics from leaves are
// captured into st.panic (first one wins) instead of killing the
// offending goroutine's stack alone.
type runState struct {
	mu       sync.Mutex
	leaves   int
	busy     []time.Duration
	byWorker []int64
	flops    float64
	l3       float64
	dram     float64
	panicked any
}

func (st *runState) notePanic(v any) {
	st.mu.Lock()
	if st.panicked == nil {
		st.panicked = v
	}
	st.mu.Unlock()
}

func (st *runState) hasPanicked() bool {
	st.mu.Lock()
	defer st.mu.Unlock()
	return st.panicked != nil
}

// Run executes root and blocks until every leaf has completed. If any
// leaf panics, Run re-panics with that value after the tree quiesces.
func (p *Pool) Run(root *task.Node) Metrics {
	st := &runState{
		busy:     make([]time.Duration, p.workers),
		byWorker: make([]int64, p.workers),
	}
	start := time.Now()
	p.exec(root, st)
	wall := time.Since(start)
	if st.panicked != nil {
		panic(st.panicked)
	}
	return Metrics{
		Wall:            wall,
		Leaves:          st.leaves,
		PerWorkerLeaves: st.byWorker,
		PerWorkerBusy:   st.busy,
		Flops:           st.flops,
		L3Bytes:         st.l3,
		DRAMBytes:       st.dram,
	}
}

func (p *Pool) exec(n *task.Node, st *runState) {
	switch {
	case n.IsLeaf():
		p.runLeaf(n, st)
	case n.IsSeq():
		for _, c := range n.Children() {
			if st.hasPanicked() {
				return
			}
			p.exec(c, st)
		}
	default: // Par
		children := n.Children()
		if len(children) == 1 {
			p.exec(children[0], st)
			return
		}
		var wg sync.WaitGroup
		for _, c := range children[1:] {
			c := c
			wg.Add(1)
			go func() {
				defer wg.Done()
				defer func() {
					if v := recover(); v != nil {
						st.notePanic(v)
					}
				}()
				p.exec(c, st)
			}()
		}
		// The spawning task works on the first child itself
		// (OpenMP-style: the encountering thread is also a worker).
		p.exec(children[0], st)
		wg.Wait()
	}
}

func (p *Pool) runLeaf(n *task.Node, st *runState) {
	w := n.Work()
	worker := <-p.tokens
	t0 := time.Now()
	func() {
		defer func() {
			if v := recover(); v != nil {
				st.notePanic(v)
			}
		}()
		if w.Run != nil {
			w.Run()
		}
	}()
	busy := time.Since(t0)
	p.tokens <- worker

	st.mu.Lock()
	st.leaves++
	st.byWorker[worker]++
	st.busy[worker] += busy
	st.flops += w.Flops
	st.l3 += w.L3Bytes
	st.dram += w.DRAMBytes
	st.mu.Unlock()
}
