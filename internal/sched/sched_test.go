package sched

import (
	"math/rand"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"

	"capscale/internal/blas"
	"capscale/internal/caps"
	"capscale/internal/hw"
	"capscale/internal/matrix"
	"capscale/internal/strassen"
	"capscale/internal/task"
)

func TestNewPanicsOnBadWorkers(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	New(0)
}

func TestEveryLeafRunsOnce(t *testing.T) {
	var count atomic.Int64
	mk := func() *task.Node {
		return task.Leaf(task.Work{Flops: 1, Run: func() { count.Add(1) }})
	}
	var leaves []*task.Node
	for i := 0; i < 100; i++ {
		leaves = append(leaves, mk())
	}
	root := task.Seq(task.Par(leaves[:50]...), task.Par(leaves[50:]...))
	m := New(4).Run(root)
	if count.Load() != 100 {
		t.Fatalf("ran %d leaves", count.Load())
	}
	if m.Leaves != 100 {
		t.Fatalf("metrics leaves %d", m.Leaves)
	}
	if m.Flops != 100 {
		t.Fatalf("metrics flops %v", m.Flops)
	}
}

func TestSeqOrdering(t *testing.T) {
	var order []int
	mk := func(i int) *task.Node {
		return task.Leaf(task.Work{Run: func() { order = append(order, i) }})
	}
	New(4).Run(task.Seq(mk(0), mk(1), mk(2), mk(3), mk(4)))
	for i, v := range order {
		if v != i {
			t.Fatalf("order %v", order)
		}
	}
}

func TestParallelismBounded(t *testing.T) {
	var inFlight, peak atomic.Int64
	mk := func() *task.Node {
		return task.Leaf(task.Work{Run: func() {
			cur := inFlight.Add(1)
			for {
				p := peak.Load()
				if cur <= p || peak.CompareAndSwap(p, cur) {
					break
				}
			}
			for i := 0; i < 100000; i++ {
				_ = i * i
			}
			inFlight.Add(-1)
		}})
	}
	var leaves []*task.Node
	for i := 0; i < 64; i++ {
		leaves = append(leaves, mk())
	}
	New(2).Run(task.Par(leaves...))
	if peak.Load() > 2 {
		t.Fatalf("observed %d concurrent leaves with 2 workers", peak.Load())
	}
}

func TestWorkerAttribution(t *testing.T) {
	var leaves []*task.Node
	for i := 0; i < 40; i++ {
		leaves = append(leaves, task.Leaf(task.Work{Run: func() {
			s := 0.0
			for i := 0; i < 200000; i++ {
				s += float64(i)
			}
			_ = s
		}}))
	}
	m := New(3).Run(task.Par(leaves...))
	total := int64(0)
	for _, c := range m.PerWorkerLeaves {
		total += c
	}
	if total != 40 {
		t.Fatalf("attributed %d leaves", total)
	}
	if u := m.Utilization(); u <= 0 || u > 1 {
		t.Fatalf("utilization %v", u)
	}
}

func TestPanicPropagates(t *testing.T) {
	root := task.Par(
		task.Leaf(task.Work{Run: func() {}}),
		task.Leaf(task.Work{Run: func() { panic("leaf exploded") }}),
	)
	defer func() {
		if v := recover(); v != "leaf exploded" {
			t.Fatalf("recovered %v", v)
		}
	}()
	New(2).Run(root)
}

func TestNilRunLeavesAreCounted(t *testing.T) {
	m := New(2).Run(task.Par(task.Leaf(task.Work{Flops: 5}), task.Leaf(task.Work{Flops: 7})))
	if m.Leaves != 2 || m.Flops != 12 {
		t.Fatalf("metrics %+v", m)
	}
}

func TestRealSpeedupOnComputeBoundTree(t *testing.T) {
	if runtime.GOMAXPROCS(0) < 2 {
		t.Skip("single-CPU environment")
	}
	work := func() *task.Node {
		return task.Leaf(task.Work{Run: func() {
			s := 0.0
			for i := 0; i < 3_000_000; i++ {
				s += float64(i%7) * 1.0001
			}
			_ = s
		}})
	}
	var leaves []*task.Node
	for i := 0; i < 16; i++ {
		leaves = append(leaves, work())
	}
	root := task.Par(leaves...)
	t1 := New(1).Run(root).Wall
	t2 := New(2).Run(root).Wall
	if float64(t1)/float64(t2) < 1.2 {
		t.Logf("warning: 2-worker speedup only %.2fx (loaded machine?)", float64(t1)/float64(t2))
	}
}

// End-to-end: all three multipliers' trees computed by the real engine
// match the naive product.
func TestRealExecutionOfAllMultipliers(t *testing.T) {
	m := hw.HaswellE31225()
	rng := rand.New(rand.NewSource(9))
	n := 128
	a := matrix.Rand(rng, n, n)
	b := matrix.Rand(rng, n, n)
	want := matrix.New(n, n)
	matrix.MulNaive(want, a, b)

	trees := map[string]func(c *matrix.Dense) *task.Node{
		"blas": func(c *matrix.Dense) *task.Node {
			return blas.Build(m, c, a, b, blas.Options{Workers: 3, WithMath: true})
		},
		"strassen": func(c *matrix.Dense) *task.Node {
			return strassen.Build(m, c, a, b, 3, strassen.Options{Cutover: 16, WithMath: true})
		},
		"winograd": func(c *matrix.Dense) *task.Node {
			return strassen.Build(m, c, a, b, 3, strassen.Options{Cutover: 16, Winograd: true, WithMath: true})
		},
		"caps": func(c *matrix.Dense) *task.Node {
			return caps.Build(m, c, a, b, 3, caps.Options{Cutover: 16, CutoffDepth: 2, WithMath: true})
		},
	}
	for name, build := range trees {
		c := matrix.New(n, n)
		New(3).Run(build(c))
		if !matrix.AlmostEqual(c, want, 1e-10) {
			t.Errorf("%s: real execution differs by %v", name, matrix.MaxAbsDiff(c, want))
		}
	}
}

// The real engine must produce the same numbers as serial execution of
// the same tree (determinism of the arithmetic under any schedule).
func TestRealMatchesSerialExecution(t *testing.T) {
	m := hw.HaswellE31225()
	rng := rand.New(rand.NewSource(10))
	n := 64
	a := matrix.Rand(rng, n, n)
	b := matrix.Rand(rng, n, n)

	c1 := matrix.New(n, n)
	task.RunSerial(strassen.Build(m, c1, a, b, 2, strassen.Options{Cutover: 8, WithMath: true}))
	c2 := matrix.New(n, n)
	New(4).Run(strassen.Build(m, c2, a, b, 2, strassen.Options{Cutover: 8, WithMath: true}))
	if !matrix.Equal(c1, c2) {
		t.Fatal("parallel real execution differs from serial")
	}
}

// One pool's persistent workers must survive arbitrarily many runs and
// keep each run's metrics separate.
func TestPoolReuseAcrossRuns(t *testing.T) {
	p := New(2)
	defer p.Close()
	for run := 0; run < 20; run++ {
		var count atomic.Int64
		var leaves []*task.Node
		for i := 0; i < 30; i++ {
			leaves = append(leaves, task.Leaf(task.Work{Flops: 2, Run: func() { count.Add(1) }}))
		}
		m := p.Run(task.Seq(task.Par(leaves[:15]...), task.Par(leaves[15:]...)))
		if count.Load() != 30 || m.Leaves != 30 || m.Flops != 60 {
			t.Fatalf("run %d: count=%d metrics=%+v", run, count.Load(), m)
		}
	}
}

// A pool must recover from a panicking tree and run the next tree
// normally (the panic must not wedge the persistent workers).
func TestPoolSurvivesPanickedRun(t *testing.T) {
	p := New(2)
	defer p.Close()
	func() {
		defer func() { recover() }()
		p.Run(task.Par(
			task.Leaf(task.Work{Run: func() {}}),
			task.Leaf(task.Work{Run: func() { panic("boom") }}),
		))
	}()
	var count atomic.Int64
	m := p.Run(task.Par(
		task.Leaf(task.Work{Run: func() { count.Add(1) }}),
		task.Leaf(task.Work{Run: func() { count.Add(1) }}),
	))
	if count.Load() != 2 || m.Leaves != 2 {
		t.Fatalf("post-panic run broken: count=%d metrics=%+v", count.Load(), m)
	}
}

// After a leaf panics, subsequent leaves of the same Seq chain are
// skipped so the run drains instead of computing garbage.
func TestPanicSkipsSeqSuccessors(t *testing.T) {
	var ran atomic.Bool
	root := task.Seq(
		task.Leaf(task.Work{Run: func() { panic("first") }}),
		task.Leaf(task.Work{Run: func() { ran.Store(true) }}),
	)
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("no panic")
			}
		}()
		p := New(2)
		defer p.Close()
		p.Run(root)
	}()
	if ran.Load() {
		t.Fatal("Seq successor ran after panic")
	}
}

// Empty interior nodes (Seq()/Par() with no children) must complete
// without deadlocking the join logic.
func TestEmptyInteriorNodes(t *testing.T) {
	p := New(2)
	defer p.Close()
	m := p.Run(task.Seq(task.Par(), task.Seq(), task.Leaf(task.Work{Flops: 1})))
	if m.Leaves != 1 || m.Flops != 1 {
		t.Fatalf("metrics %+v", m)
	}
}

// Concurrent Run calls on one pool are serialized, not interleaved
// into corrupt metrics.
func TestConcurrentRunCallsSerialize(t *testing.T) {
	p := New(2)
	defer p.Close()
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var leaves []*task.Node
			for i := 0; i < 50; i++ {
				leaves = append(leaves, task.Leaf(task.Work{Flops: 1, Run: func() {}}))
			}
			if m := p.Run(task.Par(leaves...)); m.Leaves != 50 || m.Flops != 50 {
				t.Errorf("metrics %+v", m)
			}
		}()
	}
	wg.Wait()
}
