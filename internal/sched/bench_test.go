package sched

import (
	"runtime"
	"testing"

	"capscale/internal/hw"
	"capscale/internal/matrix"
	"capscale/internal/strassen"
	"capscale/internal/task"
)

// BenchmarkSchedDispatch measures per-leaf dispatch overhead of the
// persistent-worker engine on trees whose leaves do no work, so the
// engine itself is the entire cost.
func BenchmarkSchedDispatch(b *testing.B) {
	p := New(runtime.GOMAXPROCS(0))
	defer p.Close()

	b.Run("flat4096", func(b *testing.B) {
		leaves := make([]*task.Node, 4096)
		for i := range leaves {
			leaves[i] = task.Leaf(task.Work{Run: func() {}})
		}
		root := task.Par(leaves...)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			p.Run(root)
		}
		b.ReportMetric(float64(4096*b.N)/b.Elapsed().Seconds(), "leaves/s")
	})

	// The shape the cutover-64 recursion actually produces: deep
	// Seq/Par nesting with thousands of fine-grained leaves.
	b.Run("strassen-cutover64", func(b *testing.B) {
		m := hw.HaswellE31225()
		n := 512
		a, bb, c := matrix.New(n, n), matrix.New(n, n), matrix.New(n, n)
		root := strassen.Build(m, c, a, bb, 4, strassen.Options{Cutover: 64})
		leaves := task.Collect(root).Leaves
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			p.Run(root)
		}
		b.ReportMetric(float64(leaves*b.N)/b.Elapsed().Seconds(), "leaves/s")
	})
}
