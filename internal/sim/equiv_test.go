// Bit-identicality pin for the event-driven scheduler rewrite.
//
// seedRun below is the original O(workers)-per-event list scheduler,
// preserved verbatim (modulo renames, and reading the legacy uint64
// affinity via Mask.LowBits). The event-driven engine in sim.go must
// reproduce its Result — every float compared with ==, not a
// tolerance — across the full 48-run paper matrix and both ablation
// switches. Equality holds because the rewrite preserves the exact
// launch sequence (same leaves to same workers at same times, in the
// same order) and the exact float-operation order of the power
// integration (running-heap array order, identical heap operations).
package sim_test

import (
	"container/heap"
	"fmt"
	"math"
	"testing"

	"capscale/internal/hw"
	"capscale/internal/sim"
	"capscale/internal/task"
	"capscale/internal/workload"
)

// ---------------------------------------------------------------------------
// The seed scheduler, verbatim.
// ---------------------------------------------------------------------------

type seedNodeState struct {
	n         *task.Node
	parent    *seedNodeState
	pending   int
	nextChild int
	mask      uint64
}

type seedRunningLeaf struct {
	state    *seedNodeState
	worker   int
	finish   float64
	seq      int
	activity hw.Activity
}

type seedLeafHeap []*seedRunningLeaf

func (h seedLeafHeap) Len() int { return len(h) }
func (h seedLeafHeap) Less(i, j int) bool {
	if h[i].finish != h[j].finish {
		return h[i].finish < h[j].finish
	}
	return h[i].seq < h[j].seq
}
func (h seedLeafHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *seedLeafHeap) Push(x any)   { *h = append(*h, x.(*seedRunningLeaf)) }
func (h *seedLeafHeap) Pop() any {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

type seedExecutor struct {
	m   *hw.Machine
	cfg sim.Config

	ready     []*seedNodeState
	readyHead int
	readyLive int

	readyPinned [][]*seedNodeState
	pinnedHead  []int

	running seedLeafHeap
	now     float64
	seq     int

	workerBusyUntil []float64
	workerBusyTotal []float64
	workerIdle      []bool
	idleCount       int

	lastWriter []int32

	actsBuf    []hw.Activity
	leafFree   []*seedRunningLeaf
	stateArena []seedNodeState

	liveAlloc float64
	res       sim.Result
}

func (e *seedExecutor) newState(n *task.Node, parent *seedNodeState, mask uint64) *seedNodeState {
	if len(e.stateArena) == 0 {
		e.stateArena = make([]seedNodeState, 512)
	}
	s := &e.stateArena[0]
	e.stateArena = e.stateArena[1:]
	s.n, s.parent, s.mask = n, parent, mask
	return s
}

func (e *seedExecutor) writerOf(r task.RegionID) int {
	if int(r) < len(e.lastWriter) {
		return int(e.lastWriter[r])
	}
	return -1
}

func (e *seedExecutor) setWriter(r task.RegionID, worker int) {
	if int(r) >= len(e.lastWriter) {
		size := 2 * len(e.lastWriter)
		if size <= int(r) {
			size = int(r) + 1
		}
		grown := make([]int32, size)
		copy(grown, e.lastWriter)
		for i := len(e.lastWriter); i < size; i++ {
			grown[i] = -1
		}
		e.lastWriter = grown
	}
	e.lastWriter[r] = int32(worker)
}

func seedRun(m *hw.Machine, root *task.Node, cfg sim.Config) *sim.Result {
	e := &seedExecutor{
		m:               m,
		cfg:             cfg,
		workerBusyUntil: make([]float64, cfg.Workers),
		workerBusyTotal: make([]float64, cfg.Workers),
		workerIdle:      make([]bool, cfg.Workers),
		readyPinned:     make([][]*seedNodeState, cfg.Workers),
		pinnedHead:      make([]int, cfg.Workers),
		lastWriter:      make([]int32, 1024),
		running:         make(seedLeafHeap, 0, cfg.Workers),
		actsBuf:         make([]hw.Activity, 0, cfg.Workers),
	}
	for i := range e.lastWriter {
		e.lastWriter[i] = -1
	}
	e.res.BusyByKind = make(map[task.Kind]float64)
	for i := range e.workerIdle {
		e.workerIdle[i] = true
	}
	e.idleCount = cfg.Workers

	e.startNode(e.newState(root, nil, e.allMask()))
	e.dispatch()
	for len(e.running) > 0 {
		e.advance()
		e.dispatch()
	}
	e.res.Makespan = e.now
	e.res.WorkerBusy = e.workerBusyTotal
	return &e.res
}

func (e *seedExecutor) allMask() uint64 {
	if e.cfg.Workers >= 64 {
		return ^uint64(0)
	}
	return (uint64(1) << uint(e.cfg.Workers)) - 1
}

func (e *seedExecutor) effectiveMask(n *task.Node, inherited uint64) uint64 {
	if e.cfg.DisableAffinity || n.Affinity().LowBits() == 0 {
		return inherited
	}
	m := n.Affinity().LowBits() & inherited
	if m == 0 {
		return inherited
	}
	return m
}

func (e *seedExecutor) startNode(s *seedNodeState) {
	e.liveAlloc += s.n.AllocBytes()
	if e.liveAlloc > e.res.AllocHighWater {
		e.res.AllocHighWater = e.liveAlloc
	}
	switch {
	case s.n.IsLeaf():
		if w := seedSingleWorker(s.mask); w >= 0 && w < e.cfg.Workers {
			e.readyPinned[w] = append(e.readyPinned[w], s)
		} else {
			e.ready = append(e.ready, s)
			e.readyLive++
		}
	case s.n.IsSeq():
		if len(s.n.Children()) == 0 {
			e.complete(s)
			return
		}
		e.startChild(s, 0)
	default:
		children := s.n.Children()
		if len(children) == 0 {
			e.complete(s)
			return
		}
		s.pending = len(children)
		for i := range children {
			e.startChild(s, i)
		}
	}
}

func (e *seedExecutor) startChild(parent *seedNodeState, idx int) {
	child := parent.n.Children()[idx]
	cs := e.newState(child, parent, e.effectiveMask(child, parent.mask))
	if parent.n.IsSeq() {
		parent.nextChild = idx + 1
	}
	e.startNode(cs)
}

func (e *seedExecutor) complete(s *seedNodeState) {
	e.liveAlloc -= s.n.AllocBytes()
	p := s.parent
	if p == nil {
		return
	}
	if p.n.IsSeq() {
		if p.nextChild < len(p.n.Children()) {
			e.startChild(p, p.nextChild)
			return
		}
		e.complete(p)
		return
	}
	p.pending--
	if p.pending == 0 {
		e.complete(p)
	}
}

func (e *seedExecutor) preferredWorker(w *task.Work) int {
	for _, r := range w.Reads {
		if wr := e.writerOf(r); wr >= 0 {
			return wr
		}
	}
	return -1
}

func seedSingleWorker(mask uint64) int {
	if mask != 0 && mask&(mask-1) == 0 {
		w := 0
		for mask>>uint(w)&1 == 0 {
			w++
		}
		return w
	}
	return -1
}

func (e *seedExecutor) dispatch() {
	for e.idleCount > 0 {
		dispatched := false
		for w := 0; w < e.cfg.Workers && e.idleCount > 0; w++ {
			if !e.workerIdle[w] {
				continue
			}
			q := e.readyPinned[w]
			if e.pinnedHead[w] < len(q) {
				s := q[e.pinnedHead[w]]
				e.pinnedHead[w]++
				if e.pinnedHead[w] > 64 && e.pinnedHead[w] > len(q)/2 {
					n := copy(q, q[e.pinnedHead[w]:])
					e.readyPinned[w] = q[:n]
					e.pinnedHead[w] = 0
				}
				e.launch(s, w)
				dispatched = true
			}
		}
		for e.idleCount > 0 && e.readyLive > 0 {
			found := false
			for qi := e.readyHead; qi < len(e.ready); qi++ {
				s := e.ready[qi]
				if s == nil {
					continue
				}
				worker := e.pickWorker(s)
				if worker < 0 {
					continue
				}
				e.ready[qi] = nil
				e.readyLive--
				e.launch(s, worker)
				found = true
				dispatched = true
				break
			}
			if !found {
				break
			}
			e.compactReady()
		}
		if !dispatched {
			return
		}
	}
}

func (e *seedExecutor) compactReady() {
	for e.readyHead < len(e.ready) && e.ready[e.readyHead] == nil {
		e.readyHead++
	}
	if e.readyHead > 64 && e.readyHead > len(e.ready)/2 {
		n := copy(e.ready, e.ready[e.readyHead:])
		e.ready = e.ready[:n]
		e.readyHead = 0
	}
}

func (e *seedExecutor) pickWorker(s *seedNodeState) int {
	w := s.n.Work()
	pref := -1
	if !e.cfg.DisableAffinity {
		pref = e.preferredWorker(w)
	}
	if pref >= 0 && pref < e.cfg.Workers && e.workerIdle[pref] && s.mask&(1<<uint(pref)) != 0 {
		return pref
	}
	for i := 0; i < e.cfg.Workers; i++ {
		if e.workerIdle[i] && s.mask&(1<<uint(i)) != 0 {
			return i
		}
	}
	return -1
}

func (e *seedExecutor) launch(s *seedNodeState, worker int) {
	w := s.n.Work()

	remoteBytes := 0.0
	stolen := false
	if !e.cfg.DisableAffinity {
		for _, r := range w.Reads {
			if wr := e.writerOf(r); wr >= 0 && wr != worker {
				remoteBytes += w.RegionBytes
			}
		}
		if pref := e.preferredWorker(w); pref >= 0 && pref != worker {
			stolen = true
		}
	}

	var cont hw.Contention
	if e.cfg.DisableContention {
		cont = e.m.Uncontended()
	} else {
		cont = e.m.Shared(len(e.running) + 1)
	}
	cost := e.m.CostLeaf(w, cont, remoteBytes, stolen)

	if e.cfg.VerifyNumerics && w.Run != nil {
		w.Run()
	}

	for _, wr := range w.Writes {
		e.setWriter(wr, worker)
	}

	e.workerIdle[worker] = false
	e.idleCount--
	e.workerBusyUntil[worker] = e.now + cost.Duration
	e.workerBusyTotal[worker] += cost.Duration
	e.res.BusyByKind[w.Kind] += cost.Duration
	e.res.Leaves++
	if e.cfg.RecordSchedule {
		e.res.Schedule = append(e.res.Schedule, sim.LeafSpan{
			Worker: worker,
			Start:  e.now,
			End:    e.now + cost.Duration,
			Kind:   w.Kind,
			Label:  w.Label,
		})
	}
	e.res.RemoteBytes += remoteBytes
	if stolen {
		e.res.StolenLeaves++
	}

	e.seq++
	rl := e.getLeaf()
	rl.state = s
	rl.worker = worker
	rl.finish = e.now + cost.Duration
	rl.seq = e.seq
	rl.activity = hw.Activity{
		Utilization: cost.Utilization,
		DRAMRate:    cost.DRAMRate,
		L3Rate:      cost.L3Rate,
	}
	heap.Push(&e.running, rl)
}

func (e *seedExecutor) getLeaf() *seedRunningLeaf {
	if n := len(e.leafFree); n > 0 {
		rl := e.leafFree[n-1]
		e.leafFree = e.leafFree[:n-1]
		return rl
	}
	return &seedRunningLeaf{}
}

func (e *seedExecutor) advance() {
	next := e.running[0].finish
	if dt := next - e.now; dt > 0 {
		acts := e.actsBuf[:0]
		for _, rl := range e.running {
			acts = append(acts, rl.activity)
		}
		e.actsBuf = acts
		p := e.m.SegmentPower(acts)
		e.res.EnergyPKG += p.PKG * dt
		e.res.EnergyPP0 += p.PP0 * dt
		e.res.EnergyDRAM += p.DRAM * dt
		if e.cfg.RecordTimeline {
			e.res.Timeline = append(e.res.Timeline, sim.Segment{Start: e.now, End: next, Power: p})
		}
		if e.cfg.OnSegment != nil {
			e.cfg.OnSegment(sim.Segment{Start: e.now, End: next, Power: p})
		}
	}
	e.now = next
	for len(e.running) > 0 && seedSameTime(e.running[0].finish, e.now) {
		rl := heap.Pop(&e.running).(*seedRunningLeaf)
		e.workerIdle[rl.worker] = true
		e.idleCount++
		s := rl.state
		rl.state = nil
		e.leafFree = append(e.leafFree, rl)
		e.complete(s)
	}
}

func seedSameTime(a, b float64) bool {
	return math.Abs(a-b) <= 1e-12*math.Max(1, math.Abs(b))
}

// ---------------------------------------------------------------------------
// The pin.
// ---------------------------------------------------------------------------

// requireIdentical compares two Results field by field with exact
// equality — floats with ==, not a tolerance.
func requireIdentical(t *testing.T, label string, got, want *sim.Result) {
	t.Helper()
	if got.Makespan != want.Makespan {
		t.Fatalf("%s: makespan %v != seed %v", label, got.Makespan, want.Makespan)
	}
	if got.EnergyPKG != want.EnergyPKG || got.EnergyPP0 != want.EnergyPP0 ||
		got.EnergyDRAM != want.EnergyDRAM {
		t.Fatalf("%s: energy (%v,%v,%v) != seed (%v,%v,%v)", label,
			got.EnergyPKG, got.EnergyPP0, got.EnergyDRAM,
			want.EnergyPKG, want.EnergyPP0, want.EnergyDRAM)
	}
	if got.Leaves != want.Leaves {
		t.Fatalf("%s: leaves %d != seed %d", label, got.Leaves, want.Leaves)
	}
	if got.RemoteBytes != want.RemoteBytes {
		t.Fatalf("%s: remote bytes %v != seed %v", label, got.RemoteBytes, want.RemoteBytes)
	}
	if got.StolenLeaves != want.StolenLeaves {
		t.Fatalf("%s: stolen %d != seed %d", label, got.StolenLeaves, want.StolenLeaves)
	}
	if got.AllocHighWater != want.AllocHighWater {
		t.Fatalf("%s: alloc high water %v != seed %v", label, got.AllocHighWater, want.AllocHighWater)
	}
	if len(got.WorkerBusy) != len(want.WorkerBusy) {
		t.Fatalf("%s: worker count %d != seed %d", label, len(got.WorkerBusy), len(want.WorkerBusy))
	}
	for i := range want.WorkerBusy {
		if got.WorkerBusy[i] != want.WorkerBusy[i] {
			t.Fatalf("%s: worker %d busy %v != seed %v", label, i,
				got.WorkerBusy[i], want.WorkerBusy[i])
		}
	}
	if len(got.BusyByKind) != len(want.BusyByKind) {
		t.Fatalf("%s: busy-by-kind size %d != seed %d", label,
			len(got.BusyByKind), len(want.BusyByKind))
	}
	for k, v := range want.BusyByKind {
		if got.BusyByKind[k] != v {
			t.Fatalf("%s: busy[%v] %v != seed %v", label, k, got.BusyByKind[k], v)
		}
	}
	if len(got.Schedule) != len(want.Schedule) {
		t.Fatalf("%s: schedule length %d != seed %d", label, len(got.Schedule), len(want.Schedule))
	}
	for i := range want.Schedule {
		if got.Schedule[i] != want.Schedule[i] {
			t.Fatalf("%s: schedule[%d] %+v != seed %+v", label, i,
				got.Schedule[i], want.Schedule[i])
		}
	}
	if len(got.Timeline) != len(want.Timeline) {
		t.Fatalf("%s: timeline length %d != seed %d", label, len(got.Timeline), len(want.Timeline))
	}
	for i := range want.Timeline {
		if got.Timeline[i] != want.Timeline[i] {
			t.Fatalf("%s: timeline[%d] %+v != seed %+v", label, i,
				got.Timeline[i], want.Timeline[i])
		}
	}
}

// TestEventSchedulerBitIdenticalToSeed pins the event-driven scheduler
// to the seed list scheduler over the paper's experiment matrix (all
// 48 cells in full mode; sizes trimmed in -short) under the default
// configuration and under each ablation switch. Every cell compares
// makespan, the three energy planes, leaf/communication/steal counts
// and per-worker busy times with exact equality; at the smaller sizes
// (where the extra allocation cost is negligible) the full per-leaf
// schedule and per-segment timeline are recorded and compared too, and
// both ablation switches run as additional variants.
func TestEventSchedulerBitIdenticalToSeed(t *testing.T) {
	cfg := workload.PaperConfig()
	sizes := cfg.Sizes
	if testing.Short() {
		sizes = []int{256, 512}
	}
	variants := []struct {
		name string
		mut  func(*sim.Config)
	}{
		{"default", func(*sim.Config) {}},
		{"no-affinity", func(c *sim.Config) { c.DisableAffinity = true }},
		{"no-contention", func(c *sim.Config) { c.DisableContention = true }},
	}
	for _, alg := range cfg.Algorithms {
		for _, n := range sizes {
			deep := n <= 1024 // record & compare schedule/timeline, run ablations
			for _, threads := range cfg.Threads {
				tree := workload.BuildTree(cfg.Machine, alg, n, threads)
				for _, v := range variants {
					if v.name != "default" && !deep {
						continue
					}
					sc := sim.Config{
						Workers:        threads,
						RecordSchedule: deep,
						RecordTimeline: deep,
					}
					v.mut(&sc)
					got := sim.Run(cfg.Machine, tree, sc)
					want := seedRun(cfg.Machine, tree, sc)
					label := fmt.Sprintf("%v/n%d/%dt/%s", alg, n, threads, v.name)
					requireIdentical(t, label, got, want)
				}
			}
		}
	}
}

// The shared-queue skip path (leaves whose mask has no idle worker are
// passed over without losing FIFO position) is the subtlest part of the
// dispatch equivalence; exercise it directly with competing pinned and
// masked leaves.
func TestEventSchedulerBitIdenticalOnMaskedContention(t *testing.T) {
	m := hw.HaswellE31225()
	var regions task.Regions
	r1, r2 := regions.New(), regions.New()
	mk := func(flops float64, reads, writes []task.RegionID) *task.Node {
		return task.Leaf(task.Work{
			Kind: task.KindGEMM, Flops: flops,
			Reads: reads, Writes: writes, RegionBytes: 1e5,
		})
	}
	root := task.Par(
		// Two leaves restricted to workers {0,1}, one to {2,3}, a
		// producer/consumer pair, and unrestricted filler.
		mk(1e8, nil, []task.RegionID{r1}).WithAffinity(0b0011),
		mk(2e8, nil, nil).WithAffinity(0b0011),
		mk(3e8, nil, []task.RegionID{r2}).WithAffinity(0b1100),
		task.Seq(
			mk(1e8, []task.RegionID{r1}, nil),
			mk(1e8, []task.RegionID{r1, r2}, nil),
		),
		mk(5e7, nil, nil),
		mk(6e7, nil, nil).WithAffinity(0b0001),
		mk(7e7, nil, nil).WithAffinity(0b0001),
	)
	for workers := 1; workers <= 4; workers++ {
		sc := sim.Config{Workers: workers, RecordSchedule: true, RecordTimeline: true}
		requireIdentical(t, "masked contention",
			sim.Run(m, root, sc), seedRun(m, root, sc))
	}
}
