// Behavior the seed scheduler could not even represent: worker counts
// above 64, cluster machines, and the aggregate power-integration mode.
package sim_test

import (
	"strings"
	"sync"
	"testing"

	"capscale/internal/hw"
	"capscale/internal/sim"
	"capscale/internal/task"
)

// clusterOf returns a flat machine with at least `workers` cores.
func clusterOf(workers int) *hw.Machine {
	node := hw.HaswellE31225()
	return hw.Cluster(node, (workers+node.Cores-1)/node.Cores)
}

func computeLeafN(flops float64) *task.Node {
	return task.Leaf(task.Work{Kind: task.KindGEMM, Flops: flops})
}

func TestConfigValidateTable(t *testing.T) {
	m := hw.HaswellE31225()
	big := clusterOf(4096)
	cases := []struct {
		name    string
		m       *hw.Machine
		workers int
		wantErr string // empty = valid
	}{
		{"zero workers", m, 0, "must be positive"},
		{"negative workers", m, -3, "must be positive"},
		{"one over cores", m, 5, "exceed"},
		{"way over cores", big, 5000, "exceed"},
		{"one worker", m, 1, ""},
		{"all cores", m, 4, ""},
		{"cluster scale", big, 4096, ""},
	}
	for _, c := range cases {
		err := sim.Config{Workers: c.workers}.Validate(c.m)
		if c.wantErr == "" {
			if err != nil {
				t.Errorf("%s: unexpected error %v", c.name, err)
			}
			continue
		}
		if err == nil {
			t.Errorf("%s: Validate accepted workers=%d on %d cores",
				c.name, c.workers, c.m.Cores)
			continue
		}
		if !strings.Contains(err.Error(), c.wantErr) {
			t.Errorf("%s: error %q does not mention %q", c.name, err, c.wantErr)
		}
	}
}

func TestRunPanicMatchesValidate(t *testing.T) {
	m := hw.HaswellE31225()
	cfg := sim.Config{Workers: 99}
	want := cfg.Validate(m).Error()
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("Run accepted invalid config")
		}
		if msg, ok := r.(string); !ok || msg != want {
			t.Fatalf("panic %v, want the Validate message %q", r, want)
		}
	}()
	sim.Run(m, computeLeafN(1), cfg)
}

// A leaf pinned to worker 100 must execute on worker 100 — under the
// uint64 representation the pin silently vanished for any index ≥ 64.
func TestAffinityAboveSixtyFourIsHonored(t *testing.T) {
	m := clusterOf(128)
	root := task.Par(
		computeLeafN(1e8).WithAffinityMask(task.SingleWorker(100)),
		computeLeafN(1e8).WithAffinityMask(task.SingleWorker(67)),
		computeLeafN(1e8).WithAffinityMask(task.MaskRange(90, 95)),
	)
	res := sim.Run(m, root, sim.Config{Workers: 128})
	if res.WorkerBusy[100] == 0 {
		t.Fatal("leaf pinned to worker 100 did not run there")
	}
	if res.WorkerBusy[67] == 0 {
		t.Fatal("leaf pinned to worker 67 did not run there")
	}
	if res.WorkerBusy[90] == 0 {
		t.Fatal("range-masked leaf should take the lowest idle worker in [90,95]")
	}
	for _, w := range []int{0, 1, 64, 99, 101} {
		if res.WorkerBusy[w] != 0 {
			t.Fatalf("worker %d should be idle, busy %v", w, res.WorkerBusy[w])
		}
	}
}

func TestManyWorkersParallelSpeedup(t *testing.T) {
	const workers = 1000
	m := clusterOf(workers)
	leaves := make([]*task.Node, workers)
	for i := range leaves {
		leaves[i] = computeLeafN(1e9)
	}
	root := task.Par(leaves...)
	cfg := sim.Config{Workers: workers, DisableContention: true, DisableAffinity: true}
	res := sim.Run(m, root, cfg)
	one := sim.Run(m, task.Par(leaves[:1]...), cfg)
	if res.Makespan != one.Makespan {
		t.Fatalf("1000 equal leaves on 1000 workers: makespan %v, one leaf alone %v",
			res.Makespan, one.Makespan)
	}
	if res.Leaves != workers {
		t.Fatalf("leaves %d", res.Leaves)
	}
}

// The O(1) aggregate power mode (> 64 workers) must integrate exactly
// what it reports in the timeline: summing Power·dt over recorded
// segments reproduces the energy totals bit-for-bit, because advance
// performs those same multiplications in the same order.
func TestAggregateEnergyConsistentWithTimeline(t *testing.T) {
	const workers = 200
	m := clusterOf(workers)
	var chains []*task.Node
	var regions task.Regions
	for w := 0; w < workers; w++ {
		r := regions.New()
		chains = append(chains, task.Seq(
			task.Leaf(task.Work{Kind: task.KindGEMM, Flops: float64(1+w) * 1e6,
				Writes: []task.RegionID{r}, RegionBytes: 1e4}),
			task.Leaf(task.Work{Kind: task.KindAdd, DRAMBytes: float64(1+w%7) * 1e5,
				Reads: []task.RegionID{r}, RegionBytes: 1e4}),
		).WithAffinityMask(task.SingleWorker(w)))
	}
	res := sim.Run(m, task.Par(chains...), sim.Config{Workers: workers, RecordTimeline: true})
	var pkg, pp0, dram float64
	for _, seg := range res.Timeline {
		dt := seg.End - seg.Start
		pkg += seg.Power.PKG * dt
		pp0 += seg.Power.PP0 * dt
		dram += seg.Power.DRAM * dt
	}
	if pkg != res.EnergyPKG || pp0 != res.EnergyPP0 || dram != res.EnergyDRAM {
		t.Fatalf("timeline integral (%v,%v,%v) != energies (%v,%v,%v)",
			pkg, pp0, dram, res.EnergyPKG, res.EnergyPP0, res.EnergyDRAM)
	}
	if res.Makespan <= 0 || res.Leaves != 2*workers {
		t.Fatalf("makespan %v leaves %d", res.Makespan, res.Leaves)
	}
}

// Two runs of the same large configuration must agree exactly — the
// event queue, bitmaps and compensated sums introduce no host
// dependence.
func TestLargeScaleDeterminism(t *testing.T) {
	const workers = 5000
	m := clusterOf(workers)
	mk := func() *task.Node {
		var chains []*task.Node
		for w := 0; w < workers; w++ {
			chains = append(chains, task.Seq(
				computeLeafN(float64(1+w%13)*1e6),
				computeLeafN(float64(1+w%5)*1e6),
			).WithAffinityMask(task.SingleWorker(w)))
		}
		return task.Par(chains...)
	}
	cfg := sim.Config{Workers: workers}
	a := sim.Run(m, mk(), cfg)
	b := sim.Run(m, mk(), cfg)
	if a.Makespan != b.Makespan || a.EnergyPKG != b.EnergyPKG ||
		a.EnergyPP0 != b.EnergyPP0 || a.EnergyDRAM != b.EnergyDRAM ||
		a.RemoteBytes != b.RemoteBytes || a.StolenLeaves != b.StolenLeaves {
		t.Fatalf("nondeterministic: %+v vs %+v", a, b)
	}
}

// Concurrent Runs share only read-only inputs (machine, tree) and the
// atomic obs counters; the race detector pass in check.sh drives this.
func TestConcurrentRunsRace(t *testing.T) {
	const workers = 100
	m := clusterOf(workers)
	var chains []*task.Node
	for w := 0; w < workers; w++ {
		chains = append(chains, computeLeafN(float64(1+w)*1e6).
			WithAffinityMask(task.SingleWorker(w)))
	}
	shared := task.Par(chains...)
	cfg := sim.Config{Workers: workers}
	want := sim.Run(m, shared, cfg)

	var wg sync.WaitGroup
	results := make([]*sim.Result, 8)
	for i := range results {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i] = sim.Run(m, shared, cfg)
		}(i)
	}
	wg.Wait()
	for i, r := range results {
		if r.Makespan != want.Makespan || r.EnergyPKG != want.EnergyPKG {
			t.Fatalf("concurrent run %d diverged: %+v vs %+v", i, r, want)
		}
	}
}
