package sim

import (
	"math/rand"
	"testing"
)

func TestOnSegmentStreamsTheTimeline(t *testing.T) {
	m := machine()
	rng := rand.New(rand.NewSource(11))
	root := randomSimTree(rng, 4)

	var streamed []Segment
	res := Run(m, root, Config{
		Workers:        4,
		RecordTimeline: true,
		OnSegment:      func(s Segment) { streamed = append(streamed, s) },
	})
	if len(res.Timeline) == 0 {
		t.Fatal("no timeline recorded")
	}
	if len(streamed) != len(res.Timeline) {
		t.Fatalf("streamed %d segments, timeline has %d", len(streamed), len(res.Timeline))
	}
	for i, seg := range streamed {
		if seg != res.Timeline[i] {
			t.Fatalf("segment %d: streamed %+v != recorded %+v", i, seg, res.Timeline[i])
		}
	}
}

func TestOnSegmentWithoutTimeline(t *testing.T) {
	// Streaming must not require RecordTimeline: the callback fires and
	// the result carries no materialized timeline.
	var n int
	res := Run(machine(), computeLeaf(1e8), Config{
		Workers:   1,
		OnSegment: func(Segment) { n++ },
	})
	if n == 0 {
		t.Fatal("OnSegment never fired")
	}
	if res.Timeline != nil {
		t.Fatal("timeline recorded without RecordTimeline")
	}
}
