package sim

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"capscale/internal/hw"
	"capscale/internal/task"
)

func machine() *hw.Machine { return hw.HaswellE31225() }

func computeLeaf(flops float64) *task.Node {
	return task.Leaf(task.Work{Kind: task.KindGEMM, Flops: flops})
}

func memLeaf(bytes float64) *task.Node {
	return task.Leaf(task.Work{Kind: task.KindAdd, DRAMBytes: bytes})
}

func TestRunPanicsOnBadWorkers(t *testing.T) {
	m := machine()
	for _, workers := range []int{0, -1, m.Cores + 1} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("workers=%d did not panic", workers)
				}
			}()
			Run(m, computeLeaf(1), Config{Workers: workers})
		}()
	}
}

func TestSingleLeaf(t *testing.T) {
	m := machine()
	res := Run(m, computeLeaf(2.56e9), Config{Workers: 1})
	want := 2.56e9/(m.PeakFlopsPerCore()*0.92) + m.TaskOverhead
	if math.Abs(res.Makespan-want)/want > 1e-9 {
		t.Fatalf("makespan %v want %v", res.Makespan, want)
	}
	if res.Leaves != 1 {
		t.Fatalf("leaves %d", res.Leaves)
	}
	if res.EnergyPKG <= 0 || res.EnergyPP0 <= 0 || res.EnergyDRAM <= 0 {
		t.Fatalf("energies %v %v %v", res.EnergyPKG, res.EnergyPP0, res.EnergyDRAM)
	}
}

func TestEmptyTree(t *testing.T) {
	res := Run(machine(), task.Seq(), Config{Workers: 2})
	if res.Makespan != 0 || res.Leaves != 0 {
		t.Fatalf("empty tree: makespan %v leaves %d", res.Makespan, res.Leaves)
	}
}

func TestEveryLeafRunsExactlyOnce(t *testing.T) {
	counts := make([]int, 6)
	mk := func(i int) *task.Node {
		return task.Leaf(task.Work{Kind: task.KindGEMM, Flops: 1e6, Run: func() { counts[i]++ }})
	}
	root := task.Seq(
		mk(0),
		task.Par(mk(1), task.Seq(mk(2), mk(3)), mk(4)),
		mk(5),
	)
	Run(machine(), root, Config{Workers: 3, VerifyNumerics: true})
	for i, c := range counts {
		if c != 1 {
			t.Fatalf("leaf %d ran %d times", i, c)
		}
	}
}

func TestSeqOrderRespected(t *testing.T) {
	var order []int
	mk := func(i int) *task.Node {
		return task.Leaf(task.Work{Kind: task.KindGEMM, Flops: 1e6, Run: func() { order = append(order, i) }})
	}
	Run(machine(), task.Seq(mk(0), mk(1), mk(2), mk(3)), Config{Workers: 4, VerifyNumerics: true})
	for i, v := range order {
		if v != i {
			t.Fatalf("order %v", order)
		}
	}
}

func TestParallelSpeedup(t *testing.T) {
	m := machine()
	leaves := make([]*task.Node, 8)
	for i := range leaves {
		leaves[i] = computeLeaf(1e9)
	}
	one := Run(m, task.Par(leaves...), Config{Workers: 1})
	four := Run(m, task.Par(leaves...), Config{Workers: 4})
	speedup := one.Makespan / four.Makespan
	if speedup < 3.5 || speedup > 4.01 {
		t.Fatalf("compute-bound speedup %v, want ~4", speedup)
	}
}

func TestMemoryBoundSpeedupLimitedByBandwidth(t *testing.T) {
	m := machine()
	leaves := make([]*task.Node, 8)
	for i := range leaves {
		leaves[i] = memLeaf(1e8)
	}
	one := Run(m, task.Par(leaves...), Config{Workers: 1})
	four := Run(m, task.Par(leaves...), Config{Workers: 4})
	speedup := one.Makespan / four.Makespan
	// Aggregate DRAM is 11 GB/s vs a single stream's 7.5 GB/s: the most
	// parallelism can buy is 11/7.5 ≈ 1.47.
	if speedup > 1.6 {
		t.Fatalf("memory-bound speedup %v exceeds bandwidth ratio", speedup)
	}
	if speedup < 1.0 {
		t.Fatalf("memory-bound parallel run slower than serial: %v", speedup)
	}
}

func TestMakespanBounds(t *testing.T) {
	m := machine()
	rng := rand.New(rand.NewSource(7))
	root := randomSimTree(rng, 4)
	serial := m.SerialTime(root)
	span := m.CriticalPath(root)
	res := Run(m, root, Config{Workers: 4, DisableContention: true})
	if res.Makespan > serial*(1+1e-9) {
		t.Fatalf("makespan %v exceeds serial %v", res.Makespan, serial)
	}
	if res.Makespan < span*(1-1e-9) {
		t.Fatalf("makespan %v beats span %v", res.Makespan, span)
	}
	// Greedy (Brent) bound without contention: T_P <= T_1/P + T_inf.
	if bound := serial/4 + span; res.Makespan > bound*(1+1e-9) {
		t.Fatalf("makespan %v exceeds greedy bound %v", res.Makespan, bound)
	}
}

func TestOneWorkerMatchesSerialTime(t *testing.T) {
	m := machine()
	rng := rand.New(rand.NewSource(3))
	root := randomSimTree(rng, 4)
	res := Run(m, root, Config{Workers: 1})
	serial := m.SerialTime(root)
	if math.Abs(res.Makespan-serial)/serial > 1e-9 {
		t.Fatalf("1-worker makespan %v vs serial %v", res.Makespan, serial)
	}
}

func TestDeterminism(t *testing.T) {
	m := machine()
	rng := rand.New(rand.NewSource(11))
	root := randomSimTree(rng, 5)
	a := Run(m, root, Config{Workers: 3})
	b := Run(m, root, Config{Workers: 3})
	if a.Makespan != b.Makespan || a.EnergyPKG != b.EnergyPKG ||
		a.RemoteBytes != b.RemoteBytes || a.StolenLeaves != b.StolenLeaves {
		t.Fatal("two identical runs differ")
	}
}

func TestEnergyConsistentWithTimeline(t *testing.T) {
	m := machine()
	rng := rand.New(rand.NewSource(5))
	root := randomSimTree(rng, 4)
	res := Run(m, root, Config{Workers: 4, RecordTimeline: true})
	if len(res.Timeline) == 0 {
		t.Fatal("no timeline recorded")
	}
	var pkg, pp0, dram float64
	prevEnd := 0.0
	for _, seg := range res.Timeline {
		if seg.End <= seg.Start {
			t.Fatalf("degenerate segment %+v", seg)
		}
		if seg.Start < prevEnd-1e-12 {
			t.Fatalf("overlapping segments at %v", seg.Start)
		}
		dt := seg.End - seg.Start
		pkg += seg.Power.PKG * dt
		pp0 += seg.Power.PP0 * dt
		dram += seg.Power.DRAM * dt
		prevEnd = seg.End
	}
	if math.Abs(pkg-res.EnergyPKG)/res.EnergyPKG > 1e-9 {
		t.Fatalf("PKG integral %v vs %v", pkg, res.EnergyPKG)
	}
	if math.Abs(pp0-res.EnergyPP0)/math.Max(res.EnergyPP0, 1e-12) > 1e-9 {
		t.Fatalf("PP0 integral %v vs %v", pp0, res.EnergyPP0)
	}
	if math.Abs(dram-res.EnergyDRAM)/res.EnergyDRAM > 1e-9 {
		t.Fatalf("DRAM integral %v vs %v", dram, res.EnergyDRAM)
	}
}

func TestTimelineOffByDefault(t *testing.T) {
	res := Run(machine(), computeLeaf(1e8), Config{Workers: 1})
	if res.Timeline != nil {
		t.Fatal("timeline recorded without RecordTimeline")
	}
}

func TestAvgPowerWithinPhysicalRange(t *testing.T) {
	m := machine()
	leaves := make([]*task.Node, 16)
	for i := range leaves {
		leaves[i] = computeLeaf(1e9)
	}
	res := Run(m, task.Par(leaves...), Config{Workers: 4})
	idle := m.IdlePower()
	if res.AvgPowerPKG() <= idle.PKG {
		t.Fatalf("avg PKG %v not above idle %v", res.AvgPowerPKG(), idle.PKG)
	}
	full := m.SegmentPower([]hw.Activity{{Utilization: 1}, {Utilization: 1}, {Utilization: 1}, {Utilization: 1}})
	if res.AvgPowerPKG() > full.PKG+1 {
		t.Fatalf("avg PKG %v above physical max %v", res.AvgPowerPKG(), full.PKG)
	}
	if res.AvgPowerPP0() >= res.AvgPowerPKG() {
		t.Fatal("PP0 should be below PKG")
	}
	if res.AvgPowerTotal() <= res.AvgPowerPKG() {
		t.Fatal("total should include DRAM plane")
	}
}

func TestRemoteTrafficChargedAcrossWorkers(t *testing.T) {
	var regions task.Regions
	r := regions.New()
	producer := task.Leaf(task.Work{
		Kind: task.KindAdd, DRAMBytes: 1e6,
		Writes: []task.RegionID{r}, RegionBytes: 1e6,
	}).WithAffinity(0b01)
	consumer := task.Leaf(task.Work{
		Kind: task.KindBaseMul, Flops: 1e6,
		Reads: []task.RegionID{r}, RegionBytes: 1e6,
	}).WithAffinity(0b10)
	root := task.Seq(producer, consumer)

	res := Run(machine(), root, Config{Workers: 2})
	if res.RemoteBytes != 1e6 {
		t.Fatalf("remote bytes %v want 1e6", res.RemoteBytes)
	}
	if res.StolenLeaves != 1 {
		t.Fatalf("stolen leaves %d want 1", res.StolenLeaves)
	}

	// Same tree on one worker: no communication possible.
	resOne := Run(machine(), root, Config{Workers: 1})
	if resOne.RemoteBytes != 0 || resOne.StolenLeaves != 0 {
		t.Fatalf("single-worker run charged communication: %v bytes", resOne.RemoteBytes)
	}
}

func TestAffinityPreferenceAvoidsRemote(t *testing.T) {
	// Producer then consumer, unpinned: the scheduler should prefer the
	// producing worker for the consumer even with others idle.
	var regions task.Regions
	r := regions.New()
	producer := task.Leaf(task.Work{Kind: task.KindAdd, DRAMBytes: 1e6,
		Writes: []task.RegionID{r}, RegionBytes: 1e6})
	consumer := task.Leaf(task.Work{Kind: task.KindBaseMul, Flops: 1e6,
		Reads: []task.RegionID{r}, RegionBytes: 1e6})
	res := Run(machine(), task.Seq(producer, consumer), Config{Workers: 4})
	if res.RemoteBytes != 0 {
		t.Fatalf("affinity preference failed: %v remote bytes", res.RemoteBytes)
	}
}

func TestDisableAffinityIgnoresMasksAndCharges(t *testing.T) {
	var regions task.Regions
	r := regions.New()
	producer := task.Leaf(task.Work{Kind: task.KindAdd, DRAMBytes: 1e6,
		Writes: []task.RegionID{r}, RegionBytes: 1e6}).WithAffinity(0b01)
	consumer := task.Leaf(task.Work{Kind: task.KindBaseMul, Flops: 1e6,
		Reads: []task.RegionID{r}, RegionBytes: 1e6}).WithAffinity(0b10)
	res := Run(machine(), task.Seq(producer, consumer), Config{Workers: 2, DisableAffinity: true})
	if res.RemoteBytes != 0 || res.StolenLeaves != 0 {
		t.Fatal("ablation still charged communication")
	}
}

func TestImpossibleAffinityFallsBack(t *testing.T) {
	// Pinned to worker 7, but only 2 workers exist: must complete.
	root := task.Seq(computeLeaf(1e6).WithAffinity(1 << 7))
	res := Run(machine(), root, Config{Workers: 2})
	if res.Leaves != 1 {
		t.Fatal("leaf with impossible affinity did not run")
	}
}

func TestAffinityRestrictsParallelism(t *testing.T) {
	// Four compute leaves all pinned to worker 0 must serialize even
	// with four workers available.
	m := machine()
	leaves := make([]*task.Node, 4)
	for i := range leaves {
		leaves[i] = computeLeaf(1e9).WithAffinity(0b1)
	}
	res := Run(m, task.Par(leaves...), Config{Workers: 4})
	serial := m.SerialTime(task.Par(leaves...))
	if math.Abs(res.Makespan-serial)/serial > 1e-9 {
		t.Fatalf("pinned leaves did not serialize: %v vs %v", res.Makespan, serial)
	}
	if busy := res.WorkerBusy[1] + res.WorkerBusy[2] + res.WorkerBusy[3]; busy != 0 {
		t.Fatalf("non-pinned workers were busy: %v", busy)
	}
}

func TestDisableContentionSpeedsMemoryBoundRuns(t *testing.T) {
	m := machine()
	leaves := make([]*task.Node, 8)
	for i := range leaves {
		leaves[i] = memLeaf(1e8)
	}
	contended := Run(m, task.Par(leaves...), Config{Workers: 4})
	free := Run(m, task.Par(leaves...), Config{Workers: 4, DisableContention: true})
	if free.Makespan >= contended.Makespan {
		t.Fatalf("contention ablation did not speed up: %v vs %v", free.Makespan, contended.Makespan)
	}
}

func TestAllocHighWater(t *testing.T) {
	// Par of two subtrees each holding 1 MB: both live at once under a
	// 2-worker schedule.
	sub := func() *task.Node {
		return task.Seq(computeLeaf(1e9)).WithAlloc(1e6)
	}
	res := Run(machine(), task.Par(sub(), sub()), Config{Workers: 2})
	if res.AllocHighWater != 2e6 {
		t.Fatalf("high water %v want 2e6", res.AllocHighWater)
	}
	stats := task.Collect(task.Par(sub(), sub()))
	if res.AllocHighWater > stats.AllocPeak {
		t.Fatalf("scheduled high water %v exceeds structural bound %v", res.AllocHighWater, stats.AllocPeak)
	}
}

func TestBusyByKindBreakdown(t *testing.T) {
	m := machine()
	root := task.Seq(
		task.Leaf(task.Work{Kind: task.KindGEMM, Flops: 1e9}),
		task.Leaf(task.Work{Kind: task.KindAdd, DRAMBytes: 1e8}),
		task.Leaf(task.Work{Kind: task.KindCopy, DRAMBytes: 5e7}),
	)
	res := Run(m, root, Config{Workers: 2})
	if len(res.BusyByKind) != 3 {
		t.Fatalf("kinds %v", res.BusyByKind)
	}
	sumKinds := 0.0
	for _, v := range res.BusyByKind {
		sumKinds += v
	}
	sumWorkers := 0.0
	for _, v := range res.WorkerBusy {
		sumWorkers += v
	}
	if math.Abs(sumKinds-sumWorkers) > 1e-12 {
		t.Fatalf("kind sum %v vs worker sum %v", sumKinds, sumWorkers)
	}
	if res.BusyByKind[task.KindGEMM] <= res.BusyByKind[task.KindCopy] {
		t.Fatal("1 GFlop of GEMM should outweigh a 50MB copy")
	}
}

func TestWorkerBusyAccounting(t *testing.T) {
	m := machine()
	leaves := make([]*task.Node, 4)
	for i := range leaves {
		leaves[i] = computeLeaf(1e9)
	}
	res := Run(m, task.Par(leaves...), Config{Workers: 4})
	if len(res.WorkerBusy) != 4 {
		t.Fatalf("busy slice len %d", len(res.WorkerBusy))
	}
	for i, b := range res.WorkerBusy {
		if b <= 0 || b > res.Makespan*(1+1e-9) {
			t.Fatalf("worker %d busy %v outside (0, %v]", i, b, res.Makespan)
		}
	}
	if u := res.Utilization(); u < 0.9 || u > 1.0+1e-9 {
		t.Fatalf("utilization %v for perfectly divisible work", u)
	}
}

func TestSixtyFourWorkerMachine(t *testing.T) {
	// Exercises the full-width affinity mask path (1<<64 overflow
	// guard) and scheduling breadth well past the paper's 4 cores.
	m := machine()
	m.Cores = 64
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	leaves := make([]*task.Node, 256)
	for i := range leaves {
		leaves[i] = computeLeaf(1e8)
	}
	res := Run(m, task.Par(leaves...), Config{Workers: 64})
	if res.Leaves != 256 {
		t.Fatalf("leaves %d", res.Leaves)
	}
	one := Run(m, task.Par(leaves...), Config{Workers: 1})
	if sp := one.Makespan / res.Makespan; sp < 50 {
		t.Fatalf("64-worker speedup %v", sp)
	}
}

func TestPropertyAllLeavesExecuted(t *testing.T) {
	m := machine()
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		root := randomSimTree(rng, 4)
		want := task.Collect(root).Leaves
		workers := 1 + rng.Intn(4)
		res := Run(m, root, Config{Workers: workers})
		return res.Leaves == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyMoreWorkersNeverSlower(t *testing.T) {
	m := machine()
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		root := randomSimTree(rng, 4)
		// Contention off isolates scheduling: with it on, more workers
		// can legitimately lengthen individual leaves.
		cfgA := Config{Workers: 1, DisableContention: true}
		cfgB := Config{Workers: 4, DisableContention: true}
		a := Run(m, root, cfgA)
		b := Run(m, root, cfgB)
		return b.Makespan <= a.Makespan*(1+1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyEnergyPositiveAndBounded(t *testing.T) {
	m := machine()
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		root := randomSimTree(rng, 3)
		res := Run(m, root, Config{Workers: 2})
		if res.Makespan == 0 {
			return res.EnergyPKG == 0
		}
		maxP := m.SegmentPower([]hw.Activity{
			{Utilization: 1, DRAMRate: m.DRAMBandwidth, L3Rate: m.L3Bandwidth},
			{Utilization: 1, DRAMRate: m.DRAMBandwidth, L3Rate: m.L3Bandwidth},
		})
		return res.EnergyPKG > 0 && res.AvgPowerPKG() <= maxP.PKG+1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func randomSimTree(rng *rand.Rand, depth int) *task.Node {
	if depth == 0 || rng.Intn(3) == 0 {
		kind := []task.Kind{task.KindGEMM, task.KindBaseMul, task.KindAdd, task.KindCopy}[rng.Intn(4)]
		return task.Leaf(task.Work{
			Kind:      kind,
			Flops:     rng.Float64() * 1e8,
			DRAMBytes: rng.Float64() * 1e7,
			L3Bytes:   rng.Float64() * 1e7,
		})
	}
	n := 1 + rng.Intn(4)
	children := make([]*task.Node, n)
	for i := range children {
		children[i] = randomSimTree(rng, depth-1)
	}
	if rng.Intn(2) == 0 {
		return task.Seq(children...)
	}
	return task.Par(children...)
}
