// Package sim is the deterministic virtual-time execution engine.
//
// It schedules a fork-join task tree (internal/task) onto P modeled
// cores of a machine (internal/hw) with greedy list scheduling,
// accounting for DRAM bandwidth contention, affinity-based communication
// (remote cache-to-cache traffic when a leaf reads data last written by
// a different worker) and per-task dispatch overhead. While scheduling
// it integrates the machine's power model over the timeline, producing
// per-plane energy totals and, optionally, the full power trace that the
// RAPL emulation replays.
//
// The engine is event-driven and sized for cluster-scale worker counts
// (10⁴–10⁶ simulated workers): leaf completions sit in an indexed
// min-heap, idle workers in a hierarchical bitmap with O(log₆₄ n)
// masked lookups, and per-worker pinned queues pop in O(1), so no per-
// event operation scans all workers. With ≤ 64 workers the scheduler is
// bit-identical to the original list scheduler (pinned by
// TestEventSchedulerBitIdenticalToSeed); above 64 it switches power
// integration to O(1) compensated aggregate sums, since per-segment
// iteration over running leaves would make the event loop O(workers)
// again.
//
// Virtual time makes the paper's 48-run experiment matrix deterministic
// and independent of the host executing the reproduction.
package sim

import (
	"container/heap"
	"fmt"
	"math"

	"capscale/internal/hw"
	"capscale/internal/obs"
	"capscale/internal/task"
)

// Config controls one simulated execution.
type Config struct {
	// Workers is the simulated thread count (OMP_NUM_THREADS in the
	// paper). It may be smaller than the machine's core count; it must
	// not exceed it.
	Workers int
	// VerifyNumerics runs each leaf's Run closure in dependency order so
	// tests can check that the scheduled tree computes correct results.
	VerifyNumerics bool
	// RecordTimeline retains the per-segment power trace in the result.
	// Energy totals are always computed; the trace costs memory on large
	// trees, so it is opt-in.
	RecordTimeline bool
	// DisableAffinity is an ablation switch: no remote traffic is
	// charged and steals are free. It removes the mechanism that
	// distinguishes CAPS from classic Strassen.
	DisableAffinity bool
	// DisableContention is an ablation switch: every leaf sees the
	// machine's uncontended bandwidth regardless of concurrency.
	DisableContention bool
	// RecordSchedule retains every leaf's placement (worker, interval,
	// kind) for Gantt rendering. Opt-in: large trees produce large
	// schedules.
	RecordSchedule bool
	// OnSegment, when non-nil, is invoked with each finished power
	// segment in time order as the event loop advances. It lets
	// measurement consumers stream the power trace without retaining
	// the whole timeline (RecordTimeline) and replaying it afterwards.
	// The callback runs on the simulating goroutine and must not block.
	OnSegment func(Segment)
	// ObsTrack, when tracing is enabled, is the span track the
	// simulation's "sim.run" span lands on (typically the driver
	// worker executing this cell). The zero Track targets "main".
	ObsTrack obs.Track
}

// Validate reports a descriptive error when the configuration cannot
// run on machine m: the worker count must be positive and must not
// exceed the machine's cores. Run panics with the same message; callers
// that take worker counts from user input (CLIs, sweep drivers) should
// call Validate at the boundary instead of relying on that panic.
func (cfg Config) Validate(m *hw.Machine) error {
	switch {
	case cfg.Workers <= 0:
		return fmt.Errorf("sim: worker count must be positive, got %d", cfg.Workers)
	case cfg.Workers > m.Cores:
		return fmt.Errorf("sim: %d workers exceed machine %q's %d cores",
			cfg.Workers, m.Name, m.Cores)
	}
	return nil
}

// LeafSpan is one scheduled leaf occurrence for Gantt rendering.
type LeafSpan struct {
	Worker     int
	Start, End float64
	Kind       task.Kind
	Label      string
}

// Segment is one interval of the execution timeline during which the
// set of running leaves — and therefore power — was constant.
type Segment struct {
	Start, End float64
	Power      hw.PlanePower
}

// Result summarizes a simulated execution.
type Result struct {
	// Makespan is the virtual wall time in seconds.
	Makespan float64
	// EnergyPKG, EnergyPP0 and EnergyDRAM are integrated joules per
	// RAPL plane (PKG includes PP0, as in real RAPL).
	EnergyPKG, EnergyPP0, EnergyDRAM float64
	// Leaves is the number of executed leaf tasks.
	Leaves int
	// RemoteBytes is total communication charged by affinity tracking.
	RemoteBytes float64
	// StolenLeaves counts leaves that executed away from their
	// preferred (producer) worker.
	StolenLeaves int
	// WorkerBusy is per-worker busy time in seconds.
	WorkerBusy []float64
	// BusyByKind decomposes total busy seconds by leaf kind — where
	// the cycles went (multiply kernels vs additions vs copies).
	BusyByKind map[task.Kind]float64
	// AllocHighWater is the peak of live temporary-buffer bytes
	// actually reached under this schedule.
	AllocHighWater float64
	// Timeline is the power trace; nil unless Config.RecordTimeline.
	Timeline []Segment
	// Schedule is the per-leaf placement record; nil unless
	// Config.RecordSchedule.
	Schedule []LeafSpan
}

// AvgPowerPKG returns average package watts over the makespan.
func (r *Result) AvgPowerPKG() float64 { return safeDiv(r.EnergyPKG, r.Makespan) }

// AvgPowerPP0 returns average core-plane watts over the makespan.
func (r *Result) AvgPowerPP0() float64 { return safeDiv(r.EnergyPP0, r.Makespan) }

// AvgPowerDRAM returns average DRAM-plane watts over the makespan.
func (r *Result) AvgPowerDRAM() float64 { return safeDiv(r.EnergyDRAM, r.Makespan) }

// AvgPowerTotal returns average full-system watts (PKG + DRAM).
func (r *Result) AvgPowerTotal() float64 {
	return safeDiv(r.EnergyPKG+r.EnergyDRAM, r.Makespan)
}

// EnergyTotal returns full-system joules (PKG + DRAM).
func (r *Result) EnergyTotal() float64 { return r.EnergyPKG + r.EnergyDRAM }

// Utilization returns mean worker busy fraction over the makespan.
func (r *Result) Utilization() float64 {
	if r.Makespan == 0 || len(r.WorkerBusy) == 0 {
		return 0
	}
	sum := 0.0
	for _, b := range r.WorkerBusy {
		sum += b
	}
	return sum / (r.Makespan * float64(len(r.WorkerBusy)))
}

func safeDiv(a, b float64) float64 {
	if b == 0 {
		return 0
	}
	return a / b
}

// nodeState is per-node runtime bookkeeping.
type nodeState struct {
	n         *task.Node
	parent    *nodeState
	pending   int       // outstanding children (Par) — Seq uses nextChild
	nextChild int       // next child index to start (Seq)
	failGen   int       // idle generation at last failed placement (ready leaves)
	mask      task.Mask // effective affinity inherited from ancestors
}

// runningLeaf is one dispatched leaf awaiting its virtual finish time.
type runningLeaf struct {
	state    *nodeState
	worker   int
	finish   float64
	seq      int // dispatch order, for deterministic tie-breaks
	activity hw.Activity
}

type leafHeap []*runningLeaf

func (h leafHeap) Len() int { return len(h) }
func (h leafHeap) Less(i, j int) bool {
	if h[i].finish != h[j].finish {
		return h[i].finish < h[j].finish
	}
	return h[i].seq < h[j].seq
}
func (h leafHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *leafHeap) Push(x any)   { *h = append(*h, x.(*runningLeaf)) }
func (h *leafHeap) Pop() any     { old := *h; n := len(old); x := old[n-1]; *h = old[:n-1]; return x }

// workerState shards the scheduler's per-worker bookkeeping into one
// cache-friendly record: accumulated busy time plus the FIFO of leaves
// pinned to exactly one worker (the common case under CAPS ownership),
// consumed from pinnedHead so pops are O(1) with lazy compaction.
type workerState struct {
	busyTotal  float64
	pinned     []*nodeState
	pinnedHead int
}

// ksum is a Neumaier-compensated float accumulator. The aggregate
// power mode adds and subtracts per-leaf terms on every launch and
// retire; naive running sums would drift after millions of events,
// compensation keeps the error at one rounding of the current value.
type ksum struct{ s, c float64 }

func (k *ksum) add(x float64) {
	t := k.s + x
	if math.Abs(k.s) >= math.Abs(x) {
		k.c += (k.s - t) + x
	} else {
		k.c += (x - t) + k.s
	}
	k.s = t
}

func (k *ksum) value() float64 { return k.s + k.c }

// executor holds the state of one simulation run.
type executor struct {
	m   *hw.Machine
	cfg Config

	// ready is a FIFO of dispatchable leaves whose affinity permits
	// more than one worker. Entries claimed out of order (affinity
	// skips) are nilled and compacted lazily; readyHead tracks the
	// first live entry and readyLive the live count.
	ready     []*nodeState
	readyHead int
	readyLive int

	workers []workerState
	// idle marks workers with no running leaf; dispatchable marks the
	// subset of idle workers whose pinned FIFO is non-empty, so the
	// pinned dispatch pass visits exactly the workers it will serve
	// instead of scanning all of them.
	idle         *hbitmap
	dispatchable *hbitmap
	idleCount    int
	// idleGen counts batches of workers turning idle (one bump per
	// advance). Between bumps the idle set only shrinks, so a ready
	// leaf whose placement failed at the current generation cannot
	// succeed until the next one — dispatch skips it in O(1) instead
	// of re-running the mask/idle intersection. newIdle records the
	// latest batch: a leaf that failed in generation g-1 can only be
	// unblocked in g by a worker from that batch, so a few Mask.Has
	// probes replace the full intersection for the common case of
	// long-blocked leaves. Starts at 2 so the zero-valued failGen of a
	// fresh nodeState never matches idleGen or idleGen-1.
	idleGen int
	newIdle []int

	running leafHeap
	now     float64
	seq     int

	// lastWriter maps RegionID → last-writing worker (-1 unknown).
	// Regions allocators issue dense IDs from 1, so a flat slice beats
	// a map on the scheduler hot path; it grows by doubling on demand.
	lastWriter []int32

	// Power integration mode. With ≤ 64 workers (exact=true) each
	// segment iterates the running heap in array order — bounded work,
	// and the float-sum order is bit-identical to the seed scheduler.
	// Above 64 workers the per-activity sums are maintained
	// incrementally (aggUtil/aggL3/aggDRAM, utilization pre-clamped),
	// making each segment O(1) regardless of how many leaves run.
	exact                   bool
	actsBuf                 []hw.Activity
	aggCount                int
	aggUtil, aggL3, aggDRAM ksum

	// Hot-loop scratch, reused across events so the steady-state
	// scheduling loop performs no allocation: leafFree recycles
	// runningLeaf records, and stateArena block-allocates nodeStates.
	leafFree   []*runningLeaf
	stateArena []nodeState

	liveAlloc float64
	segCount  int
	res       Result
}

// Simulation throughput metrics, batched into the registry once per
// Run so the event loop itself stays untouched.
var (
	simRuns     = obs.GetCounter("sim.runs")
	simLeaves   = obs.GetCounter("sim.leaves.executed")
	simSegments = obs.GetCounter("sim.segments.produced")
)

// newState carves a nodeState out of the arena, amortizing one
// allocation over a block of nodes.
func (e *executor) newState(n *task.Node, parent *nodeState, mask task.Mask) *nodeState {
	if len(e.stateArena) == 0 {
		e.stateArena = make([]nodeState, 512)
	}
	s := &e.stateArena[0]
	e.stateArena = e.stateArena[1:]
	s.n, s.parent, s.mask = n, parent, mask
	return s
}

// writerOf returns the last worker to write region r, or -1.
func (e *executor) writerOf(r task.RegionID) int {
	if int(r) < len(e.lastWriter) {
		return int(e.lastWriter[r])
	}
	return -1
}

func (e *executor) setWriter(r task.RegionID, worker int) {
	if int(r) >= len(e.lastWriter) {
		size := 2 * len(e.lastWriter)
		if size <= int(r) {
			size = int(r) + 1
		}
		grown := make([]int32, size)
		copy(grown, e.lastWriter)
		for i := len(e.lastWriter); i < size; i++ {
			grown[i] = -1
		}
		e.lastWriter = grown
	}
	e.lastWriter[r] = int32(worker)
}

// Run simulates root on machine m under cfg and returns the result.
// It panics on invalid configuration (see Config.Validate for the
// checkable form); algorithmic errors in tree construction (e.g.
// impossible affinity) degrade to unrestricted placement rather than
// deadlock.
func Run(m *hw.Machine, root *task.Node, cfg Config) *Result {
	if err := cfg.Validate(m); err != nil {
		panic(err.Error())
	}
	e := &executor{
		m:            m,
		cfg:          cfg,
		workers:      make([]workerState, cfg.Workers),
		idle:         newHbitmap(cfg.Workers),
		dispatchable: newHbitmap(cfg.Workers),
		lastWriter:   make([]int32, 1024),
		running:      make(leafHeap, 0, min(cfg.Workers, 4096)),
		exact:        cfg.Workers <= 64,
		idleGen:      2, // see the idleGen field comment
	}
	for i := range e.lastWriter {
		e.lastWriter[i] = -1
	}
	if e.exact {
		e.actsBuf = make([]hw.Activity, 0, cfg.Workers)
	}
	e.res.BusyByKind = make(map[task.Kind]float64)
	for i := 0; i < cfg.Workers; i++ {
		e.idle.set(i)
	}
	e.idleCount = cfg.Workers

	var sp obs.Span
	if obs.Enabled() {
		sp = obs.StartOn(cfg.ObsTrack, "sim.run")
		sp.ArgInt("workers", cfg.Workers)
	}

	e.startNode(e.newState(root, nil, e.allMask()))
	e.dispatch()
	for len(e.running) > 0 {
		e.advance()
		e.dispatch()
	}
	e.res.Makespan = e.now
	busy := make([]float64, cfg.Workers)
	for i := range e.workers {
		busy[i] = e.workers[i].busyTotal
	}
	e.res.WorkerBusy = busy

	simRuns.Inc()
	simLeaves.Add(int64(e.res.Leaves))
	simSegments.Add(int64(e.segCount))
	if sp.Live() {
		sp.ArgInt("leaves", e.res.Leaves)
		sp.ArgInt("segments", e.segCount)
		sp.ArgFloat("makespan_s", e.res.Makespan)
	}
	sp.End()
	return &e.res
}

// allMask is the root's inherited affinity: every configured worker.
func (e *executor) allMask() task.Mask {
	if e.cfg.Workers >= 64 {
		return task.MaskRange(0, e.cfg.Workers-1)
	}
	return task.MaskOfBits(uint64(1)<<uint(e.cfg.Workers) - 1)
}

// effectiveMask intersects a node's own affinity with the inherited
// mask, falling back to the inherited mask when the intersection is
// empty (e.g. a tree built for more workers than are configured).
// Intersect is called on the inherited mask so its containment fast
// path inspects the node's (small) affinity rather than the
// potentially huge inherited range.
func (e *executor) effectiveMask(n *task.Node, inherited task.Mask) task.Mask {
	a := n.Affinity()
	if e.cfg.DisableAffinity || a.IsEmpty() {
		return inherited
	}
	m := inherited.Intersect(a)
	if m.IsEmpty() {
		return inherited
	}
	return m
}

// startNode activates a node: leaves join the ready queue; interior
// nodes start their children per Seq/Par semantics. Empty interior
// nodes complete immediately.
func (e *executor) startNode(s *nodeState) {
	e.liveAlloc += s.n.AllocBytes()
	if e.liveAlloc > e.res.AllocHighWater {
		e.res.AllocHighWater = e.liveAlloc
	}
	switch {
	case s.n.IsLeaf():
		if w := s.mask.Single(); w >= 0 && w < e.cfg.Workers {
			ws := &e.workers[w]
			ws.pinned = append(ws.pinned, s)
			if e.idle.has(w) {
				e.dispatchable.set(w)
			}
		} else {
			e.ready = append(e.ready, s)
			e.readyLive++
		}
	case s.n.IsSeq():
		if len(s.n.Children()) == 0 {
			e.complete(s)
			return
		}
		e.startChild(s, 0)
	default: // Par
		children := s.n.Children()
		if len(children) == 0 {
			e.complete(s)
			return
		}
		s.pending = len(children)
		for i := range children {
			e.startChild(s, i)
		}
	}
}

func (e *executor) startChild(parent *nodeState, idx int) {
	child := parent.n.Children()[idx]
	cs := e.newState(child, parent, e.effectiveMask(child, parent.mask))
	if parent.n.IsSeq() {
		parent.nextChild = idx + 1
	}
	e.startNode(cs)
}

// complete propagates a finished node up the tree.
func (e *executor) complete(s *nodeState) {
	e.liveAlloc -= s.n.AllocBytes()
	p := s.parent
	if p == nil {
		return
	}
	if p.n.IsSeq() {
		if p.nextChild < len(p.n.Children()) {
			e.startChild(p, p.nextChild)
			return
		}
		e.complete(p)
		return
	}
	p.pending--
	if p.pending == 0 {
		e.complete(p)
	}
}

// preferredWorker returns the worker that produced the leaf's inputs,
// or -1 when unknown.
func (e *executor) preferredWorker(w *task.Work) int {
	for _, r := range w.Reads {
		if wr := e.writerOf(r); wr >= 0 {
			return wr
		}
	}
	return -1
}

// dispatch greedily assigns ready leaves to idle workers at e.now.
// Each idle worker with pinned work takes one leaf from its FIFO
// (visited via the dispatchable bitmap in ascending worker order, the
// same order the seed scheduler's full scan produced); remaining idle
// workers take from the shared FIFO in order, skipping leaves whose
// affinity mask has no idle worker without losing their position.
// Launching a leaf never idles a worker or readies another leaf, so
// one pass of each phase reaches the fixpoint.
func (e *executor) dispatch() {
	for w := e.dispatchable.firstFrom(0); w >= 0; w = e.dispatchable.firstFrom(w + 1) {
		ws := &e.workers[w]
		s := ws.pinned[ws.pinnedHead]
		ws.pinnedHead++
		if ws.pinnedHead > 64 && ws.pinnedHead > len(ws.pinned)/2 {
			n := copy(ws.pinned, ws.pinned[ws.pinnedHead:])
			ws.pinned = ws.pinned[:n]
			ws.pinnedHead = 0
		}
		e.launch(s, w)
	}
	// Shared-FIFO pass. Launching only shrinks the idle set and never
	// adds ready leaves, so a leaf that fails placement here stays
	// unplaceable for the rest of the pass — one forward sweep visits
	// each candidate at most once and produces the same launch sequence
	// the seed scheduler's rescan-from-head loop did. The failGen memo
	// extends the same monotonicity argument across dispatch calls
	// within one idle generation.
	if e.idleCount > 0 && e.readyLive > 0 {
		for qi := e.readyHead; qi < len(e.ready) && e.idleCount > 0; qi++ {
			s := e.ready[qi]
			if s == nil || s.failGen == e.idleGen {
				continue
			}
			if s.failGen == e.idleGen-1 && len(e.newIdle) <= 8 {
				// Failed against last generation's idle set; only this
				// batch's workers could have unblocked it since.
				hit := false
				for _, w := range e.newIdle {
					if s.mask.Has(w) {
						hit = true
						break
					}
				}
				if !hit {
					s.failGen = e.idleGen
					continue
				}
			}
			worker := e.pickWorker(s)
			if worker < 0 {
				s.failGen = e.idleGen
				continue
			}
			e.ready[qi] = nil
			e.readyLive--
			e.launch(s, worker)
		}
		e.compactReady()
	}
}

// compactReady advances past consumed slots and reclaims the queue's
// prefix once it dominates the backing array.
func (e *executor) compactReady() {
	for e.readyHead < len(e.ready) && e.ready[e.readyHead] == nil {
		e.readyHead++
	}
	if e.readyHead > 64 && e.readyHead > len(e.ready)/2 {
		n := copy(e.ready, e.ready[e.readyHead:])
		e.ready = e.ready[:n]
		e.readyHead = 0
	}
}

// pickWorker selects an idle worker permitted by the leaf's mask,
// preferring the producer of its inputs; -1 when none is available.
func (e *executor) pickWorker(s *nodeState) int {
	w := s.n.Work()
	if !e.cfg.DisableAffinity {
		if pref := e.preferredWorker(w); pref >= 0 && pref < e.cfg.Workers &&
			e.idle.has(pref) && s.mask.Has(pref) {
			return pref
		}
	}
	return e.firstIdleIn(s.mask)
}

// firstIdleIn returns the lowest-indexed idle worker in mask, or -1.
// It gallops through both structures — next idle worker from the
// bitmap, next permitted worker from the mask — so contiguous CAPS
// ownership ranges and singletons resolve in O(log workers) instead of
// a linear scan.
func (e *executor) firstIdleIn(mask task.Mask) int {
	w := mask.Min()
	for w >= 0 && w < e.cfg.Workers {
		i := e.idle.firstFrom(w)
		if i < 0 {
			return -1
		}
		if mask.Has(i) {
			return i
		}
		w = mask.Next(i + 1)
	}
	return -1
}

// launch starts a leaf on a worker at e.now.
func (e *executor) launch(s *nodeState, worker int) {
	w := s.n.Work()

	remoteBytes := 0.0
	stolen := false
	if !e.cfg.DisableAffinity {
		for _, r := range w.Reads {
			if wr := e.writerOf(r); wr >= 0 && wr != worker {
				remoteBytes += w.RegionBytes
			}
		}
		if pref := e.preferredWorker(w); pref >= 0 && pref != worker {
			stolen = true
		}
	}

	var cont hw.Contention
	if e.cfg.DisableContention {
		cont = e.m.Uncontended()
	} else {
		cont = e.m.Shared(len(e.running) + 1)
	}
	cost := e.m.CostLeaf(w, cont, remoteBytes, stolen)

	if e.cfg.VerifyNumerics && w.Run != nil {
		w.Run()
	}

	for _, wr := range w.Writes {
		e.setWriter(wr, worker)
	}

	e.idle.clear(worker)
	e.dispatchable.clear(worker)
	e.idleCount--
	e.workers[worker].busyTotal += cost.Duration
	e.res.BusyByKind[w.Kind] += cost.Duration
	e.res.Leaves++
	if e.cfg.RecordSchedule {
		e.res.Schedule = append(e.res.Schedule, LeafSpan{
			Worker: worker,
			Start:  e.now,
			End:    e.now + cost.Duration,
			Kind:   w.Kind,
			Label:  w.Label,
		})
	}
	e.res.RemoteBytes += remoteBytes
	if stolen {
		e.res.StolenLeaves++
	}

	e.seq++
	rl := e.getLeaf()
	rl.state = s
	rl.worker = worker
	rl.finish = e.now + cost.Duration
	rl.seq = e.seq
	rl.activity = hw.Activity{
		Utilization: cost.Utilization,
		DRAMRate:    cost.DRAMRate,
		L3Rate:      cost.L3Rate,
	}
	if !e.exact {
		e.aggCount++
		e.aggUtil.add(clamp01(cost.Utilization))
		e.aggL3.add(cost.L3Rate)
		e.aggDRAM.add(cost.DRAMRate)
	}
	heap.Push(&e.running, rl)
}

func clamp01(x float64) float64 { return math.Max(0, math.Min(1, x)) }

// getLeaf recycles runningLeaf records so the event loop stops
// allocating once the heap has reached its steady size.
func (e *executor) getLeaf() *runningLeaf {
	if n := len(e.leafFree); n > 0 {
		rl := e.leafFree[n-1]
		e.leafFree = e.leafFree[:n-1]
		return rl
	}
	return &runningLeaf{}
}

// advance integrates power up to the next completion time and retires
// every leaf finishing at that instant.
func (e *executor) advance() {
	next := e.running[0].finish
	if dt := next - e.now; dt > 0 {
		e.segCount++
		var p hw.PlanePower
		if e.exact {
			acts := e.actsBuf[:0]
			for _, rl := range e.running {
				acts = append(acts, rl.activity)
			}
			e.actsBuf = acts
			p = e.m.SegmentPower(acts)
		} else {
			p = e.m.AggregatePower(e.aggCount, e.aggUtil.value(), e.aggL3.value(), e.aggDRAM.value())
		}
		e.res.EnergyPKG += p.PKG * dt
		e.res.EnergyPP0 += p.PP0 * dt
		e.res.EnergyDRAM += p.DRAM * dt
		if e.cfg.RecordTimeline {
			e.res.Timeline = append(e.res.Timeline, Segment{Start: e.now, End: next, Power: p})
		}
		if e.cfg.OnSegment != nil {
			e.cfg.OnSegment(Segment{Start: e.now, End: next, Power: p})
		}
	}
	e.now = next
	e.idleGen++ // at least one worker turns idle below
	e.newIdle = e.newIdle[:0]
	for len(e.running) > 0 && sameTime(e.running[0].finish, e.now) {
		rl := heap.Pop(&e.running).(*runningLeaf)
		worker := rl.worker
		e.idle.set(worker)
		e.idleCount++
		e.newIdle = append(e.newIdle, worker)
		if ws := &e.workers[worker]; ws.pinnedHead < len(ws.pinned) {
			e.dispatchable.set(worker)
		}
		if !e.exact {
			e.aggCount--
			e.aggUtil.add(-clamp01(rl.activity.Utilization))
			e.aggL3.add(-rl.activity.L3Rate)
			e.aggDRAM.add(-rl.activity.DRAMRate)
		}
		s := rl.state
		rl.state = nil
		e.leafFree = append(e.leafFree, rl)
		e.complete(s)
	}
	// A fully drained machine resets the aggregate sums, discarding any
	// residual compensation error between algorithm phases.
	if !e.exact && e.aggCount == 0 {
		e.aggUtil, e.aggL3, e.aggDRAM = ksum{}, ksum{}, ksum{}
	}
}

// sameTime compares virtual timestamps with a relative epsilon so that
// float accumulation does not split a batch of simultaneous finishes.
func sameTime(a, b float64) bool {
	return math.Abs(a-b) <= 1e-12*math.Max(1, math.Abs(b))
}
