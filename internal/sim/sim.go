// Package sim is the deterministic virtual-time execution engine.
//
// It schedules a fork-join task tree (internal/task) onto P modeled
// cores of a machine (internal/hw) with greedy list scheduling,
// accounting for DRAM bandwidth contention, affinity-based communication
// (remote cache-to-cache traffic when a leaf reads data last written by
// a different worker) and per-task dispatch overhead. While scheduling
// it integrates the machine's power model over the timeline, producing
// per-plane energy totals and, optionally, the full power trace that the
// RAPL emulation replays.
//
// Virtual time makes the paper's 48-run experiment matrix deterministic
// and independent of the host executing the reproduction.
package sim

import (
	"container/heap"
	"fmt"
	"math"

	"capscale/internal/hw"
	"capscale/internal/obs"
	"capscale/internal/task"
)

// Config controls one simulated execution.
type Config struct {
	// Workers is the simulated thread count (OMP_NUM_THREADS in the
	// paper). It may be smaller than the machine's core count; it must
	// not exceed it.
	Workers int
	// VerifyNumerics runs each leaf's Run closure in dependency order so
	// tests can check that the scheduled tree computes correct results.
	VerifyNumerics bool
	// RecordTimeline retains the per-segment power trace in the result.
	// Energy totals are always computed; the trace costs memory on large
	// trees, so it is opt-in.
	RecordTimeline bool
	// DisableAffinity is an ablation switch: no remote traffic is
	// charged and steals are free. It removes the mechanism that
	// distinguishes CAPS from classic Strassen.
	DisableAffinity bool
	// DisableContention is an ablation switch: every leaf sees the
	// machine's uncontended bandwidth regardless of concurrency.
	DisableContention bool
	// RecordSchedule retains every leaf's placement (worker, interval,
	// kind) for Gantt rendering. Opt-in: large trees produce large
	// schedules.
	RecordSchedule bool
	// OnSegment, when non-nil, is invoked with each finished power
	// segment in time order as the event loop advances. It lets
	// measurement consumers stream the power trace without retaining
	// the whole timeline (RecordTimeline) and replaying it afterwards.
	// The callback runs on the simulating goroutine and must not block.
	OnSegment func(Segment)
	// ObsTrack, when tracing is enabled, is the span track the
	// simulation's "sim.run" span lands on (typically the driver
	// worker executing this cell). The zero Track targets "main".
	ObsTrack obs.Track
}

// LeafSpan is one scheduled leaf occurrence for Gantt rendering.
type LeafSpan struct {
	Worker     int
	Start, End float64
	Kind       task.Kind
	Label      string
}

// Segment is one interval of the execution timeline during which the
// set of running leaves — and therefore power — was constant.
type Segment struct {
	Start, End float64
	Power      hw.PlanePower
}

// Result summarizes a simulated execution.
type Result struct {
	// Makespan is the virtual wall time in seconds.
	Makespan float64
	// EnergyPKG, EnergyPP0 and EnergyDRAM are integrated joules per
	// RAPL plane (PKG includes PP0, as in real RAPL).
	EnergyPKG, EnergyPP0, EnergyDRAM float64
	// Leaves is the number of executed leaf tasks.
	Leaves int
	// RemoteBytes is total communication charged by affinity tracking.
	RemoteBytes float64
	// StolenLeaves counts leaves that executed away from their
	// preferred (producer) worker.
	StolenLeaves int
	// WorkerBusy is per-worker busy time in seconds.
	WorkerBusy []float64
	// BusyByKind decomposes total busy seconds by leaf kind — where
	// the cycles went (multiply kernels vs additions vs copies).
	BusyByKind map[task.Kind]float64
	// AllocHighWater is the peak of live temporary-buffer bytes
	// actually reached under this schedule.
	AllocHighWater float64
	// Timeline is the power trace; nil unless Config.RecordTimeline.
	Timeline []Segment
	// Schedule is the per-leaf placement record; nil unless
	// Config.RecordSchedule.
	Schedule []LeafSpan
}

// AvgPowerPKG returns average package watts over the makespan.
func (r *Result) AvgPowerPKG() float64 { return safeDiv(r.EnergyPKG, r.Makespan) }

// AvgPowerPP0 returns average core-plane watts over the makespan.
func (r *Result) AvgPowerPP0() float64 { return safeDiv(r.EnergyPP0, r.Makespan) }

// AvgPowerDRAM returns average DRAM-plane watts over the makespan.
func (r *Result) AvgPowerDRAM() float64 { return safeDiv(r.EnergyDRAM, r.Makespan) }

// AvgPowerTotal returns average full-system watts (PKG + DRAM).
func (r *Result) AvgPowerTotal() float64 {
	return safeDiv(r.EnergyPKG+r.EnergyDRAM, r.Makespan)
}

// EnergyTotal returns full-system joules (PKG + DRAM).
func (r *Result) EnergyTotal() float64 { return r.EnergyPKG + r.EnergyDRAM }

// Utilization returns mean worker busy fraction over the makespan.
func (r *Result) Utilization() float64 {
	if r.Makespan == 0 || len(r.WorkerBusy) == 0 {
		return 0
	}
	sum := 0.0
	for _, b := range r.WorkerBusy {
		sum += b
	}
	return sum / (r.Makespan * float64(len(r.WorkerBusy)))
}

func safeDiv(a, b float64) float64 {
	if b == 0 {
		return 0
	}
	return a / b
}

// nodeState is per-node runtime bookkeeping.
type nodeState struct {
	n         *task.Node
	parent    *nodeState
	pending   int    // outstanding children (Par) — Seq uses nextChild
	nextChild int    // next child index to start (Seq)
	mask      uint64 // effective affinity inherited from ancestors
}

// runningLeaf is one dispatched leaf awaiting its virtual finish time.
type runningLeaf struct {
	state    *nodeState
	worker   int
	finish   float64
	seq      int // dispatch order, for deterministic tie-breaks
	activity hw.Activity
}

type leafHeap []*runningLeaf

func (h leafHeap) Len() int { return len(h) }
func (h leafHeap) Less(i, j int) bool {
	if h[i].finish != h[j].finish {
		return h[i].finish < h[j].finish
	}
	return h[i].seq < h[j].seq
}
func (h leafHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *leafHeap) Push(x any)   { *h = append(*h, x.(*runningLeaf)) }
func (h *leafHeap) Pop() any     { old := *h; n := len(old); x := old[n-1]; *h = old[:n-1]; return x }

// executor holds the state of one simulation run.
type executor struct {
	m   *hw.Machine
	cfg Config

	// ready is a FIFO of dispatchable leaves whose affinity permits
	// more than one worker. Entries claimed out of order (affinity
	// skips) are nilled and compacted lazily; readyHead tracks the
	// first live entry and readyLive the live count.
	ready     []*nodeState
	readyHead int
	readyLive int
	// readyPinned holds per-worker FIFOs of leaves pinned to exactly
	// one worker (the common case under CAPS ownership), so dispatch
	// never scans past them while their worker is busy.
	readyPinned [][]*nodeState
	pinnedHead  []int

	running leafHeap
	now     float64
	seq     int

	workerBusyUntil []float64
	workerBusyTotal []float64
	workerIdle      []bool
	idleCount       int

	// lastWriter maps RegionID → last-writing worker (-1 unknown).
	// Regions allocators issue dense IDs from 1, so a flat slice beats
	// a map on the scheduler hot path; it grows by doubling on demand.
	lastWriter []int32

	// Hot-loop scratch, reused across events so the steady-state
	// scheduling loop performs no allocation: actsBuf for the power
	// integration in advance, leafFree recycles runningLeaf records,
	// and stateArena block-allocates nodeStates.
	actsBuf    []hw.Activity
	leafFree   []*runningLeaf
	stateArena []nodeState

	liveAlloc float64
	segCount  int
	res       Result
}

// Simulation throughput metrics, batched into the registry once per
// Run so the event loop itself stays untouched.
var (
	simRuns     = obs.GetCounter("sim.runs")
	simLeaves   = obs.GetCounter("sim.leaves.executed")
	simSegments = obs.GetCounter("sim.segments.produced")
)

// newState carves a nodeState out of the arena, amortizing one
// allocation over a block of nodes.
func (e *executor) newState(n *task.Node, parent *nodeState, mask uint64) *nodeState {
	if len(e.stateArena) == 0 {
		e.stateArena = make([]nodeState, 512)
	}
	s := &e.stateArena[0]
	e.stateArena = e.stateArena[1:]
	s.n, s.parent, s.mask = n, parent, mask
	return s
}

// writerOf returns the last worker to write region r, or -1.
func (e *executor) writerOf(r task.RegionID) int {
	if int(r) < len(e.lastWriter) {
		return int(e.lastWriter[r])
	}
	return -1
}

func (e *executor) setWriter(r task.RegionID, worker int) {
	if int(r) >= len(e.lastWriter) {
		size := 2 * len(e.lastWriter)
		if size <= int(r) {
			size = int(r) + 1
		}
		grown := make([]int32, size)
		copy(grown, e.lastWriter)
		for i := len(e.lastWriter); i < size; i++ {
			grown[i] = -1
		}
		e.lastWriter = grown
	}
	e.lastWriter[r] = int32(worker)
}

// Run simulates root on machine m under cfg and returns the result.
// It panics on invalid configuration; algorithmic errors in tree
// construction (e.g. impossible affinity) degrade to unrestricted
// placement rather than deadlock.
func Run(m *hw.Machine, root *task.Node, cfg Config) *Result {
	if cfg.Workers <= 0 {
		panic(fmt.Sprintf("sim: non-positive worker count %d", cfg.Workers))
	}
	if cfg.Workers > m.Cores {
		panic(fmt.Sprintf("sim: %d workers exceed machine's %d cores", cfg.Workers, m.Cores))
	}
	e := &executor{
		m:               m,
		cfg:             cfg,
		workerBusyUntil: make([]float64, cfg.Workers),
		workerBusyTotal: make([]float64, cfg.Workers),
		workerIdle:      make([]bool, cfg.Workers),
		readyPinned:     make([][]*nodeState, cfg.Workers),
		pinnedHead:      make([]int, cfg.Workers),
		lastWriter:      make([]int32, 1024),
		running:         make(leafHeap, 0, cfg.Workers),
		actsBuf:         make([]hw.Activity, 0, cfg.Workers),
	}
	for i := range e.lastWriter {
		e.lastWriter[i] = -1
	}
	e.res.BusyByKind = make(map[task.Kind]float64)
	for i := range e.workerIdle {
		e.workerIdle[i] = true
	}
	e.idleCount = cfg.Workers

	var sp obs.Span
	if obs.Enabled() {
		sp = obs.StartOn(cfg.ObsTrack, "sim.run")
		sp.ArgInt("workers", cfg.Workers)
	}

	e.startNode(e.newState(root, nil, e.allMask()))
	e.dispatch()
	for len(e.running) > 0 {
		e.advance()
		e.dispatch()
	}
	e.res.Makespan = e.now
	e.res.WorkerBusy = e.workerBusyTotal

	simRuns.Inc()
	simLeaves.Add(int64(e.res.Leaves))
	simSegments.Add(int64(e.segCount))
	if sp.Live() {
		sp.ArgInt("leaves", e.res.Leaves)
		sp.ArgInt("segments", e.segCount)
		sp.ArgFloat("makespan_s", e.res.Makespan)
	}
	sp.End()
	return &e.res
}

func (e *executor) allMask() uint64 {
	if e.cfg.Workers >= 64 {
		return ^uint64(0)
	}
	return (uint64(1) << uint(e.cfg.Workers)) - 1
}

// effectiveMask intersects a node's own affinity with the inherited
// mask, falling back to the inherited mask when the intersection is
// empty (e.g. a tree built for more workers than are configured).
func (e *executor) effectiveMask(n *task.Node, inherited uint64) uint64 {
	if e.cfg.DisableAffinity || n.Affinity() == 0 {
		return inherited
	}
	m := n.Affinity() & inherited
	if m == 0 {
		return inherited
	}
	return m
}

// startNode activates a node: leaves join the ready queue; interior
// nodes start their children per Seq/Par semantics. Empty interior
// nodes complete immediately.
func (e *executor) startNode(s *nodeState) {
	e.liveAlloc += s.n.AllocBytes()
	if e.liveAlloc > e.res.AllocHighWater {
		e.res.AllocHighWater = e.liveAlloc
	}
	switch {
	case s.n.IsLeaf():
		if w := singleWorker(s.mask); w >= 0 && w < e.cfg.Workers {
			e.readyPinned[w] = append(e.readyPinned[w], s)
		} else {
			e.ready = append(e.ready, s)
			e.readyLive++
		}
	case s.n.IsSeq():
		if len(s.n.Children()) == 0 {
			e.complete(s)
			return
		}
		e.startChild(s, 0)
	default: // Par
		children := s.n.Children()
		if len(children) == 0 {
			e.complete(s)
			return
		}
		s.pending = len(children)
		for i := range children {
			e.startChild(s, i)
		}
	}
}

func (e *executor) startChild(parent *nodeState, idx int) {
	child := parent.n.Children()[idx]
	cs := e.newState(child, parent, e.effectiveMask(child, parent.mask))
	if parent.n.IsSeq() {
		parent.nextChild = idx + 1
	}
	e.startNode(cs)
}

// complete propagates a finished node up the tree.
func (e *executor) complete(s *nodeState) {
	e.liveAlloc -= s.n.AllocBytes()
	p := s.parent
	if p == nil {
		return
	}
	if p.n.IsSeq() {
		if p.nextChild < len(p.n.Children()) {
			e.startChild(p, p.nextChild)
			return
		}
		e.complete(p)
		return
	}
	p.pending--
	if p.pending == 0 {
		e.complete(p)
	}
}

// preferredWorker returns the worker that produced the leaf's inputs,
// or -1 when unknown.
func (e *executor) preferredWorker(w *task.Work) int {
	for _, r := range w.Reads {
		if wr := e.writerOf(r); wr >= 0 {
			return wr
		}
	}
	return -1
}

// singleWorker returns the worker index when mask names exactly one
// worker, else -1.
func singleWorker(mask uint64) int {
	if mask != 0 && mask&(mask-1) == 0 {
		w := 0
		for mask>>uint(w)&1 == 0 {
			w++
		}
		return w
	}
	return -1
}

// dispatch greedily assigns ready leaves to idle workers at e.now.
// Each idle worker drains its pinned FIFO first; remaining idle
// workers take from the shared FIFO in order, skipping leaves whose
// affinity mask has no idle worker without losing their position.
func (e *executor) dispatch() {
	for e.idleCount > 0 {
		dispatched := false
		for w := 0; w < e.cfg.Workers && e.idleCount > 0; w++ {
			if !e.workerIdle[w] {
				continue
			}
			q := e.readyPinned[w]
			if e.pinnedHead[w] < len(q) {
				s := q[e.pinnedHead[w]]
				e.pinnedHead[w]++
				if e.pinnedHead[w] > 64 && e.pinnedHead[w] > len(q)/2 {
					n := copy(q, q[e.pinnedHead[w]:])
					e.readyPinned[w] = q[:n]
					e.pinnedHead[w] = 0
				}
				e.launch(s, w)
				dispatched = true
			}
		}
		for e.idleCount > 0 && e.readyLive > 0 {
			found := false
			for qi := e.readyHead; qi < len(e.ready); qi++ {
				s := e.ready[qi]
				if s == nil {
					continue
				}
				worker := e.pickWorker(s)
				if worker < 0 {
					continue
				}
				e.ready[qi] = nil
				e.readyLive--
				e.launch(s, worker)
				found = true
				dispatched = true
				break
			}
			if !found {
				break
			}
			e.compactReady()
		}
		if !dispatched {
			return
		}
	}
}

// compactReady advances past consumed slots and reclaims the queue's
// prefix once it dominates the backing array.
func (e *executor) compactReady() {
	for e.readyHead < len(e.ready) && e.ready[e.readyHead] == nil {
		e.readyHead++
	}
	if e.readyHead > 64 && e.readyHead > len(e.ready)/2 {
		n := copy(e.ready, e.ready[e.readyHead:])
		e.ready = e.ready[:n]
		e.readyHead = 0
	}
}

// pickWorker selects an idle worker permitted by the leaf's mask,
// preferring the producer of its inputs; -1 when none is available.
func (e *executor) pickWorker(s *nodeState) int {
	w := s.n.Work()
	pref := -1
	if !e.cfg.DisableAffinity {
		pref = e.preferredWorker(w)
	}
	if pref >= 0 && pref < e.cfg.Workers && e.workerIdle[pref] && s.mask&(1<<uint(pref)) != 0 {
		return pref
	}
	for i := 0; i < e.cfg.Workers; i++ {
		if e.workerIdle[i] && s.mask&(1<<uint(i)) != 0 {
			return i
		}
	}
	return -1
}

// launch starts a leaf on a worker at e.now.
func (e *executor) launch(s *nodeState, worker int) {
	w := s.n.Work()

	remoteBytes := 0.0
	stolen := false
	if !e.cfg.DisableAffinity {
		for _, r := range w.Reads {
			if wr := e.writerOf(r); wr >= 0 && wr != worker {
				remoteBytes += w.RegionBytes
			}
		}
		if pref := e.preferredWorker(w); pref >= 0 && pref != worker {
			stolen = true
		}
	}

	var cont hw.Contention
	if e.cfg.DisableContention {
		cont = e.m.Uncontended()
	} else {
		cont = e.m.Shared(len(e.running) + 1)
	}
	cost := e.m.CostLeaf(w, cont, remoteBytes, stolen)

	if e.cfg.VerifyNumerics && w.Run != nil {
		w.Run()
	}

	for _, wr := range w.Writes {
		e.setWriter(wr, worker)
	}

	e.workerIdle[worker] = false
	e.idleCount--
	e.workerBusyUntil[worker] = e.now + cost.Duration
	e.workerBusyTotal[worker] += cost.Duration
	e.res.BusyByKind[w.Kind] += cost.Duration
	e.res.Leaves++
	if e.cfg.RecordSchedule {
		e.res.Schedule = append(e.res.Schedule, LeafSpan{
			Worker: worker,
			Start:  e.now,
			End:    e.now + cost.Duration,
			Kind:   w.Kind,
			Label:  w.Label,
		})
	}
	e.res.RemoteBytes += remoteBytes
	if stolen {
		e.res.StolenLeaves++
	}

	e.seq++
	rl := e.getLeaf()
	rl.state = s
	rl.worker = worker
	rl.finish = e.now + cost.Duration
	rl.seq = e.seq
	rl.activity = hw.Activity{
		Utilization: cost.Utilization,
		DRAMRate:    cost.DRAMRate,
		L3Rate:      cost.L3Rate,
	}
	heap.Push(&e.running, rl)
}

// getLeaf recycles runningLeaf records so the event loop stops
// allocating once the heap has reached its steady size.
func (e *executor) getLeaf() *runningLeaf {
	if n := len(e.leafFree); n > 0 {
		rl := e.leafFree[n-1]
		e.leafFree = e.leafFree[:n-1]
		return rl
	}
	return &runningLeaf{}
}

// advance integrates power up to the next completion time and retires
// every leaf finishing at that instant.
func (e *executor) advance() {
	next := e.running[0].finish
	if dt := next - e.now; dt > 0 {
		e.segCount++
		acts := e.actsBuf[:0]
		for _, rl := range e.running {
			acts = append(acts, rl.activity)
		}
		e.actsBuf = acts
		p := e.m.SegmentPower(acts)
		e.res.EnergyPKG += p.PKG * dt
		e.res.EnergyPP0 += p.PP0 * dt
		e.res.EnergyDRAM += p.DRAM * dt
		if e.cfg.RecordTimeline {
			e.res.Timeline = append(e.res.Timeline, Segment{Start: e.now, End: next, Power: p})
		}
		if e.cfg.OnSegment != nil {
			e.cfg.OnSegment(Segment{Start: e.now, End: next, Power: p})
		}
	}
	e.now = next
	for len(e.running) > 0 && sameTime(e.running[0].finish, e.now) {
		rl := heap.Pop(&e.running).(*runningLeaf)
		e.workerIdle[rl.worker] = true
		e.idleCount++
		s := rl.state
		rl.state = nil
		e.leafFree = append(e.leafFree, rl)
		e.complete(s)
	}
}

// sameTime compares virtual timestamps with a relative epsilon so that
// float accumulation does not split a batch of simultaneous finishes.
func sameTime(a, b float64) bool {
	return math.Abs(a-b) <= 1e-12*math.Max(1, math.Abs(b))
}
