package sim_test

import (
	"fmt"
	"testing"

	"capscale/internal/hw"
	"capscale/internal/sim"
	"capscale/internal/task"
)

// benchTree builds one pinned 4-leaf Seq chain per worker under a Par
// root — every worker gets scheduled, every chain exercises the pinned
// deque path, and region producer/consumer edges add remote traffic.
func benchTree(workers int) *task.Node {
	var regions task.Regions
	chains := make([]*task.Node, workers)
	for w := 0; w < workers; w++ {
		r := regions.New()
		chains[w] = task.Seq(
			task.Leaf(task.Work{Kind: task.KindGEMM, Flops: float64(1+w%7) * 1e7,
				Writes: []task.RegionID{r}, RegionBytes: 1e4}),
			task.Leaf(task.Work{Kind: task.KindAdd, DRAMBytes: 1e5,
				Reads: []task.RegionID{r}, RegionBytes: 1e4}),
			task.Leaf(task.Work{Kind: task.KindGEMM, Flops: float64(1+w%3) * 1e7}),
			task.Leaf(task.Work{Kind: task.KindCopy, DRAMBytes: 1e5}),
		).WithAffinityMask(task.SingleWorker(w))
	}
	return task.Par(chains...)
}

// BenchmarkSimRun sweeps worker counts across four orders of magnitude.
// ns/leaf should stay near-flat (per-event dispatch is O(log n)); the
// seed list scheduler was O(n) per event and capped at 64.
func BenchmarkSimRun(b *testing.B) {
	node := hw.HaswellE31225()
	for _, workers := range []int{4, 64, 1024, 16384, 262144} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			m := hw.Cluster(node, (workers+node.Cores-1)/node.Cores)
			root := benchTree(workers)
			cfg := sim.Config{Workers: workers}
			leaves := 4 * workers
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				res := sim.Run(m, root, cfg)
				if res.Leaves != leaves {
					b.Fatalf("leaves %d, want %d", res.Leaves, leaves)
				}
			}
			b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N*leaves), "ns/leaf")
		})
	}
}
