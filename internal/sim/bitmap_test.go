package sim

import (
	"math/rand"
	"testing"
)

func TestHbitmapLevels(t *testing.T) {
	cases := []struct{ n, levels int }{
		{1, 1}, {64, 1}, {65, 2}, {4096, 2}, {4097, 3}, {1 << 18, 3}, {1 << 20, 4},
	}
	for _, c := range cases {
		b := newHbitmap(c.n)
		if len(b.levels) != c.levels {
			t.Fatalf("n=%d: %d levels, want %d", c.n, len(b.levels), c.levels)
		}
		if len(b.levels[len(b.levels)-1]) != 1 {
			t.Fatalf("n=%d: top level has %d words", c.n, len(b.levels[len(b.levels)-1]))
		}
	}
}

func TestHbitmapSetClearFirst(t *testing.T) {
	b := newHbitmap(1 << 20)
	if got := b.firstFrom(0); got != -1 {
		t.Fatalf("empty firstFrom = %d", got)
	}
	for _, i := range []int{0, 63, 64, 4095, 4096, 1<<20 - 1} {
		b.set(i)
		if !b.has(i) {
			t.Fatalf("bit %d not set", i)
		}
	}
	if got := b.firstFrom(0); got != 0 {
		t.Fatalf("firstFrom(0) = %d", got)
	}
	if got := b.firstFrom(1); got != 63 {
		t.Fatalf("firstFrom(1) = %d", got)
	}
	if got := b.firstFrom(65); got != 4095 {
		t.Fatalf("firstFrom(65) = %d", got)
	}
	if got := b.firstFrom(4097); got != 1<<20-1 {
		t.Fatalf("firstFrom(4097) = %d", got)
	}
	b.clear(1 << 20 / 2) // clearing an unset bit is a no-op
	b.clear(4095)
	if got := b.firstFrom(65); got != 4096 {
		t.Fatalf("after clear, firstFrom(65) = %d", got)
	}
	b.clear(1<<20 - 1)
	if got := b.firstFrom(4097); got != -1 {
		t.Fatalf("after clearing tail, firstFrom(4097) = %d", got)
	}
}

func TestHbitmapSetIdempotent(t *testing.T) {
	b := newHbitmap(200)
	b.set(100)
	b.set(100)
	b.clear(100)
	if b.has(100) || b.firstFrom(0) != -1 {
		t.Fatal("double set broke summary maintenance")
	}
}

// Property: against a boolean-slice oracle under a random op mix, for
// universes spanning one to four levels.
func TestHbitmapMatchesOracle(t *testing.T) {
	for _, n := range []int{1, 17, 64, 65, 1000, 4096, 5000, 1 << 18} {
		rng := rand.New(rand.NewSource(int64(n)))
		b := newHbitmap(n)
		ref := make([]bool, n)
		refFirst := func(from int) int {
			for i := from; i < n; i++ {
				if ref[i] {
					return i
				}
			}
			return -1
		}
		for op := 0; op < 3000; op++ {
			i := rng.Intn(n)
			switch rng.Intn(3) {
			case 0:
				b.set(i)
				ref[i] = true
			case 1:
				b.clear(i)
				ref[i] = false
			default:
				if got, want := b.firstFrom(i), refFirst(i); got != want {
					t.Fatalf("n=%d op=%d: firstFrom(%d) = %d, want %d", n, op, i, got, want)
				}
			}
			if b.has(i) != ref[i] {
				t.Fatalf("n=%d op=%d: has(%d) = %v", n, op, i, b.has(i))
			}
		}
		if got, want := b.firstFrom(0), refFirst(0); got != want {
			t.Fatalf("n=%d final: firstFrom(0) = %d, want %d", n, got, want)
		}
	}
}
