package sim

import "math/bits"

// hbitmap is a hierarchical bitmap over a fixed universe [0, n): each
// level-k+1 bit summarizes whether the corresponding level-k word is
// nonzero, and the top level is always a single word. set, clear, has
// and firstFrom are all O(log₆₄ n) — at most 4 levels for n = 10⁶ —
// which is what keeps the scheduler's idle-worker lookups off the
// O(workers) scans the seed list scheduler performed.
type hbitmap struct {
	levels [][]uint64
}

// newHbitmap returns an empty bitmap over [0, n), n ≥ 1.
func newHbitmap(n int) *hbitmap {
	b := &hbitmap{}
	for {
		words := (n + 63) >> 6
		b.levels = append(b.levels, make([]uint64, words))
		if words == 1 {
			return b
		}
		n = words
	}
}

// has reports whether bit i is set.
func (b *hbitmap) has(i int) bool {
	return b.levels[0][i>>6]>>uint(i&63)&1 == 1
}

// set sets bit i, updating summaries. Idempotent.
func (b *hbitmap) set(i int) {
	for lv := 0; lv < len(b.levels); lv++ {
		wi := i >> 6
		old := b.levels[lv][wi]
		b.levels[lv][wi] = old | 1<<uint(i&63)
		if old != 0 {
			return // summary bit above is already set
		}
		i = wi
	}
}

// clear clears bit i, updating summaries. Idempotent.
func (b *hbitmap) clear(i int) {
	for lv := 0; lv < len(b.levels); lv++ {
		wi := i >> 6
		b.levels[lv][wi] &^= 1 << uint(i&63)
		if b.levels[lv][wi] != 0 {
			return // word still nonzero; summary bit stays
		}
		i = wi
	}
}

// firstFrom returns the smallest set bit ≥ i, or -1 when none exists.
func (b *hbitmap) firstFrom(i int) int {
	if i < 0 {
		i = 0
	}
	// Ascend until some level has a set bit at or after the current
	// position. Positions translate up a level by becoming word indices.
	lv, pos := 0, i
	for {
		if lv == len(b.levels) {
			return -1
		}
		wi := pos >> 6
		if wi >= len(b.levels[lv]) {
			return -1
		}
		if w := b.levels[lv][wi] >> uint(pos&63); w != 0 {
			pos += bits.TrailingZeros64(w)
			break
		}
		pos = wi + 1
		lv++
	}
	// Descend: a set summary bit at position p means word p below is
	// nonzero; expand to its lowest set bit until level 0.
	for lv > 0 {
		lv--
		pos = pos<<6 + bits.TrailingZeros64(b.levels[lv][pos])
	}
	return pos
}
