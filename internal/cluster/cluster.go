// Package cluster models a distributed-memory platform: a set of
// compute nodes (each an internal/hw machine) joined by an
// interconnect with LogP-style latency/bandwidth and its own power
// draw. It is the substrate for the paper's Section VIII future work —
// "migrate the current implementation to a distributed memory
// implementation using MPI [and] take into account the power
// associated with transmitting memory blocks across the interconnect".
package cluster

import (
	"fmt"

	"capscale/internal/hw"
)

// Interconnect is the effective network fabric the MPI layer charges
// against. It is compiled from a Comms model (see comms.go) — use
// Comms.Fabric() or the presets below rather than filling it by hand.
type Interconnect struct {
	Name string
	// LatencySec is the end-to-end small-message latency (α).
	LatencySec float64
	// Bandwidth is the per-link achievable bandwidth in B/s (1/β).
	Bandwidth float64
	// PerMessageOverheadSec is the sender/receiver CPU overhead (o).
	PerMessageOverheadSec float64
	// Allreduce selects the collective family used by mpi.Allreduce.
	Allreduce AllreduceAlgo

	// NICIdleWatts and NICPerGBs model each node's adapter power;
	// SwitchIdleWatts is the shared fabric's standing draw.
	NICIdleWatts    float64
	NICPerGBs       float64
	SwitchIdleWatts float64
}

// Validate reports descriptive errors for inconsistent fabrics.
func (ic Interconnect) Validate() error {
	switch {
	case ic.LatencySec < 0 || ic.PerMessageOverheadSec < 0:
		return fmt.Errorf("cluster: negative latency/overhead")
	case ic.Bandwidth <= 0:
		return fmt.Errorf("cluster: non-positive bandwidth")
	case ic.NICIdleWatts < 0 || ic.NICPerGBs < 0 || ic.SwitchIdleWatts < 0:
		return fmt.Errorf("cluster: negative power coefficient")
	}
	return nil
}

// TransferTime returns the wire time of a message of the given size:
// α + size/B. CPU overhead is charged separately to sender and
// receiver by the MPI layer.
func (ic Interconnect) TransferTime(bytes float64) float64 {
	if bytes < 0 {
		panic(fmt.Sprintf("cluster: negative message size %v", bytes))
	}
	return ic.LatencySec + bytes/ic.Bandwidth
}

// Cluster is a homogeneous distributed-memory machine.
type Cluster struct {
	Node   *hw.Machine
	Nodes  int
	Fabric Interconnect
}

// New returns a validated cluster of n identical nodes.
func New(node *hw.Machine, n int, fabric Interconnect) (*Cluster, error) {
	if n <= 0 {
		return nil, fmt.Errorf("cluster: node count %d", n)
	}
	if err := node.Validate(); err != nil {
		return nil, err
	}
	if err := fabric.Validate(); err != nil {
		return nil, err
	}
	return &Cluster{Node: node, Nodes: n, Fabric: fabric}, nil
}

// GigE returns the commodity gigabit-Ethernet fabric compiled from
// GigEComms — the kind the paper's Lenovo node would have joined.
func GigE() Interconnect {
	f, err := GigEComms().Fabric()
	if err != nil {
		panic("cluster: built-in GigE comms invalid: " + err.Error())
	}
	return f
}

// InfiniBandFDR returns an HPC-class fabric for contrast experiments,
// compiled from FDRComms.
func InfiniBandFDR() Interconnect {
	f, err := FDRComms().Fabric()
	if err != nil {
		panic("cluster: built-in FDR comms invalid: " + err.Error())
	}
	return f
}

// TS140Cluster returns n of the paper's Haswell nodes on gigabit
// Ethernet — the natural first distributed extension of its testbed.
func TS140Cluster(n int) *Cluster {
	c, err := New(hw.HaswellE31225(), n, GigE())
	if err != nil {
		panic("cluster: built-in cluster invalid: " + err.Error())
	}
	return c
}

// IdlePower returns the whole cluster's quiescent draw in watts:
// every node's package/DRAM idle, every NIC, and the switch.
func (c *Cluster) IdlePower() float64 { return c.IdlePowerFor(c.Nodes) }

// IdlePowerFor returns the quiescent draw of a job using `nodes` of
// the cluster's nodes (their packages and NICs, plus the shared
// switch) — the baseline a per-job energy account charges.
func (c *Cluster) IdlePowerFor(nodes int) float64 {
	if nodes < 0 || nodes > c.Nodes {
		panic(fmt.Sprintf("cluster: %d nodes of %d", nodes, c.Nodes))
	}
	nodeIdle := c.Node.IdlePower().Total()
	return float64(nodes)*(nodeIdle+c.Fabric.NICIdleWatts) + c.Fabric.SwitchIdleWatts
}
