package cluster

import (
	"math"
	"strings"
	"testing"
)

func TestCommsFabricCompilation(t *testing.T) {
	cc := Comms{
		Name:                  "toy",
		LinkLatencySec:        10e-6,
		LinkBandwidth:         1e9,
		LinkEfficiency:        0.5,
		PerMessageOverheadSec: 1e-6,
		SwitchLatencySec:      5e-6,
		SwitchTiers:           2,
		NICIdleWatts:          1,
		NICPerGBs:             2,
		SwitchIdleWattsTier:   4,
	}
	f, err := cc.Fabric()
	if err != nil {
		t.Fatal(err)
	}
	// 3 link hops + 2 switch traversals.
	if want := 3*10e-6 + 2*5e-6; math.Abs(f.LatencySec-want) > 1e-15 {
		t.Fatalf("α %v want %v", f.LatencySec, want)
	}
	if want := 0.5e9; f.Bandwidth != want {
		t.Fatalf("bandwidth %v want %v", f.Bandwidth, want)
	}
	if want := 8.0; f.SwitchIdleWatts != want {
		t.Fatalf("switch idle %v want %v", f.SwitchIdleWatts, want)
	}
}

func TestCommsDefaults(t *testing.T) {
	// Zero efficiency and zero tiers mean "unset": full rate, one tier.
	cc := Comms{Name: "min", LinkBandwidth: 1e8}
	f, err := cc.Fabric()
	if err != nil {
		t.Fatal(err)
	}
	if f.Bandwidth != 1e8 {
		t.Fatalf("default efficiency scaled bandwidth to %v", f.Bandwidth)
	}
	if f.LatencySec != 2*cc.LinkLatencySec+cc.SwitchLatencySec {
		t.Fatalf("default tiers gave α %v", f.LatencySec)
	}
}

func TestCommsValidate(t *testing.T) {
	bad := []Comms{
		{Name: "nobw"},
		{Name: "negα", LinkBandwidth: 1, LinkLatencySec: -1},
		{Name: "eff", LinkBandwidth: 1, LinkEfficiency: 1.5},
		{Name: "tiers", LinkBandwidth: 1, SwitchTiers: -1},
		{Name: "coll", LinkBandwidth: 1, Allreduce: AllreduceAlgo(9)},
		{Name: "pow", LinkBandwidth: 1, NICPerGBs: -1},
	}
	for _, cc := range bad {
		if _, err := cc.Fabric(); err == nil {
			t.Errorf("comms %q accepted", cc.Name)
		}
	}
}

func TestPresetsCompileFromComms(t *testing.T) {
	g := GigE()
	if math.Abs(g.LatencySec-50e-6) > 1e-12 {
		t.Fatalf("GigE α %v want 50µs", g.LatencySec)
	}
	if math.Abs(g.Bandwidth-118e6) > 1e6 {
		t.Fatalf("GigE bandwidth %v want ~118 MB/s", g.Bandwidth)
	}
	if g.Allreduce != AllreduceBinomial {
		t.Fatal("GigE should use binomial collectives")
	}
	f := InfiniBandFDR()
	if f.Allreduce != AllreduceRing {
		t.Fatal("FDR should use ring collectives")
	}
	if f.SwitchIdleWatts != 30 {
		t.Fatalf("FDR switch idle %v want 30 (2 tiers × 15)", f.SwitchIdleWatts)
	}
}

func TestCommsByName(t *testing.T) {
	for _, alias := range []string{"1GbE", "gige", "ETHERNET"} {
		cc, err := CommsByName(alias)
		if err != nil || cc.Name != "1GbE" {
			t.Errorf("alias %q: %v %v", alias, cc.Name, err)
		}
	}
	for _, alias := range []string{"FDR", "ib", "infiniband"} {
		cc, err := CommsByName(alias)
		if err != nil || cc.Name != "FDR" {
			t.Errorf("alias %q: %v %v", alias, cc.Name, err)
		}
	}
	if _, err := CommsByName("token-ring"); err == nil {
		t.Fatal("unknown fabric accepted")
	}
}

func TestParseSpec(t *testing.T) {
	s, err := ParseSpec("16x1GbE")
	if err != nil {
		t.Fatal(err)
	}
	if s.Nodes != 16 || s.Comms.Name != "1GbE" || s.MemPerNode != DefaultMemPerNode {
		t.Fatalf("parsed %+v", s)
	}
	s, err = ParseSpec("49xFDR@16GiB")
	if err != nil {
		t.Fatal(err)
	}
	if s.Nodes != 49 || s.Comms.Name != "FDR" || s.MemPerNode != 16*(1<<30) {
		t.Fatalf("parsed %+v", s)
	}
	if got := s.String(); got != "49xFDR@16GiB" {
		t.Fatalf("round trip %q", got)
	}
	for _, bad := range []string{"", "x1GbE", "0x1GbE", "-4x1GbE", "4xWiFi", "4x1GbE@zeroGiB", "4x1GbE@-2GiB"} {
		if _, err := ParseSpec(bad); err == nil {
			t.Errorf("spec %q accepted", bad)
		} else if !strings.Contains(err.Error(), "cluster:") {
			t.Errorf("spec %q: undiagnostic error %v", bad, err)
		}
	}
}
