package cluster

import (
	"math"
	"testing"

	"capscale/internal/hw"
)

func TestFabricsValid(t *testing.T) {
	for _, f := range []Interconnect{GigE(), InfiniBandFDR()} {
		if err := f.Validate(); err != nil {
			t.Errorf("%s: %v", f.Name, err)
		}
	}
}

func TestValidateRejects(t *testing.T) {
	bad := GigE()
	bad.Bandwidth = 0
	if bad.Validate() == nil {
		t.Fatal("zero bandwidth accepted")
	}
	bad = GigE()
	bad.LatencySec = -1
	if bad.Validate() == nil {
		t.Fatal("negative latency accepted")
	}
	bad = GigE()
	bad.NICPerGBs = -1
	if bad.Validate() == nil {
		t.Fatal("negative NIC power accepted")
	}
}

func TestTransferTime(t *testing.T) {
	f := GigE()
	small := f.TransferTime(0)
	if small != f.LatencySec {
		t.Fatalf("zero-byte transfer %v want latency %v", small, f.LatencySec)
	}
	big := f.TransferTime(118e6) // one second of wire time
	if math.Abs(big-(f.LatencySec+1)) > 1e-9 {
		t.Fatalf("1s transfer %v", big)
	}
}

func TestTransferTimeNegativePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	f := GigE()
	f.TransferTime(-1)
}

func TestNewValidation(t *testing.T) {
	if _, err := New(hw.HaswellE31225(), 0, GigE()); err == nil {
		t.Fatal("zero nodes accepted")
	}
	bad := GigE()
	bad.Bandwidth = -5
	if _, err := New(hw.HaswellE31225(), 2, bad); err == nil {
		t.Fatal("bad fabric accepted")
	}
	c, err := New(hw.HaswellE31225(), 4, GigE())
	if err != nil || c.Nodes != 4 {
		t.Fatalf("valid cluster rejected: %v", err)
	}
}

func TestTS140Cluster(t *testing.T) {
	c := TS140Cluster(8)
	if c.Nodes != 8 || c.Node.Cores != 4 {
		t.Fatalf("cluster %+v", c)
	}
}

func TestIdlePowerScalesWithNodes(t *testing.T) {
	c1, c8 := TS140Cluster(1), TS140Cluster(8)
	p1, p8 := c1.IdlePower(), c8.IdlePower()
	if p8 <= p1 {
		t.Fatal("idle power not growing with nodes")
	}
	// Exactly: 8 nodes' (idle+NIC) + one switch.
	nodeShare := (p1 - c1.Fabric.SwitchIdleWatts)
	want := 8*nodeShare + c8.Fabric.SwitchIdleWatts
	if math.Abs(p8-want) > 1e-9 {
		t.Fatalf("idle %v want %v", p8, want)
	}
}

func TestFDRFasterThanGigE(t *testing.T) {
	msg := 1e6 // 1 MB
	if InfiniBandFDR().TransferTime(msg) >= GigE().TransferTime(msg) {
		t.Fatal("FDR not faster than GigE")
	}
}
