package cluster

import (
	"fmt"
	"strconv"
	"strings"
)

// AllreduceAlgo selects the collective algorithm family the MPI layer
// uses for Allreduce (and Barrier through it).
type AllreduceAlgo int

const (
	// AllreduceBinomial is Reduce-then-Bcast along binomial trees:
	// 2·ceil(log2 P) rounds, latency-optimal for small payloads.
	AllreduceBinomial AllreduceAlgo = iota
	// AllreduceRing is ReduceScatter-then-Allgather along the ring:
	// 2·(P−1) rounds but each moves bytes/P, bandwidth-optimal for
	// large payloads.
	AllreduceRing
)

func (a AllreduceAlgo) String() string {
	switch a {
	case AllreduceBinomial:
		return "binomial"
	case AllreduceRing:
		return "ring"
	}
	return fmt.Sprintf("AllreduceAlgo(%d)", int(a))
}

// Comms is the first-class communication-model configuration: the
// knobs a fabric is actually specified by (link latency, achievable
// per-link bandwidth, per-message CPU overhead, switch tiers, and the
// collective-algorithm choice), in the style of network-simulator
// machine files. Fabric() compiles it into the effective Interconnect
// the MPI layer charges against, so presets are data, not code.
type Comms struct {
	Name string
	// LinkLatencySec is the pure wire latency of one link hop (α per
	// link); a message crosses SwitchTiers+1 links end to end.
	LinkLatencySec float64
	// LinkBandwidth is the raw per-link signaling rate in B/s;
	// LinkEfficiency scales it to the achievable rate (0 < eff ≤ 1,
	// 0 means 1.0).
	LinkBandwidth  float64
	LinkEfficiency float64
	// PerMessageOverheadSec is the sender/receiver CPU overhead (o).
	PerMessageOverheadSec float64
	// SwitchLatencySec is the traversal latency of one switch tier;
	// SwitchTiers is how many tiers a worst-case message crosses
	// (0 means 1: a single top-of-rack switch).
	SwitchLatencySec float64
	SwitchTiers      int
	// Allreduce picks the collective family (binomial vs ring).
	Allreduce AllreduceAlgo

	// Power model: per-node adapter idle draw and per-GB transfer
	// energy, plus the standing draw of each switch tier.
	NICIdleWatts        float64
	NICPerGBs           float64
	SwitchIdleWattsTier float64
}

// Validate reports descriptive errors for inconsistent comms models.
func (cc Comms) Validate() error {
	switch {
	case cc.LinkLatencySec < 0 || cc.SwitchLatencySec < 0 || cc.PerMessageOverheadSec < 0:
		return fmt.Errorf("cluster: comms %q: negative latency/overhead", cc.Name)
	case cc.LinkBandwidth <= 0:
		return fmt.Errorf("cluster: comms %q: non-positive link bandwidth", cc.Name)
	case cc.LinkEfficiency < 0 || cc.LinkEfficiency > 1:
		return fmt.Errorf("cluster: comms %q: link efficiency %v outside [0,1]", cc.Name, cc.LinkEfficiency)
	case cc.SwitchTiers < 0:
		return fmt.Errorf("cluster: comms %q: negative switch tiers", cc.Name)
	case cc.Allreduce != AllreduceBinomial && cc.Allreduce != AllreduceRing:
		return fmt.Errorf("cluster: comms %q: unknown allreduce algorithm %d", cc.Name, int(cc.Allreduce))
	case cc.NICIdleWatts < 0 || cc.NICPerGBs < 0 || cc.SwitchIdleWattsTier < 0:
		return fmt.Errorf("cluster: comms %q: negative power coefficient", cc.Name)
	}
	return nil
}

// tiers returns the effective switch-tier count (0 ⇒ 1).
func (cc Comms) tiers() int {
	if cc.SwitchTiers <= 0 {
		return 1
	}
	return cc.SwitchTiers
}

// efficiency returns the effective link efficiency (0 ⇒ 1).
func (cc Comms) efficiency() float64 {
	if cc.LinkEfficiency == 0 {
		return 1
	}
	return cc.LinkEfficiency
}

// Fabric compiles the comms model into the effective interconnect:
// end-to-end α over SwitchTiers+1 link hops and the tier traversals,
// achievable bandwidth, and the summed switch standing draw.
func (cc Comms) Fabric() (Interconnect, error) {
	if err := cc.Validate(); err != nil {
		return Interconnect{}, err
	}
	t := cc.tiers()
	return Interconnect{
		Name:                  cc.Name,
		LatencySec:            float64(t+1)*cc.LinkLatencySec + float64(t)*cc.SwitchLatencySec,
		Bandwidth:             cc.LinkBandwidth * cc.efficiency(),
		PerMessageOverheadSec: cc.PerMessageOverheadSec,
		Allreduce:             cc.Allreduce,
		NICIdleWatts:          cc.NICIdleWatts,
		NICPerGBs:             cc.NICPerGBs,
		SwitchIdleWatts:       float64(t) * cc.SwitchIdleWattsTier,
	}, nil
}

// GigEComms is the commodity gigabit-Ethernet model the paper's
// Lenovo node would have joined: one top-of-rack switch, ~94% of the
// raw gigabit achievable, latency-optimal binomial collectives.
func GigEComms() Comms {
	return Comms{
		Name:                  "1GbE",
		LinkLatencySec:        20e-6,
		LinkBandwidth:         125e6, // 1 Gb/s raw
		LinkEfficiency:        0.944,
		PerMessageOverheadSec: 5e-6,
		SwitchLatencySec:      10e-6,
		SwitchTiers:           1,
		Allreduce:             AllreduceBinomial,
		NICIdleWatts:          1.5,
		NICPerGBs:             4.0,
		SwitchIdleWattsTier:   8.0,
	}
}

// FDRComms is an HPC-class FDR InfiniBand model for contrast
// experiments: two switch tiers (leaf/spine), near-wire efficiency,
// bandwidth-optimal ring collectives.
func FDRComms() Comms {
	return Comms{
		Name:                  "FDR",
		LinkLatencySec:        0.35e-6,
		LinkBandwidth:         7.0e9, // 56 Gb/s raw
		LinkEfficiency:        0.971,
		PerMessageOverheadSec: 0.7e-6,
		SwitchLatencySec:      0.2e-6,
		SwitchTiers:           2,
		Allreduce:             AllreduceRing,
		NICIdleWatts:          6.0,
		NICPerGBs:             1.2,
		SwitchIdleWattsTier:   15.0,
	}
}

// CommsByName resolves a fabric name (case-insensitive, with the
// common aliases) to its comms model.
func CommsByName(name string) (Comms, error) {
	switch strings.ToLower(strings.TrimSpace(name)) {
	case "1gbe", "gige", "gbe", "eth", "ethernet":
		return GigEComms(), nil
	case "fdr", "ib", "infiniband", "fdr-infiniband":
		return FDRComms(), nil
	}
	return Comms{}, fmt.Errorf("cluster: unknown fabric %q (known: 1GbE, FDR)", name)
}

// Spec is a parsed cluster specification: node count × fabric ×
// memory per node.
type Spec struct {
	Nodes int
	Comms Comms
	// MemPerNode is the per-node memory capacity in bytes (the M of
	// the communication lower bounds). Defaults to 8 GiB.
	MemPerNode float64
}

// DefaultMemPerNode is the assumed node memory when a spec does not
// name one — the paper's testbed class (8 GiB).
const DefaultMemPerNode = 8 << 30

// String renders the spec in its parseable form.
func (s Spec) String() string {
	out := fmt.Sprintf("%dx%s", s.Nodes, s.Comms.Name)
	if s.MemPerNode != 0 && s.MemPerNode != DefaultMemPerNode {
		out += fmt.Sprintf("@%gGiB", s.MemPerNode/(1<<30))
	}
	return out
}

// ParseSpec parses "NODESxFABRIC[@MEMGiB]" — e.g. "16x1GbE",
// "49xFDR@16GiB" — into a cluster spec.
func ParseSpec(s string) (Spec, error) {
	spec := Spec{MemPerNode: DefaultMemPerNode}
	body := strings.TrimSpace(s)
	if at := strings.LastIndex(body, "@"); at >= 0 {
		mem := strings.TrimSuffix(strings.TrimSpace(body[at+1:]), "GiB")
		gib, err := strconv.ParseFloat(mem, 64)
		if err != nil || gib <= 0 {
			return Spec{}, fmt.Errorf("cluster: bad memory in spec %q (want e.g. @8GiB)", s)
		}
		spec.MemPerNode = gib * (1 << 30)
		body = body[:at]
	}
	i := strings.IndexAny(body, "xX")
	if i <= 0 {
		return Spec{}, fmt.Errorf("cluster: bad spec %q (want NODESxFABRIC, e.g. 16x1GbE)", s)
	}
	nodes, err := strconv.Atoi(strings.TrimSpace(body[:i]))
	if err != nil || nodes <= 0 {
		return Spec{}, fmt.Errorf("cluster: bad node count in spec %q", s)
	}
	cc, err := CommsByName(body[i+1:])
	if err != nil {
		return Spec{}, err
	}
	spec.Nodes = nodes
	spec.Comms = cc
	return spec, nil
}
