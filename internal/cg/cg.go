// Package cg implements the conjugate-gradient solver — the iterative
// application context the sparse energy study feeds: a CG iteration is
// one SpMV plus a handful of level-1 operations, so the storage
// format's energy profile multiplies across hundreds of iterations.
//
// The solver computes for real (internal/sparse kernels and
// internal/blas level-1); BuildEnergyTree expresses the same iteration
// count as a task tree for the simulator, and the package's tests pin
// the two to identical operation counts.
package cg

import (
	"fmt"
	"math"

	"capscale/internal/blas"
	"capscale/internal/hw"
	"capscale/internal/sparse"
	"capscale/internal/task"
)

// Options controls the solve.
type Options struct {
	// Tol is the relative residual target ‖r‖/‖b‖ (default 1e-10).
	Tol float64
	// MaxIter bounds iterations (default 10·n).
	MaxIter int
}

// Result reports a solve.
type Result struct {
	X          []float64
	Iterations int
	Residual   float64 // final relative residual
	Converged  bool
}

// Solve runs conjugate gradients on the symmetric positive definite
// system A·x = b in CSR storage. It panics on shape mismatch; lack of
// convergence is reported, not an error.
func Solve(a *sparse.CSR, b []float64, opt Options) *Result {
	n := a.RowsN
	if a.ColsN != n {
		panic(fmt.Sprintf("cg: non-square system %dx%d", n, a.ColsN))
	}
	if len(b) != n {
		panic(fmt.Sprintf("cg: rhs length %d for n=%d", len(b), n))
	}
	tol := opt.Tol
	if tol <= 0 {
		tol = 1e-10
	}
	maxIter := opt.MaxIter
	if maxIter <= 0 {
		maxIter = 10 * n
	}

	x := make([]float64, n)
	r := make([]float64, n)
	blas.Dcopy(b, r) // r = b − A·0 = b
	p := make([]float64, n)
	blas.Dcopy(r, p)
	ap := make([]float64, n)

	bNorm := blas.Dnrm2(b)
	if bNorm == 0 {
		return &Result{X: x, Converged: true}
	}
	rsOld := blas.Ddot(r, r)

	res := &Result{X: x}
	for k := 0; k < maxIter; k++ {
		a.MulVec(ap, p)
		pap := blas.Ddot(p, ap)
		if pap <= 0 {
			// Not positive definite along p; stop with what we have.
			res.Residual = math.Sqrt(rsOld) / bNorm
			return res
		}
		alpha := rsOld / pap
		blas.Daxpy(alpha, p, x)
		blas.Daxpy(-alpha, ap, r)
		rsNew := blas.Ddot(r, r)
		res.Iterations = k + 1
		if math.Sqrt(rsNew)/bNorm < tol {
			res.Residual = math.Sqrt(rsNew) / bNorm
			res.Converged = true
			return res
		}
		beta := rsNew / rsOld
		// p = r + beta·p
		blas.Dscal(beta, p)
		blas.Daxpy(1, r, p)
		rsOld = rsNew
	}
	res.Residual = math.Sqrt(rsOld) / bNorm
	return res
}

// FlopsPerIteration returns the double-precision operations one CG
// iteration performs on an n-dimensional system with nnz stored
// non-zeros: the SpMV (2·nnz) plus two dots (2n each), three axpys
// (2n each) and one scal (n).
func FlopsPerIteration(n, nnz int) float64 {
	return 2*float64(nnz) + float64(11*n)
}

// BuildEnergyTree expresses `iterations` CG iterations over the matrix
// in the given storage format as a task tree: each iteration is the
// format's parallel SpMV followed by the work-shared vector operations.
// The tree is accounting-only (CG's scalar recurrences do not decompose
// into independent leaf closures); Solve is the real-math counterpart.
func BuildEnergyTree(m *hw.Machine, a *sparse.CSR, format sparse.Format, workers, iterations int) *task.Node {
	if iterations < 1 {
		panic(fmt.Sprintf("cg: iterations %d", iterations))
	}
	n := a.RowsN
	var iters []*task.Node
	for it := 0; it < iterations; it++ {
		spmv := sparse.BuildSpMV(m, a, format, sparse.Options{Workers: workers})
		// Vector phase: 11n flops, all streaming, split across workers.
		chunks := make([]*task.Node, 0, workers)
		for w := 0; w < workers; w++ {
			share := float64(n) / float64(workers)
			chunks = append(chunks, task.Leaf(task.Work{
				Label: fmt.Sprintf("cg vecops it%d w%d", it, w),
				Kind:  task.KindAdd,
				Flops: 11 * share,
				// Five vector sweeps read+write ~2 vectors each.
				DRAMBytes: 11 * 2 * 8 * share,
			}).WithAffinityMask(task.SingleWorker(w)))
		}
		iters = append(iters, task.Seq(spmv.Root, task.Par(chunks...)))
	}
	return task.Seq(iters...)
}
