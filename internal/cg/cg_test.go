package cg

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"capscale/internal/blas"
	"capscale/internal/hw"
	"capscale/internal/matrix"
	"capscale/internal/sim"
	"capscale/internal/sparse"
	"capscale/internal/task"
)

func spdSystem(seed int64, n, halfBand int) (*sparse.CSR, []float64) {
	rng := rand.New(rand.NewSource(seed))
	a := sparse.SPDBanded(rng, n, halfBand).ToCSR()
	b := make([]float64, n)
	for i := range b {
		b[i] = 2*rng.Float64() - 1
	}
	return a, b
}

func TestSolveConverges(t *testing.T) {
	a, b := spdSystem(1, 200, 3)
	res := Solve(a, b, Options{})
	if !res.Converged {
		t.Fatalf("CG did not converge: %d iters, residual %v", res.Iterations, res.Residual)
	}
	// Check the residual directly.
	y := make([]float64, 200)
	a.MulVec(y, res.X)
	blas.Daxpy(-1, b, y)
	if rel := blas.Dnrm2(y) / blas.Dnrm2(b); rel > 1e-9 {
		t.Fatalf("actual residual %v", rel)
	}
}

func TestSolveMatchesDenseLU(t *testing.T) {
	a, b := spdSystem(2, 60, 2)
	res := Solve(a, b, Options{Tol: 1e-12})
	if !res.Converged {
		t.Fatal("no convergence")
	}
	dense := a.ToCOO().ToDense()
	want, err := matrix.SolveDense(dense, b)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if math.Abs(res.X[i]-want[i]) > 1e-8*math.Max(1, math.Abs(want[i])) {
			t.Fatalf("x[%d] = %v want %v", i, res.X[i], want[i])
		}
	}
}

func TestSolveZeroRhs(t *testing.T) {
	a, _ := spdSystem(3, 20, 1)
	res := Solve(a, make([]float64, 20), Options{})
	if !res.Converged || res.Iterations != 0 {
		t.Fatalf("zero rhs: %+v", res)
	}
	for _, v := range res.X {
		if v != 0 {
			t.Fatal("nonzero solution for zero rhs")
		}
	}
}

func TestSolveMaxIter(t *testing.T) {
	a, b := spdSystem(4, 300, 4)
	res := Solve(a, b, Options{Tol: 1e-14, MaxIter: 2})
	if res.Converged {
		t.Fatal("converged in 2 iterations — implausible")
	}
	if res.Iterations != 2 {
		t.Fatalf("iterations %d", res.Iterations)
	}
}

func TestSolvePanics(t *testing.T) {
	a, b := spdSystem(5, 10, 1)
	panics := func(f func()) (p bool) {
		defer func() { p = recover() != nil }()
		f()
		return
	}
	if !panics(func() { Solve(a, b[:5], Options{}) }) {
		t.Fatal("short rhs accepted")
	}
	rect := &sparse.CSR{RowsN: 2, ColsN: 3, RowPtr: []int32{0, 0, 0}}
	if !panics(func() { Solve(rect, []float64{1, 2}, Options{}) }) {
		t.Fatal("rectangular system accepted")
	}
}

func TestFlopsPerIteration(t *testing.T) {
	if got := FlopsPerIteration(100, 500); got != 2*500+11*100 {
		t.Fatalf("flops %v", got)
	}
}

func TestEnergyTreeMatchesIterationCount(t *testing.T) {
	m := hw.HaswellE31225()
	a, b := spdSystem(6, 400, 3)
	res := Solve(a, b, Options{})
	if !res.Converged {
		t.Fatal("no convergence")
	}
	root := BuildEnergyTree(m, a, sparse.FormatCSR, 4, res.Iterations)
	stats := task.Collect(root)
	want := float64(res.Iterations) * FlopsPerIteration(a.RowsN, a.NNZ())
	// The ELL-free CSR tree carries exactly the solver's flop count.
	if math.Abs(stats.Flops-want)/want > 1e-12 {
		t.Fatalf("tree flops %v want %v", stats.Flops, want)
	}
}

func TestEnergyPerFormat(t *testing.T) {
	// CG energy to solution per storage format: simulate the real
	// solve's iteration count under each format's traffic profile.
	m := hw.HaswellE31225()
	a, b := spdSystem(7, 2000, 4)
	res := Solve(a, b, Options{})
	if !res.Converged {
		t.Fatal("no convergence")
	}
	energyOf := func(f sparse.Format) float64 {
		root := BuildEnergyTree(m, a, f, 4, res.Iterations)
		r := sim.Run(m, root, sim.Config{Workers: 4})
		return r.EnergyTotal()
	}
	csr := energyOf(sparse.FormatCSR)
	coo := energyOf(sparse.FormatCOO)
	if csr <= 0 || coo <= csr {
		t.Fatalf("COO energy %v should exceed CSR %v", coo, csr)
	}
}

func TestBuildEnergyTreePanics(t *testing.T) {
	m := hw.HaswellE31225()
	a, _ := spdSystem(8, 10, 1)
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	BuildEnergyTree(m, a, sparse.FormatCSR, 2, 0)
}

func TestPropertySolveResidualAlwaysReported(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 10 + rng.Intn(100)
		a := sparse.SPDBanded(rng, n, 1+rng.Intn(3)).ToCSR()
		b := make([]float64, n)
		for i := range b {
			b[i] = rng.Float64()
		}
		res := Solve(a, b, Options{})
		if !res.Converged {
			return false
		}
		y := make([]float64, n)
		a.MulVec(y, res.X)
		blas.Daxpy(-1, b, y)
		return blas.Dnrm2(y)/blas.Dnrm2(b) < 1e-8
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}
