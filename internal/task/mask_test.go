package task

import (
	"math/rand"
	"testing"
)

// refSet materializes a Mask as a map for oracle comparisons.
func refSet(m Mask) map[int]bool {
	out := make(map[int]bool)
	for w := m.Min(); w >= 0; w = m.Next(w + 1) {
		out[w] = true
	}
	return out
}

func TestSingleWorkerLowAndHigh(t *testing.T) {
	for _, w := range []int{0, 1, 63, 64, 65, 127, 128, 4095, MaxWorkers - 1} {
		m := SingleWorker(w)
		if !m.Has(w) || m.Count() != 1 || m.Single() != w || m.Min() != w || m.Max() != w {
			t.Fatalf("SingleWorker(%d): %v count=%d single=%d min=%d max=%d",
				w, m, m.Count(), m.Single(), m.Min(), m.Max())
		}
		if m.Has(w+1) || m.Has(w-1) {
			t.Fatalf("SingleWorker(%d) has neighbors", w)
		}
	}
}

// The satellite fix: indices ≥ 64 that used to wrap silently into
// wrong (or zero) uint64 masks must now fail loudly at construction.
func TestMaskConstructionRejectsOutOfRange(t *testing.T) {
	cases := []func(){
		func() { SingleWorker(-1) },
		func() { SingleWorker(MaxWorkers) },
		func() { MaskRange(-1, 5) },
		func() { MaskRange(0, MaxWorkers) },
		func() { MaskRange(5, 4) },
		func() { MaskOf(0, -3) },
		func() { MaskOf(MaxWorkers + 7) },
	}
	for i, f := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("case %d did not panic", i)
				}
			}()
			f()
		}()
	}
}

func TestMaskRangeSpansBoundary(t *testing.T) {
	cases := []struct{ lo, hi int }{
		{0, 0}, {0, 63}, {0, 64}, {5, 70}, {60, 200}, {64, 64},
		{64, 127}, {100, 100}, {130, 700}, {4090, 4100},
	}
	for _, c := range cases {
		m := MaskRange(c.lo, c.hi)
		if m.Count() != c.hi-c.lo+1 {
			t.Fatalf("MaskRange(%d,%d) count %d", c.lo, c.hi, m.Count())
		}
		if m.Min() != c.lo || m.Max() != c.hi {
			t.Fatalf("MaskRange(%d,%d) min=%d max=%d", c.lo, c.hi, m.Min(), m.Max())
		}
		for _, probe := range []int{c.lo - 1, c.lo, c.lo + 1, c.hi - 1, c.hi, c.hi + 1} {
			want := probe >= c.lo && probe <= c.hi
			if m.Has(probe) != want {
				t.Fatalf("MaskRange(%d,%d).Has(%d) = %v", c.lo, c.hi, probe, m.Has(probe))
			}
		}
	}
}

func TestZeroMaskIsUnrestricted(t *testing.T) {
	var m Mask
	if !m.IsEmpty() || m.Count() != 0 || m.Min() != -1 || m.Max() != -1 || m.Single() != -1 {
		t.Fatalf("zero mask not empty: %v", m)
	}
	if m.Has(0) || m.Has(64) || m.Has(-1) {
		t.Fatal("zero mask has members")
	}
	if m.String() != "{}" {
		t.Fatalf("zero mask string %q", m.String())
	}
}

func TestMaskOfBitsRoundTrips(t *testing.T) {
	for _, bits := range []uint64{0, 1, 0b1010, 1 << 63, ^uint64(0)} {
		m := MaskOfBits(bits)
		if m.LowBits() != bits {
			t.Fatalf("LowBits %x != %x", m.LowBits(), bits)
		}
	}
}

func TestSingleOnMultiMemberMasks(t *testing.T) {
	if MaskOf(3, 70).Single() != -1 || MaskOf(3, 5).Single() != -1 ||
		MaskOf(70, 300).Single() != -1 {
		t.Fatal("Single() on multi-member mask should be -1")
	}
}

func TestIntersectContainmentSharesOperand(t *testing.T) {
	big := MaskRange(0, 500)
	small := MaskOf(3, 200, 499)
	got := big.Intersect(small)
	if !got.Equal(small) {
		t.Fatalf("containment intersect: %v", got)
	}
	// The contained operand comes back as-is — windows shared, no copy.
	if len(got.words) != len(small.words) || (len(got.words) > 0 && &got.words[0] != &small.words[0]) {
		t.Fatal("containment fast path did not share the window")
	}
	if !small.Intersect(big).Equal(small) {
		t.Fatal("symmetric containment")
	}
}

func TestIntersectDisjointWindows(t *testing.T) {
	a := MaskRange(100, 160)
	b := MaskRange(300, 360)
	if got := a.Intersect(b); !got.IsEmpty() {
		t.Fatalf("disjoint intersect %v", got)
	}
	// lo-part only overlap with disjoint windows.
	c := MaskOf(5, 100)
	d := MaskOf(5, 300)
	if got := c.Intersect(d); !got.Equal(MaskOf(5)) {
		t.Fatalf("lo-only intersect %v", got)
	}
}

func TestIntersectAgainstOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	randMask := func() Mask {
		n := rng.Intn(8)
		ws := make([]int, n)
		for i := range ws {
			// Cluster around the 64 boundary and a high window.
			switch rng.Intn(3) {
			case 0:
				ws[i] = rng.Intn(64)
			case 1:
				ws[i] = 64 + rng.Intn(200)
			default:
				ws[i] = 1000 + rng.Intn(300)
			}
		}
		return MaskOf(ws...)
	}
	for trial := 0; trial < 500; trial++ {
		a, b := randMask(), randMask()
		got := refSet(a.Intersect(b))
		sa, sb := refSet(a), refSet(b)
		for w := range sa {
			if sb[w] != got[w] {
				t.Fatalf("trial %d: worker %d in a∩b=%v, want %v (a=%v b=%v)",
					trial, w, got[w], sb[w], a, b)
			}
		}
		for w := range got {
			if !sa[w] || !sb[w] {
				t.Fatalf("trial %d: spurious worker %d in %v ∩ %v", trial, w, a, b)
			}
		}
		// Trimmed invariant: Min/Max of the result agree with the set view.
		r := a.Intersect(b)
		if len(got) == 0 {
			if r.Min() != -1 || r.Max() != -1 {
				t.Fatalf("trial %d: empty result with min=%d max=%d", trial, r.Min(), r.Max())
			}
			continue
		}
		lo, hi := MaxWorkers, -1
		for w := range got {
			if w < lo {
				lo = w
			}
			if w > hi {
				hi = w
			}
		}
		if r.Min() != lo || r.Max() != hi {
			t.Fatalf("trial %d: min=%d max=%d want %d,%d", trial, r.Min(), r.Max(), lo, hi)
		}
	}
}

func TestMaskString(t *testing.T) {
	cases := []struct {
		m    Mask
		want string
	}{
		{MaskOf(3), "{3}"},
		{MaskRange(0, 3), "{0-3}"},
		{MaskOf(1, 2, 3, 7, 100), "{1-3,7,100}"},
		{MaskRange(62, 66), "{62-66}"},
	}
	for _, c := range cases {
		if got := c.m.String(); got != c.want {
			t.Fatalf("String() = %q want %q", got, c.want)
		}
	}
}

func TestMaskNextIteration(t *testing.T) {
	m := MaskOf(0, 63, 64, 65, 129, 5000)
	want := []int{0, 63, 64, 65, 129, 5000}
	var got []int
	for w := m.Min(); w >= 0; w = m.Next(w + 1) {
		got = append(got, w)
	}
	if len(got) != len(want) {
		t.Fatalf("iterated %v want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("iterated %v want %v", got, want)
		}
	}
}

func TestMaskEqualIgnoresRepresentation(t *testing.T) {
	// Same set reached via different constructors must compare equal.
	if !MaskRange(70, 72).Equal(MaskOf(72, 70, 71)) {
		t.Fatal("range vs of inequality")
	}
	if MaskOf(70).Equal(MaskOf(71)) {
		t.Fatal("distinct singletons equal")
	}
	if !MaskOfBits(0b110).Equal(MaskOf(1, 2)) {
		t.Fatal("bits vs of inequality")
	}
}
