package task

import (
	"math/rand"
	"sync/atomic"
	"testing"
	"testing/quick"
)

func leaf(flops float64) *Node {
	return Leaf(Work{Kind: KindGEMM, Flops: flops})
}

func TestKindString(t *testing.T) {
	if KindGEMM.String() != "gemm" || KindAdd.String() != "add" {
		t.Fatalf("kind names wrong: %v %v", KindGEMM, KindAdd)
	}
	if Kind(99).String() != "Kind(99)" {
		t.Fatalf("out of range kind: %v", Kind(99))
	}
}

func TestRegionsUnique(t *testing.T) {
	var r Regions
	seen := make(map[RegionID]bool)
	for i := 0; i < 1000; i++ {
		id := r.New()
		if seen[id] {
			t.Fatalf("duplicate region id %d", id)
		}
		seen[id] = true
	}
	if r.Count() != 1000 {
		t.Fatalf("count %d", r.Count())
	}
}

func TestNodePredicates(t *testing.T) {
	l := leaf(1)
	s := Seq(l)
	p := Par(l)
	if !l.IsLeaf() || l.IsSeq() || l.IsPar() {
		t.Fatal("leaf predicates")
	}
	if !s.IsSeq() || s.IsLeaf() {
		t.Fatal("seq predicates")
	}
	if !p.IsPar() || p.IsSeq() {
		t.Fatal("par predicates")
	}
}

func TestWorkOnNonLeafPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Work() on Seq did not panic")
		}
	}()
	Seq().Work()
}

func TestAffinityAndAlloc(t *testing.T) {
	n := Seq().WithAffinity(0b1010).WithAlloc(512)
	if n.Affinity().LowBits() != 0b1010 || !n.Affinity().Equal(MaskOf(1, 3)) {
		t.Fatalf("affinity %v", n.Affinity())
	}
	if n.AllocBytes() != 512 {
		t.Fatalf("alloc %v", n.AllocBytes())
	}
	big := Seq().WithAffinityMask(SingleWorker(4096))
	if got := big.Affinity().Single(); got != 4096 {
		t.Fatalf("high-worker affinity single = %d", got)
	}
}

func TestWalkOrder(t *testing.T) {
	a, b, c := leaf(1), leaf(2), leaf(3)
	root := Seq(a, Par(b, c))
	var order []*Node
	root.Walk(func(n *Node) { order = append(order, n) })
	if len(order) != 5 {
		t.Fatalf("visited %d nodes", len(order))
	}
	if order[1] != a || order[3] != b || order[4] != c {
		t.Fatal("walk order not depth-first")
	}
}

func TestLeaves(t *testing.T) {
	a, b, c := leaf(1), leaf(2), leaf(3)
	root := Par(Seq(a, b), c)
	ls := root.Leaves()
	if len(ls) != 3 || ls[0] != a || ls[1] != b || ls[2] != c {
		t.Fatal("leaves wrong")
	}
}

func TestCollectTotals(t *testing.T) {
	root := Seq(
		Leaf(Work{Kind: KindGEMM, Flops: 100, DRAMBytes: 10, L3Bytes: 5}),
		Par(
			Leaf(Work{Kind: KindAdd, Flops: 20, DRAMBytes: 40}),
			Leaf(Work{Kind: KindAdd, Flops: 30, L3Bytes: 15}),
		),
	)
	s := Collect(root)
	if s.Leaves != 3 {
		t.Fatalf("leaves %d", s.Leaves)
	}
	if s.Flops != 150 || s.DRAMBytes != 50 || s.L3Bytes != 20 {
		t.Fatalf("totals %v %v %v", s.Flops, s.DRAMBytes, s.L3Bytes)
	}
	if s.FlopsByKind[KindGEMM] != 100 || s.FlopsByKind[KindAdd] != 50 {
		t.Fatalf("by kind %v", s.FlopsByKind)
	}
	if s.Depth != 3 {
		t.Fatalf("depth %d", s.Depth)
	}
}

func TestCollectAllocPeakSeqTakesMax(t *testing.T) {
	root := Seq(
		Seq().WithAlloc(100),
		Seq().WithAlloc(300),
		Seq().WithAlloc(200),
	)
	if s := Collect(root); s.AllocPeak != 300 {
		t.Fatalf("seq alloc peak %v", s.AllocPeak)
	}
}

func TestCollectAllocPeakParSums(t *testing.T) {
	root := Par(
		Seq().WithAlloc(100),
		Seq().WithAlloc(300),
	).WithAlloc(50)
	if s := Collect(root); s.AllocPeak != 450 {
		t.Fatalf("par alloc peak %v", s.AllocPeak)
	}
}

func TestCollectAllocPeakNested(t *testing.T) {
	// Par(Seq(100 then 400), 200) + root 10 => 10 + 400 + 200 = 610.
	root := Par(
		Seq(Seq().WithAlloc(100), Seq().WithAlloc(400)),
		Seq().WithAlloc(200),
	).WithAlloc(10)
	if s := Collect(root); s.AllocPeak != 610 {
		t.Fatalf("nested alloc peak %v", s.AllocPeak)
	}
}

func TestRunSerialExecutesEveryLeafOnce(t *testing.T) {
	counts := make([]int, 4)
	mk := func(i int) *Node {
		return Leaf(Work{Run: func() { counts[i]++ }})
	}
	root := Seq(mk(0), Par(mk(1), Seq(mk(2), mk(3))))
	RunSerial(root)
	for i, c := range counts {
		if c != 1 {
			t.Fatalf("leaf %d ran %d times", i, c)
		}
	}
}

func TestRunSerialOrderRespectsSeq(t *testing.T) {
	var order []int
	mk := func(i int) *Node {
		return Leaf(Work{Run: func() { order = append(order, i) }})
	}
	RunSerial(Seq(mk(1), mk(2), mk(3)))
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Fatalf("order %v", order)
	}
}

func TestRunSerialNilRunSkipped(t *testing.T) {
	// Must not panic on leaves without closures.
	RunSerial(Seq(leaf(1), Par(leaf(2))))
}

// randomTree builds an arbitrary tree and returns it with its expected
// leaf count and flop total.
func randomTree(rng *rand.Rand, depth int) (*Node, int, float64) {
	if depth == 0 || rng.Intn(3) == 0 {
		f := float64(rng.Intn(100))
		return leaf(f), 1, f
	}
	n := 1 + rng.Intn(4)
	children := make([]*Node, n)
	leaves, flops := 0, 0.0
	for i := range children {
		c, l, f := randomTree(rng, depth-1)
		children[i] = c
		leaves += l
		flops += f
	}
	if rng.Intn(2) == 0 {
		return Seq(children...), leaves, flops
	}
	return Par(children...), leaves, flops
}

func TestPropertyCollectMatchesConstruction(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		root, leaves, flops := randomTree(rng, 4)
		s := Collect(root)
		return s.Leaves == leaves && s.Flops == flops
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyLeavesMatchesCollect(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		root, _, _ := randomTree(rng, 5)
		return len(root.Leaves()) == Collect(root).Leaves
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Regions must detect overlapping New calls: tree construction is
// single-threaded by contract (execution is not, since internal/sched
// runs leaves on persistent workers), and the guard turns a violated
// contract into a panic instead of duplicate region IDs.
func TestRegionsGuardPanicsOnOverlappingNew(t *testing.T) {
	var r Regions
	atomic.StoreInt32(&r.busy, 1) // another goroutine is mid-New
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on overlapping Regions.New")
		}
	}()
	r.New()
}

// Serialized cross-goroutine use (a handoff, not an overlap) stays
// legal: the guard only rejects concurrency.
func TestRegionsSequentialHandoffAllowed(t *testing.T) {
	var r Regions
	done := make(chan RegionID)
	go func() { done <- r.New() }()
	first := <-done
	if second := r.New(); second != first+1 {
		t.Fatalf("ids %d then %d", first, second)
	}
}
