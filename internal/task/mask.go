package task

import (
	"fmt"
	"math/bits"
	"strings"
)

// MaxWorkers is the largest worker index + 1 any affinity mask can
// name. It bounds the simulator's representable concurrency (2^20 ≈
// 10^6 simulated workers) and exists so that mask construction fails
// loudly on impossible indices instead of silently dropping bits the
// way the historical uint64 representation did for workers ≥ 64.
const MaxWorkers = 1 << 20

// Mask is a set of worker indices used for affinity annotation. The
// zero Mask is the empty set, which every consumer treats as
// "unrestricted" — the same convention the historical uint64 affinity
// followed for mask 0.
//
// Representation is a small-set/bitset hybrid: workers 0..63 live in
// an inline word, so every mask a ≤64-worker build constructs is
// allocation-free and exactly as cheap as the old uint64; workers ≥ 64
// spill into a word-aligned window (base + words) sized to the span of
// high indices actually present, so a mask pinning worker 900 000 costs
// one word, not a 14 000-word bitset from zero.
//
// Masks are immutable after construction. Intersect may return a Mask
// sharing an operand's window, which is safe precisely because nothing
// mutates a built Mask.
type Mask struct {
	// lo holds workers 0..63, bit w = worker w.
	lo uint64
	// base is the first worker index covered by words; a multiple of
	// 64, ≥ 64. Meaningful only when words is non-empty.
	base int
	// words[i] bit j = worker base + 64*i + j. Constructors and
	// Intersect maintain the trimmed invariant: when non-empty, the
	// first and last words are nonzero, so Min and Max are O(1).
	words []uint64
}

// checkWorker panics on indices no mask can represent.
func checkWorker(w int) {
	if w < 0 || w >= MaxWorkers {
		panic(fmt.Sprintf("task: worker index %d outside [0,%d)", w, MaxWorkers))
	}
}

// SingleWorker returns the mask naming exactly worker w. It panics on
// negative indices and on indices ≥ MaxWorkers — the loud replacement
// for the silent bit loss of 1<<w at w ≥ 64.
func SingleWorker(w int) Mask {
	checkWorker(w)
	if w < 64 {
		return Mask{lo: 1 << uint(w)}
	}
	return Mask{base: w &^ 63, words: []uint64{1 << uint(w&63)}}
}

// MaskRange returns the mask naming every worker in [lo, hi]
// inclusive. It panics when the range is empty or out of bounds.
func MaskRange(lo, hi int) Mask {
	checkWorker(lo)
	checkWorker(hi)
	if hi < lo {
		panic(fmt.Sprintf("task: empty worker range [%d,%d]", lo, hi))
	}
	var m Mask
	if lo < 64 {
		hiLo := hi
		if hiLo > 63 {
			hiLo = 63
		}
		m.lo = rangeWord(uint(lo), uint(hiLo))
		if hi < 64 {
			return m
		}
		lo = 64
	}
	m.base = lo &^ 63
	m.words = make([]uint64, hi>>6-m.base>>6+1)
	for i := range m.words {
		first, last := uint(0), uint(63)
		if i == 0 {
			first = uint(lo & 63)
		}
		if i == len(m.words)-1 {
			last = uint(hi & 63)
		}
		m.words[i] = rangeWord(first, last)
	}
	return m
}

// rangeWord returns a word with bits [first, last] set.
func rangeWord(first, last uint) uint64 {
	w := ^uint64(0) << first
	if last < 63 {
		w &= (uint64(1) << (last + 1)) - 1
	}
	return w
}

// MaskOfBits adopts a legacy uint64 mask (bit w = worker w, workers
// 0..63 only). It is the allocation-free fast path WithAffinity uses.
func MaskOfBits(bits uint64) Mask { return Mask{lo: bits} }

// MaskOf returns the mask naming exactly the given workers.
func MaskOf(workers ...int) Mask {
	m := Mask{}
	lo, hi := MaxWorkers, -1
	for _, w := range workers {
		checkWorker(w)
		if w >= 64 {
			if w < lo {
				lo = w
			}
			if w > hi {
				hi = w
			}
		} else {
			m.lo |= 1 << uint(w)
		}
	}
	if hi >= 0 {
		m.base = lo &^ 63
		m.words = make([]uint64, hi>>6-m.base>>6+1)
		for _, w := range workers {
			if w >= 64 {
				m.words[w>>6-m.base>>6] |= 1 << uint(w&63)
			}
		}
	}
	return m
}

// IsEmpty reports whether the mask names no worker. Consumers read an
// empty mask as "unrestricted".
func (m Mask) IsEmpty() bool { return m.lo == 0 && len(m.words) == 0 }

// Has reports whether worker w is in the mask. Out-of-range indices
// (including negatives) are simply absent.
func (m Mask) Has(w int) bool {
	if w < 0 {
		return false
	}
	if w < 64 {
		return m.lo>>uint(w)&1 == 1
	}
	i := w>>6 - m.base>>6
	if len(m.words) == 0 || i < 0 || i >= len(m.words) {
		return false
	}
	return m.words[i]>>uint(w&63)&1 == 1
}

// Count returns the number of workers in the mask.
func (m Mask) Count() int {
	n := bits.OnesCount64(m.lo)
	for _, w := range m.words {
		n += bits.OnesCount64(w)
	}
	return n
}

// Single returns the worker index when the mask names exactly one
// worker, else -1.
func (m Mask) Single() int {
	switch {
	case m.lo != 0:
		if len(m.words) != 0 || m.lo&(m.lo-1) != 0 {
			return -1
		}
		return bits.TrailingZeros64(m.lo)
	case len(m.words) == 1 && m.words[0]&(m.words[0]-1) == 0 && m.words[0] != 0:
		return m.base + bits.TrailingZeros64(m.words[0])
	default:
		return -1
	}
}

// Min returns the smallest worker in the mask, or -1 when empty.
// O(1) under the trimmed-window invariant.
func (m Mask) Min() int {
	if m.lo != 0 {
		return bits.TrailingZeros64(m.lo)
	}
	if len(m.words) == 0 {
		return -1
	}
	return m.base + bits.TrailingZeros64(m.words[0])
}

// Max returns the largest worker in the mask, or -1 when empty.
func (m Mask) Max() int {
	if n := len(m.words); n != 0 {
		return m.base + (n-1)<<6 + 63 - bits.LeadingZeros64(m.words[n-1])
	}
	if m.lo == 0 {
		return -1
	}
	return 63 - bits.LeadingZeros64(m.lo)
}

// contains reports whether every worker of o is also in m.
func (m Mask) contains(o Mask) bool {
	if o.lo&^m.lo != 0 {
		return false
	}
	for i, w := range o.words {
		if w == 0 {
			continue
		}
		j := i + o.base>>6 - m.base>>6
		if len(m.words) == 0 || j < 0 || j >= len(m.words) || w&^m.words[j] != 0 {
			return false
		}
	}
	return true
}

// Intersect returns the set intersection. When one operand is
// contained in the other, the contained operand is returned as-is —
// the common case when affinities narrow down a task tree — so the
// steady state allocates nothing even above 64 workers.
func (m Mask) Intersect(o Mask) Mask {
	if m.contains(o) {
		return o
	}
	if o.contains(m) {
		return m
	}
	out := Mask{lo: m.lo & o.lo}
	if len(m.words) != 0 && len(o.words) != 0 {
		lo := m.base
		if o.base > lo {
			lo = o.base
		}
		hi := m.base + len(m.words)<<6
		if h := o.base + len(o.words)<<6; h < hi {
			hi = h
		}
		first, last := -1, -1
		var words []uint64
		if lo < hi {
			words = make([]uint64, (hi-lo)>>6)
			for i := range words {
				w := m.words[(lo-m.base)>>6+i] & o.words[(lo-o.base)>>6+i]
				words[i] = w
				if w != 0 {
					if first < 0 {
						first = i
					}
					last = i
				}
			}
		}
		if first >= 0 {
			out.base = lo + first<<6
			out.words = words[first : last+1]
		}
	}
	return out
}

// Equal reports set equality.
func (m Mask) Equal(o Mask) bool { return m.contains(o) && o.contains(m) }

// LowBits returns the uint64 view of workers 0..63 — the exact value
// the historical affinity representation carried. Workers ≥ 64 are not
// representable in it; callers using LowBits assert a ≤64-worker
// context (the seed-scheduler reference does).
func (m Mask) LowBits() uint64 { return m.lo }

// String renders the mask for debugging: "{}" when empty, else a
// compact list of indices and ranges.
func (m Mask) String() string {
	if m.IsEmpty() {
		return "{}"
	}
	var sb strings.Builder
	sb.WriteByte('{')
	start, prev := -2, -2
	flush := func() {
		if start < 0 {
			return
		}
		if sb.Len() > 1 {
			sb.WriteByte(',')
		}
		if start == prev {
			fmt.Fprintf(&sb, "%d", start)
		} else {
			fmt.Fprintf(&sb, "%d-%d", start, prev)
		}
	}
	emit := func(w int) {
		if w != prev+1 {
			flush()
			start = w
		}
		prev = w
	}
	for w := m.Min(); w >= 0; w = m.Next(w + 1) {
		emit(w)
	}
	flush()
	sb.WriteByte('}')
	return sb.String()
}

// Next returns the smallest member ≥ from, or -1 when none.
func (m Mask) Next(from int) int {
	if from < 64 {
		if from < 0 {
			from = 0
		}
		if rem := m.lo >> uint(from); rem != 0 {
			return from + bits.TrailingZeros64(rem)
		}
		from = 64
	}
	if len(m.words) == 0 {
		return -1
	}
	if from < m.base {
		from = m.base
	}
	for i := (from - m.base) >> 6; i < len(m.words); i++ {
		w := m.words[i]
		if i == (from-m.base)>>6 {
			w >>= uint(from & 63)
			w <<= uint(from & 63)
		}
		if w != 0 {
			return m.base + i<<6 + bits.TrailingZeros64(w)
		}
	}
	return -1
}
